// Quickstart: solve consensus among 5 single-hop wireless devices with the
// two-phase algorithm (paper §4.1) — no knowledge of n, just unique ids.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "harness/experiment.hpp"
#include "net/topologies.hpp"

int main() {
  using namespace amac;

  // 1. A single-hop radio network: every device hears every other.
  const auto graph = net::make_clique(5);

  // 2. Mixed initial values: devices 0,2,4 propose 0; devices 1,3 propose 1.
  const auto inputs = harness::inputs_alternating(5);

  // 3. A scheduler: the adversary controls delivery order/timing, bounded
  //    by F_ack = 8 ticks. Algorithms never learn F_ack.
  mac::UniformRandomScheduler scheduler(/*fack=*/8, /*seed=*/2024);

  // 4. Run two-phase consensus to completion.
  const auto outcome = harness::run_consensus(
      graph, harness::two_phase_factory(inputs), scheduler, inputs,
      /*max_time=*/10'000);

  std::printf("two-phase consensus on K5: %s\n",
              outcome.verdict.summary().c_str());
  std::printf("decision: %d, decided by t=%llu (F_ack=8, bound is 2*F_ack)\n",
              *outcome.verdict.decision,
              static_cast<unsigned long long>(outcome.verdict.last_decision));
  std::printf("broadcasts: %llu, max payload: %zu bytes\n",
              static_cast<unsigned long long>(outcome.stats.broadcasts),
              outcome.stats.max_payload_bytes);
  return outcome.verdict.ok() ? 0 : 1;
}
