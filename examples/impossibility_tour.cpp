// A guided tour of the paper's three impossibility results, each staged as
// a concrete runnable scenario. Companion reading: paper §3 / DESIGN.md.
#include <cstdio>

#include "harness/experiment.hpp"
#include "net/paper_networks.hpp"
#include "net/topologies.hpp"
#include "verify/flp.hpp"

int main() {
  using namespace amac;

  std::printf("=== Impossibility tour ===\n\n");

  // ---- Stop 1: Theorem 3.2 — one crash kills determinism. -------------
  std::printf(
      "Stop 1 (Theorem 3.2). Two radios, one holding 0 and one holding 1,\n"
      "running the (correct, crash-free) two-phase algorithm. We search\n"
      "ALL valid-step schedules:\n");
  {
    const auto g = net::make_clique(2);
    verify::FlpExplorer no_crash(g, harness::two_phase_factory({0, 1}), 0);
    const auto r0 = no_crash.explore();
    std::printf(
        "  crash budget 0: %zu states; decides-0 reachable: %s, decides-1\n"
        "  reachable: %s (bivalent start!), violations: none\n",
        r0.distinct_states, r0.reaches_decision_0 ? "yes" : "no",
        r0.reaches_decision_1 ? "yes" : "no");
    verify::FlpExplorer one_crash(g, harness::two_phase_factory({0, 1}), 1);
    const auto r1 = one_crash.explore();
    std::printf(
        "  crash budget 1: %zu states; violation reachable: %s — witness "
        "schedule:\n   ",
        r1.distinct_states, r1.violation_found() ? "YES" : "no");
    for (const auto& step : r1.witness) {
      std::printf(" %s", step.describe().c_str());
    }
    std::printf("\n  (the survivor waits forever on its crashed witness)\n\n");
  }

  // ---- Stop 2: Theorem 3.3 — anonymity. --------------------------------
  std::printf(
      "Stop 2 (Theorem 3.3 / Figure 1). An anonymous algorithm that knows\n"
      "n and D, on two networks it cannot tell apart:\n");
  {
    const auto nets = net::make_figure1(8, 2);
    // Network B sanity run.
    const auto b_inputs = harness::inputs_all(nets.size, 1);
    mac::SynchronousScheduler b_sched(1);
    const auto b = harness::run_consensus(
        nets.b, harness::anonymous_factory(b_inputs, nets.diameter), b_sched,
        b_inputs, 10'000);
    std::printf("  Network B (n'=%zu, D=%u): %s\n", nets.size, nets.diameter,
                b.verdict.summary().c_str());
    // Network A with the alpha_A scheduler.
    std::vector<mac::Value> a_inputs(nets.size, 0);
    for (std::size_t l = 0; l < nets.layout.size(); ++l) {
      a_inputs[nets.a_node(1, l)] = 1;
    }
    mac::HoldbackScheduler a_sched(
        std::make_unique<mac::SynchronousScheduler>(1), 12);
    a_sched.hold_sender(nets.q);
    const auto a = harness::run_consensus(
        nets.a, harness::anonymous_factory(a_inputs, nets.diameter), a_sched,
        a_inputs, 10'000);
    std::printf(
        "  Network A (same n', same D, bridge q silenced): %s\n"
        "  Each gadget believed it WAS Network B and decided its own "
        "value.\n\n",
        a.verdict.summary().c_str());
  }

  // ---- Stop 3: Theorem 3.9 — knowledge of n. ---------------------------
  std::printf(
      "Stop 3 (Theorem 3.9 / Figure 2). Unique ids, knows D — but not n:\n");
  {
    const auto fig = net::make_figure2(6);
    const std::size_t n = fig.kd.node_count();
    std::vector<mac::Value> inputs(n, 0);
    for (const NodeId u : fig.l2) inputs[u] = 1;
    mac::HoldbackScheduler sched(
        std::make_unique<mac::SynchronousScheduler>(1), 16);
    sched.hold_sender(fig.bridge_line.front());
    const auto kd = harness::run_consensus(
        fig.kd,
        harness::stability_factory(inputs, fig.diameter,
                                   harness::identity_ids(n)),
        sched, inputs, 100'000);
    std::printf(
        "  K_D (two lines + silenced hub, diameter still %u): %s\n"
        "  Each line matched its standalone execution step for step and\n"
        "  decided alone.\n\n",
        fig.diameter, kd.verdict.summary().c_str());
  }

  std::printf(
      "Matching upper bounds close the story: two-phase needs only unique\n"
      "ids (single hop, Theorem 4.1); wPAXOS needs ids + n (multihop,\n"
      "Theorem 4.6). Nothing less suffices — that is what the three stops\n"
      "just demonstrated.\n");
  return 0;
}
