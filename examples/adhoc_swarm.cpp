// Ad hoc swarm: an unplanned deployment of radios scattered over an area,
// with persistently asymmetric link delays — the "ad hoc" setting the
// paper's introduction motivates.
//
// Compares the two ways this library can reach agreement:
//   * wPAXOS (§4.2): O(D * F_ack), needs n and ids;
//   * flooding gather-all: the O(n * F_ack) baseline the paper argues
//     against — it still works, just pays the bottleneck cost.
// Run on the same topology and the same skewed scheduler.
#include <cstdio>

#include "harness/experiment.hpp"
#include "net/topologies.hpp"
#include "util/table.hpp"

int main() {
  using namespace amac;

  util::Rng rng(2026);
  const std::size_t n = 80;
  const auto graph = net::make_random_geometric(n, 0.18, rng);
  const auto diameter = graph.diameter();
  const auto inputs = harness::inputs_random(n, rng);
  const auto ids = harness::permuted_ids(n, rng);
  const mac::Time fack = 5;

  std::printf("ad hoc swarm: %zu radios, diameter %u, skewed link delays "
              "bounded by F_ack=%llu\n\n",
              n, diameter, static_cast<unsigned long long>(fack));

  util::Table table({"algorithm", "knowledge", "decided at", "time/(D*F)",
                     "broadcasts", "max payload B", "verdict"});

  {
    mac::SkewedScheduler sched(fack, 11);
    const auto outcome = harness::run_consensus(
        graph, harness::wpaxos_factory(inputs, ids), sched, inputs,
        10'000'000);
    table.row()
        .cell("wPAXOS")
        .cell("ids + n")
        .cell(static_cast<std::uint64_t>(outcome.verdict.last_decision))
        .cell(static_cast<double>(outcome.verdict.last_decision) /
              (static_cast<double>(diameter) * fack))
        .cell(outcome.stats.broadcasts)
        .cell(outcome.stats.max_payload_bytes)
        .cell(outcome.verdict.summary());
  }
  {
    mac::SkewedScheduler sched(fack, 11);
    const auto outcome = harness::run_consensus(
        graph, harness::flooding_factory(inputs), sched, inputs, 10'000'000);
    table.row()
        .cell("flooding")
        .cell("ids + n")
        .cell(static_cast<std::uint64_t>(outcome.verdict.last_decision))
        .cell(static_cast<double>(outcome.verdict.last_decision) /
              (static_cast<double>(diameter) * fack))
        .cell(outcome.stats.broadcasts)
        .cell(outcome.stats.max_payload_bytes)
        .cell(outcome.verdict.summary());
  }

  table.print();
  std::printf(
      "\nBoth are safe; wPAXOS's aggregating trees keep its time\n"
      "proportional to the diameter rather than the swarm size.\n");
  return 0;
}
