// Partition anomaly: why "how many devices are out there?" is not optional.
//
// A deployment postmortem, staged on the paper's Figure 2 network. Two
// identical sensor lines were installed in two buildings; a planned
// backbone node connects every sensor of both lines. The firmware uses
// StabilityConsensus: flood (id, value) pairs and decide once nothing new
// has been heard for D+1 phases. It knows the network diameter D and has
// unique serial numbers — but was never told the device count n.
//
// While the backbone node's transmissions are delayed (a legal schedule:
// F_ack is finite but unknown), each building's line is byte-for-byte
// indistinguishable from a standalone deployment, goes quiet, and decides
// its own value. Agreement breaks — and Theorem 3.9 says no firmware
// without knowledge of n can avoid this. wPAXOS (which uses n) runs on the
// same network and schedule for contrast: it simply waits the partition
// out, because no majority is reachable until the backbone wakes up.
#include <cstdio>

#include "harness/experiment.hpp"
#include "net/paper_networks.hpp"

int main() {
  using namespace amac;

  const std::uint32_t diameter = 6;
  const auto fig = net::make_figure2(diameter);
  const std::size_t n = fig.kd.node_count();

  std::printf("K_%u network: two lines of %zu sensors + a %u-node backbone "
              "line, diameter %u, n=%zu\n",
              diameter, fig.l1.size(), diameter, diameter, n);

  // Measure how long a standalone line takes to decide, so we know how long
  // the adversary must delay the backbone.
  mac::Time standalone_t = 0;
  for (const mac::Value b : {0, 1}) {
    const std::size_t ld_n = fig.ld.node_count();
    const auto inputs = harness::inputs_all(ld_n, b);
    mac::SynchronousScheduler sched(1);
    const auto outcome = harness::run_consensus(
        fig.ld,
        harness::stability_factory(inputs, diameter,
                                   harness::identity_ids(ld_n)),
        sched, inputs, 100'000);
    standalone_t = std::max(standalone_t, outcome.verdict.last_decision);
  }
  std::printf("a standalone line decides by t=%llu; the backbone will be "
              "silent until t=%llu\n\n",
              static_cast<unsigned long long>(standalone_t),
              static_cast<unsigned long long>(standalone_t + 3));

  // Building 1 proposes 0, building 2 proposes 1, backbone proposes 0.
  std::vector<mac::Value> inputs(n, 0);
  for (const NodeId u : fig.l2) inputs[u] = 1;

  const auto make_holdback = [&] {
    auto sched = std::make_unique<mac::HoldbackScheduler>(
        std::make_unique<mac::SynchronousScheduler>(1), standalone_t + 3);
    sched->hold_sender(fig.bridge_line.front());
    return sched;
  };

  // --- The doomed firmware (no n).
  {
    auto sched = make_holdback();
    mac::Network net(fig.kd,
                     harness::stability_factory(inputs, diameter,
                                                harness::identity_ids(n)),
                     *sched);
    net.run(mac::StopWhen::kAllDecided, 1'000'000);
    const auto verdict = verify::check_consensus(net, inputs);
    std::printf("StabilityConsensus (knows D, NOT n): %s\n",
                verdict.summary().c_str());
    std::printf("  building 1 decided %d at t=%llu; building 2 decided %d "
                "at t=%llu  <-- split brain\n",
                net.decision(fig.l1[0]).value,
                static_cast<unsigned long long>(net.decision(fig.l1[0]).time),
                net.decision(fig.l2[0]).value,
                static_cast<unsigned long long>(
                    net.decision(fig.l2[0]).time));
  }

  // --- The fix (knows n): wPAXOS cannot count a majority of n while the
  // backbone is silent, so it just takes longer.
  {
    auto sched = make_holdback();
    mac::Network net(fig.kd,
                     harness::wpaxos_factory(inputs,
                                             harness::identity_ids(n)),
                     *sched);
    net.run(mac::StopWhen::kAllDecided, 10'000'000);
    const auto verdict = verify::check_consensus(net, inputs);
    std::printf("wPAXOS (knows n): %s\n", verdict.summary().c_str());
  }

  std::printf(
      "\nTheorem 3.9: with unique ids and knowledge of D but not n, every\n"
      "deterministic algorithm has a network + schedule that splits it.\n");
  return 0;
}
