// Sensor grid: 100 devices in a 10x10 mesh agree on a firmware epoch.
//
// The scenario the paper's multihop algorithm (wPAXOS, §4.2) is built for:
// a multihop deployment where nodes know how many devices were installed
// (n) and have serial numbers (unique ids), but know nothing about the
// topology or about message timing. Half the grid boots proposing to stay
// on epoch 0, half proposes moving to epoch 1; wPAXOS settles it in
// O(D * F_ack) time.
//
// The example also surfaces the machinery the paper describes: when the
// leader election stabilized, when the leader's shortest-path tree
// completed, and how response aggregation kept messages constant-size.
#include <cstdio>

#include "core/wpaxos/wpaxos.hpp"
#include "harness/experiment.hpp"
#include "net/topologies.hpp"

int main() {
  using namespace amac;

  const std::size_t side = 10;
  const auto graph = net::make_grid(side, side);
  const std::size_t n = graph.node_count();
  const auto diameter = graph.diameter();

  // Serial numbers: a random permutation, so the eventual leader (max id)
  // sits at an arbitrary grid position.
  util::Rng rng(7);
  const auto ids = harness::permuted_ids(n, rng);
  const auto inputs = harness::inputs_split(n);

  // Radio environment: random delivery delays bounded by F_ack = 6 ticks.
  const mac::Time fack = 6;
  mac::UniformRandomScheduler scheduler(fack, /*seed=*/99);

  std::printf("sensor grid: %zux%zu mesh, n=%zu, diameter=%u, F_ack=%llu\n",
              side, side, n, diameter,
              static_cast<unsigned long long>(fack));

  // Track stabilization while the run progresses.
  NodeId leader_index = 0;
  for (NodeId u = 0; u < n; ++u) {
    if (ids[u] == n - 1) leader_index = u;
  }
  const auto bfs = graph.bfs_distances(leader_index);
  mac::Time leader_stable = 0;
  mac::Time tree_stable = 0;

  mac::Network net(graph, harness::wpaxos_factory(inputs, ids), scheduler);
  net.set_post_event_hook([&](mac::Network& network) {
    const auto all = [&](auto&& pred) {
      for (NodeId u = 0; u < n; ++u) {
        const auto* p =
            dynamic_cast<const core::wpaxos::WPaxos*>(&network.process(u));
        if (!pred(*p, u)) return false;
      }
      return true;
    };
    if (leader_stable == 0 &&
        all([&](const core::wpaxos::WPaxos& p, NodeId) {
          return p.omega() == n - 1;
        })) {
      leader_stable = network.now();
    }
    if (tree_stable == 0 &&
        all([&](const core::wpaxos::WPaxos& p, NodeId u) {
          const auto it = p.dist().find(n - 1);
          return it != p.dist().end() && it->second == bfs[u];
        })) {
      tree_stable = network.now();
    }
  });

  net.run(mac::StopWhen::kAllDecided, 1'000'000);
  const auto verdict = verify::check_consensus(net, inputs);

  std::printf("leader election stabilized at t=%llu (leader id %zu at grid "
              "position (%u,%u))\n",
              static_cast<unsigned long long>(leader_stable), n - 1,
              leader_index % static_cast<NodeId>(side),
              leader_index / static_cast<NodeId>(side));
  std::printf("leader's shortest-path tree completed at t=%llu\n",
              static_cast<unsigned long long>(tree_stable));
  std::printf("consensus: %s\n", verdict.summary().c_str());
  std::printf("time bound check: %llu <= c * D * F_ack with c = %.2f\n",
              static_cast<unsigned long long>(verdict.last_decision),
              static_cast<double>(verdict.last_decision) /
                  (static_cast<double>(diameter) * fack));
  std::printf("broadcasts: %llu, deliveries: %llu, max payload: %zu bytes "
              "(constant in n thanks to aggregation)\n",
              static_cast<unsigned long long>(net.stats().broadcasts),
              static_cast<unsigned long long>(net.stats().deliveries),
              net.stats().max_payload_bytes);
  return verdict.ok() ? 0 : 1;
}
