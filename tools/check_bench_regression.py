#!/usr/bin/env python3
"""Cheap bench-regression gate over BENCH_engine.json.

Compares ns_per_op of selected benchmarks in a freshly produced
BENCH_engine.json against the committed baseline
(bench/BENCH_baseline.json) and fails when any regresses past the
allowed ratio. CI runs this right after the bench smoke step, so a hot-path
regression fails the build with the offending numbers in the log instead of
silently drifting across PRs.

Usage:
  check_bench_regression.py CURRENT.json BASELINE.json \
      --bench 'BM_EngineSyncRounds/256' [--bench ...] [--max-ratio 1.5] \
      [--relative-to 'BM_RefEngineSyncRounds/256']

With --relative-to, each gated benchmark is first normalized by the named
reference benchmark FROM THE SAME FILE (current/current and
baseline/baseline) before the ratios are compared. Since the frozen
reference engine runs the identical workload in the same process, the
normalized number measures the code, not the runner: a slow shared CI VM
scales both engines equally and cancels out. Without the flag the raw
ns_per_op values are compared — only meaningful when current and baseline
come from comparable machines.

The ratio is deliberately generous (default 1.5x): CI machines are noisy
and heterogeneous; the gate exists to catch step-function regressions
(an accidental O(n) in the event loop), not percent-level drift — the
uploaded BENCH_engine.json artifact tracks that.
"""
import argparse
import json
import sys


def load_ns_per_op(path: str) -> dict:
    """Loads {name: ns_per_op}, validating every row.

    A truncated or hand-mangled BENCH_engine.json must fail the gate with a
    one-line error, not crash it with a KeyError traceback or — worse —
    slip a zero ns_per_op into the --relative-to normalization divide.
    """
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: {path}: unreadable or invalid JSON: {e}")
    if not isinstance(doc, dict) or doc.get("schema") != "amac-bench-v1":
        schema = doc.get("schema") if isinstance(doc, dict) else None
        sys.exit(f"error: {path}: unexpected schema {schema!r}")
    rows = doc.get("benchmarks")
    if not isinstance(rows, list):
        sys.exit(f"error: {path}: missing 'benchmarks' array")
    table = {}
    for i, row in enumerate(rows):
        name = row.get("name") if isinstance(row, dict) else None
        ns = row.get("ns_per_op") if isinstance(row, dict) else None
        if (not isinstance(name, str) or isinstance(ns, bool)
                or not isinstance(ns, (int, float)) or not ns > 0):
            sys.exit(f"error: {path}: benchmarks[{i}] is malformed "
                     f"(need a string 'name' and a positive numeric "
                     f"'ns_per_op'): {row!r}")
        table[name] = float(ns)
    return table


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="freshly produced BENCH_engine.json")
    parser.add_argument("baseline", help="committed baseline json")
    parser.add_argument("--bench", action="append", required=True,
                        help="benchmark name to gate (repeatable)")
    parser.add_argument("--max-ratio", type=float, default=1.5,
                        help="fail when current/baseline exceeds this")
    parser.add_argument("--relative-to", default=None,
                        help="normalize by this benchmark from the same "
                             "file before comparing (machine-independent)")
    args = parser.parse_args()

    current = load_ns_per_op(args.current)
    baseline = load_ns_per_op(args.baseline)

    def metric(table: dict, path: str, name: str):
        if name not in table:
            print(f"FAIL {name}: missing from {path}")
            return None
        value = table[name]
        if args.relative_to is not None:
            if args.relative_to not in table:
                print(f"FAIL {args.relative_to}: missing from {path}")
                return None
            value /= table[args.relative_to]
        return value

    unit = f"x {args.relative_to}" if args.relative_to else "ns/op"
    failed = False
    for name in args.bench:
        cur = metric(current, args.current, name)
        base = metric(baseline, args.baseline, name)
        if cur is None or base is None:
            failed = True
            continue
        ratio = cur / base
        verdict = "FAIL" if ratio > args.max_ratio else "ok"
        print(f"{verdict:4} {name}: {cur:.4g} {unit} vs baseline "
              f"{base:.4g} {unit} (ratio {ratio:.2f}, "
              f"limit {args.max_ratio:.2f})")
        if ratio > args.max_ratio:
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
