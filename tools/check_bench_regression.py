#!/usr/bin/env python3
"""Cheap bench-regression gate over BENCH_engine.json.

Compares ns_per_op of selected benchmarks in a freshly produced
BENCH_engine.json against the committed baseline
(bench/BENCH_baseline.json) and fails when any regresses past the
allowed ratio. CI runs this right after the bench smoke step, so a hot-path
regression fails the build with the offending numbers in the log instead of
silently drifting across PRs.

Usage:
  check_bench_regression.py CURRENT.json BASELINE.json \
      --bench 'BM_EngineSyncRounds/256' [--bench ...] [--max-ratio 1.5] \
      [--relative-to 'BM_RefEngineSyncRounds/256']

With --relative-to, each gated benchmark is first normalized by the named
reference benchmark FROM THE SAME FILE (current/current and
baseline/baseline) before the ratios are compared. Since the frozen
reference engine runs the identical workload in the same process, the
normalized number measures the code, not the runner: a slow shared CI VM
scales both engines equally and cancels out. Without the flag the raw
ns_per_op values are compared — only meaningful when current and baseline
come from comparable machines.

The ratio is deliberately generous (default 1.5x): CI machines are noisy
and heterogeneous; the gate exists to catch step-function regressions
(an accidental O(n) in the event loop), not percent-level drift — the
uploaded BENCH_engine.json artifact tracks that.

A gated benchmark that is missing from the BASELINE file is reported and
skipped, not failed: that is exactly what a freshly added benchmark looks
like before the baseline is refreshed, and a new row must not force the
refresh into the same commit. Missing from the CURRENT file still fails
(the gate exists to notice rows disappearing), and malformed rows in
either file still abort with an error.

With --min-speedup R (requires --relative-to), each gated benchmark must
additionally be at least R times faster than its reference benchmark IN
THE CURRENT FILE: reference ns_per_op / gated ns_per_op >= R. This is an
absolute floor, baseline-free — it gates brand-new rows (e.g. the
/1024 engine-vs-reference pairs) the moment they exist, and it is
machine-independent for the same reason --relative-to is.
"""
import argparse
import json
import sys


def load_ns_per_op(path: str) -> dict:
    """Loads {name: ns_per_op}, validating every row.

    A truncated or hand-mangled BENCH_engine.json must fail the gate with a
    one-line error, not crash it with a KeyError traceback or — worse —
    slip a zero ns_per_op into the --relative-to normalization divide.
    """
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: {path}: unreadable or invalid JSON: {e}")
    if not isinstance(doc, dict) or doc.get("schema") != "amac-bench-v1":
        schema = doc.get("schema") if isinstance(doc, dict) else None
        sys.exit(f"error: {path}: unexpected schema {schema!r}")
    rows = doc.get("benchmarks")
    if not isinstance(rows, list):
        sys.exit(f"error: {path}: missing 'benchmarks' array")
    table = {}
    for i, row in enumerate(rows):
        name = row.get("name") if isinstance(row, dict) else None
        ns = row.get("ns_per_op") if isinstance(row, dict) else None
        if (not isinstance(name, str) or isinstance(ns, bool)
                or not isinstance(ns, (int, float)) or not ns > 0):
            sys.exit(f"error: {path}: benchmarks[{i}] is malformed "
                     f"(need a string 'name' and a positive numeric "
                     f"'ns_per_op'): {row!r}")
        table[name] = float(ns)
    return table


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="freshly produced BENCH_engine.json")
    parser.add_argument("baseline", help="committed baseline json")
    parser.add_argument("--bench", action="append", required=True,
                        help="benchmark name to gate (repeatable)")
    parser.add_argument("--max-ratio", type=float, default=1.5,
                        help="fail when current/baseline exceeds this")
    parser.add_argument("--relative-to", default=None,
                        help="normalize by this benchmark from the same "
                             "file before comparing (machine-independent)")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="with --relative-to: also fail any gated "
                             "benchmark whose current speedup over the "
                             "reference (reference ns_per_op / gated "
                             "ns_per_op) is below this floor")
    args = parser.parse_args()
    if args.min_speedup is not None and args.relative_to is None:
        parser.error("--min-speedup requires --relative-to")

    current = load_ns_per_op(args.current)
    baseline = load_ns_per_op(args.baseline)

    def metric(table: dict, path: str, name: str, *, missing_fails: bool):
        """The (optionally normalized) value of `name` in `table`, or None
        when it (or the normalizer) is absent — printing FAIL only when the
        absence is from the current file (missing_fails)."""
        needed = [name] + ([args.relative_to] if args.relative_to else [])
        for key in needed:
            if key not in table:
                if missing_fails:
                    print(f"FAIL {key}: missing from {path}")
                return None
        value = table[name]
        if args.relative_to is not None:
            value /= table[args.relative_to]
        return value

    unit = f"x {args.relative_to}" if args.relative_to else "ns/op"
    failed = False
    for name in args.bench:
        cur = metric(current, args.current, name, missing_fails=True)
        if cur is None:
            failed = True
            continue
        if args.min_speedup is not None:
            # cur is gated/reference, so the speedup is its reciprocal.
            speedup = 1.0 / cur
            verdict = "FAIL" if speedup < args.min_speedup else "ok"
            print(f"{verdict:4} {name}: {speedup:.2f}x over "
                  f"{args.relative_to} (floor {args.min_speedup:.2f}x)")
            if speedup < args.min_speedup:
                failed = True
        base = metric(baseline, args.baseline, name, missing_fails=False)
        if base is None:
            print(f"skip {name}: not in baseline {args.baseline} (new "
                  f"benchmark — refresh the baseline to gate its ratio)")
            continue
        ratio = cur / base
        verdict = "FAIL" if ratio > args.max_ratio else "ok"
        print(f"{verdict:4} {name}: {cur:.4g} {unit} vs baseline "
              f"{base:.4g} {unit} (ratio {ratio:.2f}, "
              f"limit {args.max_ratio:.2f})")
        if ratio > args.max_ratio:
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
