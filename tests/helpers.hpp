// Shared test fixtures: a probe process that records everything it observes.
#pragma once

#include <vector>

#include "mac/engine.hpp"
#include "mac/process.hpp"

namespace amac::testutil {

/// Broadcasts `num_broadcasts` one-byte messages (payload = sequence
/// number), pacing on acks, then optionally decides. Records receive and
/// ack events with timestamps for assertions.
class ProbeProcess final : public mac::Process {
 public:
  struct ReceiveEvent {
    mac::Time time;
    NodeId sender;
    std::uint8_t seq;
  };

  ProbeProcess(NodeId id, std::size_t num_broadcasts,
               bool decide_when_done = false, bool double_broadcast = false)
      : id_(id), num_broadcasts_(num_broadcasts),
        decide_when_done_(decide_when_done),
        double_broadcast_(double_broadcast) {}

  void on_start(mac::Context& ctx) override {
    send_next(ctx);
    if (double_broadcast_) send_next(ctx);  // second must be discarded
  }

  void on_receive(const mac::Packet& packet, mac::Context& ctx) override {
    receives.push_back(ReceiveEvent{ctx.now(), packet.sender,
                                    packet.payload.empty()
                                        ? std::uint8_t{0xFF}
                                        : packet.payload[0]});
    order.push_back('r');
  }

  void on_ack(mac::Context& ctx) override {
    acks.push_back(ctx.now());
    order.push_back('a');
    if (sent_ < num_broadcasts_) {
      send_next(ctx);
    } else if (decide_when_done_ && !decided_) {
      decided_ = true;
      ctx.decide(0);
    }
  }

  [[nodiscard]] std::unique_ptr<mac::Process> clone() const override {
    return std::make_unique<ProbeProcess>(*this);
  }

  void digest(util::Hasher& h) const override {
    h.mix_u64(id_);
    h.mix_u64(sent_);
    h.mix_u64(receives.size());
    for (const auto& r : receives) {
      h.mix_u64(r.sender);
      h.mix_u8(r.seq);
    }
  }

  std::vector<ReceiveEvent> receives;
  std::vector<mac::Time> acks;
  std::vector<char> order;  ///< callback order: 'r' receive, 'a' ack

 private:
  void send_next(mac::Context& ctx) {
    util::Buffer payload{static_cast<std::uint8_t>(sent_)};
    ++sent_;
    ctx.broadcast(std::move(payload));
  }

  NodeId id_;
  std::size_t num_broadcasts_;
  bool decide_when_done_;
  bool double_broadcast_;
  std::size_t sent_ = 0;
  bool decided_ = false;
};

inline mac::ProcessFactory probe_factory(std::size_t num_broadcasts,
                                         bool decide_when_done = false,
                                         bool double_broadcast = false) {
  return [=](NodeId u) {
    return std::make_unique<ProbeProcess>(u, num_broadcasts, decide_when_done,
                                          double_broadcast);
  };
}

inline const ProbeProcess& probe_at(const mac::Network& net, NodeId u) {
  const auto* p = dynamic_cast<const ProbeProcess*>(&net.process(u));
  AMAC_ASSERT(p != nullptr);
  return *p;
}

}  // namespace amac::testutil
