// Directed adversarial safety scenarios for wPAXOS — the Lemma 4.3
// machinery (prior-proposal adoption) exercised deterministically, rather
// than statistically as in the integration sweeps.
#include <gtest/gtest.h>

#include "core/wpaxos/wpaxos.hpp"
#include "harness/experiment.hpp"
#include "net/topologies.hpp"

namespace amac::core::wpaxos {
namespace {

TEST(WPaxosSafety, LateLeaderAdoptsInterimMajorityValue) {
  // Clique of 3, ids = node index. Hold everything node 2 (the eventual
  // leader) SENDS until long after nodes 0-1 have decided: node 1 is the
  // interim leader, reaches a majority (itself + node 0) and decides ITS
  // value. When node 2 finally speaks, Lemma 4.3's adoption path must make
  // it propose the already-chosen value — otherwise it would override the
  // decision and break agreement.
  const auto g = net::make_clique(3);
  const std::vector<mac::Value> inputs{0, 1, 0};  // interim leader holds 1
  const auto ids = harness::identity_ids(3);

  mac::HoldbackScheduler sched(std::make_unique<mac::SynchronousScheduler>(1),
                               /*release=*/60);
  sched.hold_sender(2);
  mac::Network net(g, harness::wpaxos_factory(inputs, ids), sched);
  net.run(mac::StopWhen::kAllDecided, 100'000);

  const auto verdict = verify::check_consensus(net, inputs);
  ASSERT_TRUE(verdict.ok()) << verdict.summary();
  // The interim majority chose node 1's value before t=60; the decision is
  // already network-wide by the time node 2's transmissions release (node
  // 2 hears the decide flood — its receives were never held).
  EXPECT_EQ(*verdict.decision, 1);
  EXPECT_LT(net.decision(0).time, 60u);
}

TEST(WPaxosSafety, TwoStagedLeaderships) {
  // Five nodes; nodes 3 then 4 are released in stages. Stage 1: node 2
  // leads {0,1,2} (a majority of 5? no — 3 of 5 IS a majority) and
  // decides its value. Stage 2 and 3 releases must conform.
  const auto g = net::make_clique(5);
  const std::vector<mac::Value> inputs{0, 0, 1, 0, 0};
  const auto ids = harness::identity_ids(5);

  auto base = std::make_unique<mac::SynchronousScheduler>(1);
  mac::HoldbackScheduler sched(std::move(base), /*release=*/80);
  sched.hold_sender(3);
  sched.hold_sender(4);
  mac::Network net(g, harness::wpaxos_factory(inputs, ids), sched);
  net.run(mac::StopWhen::kAllDecided, 100'000);

  const auto verdict = verify::check_consensus(net, inputs);
  ASSERT_TRUE(verdict.ok()) << verdict.summary();
  EXPECT_EQ(*verdict.decision, 1);  // node 2's interim decision sticks
}

TEST(WPaxosSafety, MinoritySegmentCannotDecide) {
  // Hold the senders of a 3-node majority segment: the visible 2-node
  // minority must NOT decide anything while partitioned (no majority of
  // n = 5 reachable), and the eventual decision involves everyone.
  const auto g = net::make_clique(5);
  const std::vector<mac::Value> inputs{0, 0, 1, 1, 1};
  const auto ids = harness::identity_ids(5);

  mac::HoldbackScheduler sched(std::make_unique<mac::SynchronousScheduler>(1),
                               /*release=*/100);
  sched.hold_sender(2);
  sched.hold_sender(3);
  sched.hold_sender(4);
  mac::Network net(g, harness::wpaxos_factory(inputs, ids), sched);
  // Run only up to just before the release: nobody may decide.
  net.run(mac::StopWhen::kAllDecided, 99);
  for (NodeId u = 0; u < 5; ++u) {
    EXPECT_FALSE(net.decision(u).decided) << "node " << u;
  }
  // After release, consensus completes correctly.
  net.run(mac::StopWhen::kAllDecided, 1'000'000);
  const auto verdict = verify::check_consensus(net, inputs);
  EXPECT_TRUE(verdict.ok()) << verdict.summary();
}

TEST(WPaxosSafety, SlowHalfLineStillAgrees) {
  // Multihop variant: the far half of a line is held back; the near half
  // contains a majority and decides; releases join consistently.
  const std::size_t n = 9;
  const auto g = net::make_line(n);
  const auto inputs = harness::inputs_split(n);  // 0s near, 1s far
  // Leader (max id) in the NEAR half so the interim majority can finish.
  std::vector<std::uint64_t> ids{8, 7, 6, 5, 4, 3, 2, 1, 0};

  mac::HoldbackScheduler sched(std::make_unique<mac::SynchronousScheduler>(1),
                               /*release=*/200);
  for (NodeId u = 5; u < n; ++u) sched.hold_sender(u);
  mac::Network net(g, harness::wpaxos_factory(inputs, ids), sched);
  net.run(mac::StopWhen::kAllDecided, 1'000'000);
  const auto verdict = verify::check_consensus(net, inputs);
  ASSERT_TRUE(verdict.ok()) << verdict.summary();
  EXPECT_EQ(*verdict.decision, 0);  // the near majority's side
}

TEST(WPaxosSafety, DecisionSurvivesStaggeredLeaderChurn) {
  // Nodes wake into leadership in id order: node 1 leads {0, 1} first,
  // then node 2 wakes at t=40, then node 3 (the true max) at t=80. Every
  // regime change must respect the interim majority's choice — node 1's
  // value 0, chosen by {0, 1, ...} once a majority exists. With n = 4 a
  // majority is 3, so nothing is chosen before node 2 wakes; the first
  // possible choice is under node 2's leadership with value 0 (adopting
  // nothing — all awake nodes hold 0 except node 0? inputs below).
  const auto g = net::make_clique(4);
  const std::vector<mac::Value> inputs{1, 0, 0, 0};
  const auto ids = harness::identity_ids(4);

  mac::HoldbackScheduler sched(std::make_unique<mac::SynchronousScheduler>(1),
                               /*release=*/80);
  sched.hold_sender_until(2, 40);
  sched.hold_sender_until(3, 80);
  mac::Network net(g, harness::wpaxos_factory(inputs, ids), sched);
  net.run(mac::StopWhen::kAllDecided, 1'000'000);
  const auto verdict = verify::check_consensus(net, inputs);
  ASSERT_TRUE(verdict.ok()) << verdict.summary();
  // Majority {0,1,2} existed from t=40 with leader 2; its decision must
  // precede node 3's wake-up and survive it.
  EXPECT_LT(net.decision(0).time, 80u);
}

}  // namespace
}  // namespace amac::core::wpaxos
