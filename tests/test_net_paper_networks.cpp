#include "net/paper_networks.hpp"

#include <gtest/gtest.h>

#include <set>

namespace amac::net {
namespace {

class Figure1Param : public ::testing::TestWithParam<
                         std::pair<std::uint32_t, std::size_t>> {};

TEST_P(Figure1Param, Claim34SizeAndDiameter) {
  const auto [diameter, k] = GetParam();
  const auto nets = make_figure1(diameter, k);
  // Claim 3.4: both networks have size n' = 3((D-2)/2 + k) + 12 and
  // diameter D.
  const std::size_t expected_n = 3 * ((diameter - 2) / 2 + k) + 12;
  EXPECT_EQ(nets.size, expected_n);
  EXPECT_EQ(nets.a.node_count(), expected_n);
  EXPECT_EQ(nets.b.node_count(), expected_n);
  EXPECT_EQ(nets.a.diameter(), diameter);
  EXPECT_EQ(nets.b.diameter(), diameter);
}

TEST_P(Figure1Param, PropertyStarCoveringMap) {
  const auto [diameter, k] = GetParam();
  const auto nets = make_figure1(diameter, k);
  const auto& lay = nets.layout;
  const auto edges = lay.edges();

  // Property (*): for every gadget node u and copy u_i in B, and every
  // gadget edge {u, v}, u_i has exactly one neighbor in S_v; and u_i has no
  // other edges.
  for (std::size_t local = 0; local < lay.size(); ++local) {
    // Gadget-neighborhood of `local`.
    std::multiset<std::size_t> gadget_nb;
    for (const auto& e : edges) {
      if (e.u == local) gadget_nb.insert(e.v);
      if (e.v == local) gadget_nb.insert(e.u);
    }
    for (int copy = 0; copy < 3; ++copy) {
      const NodeId ui = nets.b_node(copy, local);
      std::multiset<std::size_t> lifted_nb;
      for (const NodeId w : nets.b.neighbors(ui)) {
        lifted_nb.insert(nets.b_local(w));
      }
      EXPECT_EQ(lifted_nb, gadget_nb)
          << "copy " << copy << " local " << local;
      // "exactly one neighbor in S_v" for each gadget edge:
      for (const auto v_local : std::set<std::size_t>(gadget_nb.begin(),
                                                      gadget_nb.end())) {
        const auto want =
            static_cast<std::ptrdiff_t>(gadget_nb.count(v_local));
        std::ptrdiff_t got = 0;
        for (int c2 = 0; c2 < 3; ++c2) {
          if (nets.b.has_edge(ui, nets.b_node(c2, v_local))) ++got;
        }
        EXPECT_EQ(got, want);
      }
    }
  }
}

TEST_P(Figure1Param, GadgetsOfADisjointAndBridgedOnlyByQ) {
  const auto [diameter, k] = GetParam();
  const auto nets = make_figure1(diameter, k);
  const std::size_t sz = nets.layout.size();
  // No edge runs between the two gadgets directly.
  for (std::size_t l0 = 0; l0 < sz; ++l0) {
    for (std::size_t l1 = 0; l1 < sz; ++l1) {
      EXPECT_FALSE(nets.a.has_edge(nets.a_node(0, l0), nets.a_node(1, l1)));
    }
  }
  // Gadget nodes only touch q (besides gadget-internal edges): q's gadget
  // neighbors are exactly the p-fan nodes.
  for (int g = 0; g < 2; ++g) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_TRUE(nets.a.has_edge(nets.q, nets.a_node(g, nets.layout.p(j))));
    }
    EXPECT_FALSE(nets.a.has_edge(nets.q, nets.a_node(g, nets.layout.c())));
  }
}

TEST_P(Figure1Param, GadgetInternalNeighborhoodsMatchAcrossAAndB) {
  // Within a gadget (ignoring q), node u's neighborhood in A matches the
  // lifted neighborhood structure in B — the basis of Lemma 3.6.
  const auto [diameter, k] = GetParam();
  const auto nets = make_figure1(diameter, k);
  const auto& lay = nets.layout;
  for (std::size_t local = 0; local < lay.size(); ++local) {
    for (int g = 0; g < 2; ++g) {
      const NodeId ua = nets.a_node(g, local);
      std::multiset<std::size_t> a_nb;
      for (const NodeId w : nets.a.neighbors(ua)) {
        if (w == nets.q) continue;  // the bridge is outside the gadget
        a_nb.insert(w % lay.size());
      }
      std::multiset<std::size_t> b_nb;
      for (const NodeId w : nets.b.neighbors(nets.b_node(0, local))) {
        b_nb.insert(nets.b_local(w));
      }
      EXPECT_EQ(a_nb, b_nb) << "gadget " << g << " local " << local;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Figure1Param,
    ::testing::Values(std::pair{6u, std::size_t{1}},
                      std::pair{6u, std::size_t{4}},
                      std::pair{8u, std::size_t{1}},
                      std::pair{10u, std::size_t{3}},
                      std::pair{12u, std::size_t{8}},
                      std::pair{20u, std::size_t{2}}));

TEST(Figure1, ForSizeRecipeMatchesPaper) {
  // Theorem 3.3 recipe: smallest k with n' >= n.
  const auto nets = make_figure1_for_size(50, 8);
  EXPECT_GE(nets.size, 50u);
  // One unit of k less must undershoot (k minimality), unless k == 1.
  const std::size_t d = (8 - 2) / 2;
  EXPECT_LT(3 * (d + (nets.layout.k - 1)) + 12, 50u + 3u);
  EXPECT_EQ(nets.a.diameter(), 8u);
}

TEST(Figure1, BIsConnected) {
  const auto nets = make_figure1(10, 2);
  EXPECT_TRUE(nets.b.is_connected());
}

class Figure2Param : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(Figure2Param, StructureAndDiameter) {
  const std::uint32_t d = GetParam();
  const auto fig = make_figure2(d);
  EXPECT_EQ(fig.kd.node_count(), 2 * (d + 1) + d);
  EXPECT_EQ(fig.kd.diameter(), d);
  EXPECT_EQ(fig.ld.node_count(), d + 1u);
  EXPECT_EQ(fig.ld.diameter(), d);

  // Every node of both copies touches w, and only w, outside its line.
  const NodeId w = fig.bridge_line.front();
  for (const auto& copy : {fig.l1, fig.l2}) {
    for (const NodeId u : copy) {
      EXPECT_TRUE(fig.kd.has_edge(u, w));
    }
  }
  // The copies are not directly connected.
  for (const NodeId u : fig.l1) {
    for (const NodeId v : fig.l2) {
      EXPECT_FALSE(fig.kd.has_edge(u, v));
    }
  }
}

TEST_P(Figure2Param, LineCopiesMatchStandaloneInternally) {
  const std::uint32_t d = GetParam();
  const auto fig = make_figure2(d);
  // Within a copy, consecutive nodes are adjacent exactly as in L_D.
  for (std::uint32_t i = 0; i <= d; ++i) {
    for (std::uint32_t j = i + 1; j <= d; ++j) {
      const bool adjacent_ld = fig.ld.has_edge(i, j);
      EXPECT_EQ(fig.kd.has_edge(fig.l1[i], fig.l1[j]), adjacent_ld);
      EXPECT_EQ(fig.kd.has_edge(fig.l2[i], fig.l2[j]), adjacent_ld);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, Figure2Param,
                         ::testing::Values(2u, 3u, 5u, 8u, 13u, 21u));

}  // namespace
}  // namespace amac::net
