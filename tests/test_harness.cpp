#include "harness/experiment.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "net/topologies.hpp"

namespace amac::harness {
namespace {

TEST(Inputs, AllConstant) {
  EXPECT_EQ(inputs_all(4, 1), (std::vector<mac::Value>{1, 1, 1, 1}));
}

TEST(Inputs, Alternating) {
  EXPECT_EQ(inputs_alternating(5), (std::vector<mac::Value>{0, 1, 0, 1, 0}));
}

TEST(Inputs, SplitHalves) {
  EXPECT_EQ(inputs_split(4), (std::vector<mac::Value>{0, 0, 1, 1}));
  EXPECT_EQ(inputs_split(5), (std::vector<mac::Value>{0, 0, 1, 1, 1}));
}

TEST(Inputs, RandomBinaryOnly) {
  util::Rng rng(2);
  const auto v = inputs_random(100, rng);
  for (const auto x : v) EXPECT_TRUE(x == 0 || x == 1);
  // Not all equal with overwhelming probability.
  EXPECT_NE(std::count(v.begin(), v.end(), 0), 0);
  EXPECT_NE(std::count(v.begin(), v.end(), 1), 0);
}

TEST(Ids, IdentityAndPermutation) {
  EXPECT_EQ(identity_ids(3), (std::vector<std::uint64_t>{0, 1, 2}));
  util::Rng rng(3);
  const auto p = permuted_ids(50, rng);
  auto sorted = p;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, identity_ids(50));
}

TEST(Runner, ReportsStatsAndVerdict) {
  const auto g = net::make_clique(3);
  const auto inputs = inputs_all(3, 0);
  mac::SynchronousScheduler sched(1);
  const auto outcome =
      run_consensus(g, two_phase_factory(inputs), sched, inputs, 1000);
  EXPECT_TRUE(outcome.verdict.ok());
  EXPECT_GT(outcome.stats.broadcasts, 0u);
  EXPECT_GT(outcome.stats.deliveries, 0u);
}

TEST(Runner, TimeoutYieldsNonTermination) {
  const auto g = net::make_line(30);
  const auto inputs = inputs_alternating(30);
  mac::MaxDelayScheduler sched(10);
  // Far too little time for consensus on a 30-line.
  const auto outcome = run_consensus(
      g, wpaxos_factory(inputs, identity_ids(30)), sched, inputs, 20);
  EXPECT_FALSE(outcome.verdict.termination);
}

TEST(Factories, KnowledgeDiscipline) {
  // Anonymous factory produces processes with identical digests across
  // nodes with the same input — no id leakage.
  const auto f = anonymous_factory({1, 1}, 4);
  auto p0 = f(0);
  auto p1 = f(1);
  util::Hasher h0;
  p0->digest(h0);
  util::Hasher h1;
  p1->digest(h1);
  EXPECT_EQ(h0.digest(), h1.digest());
}

}  // namespace
}  // namespace amac::harness
