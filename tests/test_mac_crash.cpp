#include <gtest/gtest.h>

#include "helpers.hpp"
#include "mac/engine.hpp"
#include "mac/schedulers.hpp"
#include "net/topologies.hpp"

namespace amac::mac {
namespace {

using testutil::probe_at;
using testutil::probe_factory;

TEST(Crash, MidBroadcastPartialDelivery) {
  // Line 0-1-2. Node 1's broadcast reaches 0 at t=1 and would reach 2 at
  // t=5; node 1 crashes at t=2: broadcast is non-atomic, so 0 received and
  // 2 never will.
  const auto g = net::make_line(3);
  ScriptedScheduler sched;
  sched.script(1, 0, /*ack=*/5, {{0, 1}, {2, 5}});
  Network net(g, probe_factory(1), sched);
  net.schedule_crash(CrashPlan{1, 2});
  net.run(StopWhen::kQuiescent, 100);

  EXPECT_TRUE(net.crashed(1));
  std::size_t from_1_at_0 = 0;
  for (const auto& r : probe_at(net, 0).receives) {
    if (r.sender == 1) ++from_1_at_0;
  }
  std::size_t from_1_at_2 = 0;
  for (const auto& r : probe_at(net, 2).receives) {
    if (r.sender == 1) ++from_1_at_2;
  }
  EXPECT_EQ(from_1_at_0, 1u);
  EXPECT_EQ(from_1_at_2, 0u);
}

TEST(Crash, CrashedNodeGetsNoCallbacks) {
  const auto g = net::make_clique(3);
  MaxDelayScheduler sched(10);
  Network net(g, probe_factory(5), sched);
  net.schedule_crash(CrashPlan{0, 3});
  net.run(StopWhen::kQuiescent, 10000);
  // Node 0 broadcast at t=0 with ack due at t=10 > crash at 3: no acks,
  // no receives ever recorded.
  EXPECT_TRUE(probe_at(net, 0).acks.empty());
  EXPECT_TRUE(probe_at(net, 0).receives.empty());
}

TEST(Crash, DeliveriesToCrashedNodeDropped) {
  const auto g = net::make_clique(2);
  MaxDelayScheduler sched(10);
  Network net(g, probe_factory(1), sched);
  net.schedule_crash(CrashPlan{1, 5});
  net.run(StopWhen::kQuiescent, 1000);
  // Node 0's broadcast arrives at t=10, after node 1 crashed at 5.
  EXPECT_TRUE(probe_at(net, 1).receives.empty());
  // Node 0 still gets its ack (the MAC layer only guarantees delivery to
  // non-faulty neighbors).
  EXPECT_EQ(probe_at(net, 0).acks.size(), 1u);
}

TEST(Crash, DeliveryAtCrashTickStillHappens) {
  const auto g = net::make_clique(2);
  ScriptedScheduler sched;
  sched.script(0, 0, 5, {{1, 5}});
  Network net(g, probe_factory(1), sched);
  net.schedule_crash(CrashPlan{1, 5});  // crash processed after deliveries
  net.run(StopWhen::kQuiescent, 100);
  EXPECT_EQ(probe_at(net, 1).receives.size(), 1u);
}

TEST(Crash, AllAliveDecidedIgnoresCrashed) {
  const auto g = net::make_clique(3);
  SynchronousScheduler sched(1);
  Network net(g, probe_factory(2, /*decide_when_done=*/true), sched);
  net.schedule_crash(CrashPlan{2, 1});
  const auto result = net.run(StopWhen::kAllDecided, 1000);
  EXPECT_TRUE(result.condition_met);
  EXPECT_TRUE(net.decision(0).decided);
  EXPECT_TRUE(net.decision(1).decided);
  EXPECT_FALSE(net.decision(2).decided);
}

TEST(Crash, CrashBeforeStartSilencesNode) {
  const auto g = net::make_clique(2);
  SynchronousScheduler sched(1);
  Network net(g, probe_factory(3), sched);
  net.schedule_crash(CrashPlan{0, 0});
  net.run(StopWhen::kQuiescent, 100);
  // Node 0 broadcast at t=0 (before the crash event processes at tick 0 is
  // ordered after deliveries/acks of tick 0 — but its deliveries land at
  // t=1 > crash time, so they are cancelled).
  std::size_t from_0 = 0;
  for (const auto& r : probe_at(net, 1).receives) {
    if (r.sender == 0) ++from_0;
  }
  EXPECT_EQ(from_0, 0u);
}

}  // namespace
}  // namespace amac::mac
