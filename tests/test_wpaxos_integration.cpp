// End-to-end wPAXOS property sweeps (Theorem 4.6): consensus holds on every
// topology x scheduler x seed combination, in O(D * F_ack) time.
#include <gtest/gtest.h>

#include "core/wpaxos/wpaxos.hpp"
#include "harness/experiment.hpp"
#include "net/paper_networks.hpp"
#include "net/topologies.hpp"

namespace amac::core::wpaxos {
namespace {

struct TopoCase {
  const char* name;
  net::Graph graph;
};

std::vector<TopoCase> topologies() {
  util::Rng rng(99);
  std::vector<TopoCase> cases;
  cases.push_back({"clique8", net::make_clique(8)});
  cases.push_back({"line12", net::make_line(12)});
  cases.push_back({"ring15", net::make_ring(15)});
  cases.push_back({"grid4x4", net::make_grid(4, 4)});
  cases.push_back({"star9", net::make_star(9)});
  cases.push_back({"tree15", net::make_binary_tree(15)});
  cases.push_back({"barbell", net::make_barbell(4, 4)});
  cases.push_back({"random20", net::make_random_connected(20, 0.15, rng)});
  cases.push_back({"geo25", net::make_random_geometric(25, 0.25, rng)});
  return cases;
}

// Parameterized over (topology index, scheduler kind): every combination
// is its own reported test case.
enum class SchedKind {
  kSynchronous,
  kRandom,
  kSkewed,
  kMaxDelay,
  kContention
};

class WPaxosTopoSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, SchedKind>> {};

TEST_P(WPaxosTopoSweep, ConsensusHolds) {
  const auto [topo_index, kind] = GetParam();
  auto cases = topologies();
  ASSERT_LT(topo_index, cases.size());
  auto& tc = cases[topo_index];
  const std::size_t n = tc.graph.node_count();

  util::Rng rng(1234 + topo_index * 31 + static_cast<std::size_t>(kind));
  for (int trial = 0; trial < 3; ++trial) {
    const auto inputs = harness::inputs_random(n, rng);
    const auto ids = harness::permuted_ids(n, rng);
    const mac::Time fack = 1 + rng.uniform(0, 5);

    std::unique_ptr<mac::Scheduler> sched;
    switch (kind) {
      case SchedKind::kSynchronous:
        sched = std::make_unique<mac::SynchronousScheduler>(fack);
        break;
      case SchedKind::kRandom:
        sched = std::make_unique<mac::UniformRandomScheduler>(fack, rng());
        break;
      case SchedKind::kSkewed:
        sched = std::make_unique<mac::SkewedScheduler>(fack, rng());
        break;
      case SchedKind::kMaxDelay:
        sched = std::make_unique<mac::MaxDelayScheduler>(fack);
        break;
      case SchedKind::kContention:
        sched = std::make_unique<mac::ContentionScheduler>(
            1, /*fack_bound=*/n + 4, rng());
        break;
    }
    const auto outcome = harness::run_consensus(
        tc.graph, harness::wpaxos_factory(inputs, ids), *sched, inputs,
        5'000'000);
    ASSERT_TRUE(outcome.verdict.ok())
        << tc.name << " trial " << trial << ": " << outcome.verdict.summary();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTopologiesAllSchedulers, WPaxosTopoSweep,
    ::testing::Combine(::testing::Range<std::size_t>(0, 9),
                       ::testing::Values(SchedKind::kSynchronous,
                                         SchedKind::kRandom,
                                         SchedKind::kSkewed,
                                         SchedKind::kMaxDelay,
                                         SchedKind::kContention)));

TEST(WPaxosIntegration, UniformInputsDecideThatValue) {
  const auto g = net::make_grid(3, 3);
  for (const mac::Value v : {0, 1}) {
    const auto inputs = harness::inputs_all(9, v);
    const auto ids = harness::identity_ids(9);
    mac::UniformRandomScheduler sched(4, 777);
    const auto outcome = harness::run_consensus(
        g, harness::wpaxos_factory(inputs, ids), sched, inputs, 1'000'000);
    ASSERT_TRUE(outcome.verdict.ok());
    EXPECT_EQ(*outcome.verdict.decision, v);
  }
}

TEST(WPaxosIntegration, SingleNode) {
  const auto g = net::make_clique(1);
  const std::vector<mac::Value> inputs{1};
  mac::SynchronousScheduler sched(1);
  const auto outcome = harness::run_consensus(
      g, harness::wpaxos_factory(inputs, {5}), sched, inputs, 1000);
  ASSERT_TRUE(outcome.verdict.ok());
  EXPECT_EQ(*outcome.verdict.decision, 1);
}

TEST(WPaxosIntegration, TwoNodes) {
  const auto g = net::make_clique(2);
  const std::vector<mac::Value> inputs{1, 0};
  mac::UniformRandomScheduler sched(3, 42);
  const auto outcome = harness::run_consensus(
      g, harness::wpaxos_factory(inputs, {10, 20}), sched, inputs, 100000);
  ASSERT_TRUE(outcome.verdict.ok()) << outcome.verdict.summary();
}

TEST(WPaxosIntegration, TimeScalesWithDTimesFack) {
  // Theorem 4.6's shape: decision time normalized by D * F_ack stays
  // bounded as the line grows (it would grow linearly if time were
  // O(n * F_ack) on a bounded-D family — see the grid check below).
  const mac::Time fack = 3;
  util::Rng rng(31);
  std::vector<double> normalized;
  for (const std::size_t side : {3u, 5u, 7u}) {
    const auto g = net::make_grid(side, side);
    const std::size_t n = g.node_count();
    const auto d = g.diameter();
    const auto inputs = harness::inputs_alternating(n);
    const auto ids = harness::permuted_ids(n, rng);
    mac::SynchronousScheduler sched(fack);
    const auto outcome = harness::run_consensus(
        g, harness::wpaxos_factory(inputs, ids), sched, inputs, 10'000'000);
    ASSERT_TRUE(outcome.verdict.ok());
    normalized.push_back(static_cast<double>(outcome.verdict.last_decision) /
                         (static_cast<double>(d) * fack));
  }
  // The constant may wobble but must not scale with n/D (= side here):
  // going from 3x3 to 7x7 multiplies n/D by ~2.3; a Theta(n*Fack)
  // algorithm's normalized time would grow by that factor.
  EXPECT_LT(normalized[2], normalized[0] * 2.0)
      << normalized[0] << " -> " << normalized[2];
}

TEST(WPaxosIntegration, MessageSizeStaysBounded) {
  // The O(1)-ids-per-message restriction, end to end: the largest payload
  // must not grow with n beyond varint width effects.
  std::size_t small_max = 0;
  std::size_t large_max = 0;
  for (const std::size_t n : {8u, 64u}) {
    const auto g = net::make_ring(n);
    const auto inputs = harness::inputs_alternating(n);
    const auto ids = harness::identity_ids(n);
    mac::SynchronousScheduler sched(1);
    mac::Network net(g, harness::wpaxos_factory(inputs, ids), sched);
    net.run(mac::StopWhen::kAllDecided, 1'000'000);
    (n == 8 ? small_max : large_max) = net.stats().max_payload_bytes;
  }
  EXPECT_LE(large_max, small_max + 8);  // a few extra varint bytes at most
}

TEST(WPaxosIntegration, WorksOnPaperNetworks) {
  // wPAXOS knows n, so it solves consensus even on the adversarial
  // constructions of Figures 1 and 2 (under fair schedulers).
  const auto fig1 = net::make_figure1(8, 2);
  const auto fig2 = net::make_figure2(6);
  util::Rng rng(55);
  for (const net::Graph* g : {&fig1.a, &fig1.b, &fig2.kd}) {
    const std::size_t n = g->node_count();
    const auto inputs = harness::inputs_random(n, rng);
    const auto ids = harness::permuted_ids(n, rng);
    mac::UniformRandomScheduler sched(2, rng());
    const auto outcome = harness::run_consensus(
        *g, harness::wpaxos_factory(inputs, ids), sched, inputs, 1'000'000);
    ASSERT_TRUE(outcome.verdict.ok()) << outcome.verdict.summary();
  }
}

TEST(WPaxosIntegration, AblationsStillSafe) {
  // Turning the optimizations off must never break safety — only speed.
  const auto g = net::make_grid(3, 3);
  const std::size_t n = 9;
  util::Rng rng(8);
  for (const bool tree_priority : {true, false}) {
    for (const bool aggregate : {true, false}) {
      for (const bool gating : {true, false}) {
        WPaxosConfig cfg;
        cfg.tree_priority = tree_priority;
        cfg.aggregate_responses = aggregate;
        cfg.change_gating = gating;
        const auto inputs = harness::inputs_random(n, rng);
        const auto ids = harness::permuted_ids(n, rng);
        mac::UniformRandomScheduler sched(3, rng());
        const auto outcome = harness::run_consensus(
            g, harness::wpaxos_factory(inputs, ids, cfg), sched, inputs,
            5'000'000);
        ASSERT_TRUE(outcome.verdict.ok())
            << "prio=" << tree_priority << " agg=" << aggregate
            << " gate=" << gating << ": " << outcome.verdict.summary();
      }
    }
  }
}

TEST(WPaxosIntegration, DeterministicGivenSeed) {
  const auto g = net::make_ring(10);
  const auto inputs = harness::inputs_alternating(10);
  const auto ids = harness::identity_ids(10);
  mac::Time t1 = 0;
  mac::Time t2 = 0;
  for (int round = 0; round < 2; ++round) {
    mac::UniformRandomScheduler sched(5, 4242);
    const auto outcome = harness::run_consensus(
        g, harness::wpaxos_factory(inputs, ids), sched, inputs, 1'000'000);
    ASSERT_TRUE(outcome.verdict.ok());
    (round == 0 ? t1 : t2) = outcome.verdict.last_decision;
  }
  EXPECT_EQ(t1, t2);
}

}  // namespace
}  // namespace amac::core::wpaxos
