// Executable reconstructions of the paper's lower-bound arguments:
//   Theorem 3.3 (Figure 1): anonymity makes consensus impossible,
//   Theorem 3.9 (Figure 2): no knowledge of n makes it impossible,
//   Theorem 3.10: time is at least floor(D/2) * F_ack,
// plus the empirical Lemma 3.6 / §3.3 indistinguishability checks.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "net/paper_networks.hpp"
#include "net/topologies.hpp"
#include "verify/trace.hpp"

namespace amac {
namespace {

// ---------------- Theorem 3.3 / Figure 1 --------------------------------

struct Fig1Setup {
  net::Figure1Networks nets;
  std::vector<mac::Value> a_inputs;  ///< gadget0 = 0, gadget1 = 1, rest 0
  mac::Time decide_round;            ///< t: sync rounds until B decides
};

Fig1Setup fig1_setup(std::uint32_t diameter, std::size_t k) {
  Fig1Setup s{net::make_figure1(diameter, k), {}, 0};
  const auto& nets = s.nets;

  // Lemma 3.5: alpha^b_B terminates by synchronous step t deciding b.
  for (const mac::Value b : {0, 1}) {
    const auto inputs = harness::inputs_all(nets.b.node_count(), b);
    mac::SynchronousScheduler sched(1);
    const auto outcome = harness::run_consensus(
        nets.b, harness::anonymous_factory(inputs, nets.diameter), sched,
        inputs, 1000);
    AMAC_ASSERT(outcome.verdict.ok());
    AMAC_ASSERT(*outcome.verdict.decision == b);
    s.decide_round = std::max(s.decide_round, outcome.verdict.last_decision);
  }

  s.a_inputs.assign(nets.a.node_count(), 0);
  for (std::size_t local = 0; local < nets.layout.size(); ++local) {
    s.a_inputs[nets.a_node(1, local)] = 1;
  }
  return s;
}

TEST(Theorem33, AnonymousAlgorithmViolatesAgreementOnNetworkA) {
  const auto setup = fig1_setup(8, 2);
  const auto& nets = setup.nets;

  // The alpha_A scheduler: synchronous, but everything q sends is withheld
  // until after both gadgets have decided.
  mac::HoldbackScheduler sched(std::make_unique<mac::SynchronousScheduler>(1),
                               /*release=*/setup.decide_round + 3);
  sched.hold_sender(nets.q);

  const auto outcome = harness::run_consensus(
      nets.a, harness::anonymous_factory(setup.a_inputs, nets.diameter),
      sched, setup.a_inputs, 10'000);

  EXPECT_TRUE(outcome.verdict.termination);
  EXPECT_FALSE(outcome.verdict.agreement)
      << "the two gadgets must decide their own values: "
      << outcome.verdict.summary();

  // And concretely: gadget 0 decided 0, gadget 1 decided 1.
  mac::SynchronousScheduler resched(1);  // (re-run to inspect decisions)
  mac::HoldbackScheduler sched2(std::make_unique<mac::SynchronousScheduler>(1),
                                setup.decide_round + 3);
  sched2.hold_sender(nets.q);
  mac::Network net(nets.a,
                   harness::anonymous_factory(setup.a_inputs, nets.diameter),
                   sched2);
  net.run(mac::StopWhen::kAllDecided, 10'000);
  EXPECT_EQ(net.decision(nets.a_node(0, nets.layout.a(nets.layout.d))).value,
            0);
  EXPECT_EQ(net.decision(nets.a_node(1, nets.layout.a(nets.layout.d))).value,
            1);
}

TEST(Theorem33, Lemma36IndistinguishabilityHoldsStepByStep) {
  // For every gadget node u of A_b and every copy u' in S_u, the state
  // digests match for the first t synchronous steps.
  const auto setup = fig1_setup(8, 2);
  const auto& nets = setup.nets;
  const std::size_t sz = nets.layout.size();
  const mac::Time t = setup.decide_round;

  for (const mac::Value b : {0, 1}) {
    // alpha^b_B: all inputs b, synchronous.
    std::vector<NodeId> b_watch;
    for (NodeId u = 0; u < nets.b.node_count(); ++u) b_watch.push_back(u);
    const auto b_inputs = harness::inputs_all(nets.b.node_count(), b);
    mac::SynchronousScheduler b_sched(1);
    mac::Network b_net(nets.b,
                       harness::anonymous_factory(b_inputs, nets.diameter),
                       b_sched);
    const auto b_trace = verify::DigestTrace::record(b_net, b_watch, t);

    // alpha_A restricted to gadget b.
    std::vector<NodeId> a_watch;
    for (std::size_t local = 0; local < sz; ++local) {
      a_watch.push_back(nets.a_node(b, local));
    }
    mac::HoldbackScheduler a_sched(
        std::make_unique<mac::SynchronousScheduler>(1), t + 3);
    a_sched.hold_sender(nets.q);
    mac::Network a_net(nets.a,
                       harness::anonymous_factory(setup.a_inputs,
                                                  nets.diameter),
                       a_sched);
    const auto a_trace = verify::DigestTrace::record(a_net, a_watch, t);

    for (std::size_t local = 0; local < sz; ++local) {
      for (int copy = 0; copy < 3; ++copy) {
        const std::size_t b_index = nets.b_node(copy, local);
        EXPECT_EQ(a_trace.common_prefix(local, b_trace, b_index), t)
            << "b=" << static_cast<int>(b) << " local=" << local
            << " copy=" << copy;
      }
    }
  }
}

// ---------------- Theorem 3.9 / Figure 2 --------------------------------

struct Fig2Setup {
  net::Figure2Network fig;
  mac::Time decide_time;  ///< standalone L_D decision time (sync rounds)
};

Fig2Setup fig2_setup(std::uint32_t diameter) {
  Fig2Setup s{net::make_figure2(diameter), 0};
  // Lemma 3.8: alpha^b_d terminates deciding b on the standalone line.
  for (const mac::Value b : {0, 1}) {
    const std::size_t n = s.fig.ld.node_count();
    const auto inputs = harness::inputs_all(n, b);
    mac::SynchronousScheduler sched(1);
    const auto outcome = harness::run_consensus(
        s.fig.ld,
        harness::stability_factory(inputs, diameter,
                                   harness::identity_ids(n)),
        sched, inputs, 100000);
    AMAC_ASSERT(outcome.verdict.ok());
    AMAC_ASSERT(*outcome.verdict.decision == b);
    s.decide_time = std::max(s.decide_time, outcome.verdict.last_decision);
  }
  return s;
}

TEST(Theorem39, NoKnowledgeOfNViolatesAgreementOnKD) {
  const auto setup = fig2_setup(6);
  const auto& fig = setup.fig;
  const std::size_t n = fig.kd.node_count();

  // L1 copy starts 0, L2 copy starts 1, the bridge line starts 0.
  std::vector<mac::Value> inputs(n, 0);
  for (const NodeId u : fig.l2) inputs[u] = 1;

  // Semi-synchronous scheduler: synchronous everywhere, but nothing the
  // endpoint w sends is delivered before both copies decide.
  mac::HoldbackScheduler sched(std::make_unique<mac::SynchronousScheduler>(1),
                               setup.decide_time + 3);
  sched.hold_sender(fig.bridge_line.front());

  mac::Network net(fig.kd,
                   harness::stability_factory(inputs, fig.diameter,
                                              harness::identity_ids(n)),
                   sched);
  net.run(mac::StopWhen::kAllDecided, 1'000'000);
  const auto verdict = verify::check_consensus(net, inputs);
  EXPECT_TRUE(verdict.termination);
  EXPECT_FALSE(verdict.agreement) << verdict.summary();
  EXPECT_EQ(net.decision(fig.l1[0]).value, 0);
  EXPECT_EQ(net.decision(fig.l2[0]).value, 1);
}

TEST(Theorem39, LineCopyIndistinguishableFromStandalone) {
  // §3.3's indistinguishability: for the first t steps, node i of the L1
  // copy inside K_D is in exactly the state of node i of standalone L_D.
  const auto setup = fig2_setup(5);
  const auto& fig = setup.fig;
  const mac::Time t = setup.decide_time;
  const std::size_t ld_n = fig.ld.node_count();

  // Standalone all-0 run.
  std::vector<NodeId> ld_watch;
  for (NodeId u = 0; u < ld_n; ++u) ld_watch.push_back(u);
  const auto ld_inputs = harness::inputs_all(ld_n, 0);
  mac::SynchronousScheduler ld_sched(1);
  mac::Network ld_net(fig.ld,
                      harness::stability_factory(ld_inputs, fig.diameter,
                                                 harness::identity_ids(ld_n)),
                      ld_sched);
  const auto ld_trace = verify::DigestTrace::record(ld_net, ld_watch, t);

  // K_D run; L1 nodes are indexes 0..D with identity ids, matching the
  // standalone assignment.
  const std::size_t n = fig.kd.node_count();
  std::vector<mac::Value> inputs(n, 0);
  for (const NodeId u : fig.l2) inputs[u] = 1;
  mac::HoldbackScheduler kd_sched(
      std::make_unique<mac::SynchronousScheduler>(1), t + 3);
  kd_sched.hold_sender(fig.bridge_line.front());
  mac::Network kd_net(fig.kd,
                      harness::stability_factory(inputs, fig.diameter,
                                                 harness::identity_ids(n)),
                      kd_sched);
  const auto kd_trace = verify::DigestTrace::record(kd_net, fig.l1, t);

  for (std::size_t i = 0; i < ld_n; ++i) {
    EXPECT_EQ(kd_trace.common_prefix(i, ld_trace, i), t) << "node " << i;
  }
}

// ---------------- Theorem 3.10 ------------------------------------------

TEST(Theorem310, DecisionTimeAtLeastHalfDiameterTimesFack) {
  // Under the max-delay synchronous adversary, both of our multihop
  // algorithms respect the floor(D/2) * F_ack bound (they must: it binds
  // every consensus algorithm).
  for (const mac::Time fack : {1u, 4u}) {
    for (const std::size_t n : {5u, 9u}) {
      const auto g = net::make_line(n);
      const auto d = g.diameter();
      const auto inputs = harness::inputs_split(n);
      const mac::Time bound = (d / 2) * fack;

      mac::SynchronousScheduler s1(fack);
      const auto wpaxos = harness::run_consensus(
          g, harness::wpaxos_factory(inputs, harness::identity_ids(n)), s1,
          inputs, 10'000'000);
      ASSERT_TRUE(wpaxos.verdict.ok());
      EXPECT_GE(wpaxos.verdict.last_decision, bound);

      mac::SynchronousScheduler s2(fack);
      const auto flood = harness::run_consensus(
          g, harness::flooding_factory(inputs), s2, inputs, 10'000'000);
      ASSERT_TRUE(flood.verdict.ok());
      EXPECT_GE(flood.verdict.last_decision, bound);
    }
  }
}

TEST(Theorem310, PartitionArgumentEndpointsSeeOnlyTheirHalf) {
  // The proof's core: in floor(D/2)*F time under the max-delay scheduler,
  // information moves at most floor(D/2) hops, so endpoint states depend
  // only on their half's inputs. We verify with FloodingConsensus state:
  // at that time the endpoints know none of the other half's pairs.
  const std::size_t n = 9;  // D = 8
  const mac::Time fack = 3;
  const auto g = net::make_line(n);
  const auto inputs = harness::inputs_split(n);
  mac::SynchronousScheduler sched(fack);
  mac::Network net(g, harness::flooding_factory(inputs), sched);
  const mac::Time horizon = (g.diameter() / 2) * fack;
  net.run(mac::StopWhen::kQuiescent, horizon);

  const auto* left =
      dynamic_cast<const core::FloodingConsensus*>(&net.process(0));
  ASSERT_NE(left, nullptr);
  // Node 0 can have heard from at most nodes 0..4 (its half).
  EXPECT_LE(left->known_count(), n / 2 + 1);
}

}  // namespace
}  // namespace amac
