#include "mac/engine.hpp"

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "mac/schedulers.hpp"
#include "net/topologies.hpp"

namespace amac::mac {
namespace {

using testutil::probe_at;
using testutil::probe_factory;

TEST(Engine, SynchronousRoundDeliveryTimes) {
  const auto g = net::make_line(3);
  SynchronousScheduler sched(1);
  Network net(g, probe_factory(2), sched);
  net.run(StopWhen::kQuiescent, 100);

  // Node 1's receives from both neighbors: round 1 and round 2 broadcasts
  // arrive at ticks 1 and 2.
  const auto& p1 = probe_at(net, 1);
  ASSERT_EQ(p1.receives.size(), 4u);
  EXPECT_EQ(p1.receives[0].time, 1u);
  EXPECT_EQ(p1.receives[1].time, 1u);
  EXPECT_EQ(p1.receives[2].time, 2u);
  EXPECT_EQ(p1.receives[3].time, 2u);
  EXPECT_EQ(p1.acks, (std::vector<Time>{1, 2}));
}

TEST(Engine, AckNeverBeforeAnyReceive) {
  const auto g = net::make_clique(5);
  UniformRandomScheduler sched(10, /*seed=*/99);
  Network net(g, probe_factory(3), sched);
  net.run(StopWhen::kQuiescent, 1000);

  // For every sender, every receiver got broadcast i before (or at the same
  // tick as) the sender's i-th ack — the abstract MAC layer guarantee.
  for (NodeId u = 0; u < 5; ++u) {
    const auto& sender = probe_at(net, u);
    ASSERT_EQ(sender.acks.size(), 3u);
    for (NodeId v = 0; v < 5; ++v) {
      if (v == u) continue;
      const auto& receiver = probe_at(net, v);
      for (const auto& r : receiver.receives) {
        if (r.sender != u) continue;
        EXPECT_LE(r.time, sender.acks[r.seq]);
      }
    }
  }
}

TEST(Engine, EveryNeighborReceivesEveryBroadcast) {
  const auto g = net::make_ring(6);
  UniformRandomScheduler sched(7, 123);
  Network net(g, probe_factory(4), sched);
  net.run(StopWhen::kQuiescent, 10000);
  for (NodeId u = 0; u < 6; ++u) {
    std::size_t from_neighbors = 0;
    for (const auto& r : probe_at(net, u).receives) {
      EXPECT_TRUE(g.has_edge(u, r.sender));
      ++from_neighbors;
    }
    // 2 neighbors x 4 broadcasts each.
    EXPECT_EQ(from_neighbors, 8u);
  }
}

TEST(Engine, BusyBroadcastDiscarded) {
  const auto g = net::make_clique(2);
  SynchronousScheduler sched(1);
  Network net(g, probe_factory(1, false, /*double_broadcast=*/true), sched);
  net.run(StopWhen::kQuiescent, 100);
  EXPECT_EQ(net.stats().dropped_busy, 2u);  // one per node
  EXPECT_EQ(net.stats().broadcasts, 2u);
  // Each node received exactly one message.
  EXPECT_EQ(probe_at(net, 0).receives.size(), 1u);
  EXPECT_EQ(probe_at(net, 1).receives.size(), 1u);
}

TEST(Engine, SameTickReceivesBeforeAcks) {
  const auto g = net::make_clique(3);
  SynchronousScheduler sched(1);
  Network net(g, probe_factory(2), sched);
  net.run(StopWhen::kQuiescent, 100);
  // With lock-step rounds, each node's callback order strictly alternates:
  // both receives of a round precede the round's ack.
  for (NodeId u = 0; u < 3; ++u) {
    const auto& order = probe_at(net, u).order;
    ASSERT_EQ(order.size(), 6u);  // (2 receives + 1 ack) x 2 rounds
    EXPECT_EQ(std::string(order.begin(), order.end()), "rrarra");
  }
}

TEST(Engine, StopsWhenAllDecided) {
  const auto g = net::make_clique(3);
  SynchronousScheduler sched(1);
  Network net(g, probe_factory(2, /*decide_when_done=*/true), sched);
  const auto result = net.run(StopWhen::kAllDecided, 1000);
  EXPECT_TRUE(result.condition_met);
  for (NodeId u = 0; u < 3; ++u) {
    EXPECT_TRUE(net.decision(u).decided);
    EXPECT_EQ(net.decision(u).value, 0);
    EXPECT_EQ(net.decision(u).time, 2u);
  }
}

TEST(Engine, MaxTimeHorizonRespected) {
  const auto g = net::make_clique(2);
  SynchronousScheduler sched(1);
  Network net(g, probe_factory(100), sched);
  const auto result = net.run(StopWhen::kQuiescent, 10);
  EXPECT_FALSE(result.condition_met);
  EXPECT_LE(net.now(), 10u);
  // Resume to completion.
  const auto result2 = net.run(StopWhen::kQuiescent, 100000);
  EXPECT_TRUE(result2.condition_met);
}

TEST(Engine, StatsCountBroadcastsAndDeliveries) {
  const auto g = net::make_line(4);  // 3 edges
  SynchronousScheduler sched(1);
  Network net(g, probe_factory(2), sched);
  net.run(StopWhen::kQuiescent, 100);
  EXPECT_EQ(net.stats().broadcasts, 8u);   // 4 nodes x 2
  EXPECT_EQ(net.stats().deliveries, 12u);  // 2 per broadcast per edge-end
  EXPECT_EQ(net.stats().acks, 8u);
  EXPECT_EQ(net.stats().max_payload_bytes, 1u);
  EXPECT_EQ(net.stats().payload_bytes, 8u);
}

TEST(Engine, InFlightTracking) {
  const auto g = net::make_clique(3);
  MaxDelayScheduler sched(10);
  Network net(g, probe_factory(1), sched);
  net.run(StopWhen::kQuiescent, 5);  // mid-flight: deliveries due at t=10
  EXPECT_EQ(net.in_flight_from(0), 2u);
  std::size_t copies = 0;
  net.for_each_in_flight(
      [&](NodeId, NodeId, const util::Buffer&) { ++copies; });
  EXPECT_EQ(copies, 6u);  // 3 broadcasts x 2 receivers
  net.run(StopWhen::kQuiescent, 1000);
  EXPECT_EQ(net.in_flight_from(0), 0u);
}

TEST(Engine, SingleNodeBroadcastAcksWithoutNeighbors) {
  const auto g = net::make_clique(1);
  SynchronousScheduler sched(1);
  Network net(g, probe_factory(2, /*decide_when_done=*/true), sched);
  const auto result = net.run(StopWhen::kAllDecided, 100);
  EXPECT_TRUE(result.condition_met);
  EXPECT_TRUE(net.decision(0).decided);
  EXPECT_TRUE(probe_at(net, 0).receives.empty());
  EXPECT_EQ(probe_at(net, 0).acks.size(), 2u);
}

TEST(Engine, PostEventHookRuns) {
  const auto g = net::make_clique(2);
  SynchronousScheduler sched(1);
  Network net(g, probe_factory(1), sched);
  std::size_t calls = 0;
  net.set_post_event_hook([&](Network&) { ++calls; });
  net.run(StopWhen::kQuiescent, 100);
  EXPECT_EQ(calls, 4u);  // 2 deliveries + 2 acks
}

TEST(Engine, PayloadContentDeliveredIntact) {
  const auto g = net::make_clique(2);
  SynchronousScheduler sched(1);
  Network net(g, probe_factory(3), sched);
  net.run(StopWhen::kQuiescent, 100);
  const auto& p0 = probe_at(net, 0);
  ASSERT_EQ(p0.receives.size(), 3u);
  EXPECT_EQ(p0.receives[0].seq, 0u);
  EXPECT_EQ(p0.receives[1].seq, 1u);
  EXPECT_EQ(p0.receives[2].seq, 2u);
}

}  // namespace
}  // namespace amac::mac
