#include "verify/checker.hpp"

#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "mac/reference_engine.hpp"
#include "mac/schedulers.hpp"
#include "net/topologies.hpp"

namespace amac::verify {
namespace {

/// Decides a fixed value at start; configurable per node via factory.
class FixedDecider final : public mac::Process {
 public:
  FixedDecider(mac::Value v, bool decide) : v_(v), decide_(decide) {}
  void on_start(mac::Context& ctx) override {
    if (decide_) ctx.decide(v_);
  }
  void on_receive(const mac::Packet&, mac::Context&) override {}
  void on_ack(mac::Context&) override {}
  std::unique_ptr<mac::Process> clone() const override {
    return std::make_unique<FixedDecider>(*this);
  }
  void digest(util::Hasher& h) const override { h.mix_i64(v_); }

 private:
  mac::Value v_;
  bool decide_;
};

mac::ProcessFactory deciders(std::vector<std::pair<mac::Value, bool>> spec) {
  return [spec = std::move(spec)](NodeId u) {
    return std::make_unique<FixedDecider>(spec[u].first, spec[u].second);
  };
}

TEST(Checker, AllGood) {
  const auto g = net::make_clique(3);
  mac::SynchronousScheduler sched(1);
  mac::Network net(g, deciders({{1, true}, {1, true}, {1, true}}), sched);
  net.run(mac::StopWhen::kAllDecided, 10);
  const auto v = check_consensus(net, {1, 1, 0});
  EXPECT_TRUE(v.ok());
  EXPECT_EQ(*v.decision, 1);
}

TEST(Checker, DetectsDisagreement) {
  const auto g = net::make_clique(2);
  mac::SynchronousScheduler sched(1);
  mac::Network net(g, deciders({{0, true}, {1, true}}), sched);
  net.run(mac::StopWhen::kAllDecided, 10);
  const auto v = check_consensus(net, {0, 1});
  EXPECT_FALSE(v.agreement);
  EXPECT_TRUE(v.termination);
  EXPECT_TRUE(v.validity);
  EXPECT_FALSE(v.ok());
  EXPECT_FALSE(v.decision.has_value());
}

TEST(Checker, DetectsInvalidDecisionByNodeThatLaterCrashes) {
  // Every decider of the invalid value crashes afterwards; the survivor
  // never decides. The decision was irrevocable before the crash, so
  // validity must still be flagged.
  const auto g = net::make_clique(2);
  mac::SynchronousScheduler sched(1);
  mac::Network net(g, deciders({{7, true}, {0, false}}), sched);
  net.schedule_crash(mac::CrashPlan{0, 2});
  net.run(mac::StopWhen::kAllDecided, 10);
  const auto v = check_consensus(net, {0, 1});
  EXPECT_FALSE(v.validity);
  EXPECT_FALSE(v.ok());
}

TEST(Checker, CrashedDecidersStillCountForValidityOnReferenceEngine) {
  // Same oracle, reference engine overload.
  const auto g = net::make_clique(2);
  mac::SynchronousScheduler sched(1);
  mac::ReferenceNetwork net(g, deciders({{7, true}, {0, false}}), sched);
  net.schedule_crash(mac::CrashPlan{0, 2});
  net.run(mac::StopWhen::kAllDecided, 10);
  const auto v = check_consensus(net, {0, 1});
  EXPECT_FALSE(v.validity);
}

TEST(Checker, DetectsNonTermination) {
  const auto g = net::make_clique(2);
  mac::SynchronousScheduler sched(1);
  mac::Network net(g, deciders({{0, true}, {0, false}}), sched);
  net.run(mac::StopWhen::kQuiescent, 10);
  const auto v = check_consensus(net, {0, 0});
  EXPECT_FALSE(v.termination);
  EXPECT_TRUE(v.agreement);
}

TEST(Checker, DetectsValidityViolation) {
  const auto g = net::make_clique(2);
  mac::SynchronousScheduler sched(1);
  mac::Network net(g, deciders({{1, true}, {1, true}}), sched);
  net.run(mac::StopWhen::kAllDecided, 10);
  const auto v = check_consensus(net, {0, 0});  // nobody proposed 1
  EXPECT_FALSE(v.validity);
  EXPECT_TRUE(v.agreement);
}

TEST(Checker, CrashedUndecidedDoesNotBlockTermination) {
  const auto g = net::make_clique(2);
  mac::SynchronousScheduler sched(1);
  mac::Network net(g, deciders({{0, true}, {0, false}}), sched);
  net.schedule_crash(mac::CrashPlan{1, 0});
  net.run(mac::StopWhen::kQuiescent, 10);
  const auto v = check_consensus(net, {0, 0});
  EXPECT_TRUE(v.termination);
}

TEST(Checker, SummaryMentionsViolations) {
  const auto g = net::make_clique(2);
  mac::SynchronousScheduler sched(1);
  mac::Network net(g, deciders({{0, true}, {1, true}}), sched);
  net.run(mac::StopWhen::kAllDecided, 10);
  const auto v = check_consensus(net, {0, 1});
  EXPECT_NE(v.summary().find("AGREEMENT-VIOLATED"), std::string::npos);
}

TEST(Checker, DecisionTimesTracked) {
  const auto g = net::make_clique(2);
  mac::SynchronousScheduler sched(1);
  mac::Network net(g, deciders({{1, true}, {1, true}}), sched);
  net.run(mac::StopWhen::kAllDecided, 10);
  const auto v = check_consensus(net, {1, 1});
  EXPECT_EQ(v.first_decision, 0u);
  EXPECT_EQ(v.last_decision, 0u);
}

}  // namespace
}  // namespace amac::verify
