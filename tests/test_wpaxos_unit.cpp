// White-box unit tests of wPAXOS internals, driven packet by packet with a
// FakeContext: acceptor promise/accept rules, queue invariants, response
// routing and aggregation, leader gating, decide handling.
#include <gtest/gtest.h>

#include "core/wpaxos/wpaxos.hpp"
#include "fake_context.hpp"

namespace amac::core::wpaxos {
namespace {

using testutil::FakeContext;

WireEnvelope decode_last(const FakeContext& ctx) {
  return WireEnvelope::decode(ctx.last_sent());
}

util::Buffer envelope_from(std::uint64_t sender_id, Envelope body) {
  WireEnvelope w;
  w.sender_id = sender_id;
  w.body = std::move(body);
  return w.encode();
}

TEST(WPaxosUnit, StartBroadcastsAllInitServices) {
  WPaxos node(/*id=*/3, /*n=*/5, /*value=*/1);
  FakeContext ctx;
  node.on_start(ctx);
  ASSERT_EQ(ctx.sent.size(), 1u);
  const auto env = decode_last(ctx);
  EXPECT_EQ(env.sender_id, 3u);
  ASSERT_TRUE(env.body.leader);
  EXPECT_EQ(env.body.leader->leader_id, 3u);  // everyone starts self-leader
  ASSERT_TRUE(env.body.search);
  EXPECT_EQ(env.body.search->root, 3u);
  EXPECT_EQ(env.body.search->hops, 1u);
  ASSERT_TRUE(env.body.change);
  // Self-leader at start: the initial proposal's prepare also goes out.
  ASSERT_TRUE(env.body.proposer);
  EXPECT_EQ(env.body.proposer->kind, ProposerMsg::Kind::kPrepare);
  EXPECT_EQ(env.body.proposer->pn.id, 3u);
}

TEST(WPaxosUnit, LeaderElectionAdoptsLargerIdOnly) {
  WPaxos node(3, 5, 1);
  FakeContext ctx;
  node.on_start(ctx);
  Envelope smaller;
  smaller.leader = LeaderMsg{2};
  ctx.deliver(node, 0, envelope_from(2, smaller));
  EXPECT_EQ(node.omega(), 3u);
  Envelope larger;
  larger.leader = LeaderMsg{9};
  ctx.deliver(node, 0, envelope_from(9, larger));
  EXPECT_EQ(node.omega(), 9u);
}

TEST(WPaxosUnit, LeaderMsgRelayedOnward) {
  WPaxos node(3, 5, 1);
  FakeContext ctx;
  node.on_start(ctx);
  ctx.ack(node);  // free the radio
  Envelope e;
  e.leader = LeaderMsg{9};
  ctx.deliver(node, 0, envelope_from(9, e));
  // The new leader id must be queued and broadcast.
  const auto env = decode_last(ctx);
  ASSERT_TRUE(env.body.leader);
  EXPECT_EQ(env.body.leader->leader_id, 9u);
}

TEST(WPaxosUnit, TreeServiceAdoptsShorterPathsOnly) {
  WPaxos node(3, 5, 1);
  FakeContext ctx;
  node.on_start(ctx);
  Envelope far;
  far.search = SearchMsg{9, 4};
  ctx.deliver(node, 1, envelope_from(7, far));
  EXPECT_EQ(node.dist().at(9), 4u);
  EXPECT_EQ(node.parent().at(9), 7u);
  Envelope near;
  near.search = SearchMsg{9, 2};
  ctx.deliver(node, 2, envelope_from(8, near));
  EXPECT_EQ(node.dist().at(9), 2u);
  EXPECT_EQ(node.parent().at(9), 8u);
  Envelope worse;
  worse.search = SearchMsg{9, 3};
  ctx.deliver(node, 1, envelope_from(6, worse));
  EXPECT_EQ(node.dist().at(9), 2u);  // unchanged
  EXPECT_EQ(node.parent().at(9), 8u);
}

TEST(WPaxosUnit, TreeRelayIncrementsHops) {
  WPaxos node(3, 5, 1);
  FakeContext ctx;
  node.on_start(ctx);
  ctx.ack(node);
  Envelope e;
  e.search = SearchMsg{9, 2};
  ctx.deliver(node, 1, envelope_from(8, e));
  const auto env = decode_last(ctx);
  ASSERT_TRUE(env.body.search);
  EXPECT_EQ(env.body.search->root, 9u);
  EXPECT_EQ(env.body.search->hops, 3u);
}

TEST(WPaxosUnit, AcceptorPromisesIncreasingPrepares) {
  WPaxos node(3, 5, 1);
  FakeContext ctx;
  node.on_start(ctx);
  ctx.ack(node);
  // Make 9 the leader and give node a parent toward 9 first.
  Envelope intro;
  intro.leader = LeaderMsg{9};
  intro.search = SearchMsg{9, 1};
  ctx.deliver(node, 4, envelope_from(9, intro));

  Envelope prep;
  prep.proposer = ProposerMsg{ProposerMsg::Kind::kPrepare, {5, 9}, 0};
  ctx.deliver(node, 4, envelope_from(9, prep));

  // The response must be queued, positive, addressed toward parent (id 9,
  // since the search came straight from the root's neighbor... here the
  // sender_id of the search was 9).
  ASSERT_FALSE(node.response_queue().empty());
  const auto& r = node.response_queue().front();
  EXPECT_TRUE(r.positive);
  EXPECT_EQ(r.pn, (ProposalNumber{5, 9}));
  EXPECT_EQ(r.stage, AcceptorResponse::Stage::kPrepare);
  EXPECT_EQ(r.count, 1u);
}

TEST(WPaxosUnit, AcceptorRejectsStalePrepareSilently) {
  // A prepare below an existing promise must not produce a positive
  // response; our implementation drops stale propositions entirely (the
  // at-most-once guard is monotone).
  WPaxos node(3, 50, 1);
  FakeContext ctx;
  node.on_start(ctx);
  ctx.ack(node);
  Envelope intro;
  intro.leader = LeaderMsg{9};
  intro.search = SearchMsg{9, 1};
  ctx.deliver(node, 4, envelope_from(9, intro));

  Envelope high;
  high.proposer = ProposerMsg{ProposerMsg::Kind::kPrepare, {7, 9}, 0};
  ctx.deliver(node, 4, envelope_from(9, high));
  const auto queued = node.response_queue().size();

  Envelope low;
  low.proposer = ProposerMsg{ProposerMsg::Kind::kPrepare, {6, 9}, 0};
  ctx.deliver(node, 4, envelope_from(9, low));
  EXPECT_EQ(node.response_queue().size(), queued);  // nothing new
}

TEST(WPaxosUnit, DuplicatePropositionAnsweredOnce) {
  WPaxos node(3, 50, 1);
  FakeContext ctx;
  node.on_start(ctx);
  ctx.ack(node);
  Envelope intro;
  intro.leader = LeaderMsg{9};
  intro.search = SearchMsg{9, 1};
  ctx.deliver(node, 4, envelope_from(9, intro));

  Envelope prep;
  prep.proposer = ProposerMsg{ProposerMsg::Kind::kPrepare, {5, 9}, 0};
  ctx.deliver(node, 4, envelope_from(9, prep));
  ctx.deliver(node, 2, envelope_from(8, prep));  // flood duplicate
  std::uint64_t total = 0;
  for (const auto& r : node.response_queue()) total += r.count;
  EXPECT_EQ(total, 1u);
}

TEST(WPaxosUnit, ResponsesForOldLeaderPruned) {
  WPaxos node(3, 50, 1);
  FakeContext ctx;
  node.on_start(ctx);
  ctx.ack(node);
  Envelope intro;
  intro.leader = LeaderMsg{9};
  intro.search = SearchMsg{9, 1};
  ctx.deliver(node, 4, envelope_from(9, intro));
  Envelope prep;
  prep.proposer = ProposerMsg{ProposerMsg::Kind::kPrepare, {5, 9}, 0};
  ctx.deliver(node, 4, envelope_from(9, prep));
  ASSERT_FALSE(node.response_queue().empty());

  // A larger leader appears: queue invariant (1) drops the old responses.
  Envelope bigger;
  bigger.leader = LeaderMsg{12};
  ctx.deliver(node, 4, envelope_from(12, bigger));
  EXPECT_TRUE(node.response_queue().empty());
  EXPECT_EQ(node.omega(), 12u);
}

TEST(WPaxosUnit, ResponsesForStaleProposalPruned) {
  WPaxos node(3, 50, 1);
  FakeContext ctx;
  node.on_start(ctx);
  ctx.ack(node);
  Envelope intro;
  intro.leader = LeaderMsg{9};
  intro.search = SearchMsg{9, 1};
  ctx.deliver(node, 4, envelope_from(9, intro));
  Envelope prep5;
  prep5.proposer = ProposerMsg{ProposerMsg::Kind::kPrepare, {5, 9}, 0};
  ctx.deliver(node, 4, envelope_from(9, prep5));
  Envelope prep6;
  prep6.proposer = ProposerMsg{ProposerMsg::Kind::kPrepare, {6, 9}, 0};
  ctx.deliver(node, 4, envelope_from(9, prep6));
  // Only the response to pn (6,9) survives (queue invariant (2)).
  ASSERT_EQ(node.response_queue().size(), 1u);
  EXPECT_EQ(node.response_queue().front().pn, (ProposalNumber{6, 9}));
}

TEST(WPaxosUnit, ResponseRelayReAddressedToCurrentParent) {
  WPaxos node(3, 50, 1);
  FakeContext ctx;
  node.on_start(ctx);
  ctx.ack(node);
  Envelope intro;
  intro.leader = LeaderMsg{9};
  intro.search = SearchMsg{9, 2};  // parent toward 9 is sender id 7
  ctx.deliver(node, 4, envelope_from(7, intro));

  // A response from a child, addressed to us.
  AcceptorResponse r;
  r.stage = AcceptorResponse::Stage::kPrepare;
  r.pn = {5, 9};
  r.positive = true;
  r.count = 4;
  r.dest = 3;  // us
  Envelope relay;
  relay.response = r;
  ctx.deliver(node, 5, envelope_from(11, relay));
  if (ctx.busy()) ctx.ack(node);  // flush the queued response

  // It must sit in our queue; when sent, dest = parent[9] = 7.
  const auto env = decode_last(ctx);
  ASSERT_TRUE(env.body.response);
  EXPECT_EQ(env.body.response->dest, 7u);
  EXPECT_EQ(env.body.response->count, 4u);
}

TEST(WPaxosUnit, ResponseNotAddressedToUsIgnored) {
  WPaxos node(3, 50, 1);
  FakeContext ctx;
  node.on_start(ctx);
  ctx.ack(node);
  AcceptorResponse r;
  r.pn = {5, 9};
  r.dest = 8;  // someone else
  Envelope e;
  e.response = r;
  ctx.deliver(node, 5, envelope_from(11, e));
  EXPECT_TRUE(node.response_queue().empty());
}

TEST(WPaxosUnit, AggregationMergesInQueue) {
  WPaxos node(3, 50, 1);
  FakeContext ctx;
  node.on_start(ctx);
  // Keep the radio busy so nothing leaves the queue between deliveries.
  Envelope intro;
  intro.leader = LeaderMsg{9};
  intro.search = SearchMsg{9, 2};
  ctx.deliver(node, 4, envelope_from(7, intro));

  AcceptorResponse r;
  r.stage = AcceptorResponse::Stage::kPrepare;
  r.pn = {5, 9};
  r.positive = true;
  r.count = 2;
  r.dest = 3;
  r.prev = Proposal{{1, 2}, 0};
  Envelope e1;
  e1.response = r;
  ctx.deliver(node, 5, envelope_from(11, e1));
  r.count = 3;
  r.prev = Proposal{{2, 4}, 1};
  Envelope e2;
  e2.response = r;
  ctx.deliver(node, 6, envelope_from(12, e2));

  ASSERT_EQ(node.response_queue().size(), 1u);
  EXPECT_EQ(node.response_queue().front().count, 5u);
  // Lemma 4.3: the larger previous proposal survives the merge.
  EXPECT_EQ(node.response_queue().front().prev->pn, (ProposalNumber{2, 4}));
  EXPECT_EQ(node.node_stats().responses_merged, 1u);
}

TEST(WPaxosUnit, NoAggregationKeepsEntriesSeparate) {
  WPaxosConfig cfg;
  cfg.aggregate_responses = false;
  WPaxos node(3, 50, 1, cfg);
  FakeContext ctx;
  node.on_start(ctx);
  Envelope intro;
  intro.leader = LeaderMsg{9};
  intro.search = SearchMsg{9, 2};
  ctx.deliver(node, 4, envelope_from(7, intro));

  AcceptorResponse r;
  r.stage = AcceptorResponse::Stage::kPrepare;
  r.pn = {5, 9};
  r.positive = true;
  r.count = 1;
  r.dest = 3;
  for (int i = 0; i < 3; ++i) {
    Envelope e;
    e.response = r;
    ctx.deliver(node, static_cast<NodeId>(5 + i),
                envelope_from(11 + i, e));
  }
  EXPECT_EQ(node.response_queue().size(), 3u);
}

TEST(WPaxosUnit, DecideMessageAdoptedAndRelayedOnce) {
  WPaxos node(3, 5, 1);
  FakeContext ctx;
  node.on_start(ctx);
  ctx.ack(node);
  Envelope e;
  e.proposer = ProposerMsg{ProposerMsg::Kind::kDecide, {}, 0};
  ctx.deliver(node, 1, envelope_from(4, e));
  ASSERT_TRUE(ctx.decision.has_value());
  EXPECT_EQ(*ctx.decision, 0);
  EXPECT_TRUE(node.has_decided());
  // The relay went out exactly once.
  const auto env = decode_last(ctx);
  ASSERT_TRUE(env.body.proposer);
  EXPECT_EQ(env.body.proposer->kind, ProposerMsg::Kind::kDecide);
  // Further traffic does not produce more sends.
  ctx.ack(node);
  const auto sent_before = ctx.sent.size();
  ctx.deliver(node, 2, envelope_from(5, e));
  EXPECT_EQ(ctx.sent.size(), sent_before);
}

TEST(WPaxosUnit, ProposerAdoptsPriorProposalFromPromises) {
  // Lemma 4.3's local step, pinned deterministically: a proposer whose
  // promise quorum reports a previously accepted proposal must propose
  // THAT value, not its own.
  WPaxos node(/*id=*/9, /*n=*/5, /*value=*/1);
  FakeContext ctx;
  node.on_start(ctx);  // self-leader: prepare pn(1,9) out, self-promise in
  ctx.ack(node);

  // Two aggregated promises (count 2 + self = 3 > 5/2) carrying a prior
  // accepted proposal {pn=(1,3), value=0}.
  AcceptorResponse promise;
  promise.stage = AcceptorResponse::Stage::kPrepare;
  promise.pn = {1, 9};
  promise.positive = true;
  promise.count = 2;
  promise.prev = Proposal{{1, 3}, 0};
  promise.dest = 9;
  Envelope e;
  e.response = promise;
  ctx.deliver(node, 2, envelope_from(4, e));

  if (ctx.busy()) ctx.ack(node);
  // The propose message must carry the adopted value 0.
  bool saw_propose = false;
  for (const auto& buf : ctx.sent) {
    const auto env = WireEnvelope::decode(buf);
    if (env.body.proposer &&
        env.body.proposer->kind == ProposerMsg::Kind::kPropose) {
      saw_propose = true;
      EXPECT_EQ(env.body.proposer->value, 0) << "must adopt, not propose own";
      EXPECT_EQ(env.body.proposer->pn, (ProposalNumber{1, 9}));
    }
  }
  EXPECT_TRUE(saw_propose);
}

TEST(WPaxosUnit, ProposerUsesOwnValueWithoutPriorProposals) {
  WPaxos node(9, 5, 1);
  FakeContext ctx;
  node.on_start(ctx);
  ctx.ack(node);
  AcceptorResponse promise;
  promise.stage = AcceptorResponse::Stage::kPrepare;
  promise.pn = {1, 9};
  promise.positive = true;
  promise.count = 2;
  promise.dest = 9;  // no prev
  Envelope e;
  e.response = promise;
  ctx.deliver(node, 2, envelope_from(4, e));
  if (ctx.busy()) ctx.ack(node);
  bool saw_propose = false;
  for (const auto& buf : ctx.sent) {
    const auto env = WireEnvelope::decode(buf);
    if (env.body.proposer &&
        env.body.proposer->kind == ProposerMsg::Kind::kPropose) {
      saw_propose = true;
      EXPECT_EQ(env.body.proposer->value, 1);
    }
  }
  EXPECT_TRUE(saw_propose);
}

TEST(WPaxosUnit, MajorityRejectionTriggersOneRetryWithHigherTag) {
  WPaxos node(9, 5, 1);
  FakeContext ctx;
  node.on_start(ctx);  // prepare pn(1,9)
  ctx.ack(node);
  AcceptorResponse reject;
  reject.stage = AcceptorResponse::Stage::kPrepare;
  reject.pn = {1, 9};
  reject.positive = false;
  reject.count = 3;  // > n/2
  reject.max_committed = {7, 8};  // someone committed to tag 7
  reject.dest = 9;
  Envelope e;
  e.response = reject;
  ctx.deliver(node, 2, envelope_from(4, e));
  if (ctx.busy()) ctx.ack(node);
  // Retry must use a tag above the learned commitment.
  bool saw_retry = false;
  for (const auto& buf : ctx.sent) {
    const auto env = WireEnvelope::decode(buf);
    if (env.body.proposer &&
        env.body.proposer->kind == ProposerMsg::Kind::kPrepare &&
        env.body.proposer->pn.tag > 7) {
      saw_retry = true;
    }
  }
  EXPECT_TRUE(saw_retry);
  EXPECT_GT(node.current_max_tag(), 7u);
}

TEST(WPaxosUnit, SingleNodeDecidesAlone) {
  WPaxos node(0, 1, 1);
  FakeContext ctx;
  node.on_start(ctx);
  // n = 1: its own acceptor is the majority; prepare + propose resolve
  // locally and the decision happens without any delivery.
  ASSERT_TRUE(ctx.decision.has_value());
  EXPECT_EQ(*ctx.decision, 1);
}

TEST(WPaxosUnit, ProposerMsgFromUnknownBiggerIdUpdatesLeader) {
  WPaxos node(3, 5, 1);
  FakeContext ctx;
  node.on_start(ctx);
  Envelope e;
  e.proposer = ProposerMsg{ProposerMsg::Kind::kPrepare, {1, 42}, 0};
  ctx.deliver(node, 1, envelope_from(40, e));
  // pn.id = 42 is evidence of node 42's existence.
  EXPECT_EQ(node.omega(), 42u);
}

TEST(WPaxosUnit, NonLeaderPropositionNotRelayed) {
  WPaxos node(3, 5, 1);
  FakeContext ctx;
  node.on_start(ctx);
  ctx.ack(node);
  // Learn about leader 50 first.
  Envelope lead;
  lead.leader = LeaderMsg{50};
  ctx.deliver(node, 1, envelope_from(50, lead));
  while (ctx.busy()) ctx.ack(node);  // drain queues
  const auto sent_before = ctx.sent.size();

  // A proposition from old leader 42 (< 50) must be ignored entirely.
  Envelope stale;
  stale.proposer = ProposerMsg{ProposerMsg::Kind::kPrepare, {1, 42}, 0};
  ctx.deliver(node, 1, envelope_from(40, stale));
  EXPECT_EQ(ctx.sent.size(), sent_before);
  EXPECT_TRUE(node.response_queue().empty());
}

TEST(WPaxosUnit, ChangeMessagesFloodNewestOnly) {
  WPaxos node(3, 5, 1);
  FakeContext ctx;
  node.on_start(ctx);
  ctx.advance(10);
  Envelope newer;
  newer.change = ChangeMsg{9, 7};
  ctx.deliver(node, 1, envelope_from(7, newer));
  Envelope older;
  older.change = ChangeMsg{5, 8};
  ctx.deliver(node, 2, envelope_from(8, older));
  ctx.ack(node);
  const auto env = decode_last(ctx);
  ASSERT_TRUE(env.body.change);
  EXPECT_EQ(env.body.change->timestamp, 9u);
  EXPECT_EQ(env.body.change->origin, 7u);
}

TEST(WPaxosUnit, BusyRadioNeverDoubleBroadcasts) {
  WPaxos node(3, 5, 1);
  FakeContext ctx;
  node.on_start(ctx);
  // Deliver a storm of service messages while the first broadcast is
  // outstanding: wPAXOS must queue, not broadcast (the model would discard).
  for (NodeId s = 10; s < 20; ++s) {
    Envelope e;
    e.leader = LeaderMsg{s};
    e.search = SearchMsg{s, 1};
    ctx.deliver(node, 1, envelope_from(s, e));
  }
  EXPECT_EQ(ctx.sent.size(), 1u);
  EXPECT_EQ(ctx.dropped, 0u);  // it queued instead of relying on discards
}

}  // namespace
}  // namespace amac::core::wpaxos
