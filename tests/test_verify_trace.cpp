#include "verify/trace.hpp"

#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "mac/schedulers.hpp"
#include "net/topologies.hpp"

namespace amac::verify {
namespace {

TEST(Trace, IdenticalRunsProduceIdenticalTraces) {
  const auto g = net::make_line(5);
  const auto inputs = harness::inputs_all(5, 1);
  std::vector<NodeId> watch{0, 2, 4};

  auto record = [&] {
    mac::SynchronousScheduler sched(1);
    mac::Network net(g, harness::anonymous_factory(inputs, 4), sched);
    return DigestTrace::record(net, watch, 10);
  };
  const auto a = record();
  const auto b = record();
  ASSERT_EQ(a.steps(), 10u);
  for (std::size_t w = 0; w < watch.size(); ++w) {
    EXPECT_EQ(a.common_prefix(w, b, w), 10u);
  }
}

TEST(Trace, SymmetricNodesMatchAsymmetricDiverge) {
  // On a line with uniform input under the synchronous scheduler, the two
  // endpoints are symmetric (anonymous algorithm!) and trace identically;
  // an endpoint and the midpoint diverge (different degrees).
  const auto g = net::make_line(5);
  const auto inputs = harness::inputs_all(5, 0);
  mac::SynchronousScheduler sched(1);
  mac::Network net(g, harness::anonymous_factory(inputs, 4), sched);
  const auto trace = DigestTrace::record(net, {0, 4, 2}, 8);
  EXPECT_EQ(trace.common_prefix(0, trace, 1), 8u);  // endpoints match
  // Midpoint diverges eventually? For min-flood with uniform inputs the
  // state is (min, phase, decided): phases advance in lockstep and min
  // never changes, so even the midpoint matches. Distinguish via mixed
  // inputs instead:
  std::vector<mac::Value> mixed{1, 1, 1, 1, 0};
  mac::SynchronousScheduler sched2(1);
  mac::Network net2(g, harness::anonymous_factory(mixed, 4), sched2);
  const auto t2 = DigestTrace::record(net2, {0, 4}, 8);
  // Node 4 holds the 0 from the start; node 0 learns it only at step 4:
  // traces must diverge immediately.
  EXPECT_LT(t2.common_prefix(0, t2, 1), 4u);
}

TEST(Trace, DivergencePropagatesAtOneHopPerStep) {
  // Runs {1,1,1} vs {1,1,0} on a 3-line: node 2's min differs from the
  // very first recorded step; node 1 (one hop away) diverges one step
  // later; node 0 one step after that. The common-prefix lengths ARE the
  // hop distances — exactly the information-propagation picture behind
  // every indistinguishability argument in the paper.
  const auto g = net::make_line(3);
  const std::vector<mac::Value> in_a{1, 1, 1};
  const std::vector<mac::Value> in_b{1, 1, 0};
  const std::vector<NodeId> watch{0, 1, 2};

  mac::SynchronousScheduler s1(1);
  mac::Network na(g, harness::anonymous_factory(in_a, 2), s1);
  const auto ta = DigestTrace::record(na, watch, 6);
  mac::SynchronousScheduler s2(1);
  mac::Network nb(g, harness::anonymous_factory(in_b, 2), s2);
  const auto tb = DigestTrace::record(nb, watch, 6);

  // Rows are recorded after each tick, and tick 1 already delivers the
  // differing value one hop out: a node at hop distance d diverges at
  // recorded step max(0, d-1).
  EXPECT_EQ(ta.common_prefix(2, tb, 2), 0u);  // the 0-holder itself
  EXPECT_EQ(ta.common_prefix(1, tb, 1), 0u);  // heard it during tick 1
  EXPECT_EQ(ta.common_prefix(0, tb, 0), 1u);  // arrives during tick 2
}

TEST(Trace, StepsAndWatchedCounts) {
  const auto g = net::make_clique(3);
  const auto inputs = harness::inputs_all(3, 0);
  mac::SynchronousScheduler sched(1);
  mac::Network net(g, harness::anonymous_factory(inputs, 1), sched);
  const auto t = DigestTrace::record(net, {0, 1}, 5);
  EXPECT_EQ(t.steps(), 5u);
  EXPECT_EQ(t.watched_count(), 2u);
}

}  // namespace
}  // namespace amac::verify
