// Coverage-signature pins (tier-1).
//
//   * quarter-log bucket boundaries land exactly on powers of four, and the
//     saturated (protocol) variant caps at 15;
//   * ProtocolStats fold into the signature's protocol buckets, and the
//     key / engine_key / protocol_key projections partition the dimensions
//     exactly (equal keys <=> equal signatures; the engine projection is
//     the PR-4 signature space bit for bit);
//   * real runs populate the protocol dimensions per algorithm (Ben-Or
//     coins, wPAXOS proposals, flooding gather width);
//   * rarity-weighted mutation-base selection over a skewed corpus picks
//     rare signatures at >= 2x their uniform share (seeded 10k-draw run,
//     deterministic).
#include <gtest/gtest.h>

#include "fuzz/fuzzer.hpp"
#include "util/hash.hpp"

namespace amac::fuzz {
namespace {

using harness::Algorithm;

TEST(FuzzBuckets, QuarterLogBoundariesAreExact) {
  // 0 -> 0; otherwise 1 + floor(log4 v): boundaries at exact powers of 4.
  EXPECT_EQ(magnitude_bucket(0), 0);
  EXPECT_EQ(magnitude_bucket(1), 1);
  EXPECT_EQ(magnitude_bucket(3), 1);
  EXPECT_EQ(magnitude_bucket(4), 2);
  EXPECT_EQ(magnitude_bucket(15), 2);
  EXPECT_EQ(magnitude_bucket(16), 3);
  EXPECT_EQ(magnitude_bucket(63), 3);
  EXPECT_EQ(magnitude_bucket(64), 4);
  EXPECT_EQ(magnitude_bucket(255), 4);
  EXPECT_EQ(magnitude_bucket(256), 5);
  // The general law at every power-of-four boundary.
  std::uint64_t power = 1;
  for (std::uint8_t k = 0; k < 31; ++k, power *= 4) {
    EXPECT_EQ(magnitude_bucket(power), k + 1) << "4^" << int(k);
    if (k > 0) EXPECT_EQ(magnitude_bucket(power - 1), k) << "4^" << int(k);
  }
}

TEST(FuzzBuckets, SaturatedVariantCapsAt15) {
  EXPECT_EQ(saturated_bucket(0), 0);
  EXPECT_EQ(saturated_bucket(1), 1);
  // 4^14 is the last value in bucket 14's range start... everything at or
  // beyond bucket 15 pins to 15, so the field packs in 4 bits.
  EXPECT_EQ(saturated_bucket(std::uint64_t{1} << 28), 15);  // 4^14
  EXPECT_EQ(saturated_bucket(std::uint64_t{1} << 40), 15);
  EXPECT_EQ(saturated_bucket(~std::uint64_t{0}), 15);
  for (std::uint64_t v : {std::uint64_t{5}, std::uint64_t{100},
                          std::uint64_t{100000}}) {
    EXPECT_EQ(saturated_bucket(v), magnitude_bucket(v)) << v;
  }
}

TEST(FuzzSignature, SizeBucketSeparatesLargeTopologies) {
  // v4 added the scenario size bucket to the engine projection: identical
  // engine observables at n=24 and n=4096 are different coverage points,
  // so a soak that promotes scenarios to large topologies grows distinct
  // signatures instead of folding into the small-n ones.
  const Scenario s = generate_scenario(3);
  RunReport r;
  const CoverageSignature small_sig = coverage_signature(s, r);
  EXPECT_EQ(small_sig.size_bucket, saturated_bucket(s.n));
  EXPECT_LT(small_sig.size_bucket, 6);  // the pinned corpus stays small-n

  Scenario big = s;
  promote_to_large(big, 4096);
  const CoverageSignature big_sig = coverage_signature(big, r);
  EXPECT_EQ(big_sig.size_bucket, 7);  // 4^6 <= 4096 < 4^7
  EXPECT_NE(big_sig.engine_key(), small_sig.engine_key());
  EXPECT_NE(big_sig.key(), small_sig.key());

  // n = 1024 is the first bucket counted as large (CoverageSummary
  // large_sigs: size_bucket >= 6).
  EXPECT_EQ(saturated_bucket(1024), 6);
  EXPECT_EQ(saturated_bucket(1023), 5);
}

TEST(FuzzSignature, ProtocolStatsFoldIntoProtocolBuckets) {
  const Scenario s = generate_scenario(11);
  RunReport r;
  r.protocol.max_round = 17;       // bucket 3 (16..63)
  r.protocol.coin_flips = 2;       // bucket 1
  r.protocol.proposals = 3;        // proposals + changes = 5 -> bucket 2
  r.protocol.change_events = 2;
  r.protocol.max_learned = 0;      // bucket 0
  r.protocol.quiet_resets = 5;     // bucket 2 (4..15), v5 dimension
  const CoverageSignature sig = coverage_signature(s, r);
  EXPECT_EQ(sig.round_bucket, 3);
  EXPECT_EQ(sig.coin_bucket, 1);
  EXPECT_EQ(sig.proposal_bucket, 2);
  EXPECT_EQ(sig.learned_bucket, 0);
  EXPECT_EQ(sig.quiet_bucket, 2);
  EXPECT_EQ(sig.protocol_key(),
            (std::uint64_t{2} << 16) | (std::uint64_t{3} << 12) |
                (std::uint64_t{1} << 8) | (std::uint64_t{2} << 4));
}

TEST(FuzzSignature, KeyProjectionsPartitionTheDimensions) {
  CoverageSignature sig;
  sig.scheduler = 5;
  sig.wheel_bucket = 4;
  sig.overflow_bucket = 2;
  sig.batch_bucket = 1;
  sig.resize_bucket = 3;
  sig.decide_bucket = 6;
  sig.flags = CoverageSignature::kHasHolds | CoverageSignature::kLateHolds;
  sig.failure = 0;
  sig.round_bucket = 2;
  sig.coin_bucket = 0;
  sig.proposal_bucket = 7;
  sig.learned_bucket = 1;

  // Since v3 the engine projection (52 bits with the fault buckets) plus
  // the protocol buckets no longer pack into 64 bits, so the full key is a
  // hash combine of the two projections — reproducible, and equal to the
  // same combine computed by hand.
  {
    util::Hasher h;
    h.mix_u64(sig.engine_key());
    h.mix_u64(sig.protocol_key());
    EXPECT_EQ(sig.key(), h.digest());
  }

  // Changing only a protocol bucket changes key and protocol_key but not
  // engine_key; changing only an engine field does the reverse.
  CoverageSignature other = sig;
  other.coin_bucket = 5;
  EXPECT_NE(other.key(), sig.key());
  EXPECT_NE(other.protocol_key(), sig.protocol_key());
  EXPECT_EQ(other.engine_key(), sig.engine_key());

  other = sig;
  other.overflow_bucket = 0;
  EXPECT_NE(other.key(), sig.key());
  EXPECT_EQ(other.protocol_key(), sig.protocol_key());
  EXPECT_NE(other.engine_key(), sig.engine_key());

  // Equal signatures, equal keys (the combine is deterministic).
  other = sig;
  EXPECT_EQ(other.key(), sig.key());
}

TEST(FuzzSignature, RealRunsPopulateProtocolDimensionsPerAlgorithm) {
  // Find one scenario per interesting algorithm in the pinned seed range
  // and check the protocol observables really flow through.
  bool saw_benor = false;
  bool saw_wpaxos = false;
  bool saw_flooding = false;
  for (std::uint64_t seed = 1; seed <= 120; ++seed) {
    const Scenario s = generate_scenario(seed);
    const RunReport r = run_scenario(s);
    if (r.failure != FailureKind::kNone) continue;
    if (s.algorithm == Algorithm::kBenOr && !saw_benor) {
      saw_benor = true;
      // Every Ben-Or run advances at least into round 1.
      EXPECT_GE(r.protocol.max_round, 1u) << format_spec(s);
    }
    if (s.algorithm == Algorithm::kWPaxos && !saw_wpaxos &&
        r.condition_met) {
      saw_wpaxos = true;
      // A deciding wPAXOS run started at least one proposal and observed
      // change events.
      EXPECT_GE(r.protocol.proposals, 1u) << format_spec(s);
      EXPECT_GE(r.protocol.change_events, 1u) << format_spec(s);
      EXPECT_GE(r.protocol.max_round, 1u) << format_spec(s);
    }
    if (s.algorithm == Algorithm::kFlooding && !saw_flooding &&
        r.condition_met) {
      saw_flooding = true;
      // Flooding decides only once some node knows all n pairs.
      EXPECT_GE(r.protocol.max_learned, 2u) << format_spec(s);
    }
  }
  EXPECT_TRUE(saw_benor);
  EXPECT_TRUE(saw_wpaxos);
  EXPECT_TRUE(saw_flooding);
}

TEST(FuzzSignature, CollectionTogglePopulatesVsZeroes) {
  // With collection off the protocol buckets are zero; with it on a
  // terminating Ben-Or run has a nonzero round bucket. Either way the
  // run's fingerprint is identical (the full pin lives in the smoke
  // suite's determinism regression).
  Scenario s;
  bool found = false;
  for (std::uint64_t seed = 1; seed <= 1000 && !found; ++seed) {
    s = generate_scenario(seed);
    found = s.algorithm == Algorithm::kBenOr && s.crashes.empty();
  }
  ASSERT_TRUE(found);
  RunOptions with;
  RunOptions without;
  without.collect_protocol_stats = false;
  const RunReport on = run_scenario(s, with);
  const RunReport off = run_scenario(s, without);
  EXPECT_EQ(on.fingerprint, off.fingerprint);
  EXPECT_GE(on.protocol.max_round, 1u);
  EXPECT_EQ(off.protocol.max_round, 0u);
  EXPECT_EQ(coverage_signature(s, off).protocol_key(), 0u);
  EXPECT_EQ(coverage_signature(s, on).engine_key(),
            coverage_signature(s, off).engine_key());
}

TEST(FuzzCorpusRarity, HitsAreCountedPerSignature) {
  CoverageCorpus corpus(8);
  CoverageSignature common;
  common.scheduler = 1;
  CoverageSignature rare;
  rare.scheduler = 2;
  EXPECT_TRUE(corpus.observe(common));
  for (int i = 0; i < 99; ++i) EXPECT_FALSE(corpus.observe(common));
  EXPECT_TRUE(corpus.observe(rare));
  EXPECT_EQ(corpus.hits(common.key()), 100u);
  EXPECT_EQ(corpus.hits(rare.key()), 1u);
  EXPECT_EQ(corpus.hits(0xDEAD), 0u);  // never observed
  EXPECT_EQ(corpus.distinct_signatures(), 2u);
}

TEST(FuzzCorpusRarity, RareSignaturesAreSelectedAtTwiceUniformShare) {
  // Skewed corpus: 9 entries whose shared signature has been hit 100
  // times, 1 entry whose signature was hit once. Uniform selection would
  // pick the rare entry 1/10 of the time; inverse-frequency weighting
  // gives it 1/(1 + 9/100) ~ 0.917. The assertion only demands >= 2x the
  // uniform share — far from the expected value, so the seeded run can
  // never flake — and the draw stream is fixed, so this is deterministic.
  CoverageCorpus corpus(16);
  CoverageSignature common;
  common.scheduler = 1;
  CoverageSignature rare;
  rare.scheduler = 2;
  (void)corpus.observe(rare);
  for (int i = 0; i < 100; ++i) (void)corpus.observe(common);

  for (std::uint64_t seed = 1; seed <= 9; ++seed) {
    corpus.admit(generate_scenario(seed), common.key());
  }
  const Scenario rare_scenario = generate_scenario(777);
  corpus.admit(rare_scenario, rare.key());
  ASSERT_EQ(corpus.size(), 10u);

  const std::string rare_spec = format_spec(rare_scenario);
  util::Rng rng(0x5E1EC7);
  std::size_t rare_draws = 0;
  constexpr std::size_t kDraws = 10000;
  for (std::size_t i = 0; i < kDraws; ++i) {
    if (format_spec(corpus.select_base(rng)) == rare_spec) ++rare_draws;
  }
  // Uniform share would be ~1000; demand at least double.
  EXPECT_GE(rare_draws, 2 * kDraws / 10)
      << "rarity weighting did not favor the rare signature";
}

TEST(FuzzCorpusRarity, SplicePartnersAreSelectedAtTwiceUniformShare) {
  // Same statistical pin as select_base, for the SPLICE PARTNER draw:
  // cross-scenario splices must pull structure from the frontier, not
  // from whichever signature floods the pool. Identical skewed corpus,
  // fixed draw stream — deterministic, never flakes.
  CoverageCorpus corpus(16);
  CoverageSignature common;
  common.scheduler = 1;
  CoverageSignature rare;
  rare.scheduler = 2;
  (void)corpus.observe(rare);
  for (int i = 0; i < 100; ++i) (void)corpus.observe(common);

  for (std::uint64_t seed = 1; seed <= 9; ++seed) {
    corpus.admit(generate_scenario(seed), common.key());
  }
  const Scenario rare_scenario = generate_scenario(777);
  corpus.admit(rare_scenario, rare.key());
  ASSERT_EQ(corpus.size(), 10u);

  const std::string rare_spec = format_spec(rare_scenario);
  util::Rng rng(0xB5121CE);
  std::size_t rare_draws = 0;
  constexpr std::size_t kDraws = 10000;
  for (std::size_t i = 0; i < kDraws; ++i) {
    if (format_spec(corpus.select_partner(rng)) == rare_spec) ++rare_draws;
  }
  EXPECT_GE(rare_draws, 2 * kDraws / 10)
      << "partner selection did not favor the rare signature";
}

TEST(FuzzCorpusRarity, PreSeededEntriesCountAsMaximallyRare) {
  // --corpus-in pre-seeds carry sig_key 0 with zero observations; they
  // must weigh like a once-seen signature (not crash or starve), so a
  // resumed nightly frontier is mutated immediately.
  CoverageCorpus corpus(4);
  corpus.admit(generate_scenario(1));  // no signature recorded
  util::Rng rng(42);
  const Scenario& picked = corpus.select_base(rng);
  EXPECT_EQ(format_spec(picked), format_spec(generate_scenario(1)));

  // Mixed with a heavily-hit entry, the unseen pre-seed dominates.
  CoverageSignature common;
  common.scheduler = 3;
  for (int i = 0; i < 50; ++i) (void)corpus.observe(common);
  corpus.admit(generate_scenario(2), common.key());
  std::size_t preseed_draws = 0;
  for (int i = 0; i < 1000; ++i) {
    if (format_spec(corpus.select_base(rng)) ==
        format_spec(generate_scenario(1))) {
      ++preseed_draws;
    }
  }
  EXPECT_GT(preseed_draws, 700u);  // expected ~ 50/51 ~ 0.98
}

}  // namespace
}  // namespace amac::fuzz
