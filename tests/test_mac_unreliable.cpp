// The dual-graph (reliable + unreliable overlay) abstract MAC layer — the
// model extension the paper's conclusion lists as future work #1.
#include <gtest/gtest.h>

#include "core/wpaxos/wpaxos.hpp"
#include "harness/experiment.hpp"
#include "helpers.hpp"
#include "mac/schedulers.hpp"
#include "net/topologies.hpp"

namespace amac::mac {
namespace {

using testutil::probe_at;
using testutil::probe_factory;

net::Graph chord_overlay(std::size_t n, NodeId a, NodeId b) {
  net::Graph g(n);
  g.add_edge(a, b);
  return g;
}

TEST(Unreliable, DefaultSchedulerDeliversNothingOnOverlay) {
  const auto g = net::make_line(3);
  const auto overlay = chord_overlay(3, 0, 2);
  SynchronousScheduler sched(1);
  Network net(g, probe_factory(2), sched, &overlay);
  net.run(StopWhen::kQuiescent, 100);
  // Node 2 hears only its reliable neighbor 1.
  for (const auto& r : probe_at(net, 2).receives) EXPECT_EQ(r.sender, 1u);
}

TEST(Unreliable, LossyProbabilityOneDeliversAll) {
  const auto g = net::make_line(3);
  const auto overlay = chord_overlay(3, 0, 2);
  LossyScheduler sched(std::make_unique<SynchronousScheduler>(4), 1.0, 7);
  Network net(g, probe_factory(3), sched, &overlay);
  net.run(StopWhen::kQuiescent, 1000);
  std::size_t from_0_at_2 = 0;
  for (const auto& r : probe_at(net, 2).receives) {
    if (r.sender == 0) ++from_0_at_2;
  }
  EXPECT_EQ(from_0_at_2, 3u);  // every broadcast crossed the chord
}

TEST(Unreliable, LossyProbabilityZeroDeliversNone) {
  const auto g = net::make_line(3);
  const auto overlay = chord_overlay(3, 0, 2);
  LossyScheduler sched(std::make_unique<SynchronousScheduler>(4), 0.0, 7);
  Network net(g, probe_factory(3), sched, &overlay);
  net.run(StopWhen::kQuiescent, 1000);
  for (const auto& r : probe_at(net, 2).receives) EXPECT_EQ(r.sender, 1u);
}

TEST(Unreliable, CutoffSilencesOverlay) {
  const auto g = net::make_line(3);
  const auto overlay = chord_overlay(3, 0, 2);
  LossyScheduler sched(std::make_unique<SynchronousScheduler>(1), 1.0, 7);
  sched.set_cutoff(2);
  Network net(g, probe_factory(10), sched, &overlay);
  net.run(StopWhen::kQuiescent, 1000);
  for (const auto& r : probe_at(net, 2).receives) {
    if (r.sender == 0) {
      EXPECT_LT(r.time, 2u);
    }
  }
}

TEST(Unreliable, OverlayReceivesWithinBroadcastWindow) {
  const auto g = net::make_line(4);
  net::Graph overlay(4);
  overlay.add_edge(0, 2);
  overlay.add_edge(0, 3);
  overlay.add_edge(1, 3);
  LossyScheduler sched(std::make_unique<UniformRandomScheduler>(9, 3), 0.7,
                       11);
  Network net(g, probe_factory(4), sched, &overlay);
  net.run(StopWhen::kQuiescent, 10000);
  // Model guarantee preserved: every receive (reliable or not) of sender
  // u's broadcast i happens no later than u's i-th ack.
  for (NodeId u = 0; u < 4; ++u) {
    const auto& sender = probe_at(net, u);
    for (NodeId v = 0; v < 4; ++v) {
      if (v == u) continue;
      for (const auto& r : probe_at(net, v).receives) {
        if (r.sender == u) {
          EXPECT_LE(r.time, sender.acks[r.seq]);
        }
      }
    }
  }
}

TEST(Unreliable, ReliableFlagVisibleToProcess) {
  // Processes can distinguish the edge class, which is what makes the
  // tree_reliable_only mitigation implementable.
  class FlagRecorder final : public Process {
   public:
    void on_start(Context& ctx) override { ctx.broadcast(util::Buffer{1}); }
    void on_receive(const Packet& p, Context&) override {
      flags.push_back(p.reliable);
    }
    void on_ack(Context&) override {}
    std::unique_ptr<Process> clone() const override {
      return std::make_unique<FlagRecorder>(*this);
    }
    void digest(util::Hasher&) const override {}
    std::vector<bool> flags;
  };

  const auto g = net::make_line(3);
  const auto overlay = chord_overlay(3, 0, 2);
  LossyScheduler sched(std::make_unique<SynchronousScheduler>(2), 1.0, 5);
  const ProcessFactory factory = [](NodeId) {
    return std::make_unique<FlagRecorder>();
  };
  Network net(g, factory, sched, &overlay);
  net.run(StopWhen::kQuiescent, 100);
  const auto* rec = dynamic_cast<const FlagRecorder*>(&net.process(2));
  ASSERT_NE(rec, nullptr);
  ASSERT_EQ(rec->flags.size(), 2u);  // one from node 1 (reliable), one chord
  EXPECT_NE(rec->flags[0], rec->flags[1]);
}

// ---- wPAXOS under the dual-graph model ----------------------------------

TEST(UnreliableWPaxos, SafeUnderRandomLossyOverlays) {
  // Safety (agreement + validity among deciders) must survive any overlay
  // behavior; with reliable-only trees, liveness holds too.
  util::Rng rng(99);
  for (const double p : {0.2, 0.5, 0.9}) {
    const auto g = net::make_grid(4, 4);
    // Overlay: a handful of random chords not in the grid.
    net::Graph overlay(16);
    while (overlay.edge_count() < 6) {
      const auto a = static_cast<NodeId>(rng.uniform(0, 15));
      const auto b = static_cast<NodeId>(rng.uniform(0, 15));
      if (a == b || g.has_edge(a, b) || overlay.has_edge(a, b)) continue;
      overlay.add_edge(a, b);
    }
    const auto inputs = harness::inputs_random(16, rng);
    const auto ids = harness::permuted_ids(16, rng);
    core::wpaxos::WPaxosConfig cfg;
    cfg.tree_reliable_only = true;
    LossyScheduler sched(std::make_unique<UniformRandomScheduler>(3, rng()),
                         p, rng());
    Network net(g, harness::wpaxos_factory(inputs, ids, cfg), sched,
                &overlay);
    net.run(StopWhen::kAllDecided, 1'000'000);
    const auto verdict = verify::check_consensus(net, inputs);
    EXPECT_TRUE(verdict.ok()) << "p=" << p << ": " << verdict.summary();
  }
}

struct SilencedChordFixture {
  net::Graph line = net::make_line(11);
  net::Graph overlay = chord_overlay(11, 0, 5);
  std::vector<std::uint64_t> ids;  // leader (max id) at node 0
  std::vector<mac::Value> inputs;

  SilencedChordFixture() {
    for (NodeId u = 0; u < 11; ++u) ids.push_back(10 - u);
    inputs = harness::inputs_alternating(11);
  }
};

TEST(UnreliableWPaxos, TreesOverUnreliableEdgesCanLoseLiveness) {
  // The open question's sharp edge: the chord 0-5 delivers during tree
  // formation (node 5 adopts the leader as parent across it), then goes
  // silent. Most of the line routes its responses through node 5 into the
  // dead chord; the leader can never count a majority.
  SilencedChordFixture fx;
  LossyScheduler sched(std::make_unique<SynchronousScheduler>(1), 1.0, 3);
  sched.set_cutoff(6);  // generous while routes form, then silent
  Network net(fx.line, harness::wpaxos_factory(fx.inputs, fx.ids), sched,
              &fx.overlay);
  const auto result = net.run(StopWhen::kAllDecided, 50'000);
  EXPECT_FALSE(result.condition_met) << "expected a liveness stall";
  // Safety still intact: whoever decided (nobody, or a consistent subset).
  const auto verdict = verify::check_consensus(net, fx.inputs);
  EXPECT_TRUE(verdict.agreement);
  EXPECT_TRUE(verdict.validity || !verdict.decision.has_value());
}

TEST(UnreliableWPaxos, ReliableOnlyTreesRestoreLiveness) {
  SilencedChordFixture fx;
  core::wpaxos::WPaxosConfig cfg;
  cfg.tree_reliable_only = true;
  LossyScheduler sched(std::make_unique<SynchronousScheduler>(1), 1.0, 3);
  sched.set_cutoff(6);
  Network net(fx.line, harness::wpaxos_factory(fx.inputs, fx.ids, cfg),
              sched, &fx.overlay);
  const auto result = net.run(StopWhen::kAllDecided, 50'000);
  EXPECT_TRUE(result.condition_met);
  const auto verdict = verify::check_consensus(net, fx.inputs);
  EXPECT_TRUE(verdict.ok()) << verdict.summary();
}

TEST(UnreliableWPaxos, OverlayOnlyAccelerates) {
  // With trees kept reliable, overlay deliveries are pure extra
  // information: correctness unchanged, decision time never worse than a
  // two-sided bound of the no-overlay run on the same seeds.
  const auto g = net::make_line(12);
  net::Graph overlay(12);
  overlay.add_edge(0, 11);
  overlay.add_edge(3, 9);
  const auto inputs = harness::inputs_alternating(12);
  const auto ids = harness::identity_ids(12);
  core::wpaxos::WPaxosConfig cfg;
  cfg.tree_reliable_only = true;

  LossyScheduler with(std::make_unique<SynchronousScheduler>(1), 1.0, 5);
  Network net_with(g, harness::wpaxos_factory(inputs, ids, cfg), with,
                   &overlay);
  net_with.run(StopWhen::kAllDecided, 100'000);
  EXPECT_TRUE(verify::check_consensus(net_with, inputs).ok());

  SynchronousScheduler without(1);
  Network net_without(g, harness::wpaxos_factory(inputs, ids, cfg), without);
  net_without.run(StopWhen::kAllDecided, 100'000);
  EXPECT_TRUE(verify::check_consensus(net_without, inputs).ok());
}

}  // namespace
}  // namespace amac::mac
