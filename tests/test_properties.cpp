// Cross-cutting property tests: randomized round-trips and determinism
// guarantees that every experiment in the repository relies on.
#include <gtest/gtest.h>

#include "core/wpaxos/messages.hpp"
#include "harness/experiment.hpp"
#include "net/topologies.hpp"
#include "util/rng.hpp"
#include "util/serde.hpp"

namespace amac {
namespace {

TEST(Properties, SerdeFuzzRoundTrip) {
  // Random interleavings of every writer operation must read back exactly.
  util::Rng rng(20140506);
  for (int trial = 0; trial < 200; ++trial) {
    struct Op {
      int kind;
      std::uint64_t u;
      std::int64_t s;
      util::Buffer bytes;
    };
    std::vector<Op> ops;
    util::Writer w;
    const int count = 1 + static_cast<int>(rng.uniform(0, 30));
    for (int i = 0; i < count; ++i) {
      Op op;
      op.kind = static_cast<int>(rng.uniform(0, 3));
      switch (op.kind) {
        case 0:
          op.u = rng();
          w.put_uvarint(op.u);
          break;
        case 1:
          op.s = static_cast<std::int64_t>(rng());
          w.put_svarint(op.s);
          break;
        case 2:
          op.u = rng.uniform(0, 1);
          w.put_bool(op.u != 0);
          break;
        case 3: {
          const auto len = rng.uniform(0, 20);
          for (std::uint64_t b = 0; b < len; ++b) {
            op.bytes.push_back(static_cast<std::uint8_t>(rng.uniform(0, 255)));
          }
          w.put_bytes(op.bytes);
          break;
        }
      }
      ops.push_back(std::move(op));
    }
    util::Reader r(w.buffer());
    for (const auto& op : ops) {
      switch (op.kind) {
        case 0:
          EXPECT_EQ(r.get_uvarint(), op.u);
          break;
        case 1:
          EXPECT_EQ(r.get_svarint(), op.s);
          break;
        case 2:
          EXPECT_EQ(r.get_bool(), op.u != 0);
          break;
        case 3:
          EXPECT_EQ(r.get_bytes(), op.bytes);
          break;
      }
    }
    EXPECT_TRUE(r.exhausted());
  }
}

TEST(Properties, EnvelopeFuzzRoundTrip) {
  using namespace core::wpaxos;
  util::Rng rng(777);
  for (int trial = 0; trial < 300; ++trial) {
    Envelope e;
    if (rng.chance(0.5)) e.leader = LeaderMsg{rng()};
    if (rng.chance(0.5)) e.change = ChangeMsg{rng(), rng()};
    if (rng.chance(0.5)) {
      e.search = SearchMsg{rng(), static_cast<std::uint32_t>(
                                      rng.uniform(0, 1u << 20))};
    }
    if (rng.chance(0.5)) {
      e.proposer = ProposerMsg{
          static_cast<ProposerMsg::Kind>(rng.uniform(0, 2)),
          {rng(), rng()},
          static_cast<mac::Value>(rng.uniform(0, 1u << 30))};
    }
    if (rng.chance(0.5)) {
      AcceptorResponse r;
      r.stage = static_cast<AcceptorResponse::Stage>(rng.uniform(0, 1));
      r.pn = {rng(), rng()};
      r.positive = rng.chance(0.5);
      r.count = rng.uniform(1, 1 << 20);
      if (rng.chance(0.5)) {
        r.prev = Proposal{{rng(), rng()},
                          static_cast<mac::Value>(rng.uniform(0, 1 << 30))};
      }
      r.max_committed = {rng(), rng()};
      r.dest = rng();
      e.response = r;
    }
    const auto back = Envelope::decode(e.encode());
    EXPECT_EQ(back.leader.has_value(), e.leader.has_value());
    EXPECT_EQ(back.change.has_value(), e.change.has_value());
    EXPECT_EQ(back.search.has_value(), e.search.has_value());
    EXPECT_EQ(back.proposer.has_value(), e.proposer.has_value());
    EXPECT_EQ(back.response.has_value(), e.response.has_value());
    if (e.leader) {
      EXPECT_EQ(back.leader->leader_id, e.leader->leader_id);
    }
    if (e.search) {
      EXPECT_EQ(back.search->root, e.search->root);
      EXPECT_EQ(back.search->hops, e.search->hops);
    }
    if (e.proposer) {
      EXPECT_EQ(back.proposer->pn, e.proposer->pn);
      EXPECT_EQ(back.proposer->value, e.proposer->value);
    }
    if (e.response) {
      EXPECT_EQ(back.response->pn, e.response->pn);
      EXPECT_EQ(back.response->count, e.response->count);
      EXPECT_EQ(back.response->prev, e.response->prev);
      EXPECT_EQ(back.response->max_committed, e.response->max_committed);
      EXPECT_EQ(back.response->dest, e.response->dest);
    }
  }
}

TEST(Properties, FullRunsDeterministicPerSeed) {
  // The whole stack — topology generation, scheduler, engine, algorithm —
  // is a pure function of its seeds. Two runs must match event for event.
  for (int round = 0; round < 2; ++round) {
    static mac::Time first_time = 0;
    static std::uint64_t first_broadcasts = 0;
    util::Rng rng(2026);
    const auto g = net::make_random_geometric(40, 0.25, rng);
    const auto inputs = harness::inputs_random(40, rng);
    const auto ids = harness::permuted_ids(40, rng);
    mac::UniformRandomScheduler sched(4, 99);
    const auto outcome = harness::run_consensus(
        g, harness::wpaxos_factory(inputs, ids), sched, inputs, 1'000'000);
    ASSERT_TRUE(outcome.verdict.ok());
    if (round == 0) {
      first_time = outcome.verdict.last_decision;
      first_broadcasts = outcome.stats.broadcasts;
    } else {
      EXPECT_EQ(outcome.verdict.last_decision, first_time);
      EXPECT_EQ(outcome.stats.broadcasts, first_broadcasts);
    }
  }
}

TEST(Properties, EngineInvariantAckAfterReceivesFuzz) {
  // For any random scheduler seed, receives of broadcast i always precede
  // (or tie with) the sender's i-th ack. Sampled broadly here; this is the
  // defining abstract MAC layer guarantee.
  util::Rng rng(8);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 3 + rng.uniform(0, 10);
    const auto g = net::make_random_connected(n, 0.3, rng);
    const auto inputs = harness::inputs_random(n, rng);
    mac::UniformRandomScheduler sched(1 + rng.uniform(0, 7), rng());
    const auto outcome = harness::run_consensus(
        g, harness::flooding_factory(inputs), sched, inputs, 1'000'000);
    // check_consensus passing implies the algorithm's causality assumptions
    // (phase ordering) were never violated by the engine.
    EXPECT_TRUE(outcome.verdict.ok()) << outcome.verdict.summary();
  }
}

}  // namespace
}  // namespace amac
