// The executable content of Theorem 3.2: valency exploration of two-phase
// consensus under valid-step schedules with and without a crash adversary.
#include "verify/flp.hpp"

#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "net/topologies.hpp"

namespace amac::verify {
namespace {

TEST(Flp, NoCrashesUniformInputUnivalent) {
  // All-1 input: every schedule decides 1; no violations.
  const auto g = net::make_clique(2);
  const auto factory = harness::two_phase_factory({1, 1});
  FlpExplorer explorer(g, factory, /*crash_budget=*/0);
  const auto report = explorer.explore();
  EXPECT_FALSE(report.reaches_decision_0);
  EXPECT_TRUE(report.reaches_decision_1);
  EXPECT_FALSE(report.violation_found());
}

TEST(Flp, NoCrashesMixedInputIsBivalent) {
  // The standard FLP Lemma-2 analogue: a mixed initial configuration is
  // bivalent — the schedule alone determines the decision.
  const auto g = net::make_clique(2);
  const auto factory = harness::two_phase_factory({0, 1});
  FlpExplorer explorer(g, factory, 0);
  const auto report = explorer.explore();
  EXPECT_TRUE(report.bivalent())
      << "r0=" << report.reaches_decision_0
      << " r1=" << report.reaches_decision_1;
  EXPECT_FALSE(report.violation_found());
}

TEST(Flp, NoCrashesAlwaysTerminates) {
  // Without crashes, two-phase always terminates under valid-step
  // schedules (Theorem 4.1's guarantee restricted to this scheduler class).
  const auto g = net::make_clique(3);
  const auto factory = harness::two_phase_factory({0, 1, 1});
  FlpExplorer explorer(g, factory, 0);
  const auto report = explorer.explore();
  EXPECT_FALSE(report.stuck_reachable);
  EXPECT_FALSE(report.disagreement_reachable);
}

TEST(Flp, OneCrashDefeatsTwoPhaseOnPair) {
  // Theorem 3.2's consequence: two-phase (which decides) cannot tolerate a
  // single crash — the adversary reaches a stuck or disagreeing state.
  const auto g = net::make_clique(2);
  const auto factory = harness::two_phase_factory({0, 1});
  FlpExplorer explorer(g, factory, /*crash_budget=*/1);
  const auto report = explorer.explore();
  EXPECT_TRUE(report.violation_found())
      << "states=" << report.distinct_states;
  EXPECT_FALSE(report.witness.empty());
}

TEST(Flp, OneCrashDefeatsTwoPhaseOnTriangle) {
  const auto g = net::make_clique(3);
  const auto factory = harness::two_phase_factory({0, 1, 1});
  FlpExplorer explorer(g, factory, 1);
  const auto report = explorer.explore();
  EXPECT_TRUE(report.violation_found());
}

TEST(Flp, WitnessReplayReproducesViolation) {
  // The reported witness schedule, replayed step by step, must actually
  // reach a violating state.
  const auto g = net::make_clique(2);
  const auto factory = harness::two_phase_factory({0, 1});
  FlpExplorer explorer(g, factory, 1);
  const auto report = explorer.explore();
  ASSERT_TRUE(report.violation_found());
  ASSERT_FALSE(report.witness.empty());

  StepSystem sys(g, factory);
  for (const auto& step : report.witness) {
    sys.apply(step);
  }
  if (report.disagreement_reachable && sys.has_disagreement()) {
    SUCCEED();
  } else {
    // Stuck witness: from here, verify no terminal state is reachable by
    // fair exploration (rotating the preferred sender must not finish).
    for (int iter = 0; iter < 5000 && !sys.all_alive_decided(); ++iter) {
      const auto steps = sys.valid_steps(0);
      ASSERT_FALSE(steps.empty());
      const NodeId preferred = static_cast<NodeId>(
          static_cast<std::size_t>(iter) % sys.node_count());
      bool applied = false;
      for (const auto& s : steps) {
        if (s.u == preferred) {
          sys.apply(s);
          applied = true;
          break;
        }
      }
      if (!applied) sys.apply(steps.front());
    }
    EXPECT_FALSE(sys.all_alive_decided());
  }
}

TEST(Flp, StateDeduplicationWorks) {
  // Different interleavings converge on shared states: the transition
  // count must exceed the distinct-state count.
  const auto g = net::make_clique(2);
  const auto factory = harness::two_phase_factory({0, 1});
  FlpExplorer explorer(g, factory, 0);
  const auto report = explorer.explore();
  EXPECT_GT(report.distinct_states, 0u);
  EXPECT_GT(report.transitions, report.distinct_states);
}

TEST(Flp, CrashBudgetExpandsStateSpace) {
  const auto g = net::make_clique(2);
  const auto factory = harness::two_phase_factory({0, 1});
  FlpExplorer without(g, factory, 0);
  FlpExplorer with(g, factory, 1);
  EXPECT_LT(without.explore().distinct_states,
            with.explore().distinct_states);
}

}  // namespace
}  // namespace amac::verify
