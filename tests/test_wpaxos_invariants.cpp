// Lemma-level invariants of wPAXOS, monitored at every simulation event.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "net/topologies.hpp"
#include "verify/invariants.hpp"

namespace amac::verify {
namespace {

void run_with_monitor(const net::Graph& g, std::uint64_t seed,
                      core::wpaxos::WPaxosConfig cfg = {}) {
  const std::size_t n = g.node_count();
  util::Rng rng(seed);
  const auto inputs = harness::inputs_random(n, rng);
  const auto ids = harness::permuted_ids(n, rng);
  cfg.track_responses = true;

  mac::UniformRandomScheduler sched(3, rng());
  mac::Network net(g, harness::wpaxos_factory(inputs, ids, cfg), sched);
  ResponseConservationMonitor monitor(ids);
  net.set_post_event_hook(
      [&monitor](mac::Network& network) { monitor.check(network); });
  const auto result = net.run(mac::StopWhen::kAllDecided, 1'000'000);

  ASSERT_TRUE(result.condition_met);
  EXPECT_FALSE(monitor.violated()) << monitor.report();
  EXPECT_GT(monitor.checks_performed(), 0u);
  const auto verdict = check_consensus(net, inputs);
  EXPECT_TRUE(verdict.ok()) << verdict.summary();
}

TEST(Lemma42, HoldsOnLine) { run_with_monitor(net::make_line(8), 1); }
TEST(Lemma42, HoldsOnRing) { run_with_monitor(net::make_ring(9), 2); }
TEST(Lemma42, HoldsOnGrid) { run_with_monitor(net::make_grid(3, 3), 3); }
TEST(Lemma42, HoldsOnClique) { run_with_monitor(net::make_clique(7), 4); }
TEST(Lemma42, HoldsOnStar) { run_with_monitor(net::make_star(8), 5); }

TEST(Lemma42, HoldsWithoutAggregation) {
  core::wpaxos::WPaxosConfig cfg;
  cfg.aggregate_responses = false;
  run_with_monitor(net::make_grid(3, 3), 6, cfg);
}

TEST(Lemma42, HoldsWithoutTreePriority) {
  core::wpaxos::WPaxosConfig cfg;
  cfg.tree_priority = false;
  run_with_monitor(net::make_ring(8), 7, cfg);
}

TEST(Lemma42, HoldsUnderProposalStorm) {
  core::wpaxos::WPaxosConfig cfg;
  cfg.change_gating = false;
  run_with_monitor(net::make_line(6), 8, cfg);
}

TEST(Lemma44, TagsBoundedByChangeEvents) {
  // Lemma 4.4's mechanism: each change event spawns at most
  // proposals_per_change proposals, and tags only ever step to (max seen)+1,
  // so the largest tag is bounded by total proposals started.
  const auto g = net::make_grid(4, 4);
  const std::size_t n = g.node_count();
  util::Rng rng(9);
  const auto inputs = harness::inputs_random(n, rng);
  const auto ids = harness::permuted_ids(n, rng);
  mac::UniformRandomScheduler sched(4, rng());
  mac::Network net(g, harness::wpaxos_factory(inputs, ids), sched);
  net.run(mac::StopWhen::kAllDecided, 1'000'000);

  const auto tag = max_proposal_tag(net);
  const auto changes = total_change_events(net);
  EXPECT_LE(tag, 2 * changes + n);
  // The polynomial bound itself (very loose form of O(n^k)).
  EXPECT_LE(tag, 4 * n * n);
}

TEST(Lemma44, TagsStaySmallAfterStabilization) {
  // With the synchronous scheduler there is little churn: tags stay tiny.
  const auto g = net::make_line(10);
  const std::size_t n = 10;
  const auto inputs = harness::inputs_alternating(n);
  const auto ids = harness::identity_ids(n);
  mac::SynchronousScheduler sched(1);
  mac::Network net(g, harness::wpaxos_factory(inputs, ids), sched);
  net.run(mac::StopWhen::kAllDecided, 1'000'000);
  EXPECT_LE(max_proposal_tag(net), 12u);
}

}  // namespace
}  // namespace amac::verify
