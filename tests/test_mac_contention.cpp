// Receiver-side contention scheduling (the F_prog-flavored congestion
// model): one delivery per receiver per tick, algorithms unaffected in
// correctness, times stretched by local density.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "helpers.hpp"
#include "mac/schedulers.hpp"
#include "net/topologies.hpp"

namespace amac::mac {
namespace {

using testutil::probe_at;
using testutil::probe_factory;

TEST(Contention, SerializesDeliveriesPerReceiver) {
  // Star hub: n-1 leaves broadcast at t=0; the hub must receive them at
  // pairwise distinct ticks.
  const std::size_t n = 9;
  const auto g = net::make_star(n);
  ContentionScheduler sched(/*base=*/1, /*fack_bound=*/32, /*seed=*/5);
  Network net(g, probe_factory(1), sched);
  net.run(StopWhen::kQuiescent, 1000);
  const auto& hub = probe_at(net, 0);
  ASSERT_EQ(hub.receives.size(), n - 1);
  std::set<Time> times;
  for (const auto& r : hub.receives) times.insert(r.time);
  EXPECT_EQ(times.size(), n - 1) << "deliveries must not collide";
}

TEST(Contention, SparseReceiversUnaffected) {
  // On a line there is no contention pressure: delays stay near base.
  const auto g = net::make_line(4);
  ContentionScheduler sched(1, 32, 5);
  Network net(g, probe_factory(1), sched);
  net.run(StopWhen::kQuiescent, 1000);
  for (NodeId u = 1; u < 3; ++u) {
    for (const auto& r : probe_at(net, u).receives) {
      EXPECT_LE(r.time, 3u);
    }
  }
}

TEST(Contention, AckStillAfterAllReceives) {
  const std::size_t n = 8;
  const auto g = net::make_clique(n);
  ContentionScheduler sched(2, 64, 9);
  Network net(g, probe_factory(2), sched);
  net.run(StopWhen::kQuiescent, 10000);
  for (NodeId u = 0; u < n; ++u) {
    const auto& sender = probe_at(net, u);
    for (NodeId v = 0; v < n; ++v) {
      if (v == u) continue;
      for (const auto& r : probe_at(net, v).receives) {
        if (r.sender == u) {
          EXPECT_LE(r.time, sender.acks[r.seq]);
        }
      }
    }
  }
}

TEST(Contention, TwoPhaseStillCorrectAndWithinBound) {
  // Theorem 4.1 is scheduler-independent: under contention the constant-2
  // bound holds against the scheduler's declared F_ack.
  const std::size_t n = 24;
  const auto g = net::make_clique(n);
  const auto inputs = harness::inputs_alternating(n);
  ContentionScheduler sched(1, /*fack_bound=*/static_cast<Time>(n + 2), 3);
  const auto outcome = harness::run_consensus(
      g, harness::two_phase_factory(inputs), sched, inputs, 100000);
  ASSERT_TRUE(outcome.verdict.ok()) << outcome.verdict.summary();
  EXPECT_LE(outcome.verdict.last_decision, 2 * sched.fack());
}

TEST(Contention, WPaxosStillCorrect) {
  const auto g = net::make_grid(4, 4);
  const std::size_t n = 16;
  util::Rng rng(12);
  const auto inputs = harness::inputs_random(n, rng);
  const auto ids = harness::permuted_ids(n, rng);
  ContentionScheduler sched(2, 32, 21);
  const auto outcome = harness::run_consensus(
      g, harness::wpaxos_factory(inputs, ids), sched, inputs, 10'000'000);
  EXPECT_TRUE(outcome.verdict.ok()) << outcome.verdict.summary();
}

TEST(Contention, DenserNeighborhoodsSlower) {
  // The hub of a star accumulates delay linearly in its in-degree: the
  // last delivery of the first volley lands no earlier than n-1 ticks in.
  for (const std::size_t n : {5u, 17u}) {
    const auto g = net::make_star(n);
    ContentionScheduler sched(1, 64, 5);
    Network net(g, probe_factory(1), sched);
    net.run(StopWhen::kQuiescent, 1000);
    Time last = 0;
    for (const auto& r : probe_at(net, 0).receives) {
      last = std::max(last, r.time);
    }
    EXPECT_GE(last, n - 1);
  }
}

}  // namespace
}  // namespace amac::mac
