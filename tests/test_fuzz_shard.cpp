// Sharded parallel soak: partition, per-shard execution, and the
// deterministic canonical-order merge (fuzz::partition_soak /
// run_soak_shard / merge_soak_shards — the building blocks of
// run_soak(jobs > 1)), plus the corpus file IO resilience contracts
// (tolerant --corpus-in loading, atomic --corpus-out writes).
//
// The headline pin: a mutation-free sharded soak reports the SAME corpus
// digest as the sequential soak of the same seed range — including the
// pinned 504-corpus digest — and the merge does not care what order
// shards complete in.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "fuzz/corpus_io.hpp"
#include "fuzz/fuzzer.hpp"

namespace amac::fuzz {
namespace {

TEST(FuzzShardPartition, CoversTheRunRangeContiguouslyInOrder) {
  for (const std::size_t count : {1u, 2u, 7u, 504u, 1000u}) {
    for (const std::size_t jobs : {1u, 2u, 3u, 4u, 16u, 2000u}) {
      const auto shards = partition_soak(count, jobs);
      ASSERT_EQ(shards.size(), std::min(jobs, count));
      std::size_t next = 0;
      for (std::size_t k = 0; k < shards.size(); ++k) {
        EXPECT_EQ(shards[k].shard_index, k);
        EXPECT_EQ(shards[k].first_index, next);
        EXPECT_GE(shards[k].count, 1u);
        // Sizes differ by at most one, remainder on the earlier shards.
        EXPECT_LE(shards[k].count, count / shards.size() + 1);
        next += shards[k].count;
      }
      EXPECT_EQ(next, count);
    }
  }
  EXPECT_TRUE(partition_soak(0, 4).empty());
  // jobs == 0 is clamped up to 1, never a crash or an empty partition.
  ASSERT_EQ(partition_soak(10, 0).size(), 1u);
  EXPECT_EQ(partition_soak(10, 0)[0].count, 10u);
}

TEST(FuzzShardMerge, PinnedCorpusDigestIsJobCountInvariant) {
  // The acceptance pin: --jobs 4 on the 504-scenario corpus reports the
  // exact digest --jobs 1 does — which is the historical sequential
  // constant from test_fuzz_smoke.cpp. Every distinct-signature statistic
  // is job-count-invariant too (signature sets merge as unions).
  constexpr std::uint64_t kPinned504Digest = 0x4bc22ec0b0a6e511ULL;

  SoakOptions options;
  options.seed_base = 1;
  options.count = 504;
  options.differential_every = 0;

  options.jobs = 1;
  const SoakResult sequential = run_soak(options);
  EXPECT_EQ(sequential.corpus_digest, kPinned504Digest);

  options.jobs = 4;
  const SoakResult sharded = run_soak(options);
  EXPECT_EQ(sharded.corpus_digest, kPinned504Digest);

  EXPECT_EQ(sharded.runs, sequential.runs);
  EXPECT_EQ(sharded.per_algorithm, sequential.per_algorithm);
  EXPECT_EQ(sharded.crash_scenarios, sequential.crash_scenarios);
  EXPECT_EQ(sharded.wheel_events, sequential.wheel_events);
  EXPECT_EQ(sharded.overflow_events, sequential.overflow_events);
  EXPECT_EQ(sharded.novel_runs, sequential.novel_runs);
  EXPECT_EQ(sharded.coverage.distinct, sequential.coverage.distinct);
  EXPECT_EQ(sharded.coverage.engine_distinct,
            sequential.coverage.engine_distinct);
  EXPECT_EQ(sharded.coverage.protocol_distinct,
            sequential.coverage.protocol_distinct);
  EXPECT_EQ(sharded.coverage.per_scheduler, sequential.coverage.per_scheduler);
  EXPECT_EQ(sharded.failures.size(), sequential.failures.size());
}

TEST(FuzzShardMerge, IsCompletionOrderIndependent) {
  // merge_soak_shards sorts by shard_index, so handing it the per-shard
  // results in ANY vector order — completion order on real threads is
  // nondeterministic — must give identical output, digest for digest and
  // spec for spec.
  SoakOptions options;
  options.seed_base = 1;
  options.count = 120;
  options.differential_every = 0;

  const auto shards = partition_soak(options.count, 4);
  ASSERT_EQ(shards.size(), 4u);
  std::vector<ShardSoakResult> in_order;
  for (const auto& shard : shards) {
    in_order.push_back(run_soak_shard(options, shard));
  }

  const SoakResult canonical = merge_soak_shards(options, in_order);
  std::vector<std::vector<std::size_t>> permutations = {
      {3, 2, 1, 0}, {1, 3, 0, 2}, {2, 0, 3, 1}};
  for (const auto& perm : permutations) {
    std::vector<ShardSoakResult> shuffled;
    for (const std::size_t k : perm) shuffled.push_back(in_order[k]);
    const SoakResult merged = merge_soak_shards(options, shuffled);
    EXPECT_EQ(merged.corpus_digest, canonical.corpus_digest);
    EXPECT_EQ(merged.runs, canonical.runs);
    EXPECT_EQ(merged.novel_runs, canonical.novel_runs);
    EXPECT_EQ(merged.coverage.distinct, canonical.coverage.distinct);
    ASSERT_EQ(merged.corpus.size(), canonical.corpus.size());
    for (std::size_t i = 0; i < merged.corpus.size(); ++i) {
      EXPECT_EQ(format_spec(merged.corpus[i]),
                format_spec(canonical.corpus[i]));
    }
    ASSERT_EQ(merged.failures.size(), canonical.failures.size());
    for (std::size_t i = 0; i < merged.failures.size(); ++i) {
      EXPECT_EQ(format_spec(merged.failures[i].scenario),
                format_spec(canonical.failures[i].scenario));
    }
  }
}

TEST(FuzzShardMerge, MutatingShardedSoakIsReproducible) {
  // Mutant interleaving is shard-local (RNG salted by the shard's first
  // seed): a mutating sharded soak is exactly reproducible for a fixed
  // (seed-base, count, jobs) triple.
  SoakOptions options;
  options.seed_base = 77;
  options.count = 200;
  options.differential_every = 0;
  options.mutate_ratio = 0.5;
  options.jobs = 3;
  const SoakResult a = run_soak(options);
  const SoakResult b = run_soak(options);
  EXPECT_GT(a.mutated_runs, 0u);
  EXPECT_EQ(a.corpus_digest, b.corpus_digest);
  EXPECT_EQ(a.mutated_runs, b.mutated_runs);
  EXPECT_EQ(a.coverage.distinct, b.coverage.distinct);
  ASSERT_EQ(a.corpus.size(), b.corpus.size());
  for (std::size_t i = 0; i < a.corpus.size(); ++i) {
    EXPECT_EQ(format_spec(a.corpus[i]), format_spec(b.corpus[i]));
  }
}

TEST(FuzzShardMerge, ProgressCallbackSeesEveryGlobalIndexExactlyOnce) {
  SoakOptions options;
  options.seed_base = 1;
  options.count = 60;
  options.differential_every = 0;
  options.jobs = 4;
  std::vector<int> seen(options.count, 0);
  options.on_scenario = [&](std::size_t index, const Scenario&,
                            const RunReport&) {
    ASSERT_LT(index, seen.size());
    ++seen[index];  // serialized by run_soak's progress mutex
  };
  (void)run_soak(options);
  for (const int n : seen) EXPECT_EQ(n, 1);
}

// ---- corpus IO ----------------------------------------------------------

TEST(FuzzCorpusIo, TolerantLoadKeepsValidEntriesAndCountsSkips) {
  // A stale nightly frontier (restored across a spec-grammar change) may
  // hold a few lines the current parser rejects; the valid remainder must
  // survive the load.
  std::istringstream in(
      "# comment\n"
      "5\n"
      "this-is-not-a-spec\n"
      "\n"
      "7\n"
      "amacfuzz1:bogus\n");
  std::ostringstream warnings;
  const CorpusLoadResult res =
      load_corpus_stream(in, "mixed.txt", /*strict=*/false, &warnings);
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.loaded, 2u);
  EXPECT_EQ(res.skipped, 2u);
  ASSERT_EQ(res.scenarios.size(), 2u);
  EXPECT_EQ(format_spec(res.scenarios[0]), format_spec(generate_scenario(5)));
  EXPECT_EQ(format_spec(res.scenarios[1]), format_spec(generate_scenario(7)));
  // Per-line warnings carry file:line so the nightly log pinpoints them.
  EXPECT_NE(warnings.str().find("mixed.txt:3"), std::string::npos);
  EXPECT_NE(warnings.str().find("mixed.txt:6"), std::string::npos);
}

TEST(FuzzCorpusIo, StrictLoadFailsOnTheFirstMalformedLine) {
  std::istringstream in("5\nnot-a-spec\n7\n");
  const CorpusLoadResult res =
      load_corpus_stream(in, "strict.txt", /*strict=*/true, nullptr);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("strict.txt:2"), std::string::npos);
}

TEST(FuzzCorpusIo, AllMalformedFailsEvenWhenTolerant) {
  // Silently "resuming" from nothing would restart the frontier — the one
  // tolerance failure mode strictness must still catch.
  std::istringstream in("junk\nmore junk\n");
  const CorpusLoadResult res =
      load_corpus_stream(in, "bad.txt", /*strict=*/false, nullptr);
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.skipped, 2u);
  EXPECT_NE(res.error.find("every corpus spec line is malformed"),
            std::string::npos);
}

TEST(FuzzCorpusIo, EmptyOrCommentOnlyFilesLoadAsEmptyCorpora) {
  std::istringstream in("# only a comment\n\n");
  const CorpusLoadResult res =
      load_corpus_stream(in, "empty.txt", /*strict=*/false, nullptr);
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.loaded, 0u);
  EXPECT_EQ(res.skipped, 0u);
}

TEST(FuzzCorpusIo, AtomicWriteRoundTripsAndLeavesNoTempResidue) {
  const std::string path = testing::TempDir() + "amac_corpus_atomic.txt";
  std::vector<Scenario> corpus = {generate_scenario(3), generate_scenario(9)};
  std::string error;
  ASSERT_TRUE(write_corpus_file(path, corpus, &error)) << error;
  // The temp staging file must be gone after the rename.
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());

  const CorpusLoadResult res =
      load_corpus_file(path, /*strict=*/true, nullptr);
  ASSERT_TRUE(res.ok) << res.error;
  ASSERT_EQ(res.loaded, 2u);
  EXPECT_EQ(format_spec(res.scenarios[0]), format_spec(corpus[0]));
  EXPECT_EQ(format_spec(res.scenarios[1]), format_spec(corpus[1]));

  // Overwriting an existing corpus goes through the same rename and
  // replaces the contents wholesale.
  corpus.push_back(generate_scenario(11));
  ASSERT_TRUE(write_corpus_file(path, corpus, &error)) << error;
  EXPECT_EQ(load_corpus_file(path, true, nullptr).loaded, 3u);
  std::remove(path.c_str());
}

TEST(FuzzCorpusIo, WriteToUnwritableDirectoryFailsWithoutTouchingTarget) {
  std::string error;
  EXPECT_FALSE(write_corpus_file("/nonexistent-dir/corpus.txt", {}, &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace amac::fuzz
