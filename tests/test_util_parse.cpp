// Strict CLI-number parsing: the helpers behind bench_fuzz_soak's flag
// handling (and the fuzz spec parser). The property being pinned is
// whole-string strictness — the std::strtoull failure mode where
// "--count abc" silently became 0 and a soak ran zero scenarios must stay
// impossible.
#include "util/parse.hpp"

#include <gtest/gtest.h>

namespace amac::util {
namespace {

TEST(ParseU64, AcceptsWholeDecimalStrings) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("42"), 42u);
  EXPECT_EQ(parse_u64("18446744073709551615"), ~std::uint64_t{0});
}

TEST(ParseU64, RejectsGarbageWholeOrTrailing) {
  EXPECT_FALSE(parse_u64("").has_value());
  EXPECT_FALSE(parse_u64("abc").has_value());
  EXPECT_FALSE(parse_u64("12abc").has_value());  // strtoull would say 12
  EXPECT_FALSE(parse_u64("abc12").has_value());
  EXPECT_FALSE(parse_u64(" 12").has_value());
  EXPECT_FALSE(parse_u64("12 ").has_value());
  EXPECT_FALSE(parse_u64("-1").has_value());
  EXPECT_FALSE(parse_u64("+1").has_value());
  EXPECT_FALSE(parse_u64("1e5").has_value());
  EXPECT_FALSE(parse_u64("0x10").has_value());  // hex only via parse_u64_any
}

TEST(ParseU64, RejectsOverflow) {
  EXPECT_FALSE(parse_u64("18446744073709551616").has_value());  // 2^64
  EXPECT_FALSE(parse_u64("99999999999999999999999").has_value());
}

TEST(ParseU64Any, AcceptsHexWithPrefixAndDecimal) {
  EXPECT_EQ(parse_u64_any("255"), 255u);
  EXPECT_EQ(parse_u64_any("0xff"), 255u);
  EXPECT_EQ(parse_u64_any("0XFF"), 255u);
  EXPECT_EQ(parse_u64_any("0xfa43aa7e095f5b45"), 0xfa43aa7e095f5b45ull);
}

TEST(ParseU64Any, RejectsMalformedHex) {
  EXPECT_FALSE(parse_u64_any("0x").has_value());
  EXPECT_FALSE(parse_u64_any("0xzz").has_value());
  EXPECT_FALSE(parse_u64_any("0x12g").has_value());
  EXPECT_FALSE(parse_u64_any("x12").has_value());
}

TEST(ParseDouble, AcceptsFixedAndScientific) {
  EXPECT_EQ(parse_double("0"), 0.0);
  EXPECT_EQ(parse_double("0.5"), 0.5);
  EXPECT_EQ(parse_double("1e-3"), 1e-3);
  EXPECT_EQ(parse_double("-2.25"), -2.25);
}

TEST(ParseDouble, RejectsGarbage) {
  EXPECT_FALSE(parse_double("").has_value());
  EXPECT_FALSE(parse_double("abc").has_value());
  EXPECT_FALSE(parse_double("0.5x").has_value());
  EXPECT_FALSE(parse_double("half").has_value());
}

TEST(ParseDouble, RejectsNonFinite) {
  // NaN slides through min/max range checks (all comparisons false), so it
  // must be rejected at the parse layer.
  EXPECT_FALSE(parse_double("nan").has_value());
  EXPECT_FALSE(parse_double("inf").has_value());
  EXPECT_FALSE(parse_double("-inf").has_value());
  EXPECT_FALSE(parse_double("1e999").has_value());
}

}  // namespace
}  // namespace amac::util
