#include "core/wpaxos/messages.hpp"

#include <gtest/gtest.h>

#include "core/wpaxos/wpaxos.hpp"

namespace amac::core::wpaxos {
namespace {

TEST(ProposalNumber, LexicographicOrder) {
  // Paper: (tag, id) pairs compared lexicographically.
  EXPECT_LT((ProposalNumber{1, 9}), (ProposalNumber{2, 0}));
  EXPECT_LT((ProposalNumber{2, 3}), (ProposalNumber{2, 4}));
  EXPECT_EQ((ProposalNumber{2, 3}), (ProposalNumber{2, 3}));
  EXPECT_GT((ProposalNumber{3, 0}), (ProposalNumber{2, 999}));
}

TEST(ProposalNumber, EncodeDecode) {
  util::Writer w;
  const ProposalNumber pn{123456, 789};
  pn.encode(w);
  util::Reader r(w.buffer());
  EXPECT_EQ(ProposalNumber::decode(r), pn);
}

TEST(AcceptorResponse, MergeSumsCounts) {
  AcceptorResponse a;
  a.pn = {3, 7};
  a.count = 4;
  AcceptorResponse b;
  b.pn = {3, 7};
  b.count = 5;
  ASSERT_TRUE(a.can_merge(b));
  a.merge(b);
  EXPECT_EQ(a.count, 9u);
}

TEST(AcceptorResponse, MergeKeepsLargestPrev) {
  // §4.2.1: aggregation keeps only the previous proposal with the largest
  // proposal number among those merged — Lemma 4.3's requirement.
  AcceptorResponse a;
  a.pn = {3, 7};
  a.prev = Proposal{{1, 2}, 0};
  AcceptorResponse b = a;
  b.prev = Proposal{{2, 1}, 1};
  a.merge(b);
  ASSERT_TRUE(a.prev.has_value());
  EXPECT_EQ(a.prev->pn, (ProposalNumber{2, 1}));
  EXPECT_EQ(a.prev->value, 1);
}

TEST(AcceptorResponse, MergePrevAgainstEmpty) {
  AcceptorResponse a;
  a.pn = {3, 7};
  AcceptorResponse b = a;
  b.prev = Proposal{{2, 2}, 1};
  a.merge(b);
  ASSERT_TRUE(a.prev.has_value());
  EXPECT_EQ(a.prev->value, 1);
}

TEST(AcceptorResponse, MergeMaxCommitted) {
  AcceptorResponse a;
  a.pn = {3, 7};
  a.positive = false;
  a.max_committed = {4, 1};
  AcceptorResponse b = a;
  b.max_committed = {5, 0};
  a.merge(b);
  EXPECT_EQ(a.max_committed, (ProposalNumber{5, 0}));
}

TEST(AcceptorResponse, CannotMergeAcrossPolarity) {
  AcceptorResponse a;
  a.pn = {3, 7};
  a.positive = true;
  AcceptorResponse b = a;
  b.positive = false;
  EXPECT_FALSE(a.can_merge(b));
}

TEST(AcceptorResponse, CannotMergeAcrossStages) {
  AcceptorResponse a;
  a.pn = {3, 7};
  a.stage = AcceptorResponse::Stage::kPrepare;
  AcceptorResponse b = a;
  b.stage = AcceptorResponse::Stage::kPropose;
  EXPECT_FALSE(a.can_merge(b));
}

TEST(Envelope, EmptyRoundTrip) {
  const Envelope e;
  const auto back = Envelope::decode(e.encode());
  EXPECT_TRUE(back.empty());
  EXPECT_EQ(e.encode().size(), 1u);  // just the presence mask
}

TEST(Envelope, FullRoundTrip) {
  Envelope e;
  e.leader = LeaderMsg{42};
  e.change = ChangeMsg{1000, 42};
  e.search = SearchMsg{42, 3};
  e.proposer = ProposerMsg{ProposerMsg::Kind::kPropose, {7, 42}, 1};
  AcceptorResponse r;
  r.stage = AcceptorResponse::Stage::kPropose;
  r.pn = {7, 42};
  r.positive = false;
  r.count = 13;
  r.prev = Proposal{{6, 41}, 0};
  r.max_committed = {8, 40};
  r.dest = 5;
  e.response = r;

  const auto back = Envelope::decode(e.encode());
  ASSERT_TRUE(back.leader && back.change && back.search && back.proposer &&
              back.response);
  EXPECT_EQ(back.leader->leader_id, 42u);
  EXPECT_EQ(back.change->timestamp, 1000u);
  EXPECT_EQ(back.change->origin, 42u);
  EXPECT_EQ(back.search->root, 42u);
  EXPECT_EQ(back.search->hops, 3u);
  EXPECT_EQ(back.proposer->kind, ProposerMsg::Kind::kPropose);
  EXPECT_EQ(back.proposer->pn, (ProposalNumber{7, 42}));
  EXPECT_EQ(back.proposer->value, 1);
  EXPECT_EQ(back.response->count, 13u);
  EXPECT_EQ(back.response->prev->value, 0);
  EXPECT_EQ(back.response->max_committed, (ProposalNumber{8, 40}));
  EXPECT_EQ(back.response->dest, 5u);
}

TEST(Envelope, PartialPresence) {
  Envelope e;
  e.search = SearchMsg{9, 1};
  const auto back = Envelope::decode(e.encode());
  EXPECT_FALSE(back.leader.has_value());
  EXPECT_TRUE(back.search.has_value());
  EXPECT_FALSE(back.response.has_value());
}

TEST(Envelope, SizeStaysConstantInN) {
  // The model's O(1)-ids restriction: a full envelope with ids and counts
  // up to n costs O(log n) bytes, never O(n).
  for (const std::uint64_t scale : {100ULL, 1'000'000ULL}) {
    Envelope e;
    e.leader = LeaderMsg{scale};
    e.change = ChangeMsg{scale, scale};
    e.search = SearchMsg{scale, 30};
    e.proposer = ProposerMsg{ProposerMsg::Kind::kPrepare, {scale, scale}, 0};
    AcceptorResponse r;
    r.pn = {scale, scale};
    r.count = scale;  // aggregated counts can reach n
    r.prev = Proposal{{scale, scale}, 1};
    r.max_committed = {scale, scale};
    r.dest = scale;
    e.response = r;
    EXPECT_LE(e.encode().size(), 80u);
  }
}

TEST(WireEnvelope, CarriesSenderId) {
  WireEnvelope w;
  w.sender_id = 314159;
  w.body.leader = LeaderMsg{2};
  const auto back = WireEnvelope::decode(w.encode());
  EXPECT_EQ(back.sender_id, 314159u);
  ASSERT_TRUE(back.body.leader);
  EXPECT_EQ(back.body.leader->leader_id, 2u);
}

}  // namespace
}  // namespace amac::core::wpaxos
