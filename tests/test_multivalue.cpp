// General-value consensus (paper §2's generalization): PAXOS is
// value-agnostic, so wPAXOS — and the gather-all baseline — handle
// arbitrary non-negative values; the cost is O(b) extra bits per message
// for b-bit values (the efficient version is the paper's open problem).
#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "net/topologies.hpp"

namespace amac {
namespace {

TEST(MultiValue, WPaxosAgreesOnArbitraryValues) {
  util::Rng rng(31337);
  for (int trial = 0; trial < 5; ++trial) {
    const auto g = net::make_grid(4, 3);
    const std::size_t n = g.node_count();
    const auto inputs =
        harness::inputs_multivalued(n, 1'000'000'000, rng);
    const auto ids = harness::permuted_ids(n, rng);
    mac::UniformRandomScheduler sched(3, rng());
    const auto outcome = harness::run_consensus(
        g, harness::wpaxos_factory(inputs, ids), sched, inputs, 10'000'000);
    ASSERT_TRUE(outcome.verdict.ok()) << outcome.verdict.summary();
    // The common decision is one of the distinct proposals.
    EXPECT_TRUE(std::find(inputs.begin(), inputs.end(),
                          *outcome.verdict.decision) != inputs.end());
  }
}

TEST(MultiValue, WPaxosUniformLargeValue) {
  const auto g = net::make_ring(7);
  const auto inputs = harness::inputs_all(7, 123456789);
  const auto ids = harness::identity_ids(7);
  mac::SynchronousScheduler sched(1);
  const auto outcome = harness::run_consensus(
      g, harness::wpaxos_factory(inputs, ids), sched, inputs, 1'000'000);
  ASSERT_TRUE(outcome.verdict.ok());
  EXPECT_EQ(*outcome.verdict.decision, 123456789);
}

TEST(MultiValue, FloodingDecidesMinIdValueInLargeDomain) {
  util::Rng rng(55);
  const auto g = net::make_line(9);
  const auto inputs = harness::inputs_multivalued(9, 1 << 30, rng);
  mac::UniformRandomScheduler sched(4, 77);
  const auto outcome = harness::run_consensus(
      g, harness::flooding_factory(inputs), sched, inputs, 1'000'000);
  ASSERT_TRUE(outcome.verdict.ok());
  EXPECT_EQ(*outcome.verdict.decision, inputs[0]);
}

TEST(MultiValue, MessageSizeGrowsOnlyWithValueWidth) {
  // b-bit values cost O(b) bits: payload growth from binary to 2^30-sized
  // values is a few varint bytes, not O(n).
  std::size_t binary_max = 0;
  std::size_t wide_max = 0;
  for (const bool wide : {false, true}) {
    util::Rng rng(9);
    const auto g = net::make_ring(12);
    const auto inputs = wide
                            ? harness::inputs_multivalued(12, 1 << 30, rng)
                            : harness::inputs_random(12, rng);
    const auto ids = harness::identity_ids(12);
    mac::SynchronousScheduler sched(1);
    mac::Network net(g, harness::wpaxos_factory(inputs, ids), sched);
    net.run(mac::StopWhen::kAllDecided, 1'000'000);
    (wide ? wide_max : binary_max) = net.stats().max_payload_bytes;
  }
  EXPECT_LE(wide_max, binary_max + 10);
}

TEST(MultiValue, ValidityAcrossDistinctProposals) {
  // Every node proposes a distinct value: whatever wins must be one of
  // them (validity has real bite here, unlike binary mixed inputs).
  const auto g = net::make_clique(6);
  std::vector<mac::Value> inputs{100, 200, 300, 400, 500, 600};
  const auto ids = harness::identity_ids(6);
  mac::UniformRandomScheduler sched(2, 4242);
  const auto outcome = harness::run_consensus(
      g, harness::wpaxos_factory(inputs, ids), sched, inputs, 1'000'000);
  ASSERT_TRUE(outcome.verdict.ok()) << outcome.verdict.summary();
}

}  // namespace
}  // namespace amac
