#include "mac/schedulers.hpp"

#include <gtest/gtest.h>

namespace amac::mac {
namespace {

const std::vector<NodeId> kNeighbors{1, 2, 3};

void expect_within_contract(const BroadcastSchedule& s, Time fack) {
  EXPECT_GE(s.ack_delay, 1u);
  EXPECT_LE(s.ack_delay, fack);
  for (const auto& [v, d] : s.receive_delays) {
    EXPECT_GE(d, 1u);
    EXPECT_LE(d, s.ack_delay);
  }
}

TEST(Schedulers, SynchronousLockstep) {
  SynchronousScheduler sched(5);
  const auto s = sched.make_schedule(0, 10, kNeighbors);
  EXPECT_EQ(s.ack_delay, 5u);
  ASSERT_EQ(s.receive_delays.size(), 3u);
  for (const auto& [v, d] : s.receive_delays) EXPECT_EQ(d, 5u);
  EXPECT_EQ(sched.fack(), 5u);
}

TEST(Schedulers, MaxDelayAllAtFack) {
  MaxDelayScheduler sched(7);
  const auto s = sched.make_schedule(2, 0, kNeighbors);
  EXPECT_EQ(s.ack_delay, 7u);
  for (const auto& [v, d] : s.receive_delays) EXPECT_EQ(d, 7u);
}

TEST(Schedulers, UniformRandomWithinContract) {
  UniformRandomScheduler sched(16, 42);
  for (int i = 0; i < 200; ++i) {
    const auto s = sched.make_schedule(0, i, kNeighbors);
    expect_within_contract(s, 16);
    ASSERT_EQ(s.receive_delays.size(), kNeighbors.size());
  }
}

TEST(Schedulers, UniformRandomDeterministicPerSeed) {
  UniformRandomScheduler a(16, 7);
  UniformRandomScheduler b(16, 7);
  for (int i = 0; i < 50; ++i) {
    const auto sa = a.make_schedule(0, i, kNeighbors);
    const auto sb = b.make_schedule(0, i, kNeighbors);
    EXPECT_EQ(sa.ack_delay, sb.ack_delay);
    EXPECT_EQ(sa.receive_delays, sb.receive_delays);
  }
}

TEST(Schedulers, SkewedStablePerEdge) {
  SkewedScheduler sched(9, 3);
  const auto s1 = sched.make_schedule(0, 0, kNeighbors);
  const auto s2 = sched.make_schedule(0, 55, kNeighbors);
  EXPECT_EQ(s1.receive_delays, s2.receive_delays);
  expect_within_contract(s1, 9);
}

TEST(Schedulers, SkewedVariesAcrossEdges) {
  SkewedScheduler sched(64, 12);
  std::vector<NodeId> many;
  for (NodeId v = 1; v <= 32; ++v) many.push_back(v);
  const auto s = sched.make_schedule(0, 0, many);
  Time lo = 64;
  Time hi = 1;
  for (const auto& [v, d] : s.receive_delays) {
    lo = std::min(lo, d);
    hi = std::max(hi, d);
  }
  EXPECT_LT(lo, hi);
}

TEST(Schedulers, HoldbackDelaysHeldSender) {
  auto base = std::make_unique<SynchronousScheduler>(1);
  HoldbackScheduler sched(std::move(base), /*release=*/50);
  sched.hold_sender(0);
  const auto s = sched.make_schedule(0, 10, kNeighbors);
  for (const auto& [v, d] : s.receive_delays) EXPECT_EQ(10 + d, 50u);
  EXPECT_GE(s.ack_delay, 40u);  // ack after held deliveries
}

TEST(Schedulers, HoldbackLeavesOthersSynchronous) {
  auto base = std::make_unique<SynchronousScheduler>(1);
  HoldbackScheduler sched(std::move(base), 50);
  sched.hold_sender(0);
  const auto s = sched.make_schedule(5, 10, kNeighbors);
  for (const auto& [v, d] : s.receive_delays) EXPECT_EQ(d, 1u);
  EXPECT_EQ(s.ack_delay, 1u);
}

TEST(Schedulers, HoldbackEdgeGranularity) {
  auto base = std::make_unique<SynchronousScheduler>(1);
  HoldbackScheduler sched(std::move(base), 20);
  sched.hold_edge(0, 2);
  const auto s = sched.make_schedule(0, 0, kNeighbors);
  for (const auto& [v, d] : s.receive_delays) {
    if (v == 2) {
      EXPECT_EQ(d, 20u);
    } else {
      EXPECT_EQ(d, 1u);
    }
  }
}

TEST(Schedulers, HoldbackNoEffectAfterRelease) {
  auto base = std::make_unique<SynchronousScheduler>(1);
  HoldbackScheduler sched(std::move(base), 20);
  sched.hold_sender(0);
  const auto s = sched.make_schedule(0, /*now=*/30, kNeighbors);
  for (const auto& [v, d] : s.receive_delays) EXPECT_EQ(d, 1u);
}

TEST(Schedulers, HoldbackFackCachedAndInvalidated) {
  auto base = std::make_unique<SynchronousScheduler>(3);
  HoldbackScheduler sched(std::move(base), /*release=*/20);
  EXPECT_EQ(sched.fack(), 23u);  // release + base fack
  sched.hold_sender_until(1, 100);
  EXPECT_EQ(sched.fack(), 103u);  // cache invalidated by the new hold
  sched.hold_edge(0, 2);          // release 20: does not raise the max
  EXPECT_EQ(sched.fack(), 103u);
  sched.hold_sender_until(2, 500);
  EXPECT_EQ(sched.fack(), 503u);
  EXPECT_EQ(sched.fack(), 503u);  // stable on repeated (cached) queries
}

TEST(Schedulers, ScratchScheduleReusesCapacity) {
  UniformRandomScheduler sched(5, 8);
  BroadcastSchedule scratch;
  sched.schedule(0, 0, kNeighbors, scratch);
  ASSERT_EQ(scratch.receive_delays.size(), kNeighbors.size());
  const auto capacity = scratch.receive_delays.capacity();
  const auto* data = scratch.receive_delays.data();
  for (int i = 0; i < 100; ++i) {
    sched.schedule(0, i, kNeighbors, scratch);
    ASSERT_EQ(scratch.receive_delays.size(), kNeighbors.size());
  }
  EXPECT_EQ(scratch.receive_delays.capacity(), capacity);
  EXPECT_EQ(scratch.receive_delays.data(), data);
}

TEST(Schedulers, ScriptedExactDelays) {
  ScriptedScheduler sched;
  sched.script(0, 0, /*ack=*/5, {{1, 2}, {2, 5}});
  const auto s = sched.make_schedule(0, 0, kNeighbors);
  EXPECT_EQ(s.ack_delay, 5u);
  for (const auto& [v, d] : s.receive_delays) {
    if (v == 1) {
      EXPECT_EQ(d, 2u);
    }
    if (v == 2) {
      EXPECT_EQ(d, 5u);
    }
    if (v == 3) {
      EXPECT_EQ(d, 1u);  // unlisted receivers default to 1
    }
  }
}

TEST(Schedulers, ScriptedFallbackSynchronous) {
  ScriptedScheduler sched;
  sched.script(0, 1, 9, {{1, 9}});
  // Broadcast 0 of node 0 is unscripted -> synchronous round of 1.
  const auto s0 = sched.make_schedule(0, 0, kNeighbors);
  EXPECT_EQ(s0.ack_delay, 1u);
  // Broadcast 1 uses the script.
  const auto s1 = sched.make_schedule(0, 0, kNeighbors);
  EXPECT_EQ(s1.ack_delay, 9u);
}

TEST(Schedulers, ScriptedPerSenderCounters) {
  ScriptedScheduler sched;
  sched.script(1, 0, 4, {{0, 4}});
  const auto s0 = sched.make_schedule(0, 0, {1});  // node 0, unscripted
  EXPECT_EQ(s0.ack_delay, 1u);
  const auto s1 = sched.make_schedule(1, 0, {0});  // node 1 broadcast 0: scripted
  EXPECT_EQ(s1.ack_delay, 4u);
}

}  // namespace
}  // namespace amac::mac
