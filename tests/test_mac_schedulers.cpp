#include "mac/schedulers.hpp"

#include <gtest/gtest.h>

namespace amac::mac {
namespace {

const std::vector<NodeId> kNeighbors{1, 2, 3};

void expect_within_contract(const BroadcastSchedule& s, Time fack) {
  EXPECT_GE(s.ack_delay, 1u);
  EXPECT_LE(s.ack_delay, fack);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_GE(s.delay(i), 1u);
    EXPECT_LE(s.delay(i), s.ack_delay);
  }
}

/// The delays of `s` as a flat vector (uniform or per-receiver form).
std::vector<Time> all_delays(const BroadcastSchedule& s) {
  std::vector<Time> out;
  for (std::size_t i = 0; i < s.size(); ++i) out.push_back(s.delay(i));
  return out;
}

TEST(Schedulers, SynchronousLockstep) {
  SynchronousScheduler sched(5);
  const auto s = sched.make_schedule(0, 10, kNeighbors);
  EXPECT_EQ(s.ack_delay, 5u);
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.receivers, kNeighbors);
  for (std::size_t i = 0; i < s.size(); ++i) EXPECT_EQ(s.delay(i), 5u);
  EXPECT_EQ(sched.fack(), 5u);
}

TEST(Schedulers, SynchronousEmitsDenseUniformForm) {
  // The SoA fast path: lock-step schedulers fill receivers[] plus one
  // shared delay, no per-receiver delay array.
  SynchronousScheduler sched(3);
  const auto s = sched.make_schedule(0, 0, kNeighbors);
  EXPECT_TRUE(s.uniform);
  EXPECT_EQ(s.uniform_delay, 3u);
  EXPECT_TRUE(s.delays.empty());
  EXPECT_EQ(s.receivers, kNeighbors);
}

TEST(Schedulers, MaxDelayAllAtFack) {
  MaxDelayScheduler sched(7);
  const auto s = sched.make_schedule(2, 0, kNeighbors);
  EXPECT_EQ(s.ack_delay, 7u);
  EXPECT_TRUE(s.uniform);
  for (std::size_t i = 0; i < s.size(); ++i) EXPECT_EQ(s.delay(i), 7u);
}

TEST(Schedulers, UniformRandomWithinContract) {
  UniformRandomScheduler sched(16, 42);
  for (int i = 0; i < 200; ++i) {
    const auto s = sched.make_schedule(0, i, kNeighbors);
    expect_within_contract(s, 16);
    ASSERT_EQ(s.size(), kNeighbors.size());
    ASSERT_EQ(s.delays.size(), s.receivers.size());  // parallel arrays
  }
}

TEST(Schedulers, UniformRandomDeterministicPerSeed) {
  UniformRandomScheduler a(16, 7);
  UniformRandomScheduler b(16, 7);
  for (int i = 0; i < 50; ++i) {
    const auto sa = a.make_schedule(0, i, kNeighbors);
    const auto sb = b.make_schedule(0, i, kNeighbors);
    EXPECT_EQ(sa.ack_delay, sb.ack_delay);
    EXPECT_EQ(sa.receivers, sb.receivers);
    EXPECT_EQ(all_delays(sa), all_delays(sb));
  }
}

TEST(Schedulers, SkewedStablePerEdge) {
  SkewedScheduler sched(9, 3);
  const auto s1 = sched.make_schedule(0, 0, kNeighbors);
  const auto s2 = sched.make_schedule(0, 55, kNeighbors);
  EXPECT_EQ(s1.receivers, s2.receivers);
  EXPECT_EQ(all_delays(s1), all_delays(s2));
  expect_within_contract(s1, 9);
}

TEST(Schedulers, SkewedVariesAcrossEdges) {
  SkewedScheduler sched(64, 12);
  std::vector<NodeId> many;
  for (NodeId v = 1; v <= 32; ++v) many.push_back(v);
  const auto s = sched.make_schedule(0, 0, many);
  Time lo = 64;
  Time hi = 1;
  for (std::size_t i = 0; i < s.size(); ++i) {
    lo = std::min(lo, s.delay(i));
    hi = std::max(hi, s.delay(i));
  }
  EXPECT_LT(lo, hi);
}

TEST(Schedulers, HoldbackDelaysHeldSender) {
  auto base = std::make_unique<SynchronousScheduler>(1);
  HoldbackScheduler sched(std::move(base), /*release=*/50);
  sched.hold_sender(0);
  const auto s = sched.make_schedule(0, 10, kNeighbors);
  EXPECT_FALSE(s.uniform);  // holds densified the schedule to adjust it
  for (std::size_t i = 0; i < s.size(); ++i) EXPECT_EQ(10 + s.delay(i), 50u);
  EXPECT_GE(s.ack_delay, 40u);  // ack after held deliveries
}

TEST(Schedulers, HoldbackLeavesOthersSynchronous) {
  auto base = std::make_unique<SynchronousScheduler>(1);
  HoldbackScheduler sched(std::move(base), 50);
  sched.hold_sender(0);
  const auto s = sched.make_schedule(5, 10, kNeighbors);
  for (std::size_t i = 0; i < s.size(); ++i) EXPECT_EQ(s.delay(i), 1u);
  EXPECT_EQ(s.ack_delay, 1u);
}

TEST(Schedulers, HoldbackPreservesUniformFastPathWhenNoHoldApplies) {
  // No hold names this sender and no edge holds exist: the base's dense
  // uniform schedule must pass through untouched (the engine's batch
  // fan-out depends on it).
  auto base = std::make_unique<SynchronousScheduler>(2);
  HoldbackScheduler sched(std::move(base), 50);
  sched.hold_sender(7);
  const auto s = sched.make_schedule(0, 0, kNeighbors);
  EXPECT_TRUE(s.uniform);
  EXPECT_EQ(s.uniform_delay, 2u);
  EXPECT_EQ(s.ack_delay, 2u);
}

TEST(Schedulers, HoldbackRestoresUniformFastPathAfterRelease) {
  // Expired holds (release <= now + 1 can never move a delay >= 1) must
  // not densify: once every hold for a sender has released, the engine's
  // batch fan-out re-engages for the rest of the run.
  auto base = std::make_unique<SynchronousScheduler>(1);
  HoldbackScheduler sched(std::move(base), /*release=*/20);
  sched.hold_sender(0);
  sched.hold_edge(0, 2);
  EXPECT_FALSE(sched.make_schedule(0, 10, kNeighbors).uniform);  // live hold
  const auto after = sched.make_schedule(0, /*now=*/30, kNeighbors);
  EXPECT_TRUE(after.uniform);
  EXPECT_EQ(after.uniform_delay, 1u);
}

TEST(Schedulers, HoldbackEdgeHoldOnOtherSenderKeepsFastPath) {
  // A live edge hold belonging to a DIFFERENT sender must not densify this
  // sender's schedule.
  auto base = std::make_unique<SynchronousScheduler>(1);
  HoldbackScheduler sched(std::move(base), /*release=*/20);
  sched.hold_edge(5, 1);
  const auto s = sched.make_schedule(0, 0, kNeighbors);
  EXPECT_TRUE(s.uniform);
  EXPECT_EQ(s.ack_delay, 1u);
}

TEST(Schedulers, HoldbackEdgeGranularity) {
  auto base = std::make_unique<SynchronousScheduler>(1);
  HoldbackScheduler sched(std::move(base), 20);
  sched.hold_edge(0, 2);
  const auto s = sched.make_schedule(0, 0, kNeighbors);
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s.receivers[i] == 2) {
      EXPECT_EQ(s.delay(i), 20u);
    } else {
      EXPECT_EQ(s.delay(i), 1u);
    }
  }
}

TEST(Schedulers, HoldbackNoEffectAfterRelease) {
  auto base = std::make_unique<SynchronousScheduler>(1);
  HoldbackScheduler sched(std::move(base), 20);
  sched.hold_sender(0);
  const auto s = sched.make_schedule(0, /*now=*/30, kNeighbors);
  for (std::size_t i = 0; i < s.size(); ++i) EXPECT_EQ(s.delay(i), 1u);
}

TEST(Schedulers, HoldbackReleaseBoundaryAtNowPlusOneKeepsFastPath) {
  // The exact boundary: delays are >= 1, so a delivery never lands before
  // now + 1 and a hold releasing AT now + 1 is already satisfied. It must
  // not stretch any delay — and it must not densify either, so the base's
  // dense uniform form (the engine's batch fan-out) passes through.
  auto base = std::make_unique<SynchronousScheduler>(1);
  HoldbackScheduler sched(std::move(base), /*release=*/11);
  sched.hold_sender(0);
  const auto s = sched.make_schedule(0, /*now=*/10, kNeighbors);  // 11==now+1
  EXPECT_TRUE(s.uniform);
  EXPECT_EQ(s.uniform_delay, 1u);
  EXPECT_EQ(s.ack_delay, 1u);
  for (std::size_t i = 0; i < s.size(); ++i) EXPECT_EQ(s.delay(i), 1u);
}

TEST(Schedulers, HoldbackReleaseBoundaryOneTickLaterStretches) {
  // One tick past the boundary (release == now + 2): delay-1 deliveries
  // must be stretched to land exactly AT the release tick, never later.
  auto base = std::make_unique<SynchronousScheduler>(1);
  HoldbackScheduler sched(std::move(base), /*release=*/12);
  sched.hold_sender(0);
  const auto s = sched.make_schedule(0, /*now=*/10, kNeighbors);  // 12==now+2
  EXPECT_FALSE(s.uniform);
  for (std::size_t i = 0; i < s.size(); ++i) EXPECT_EQ(s.delay(i), 2u);
  EXPECT_EQ(s.ack_delay, 2u);
}

TEST(Schedulers, HoldbackEdgeHoldBoundaryAtNowPlusOneKeepsFastPath) {
  // Same exact boundary for per-edge holds: an edge hold releasing at
  // now + 1 must neither stretch the held edge nor densify the schedule.
  auto base = std::make_unique<SynchronousScheduler>(1);
  HoldbackScheduler sched(std::move(base), /*release=*/6);
  sched.hold_edge(0, 2);
  const auto at_boundary = sched.make_schedule(0, /*now=*/5, kNeighbors);
  EXPECT_TRUE(at_boundary.uniform);
  EXPECT_EQ(at_boundary.ack_delay, 1u);
  // One tick earlier the same hold is live and stretches exactly edge 0->2.
  const auto live = sched.make_schedule(0, /*now=*/4, kNeighbors);
  EXPECT_FALSE(live.uniform);
  for (std::size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(live.delay(i), live.receivers[i] == 2 ? 2u : 1u);
  }
}

TEST(Schedulers, HoldbackDeliveryAlreadyPastReleaseIsNotStretched) {
  // A live hold must stretch only the deliveries that would land BEFORE
  // the release; a base delay that already reaches it stays untouched.
  auto base = std::make_unique<SynchronousScheduler>(7);
  HoldbackScheduler sched(std::move(base), /*release=*/7);
  sched.hold_sender(0);
  const auto s = sched.make_schedule(0, /*now=*/0, kNeighbors);
  for (std::size_t i = 0; i < s.size(); ++i) EXPECT_EQ(s.delay(i), 7u);
  EXPECT_EQ(s.ack_delay, 7u);
}

TEST(Schedulers, HoldbackFackCachedAndInvalidated) {
  auto base = std::make_unique<SynchronousScheduler>(3);
  HoldbackScheduler sched(std::move(base), /*release=*/20);
  EXPECT_EQ(sched.fack(), 23u);  // release + base fack
  sched.hold_sender_until(1, 100);
  EXPECT_EQ(sched.fack(), 103u);  // cache invalidated by the new hold
  sched.hold_edge(0, 2);          // release 20: does not raise the max
  EXPECT_EQ(sched.fack(), 103u);
  sched.hold_sender_until(2, 500);
  EXPECT_EQ(sched.fack(), 503u);
  EXPECT_EQ(sched.fack(), 503u);  // stable on repeated (cached) queries
}

TEST(Schedulers, ScratchScheduleReusesCapacity) {
  UniformRandomScheduler sched(5, 8);
  BroadcastSchedule scratch;
  sched.schedule(0, 0, kNeighbors, scratch);
  ASSERT_EQ(scratch.size(), kNeighbors.size());
  const auto receiver_capacity = scratch.receivers.capacity();
  const auto delay_capacity = scratch.delays.capacity();
  const auto* receiver_data = scratch.receivers.data();
  const auto* delay_data = scratch.delays.data();
  for (int i = 0; i < 100; ++i) {
    sched.schedule(0, i, kNeighbors, scratch);
    ASSERT_EQ(scratch.size(), kNeighbors.size());
  }
  EXPECT_EQ(scratch.receivers.capacity(), receiver_capacity);
  EXPECT_EQ(scratch.receivers.data(), receiver_data);
  EXPECT_EQ(scratch.delays.capacity(), delay_capacity);
  EXPECT_EQ(scratch.delays.data(), delay_data);
}

TEST(Schedulers, ScratchAlternatesUniformAndDenseFormsCleanly) {
  // One scratch cycling between a uniform-form scheduler and a
  // per-receiver one must not leak state across calls.
  SynchronousScheduler sync(4);
  SkewedScheduler skewed(9, 3);
  BroadcastSchedule scratch;
  for (int i = 0; i < 3; ++i) {
    sync.schedule(0, 0, kNeighbors, scratch);
    EXPECT_TRUE(scratch.uniform);
    EXPECT_TRUE(scratch.delays.empty());
    skewed.schedule(0, 0, kNeighbors, scratch);
    EXPECT_FALSE(scratch.uniform);
    ASSERT_EQ(scratch.delays.size(), kNeighbors.size());
  }
}

TEST(Schedulers, ScriptedExactDelays) {
  ScriptedScheduler sched;
  sched.script(0, 0, /*ack=*/5, {{1, 2}, {2, 5}});
  const auto s = sched.make_schedule(0, 0, kNeighbors);
  EXPECT_EQ(s.ack_delay, 5u);
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s.receivers[i] == 1) {
      EXPECT_EQ(s.delay(i), 2u);
    }
    if (s.receivers[i] == 2) {
      EXPECT_EQ(s.delay(i), 5u);
    }
    if (s.receivers[i] == 3) {
      EXPECT_EQ(s.delay(i), 1u);  // unlisted receivers default to 1
    }
  }
}

TEST(Schedulers, ScriptedFallbackSynchronous) {
  ScriptedScheduler sched;
  sched.script(0, 1, 9, {{1, 9}});
  // Broadcast 0 of node 0 is unscripted -> synchronous round of 1.
  const auto s0 = sched.make_schedule(0, 0, kNeighbors);
  EXPECT_EQ(s0.ack_delay, 1u);
  EXPECT_TRUE(s0.uniform);
  // Broadcast 1 uses the script.
  const auto s1 = sched.make_schedule(0, 0, kNeighbors);
  EXPECT_EQ(s1.ack_delay, 9u);
}

TEST(Schedulers, ScriptedPerSenderCounters) {
  ScriptedScheduler sched;
  sched.script(1, 0, 4, {{0, 4}});
  const auto s0 = sched.make_schedule(0, 0, {1});  // node 0, unscripted
  EXPECT_EQ(s0.ack_delay, 1u);
  const auto s1 = sched.make_schedule(1, 0, {0});  // node 1 broadcast 0: scripted
  EXPECT_EQ(s1.ack_delay, 4u);
}

TEST(Schedulers, ScriptedUniformSlotIsDenseUniform) {
  // script_uniform emits the dense uniform schedule form (shared delay),
  // so scripted timelines fan out via the engine's batch bucket path.
  ScriptedScheduler sched;
  sched.script_uniform(0, 0, /*ack=*/7, /*recv=*/3);
  const auto s = sched.make_schedule(0, 0, kNeighbors);
  EXPECT_EQ(s.ack_delay, 7u);
  EXPECT_TRUE(s.uniform);
  ASSERT_EQ(s.size(), 3u);
  for (std::size_t i = 0; i < s.size(); ++i) EXPECT_EQ(s.delay(i), 3u);
  EXPECT_EQ(sched.fack(), 7u);
  expect_within_contract(s, sched.fack());
}

TEST(Schedulers, ScriptedSlotIntrospection) {
  // The fuzzer's timeline mutator reads slots back: deterministic
  // (sender, index) order, uniform vs per-receiver form distinguished,
  // per-sender issue counters exposed.
  ScriptedScheduler sched;
  sched.script_uniform(2, 1, 9, 4);
  sched.script(0, 0, 5, {{1, 2}, {2, 5}});
  sched.script_uniform(0, 3, 6, 6);

  ASSERT_EQ(sched.slot_count(), 3u);
  const auto slots = sched.slots();
  ASSERT_EQ(slots.size(), 3u);
  EXPECT_EQ(slots[0].sender, 0u);
  EXPECT_EQ(slots[0].index, 0u);
  EXPECT_EQ(slots[0].ack_delay, 5u);
  EXPECT_EQ(slots[0].uniform_delay, 0u);
  EXPECT_EQ(slots[0].listed_receivers, 2u);
  EXPECT_EQ(slots[1].sender, 0u);
  EXPECT_EQ(slots[1].index, 3u);
  EXPECT_EQ(slots[1].uniform_delay, 6u);
  EXPECT_EQ(slots[2].sender, 2u);
  EXPECT_EQ(slots[2].index, 1u);
  EXPECT_EQ(slots[2].uniform_delay, 4u);
  EXPECT_EQ(sched.max_scripted_ack(), 9u);

  EXPECT_EQ(sched.broadcasts_issued(0), 0u);
  (void)sched.make_schedule(0, 0, kNeighbors);
  (void)sched.make_schedule(0, 1, kNeighbors);
  EXPECT_EQ(sched.broadcasts_issued(0), 2u);
  EXPECT_EQ(sched.broadcasts_issued(2), 0u);
}

TEST(Schedulers, ScriptedUniformSlotOverwriteIsLaterWins) {
  // Re-scripting the same (sender, index) replaces the slot — the
  // deterministic resolution the fuzz builder relies on for duplicate
  // spec slots.
  ScriptedScheduler sched;
  sched.script_uniform(0, 0, 4, 2);
  sched.script_uniform(0, 0, 8, 5);
  ASSERT_EQ(sched.slot_count(), 1u);
  const auto s = sched.make_schedule(0, 0, kNeighbors);
  EXPECT_EQ(s.ack_delay, 8u);
  for (std::size_t i = 0; i < s.size(); ++i) EXPECT_EQ(s.delay(i), 5u);
}

}  // namespace
}  // namespace amac::mac
