// The §3.1 valid-step semantics: ordering constraints, ack validity,
// crashes, cloning, digests.
#include "verify/step_engine.hpp"

#include <gtest/gtest.h>

#include "core/two_phase.hpp"
#include "harness/experiment.hpp"
#include "net/topologies.hpp"

namespace amac::verify {
namespace {

using Step = StepSystem::Step;

mac::ProcessFactory two_phase(const std::vector<mac::Value>& inputs) {
  return harness::two_phase_factory(inputs);
}

TEST(StepEngine, InitialValidStepsAreOrderedReceives) {
  const auto g = net::make_clique(3);
  StepSystem sys(g, two_phase({0, 1, 0}));
  const auto steps = sys.valid_steps(0);
  // One receive per sender (to its smallest unserved neighbor); no acks yet.
  ASSERT_EQ(steps.size(), 3u);
  for (const auto& s : steps) {
    EXPECT_EQ(s.kind, Step::Kind::kReceive);
  }
  // Sender 0's first valid receiver is node 1 (its smallest neighbor).
  EXPECT_EQ(steps[0].u, 0u);
  EXPECT_EQ(steps[0].v, 1u);
  // Sender 1's smallest neighbor is 0.
  EXPECT_EQ(steps[1].u, 1u);
  EXPECT_EQ(steps[1].v, 0u);
}

TEST(StepEngine, ReceiveOrderIsForced) {
  // After 0 -> 1 is taken, sender 0's next valid receiver is 2.
  const auto g = net::make_clique(3);
  StepSystem sys(g, two_phase({0, 1, 0}));
  sys.apply(Step{Step::Kind::kReceive, 0, 1});
  const auto steps = sys.valid_steps(0);
  bool found = false;
  for (const auto& s : steps) {
    if (s.kind == Step::Kind::kReceive && s.u == 0) {
      EXPECT_EQ(s.v, 2u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(StepEngine, AckOnlyAfterAllReceives) {
  const auto g = net::make_clique(2);
  StepSystem sys(g, two_phase({0, 1}));
  // Before node 1 receives node 0's message, node 0 cannot be acked.
  for (const auto& s : sys.valid_steps(0)) {
    EXPECT_FALSE(s.kind == Step::Kind::kAck && s.u == 0);
  }
  sys.apply(Step{Step::Kind::kReceive, 0, 1});
  bool ack0 = false;
  for (const auto& s : sys.valid_steps(0)) {
    if (s.kind == Step::Kind::kAck && s.u == 0) ack0 = true;
  }
  EXPECT_TRUE(ack0);
}

TEST(StepEngine, CrashUnblocksAck) {
  // §3.1: ack validity requires all NON-CRASHED neighbors received. In a
  // 3-clique where only 0 -> 1 happened, crashing 2 makes ack(0) valid.
  const auto g = net::make_clique(3);
  StepSystem sys(g, two_phase({0, 1, 0}));
  sys.apply(Step{Step::Kind::kReceive, 0, 1});
  bool ack0 = false;
  for (const auto& s : sys.valid_steps(1)) {
    if (s.kind == Step::Kind::kAck && s.u == 0) ack0 = true;
  }
  EXPECT_FALSE(ack0);
  sys.apply(Step{Step::Kind::kCrash, 2, kNoNode});
  for (const auto& s : sys.valid_steps(1)) {
    if (s.kind == Step::Kind::kAck && s.u == 0) ack0 = true;
  }
  EXPECT_TRUE(ack0);
  EXPECT_EQ(sys.crash_count(), 1u);
}

TEST(StepEngine, CrashBudgetLimitsCrashSteps) {
  const auto g = net::make_clique(2);
  StepSystem sys(g, two_phase({0, 1}));
  std::size_t crash_steps = 0;
  for (const auto& s : sys.valid_steps(1)) {
    if (s.kind == Step::Kind::kCrash) ++crash_steps;
  }
  EXPECT_EQ(crash_steps, 2u);
  sys.apply(Step{Step::Kind::kCrash, 0, kNoNode});
  for (const auto& s : sys.valid_steps(1)) {
    EXPECT_NE(s.kind, Step::Kind::kCrash);
  }
}

// Fair driver: rotate the preferred sender so every node's steps are taken.
void apply_fair_step(StepSystem& sys, int iter) {
  const auto steps = sys.valid_steps(0);
  ASSERT_FALSE(steps.empty());
  const NodeId preferred =
      static_cast<NodeId>(static_cast<std::size_t>(iter) % sys.node_count());
  for (const auto& s : steps) {
    if (s.u == preferred) {
      sys.apply(s);
      return;
    }
  }
  sys.apply(steps.front());
}

TEST(StepEngine, RoundRobinScheduleDecidesTwoPhase) {
  // Driving all valid steps fairly must let two-phase decide (no crashes):
  // the §4.1 algorithm is correct under valid-step schedulers.
  const auto g = net::make_clique(3);
  StepSystem sys(g, two_phase({1, 1, 1}));
  for (int iter = 0; iter < 10000 && !sys.all_alive_decided(); ++iter) {
    apply_fair_step(sys, iter);
  }
  EXPECT_TRUE(sys.all_alive_decided());
  for (NodeId u = 0; u < 3; ++u) {
    EXPECT_EQ(sys.decision(u).value, 1);
  }
  EXPECT_FALSE(sys.has_disagreement());
}

TEST(StepEngine, CopyIsIndependent) {
  const auto g = net::make_clique(2);
  StepSystem sys(g, two_phase({0, 1}));
  StepSystem copy(sys);
  EXPECT_EQ(sys.digest(), copy.digest());
  copy.apply(Step{Step::Kind::kReceive, 0, 1});
  EXPECT_NE(sys.digest(), copy.digest());
  // Original still has its receive pending.
  const auto steps = sys.valid_steps(0);
  EXPECT_EQ(steps.front().kind, Step::Kind::kReceive);
}

TEST(StepEngine, DigestStableAcrossEquivalentPaths) {
  // Two independent receives commute: applying them in either order yields
  // the same digest.
  const auto g = net::make_clique(3);
  StepSystem a(g, two_phase({0, 1, 0}));
  StepSystem b(a);
  a.apply(Step{Step::Kind::kReceive, 0, 1});
  a.apply(Step{Step::Kind::kReceive, 1, 0});
  b.apply(Step{Step::Kind::kReceive, 1, 0});
  b.apply(Step{Step::Kind::kReceive, 0, 1});
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(StepEngine, HeartbeatsKeepSystemLive) {
  // After two-phase decides, nodes stop broadcasting real messages; the
  // engine substitutes heartbeats so valid steps never run out (the
  // "always sending" normalization of §3.1).
  const auto g = net::make_clique(2);
  StepSystem sys(g, two_phase({1, 1}));
  for (int iter = 0; iter < 1000 && !sys.all_alive_decided(); ++iter) {
    apply_fair_step(sys, iter);
  }
  ASSERT_TRUE(sys.all_alive_decided());
  EXPECT_FALSE(sys.valid_steps(0).empty());
}

TEST(StepEngine, DescribeSteps) {
  EXPECT_EQ((Step{Step::Kind::kReceive, 1, 2}).describe(), "recv(1->2)");
  EXPECT_EQ((Step{Step::Kind::kAck, 3, kNoNode}).describe(), "ack(3)");
  EXPECT_EQ((Step{Step::Kind::kCrash, 0, kNoNode}).describe(), "crash(0)");
}

}  // namespace
}  // namespace amac::verify
