#include "core/flooding.hpp"

#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "net/topologies.hpp"

namespace amac::core {
namespace {

struct FloodCase {
  std::size_t n;
  std::uint64_t seed;
};

class FloodingSweep : public ::testing::TestWithParam<FloodCase> {};

TEST_P(FloodingSweep, SolvesConsensusOnRandomTopologies) {
  const auto [n, seed] = GetParam();
  util::Rng rng(seed);
  for (int trial = 0; trial < 5; ++trial) {
    const auto g = net::make_random_connected(n, 0.1, rng);
    const auto inputs = harness::inputs_random(n, rng);
    mac::UniformRandomScheduler sched(4, rng());
    const auto outcome = harness::run_consensus(
        g, harness::flooding_factory(inputs), sched, inputs, 1'000'000);
    ASSERT_TRUE(outcome.verdict.ok()) << outcome.verdict.summary();
    // Decision rule: the smallest id's value — deterministic validity.
    EXPECT_EQ(*outcome.verdict.decision, inputs[0]);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, FloodingSweep,
                         ::testing::Values(FloodCase{1, 11}, FloodCase{2, 12},
                                           FloodCase{5, 13}, FloodCase{12, 14},
                                           FloodCase{25, 15},
                                           FloodCase{40, 16}));

TEST(Flooding, LineTimeGrowsLinearlyInN) {
  // The paper's bottleneck claim: on a line, pairs cross the middle at K
  // per F_ack, so decision time is Theta(n * F_ack).
  const mac::Time fack = 2;
  std::vector<mac::Time> times;
  for (const std::size_t n : {8u, 16u, 32u}) {
    const auto g = net::make_line(n);
    const auto inputs = harness::inputs_alternating(n);
    mac::MaxDelayScheduler sched(fack);
    const auto outcome = harness::run_consensus(
        g, harness::flooding_factory(inputs, /*pairs=*/1), sched, inputs,
        1'000'000);
    ASSERT_TRUE(outcome.verdict.ok());
    times.push_back(outcome.verdict.last_decision);
  }
  // Doubling n should at least double the time (allowing slack of 1.8x).
  EXPECT_GE(static_cast<double>(times[1]), 1.8 * static_cast<double>(times[0]));
  EXPECT_GE(static_cast<double>(times[2]), 1.8 * static_cast<double>(times[1]));
}

TEST(Flooding, MessageSizeBounded) {
  const std::size_t n = 30;
  const auto g = net::make_line(n);
  const auto inputs = harness::inputs_alternating(n);
  mac::SynchronousScheduler sched(1);
  mac::Network net(g, harness::flooding_factory(inputs, 2), sched);
  net.run(mac::StopWhen::kAllDecided, 1'000'000);
  // 2 pairs -> 1 count byte + 2 * (varint id + value byte) <= 7 bytes here.
  EXPECT_LE(net.stats().max_payload_bytes, 7u);
}

TEST(Flooding, KnownCountReachesN) {
  const std::size_t n = 10;
  const auto g = net::make_ring(n);
  const auto inputs = harness::inputs_all(n, 1);
  mac::SynchronousScheduler sched(1);
  mac::Network net(g, harness::flooding_factory(inputs), sched);
  net.run(mac::StopWhen::kAllDecided, 100000);
  for (NodeId u = 0; u < n; ++u) {
    const auto* p = dynamic_cast<const FloodingConsensus*>(&net.process(u));
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->known_count(), n);
  }
}

TEST(Flooding, LargerBatchesAreFaster) {
  const std::size_t n = 24;
  const auto g = net::make_line(n);
  const auto inputs = harness::inputs_alternating(n);
  mac::Time t_small = 0;
  mac::Time t_large = 0;
  for (const std::size_t pairs : {1u, 4u}) {
    mac::MaxDelayScheduler sched(3);
    const auto outcome = harness::run_consensus(
        g, harness::flooding_factory(inputs, pairs), sched, inputs,
        1'000'000);
    ASSERT_TRUE(outcome.verdict.ok());
    (pairs == 1 ? t_small : t_large) = outcome.verdict.last_decision;
  }
  EXPECT_LT(t_large, t_small);
}

TEST(Flooding, SingleNode) {
  const auto g = net::make_clique(1);
  const std::vector<mac::Value> inputs{1};
  mac::SynchronousScheduler sched(1);
  const auto outcome = harness::run_consensus(
      g, harness::flooding_factory(inputs), sched, inputs, 100);
  ASSERT_TRUE(outcome.verdict.ok());
  EXPECT_EQ(*outcome.verdict.decision, 1);
  EXPECT_EQ(outcome.verdict.last_decision, 0u);  // decides at start
}

}  // namespace
}  // namespace amac::core
