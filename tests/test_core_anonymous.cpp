#include "core/anonymous.hpp"

#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "net/paper_networks.hpp"
#include "net/topologies.hpp"

namespace amac::core {
namespace {

TEST(Anonymous, CorrectOnLineUnderSynchronousScheduler) {
  const auto g = net::make_line(7);
  for (const mac::Value v : {0, 1}) {
    const auto inputs = harness::inputs_all(7, v);
    mac::SynchronousScheduler sched(1);
    const auto outcome = harness::run_consensus(
        g, harness::anonymous_factory(inputs, g.diameter()), sched, inputs,
        1000);
    ASSERT_TRUE(outcome.verdict.ok()) << outcome.verdict.summary();
    EXPECT_EQ(*outcome.verdict.decision, v);
  }
}

TEST(Anonymous, MinWinsOnMixedInputsSynchronous) {
  const auto g = net::make_ring(9);
  auto inputs = harness::inputs_all(9, 1);
  inputs[4] = 0;  // a single zero must flood and win
  mac::SynchronousScheduler sched(1);
  const auto outcome = harness::run_consensus(
      g, harness::anonymous_factory(inputs, g.diameter()), sched, inputs,
      1000);
  ASSERT_TRUE(outcome.verdict.ok());
  EXPECT_EQ(*outcome.verdict.decision, 0);
}

TEST(Anonymous, DecidesAfterDiameterPlusOnePhases) {
  const auto g = net::make_line(5);  // D = 4
  const auto inputs = harness::inputs_all(5, 1);
  mac::SynchronousScheduler sched(1);
  const auto outcome = harness::run_consensus(
      g, harness::anonymous_factory(inputs, 4), sched, inputs, 1000);
  ASSERT_TRUE(outcome.verdict.ok());
  EXPECT_EQ(outcome.verdict.last_decision, 5u);  // D+1 rounds of length 1
}

TEST(Anonymous, CorrectOnNetworkBUnderSynchronousScheduler) {
  // Lemma 3.5's premise: on Network B the algorithm terminates with the
  // common input value under the synchronous scheduler.
  const auto nets = net::make_figure1(8, 2);
  for (const mac::Value v : {0, 1}) {
    const auto inputs = harness::inputs_all(nets.b.node_count(), v);
    mac::SynchronousScheduler sched(1);
    const auto outcome = harness::run_consensus(
        nets.b, harness::anonymous_factory(inputs, nets.diameter), sched,
        inputs, 1000);
    ASSERT_TRUE(outcome.verdict.ok());
    EXPECT_EQ(*outcome.verdict.decision, v);
  }
}

TEST(Anonymous, StateDigestContainsNoIdentity) {
  // Two nodes with the same input and the same receive history must have
  // identical digests regardless of their position — anonymity.
  AnonymousMinFlood a(6, 1);
  AnonymousMinFlood b(6, 1);
  util::Hasher ha;
  a.digest(ha);
  util::Hasher hb;
  b.digest(hb);
  EXPECT_EQ(ha.digest(), hb.digest());
}

}  // namespace
}  // namespace amac::core
