// Fuzz smoke lane (tier-1): the pinned seed corpus must run clean.
//
//   * the generator stays inside every algorithm's guarantee envelope;
//   * spec lines round-trip exactly (the --replay contract);
//   * replaying a scenario is bit-identical, run to run and spec to spec;
//   * a sampled subset matches the frozen reference engine exactly;
//   * the 504-scenario corpus (seeds 1..504, the same range the CI fuzz
//     lane soaks) produces zero property violations across all six
//     algorithms.
#include <gtest/gtest.h>

#include "fuzz/fuzzer.hpp"
#include "net/graph.hpp"

namespace amac::fuzz {
namespace {

using harness::Algorithm;

TEST(FuzzSpec, RoundTripsExactly) {
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    const Scenario s = generate_scenario(seed);
    const std::string spec = format_spec(s);
    const auto parsed = parse_spec(spec);
    ASSERT_TRUE(parsed.has_value()) << spec;
    EXPECT_EQ(format_spec(*parsed), spec);
  }
}

TEST(FuzzSpec, BareSeedMeansGeneratedScenario) {
  const auto parsed = parse_spec("42");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(format_spec(*parsed), format_spec(generate_scenario(42)));
}

TEST(FuzzSpec, RejectsMalformedInput) {
  EXPECT_FALSE(parse_spec("").has_value());
  EXPECT_FALSE(parse_spec("amacfuzz1").has_value());  // missing fields
  EXPECT_FALSE(parse_spec("amacfuzz2:seed=1").has_value());
  EXPECT_FALSE(parse_spec("amacfuzz1:seed=x:alg=wpaxos").has_value());
  const std::string good = format_spec(generate_scenario(7));
  EXPECT_TRUE(parse_spec(good).has_value());
  EXPECT_FALSE(parse_spec(good + ":bogus=1").has_value());
}

TEST(FuzzLargeTopology, PromotedScenariosStaySparseAndRoundTrip) {
  // promote_to_large rewrites any generated scenario into its n=4096
  // counterpart. The result must stay inside the large-topology envelope
  // (sparse O(n)-edge family; no clique-locked algorithm; no
  // liveness-checked wPAXOS, whose n-proposer duel is unbounded) and its
  // spec line must survive format -> parse -> format exactly — the
  // --replay contract the soak's repro lines depend on.
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    Scenario s = generate_scenario(seed);
    promote_to_large(s, 4096);
    EXPECT_EQ(s.n, 4096u);
    const bool sparse = s.topology == TopologyKind::kGrid ||
                        s.topology == TopologyKind::kTorus ||
                        s.topology == TopologyKind::kBinaryTree ||
                        s.topology == TopologyKind::kStar;
    EXPECT_TRUE(sparse) << format_spec(s);
    EXPECT_NE(s.algorithm, Algorithm::kTwoPhase) << format_spec(s);
    EXPECT_NE(s.algorithm, Algorithm::kBenOr) << format_spec(s);
    if (s.algorithm == Algorithm::kWPaxos) {
      EXPECT_FALSE(termination_expected(s)) << format_spec(s);
    }
    const std::string spec = format_spec(s);
    const auto parsed = parse_spec(spec);
    ASSERT_TRUE(parsed.has_value()) << spec;
    EXPECT_EQ(format_spec(*parsed), spec);
  }
}

TEST(FuzzLargeTopology, PromotionIsDeterministicAndBuildsConnected) {
  Scenario a = generate_scenario(17);
  Scenario b = generate_scenario(17);
  promote_to_large(a, 4096);
  promote_to_large(b, 4096);
  EXPECT_EQ(format_spec(a), format_spec(b));  // pure function of (s, n)
  const BuiltScenario built = build_scenario(a);
  // Grid/torus promotion picks the near-square w with (w+1)^2 <= n, so
  // w * (n / w) may round a node or two below n; never more.
  EXPECT_GE(built.graph.node_count(), 4095u);
  EXPECT_LE(built.graph.node_count(), 4096u);
  EXPECT_TRUE(built.graph.is_connected());
}

TEST(FuzzGenerator, StaysInsideGuaranteeEnvelopes) {
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    const Scenario s = generate_scenario(seed);
    const BuiltScenario b = build_scenario(s);
    const std::size_t count = b.graph.node_count();
    ASSERT_GE(count, 2u);
    ASSERT_TRUE(b.graph.is_connected());
    ASSERT_EQ(b.inputs.size(), count);
    ASSERT_EQ(b.ids.size(), count);

    // Theorem 3.3/3.9 algorithms only ever face the synchronous scheduler.
    if (s.algorithm == Algorithm::kAnonymous ||
        s.algorithm == Algorithm::kStability) {
      EXPECT_EQ(s.scheduler, SchedulerKind::kSynchronous);
      EXPECT_TRUE(s.crashes.empty());
    }
    // Single-hop algorithms stay on the clique.
    if (s.algorithm == Algorithm::kTwoPhase ||
        s.algorithm == Algorithm::kBenOr) {
      EXPECT_EQ(s.topology, TopologyKind::kClique);
    }
    if (s.algorithm == Algorithm::kTwoPhase) EXPECT_TRUE(s.crashes.empty());
    if (s.algorithm == Algorithm::kBenOr) {
      EXPECT_LT(2 * s.benor_f, count);
      EXPECT_LE(s.crashes.size(), s.benor_f);
    }
    for (const auto& c : s.crashes) EXPECT_LT(c.node, count);
    if (s.scheduler != SchedulerKind::kHoldback) {
      EXPECT_TRUE(s.holds.empty());
      EXPECT_FALSE(s.late_holds);
    }
    // kScripted is mutation-only: the generator must never emit it (the
    // pinned corpus digest depends on the generated draw range).
    EXPECT_NE(s.scheduler, SchedulerKind::kScripted);
    EXPECT_TRUE(s.script.empty());
    // Link faults are mutation/CLI-floor-only for the same reason: a
    // generated scenario always builds with the empty LinkFaultPlan.
    EXPECT_EQ(s.drop_rate_bp, 0u);
    EXPECT_EQ(s.dup_rate_bp, 0u);
    EXPECT_TRUE(s.faults.empty());
    EXPECT_TRUE(b.faults.empty());
  }
}

TEST(FuzzReplay, BitIdenticalRunToRunAndSpecToSpec) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const Scenario s = generate_scenario(seed);
    const RunReport a = run_scenario(s);
    const RunReport b = run_scenario(s);
    EXPECT_EQ(a.fingerprint, b.fingerprint) << format_spec(s);
    EXPECT_EQ(a.trace_digest, b.trace_digest);

    const auto replayed = parse_spec(format_spec(s));
    ASSERT_TRUE(replayed.has_value());
    const RunReport c = run_scenario(*replayed);
    EXPECT_EQ(a.fingerprint, c.fingerprint) << format_spec(s);
    EXPECT_EQ(a.trace_digest, c.trace_digest);
  }
}

TEST(FuzzDifferential, SampledScenariosMatchReferenceEngine) {
  RunOptions options;
  options.differential = true;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const Scenario s = generate_scenario(seed);
    const RunReport r = run_scenario(s, options);
    ASSERT_TRUE(r.differential_ran);
    EXPECT_EQ(r.failure, FailureKind::kNone)
        << format_spec(s) << "\n" << r.detail;
    EXPECT_EQ(r.fingerprint, r.reference_fingerprint) << format_spec(s);
    // The Lemma 4.2 monitor really runs on every wPAXOS scenario.
    if (s.algorithm == Algorithm::kWPaxos) {
      EXPECT_GT(r.monitor_checks, 0u) << format_spec(s);
    }
  }
}

TEST(FuzzDifferential, FaultedScenariosMatchReferenceEngineBitForBit) {
  // The fault layer's differential contract: both engines consult the same
  // pure (broadcast_id, sender, receiver) hash, so a NON-empty
  // LinkFaultPlan must leave the calendar engine and the frozen reference
  // engine bit-identical — same fingerprints, same trace digests, same
  // drop/duplicate counters folded in. Safety stays unconditional
  // (clamp_to_envelope keeps each algorithm inside its legal fault class);
  // only termination claims are waived under faults.
  RunOptions options;
  options.differential = true;
  std::uint64_t total_drops = 0;
  std::uint64_t total_dups = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Scenario s = generate_scenario(seed);
    s.drop_rate_bp = 400;
    s.dup_rate_bp = 200;
    s.faults.push_back(FaultSpec{0, 1, 2, 40});
    clamp_to_envelope(s);
    const RunReport r = run_scenario(s, options);
    ASSERT_TRUE(r.differential_ran);
    EXPECT_EQ(r.failure, FailureKind::kNone)
        << format_spec(s) << "\n" << r.detail;
    EXPECT_EQ(r.fingerprint, r.reference_fingerprint) << format_spec(s);
    total_drops += r.stats.drops;
    total_dups += r.stats.duplicates;
  }
  // The sweep must actually exercise the fault path, not just survive a
  // clamp down to the empty plan.
  EXPECT_GT(total_drops, 0u);
  EXPECT_GT(total_dups, 0u);
}

TEST(FuzzSoak, PinnedCorpusRunsCleanAcrossAllSixAlgorithms) {
  SoakOptions options;
  options.seed_base = 1;
  options.count = 504;  // >= 500-scenario acceptance floor; 72 differential
  options.differential_every = 7;
  const SoakResult result = run_soak(options);

  EXPECT_EQ(result.runs, 504u);
  EXPECT_EQ(result.differential_runs, 72u);
  for (std::size_t i = 0; i < harness::kAlgorithmCount; ++i) {
    EXPECT_GE(result.per_algorithm[i], 40u)
        << "algorithm " << harness::algorithm_name(static_cast<Algorithm>(i))
        << " under-sampled";
  }
  EXPECT_GT(result.crash_scenarios, 0u);
  EXPECT_GT(result.mid_flight_crash_scenarios, 0u)
      << "corpus no longer exercises crash-during-in-flight-ack";
  for (const auto& f : result.failures) {
    ADD_FAILURE() << "violation kind="
                  << failure_name(f.report.failure) << "\n  spec    "
                  << format_spec(f.scenario) << "\n  minimal "
                  << format_spec(f.minimal) << "\n  " << f.report.detail;
  }

  // The corpus digest folds every run fingerprint: rerunning the soak must
  // reproduce it exactly (full-pipeline determinism), so any generator or
  // engine behavior change is a visible, reviewable digest change. The
  // rerun is SHARDED across three threads — the canonical seed-order merge
  // makes the job count invisible in every digest (the dedicated suite is
  // tests/test_fuzz_shard.cpp).
  SoakOptions again = options;
  again.differential_every = 0;  // differential replay never alters runs
  again.jobs = 3;
  EXPECT_EQ(run_soak(again).corpus_digest, result.corpus_digest);
}

TEST(FuzzSoak, ProtocolStatsCollectionNeverPerturbsRuns) {
  // The determinism regression for the protocol coverage dimension AND the
  // link-fault layer: ProtocolStats collection is a post-run const read,
  // and generated scenarios carry an empty LinkFaultPlan (the generator
  // never draws faults; the plan hash is consulted only when a plan is
  // installed), so the pinned 504-corpus digest must be BIT-IDENTICAL with
  // collection on (the default) and off — and bit-identical to the digest
  // pinned before the fault dimensions existed. A change to this constant
  // means run behavior moved and must be a reviewed, deliberate decision.
  //
  // Pin history: 0xfa43aa7e095f5b45 (PR 2-5) was re-pinned once, in the PR
  // that added fault injection, because fixing the wPAXOS at-most-once
  // cursor (it parked on a deposed leader's larger proposal number and
  // silently swallowed the new leader's flood — a genuine liveness bug
  // against Theorem 4.6) changed the wPAXOS subset of the corpus. The
  // fault layer itself contributes nothing here: every scenario below runs
  // with the empty plan.
  constexpr std::uint64_t kPinned504Digest = 0x4bc22ec0b0a6e511ULL;

  SoakOptions options;
  options.seed_base = 1;
  options.count = 504;
  options.differential_every = 0;
  const SoakResult with = run_soak(options);
  options.collect_protocol_stats = false;
  const SoakResult without = run_soak(options);

  EXPECT_EQ(with.corpus_digest, kPinned504Digest);
  EXPECT_EQ(without.corpus_digest, kPinned504Digest);

  // Collection ON refines coverage (protocol buckets split engine
  // signatures); OFF reproduces the engine-only signature space exactly.
  EXPECT_GT(with.coverage.distinct, without.coverage.distinct);
  EXPECT_EQ(without.coverage.distinct, without.coverage.engine_distinct);
  EXPECT_EQ(with.coverage.engine_distinct, without.coverage.engine_distinct);
  EXPECT_EQ(without.coverage.protocol_distinct, 1u);  // all-zero projection
  EXPECT_GT(with.coverage.protocol_distinct, 1u);

  // Two differential replays (calendar vs frozen reference engine) are
  // bit-identical with collection on and off.
  std::size_t checked = 0;
  for (std::uint64_t seed = 1; seed <= 504 && checked < 2; ++seed) {
    const Scenario s = generate_scenario(seed);
    if (s.algorithm != Algorithm::kWPaxos &&
        s.algorithm != Algorithm::kBenOr) {
      continue;  // take the two stat-richest algorithms
    }
    ++checked;
    RunOptions on;
    on.differential = true;
    RunOptions off = on;
    off.collect_protocol_stats = false;
    const RunReport a = run_scenario(s, on);
    const RunReport b = run_scenario(s, off);
    ASSERT_TRUE(a.differential_ran);
    ASSERT_TRUE(b.differential_ran);
    EXPECT_EQ(a.failure, FailureKind::kNone) << format_spec(s);
    EXPECT_EQ(a.fingerprint, b.fingerprint) << format_spec(s);
    EXPECT_EQ(a.trace_digest, b.trace_digest) << format_spec(s);
    EXPECT_EQ(a.reference_fingerprint, b.reference_fingerprint)
        << format_spec(s);
  }
  EXPECT_EQ(checked, 2u);
}

}  // namespace
}  // namespace amac::fuzz
