// Ben-Or randomized consensus: the future-work #3 extension that
// circumvents Theorem 3.2 — crash-tolerant (f < n/2), always safe,
// terminating with probability 1.
#include "core/benor.hpp"

#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "net/topologies.hpp"
#include "verify/flp.hpp"

namespace amac::core {
namespace {

TEST(BenOr, UniformInputDecidesRoundOneDeterministically) {
  for (const mac::Value v : {0, 1}) {
    const std::size_t n = 5;
    const auto g = net::make_clique(n);
    const auto inputs = harness::inputs_all(n, v);
    mac::SynchronousScheduler sched(1);
    mac::Network net(g, harness::benor_factory(inputs, 2, 42), sched);
    const auto result = net.run(mac::StopWhen::kAllDecided, 10000);
    ASSERT_TRUE(result.condition_met);
    const auto verdict = verify::check_consensus(net, inputs);
    ASSERT_TRUE(verdict.ok());
    EXPECT_EQ(*verdict.decision, v);
    // No coins needed when everyone starts aligned.
    for (NodeId u = 0; u < n; ++u) {
      const auto* p = dynamic_cast<const BenOr*>(&net.process(u));
      ASSERT_NE(p, nullptr);
      EXPECT_EQ(p->coin_flips(), 0u);
      EXPECT_EQ(p->round(), 1u);
    }
  }
}

struct BenOrCase {
  std::size_t n;
  std::size_t f;
  std::uint64_t seed;
};

class BenOrSweep : public ::testing::TestWithParam<BenOrCase> {};

TEST_P(BenOrSweep, SafeAndLiveWithoutCrashes) {
  const auto [n, f, seed] = GetParam();
  util::Rng rng(seed);
  for (int trial = 0; trial < 10; ++trial) {
    const auto g = net::make_clique(n);
    const auto inputs = harness::inputs_random(n, rng);
    mac::UniformRandomScheduler sched(4, rng());
    mac::Network net(g, harness::benor_factory(inputs, f, rng()), sched);
    const auto result = net.run(mac::StopWhen::kAllDecided, 1'000'000);
    ASSERT_TRUE(result.condition_met) << "n=" << n << " trial=" << trial;
    const auto verdict = verify::check_consensus(net, inputs);
    EXPECT_TRUE(verdict.ok()) << verdict.summary();
  }
}

TEST_P(BenOrSweep, SafeAndLiveWithCrashes) {
  const auto [n, f, seed] = GetParam();
  if (f == 0) GTEST_SKIP() << "no crash budget";
  util::Rng rng(seed + 1);
  for (int trial = 0; trial < 10; ++trial) {
    const auto g = net::make_clique(n);
    const auto inputs = harness::inputs_random(n, rng);
    mac::UniformRandomScheduler sched(4, rng());
    mac::Network net(g, harness::benor_factory(inputs, f, rng()), sched);
    // Crash up to f distinct nodes at adversarially random times.
    std::set<NodeId> crashed;
    while (crashed.size() < f) {
      crashed.insert(static_cast<NodeId>(rng.uniform(0, n - 1)));
    }
    for (const NodeId u : crashed) {
      net.schedule_crash(mac::CrashPlan{u, rng.uniform(0, 30)});
    }
    const auto result = net.run(mac::StopWhen::kAllDecided, 1'000'000);
    ASSERT_TRUE(result.condition_met)
        << "n=" << n << " f=" << f << " trial=" << trial;
    const auto verdict = verify::check_consensus(net, inputs);
    EXPECT_TRUE(verdict.ok()) << verdict.summary();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BenOrSweep,
    ::testing::Values(BenOrCase{1, 0, 1}, BenOrCase{2, 0, 2},
                      BenOrCase{3, 1, 3}, BenOrCase{4, 1, 4},
                      BenOrCase{5, 2, 5}, BenOrCase{7, 3, 6},
                      BenOrCase{9, 4, 7}));

TEST(BenOr, CircumventsTheorem32WhereTwoPhaseCannot) {
  // Head-to-head on the exact adversarial setting of the FLP bench: the
  // valency explorer proves two-phase has a reachable stuck state with one
  // crash; Ben-Or, run with a crash injected at every possible early tick,
  // keeps terminating.
  const auto g = net::make_clique(3);
  verify::FlpExplorer explorer(g, harness::two_phase_factory({0, 1, 1}), 1);
  EXPECT_TRUE(explorer.explore().violation_found());

  for (mac::Time crash_at = 0; crash_at < 12; ++crash_at) {
    for (NodeId victim = 0; victim < 3; ++victim) {
      const std::vector<mac::Value> inputs{0, 1, 1};
      mac::UniformRandomScheduler sched(3, 17 + crash_at);
      mac::Network net(g, harness::benor_factory(inputs, 1, 99), sched);
      net.schedule_crash(mac::CrashPlan{victim, crash_at});
      const auto result = net.run(mac::StopWhen::kAllDecided, 1'000'000);
      ASSERT_TRUE(result.condition_met)
          << "victim=" << victim << " t=" << crash_at;
      EXPECT_TRUE(verify::check_consensus(net, inputs).ok());
    }
  }
}

TEST(BenOr, QuorumIntersectionAdoptionStep) {
  // If a value is decided in round r, every survivor adopts it by r+1:
  // rounds after the first decision stay bounded. Observable consequence:
  // round counts of all deciders differ by at most 2.
  util::Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 7;
    const auto g = net::make_clique(n);
    const auto inputs = harness::inputs_random(n, rng);
    mac::UniformRandomScheduler sched(5, rng());
    mac::Network net(g, harness::benor_factory(inputs, 3, rng()), sched);
    net.run(mac::StopWhen::kAllDecided, 1'000'000);
    std::uint32_t lo = ~0u;
    std::uint32_t hi = 0;
    for (NodeId u = 0; u < n; ++u) {
      const auto* p = dynamic_cast<const BenOr*>(&net.process(u));
      lo = std::min(lo, p->round());
      hi = std::max(hi, p->round());
    }
    EXPECT_LE(hi - lo, 2u);
  }
}

TEST(BenOr, RejectsInvalidQuorumConfig) {
  EXPECT_DEATH(BenOr(4, 2, 0, 1), "2 \\* f < n");
}

TEST(BenOr, MessageSizeConstant) {
  const std::size_t n = 9;
  const auto g = net::make_clique(n);
  const auto inputs = harness::inputs_alternating(n);
  mac::UniformRandomScheduler sched(3, 5);
  mac::Network net(g, harness::benor_factory(inputs, 4, 5), sched);
  net.run(mac::StopWhen::kAllDecided, 1'000'000);
  EXPECT_LE(net.stats().max_payload_bytes, 6u);
}

}  // namespace
}  // namespace amac::core
