#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace amac::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform(3, 9);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 9u);
  }
}

TEST(Rng, UniformSingletonRange) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform(5, 5), 5u);
}

TEST(Rng, UniformCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(5);
  double sum = 0;
  const int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(13);
  std::vector<int> v(64);
  for (int i = 0; i < 64; ++i) v[i] = i;
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(v, shuffled);
}

TEST(Rng, PickReturnsMember) {
  Rng rng(17);
  const std::vector<int> v{10, 20, 30};
  for (int i = 0; i < 100; ++i) {
    const int x = rng.pick(v);
    EXPECT_TRUE(x == 10 || x == 20 || x == 30);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ReseedReproduces) {
  Rng rng(23);
  const auto first = rng();
  rng.reseed(23);
  EXPECT_EQ(rng(), first);
}

}  // namespace
}  // namespace amac::util
