#include "net/topologies.hpp"

#include <gtest/gtest.h>

namespace amac::net {
namespace {

TEST(Topologies, Clique) {
  const auto g = make_clique(5);
  EXPECT_EQ(g.node_count(), 5u);
  EXPECT_EQ(g.edge_count(), 10u);
  EXPECT_EQ(g.diameter(), 1u);
}

TEST(Topologies, CliqueOfOne) {
  const auto g = make_clique(1);
  EXPECT_TRUE(g.is_connected());
}

TEST(Topologies, LineDiameter) {
  const auto g = make_line(10);
  EXPECT_EQ(g.diameter(), 9u);
  EXPECT_EQ(g.edge_count(), 9u);
}

TEST(Topologies, RingDiameter) {
  EXPECT_EQ(make_ring(8).diameter(), 4u);
  EXPECT_EQ(make_ring(9).diameter(), 4u);
}

TEST(Topologies, StarDiameter) {
  const auto g = make_star(10);
  EXPECT_EQ(g.diameter(), 2u);
  EXPECT_EQ(g.degree(0), 9u);
}

TEST(Topologies, GridShape) {
  const auto g = make_grid(4, 3);
  EXPECT_EQ(g.node_count(), 12u);
  EXPECT_EQ(g.diameter(), 5u);  // (4-1) + (3-1)
  // Corner has degree 2, interior degree 4.
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(5), 4u);
}

TEST(Topologies, TorusRegular) {
  const auto g = make_torus(4, 4);
  EXPECT_EQ(g.node_count(), 16u);
  for (NodeId u = 0; u < 16; ++u) EXPECT_EQ(g.degree(u), 4u);
  EXPECT_EQ(g.diameter(), 4u);  // 2 + 2
}

TEST(Topologies, BinaryTree) {
  const auto g = make_binary_tree(7);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.edge_count(), 6u);
  EXPECT_EQ(g.diameter(), 4u);  // leaf -> root -> other leaf
}

TEST(Topologies, BarbellStructure) {
  const auto g = make_barbell(4, 3);
  EXPECT_EQ(g.node_count(), 2 * 4 + 3 - 1u);
  EXPECT_TRUE(g.is_connected());
  // Clique interiors at distance path_len + 2 across the bar.
  EXPECT_GE(g.diameter(), 3u);
}

TEST(Topologies, RandomConnectedIsConnected) {
  util::Rng rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const auto g = make_random_connected(30, 0.05, rng);
    EXPECT_TRUE(g.is_connected());
    EXPECT_EQ(g.node_count(), 30u);
  }
}

TEST(Topologies, RandomConnectedDeterministicPerSeed) {
  util::Rng a(7);
  util::Rng b(7);
  const auto g1 = make_random_connected(20, 0.1, a);
  const auto g2 = make_random_connected(20, 0.1, b);
  EXPECT_EQ(g1.edge_count(), g2.edge_count());
  for (NodeId u = 0; u < 20; ++u) {
    EXPECT_EQ(g1.neighbors(u), g2.neighbors(u));
  }
}

TEST(Topologies, RandomGeometricConnected) {
  util::Rng rng(3);
  const auto g = make_random_geometric(50, 0.05, rng);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.node_count(), 50u);
}

TEST(Topologies, RandomConnectedDensityGrowsWithP) {
  util::Rng a(5);
  util::Rng b(5);
  const auto sparse = make_random_connected(40, 0.0, a);
  const auto dense = make_random_connected(40, 0.5, b);
  EXPECT_EQ(sparse.edge_count(), 39u);  // exactly the spanning tree
  EXPECT_GT(dense.edge_count(), sparse.edge_count());
}

}  // namespace
}  // namespace amac::net
