// A hand-driven mac::Context for unit-testing processes in isolation:
// feed packets, advance acks, inspect every broadcast the process makes.
#pragma once

#include <deque>
#include <optional>

#include "mac/process.hpp"

namespace amac::testutil {

class FakeContext final : public mac::Context {
 public:
  void broadcast(const util::Buffer& payload) override {
    if (busy_) {
      ++dropped;
      return;
    }
    busy_ = true;
    sent.push_back(payload);
  }

  void decide(mac::Value v) override {
    AMAC_ASSERT(!decision.has_value());
    decision = v;
  }

  [[nodiscard]] bool busy() const override { return busy_; }
  [[nodiscard]] mac::Time now() const override { return now_; }

  // --- driving helpers ---

  void advance(mac::Time dt) { now_ += dt; }

  /// Acks the outstanding broadcast (marks the context idle) and invokes
  /// the process's on_ack.
  void ack(mac::Process& p) {
    AMAC_ASSERT(busy_);
    busy_ = false;
    p.on_ack(*this);
  }

  /// Delivers a packet from `sender`.
  void deliver(mac::Process& p, NodeId sender, util::Buffer payload) {
    p.on_receive(mac::Packet{sender, payload}, *this);
  }

  /// The most recent broadcast payload (asserts one exists).
  [[nodiscard]] const util::Buffer& last_sent() const {
    AMAC_ASSERT(!sent.empty());
    return sent.back();
  }

  std::vector<util::Buffer> sent;
  std::optional<mac::Value> decision;
  std::size_t dropped = 0;

 private:
  bool busy_ = false;
  mac::Time now_ = 0;
};

}  // namespace amac::testutil
