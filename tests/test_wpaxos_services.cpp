// Service-level behavior of wPAXOS, observed through small deterministic
// networks: leader election stabilization (Algorithm 2), tree building
// (Algorithm 4), and the change service's proposal gating (Algorithm 3).
#include <gtest/gtest.h>

#include "core/wpaxos/wpaxos.hpp"
#include "harness/experiment.hpp"
#include "net/topologies.hpp"

namespace amac::core::wpaxos {
namespace {

const WPaxos& wpaxos_at(const mac::Network& net, NodeId u) {
  const auto* p = dynamic_cast<const WPaxos*>(&net.process(u));
  AMAC_ASSERT(p != nullptr);
  return *p;
}

mac::Network make_net(const net::Graph& g, const std::vector<mac::Value>& in,
                      const std::vector<std::uint64_t>& ids,
                      mac::Scheduler& sched, WPaxosConfig cfg = {}) {
  return mac::Network(g, harness::wpaxos_factory(in, ids, cfg), sched);
}

TEST(LeaderService, StabilizesToMaxIdEverywhere) {
  const auto g = net::make_line(6);
  const std::vector<std::uint64_t> ids{3, 9, 1, 20, 5, 7};  // max at node 3
  const auto inputs = harness::inputs_alternating(6);
  mac::SynchronousScheduler sched(1);
  mac::Network net = make_net(g, inputs, ids, sched);
  net.run(mac::StopWhen::kAllDecided, 100000);
  for (NodeId u = 0; u < 6; ++u) {
    EXPECT_EQ(wpaxos_at(net, u).omega(), 20u) << "node " << u;
  }
}

TEST(TreeService, DistancesMatchBfsFromLeader) {
  const auto g = net::make_grid(4, 3);
  const std::size_t n = g.node_count();
  const auto ids = harness::identity_ids(n);  // leader = node n-1
  const auto inputs = harness::inputs_all(n, 0);
  mac::SynchronousScheduler sched(1);
  mac::Network net = make_net(g, inputs, ids, sched);
  net.run(mac::StopWhen::kAllDecided, 100000);

  const NodeId leader = static_cast<NodeId>(n - 1);
  const auto bfs = g.bfs_distances(leader);
  for (NodeId u = 0; u < n; ++u) {
    const auto& dist = wpaxos_at(net, u).dist();
    const auto it = dist.find(leader);
    ASSERT_NE(it, dist.end()) << "node " << u << " has no leader distance";
    EXPECT_EQ(it->second, bfs[u]) << "node " << u;
  }
}

TEST(TreeService, ParentPointersDecreaseDistance) {
  // Bellman-Ford invariant: following parent[root] strictly decreases the
  // distance to root — the acyclicity that makes response routing safe.
  const auto g = net::make_ring(8);
  const std::size_t n = 8;
  util::Rng rng(5);
  const auto ids = harness::permuted_ids(n, rng);
  const auto inputs = harness::inputs_alternating(n);
  mac::UniformRandomScheduler sched(3, 11);
  mac::Network net = make_net(g, inputs, ids, sched);
  net.run(mac::StopWhen::kAllDecided, 100000);

  // id -> node index
  std::map<std::uint64_t, NodeId> index_of;
  for (NodeId u = 0; u < n; ++u) index_of[ids[u]] = u;

  for (NodeId u = 0; u < n; ++u) {
    const auto& node = wpaxos_at(net, u);
    for (const auto& [root, p] : node.parent()) {
      if (root == node.id()) continue;
      const auto du = node.dist().at(root);
      const auto& parent_node = wpaxos_at(net, index_of.at(p));
      const auto it = parent_node.dist().find(root);
      ASSERT_NE(it, parent_node.dist().end());
      EXPECT_LT(it->second, du)
          << "parent of node " << u << " for root " << root;
    }
  }
}

TEST(TreeService, EveryNodeLearnsEveryRoot) {
  const auto g = net::make_line(5);
  const auto ids = harness::identity_ids(5);
  const auto inputs = harness::inputs_all(5, 1);
  mac::SynchronousScheduler sched(1);
  mac::Network net = make_net(g, inputs, ids, sched);
  // Run to quiescence without decisions stopping us early: use a config
  // where decisions happen but services keep records.
  net.run(mac::StopWhen::kAllDecided, 100000);
  // The leader's tree must be complete (others may be partial if decision
  // came first — the leader's is the one wPAXOS needs).
  for (NodeId u = 0; u < 5; ++u) {
    EXPECT_TRUE(wpaxos_at(net, u).dist().contains(4));
  }
}

TEST(ChangeService, LeaderProposalsAreGated) {
  // With gating, the total number of proposals across a stabilized run is
  // small: every node proposes at start, and the leader re-proposes O(1)
  // times per change notification it receives.
  const auto g = net::make_line(8);
  const std::size_t n = 8;
  const auto ids = harness::identity_ids(n);
  const auto inputs = harness::inputs_alternating(n);
  mac::SynchronousScheduler sched(1);
  mac::Network net = make_net(g, inputs, ids, sched);
  net.run(mac::StopWhen::kAllDecided, 100000);

  std::uint64_t total = 0;
  for (NodeId u = 0; u < n; ++u) {
    total += wpaxos_at(net, u).node_stats().proposals_started;
  }
  // Generous bound: far below the ungated storm (compare the ablation
  // bench); each node starts one, the leader a handful more.
  EXPECT_LE(total, 4 * n);
}

TEST(ChangeService, UngatedProposesMore) {
  const auto g = net::make_line(8);
  const std::size_t n = 8;
  const auto ids = harness::identity_ids(n);
  const auto inputs = harness::inputs_alternating(n);

  std::uint64_t gated = 0;
  std::uint64_t ungated = 0;
  for (const bool gating : {true, false}) {
    WPaxosConfig cfg;
    cfg.change_gating = gating;
    mac::SynchronousScheduler sched(1);
    mac::Network net = make_net(g, inputs, ids, sched, cfg);
    net.run(mac::StopWhen::kAllDecided, 100000);
    std::uint64_t total = 0;
    for (NodeId u = 0; u < n; ++u) {
      total += wpaxos_at(net, u).node_stats().proposals_started;
    }
    (gating ? gated : ungated) = total;
  }
  EXPECT_GT(ungated, gated);
}

TEST(Aggregation, MergesSiblingResponsesAtHub) {
  // Star with the leader (max id) at a LEAF: all other leaves' responses
  // route through the hub toward the leader and arrive at the hub in the
  // same round, so they must be merged there. (On a line, responses
  // pipeline one hop apart and need not bunch.)
  const std::size_t n = 10;
  const auto g = net::make_star(n);  // node 0 is the hub
  const auto ids = harness::identity_ids(n);  // leader = node n-1, a leaf
  const auto inputs = harness::inputs_all(n, 0);
  mac::SynchronousScheduler sched(1);
  mac::Network net = make_net(g, inputs, ids, sched);
  net.run(mac::StopWhen::kAllDecided, 100000);
  EXPECT_GT(wpaxos_at(net, 0).node_stats().responses_merged, 0u);
}

TEST(Services, DecidedNodesGoQuiet) {
  const auto g = net::make_clique(4);
  const auto ids = harness::identity_ids(4);
  const auto inputs = harness::inputs_alternating(4);
  mac::SynchronousScheduler sched(1);
  mac::Network net = make_net(g, inputs, ids, sched);
  const auto result = net.run(mac::StopWhen::kQuiescent, 100000);
  EXPECT_TRUE(result.condition_met);  // the network winds down entirely
  for (NodeId u = 0; u < 4; ++u) {
    EXPECT_TRUE(wpaxos_at(net, u).has_decided());
  }
}

}  // namespace
}  // namespace amac::core::wpaxos
