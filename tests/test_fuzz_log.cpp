// The log-service scenario family (signature-space v6 pins).
//
//   * `log=ops@batch@window@lease` round-trips through format_spec /
//     parse_spec exactly, is omitted for the instance family, and
//     malformed tokens are rejected rather than zero-filled;
//   * promote_to_log_service is deterministic, lands inside the family
//     envelope (wPAXOS, no faults, no scripts), and is a clamp fixpoint;
//   * a leader-crash log scenario runs the whole replicated log under
//     run_scenario: the report carries the service observables, the
//     coverage signature raises kLogService plus nonzero recovery and
//     re-election buckets, and the run is fingerprint-deterministic;
//   * mutation can ENTER the family (the kLogService op), and every such
//     mutant survives the clamp round-trip;
//   * a log-promoting soak is digest-identical across job counts and
//     reaches engine-space signatures an instance-only soak cannot — the
//     set-difference acceptance the CI fuzz lane asserts at 2000
//     scenarios, pinned here at a smaller budget.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "fuzz/fuzzer.hpp"

namespace amac::fuzz {
namespace {

using harness::Algorithm;

// The leader-crash repro line: node 4 is the initial lease holder
// (ReplicatedLog elects n-1 first), and tick 3 takes it down mid-service,
// forcing slot recovery and a re-election under the new leader.
constexpr const char* kLeaderCrashSpec =
    "amacfuzz1:seed=7:alg=wpaxos:topo=clique:n=5:aux=0:sched=sync:fack=2:"
    "late=0:in=alt:ids=identity:f=0:hz=1000000:log=64@4@2@8:crashes=4@3";

TEST(FuzzLogSpec, RoundTripsLogFields) {
  const auto s = parse_spec(kLeaderCrashSpec);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->log_ops, 64u);
  EXPECT_EQ(s->log_batch, 4u);
  EXPECT_EQ(s->log_window, 2u);
  EXPECT_EQ(s->log_lease, 8u);
  EXPECT_EQ(format_spec(*s), kLeaderCrashSpec);
}

TEST(FuzzLogSpec, OmittedForInstanceFamily) {
  const Scenario s = generate_scenario(11);
  ASSERT_EQ(s.log_ops, 0u);  // blind generation never draws the family
  EXPECT_EQ(format_spec(s).find(":log="), std::string::npos);
  const auto parsed = parse_spec(format_spec(s));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->log_ops, 0u);
  EXPECT_EQ(format_spec(*parsed), format_spec(s));
}

TEST(FuzzLogSpec, RejectsMalformedTokens) {
  const std::string base =
      "amacfuzz1:seed=1:alg=wpaxos:topo=clique:n=4:aux=0:sched=sync:fack=2:"
      "late=0:in=all0:ids=identity:f=0:hz=1000000";
  EXPECT_FALSE(parse_spec(base + ":log=0@1@1@1").has_value());   // zero ops
  EXPECT_FALSE(parse_spec(base + ":log=8@0@1@1").has_value());   // zero knob
  EXPECT_FALSE(parse_spec(base + ":log=8@1@1").has_value());     // 3 fields
  EXPECT_FALSE(parse_spec(base + ":log=8@1@1@1@1").has_value()); // 5 fields
  EXPECT_FALSE(parse_spec(base + ":log=abc@1@1@1").has_value()); // garbage
  EXPECT_TRUE(parse_spec(base + ":log=8@1@1@1").has_value());
}

TEST(FuzzLogPromotion, DeterministicAndInsideEnvelope) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Scenario s = generate_scenario(seed);
    promote_to_log_service(s);
    const std::string context = format_spec(s);
    ASSERT_GT(s.log_ops, 0u) << context;
    // Family envelope: the service IS the wPAXOS renewal + leased
    // CommitFlood stack, owns its Network (no fault/script seam), and
    // keeps crashes (re-election coverage is the family's point).
    EXPECT_EQ(s.algorithm, Algorithm::kWPaxos) << context;
    EXPECT_NE(s.scheduler, SchedulerKind::kScripted) << context;
    // Contention's fack bound covers one instance's density; a pipelined
    // slot sequence overruns any static bound, so the family excludes it.
    EXPECT_NE(s.scheduler, SchedulerKind::kContention) << context;
    EXPECT_TRUE(s.script.empty()) << context;
    EXPECT_TRUE(s.faults.empty()) << context;
    EXPECT_EQ(s.drop_rate_bp, 0u) << context;
    EXPECT_EQ(s.dup_rate_bp, 0u) << context;
    // Clamp fixpoint: promotion already applied the envelope.
    Scenario clamped = s;
    clamp_to_envelope(clamped);
    EXPECT_EQ(format_spec(clamped), context);
    // Deterministic: promotion draws only from the scenario's own seed.
    Scenario again = generate_scenario(seed);
    promote_to_log_service(again);
    EXPECT_EQ(format_spec(again), context);
    // And the result still round-trips.
    const auto parsed = parse_spec(context);
    ASSERT_TRUE(parsed.has_value()) << context;
    EXPECT_EQ(format_spec(*parsed), context);
  }
}

TEST(FuzzLogRun, LeaderCrashRunsServiceAndSignalsCoverage) {
  const auto s = parse_spec(kLeaderCrashSpec);
  ASSERT_TRUE(s.has_value());
  const RunReport r = run_scenario(*s);
  EXPECT_TRUE(r.log_service);
  EXPECT_EQ(r.failure, FailureKind::kNone) << r.detail;
  EXPECT_TRUE(r.verdict.ok());
  // The crash took the lease holder: recovery and re-election both fired.
  EXPECT_GT(r.log_slots_recovered, 0u);
  EXPECT_GT(r.log_re_elections, 0u);
  EXPECT_NE(r.log_kv_digest, 0u);

  const CoverageSignature sig = coverage_signature(*s, r);
  EXPECT_TRUE(sig.flags & CoverageSignature::kHasCrashes);
  EXPECT_TRUE(sig.flags & CoverageSignature::kLogService);
  EXPECT_GT(sig.recover_bucket, 0u);
  EXPECT_GT(sig.reelect_bucket, 0u);

  // Same spec, same fingerprint: the family keeps the replay contract.
  const RunReport r2 = run_scenario(*s);
  EXPECT_EQ(r2.fingerprint, r.fingerprint);
  EXPECT_EQ(r2.log_kv_digest, r.log_kv_digest);
}

TEST(FuzzLogRun, InstanceFamilyReportsNoService) {
  const Scenario s = generate_scenario(3);
  const RunReport r = run_scenario(s);
  EXPECT_FALSE(r.log_service);
  const CoverageSignature sig = coverage_signature(s, r);
  EXPECT_FALSE(sig.flags & CoverageSignature::kLogService);
  EXPECT_FALSE(sig.flags & CoverageSignature::kLeaseBroken);
  EXPECT_EQ(sig.recover_bucket, 0u);
  EXPECT_EQ(sig.reelect_bucket, 0u);
}

TEST(FuzzLogMutation, CanEnterFamilyAndSurvivesClamp) {
  util::Rng rng(0xF00DFACE);
  std::size_t entered = 0;
  for (std::uint64_t seed = 1; seed <= 200 && entered < 5; ++seed) {
    const Scenario base = generate_scenario(seed);
    const Scenario mutant = mutate_scenario(base, nullptr, rng);
    if (mutant.log_ops == 0) continue;
    ++entered;
    const std::string context = format_spec(mutant);
    EXPECT_EQ(mutant.algorithm, Algorithm::kWPaxos) << context;
    EXPECT_TRUE(mutant.faults.empty()) << context;
    EXPECT_TRUE(mutant.script.empty()) << context;
    Scenario clamped = mutant;
    clamp_to_envelope(clamped);
    EXPECT_EQ(format_spec(clamped), context) << "mutant not a clamp fixpoint";
    const auto parsed = parse_spec(context);
    ASSERT_TRUE(parsed.has_value()) << context;
    EXPECT_EQ(format_spec(*parsed), context);
  }
  EXPECT_GT(entered, 0u) << "kLogService mutation never fired in 200 draws";
}

TEST(FuzzLogSoak, DigestStableAcrossJobsAndWidensEngineCoverage) {
  // The CI acceptance in miniature: a log-promoting soak must (a) fold the
  // identical corpus digest whatever the shard count, and (b) reach
  // engine-space signature keys the instance-only soak at the same budget
  // cannot (kLogService lives in the packed flags, so every log signature
  // is such a key — the assertion is the SET DIFFERENCE, mirroring CI).
  SoakOptions plain;
  plain.count = 120;
  plain.seed_base = 1;
  plain.differential_every = 0;
  plain.shrink_failures = false;
  const SoakResult base = run_soak(plain);
  EXPECT_EQ(base.log_scenarios, 0u);
  EXPECT_EQ(base.coverage.log_sigs, 0u);

  SoakOptions logged = plain;
  logged.log_every = 15;
  const SoakResult a = run_soak(logged);
  logged.jobs = 3;
  const SoakResult b = run_soak(logged);
  EXPECT_EQ(a.corpus_digest, b.corpus_digest);
  EXPECT_EQ(a.log_scenarios, b.log_scenarios);
  EXPECT_EQ(a.log_scenarios, 8u);  // ceil(120 / 15) promoted global indices
  EXPECT_GT(a.coverage.log_sigs, 0u);

  std::set<std::uint64_t> widened;
  std::set_difference(a.engine_keys.begin(), a.engine_keys.end(),
                      base.engine_keys.begin(), base.engine_keys.end(),
                      std::inserter(widened, widened.begin()));
  EXPECT_GT(widened.size(), 0u)
      << "log-promoting soak reached no engine signature the instance-only "
         "soak missed";
}

}  // namespace
}  // namespace amac::fuzz
