#include "util/hash.hpp"

#include <gtest/gtest.h>

namespace amac::util {
namespace {

TEST(Hash, DeterministicDigest) {
  Hasher a;
  a.mix_u64(42);
  a.mix_string("state");
  Hasher b;
  b.mix_u64(42);
  b.mix_string("state");
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(Hash, OrderSensitive) {
  Hasher a;
  a.mix_u64(1);
  a.mix_u64(2);
  Hasher b;
  b.mix_u64(2);
  b.mix_u64(1);
  EXPECT_NE(a.digest(), b.digest());
}

TEST(Hash, LengthPrefixPreventsConcatenationCollisions) {
  // ("ab", "c") must differ from ("a", "bc").
  Hasher a;
  a.mix_string("ab");
  a.mix_string("c");
  Hasher b;
  b.mix_string("a");
  b.mix_string("bc");
  EXPECT_NE(a.digest(), b.digest());
}

TEST(Hash, BytesMatchManualMix) {
  const Buffer buf{1, 2, 3};
  EXPECT_EQ(hash_bytes(buf), hash_bytes(Buffer{1, 2, 3}));
  EXPECT_NE(hash_bytes(buf), hash_bytes(Buffer{1, 2, 4}));
}

TEST(Hash, CombineNotCommutative) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(Hash, EmptyDistinctFromZeroByte) {
  Hasher empty;
  Hasher zero;
  zero.mix_u8(0);
  EXPECT_NE(empty.digest(), zero.digest());
}

TEST(Hash, BoolMixing) {
  Hasher a;
  a.mix_bool(true);
  Hasher b;
  b.mix_bool(false);
  EXPECT_NE(a.digest(), b.digest());
}

}  // namespace
}  // namespace amac::util
