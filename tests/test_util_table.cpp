#include "util/table.hpp"

#include <gtest/gtest.h>

namespace amac::util {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(std::int64_t{1});
  t.row().cell("beta").cell(std::int64_t{22});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(Table, ColumnsAligned) {
  Table t({"a", "b"});
  t.row().cell("long-cell-content").cell(std::int64_t{1});
  t.row().cell("x").cell(std::int64_t{2});
  const std::string out = t.render();
  // All four lines (header, separator, two rows) must have equal length.
  std::vector<std::size_t> lengths;
  std::size_t start = 0;
  while (start < out.size()) {
    const auto end = out.find('\n', start);
    lengths.push_back(end - start);
    start = end + 1;
  }
  ASSERT_EQ(lengths.size(), 4u);
  EXPECT_EQ(lengths[0], lengths[1]);
  EXPECT_EQ(lengths[1], lengths[2]);
  EXPECT_EQ(lengths[2], lengths[3]);
}

TEST(Table, DoubleFormatting) {
  Table t({"v"});
  t.row().cell(3.14159, 2);
  EXPECT_NE(t.render().find("3.14"), std::string::npos);
  EXPECT_EQ(t.render().find("3.142"), std::string::npos);
}

TEST(Table, BoolCells) {
  Table t({"flag"});
  t.row().cell(true);
  t.row().cell(false);
  const auto out = t.render();
  EXPECT_NE(out.find("yes"), std::string::npos);
  EXPECT_NE(out.find("no"), std::string::npos);
}

TEST(Table, RowCount) {
  Table t({"x"});
  EXPECT_EQ(t.row_count(), 0u);
  t.row().cell("1");
  t.row().cell("2");
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(1.0, 0), "1");
  EXPECT_EQ(format_double(1.25, 1), "1.2");
  EXPECT_EQ(format_double(1.25, 3), "1.250");
}

}  // namespace
}  // namespace amac::util
