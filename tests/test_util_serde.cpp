#include "util/serde.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace amac::util {
namespace {

TEST(Serde, UvarintRoundTripSmall) {
  Writer w;
  w.put_uvarint(0);
  w.put_uvarint(1);
  w.put_uvarint(127);
  Reader r(w.buffer());
  EXPECT_EQ(r.get_uvarint(), 0u);
  EXPECT_EQ(r.get_uvarint(), 1u);
  EXPECT_EQ(r.get_uvarint(), 127u);
  EXPECT_TRUE(r.exhausted());
}

TEST(Serde, UvarintSingleByteBelow128) {
  // The O(log n) message-size accounting depends on small ids being small.
  Writer w;
  w.put_uvarint(127);
  EXPECT_EQ(w.size(), 1u);
  Writer w2;
  w2.put_uvarint(128);
  EXPECT_EQ(w2.size(), 2u);
}

TEST(Serde, UvarintRoundTripBoundaries) {
  const std::uint64_t cases[] = {
      127, 128, 16383, 16384, (1ULL << 32) - 1, 1ULL << 32,
      std::numeric_limits<std::uint64_t>::max()};
  Writer w;
  for (const auto c : cases) w.put_uvarint(c);
  Reader r(w.buffer());
  for (const auto c : cases) EXPECT_EQ(r.get_uvarint(), c);
  EXPECT_TRUE(r.exhausted());
}

TEST(Serde, SvarintRoundTrip) {
  const std::int64_t cases[] = {0, -1, 1, -64, 63, -65, 64,
                                std::numeric_limits<std::int64_t>::min(),
                                std::numeric_limits<std::int64_t>::max()};
  Writer w;
  for (const auto c : cases) w.put_svarint(c);
  Reader r(w.buffer());
  for (const auto c : cases) EXPECT_EQ(r.get_svarint(), c);
  EXPECT_TRUE(r.exhausted());
}

TEST(Serde, ZigzagKeepsSmallMagnitudesSmall) {
  Writer w;
  w.put_svarint(-1);
  EXPECT_EQ(w.size(), 1u);
}

TEST(Serde, BytesAndStrings) {
  Writer w;
  w.put_bytes(Buffer{1, 2, 3});
  w.put_string("hello");
  w.put_bytes(Buffer{});
  w.put_string("");
  Reader r(w.buffer());
  EXPECT_EQ(r.get_bytes(), (Buffer{1, 2, 3}));
  EXPECT_EQ(r.get_string(), "hello");
  EXPECT_EQ(r.get_bytes(), Buffer{});
  EXPECT_EQ(r.get_string(), "");
  EXPECT_TRUE(r.exhausted());
}

TEST(Serde, BoolAndU8) {
  Writer w;
  w.put_bool(true);
  w.put_bool(false);
  w.put_u8(0xAB);
  Reader r(w.buffer());
  EXPECT_TRUE(r.get_bool());
  EXPECT_FALSE(r.get_bool());
  EXPECT_EQ(r.get_u8(), 0xAB);
}

TEST(Serde, MixedSequenceRoundTrip) {
  Writer w;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    w.put_uvarint(i * i);
    w.put_svarint(-static_cast<std::int64_t>(i));
    w.put_bool(i % 3 == 0);
  }
  Reader r(w.buffer());
  for (std::uint64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(r.get_uvarint(), i * i);
    EXPECT_EQ(r.get_svarint(), -static_cast<std::int64_t>(i));
    EXPECT_EQ(r.get_bool(), i % 3 == 0);
  }
  EXPECT_TRUE(r.exhausted());
}

TEST(Serde, RemainingTracksPosition) {
  Writer w;
  w.put_u8(1);
  w.put_u8(2);
  Reader r(w.buffer());
  EXPECT_EQ(r.remaining(), 2u);
  (void)r.get_u8();
  EXPECT_EQ(r.remaining(), 1u);
  (void)r.get_u8();
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Serde, TakeMovesBuffer) {
  Writer w;
  w.put_uvarint(42);
  Buffer b = std::move(w).take();
  Reader r(b);
  EXPECT_EQ(r.get_uvarint(), 42u);
}

}  // namespace
}  // namespace amac::util
