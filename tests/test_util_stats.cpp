#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace amac::util {
namespace {

TEST(Stats, BasicMoments) {
  Summary s;
  for (const double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.total(), 10.0);
}

TEST(Stats, StddevPopulation) {
  Summary s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
}

TEST(Stats, StddevDegenerate) {
  Summary s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Stats, MedianOddEven) {
  Summary odd;
  for (const double v : {5.0, 1.0, 3.0}) odd.add(v);
  EXPECT_DOUBLE_EQ(odd.median(), 3.0);

  Summary even;
  for (const double v : {4.0, 1.0, 3.0, 2.0}) even.add(v);
  EXPECT_DOUBLE_EQ(even.median(), 2.5);
}

TEST(Stats, PercentileEndpoints) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
}

TEST(Stats, AddAfterReadKeepsConsistency) {
  Summary s;
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
  s.add(20.0);
  EXPECT_DOUBLE_EQ(s.max(), 20.0);
  EXPECT_DOUBLE_EQ(s.mean(), 15.0);
}

TEST(Stats, SingleSamplePercentile) {
  Summary s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.percentile(25), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(75), 7.0);
}

}  // namespace
}  // namespace amac::util
