// Pinned fuzz regression corpus.
//
// Each spec below is a full scenario line (NOT a bare seed), so it stays
// frozen even as the generator evolves. Two families:
//
//   * crash-during-in-flight-ack scenarios surfaced by the generator: a
//     node crashes while its broadcast still has undelivered copies, so the
//     engine must cancel exactly the post-crash deliveries (the non-atomic
//     broadcast of paper §2) — each is replayed differentially against the
//     frozen reference engine and must stay bit-identical;
//
//   * the paper's own counterexample shapes, rebuilt as fuzzer specs: the
//     oracle must DETECT them (they violate agreement by design), and the
//     shrinker must minimize them — proving the fuzzer has teeth, not just
//     that the generator's envelope is safe.
#include <gtest/gtest.h>

#include "fuzz/fuzzer.hpp"

namespace amac::fuzz {
namespace {

// Surfaced by scanning generated seeds for report.mid_flight_crashes > 0
// (see the fuzzing HOWTO in fuzz/fuzzer.hpp); pinned as full specs.
constexpr const char* kMidFlightCrashSpecs[] = {
    // Ben-Or under receiver contention, two crashes inside the first ack
    // windows (two broadcasts cancelled mid-flight).
    "amacfuzz1:seed=16:alg=benor:topo=clique:n=9:aux=0:sched=contention:"
    "fack=1:late=0:in=split:ids=perm:f=4:hz=1000000:crashes=1@1,2@7",
    // Flooding on a torus: the crash cuts a forwarding broadcast in half.
    "amacfuzz1:seed=34:alg=flooding:topo=torus:n=16:aux=4:sched=contention:"
    "fack=3:late=0:in=split:ids=perm:f=0:hz=30000:crashes=7@28",
    // wPAXOS, synchronous rounds, two mid-round crashes.
    "amacfuzz1:seed=93:alg=wpaxos:topo=torus:n=9:aux=3:sched=sync:fack=3:"
    "late=0:in=all0:ids=perm:f=0:hz=30000:crashes=0@27,7@11",
    // wPAXOS on a skewed clique (persistently slow links): crashes land
    // between a broadcast and its (late) ack.
    "amacfuzz1:seed=20:alg=wpaxos:topo=clique:n=13:aux=0:sched=skewed:"
    "fack=5:late=0:in=split:ids=perm:f=0:hz=30000:crashes=2@31,6@42",
    // Ben-Or with both crashes inside its declared f=2 budget: liveness
    // must survive the cancelled copies.
    "amacfuzz1:seed=48:alg=benor:topo=clique:n=9:aux=0:sched=sync:fack=4:"
    "late=0:in=split:ids=perm:f=2:hz=1000000:crashes=4@26,6@32",
};

TEST(FuzzRegressions, CrashDuringInFlightAckStaysCleanAndBitIdentical) {
  RunOptions options;
  options.differential = true;
  for (const char* spec : kMidFlightCrashSpecs) {
    const auto scenario = parse_spec(spec);
    ASSERT_TRUE(scenario.has_value()) << spec;
    ASSERT_FALSE(scenario->crashes.empty()) << spec;

    const RunReport r = run_scenario(*scenario, options);
    // The pinned property: the crash really interrupts an in-flight
    // broadcast, and every oracle (safety, liveness where expected,
    // monitor, engine equivalence) stays green.
    EXPECT_GE(r.mid_flight_crashes, 1u) << spec;
    EXPECT_EQ(r.failure, FailureKind::kNone) << spec << "\n" << r.detail;
    ASSERT_TRUE(r.differential_ran);
    EXPECT_EQ(r.fingerprint, r.reference_fingerprint)
        << "engine divergence on " << spec;

    // Replays of a pinned spec are bit-identical.
    EXPECT_EQ(run_scenario(*scenario, options).trace_digest, r.trace_digest)
        << spec;
  }
}

// Surfaced by scanning generated seeds for late_holds && wheel_resizes > 0:
// holdback holds applied AFTER Network construction (late=1), so the
// calendar wheel was sized from the pre-hold fack() and the held
// deliveries pile onto the overflow heap until the self-resize rebuilds
// the wheel mid-run. Pinned as full specs: the resize path must keep
// firing — and stay bit-identical to the (wheel-less) reference engine —
// no matter how the generator or the resize policy evolves.
constexpr const char* kLateHoldResizeSpecs[] = {
    // Flooding on a 14-clique, three staggered holds: 32 overflow pushes,
    // then the wheel grows to span the ~136-tick release horizon.
    "amacfuzz1:seed=43:alg=flooding:topo=clique:n=14:aux=0:sched=holdback:"
    "fack=5:late=1:in=alt:ids=perm:f=0:hz=1000000:holds=9@129,11@59,12@136",
    // Two-phase commit with tightly clustered releases: the smallest
    // horizon that still crosses the resize threshold.
    "amacfuzz1:seed=378:alg=two_phase:topo=clique:n=11:aux=0:sched=holdback:"
    "fack=2:late=1:in=all0:ids=perm:f=0:hz=1000000:holds=6@50,9@46,1@44",
    // Flooding with a crash riding alongside the late holds: the resize
    // interleaves with mid-flight cancellation.
    "amacfuzz1:seed=3849:alg=flooding:topo=clique:n=14:aux=0:sched=holdback:"
    "fack=4:late=1:in=all1:ids=perm:f=0:hz=30000:crashes=12@19:"
    "holds=13@56,2@96,7@96",
};

TEST(FuzzRegressions, LateHoldsForceWheelResizeAndStayBitIdentical) {
  RunOptions options;
  options.differential = true;
  for (const char* spec : kLateHoldResizeSpecs) {
    const auto scenario = parse_spec(spec);
    ASSERT_TRUE(scenario.has_value()) << spec;
    ASSERT_TRUE(scenario->late_holds) << spec;

    const RunReport r = run_scenario(*scenario, options);
    // The pinned property: the late holds really spill past the
    // construction-sized wheel, the self-resize runs, and every oracle
    // (safety, liveness, engine equivalence) stays green.
    EXPECT_GE(r.stats.wheel_resizes, 1u) << spec;
    EXPECT_GT(r.stats.overflow_pushes, 0u) << spec;
    EXPECT_GT(r.stats.wheel_span, 16u) << spec;  // grew past pre-hold size
    EXPECT_EQ(r.failure, FailureKind::kNone) << spec << "\n" << r.detail;
    ASSERT_TRUE(r.differential_ran);
    EXPECT_EQ(r.fingerprint, r.reference_fingerprint)
        << "engine divergence on " << spec;

    // Replays of a pinned spec are bit-identical.
    EXPECT_EQ(run_scenario(*scenario, options).trace_digest, r.trace_digest)
        << spec;
  }
}

TEST(FuzzRegressions, HoldReleaseAtBoundaryNeverStretchesOrSpills) {
  // Pins the HoldbackScheduler release boundary at engine level: a hold
  // whose release is 1 can never be live (delays are >= 1, so every
  // delivery already lands at or past it). The run must behave exactly
  // like the un-held scenario — dense fast path intact, nothing pushed
  // beyond the wheel window, no resize — and stay bit-identical to the
  // reference engine. See Schedulers.HoldbackReleaseBoundary* for the
  // schedule-level boundary tests.
  const char* spec =
      "amacfuzz1:seed=1:alg=flooding:topo=clique:n=6:aux=0:sched=holdback:"
      "fack=3:late=0:in=split:ids=identity:f=0:hz=1000000:holds=2@1";
  const auto scenario = parse_spec(spec);
  ASSERT_TRUE(scenario.has_value()) << spec;

  RunOptions options;
  options.differential = true;
  const RunReport r = run_scenario(*scenario, options);
  EXPECT_EQ(r.failure, FailureKind::kNone) << r.detail;
  EXPECT_TRUE(r.condition_met);  // crash-free flooding must terminate
  EXPECT_EQ(r.stats.overflow_pushes, 0u)
      << "an expired hold pushed deliveries past the wheel window";
  EXPECT_EQ(r.stats.wheel_resizes, 0u);
  ASSERT_TRUE(r.differential_ran);
  EXPECT_EQ(r.fingerprint, r.reference_fingerprint)
      << "engine divergence on " << spec;
  EXPECT_EQ(run_scenario(*scenario, options).trace_digest, r.trace_digest)
      << spec;
}

TEST(FuzzRegressions, WPaxosLeaderHandoffSurvivesStaleLargerProposal) {
  // Surfaced by the coverage-steered mutation stream: under this scripted
  // timeline node 8 floods proposal (tag 6, id 8) while it still believes
  // itself leader; the true max-id leader (node 9) then issues (tag 5,
  // id 9), which is lexicographically SMALLER. WPaxos's at-most-once
  // cursor used to advance on the stale larger pn before the
  // current-leader gate ran, so every node that had processed (6,8)
  // silently swallowed the real leader's flood — no relay, no response,
  // not even a rejection — and the proposer wedged at 5 of 6 promises
  // with nothing left to trigger a retry. The cursor is now scoped to the
  // current leader's propositions; this pin keeps it that way.
  const char* spec =
      "amacfuzz1:seed=259:alg=wpaxos:topo=geo:n=10:aux=0:sched=scripted:"
      "fack=2:late=0:in=all0:ids=identity:f=0:hz=1000000:script=1@1@2@1";
  const auto scenario = parse_spec(spec);
  ASSERT_TRUE(scenario.has_value()) << spec;

  RunOptions options;
  options.differential = true;
  const RunReport r = run_scenario(*scenario, options);
  EXPECT_EQ(r.failure, FailureKind::kNone) << r.detail;
  EXPECT_TRUE(r.condition_met) << "wPAXOS wedged below the promise majority";
  ASSERT_TRUE(r.differential_ran);
  EXPECT_EQ(r.fingerprint, r.reference_fingerprint)
      << "engine divergence on " << spec;
  EXPECT_EQ(run_scenario(*scenario, options).trace_digest, r.trace_digest);
}

// Link-fault regression family: full specs with non-empty fault plans,
// pinned so the seed-salted (broadcast_id, sender, receiver) hash keeps
// making the exact same drop/duplicate decisions in both engines. Each
// spec stays inside its algorithm's fault envelope (clamp_to_envelope
// rules: two_phase deferral+duplication only, wPAXOS loss only, flooding
// and Ben-Or anything), so safety must hold even though termination is
// not claimed.
constexpr const char* kLinkFaultSpecs[] = {
    // Flooding on a torus under global drop + duplicate rates plus a
    // deferral window: both fault partitions active at once.
    "amacfuzz1:seed=5:alg=flooding:topo=torus:n=16:aux=4:sched=contention:"
    "fack=1:late=0:in=multi:ids=perm:f=0:hz=30000:drop=400:dup=200:"
    "faults=0@1@2@40",
    // Ben-Or with two crashes inside its f=4 budget AND lossy links: the
    // randomized path tolerates loss, duplication, and crash fallout
    // together (82 drops / 41 duplicates at the pinned seed).
    "amacfuzz1:seed=16:alg=benor:topo=clique:n=9:aux=0:sched=contention:"
    "fack=1:late=0:in=split:ids=perm:f=4:hz=30000:crashes=1@1,2@7:"
    "drop=400:dup=200:faults=0@1@2@40",
    // Two-phase commit in its envelope: no permanent loss, only a finite
    // deferral window and duplicated frames.
    "amacfuzz1:seed=10:alg=two_phase:topo=clique:n=10:aux=0:"
    "sched=contention:fack=2:late=0:in=split:ids=identity:f=0:hz=30000:"
    "dup=200:faults=0@1@2@40",
    // wPAXOS in its envelope: loss but never duplication (acceptor
    // responses are counted, not deduplicated).
    "amacfuzz1:seed=12:alg=wpaxos:topo=line:n=11:aux=0:sched=contention:"
    "fack=1:late=0:in=alt:ids=perm:f=0:hz=30000:drop=400:faults=0@1@2@40",
};

TEST(FuzzRegressions, LinkFaultPlansStayCleanAndBitIdentical) {
  RunOptions options;
  options.differential = true;
  std::uint64_t total_drops = 0;
  std::uint64_t total_dups = 0;
  for (const char* spec : kLinkFaultSpecs) {
    const auto scenario = parse_spec(spec);
    ASSERT_TRUE(scenario.has_value()) << spec;
    ASSERT_TRUE(scenario->drop_rate_bp != 0 || scenario->dup_rate_bp != 0 ||
                !scenario->faults.empty())
        << spec;
    // Pinned specs must round-trip exactly (the --replay contract covers
    // the fault grammar too).
    EXPECT_EQ(format_spec(*scenario), spec);

    const RunReport r = run_scenario(*scenario, options);
    // The pinned property: faults really fire, safety holds, and the
    // calendar engine stays bit-identical to the frozen reference engine
    // under the exact same drop/duplicate decisions.
    EXPECT_GT(r.stats.drops + r.stats.duplicates, 0u) << spec;
    EXPECT_EQ(r.failure, FailureKind::kNone) << spec << "\n" << r.detail;
    ASSERT_TRUE(r.differential_ran);
    EXPECT_EQ(r.fingerprint, r.reference_fingerprint)
        << "engine divergence on " << spec;
    total_drops += r.stats.drops;
    total_dups += r.stats.duplicates;

    // Replays of a pinned spec are bit-identical.
    EXPECT_EQ(run_scenario(*scenario, options).trace_digest, r.trace_digest)
        << spec;
  }
  EXPECT_GT(total_drops, 0u);
  EXPECT_GT(total_dups, 0u);
}

TEST(FuzzOracle, DetectsAgreementViolationUnderPermanentLinkLoss) {
  // WHY the envelope exists: AnonymousMinFlood is reliable-delivery-only
  // (Theorem 3.3's model), so a permanent drop window on the value-flow
  // link — outside the generator's and clamp's envelope, inside the spec
  // language — makes node 1 decide its own 1 while node 0 decides 0. The
  // oracle must flag it (agreement is unconditional under faults).
  const auto scenario = parse_spec(
      "amacfuzz1:seed=1:alg=anonymous:topo=line:n=2:aux=0:sched=sync:"
      "fack=2:late=0:in=split:ids=identity:f=0:hz=1000000:faults=0@1@0@inf");
  ASSERT_TRUE(scenario.has_value());
  const RunReport r = run_scenario(*scenario);
  EXPECT_EQ(r.failure, FailureKind::kAgreement) << r.detail;
  EXPECT_FALSE(r.verdict.agreement);
  EXPECT_TRUE(r.verdict.validity);
  EXPECT_GT(r.stats.drops, 0u);
}

TEST(FuzzShrinker, StripsFaultNoiseToTheMinimalPlan) {
  // A bloated variant of the same violation: five nodes, a duplicate
  // rate, and three windows that do NOT matter alongside the one that
  // does. Two-phase shrinking must strip every irrelevant fault field
  // (structural candidates drop whole windows and zero the rates; the
  // value phase can't touch the essential window's infinite end) and
  // reach the minimal plan: exactly the severed 0->1 link, rates zero.
  const auto scenario = parse_spec(
      "amacfuzz1:seed=1:alg=anonymous:topo=line:n=5:aux=0:sched=sync:"
      "fack=3:late=0:in=split:ids=identity:f=0:hz=1000000:"
      "dup=200:faults=0@1@0@inf,3@4@5@90,2@1@10@60,4@3@0@40");
  ASSERT_TRUE(scenario.has_value());
  ASSERT_EQ(run_scenario(*scenario).failure, FailureKind::kAgreement);

  const ShrinkResult shrunk =
      shrink_scenario(*scenario, FailureKind::kAgreement);
  EXPECT_GT(shrunk.reductions, 0u);
  EXPECT_EQ(shrunk.scenario.dup_rate_bp, 0u);
  EXPECT_EQ(shrunk.scenario.drop_rate_bp, 0u);
  ASSERT_EQ(shrunk.scenario.faults.size(), 1u);
  EXPECT_EQ(shrunk.scenario.faults[0].from, 0u);
  EXPECT_EQ(shrunk.scenario.faults[0].to, 1u);
  EXPECT_EQ(shrunk.scenario.faults[0].until_tick, mac::kForever);
  EXPECT_LE(shrunk.scenario.n, 3u);  // surplus nodes shed too
  // The minimal scenario still fails the same way, and its spec replays.
  EXPECT_EQ(shrunk.report.failure, FailureKind::kAgreement);
  const auto replayed = parse_spec(format_spec(shrunk.scenario));
  ASSERT_TRUE(replayed.has_value());
  EXPECT_EQ(run_scenario(*replayed).failure, FailureKind::kAgreement);
}

TEST(FuzzOracle, DetectsTheorem33StyleAgreementViolation) {
  // AnonymousMinFlood under a holdback adversary — outside the generator's
  // envelope, inside the spec language: node 0 (the only 0-input) has every
  // delivery held past the others' D+1 phases, so they decide 1 while node
  // 0 decides 0. The paper's Theorem 3.3 argument, as a one-line repro.
  const auto scenario = parse_spec(
      "amacfuzz1:seed=1:alg=anonymous:topo=line:n=2:aux=0:sched=holdback:"
      "fack=2:late=0:in=split:ids=identity:f=0:hz=1000000:holds=0@300");
  ASSERT_TRUE(scenario.has_value());
  const RunReport r = run_scenario(*scenario);
  EXPECT_EQ(r.failure, FailureKind::kAgreement) << r.detail;
  EXPECT_FALSE(r.verdict.agreement);
  EXPECT_TRUE(r.verdict.validity);
}

TEST(FuzzShrinker, MinimizesAgreementCounterexample) {
  // A deliberately bloated version of the same violation: ring of 8, four
  // held senders, fack 3. Greedy shrinking must keep the violation while
  // shedding nodes and holds.
  const auto scenario = parse_spec(
      "amacfuzz1:seed=1:alg=anonymous:topo=ring:n=8:aux=0:sched=holdback:"
      "fack=3:late=0:in=alt:ids=identity:f=0:hz=1000000:"
      "holds=0@400,2@400,4@400,6@400");
  ASSERT_TRUE(scenario.has_value());
  ASSERT_EQ(run_scenario(*scenario).failure, FailureKind::kAgreement);

  const ShrinkResult shrunk =
      shrink_scenario(*scenario, FailureKind::kAgreement);
  EXPECT_GT(shrunk.reductions, 0u);
  EXPECT_LE(shrunk.scenario.n, 4u);         // 8 -> ring minimum territory
  EXPECT_LE(shrunk.scenario.holds.size(), 2u);
  // The minimal scenario still fails the same way, and its spec replays.
  EXPECT_EQ(shrunk.report.failure, FailureKind::kAgreement);
  const auto replayed = parse_spec(format_spec(shrunk.scenario));
  ASSERT_TRUE(replayed.has_value());
  EXPECT_EQ(run_scenario(*replayed).failure, FailureKind::kAgreement);
}

TEST(FuzzShrinker, DropsIrrelevantCrashes) {
  // The violation needs only the hold; the crash of an uninvolved node is
  // noise the shrinker must strip (alongside surplus nodes).
  const auto scenario = parse_spec(
      "amacfuzz1:seed=1:alg=anonymous:topo=line:n=6:aux=0:sched=holdback:"
      "fack=2:late=0:in=all1:ids=identity:f=0:hz=1000000:"
      "holds=5@300:crashes=2@9000");
  ASSERT_TRUE(scenario.has_value());
  // All-ones inputs with node 5 held: every node already agrees on 1 —
  // EXCEPT that holding node 5 stalls nothing value-relevant, so this run
  // is actually clean; flip to the split pattern for the violation.
  Scenario bloated = *scenario;
  bloated.inputs = InputPattern::kSplit;
  bloated.holds = {HoldSpec{0, 300}, HoldSpec{1, 300}, HoldSpec{2, 300}};
  normalize_scenario(bloated);
  const RunReport r = run_scenario(bloated);
  ASSERT_EQ(r.failure, FailureKind::kAgreement) << r.detail;

  const ShrinkResult shrunk =
      shrink_scenario(bloated, FailureKind::kAgreement);
  EXPECT_TRUE(shrunk.scenario.crashes.empty())
      << "irrelevant crash survived shrinking: "
      << format_spec(shrunk.scenario);
  EXPECT_LT(shrunk.scenario.n, bloated.n);
}

}  // namespace
}  // namespace amac::fuzz
