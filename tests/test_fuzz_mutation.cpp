// Coverage-steered mutation fuzzing (tier-1 pins).
//
//   * every mutant — including chains of mutants — survives the
//     clamp_to_envelope round-trip: spec-exact (format/parse), inside its
//     algorithm's guarantee envelope, and buildable;
//   * mutation is deterministic given the rng state;
//   * CoverageSignature is stable, discriminates engine paths, and the
//     corpus is bounded with exact novelty detection;
//   * a mutating soak strictly widens distinct-signature coverage over
//     pure generation at the same budget (the acceptance property the CI
//     fuzz lane asserts at 2000 scenarios);
//   * schedule-space shrinking minimizes a seeded violation's hold release
//     to its exact reproduction threshold, not just to fewer holds.
#include <gtest/gtest.h>

#include <algorithm>

#include "fuzz/fuzzer.hpp"

namespace amac::fuzz {
namespace {

using harness::Algorithm;

/// The envelope assertions of test_fuzz_smoke.cpp, applied to a mutant.
void expect_in_envelope(const Scenario& s, const std::string& context) {
  const BuiltScenario b = build_scenario(s);
  const std::size_t count = b.graph.node_count();
  ASSERT_GE(count, 2u) << context;
  ASSERT_TRUE(b.graph.is_connected()) << context;
  ASSERT_EQ(b.inputs.size(), count) << context;
  ASSERT_EQ(b.ids.size(), count) << context;

  if (s.algorithm == Algorithm::kAnonymous ||
      s.algorithm == Algorithm::kStability) {
    EXPECT_EQ(s.scheduler, SchedulerKind::kSynchronous) << context;
    EXPECT_TRUE(s.crashes.empty()) << context;
  }
  if (s.algorithm == Algorithm::kTwoPhase ||
      s.algorithm == Algorithm::kBenOr) {
    EXPECT_EQ(s.topology, TopologyKind::kClique) << context;
  }
  if (s.algorithm == Algorithm::kTwoPhase) {
    EXPECT_TRUE(s.crashes.empty()) << context;
  }
  if (s.algorithm == Algorithm::kBenOr) {
    EXPECT_LT(2 * s.benor_f, count) << context;
    EXPECT_LE(s.crashes.size(), s.benor_f) << context;
  }
  for (const auto& c : s.crashes) EXPECT_LT(c.node, count) << context;
  for (const auto& h : s.holds) EXPECT_LT(h.sender, count) << context;
  if (s.scheduler != SchedulerKind::kHoldback) {
    EXPECT_TRUE(s.holds.empty()) << context;
    EXPECT_FALSE(s.late_holds) << context;
  }
  if (s.scheduler != SchedulerKind::kScripted) {
    EXPECT_TRUE(s.script.empty()) << context;
  }
  for (const auto& t : s.script) {
    EXPECT_LT(t.sender, count) << context;
    EXPECT_GE(t.ack, 1u) << context;
    EXPECT_GE(t.recv, 1u) << context;
    EXPECT_LE(t.recv, t.ack) << context;
    // Per-receiver overrides: in range, deduplicated, sorted, delays
    // inside [1, ack], and recv is exactly their maximum.
    mac::Time max_delay = 0;
    for (std::size_t i = 0; i < t.delays.size(); ++i) {
      EXPECT_LT(t.delays[i].first, count) << context;
      if (i > 0) EXPECT_LT(t.delays[i - 1].first, t.delays[i].first)
          << context;
      EXPECT_GE(t.delays[i].second, 1u) << context;
      EXPECT_LE(t.delays[i].second, t.ack) << context;
      max_delay = std::max(max_delay, t.delays[i].second);
    }
    if (!t.delays.empty()) EXPECT_EQ(t.recv, max_delay) << context;
  }
  EXPECT_GE(s.fack, 1u) << context;

  // Link-fault envelope (the bounded-loss rules clamp_to_envelope
  // enforces): synchronous-only algorithms see a perfectly reliable MAC;
  // two-phase commit tolerates deferral and duplication but never
  // permanent loss; wPAXOS counts acceptor responses, so never
  // duplication. Rates and window counts stay inside the mutation bounds.
  const bool sync_only = s.algorithm == Algorithm::kAnonymous ||
                         s.algorithm == Algorithm::kStability;
  if (sync_only) {
    EXPECT_EQ(s.drop_rate_bp, 0u) << context;
    EXPECT_EQ(s.dup_rate_bp, 0u) << context;
    EXPECT_TRUE(s.faults.empty()) << context;
  }
  if (s.algorithm == Algorithm::kTwoPhase) {
    EXPECT_EQ(s.drop_rate_bp, 0u) << context;
    for (const auto& w : s.faults) {
      EXPECT_NE(w.until_tick, mac::kForever) << context;
    }
  }
  if (s.algorithm == Algorithm::kWPaxos) {
    EXPECT_EQ(s.dup_rate_bp, 0u) << context;
  }
  EXPECT_LE(s.drop_rate_bp, 2000u) << context;  // kMaxFaultRateBp
  EXPECT_LE(s.dup_rate_bp, 2000u) << context;
  EXPECT_LE(s.faults.size(), 4u) << context;  // kMaxFaultWindows
  for (const auto& w : s.faults) {
    EXPECT_LT(w.from, count) << context;
    EXPECT_LT(w.to, count) << context;
    EXPECT_NE(w.from, w.to) << context;
    if (w.until_tick != mac::kForever) {
      EXPECT_GT(w.until_tick, w.from_tick) << context;  // live window
    }
  }
}

TEST(FuzzMutation, MutantChainsSurviveRoundTripAndStayInEnvelope) {
  // Chains of mutants (mutant-of-mutant, with occasional splice partners)
  // must stay spec-exact and inside the guarantee envelope — this is what
  // makes a mutant violation a real bug and its printed spec replayable.
  util::Rng rng(0xC07E4A6E);
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    Scenario s = generate_scenario(seed);
    const Scenario partner = generate_scenario(seed + 1000);
    for (int step = 0; step < 8; ++step) {
      const Scenario* splice = (step % 3 == 2) ? &partner : nullptr;
      s = mutate_scenario(s, splice, rng);
      const std::string context = "seed " + std::to_string(seed) + " step " +
                                  std::to_string(step) + ": " +
                                  format_spec(s);
      // Spec round-trip is exact.
      const auto parsed = parse_spec(format_spec(s));
      ASSERT_TRUE(parsed.has_value()) << context;
      EXPECT_EQ(format_spec(*parsed), format_spec(s)) << context;
      expect_in_envelope(s, context);
    }
  }
}

TEST(FuzzSpec, PerReceiverScriptSlotsRoundTripExactly) {
  // The non-uniform 4th script field: "r-d+r-d" lists per-receiver
  // delays; a bare integer keeps the uniform form. Both must round-trip
  // bit for bit (the --replay contract), and recv is derived as the
  // maximum listed delay, matching normalize_scenario.
  const char* spec =
      "amacfuzz1:seed=1:alg=flooding:topo=clique:n=6:aux=0:sched=scripted:"
      "fack=3:late=0:in=split:ids=identity:f=0:hz=1000000:"
      "script=0@0@4@1-2+3-4,1@1@3@2";
  const auto parsed = parse_spec(spec);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->script.size(), 2u);
  const ScriptSlot& per = parsed->script[0];
  EXPECT_EQ(per.sender, 0u);
  EXPECT_EQ(per.index, 0u);
  EXPECT_EQ(per.ack, 4u);
  ASSERT_EQ(per.delays.size(), 2u);
  EXPECT_EQ(per.delays[0], (std::pair<NodeId, mac::Time>{1, 2}));
  EXPECT_EQ(per.delays[1], (std::pair<NodeId, mac::Time>{3, 4}));
  EXPECT_EQ(per.recv, 4u);  // max listed delay
  const ScriptSlot& uni = parsed->script[1];
  EXPECT_TRUE(uni.delays.empty());
  EXPECT_EQ(uni.recv, 2u);
  EXPECT_EQ(format_spec(*parsed), spec);

  // The scenario builds and runs clean: unlisted receivers fall back to
  // delay 1 and the run is deterministic.
  const RunReport a = run_scenario(*parsed);
  const RunReport b = run_scenario(*parsed);
  EXPECT_EQ(a.failure, FailureKind::kNone) << a.detail;
  EXPECT_EQ(a.trace_digest, b.trace_digest);
}

TEST(FuzzSpec, PerReceiverDelaysAreCanonicalizedByNormalize) {
  // normalize_scenario canonicalizes messy per-receiver lists the same
  // way ScriptedScheduler resolves them: later entries win duplicates,
  // out-of-range receivers are dropped, delays clamp into [1, ack], the
  // list sorts by receiver, and recv becomes the maximum listed delay —
  // so format/parse round-trips exactly on the result.
  Scenario s = generate_scenario(1);
  s.algorithm = Algorithm::kFlooding;
  s.topology = TopologyKind::kClique;
  s.n = 5;
  s.scheduler = SchedulerKind::kScripted;
  ScriptSlot slot;
  slot.sender = 0;
  slot.index = 0;
  slot.ack = 3;
  slot.recv = 1;
  slot.delays = {{4, 2}, {9, 1}, {1, 0}, {4, 7}, {2, 3}};
  s.script = {slot};
  normalize_scenario(s);

  ASSERT_EQ(s.script.size(), 1u);
  const ScriptSlot& t = s.script[0];
  // receiver 9 dropped (out of range), duplicate 4 resolved later-wins
  // (delay 7, clamped to ack=3), delay 0 clamped up to 1, sorted.
  ASSERT_EQ(t.delays.size(), 3u);
  EXPECT_EQ(t.delays[0], (std::pair<NodeId, mac::Time>{1, 1}));
  EXPECT_EQ(t.delays[1], (std::pair<NodeId, mac::Time>{2, 3}));
  EXPECT_EQ(t.delays[2], (std::pair<NodeId, mac::Time>{4, 3}));
  EXPECT_EQ(t.recv, 3u);

  const auto parsed = parse_spec(format_spec(s));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(format_spec(*parsed), format_spec(s));
}

TEST(FuzzMutation, DeterministicGivenRngState) {
  const Scenario base = generate_scenario(7);
  const Scenario partner = generate_scenario(8);
  util::Rng a(123);
  util::Rng b(123);
  for (int i = 0; i < 50; ++i) {
    const Scenario ma = mutate_scenario(base, &partner, a);
    const Scenario mb = mutate_scenario(base, &partner, b);
    EXPECT_EQ(format_spec(ma), format_spec(mb));
  }
}

TEST(FuzzMutation, MutantsRunCleanInsideTheirEnvelopes) {
  // Clamped mutants make guarantees the oracle can hold them to; a sample
  // must run violation-free (deterministic: fixed rng, so never flaky).
  util::Rng rng(99);
  std::size_t ran = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Scenario s = generate_scenario(seed);
    s = mutate_scenario(s, nullptr, rng);
    const RunReport r = run_scenario(s);
    EXPECT_EQ(r.failure, FailureKind::kNone)
        << format_spec(s) << "\n" << r.detail;
    ++ran;
  }
  EXPECT_EQ(ran, 20u);
}

TEST(FuzzMutation, ScriptedTimelineMutantsStayInEnvelopeOver500Seeds) {
  // The ScriptedScheduler timeline property: every mutant of a scripted
  // timeline — including chains where retime/swap/duplicate/drop ops
  // rearrange the slots — still satisfies the algorithm's envelope after
  // clamp_to_envelope, across 500 seeded chains. inside_envelope() is the
  // clamp fixpoint check: a mutant passing it makes guarantees the oracle
  // can hold it to, which is what makes a mutant violation a real bug.
  for (std::uint64_t seed = 1; seed <= 500; ++seed) {
    util::Rng rng(seed * 0x9E3779B9u + 7);
    // Start from a scripted scenario: a generated base pushed through the
    // timeline conversion (mutate until the scheduler flips to scripted,
    // which kScriptTimeline is drawn into within a few attempts).
    Scenario s = generate_scenario(seed);
    for (int attempt = 0; attempt < 64 &&
                          s.scheduler != SchedulerKind::kScripted;
         ++attempt) {
      s = mutate_scenario(s, nullptr, rng);
      // Scripted timelines are unreachable inside the log-service family
      // (its envelope owns the Network end to end), so a chain that
      // crossed in restarts from the base rather than wedging there.
      if (s.log_ops > 0) s = generate_scenario(seed);
    }
    if (s.scheduler != SchedulerKind::kScripted) continue;  // sync-only alg

    // Now a chain of further mutants; every one must stay a clamp
    // fixpoint, spec-round-trip exactly, and keep its slots well-formed.
    for (int step = 0; step < 6; ++step) {
      s = mutate_scenario(s, nullptr, rng);
      const std::string context =
          "seed " + std::to_string(seed) + " step " + std::to_string(step) +
          ": " + format_spec(s);
      EXPECT_TRUE(inside_envelope(s)) << context;
      const auto parsed = parse_spec(format_spec(s));
      ASSERT_TRUE(parsed.has_value()) << context;
      EXPECT_EQ(format_spec(*parsed), format_spec(s)) << context;
      expect_in_envelope(s, context);
      // Synchronous-only algorithms can never carry a scripted timeline.
      if (s.algorithm == Algorithm::kAnonymous ||
          s.algorithm == Algorithm::kStability) {
        EXPECT_NE(s.scheduler, SchedulerKind::kScripted) << context;
      }
    }
  }
}

TEST(FuzzMutation, FaultWindowSpliceRecombinesBothParentsInEnvelope) {
  // The kSpliceFaultWindows crossover: children that mix drop windows
  // from BOTH parents must appear (fault timelines neither parent ran),
  // and every mutant of the fault-bearing pair — whatever op fired — must
  // stay a clamp_to_envelope fixpoint. Sentinel windows use exact
  // (from, to, from_tick, until_tick) tuples no other op reproduces, so a
  // mixed plan can only come from the recombination op; the draw stream
  // is fixed, so the count below is deterministic.
  Scenario base = generate_scenario(1);
  base.algorithm = Algorithm::kFlooding;
  base.topology = TopologyKind::kClique;
  base.n = 8;
  base.aux = 0;
  base.scheduler = SchedulerKind::kSynchronous;
  base.crashes.clear();
  base.holds.clear();
  base.script.clear();
  base.faults = {FaultSpec{0, 1, 100, 107}, FaultSpec{1, 2, 200, 207}};
  clamp_to_envelope(base);
  ASSERT_TRUE(inside_envelope(base));
  ASSERT_EQ(base.faults.size(), 2u);

  Scenario partner = base;
  partner.seed = 999;
  partner.faults = {FaultSpec{2, 3, 300, 307}, FaultSpec{3, 4, 400, 407}};
  clamp_to_envelope(partner);
  ASSERT_EQ(partner.faults.size(), 2u);

  const auto window_eq = [](const FaultSpec& a, const FaultSpec& b) {
    return a.from == b.from && a.to == b.to && a.from_tick == b.from_tick &&
           a.until_tick == b.until_tick;
  };
  const auto has_window_from = [&](const Scenario& s,
                                   const std::vector<FaultSpec>& parent) {
    for (const auto& w : s.faults) {
      for (const auto& p : parent) {
        if (window_eq(w, p)) return true;
      }
    }
    return false;
  };

  util::Rng rng(0x57A7B1E);
  std::size_t recombined = 0;
  for (int i = 0; i < 400; ++i) {
    const Scenario m = mutate_scenario(base, &partner, rng);
    EXPECT_TRUE(inside_envelope(m)) << format_spec(m);
    const auto parsed = parse_spec(format_spec(m));
    ASSERT_TRUE(parsed.has_value()) << format_spec(m);
    if (has_window_from(m, base.faults) &&
        has_window_from(m, partner.faults)) {
      ++recombined;
    }
  }
  EXPECT_GE(recombined, 3u)
      << "no mutants recombined fault windows from both parents";
}

TEST(FuzzMutation, DeliberatelyUnclampedScriptedMutantIsRejected) {
  // The negative half of the property: hand-build timeline violations the
  // clamp would have fixed and check inside_envelope rejects each one —
  // proving the fixpoint check has teeth, not just that mutants happen to
  // pass it.
  util::Rng rng(0xBADC0DE);
  Scenario base;  // a flooding base: scripted timelines are in-envelope
  bool found = false;
  for (std::uint64_t seed = 1; seed <= 200 && !found; ++seed) {
    base = generate_scenario(seed);
    found = base.algorithm == Algorithm::kFlooding;
  }
  ASSERT_TRUE(found);
  Scenario s = base;
  // Mutation never changes the algorithm, so every mutant stays flooding.
  for (int attempt = 0;
       attempt < 256 &&
       (s.scheduler != SchedulerKind::kScripted || s.script.empty());
       ++attempt) {
    s = mutate_scenario(s, nullptr, rng);
    // Scripted timelines are unreachable inside the log-service family
    // (its envelope owns the Network end to end); a chain that crossed in
    // restarts from the base rather than wedging there.
    if (s.log_ops > 0) s = base;
  }
  ASSERT_EQ(s.scheduler, SchedulerKind::kScripted);
  ASSERT_TRUE(inside_envelope(s));
  ASSERT_FALSE(s.script.empty());

  // Receive delay above the ack delay: violates the abstract MAC layer
  // contract (a copy delivered after its own ack).
  Scenario bad = s;
  bad.script[0].recv = bad.script[0].ack + 5;
  EXPECT_FALSE(inside_envelope(bad));

  // Ack beyond the mutation bound.
  bad = s;
  bad.script[0].ack = 100000;
  EXPECT_FALSE(inside_envelope(bad));

  // A scripted timeline on a synchronous-only algorithm: an expected
  // counterexample (Theorem 3.3), never a fuzz target.
  bad = s;
  bad.algorithm = Algorithm::kAnonymous;
  EXPECT_FALSE(inside_envelope(bad));

  // Scripted slots dangling on a non-scripted scheduler.
  bad = s;
  bad.scheduler = SchedulerKind::kUniformRandom;
  EXPECT_FALSE(inside_envelope(bad));

  // Clamping each rejected mutant re-admits it.
  clamp_to_envelope(bad);
  EXPECT_TRUE(inside_envelope(bad));
}

TEST(FuzzMutation, ScriptedMutantsRunCleanAndExerciseScriptedPaths) {
  // Scripted mutants inside their envelopes must run violation-free, and
  // the scripted scheduler really drives the runs (nonzero traffic,
  // deterministic replay from the spec line).
  util::Rng rng(2024);
  std::size_t scripted_runs = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Scenario s = generate_scenario(seed);
    for (int attempt = 0; attempt < 64 &&
                          s.scheduler != SchedulerKind::kScripted;
         ++attempt) {
      s = mutate_scenario(s, nullptr, rng);
      // Scripted timelines are unreachable inside the log-service family
      // (its envelope owns the Network end to end), so a chain that
      // crossed in restarts from the base rather than wedging there.
      if (s.log_ops > 0) s = generate_scenario(seed);
    }
    if (s.scheduler != SchedulerKind::kScripted) continue;
    ++scripted_runs;
    const RunReport r = run_scenario(s);
    EXPECT_EQ(r.failure, FailureKind::kNone)
        << format_spec(s) << "\n" << r.detail;
    EXPECT_GT(r.stats.broadcasts, 0u) << format_spec(s);
    // Spec-line replay is bit-identical (the repro contract).
    const auto replayed = parse_spec(format_spec(s));
    ASSERT_TRUE(replayed.has_value());
    EXPECT_EQ(run_scenario(*replayed).fingerprint, r.fingerprint)
        << format_spec(s);
  }
  EXPECT_GE(scripted_runs, 20u);
}

TEST(FuzzCoverage, SignatureIsStableAndDiscriminatesEnginePaths) {
  // Same scenario, same signature (bit-stable run to run).
  const Scenario s = generate_scenario(11);
  const CoverageSignature sig_a = coverage_signature(s, run_scenario(s));
  const CoverageSignature sig_b = coverage_signature(s, run_scenario(s));
  EXPECT_EQ(sig_a.key(), sig_b.key());

  // A late-hold resize scenario and a plain synchronous scenario must land
  // in different signatures (different scheduler, overflow, resize and
  // hold dimensions) — the signal that steers mutation toward rare paths.
  const auto resize_spec = parse_spec(
      "amacfuzz1:seed=43:alg=flooding:topo=clique:n=14:aux=0:sched=holdback:"
      "fack=5:late=1:in=alt:ids=perm:f=0:hz=1000000:holds=9@129,11@59,12@136");
  ASSERT_TRUE(resize_spec.has_value());
  const RunReport resize_report = run_scenario(*resize_spec);
  const CoverageSignature resize_sig =
      coverage_signature(*resize_spec, resize_report);
  EXPECT_NE(resize_sig.key(), sig_a.key());
  EXPECT_GT(resize_sig.overflow_bucket, 0);
  EXPECT_GT(resize_sig.resize_bucket, 0);
  EXPECT_TRUE(resize_sig.flags & CoverageSignature::kHasHolds);
  EXPECT_TRUE(resize_sig.flags & CoverageSignature::kLateHolds);
}

TEST(FuzzCoverage, CorpusIsBoundedAndDetectsNovelty) {
  CoverageCorpus corpus(4);
  CoverageSignature sig;
  sig.scheduler = 1;
  EXPECT_TRUE(corpus.observe(sig));
  EXPECT_FALSE(corpus.observe(sig));  // exact dedup on the packed key
  sig.overflow_bucket = 2;
  EXPECT_TRUE(corpus.observe(sig));
  EXPECT_EQ(corpus.distinct_signatures(), 2u);

  for (std::uint64_t seed = 1; seed <= 7; ++seed) {
    corpus.admit(generate_scenario(seed));
  }
  EXPECT_EQ(corpus.size(), 4u);  // bounded: ring-replaced, never grows
  // Ring replacement: seeds 5, 6, 7 overwrote slots 0, 1, 2.
  EXPECT_EQ(corpus.entry(0).seed, 5u);
  EXPECT_EQ(corpus.entry(1).seed, 6u);
  EXPECT_EQ(corpus.entry(2).seed, 7u);
  EXPECT_EQ(corpus.entry(3).seed, 4u);
}

TEST(FuzzCoverage, MutatingSoakStrictlyWidensCoverage) {
  // The acceptance property, at the CI budget: --mutate 0.5 over 2000
  // scenarios must discover strictly more distinct signatures than pure
  // generation of the same budget, while staying violation-free. Both
  // soaks are deterministic, so this can never flake.
  SoakOptions pure;
  pure.seed_base = 1;
  pure.count = 2000;
  pure.differential_every = 0;
  const SoakResult pure_result = run_soak(pure);
  ASSERT_TRUE(pure_result.ok());
  EXPECT_EQ(pure_result.mutated_runs, 0u);

  SoakOptions mutating = pure;
  mutating.mutate_ratio = 0.5;
  const SoakResult mutated_result = run_soak(mutating);
  ASSERT_TRUE(mutated_result.ok());
  EXPECT_GT(mutated_result.mutated_runs, 0u);

  EXPECT_GT(mutated_result.coverage.distinct, pure_result.coverage.distinct)
      << "mutation failed to widen signature coverage over blind generation";
  // The protocol dimension must strictly refine the engine-only (PR-4)
  // projection, and mutation must reach protocol corners pure generation
  // MISSED (a set difference, not a count comparison: replacing half the
  // generated stream with mutants can lose a pure corner for every mutant
  // corner gained, so strict count-widening flips on noise while the
  // difference stays non-empty) — the CI assertions.
  EXPECT_GT(mutated_result.coverage.distinct,
            mutated_result.coverage.engine_distinct);
  std::size_t mutant_only_protocol = 0;
  for (const std::uint64_t key : mutated_result.protocol_keys) {
    if (!pure_result.protocol_keys.contains(key)) ++mutant_only_protocol;
  }
  EXPECT_GT(mutant_only_protocol, 0u)
      << "mutation reached no protocol corner pure generation missed";
  EXPECT_GT(mutated_result.coverage.protocol_sigs, 0u);
  // The corpus digest folds every fingerprint, so the two soaks really ran
  // different scenario streams.
  EXPECT_NE(mutated_result.corpus_digest, pure_result.corpus_digest);
  // Coverage summary bookkeeping is consistent.
  EXPECT_EQ(mutated_result.coverage.distinct, mutated_result.novel_runs);
  EXPECT_LE(mutated_result.corpus.size(), mutating.corpus_max);
}

TEST(FuzzCoverage, InitialCorpusSeedsMutationBases) {
  // A soak seeded from an external corpus can mutate from the very first
  // scenario (no warm-up needed) — the --corpus-in path.
  SoakOptions options;
  options.seed_base = 1;
  options.count = 60;
  options.differential_every = 0;
  options.mutate_ratio = 1.0;
  options.initial_corpus.push_back(generate_scenario(5000));
  const SoakResult result = run_soak(options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.mutated_runs, result.runs);
}

TEST(FuzzShrinker, MinimizesHoldReleaseToExactThreshold) {
  // The schedule-space shrinking demo: a bloated Theorem 3.3-style
  // violation (anonymous min-flood, ring of 8, four held senders at
  // release 400) must shrink not only structurally but in VALUES — the
  // surviving hold release lands exactly at its reproduction threshold:
  // the violation reproduces at the shrunk release and provably does not
  // one tick below it.
  const auto scenario = parse_spec(
      "amacfuzz1:seed=1:alg=anonymous:topo=ring:n=8:aux=0:sched=holdback:"
      "fack=3:late=0:in=alt:ids=identity:f=0:hz=1000000:"
      "holds=0@400,2@400,4@400,6@400");
  ASSERT_TRUE(scenario.has_value());
  ASSERT_EQ(run_scenario(*scenario).failure, FailureKind::kAgreement);

  ShrinkOptions options;
  options.max_attempts = 400;  // room for both phases to reach fixpoint
  const ShrinkResult shrunk = shrink_scenario(
      *scenario, FailureKind::kAgreement, RunOptions{}, options);
  EXPECT_EQ(shrunk.report.failure, FailureKind::kAgreement);
  ASSERT_FALSE(shrunk.scenario.holds.empty());

  // Values were minimized, not just entries dropped.
  for (const auto& h : shrunk.scenario.holds) {
    EXPECT_LT(h.release, 400u) << format_spec(shrunk.scenario);
  }
  // Exactness: decrementing any hold release makes the violation vanish
  // (the failure is monotone in the release for this family, and the
  // binary search's final no-progress pass probed release - 1).
  for (std::size_t i = 0; i < shrunk.scenario.holds.size(); ++i) {
    if (shrunk.scenario.holds[i].release == 0) continue;
    Scenario below = shrunk.scenario;
    below.holds[i].release -= 1;
    normalize_scenario(below);
    EXPECT_NE(run_scenario(below).failure, FailureKind::kAgreement)
        << "hold " << i << " of " << format_spec(shrunk.scenario)
        << " is not at its threshold";
  }
  // The minimal spec still replays to the same violation.
  const auto replayed = parse_spec(format_spec(shrunk.scenario));
  ASSERT_TRUE(replayed.has_value());
  EXPECT_EQ(run_scenario(*replayed).failure, FailureKind::kAgreement);
}

TEST(FuzzShrinker, ValueMinimizationCanBePinnedOff) {
  // minimize_values = false reproduces the structural-only PR-2 shrinker
  // (useful when a value sweep is too expensive for a huge repro).
  const auto scenario = parse_spec(
      "amacfuzz1:seed=1:alg=anonymous:topo=line:n=2:aux=0:sched=holdback:"
      "fack=2:late=0:in=split:ids=identity:f=0:hz=1000000:holds=0@300");
  ASSERT_TRUE(scenario.has_value());
  ASSERT_EQ(run_scenario(*scenario).failure, FailureKind::kAgreement);

  ShrinkOptions structural_only;
  structural_only.minimize_values = false;
  const ShrinkResult shrunk = shrink_scenario(
      *scenario, FailureKind::kAgreement, RunOptions{}, structural_only);
  EXPECT_EQ(shrunk.report.failure, FailureKind::kAgreement);
  // fack can still fall (structural candidates halve it) but the hold
  // release is untouched by the structural phase.
  ASSERT_EQ(shrunk.scenario.holds.size(), 1u);
  EXPECT_EQ(shrunk.scenario.holds[0].release, 300u);
}

}  // namespace
}  // namespace amac::fuzz
