// wPAXOS under crash failures. The paper assumes no crashes (Theorem 3.2
// makes deterministic crash-tolerant consensus impossible); these tests
// characterize HOW the algorithm fails and what it still guarantees:
//   * safety survives any crash pattern (Paxos's safety never relied on
//     liveness assumptions);
//   * a crash of the eventual LEADER (the max id) halts progress — the
//     max-id election can never move off a dead node;
//   * a minority of non-leader crashes is often survivable in practice:
//     Paxos needs only a majority of acceptors (the paper's §1 motivation
//     for choosing PAXOS logic: "not slowed if a small portion of the
//     network is delayed").
#include <gtest/gtest.h>

#include "core/wpaxos/wpaxos.hpp"
#include "harness/experiment.hpp"
#include "net/topologies.hpp"

namespace amac::core::wpaxos {
namespace {

TEST(WPaxosCrashes, LeaderCrashHaltsProgressButStaysSafe) {
  const std::size_t n = 7;
  const auto g = net::make_clique(n);
  const auto inputs = harness::inputs_alternating(n);
  const auto ids = harness::identity_ids(n);  // leader = node 6
  mac::UniformRandomScheduler sched(3, 11);
  mac::Network net(g, harness::wpaxos_factory(inputs, ids), sched);
  net.schedule_crash(mac::CrashPlan{6, 2});  // kill the max id early
  const auto result = net.run(mac::StopWhen::kAllDecided, 100'000);
  EXPECT_FALSE(result.condition_met) << "max-id election cannot recover";
  const auto verdict = verify::check_consensus(net, inputs);
  EXPECT_TRUE(verdict.agreement);  // safety intact regardless
}

TEST(WPaxosCrashes, MinorityNonLeaderCrashesOftenSurvivable) {
  // Acceptor majorities tolerate minority silence: with the leader alive,
  // the protocol completes for the survivors.
  const std::size_t n = 7;
  const auto g = net::make_clique(n);
  const auto inputs = harness::inputs_alternating(n);
  const auto ids = harness::identity_ids(n);
  mac::UniformRandomScheduler sched(3, 13);
  mac::Network net(g, harness::wpaxos_factory(inputs, ids), sched);
  net.schedule_crash(mac::CrashPlan{0, 2});
  net.schedule_crash(mac::CrashPlan{1, 5});
  const auto result = net.run(mac::StopWhen::kAllDecided, 1'000'000);
  EXPECT_TRUE(result.condition_met);
  const auto verdict = verify::check_consensus(net, inputs);
  EXPECT_TRUE(verdict.ok()) << verdict.summary();
}

TEST(WPaxosCrashes, MultihopCutVertexCrashStallsSafely) {
  // A crash can also partition a multihop topology outright: the barbell's
  // bridge node dies and no majority can ever assemble. Safety must hold.
  const auto g = net::make_barbell(4, 2);  // bridge interior is a cut vertex
  const std::size_t n = g.node_count();
  const auto inputs = harness::inputs_split(n);
  const auto ids = harness::identity_ids(n);
  mac::UniformRandomScheduler sched(2, 17);
  mac::Network net(g, harness::wpaxos_factory(inputs, ids), sched);
  net.schedule_crash(mac::CrashPlan{4, 1});  // the path node
  const auto result = net.run(mac::StopWhen::kAllDecided, 100'000);
  const auto verdict = verify::check_consensus(net, inputs);
  EXPECT_TRUE(verdict.agreement) << verdict.summary();
  (void)result;  // either outcome is legal; agreement is the claim
}

TEST(WPaxosCrashes, SafetySweepUnderRandomCrashPatterns) {
  util::Rng rng(12345);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 5 + rng.uniform(0, 6);
    const auto g = net::make_random_connected(n, 0.3, rng);
    const auto inputs = harness::inputs_random(n, rng);
    const auto ids = harness::permuted_ids(n, rng);
    mac::UniformRandomScheduler sched(1 + rng.uniform(0, 4), rng());
    mac::Network net(g, harness::wpaxos_factory(inputs, ids), sched);
    const auto crashes = rng.uniform(1, n / 2);
    std::set<NodeId> victims;
    while (victims.size() < crashes) {
      victims.insert(static_cast<NodeId>(rng.uniform(0, n - 1)));
    }
    for (const NodeId v : victims) {
      net.schedule_crash(mac::CrashPlan{v, rng.uniform(0, 50)});
    }
    net.run(mac::StopWhen::kAllDecided, 200'000);
    const auto verdict = verify::check_consensus(net, inputs);
    // Liveness may or may not survive; agreement and validity must.
    EXPECT_TRUE(verdict.agreement) << "trial " << trial;
    bool any_decided = false;
    for (NodeId u = 0; u < n; ++u) {
      if (net.decision(u).decided) any_decided = true;
    }
    if (any_decided) {
      EXPECT_TRUE(verdict.validity) << "trial " << trial;
    }
  }
}

}  // namespace
}  // namespace amac::core::wpaxos
