// Property-based test suite for CalendarQueue: randomized push/pop
// interleavings (seeded util::Rng) checked step by step against a
// std::priority_queue oracle ordered by the same (t, kind, seq) contract.
//
// Coverage targets, each also hit by a dedicated deterministic test:
//   * wheel wrap-around (the cursor circles the power-of-two ring many
//     times over);
//   * overflow promotion (far-future events heap first, migrate into the
//     wheel when the cursor rebases onto them);
//   * self-resize under load (sustained overflow pressure rebuilds the
//     wheel mid-interleaving; order must be oracle-identical across the
//     rebuild) and the disabled-resize fallback;
//   * the batch push fast path (push_batch + in-place fill vs per-event
//     pushes);
//   * FIFO tie-break at equal timestamps (seq order within a kind, kind
//     lanes at one tick).
#include <gtest/gtest.h>

#include <queue>
#include <utility>
#include <vector>

#include "mac/calendar_queue.hpp"
#include "util/rng.hpp"

namespace amac::mac {
namespace {

using Oracle = std::priority_queue<Event, std::vector<Event>, EventAfter>;

void expect_same_event(const Event& got, const Event& want) {
  ASSERT_EQ(got.t, want.t);
  ASSERT_EQ(got.kind, want.kind);
  ASSERT_EQ(got.seq, want.seq);
}

/// Pops both queues until empty, demanding identical order.
void drain_and_compare(CalendarQueue& q, Oracle& ref) {
  while (!q.empty()) {
    ASSERT_FALSE(ref.empty());
    const Event got = q.pop();
    expect_same_event(got, ref.top());
    ref.pop();
  }
  EXPECT_TRUE(ref.empty());
  EXPECT_EQ(q.size(), 0u);
}

/// One randomized interleaving trial. `far_chance` controls how often a
/// push lands beyond the wheel window (overflow + resize pressure);
/// `far_range` is the horizon of those pushes.
void run_interleaving_trial(util::Rng& rng, Time horizon_hint,
                            double far_chance, Time far_lo, Time far_hi,
                            bool resize_enabled, int steps) {
  CalendarQueue q(horizon_hint);
  q.set_resize_enabled(resize_enabled);
  Oracle ref;
  std::uint64_t seq = 0;
  Time now = 0;
  const auto push_random = [&] {
    Event e;
    e.t = now + (rng.chance(far_chance) ? rng.uniform(far_lo, far_hi)
                                        : rng.uniform(0, 15));
    e.kind = static_cast<EventKind>(rng.uniform(0, 2));
    e.seq = seq++;
    e.node = static_cast<NodeId>(rng.uniform(0, 7));
    q.push(e);
    ref.push(e);
  };
  for (int i = 0; i < 8; ++i) push_random();
  for (int step = 0; step < steps; ++step) {
    if (!q.empty() && rng.chance(0.55)) {
      ASSERT_FALSE(ref.empty());
      const Time peek = q.next_time();
      const Event got = q.pop();
      ASSERT_EQ(got.t, peek);
      expect_same_event(got, ref.top());
      ref.pop();
      now = got.t;
    } else {
      push_random();
    }
  }
  drain_and_compare(q, ref);
  if (!resize_enabled) EXPECT_EQ(q.resizes(), 0u);
}

// --- randomized interleavings vs the oracle ------------------------------

TEST(CalendarQueueProperty, NearHorizonInterleavingsMatchOracle) {
  util::Rng rng(0xA11CE);
  for (int trial = 0; trial < 20; ++trial) {
    run_interleaving_trial(rng, rng.uniform(1, 12), 0.08, 3000, 9000,
                           /*resize_enabled=*/true, 2500);
  }
}

TEST(CalendarQueueProperty, HeavyOverflowPressureTriggersResizeMidRun) {
  // 35% of pushes land ~2000-4000 ticks out against a tiny wheel: the
  // resizable-overflow counter crosses its threshold mid-interleaving, the
  // wheel rebuilds under load, and order must stay oracle-identical.
  util::Rng rng(0xBEEF);
  for (int trial = 0; trial < 10; ++trial) {
    CalendarQueue q(4);
    Oracle ref;
    std::uint64_t seq = 0;
    Time now = 0;
    for (int step = 0; step < 4000; ++step) {
      if (!q.empty() && rng.chance(0.5)) {
        const Event got = q.pop();
        expect_same_event(got, ref.top());
        ref.pop();
        now = got.t;
      } else {
        Event e;
        e.t = now + (rng.chance(0.35) ? rng.uniform(2000, 4000)
                                      : rng.uniform(0, 7));
        e.kind = static_cast<EventKind>(rng.uniform(0, 2));
        e.seq = seq++;
        q.push(e);
        ref.push(e);
      }
    }
    EXPECT_GE(q.resizes(), 1u);
    EXPECT_GT(q.overflow_pushes(), 0u);
    EXPECT_GT(q.span(), 16u);  // grew past the hint-derived initial span
    drain_and_compare(q, ref);
  }
}

TEST(CalendarQueueProperty, ResizeCapsAtMaxWheelAndStaysCorrect) {
  // Drives the self-resize all the way to its 64k-bucket cap
  // (kMaxResizedWheel = 1 << 16) — the regime a 4096-node soak's far
  // timers live in — and keeps checking order against the oracle across
  // the rebuild. Far pushes land ~26k-31k ticks out: resizable (under
  // kMaxResizedWheel / 2), and 2*horizon + 4 overshoots the cap, so the
  // one resize jumps straight to exactly 65536 buckets. Very-far pushes
  // (70k-90k ticks) have non-resizable horizons: they must stay on the
  // overflow heap without re-triggering a resize, and still pop in order
  // once the cursor rebases onto them.
  util::Rng rng(0xCA11DA);
  CalendarQueue q(4);
  Oracle ref;
  std::uint64_t seq = 0;
  Time now = 0;
  for (int step = 0; step < 12000; ++step) {
    if (!q.empty() && rng.chance(0.5)) {
      const Event got = q.pop();
      expect_same_event(got, ref.top());
      ref.pop();
      now = got.t;
    } else {
      Event e;
      if (rng.chance(0.2)) {
        e.t = now + rng.uniform(26000, 31000);
      } else if (rng.chance(0.05)) {
        e.t = now + rng.uniform(70000, 90000);
      } else {
        e.t = now + rng.uniform(0, 7);
      }
      e.kind = static_cast<EventKind>(rng.uniform(0, 2));
      e.seq = seq++;
      q.push(e);
      ref.push(e);
    }
  }
  EXPECT_GE(q.resizes(), 1u);
  EXPECT_EQ(q.span(), 65536u);  // capped exactly at kMaxResizedWheel
  EXPECT_GT(q.overflow_pushes(), 0u);
  drain_and_compare(q, ref);
}

TEST(CalendarQueueProperty, DisabledResizeStaysOnOverflowHeapAndCorrect) {
  util::Rng rng(0xD15AB1E);
  for (int trial = 0; trial < 8; ++trial) {
    run_interleaving_trial(rng, 4, 0.35, 2000, 4000,
                           /*resize_enabled=*/false, 3000);
  }
}

TEST(CalendarQueueProperty, BatchPushMatchesPerEventPushes) {
  // Same stream pushed via push_batch (where in-window) into one queue and
  // per-event into another: identical pop order, and both match the oracle.
  util::Rng rng(0xBA7C4);
  for (int trial = 0; trial < 10; ++trial) {
    CalendarQueue batched(8);
    CalendarQueue plain(8);
    Oracle ref;
    std::uint64_t seq = 0;
    Time now = 0;
    for (int step = 0; step < 1500; ++step) {
      if (!batched.empty() && rng.chance(0.45)) {
        const Event a = batched.pop();
        const Event b = plain.pop();
        expect_same_event(a, b);
        expect_same_event(a, ref.top());
        ref.pop();
        now = a.t;
      } else {
        // A uniform fan-out: `count` events sharing one tick and kind,
        // consecutive seq values.
        const std::size_t count = rng.uniform(1, 6);
        Event e;
        e.t = now + (rng.chance(0.1) ? rng.uniform(500, 900)
                                     : rng.uniform(0, 12));
        e.kind = static_cast<EventKind>(rng.uniform(0, 2));
        Event* span = batched.push_batch(e.t, e.kind, count);
        for (std::size_t i = 0; i < count; ++i) {
          e.seq = seq++;
          e.node = static_cast<NodeId>(i);
          if (span != nullptr) {
            span[i] = e;
          } else {
            batched.push(e);  // beyond the window: overflow fallback
          }
          plain.push(e);
          ref.push(e);
        }
      }
    }
    while (!batched.empty()) {
      const Event a = batched.pop();
      const Event b = plain.pop();
      expect_same_event(a, b);
      expect_same_event(a, ref.top());
      ref.pop();
    }
    EXPECT_TRUE(plain.empty());
    EXPECT_TRUE(ref.empty());
  }
}

// --- deterministic corner cases ------------------------------------------

TEST(CalendarQueueProperty, WheelWrapAroundManyRevolutions) {
  // A 16-bucket wheel (hint 4 => span 16) driven 4096 ticks forward: the
  // cursor wraps the ring hundreds of times; every tick's events pop in
  // push order.
  CalendarQueue q(4);
  Oracle ref;
  std::uint64_t seq = 0;
  for (Time now = 0; now < 4096; now += 3) {
    for (Time d = 1; d <= 5; ++d) {
      Event e;
      e.t = now + d;
      e.kind = EventKind::kDeliver;
      e.seq = seq++;
      q.push(e);
      ref.push(e);
    }
    // Drain everything due strictly before the next batch's base.
    while (!q.empty() && q.next_time() < now + 3) {
      const Event got = q.pop();
      expect_same_event(got, ref.top());
      ref.pop();
    }
  }
  drain_and_compare(q, ref);
  EXPECT_EQ(q.overflow_pushes(), 0u);  // everything stayed in-window
}

TEST(CalendarQueueProperty, OverflowPromotionPreservesSeqInterleave) {
  // Far events pushed early (low seq) must, after migrating into the
  // wheel, pop BEFORE same-tick same-kind events pushed later (higher
  // seq): the migration insert-by-seq path.
  CalendarQueue q(4);  // span 16
  q.set_resize_enabled(false);
  std::uint64_t seq = 0;
  for (int i = 0; i < 5; ++i) {
    Event e;
    e.t = 1000;
    e.kind = EventKind::kDeliver;
    e.seq = seq++;  // seqs 0..4 into the overflow heap
    q.push(e);
  }
  Event near;
  near.t = 2;
  near.kind = EventKind::kDeliver;
  near.seq = seq++;
  q.push(near);
  EXPECT_EQ(q.pop().t, 2u);
  // Cursor rebases onto t=1000; now push MORE events at the same tick.
  EXPECT_EQ(q.next_time(), 1000u);
  for (int i = 0; i < 3; ++i) {
    Event e;
    e.t = 1000;
    e.kind = EventKind::kDeliver;
    e.seq = seq++;  // seqs 6..8, appended to the already-migrated bucket
    q.push(e);
  }
  for (std::uint64_t want : {0u, 1u, 2u, 3u, 4u, 6u, 7u, 8u}) {
    ASSERT_EQ(q.pop().seq, want);
  }
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueueProperty, FifoTieBreakAtEqualTimestamps) {
  // One tick, all three kinds interleaved in push order: pops must give
  // deliveries, then acks, then crashes, each in FIFO (seq) order.
  CalendarQueue q(8);
  std::uint64_t seq = 0;
  const EventKind pattern[] = {EventKind::kAck,     EventKind::kDeliver,
                               EventKind::kCrash,   EventKind::kDeliver,
                               EventKind::kAck,     EventKind::kDeliver,
                               EventKind::kCrash,   EventKind::kAck};
  for (const EventKind k : pattern) {
    Event e;
    e.t = 5;
    e.kind = k;
    e.seq = seq++;
    q.push(e);
  }
  const std::pair<EventKind, std::uint64_t> want[] = {
      {EventKind::kDeliver, 1}, {EventKind::kDeliver, 3},
      {EventKind::kDeliver, 5}, {EventKind::kAck, 0},
      {EventKind::kAck, 4},     {EventKind::kAck, 7},
      {EventKind::kCrash, 2},   {EventKind::kCrash, 6},
  };
  for (const auto& [kind, s] : want) {
    const Event got = q.pop();
    ASSERT_EQ(got.kind, kind);
    ASSERT_EQ(got.seq, s);
  }
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueueProperty, ResizeCarriesPendingEventsExactlyOnce) {
  // Deterministic resize-under-load: fill the wheel AND enough resizable
  // overflow to trip the rebuild, then drain; each event pops exactly once
  // in (t, kind, seq) order.
  CalendarQueue q(2);  // span 8
  Oracle ref;
  std::uint64_t seq = 0;
  const auto push_at = [&](Time t, EventKind k) {
    Event e;
    e.t = t;
    e.kind = k;
    e.seq = seq++;
    q.push(e);
    ref.push(e);
  };
  for (Time t = 1; t <= 7; ++t) push_at(t, EventKind::kDeliver);  // in-wheel
  for (int i = 0; i < 40; ++i) {  // far: trips the 32-push trigger
    push_at(100 + static_cast<Time>(i), EventKind::kDeliver);
    push_at(100 + static_cast<Time>(i), EventKind::kAck);
  }
  EXPECT_GE(q.resizes(), 1u);
  EXPECT_EQ(q.size(), 7u + 80u);
  drain_and_compare(q, ref);
}

TEST(CalendarQueueProperty, SentinelHorizonsNeverTriggerResize) {
  // kForever-style sentinels are not resizable pressure: pushing many must
  // leave the wheel span alone (the heap owns them).
  CalendarQueue q(4);
  const Time initial_span = q.span();
  std::uint64_t seq = 0;
  for (int i = 0; i < 100; ++i) {
    Event e;
    e.t = kForever - static_cast<Time>(i);
    e.kind = EventKind::kCrash;
    e.seq = seq++;
    q.push(e);
  }
  EXPECT_EQ(q.resizes(), 0u);
  EXPECT_EQ(q.span(), initial_span);
  EXPECT_EQ(q.overflow_pushes(), 100u);
}

}  // namespace
}  // namespace amac::mac
