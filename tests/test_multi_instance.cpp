// Instance-multiplexing isolation (design doc: "Instance multiplexing" in
// mac/engine.hpp): instances share one Network — event queue, payload
// pool, sequence numbers — but must not be able to OBSERVE each other.
// Two pins:
//   * interleaved-vs-solo: each instance of a multiplexed run produces
//     bit-identical per-instance observables (decisions, process digests,
//     traffic stats) to the same protocol run alone on an identical
//     network. Deterministic schedulers only — sharing one RNG-driven
//     scheduler interleaves the draws by construction.
//   * engine differential: the calendar-queue engine and the frozen
//     reference-heap engine agree on every per-instance observable of a
//     multi-instance run (the single-instance differential is already
//     pinned by the fuzz soak; this extends it to >= 2 instances).
#include <gtest/gtest.h>

#include "core/commit_flood.hpp"
#include "core/wpaxos/wpaxos.hpp"
#include "mac/engine.hpp"
#include "mac/reference_engine.hpp"
#include "mac/schedulers.hpp"
#include "net/topologies.hpp"
#include "util/hash.hpp"
#include "verify/checker.hpp"

namespace amac::mac {
namespace {

ProcessFactory wpaxos_factory(std::size_t n, Value value) {
  return [n, value](NodeId u) {
    return std::make_unique<core::wpaxos::WPaxos>(u, n, value, core::wpaxos::WPaxosConfig{});
  };
}

ProcessFactory commit_flood_factory(NodeId leader, Value value) {
  return [leader, value](NodeId u) {
    return std::make_unique<core::CommitFlood>(u == leader, value);
  };
}

std::uint64_t process_digest(const Process& p) {
  util::Hasher h;
  p.digest(h);
  return h.digest();
}

/// The engine-independent traffic fields of an instance's stats (the pool
/// fields are engine-specific bookkeeping: zero on ReferenceNetwork).
struct TrafficStats {
  std::uint64_t broadcasts, dropped_busy, deliveries, acks, payload_bytes;
  std::size_t max_payload_bytes;

  explicit TrafficStats(const InstanceStats& s)
      : broadcasts(s.broadcasts), dropped_busy(s.dropped_busy),
        deliveries(s.deliveries), acks(s.acks),
        payload_bytes(s.payload_bytes),
        max_payload_bytes(s.max_payload_bytes) {}

  bool operator==(const TrafficStats& o) const {
    return broadcasts == o.broadcasts && dropped_busy == o.dropped_busy &&
           deliveries == o.deliveries && acks == o.acks &&
           payload_bytes == o.payload_bytes &&
           max_payload_bytes == o.max_payload_bytes;
  }
};

/// Everything a tenant can observe about its own instance.
template <typename Net>
void expect_instance_equal(const Net& a, InstanceId ia, const Net& b,
                           InstanceId ib, std::size_t n) {
  for (NodeId u = 0; u < n; ++u) {
    const Decision& da = a.decision(u, ia);
    const Decision& db = b.decision(u, ib);
    EXPECT_EQ(da.decided, db.decided) << "node " << u;
    EXPECT_EQ(da.value, db.value) << "node " << u;
    EXPECT_EQ(da.time, db.time) << "node " << u;
    EXPECT_EQ(process_digest(a.process(u, ia)), process_digest(b.process(u, ib)))
        << "node " << u;
  }
  EXPECT_TRUE(TrafficStats(a.instance_stats(ia)) ==
              TrafficStats(b.instance_stats(ib)));
}

TEST(MultiInstance, InterleavedInstancesMatchSoloRuns) {
  const std::size_t n = 8;
  const net::Graph graph = net::make_clique(n);

  // Three tenants with deliberately different traffic shapes: two wPAXOS
  // instances with different values and a CommitFlood burst.
  const std::vector<ProcessFactory> tenants = {
      wpaxos_factory(n, 3), wpaxos_factory(n, 7),
      commit_flood_factory(/*leader=*/2, 42)};

  SynchronousScheduler interleaved_sched(1);
  Network interleaved(graph, tenants[0], interleaved_sched);
  for (std::size_t i = 1; i < tenants.size(); ++i) {
    interleaved.add_instance(tenants[i]);
  }
  ASSERT_EQ(interleaved.instance_count(), tenants.size());
  // Run to quiescence, not kAllDecided: the multiplexed run keeps serving
  // a fast tenant's in-flight events while slower tenants finish, so only
  // the drained totals are comparable to a solo run's.
  const auto r = interleaved.run(StopWhen::kQuiescent, 10000);
  ASSERT_TRUE(r.condition_met);

  for (std::size_t i = 0; i < tenants.size(); ++i) {
    SynchronousScheduler solo_sched(1);
    Network solo(graph, tenants[i], solo_sched);
    ASSERT_TRUE(solo.run(StopWhen::kQuiescent, 10000).condition_met);
    expect_instance_equal(interleaved, static_cast<InstanceId>(i), solo, 0,
                          n);
  }
}

TEST(MultiInstance, EngineMatchesReferenceAcrossInstances) {
  const std::size_t n = 6;
  const net::Graph graph = net::make_ring(n);
  const std::vector<ProcessFactory> tenants = {
      wpaxos_factory(n, 11), commit_flood_factory(/*leader=*/0, 5),
      wpaxos_factory(n, 2)};

  SynchronousScheduler sched_a(2);
  Network engine(graph, tenants[0], sched_a);
  SynchronousScheduler sched_b(2);
  ReferenceNetwork reference(graph, tenants[0], sched_b);
  for (std::size_t i = 1; i < tenants.size(); ++i) {
    EXPECT_EQ(engine.add_instance(tenants[i]),
              reference.add_instance(tenants[i]));
  }
  ASSERT_TRUE(engine.run(StopWhen::kAllDecided, 10000).condition_met);
  ASSERT_TRUE(reference.run(StopWhen::kAllDecided, 10000).condition_met);

  for (std::size_t i = 0; i < tenants.size(); ++i) {
    const auto instance = static_cast<InstanceId>(i);
    for (NodeId u = 0; u < n; ++u) {
      const Decision& de = engine.decision(u, instance);
      const Decision& dr = reference.decision(u, instance);
      EXPECT_EQ(de.decided, dr.decided);
      EXPECT_EQ(de.value, dr.value);
      EXPECT_EQ(de.time, dr.time);
      EXPECT_EQ(process_digest(engine.process(u, instance)),
                process_digest(reference.process(u, instance)));
    }
    EXPECT_TRUE(TrafficStats(engine.instance_stats(instance)) ==
                TrafficStats(reference.instance_stats(instance)));
  }
}

TEST(MultiInstance, PerInstanceOracleJudgesEachSlotIndependently) {
  const std::size_t n = 5;
  const net::Graph graph = net::make_clique(n);
  SynchronousScheduler sched(1);
  Network net(graph, wpaxos_factory(n, 9), sched);
  net.add_instance(wpaxos_factory(n, 4));
  ASSERT_TRUE(net.run(StopWhen::kAllDecided, 10000).condition_met);

  const auto v0 = verify::check_consensus(net, 0, std::vector<Value>(n, 9));
  const auto v1 = verify::check_consensus(net, 1, std::vector<Value>(n, 4));
  EXPECT_TRUE(v0.ok());
  EXPECT_TRUE(v1.ok());
  EXPECT_EQ(v0.decision, std::optional<Value>(9));
  EXPECT_EQ(v1.decision, std::optional<Value>(4));
}

TEST(MultiInstance, PoolAccountingDrainsPerInstance) {
  const std::size_t n = 8;
  const net::Graph graph = net::make_clique(n);
  SynchronousScheduler sched(1);
  Network net(graph, wpaxos_factory(n, 1), sched);
  const InstanceId second = net.add_instance(commit_flood_factory(3, 2));
  ASSERT_TRUE(net.run(StopWhen::kQuiescent, 10000).condition_met);

  for (InstanceId i = 0; i <= second; ++i) {
    const InstanceStats& s = net.instance_stats(i);
    EXPECT_GT(s.broadcasts, 0u) << "instance " << i;
    EXPECT_GT(s.peak_pool_slots, 0u) << "instance " << i;
    // Quiescent: every flight landed, so each instance's pool share is
    // fully returned — leak detection per tenant, not just globally.
    EXPECT_EQ(s.live_pool_slots, 0u) << "instance " << i;
    EXPECT_EQ(s.live_pool_bytes, 0u) << "instance " << i;
  }
}

TEST(MultiInstance, RetiredInstanceKeepsDecisionsAndStatsReadable) {
  const std::size_t n = 4;
  const net::Graph graph = net::make_clique(n);
  SynchronousScheduler sched(1);
  Network net(graph, commit_flood_factory(1, 77), sched);
  const InstanceId live = net.add_instance(wpaxos_factory(n, 8));
  ASSERT_TRUE(net.run(StopWhen::kAllDecided, 10000).condition_met);

  const std::uint64_t broadcasts_before = net.instance_stats(0).broadcasts;
  net.retire_instance(0);
  for (NodeId u = 0; u < n; ++u) {
    EXPECT_TRUE(net.decision(u, 0).decided);
    EXPECT_EQ(net.decision(u, 0).value, 77);
  }
  EXPECT_EQ(net.instance_stats(0).broadcasts, broadcasts_before);
  // The surviving tenant is untouched.
  for (NodeId u = 0; u < n; ++u) {
    EXPECT_EQ(net.decision(u, live).value, 8);
  }
}

TEST(MultiInstance, MidRunInstanceLaunchesAtCurrentTickAndDecides) {
  const std::size_t n = 6;
  const net::Graph graph = net::make_clique(n);
  SynchronousScheduler sched(1);
  Network net(graph, wpaxos_factory(n, 5), sched);

  // Launch a second tenant from inside the run, the moment the first one
  // fully decides (the ReplicatedLog pipelining primitive).
  InstanceId second = 0;
  bool launched = false;
  net.set_post_event_hook([&](Network& inner) {
    if (!launched && inner.instance_all_decided(0)) {
      launched = true;
      second = inner.add_instance(commit_flood_factory(0, 123));
    }
  });
  ASSERT_TRUE(net.run(StopWhen::kAllDecided, 10000).condition_met);
  ASSERT_TRUE(launched);

  const Time first_decided = net.decision(0, 0).time;
  for (NodeId u = 0; u < n; ++u) {
    EXPECT_TRUE(net.decision(u, second).decided);
    EXPECT_EQ(net.decision(u, second).value, 123);
    // The late tenant's timeline starts where the run already was.
    EXPECT_GE(net.decision(u, second).time, first_decided);
  }
}

}  // namespace
}  // namespace amac::mac
