// The replicated log (src/log): slotted consensus instances + deterministic
// state machine = one linearized op stream, however the slots were batched,
// leased, pipelined, recovered, or re-elected.
#include <gtest/gtest.h>

#include <algorithm>

#include "log/replicated_log.hpp"
#include "mac/schedulers.hpp"
#include "net/topologies.hpp"

namespace amac::log {
namespace {

constexpr std::uint64_t kSeed = 0xFEED5EED;

/// Nearest-rank percentile over a copy (the bench uses the same rule).
mac::Time percentile(std::vector<mac::Time> v, double p) {
  EXPECT_FALSE(v.empty());
  std::sort(v.begin(), v.end());
  const auto rank = static_cast<std::size_t>(p * static_cast<double>(v.size()));
  return v[std::min(rank, v.size() - 1)];
}

LogServiceStats drive_service(const net::Graph& graph,
                              const Workload& workload,
                              const LogConfig& config, KvStateMachine* kv,
                              mac::Time horizon = mac::Time{1} << 32) {
  mac::SynchronousScheduler sched(1);
  ReplicatedLog service(graph, sched, workload, config);
  LogServiceStats stats = service.drive(horizon);
  if (kv != nullptr) *kv = service.state_machine();
  return stats;
}

TEST(LogWorkload, IsDeterministicAndSeedSensitive) {
  const Workload a(kSeed, 100);
  const Workload b(kSeed, 100);
  const Workload c(kSeed + 1, 100);
  bool any_diff = false;
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a.op(i).key, b.op(i).key);
    EXPECT_EQ(a.op(i).value, b.op(i).value);
    any_diff |= a.op(i).key != c.op(i).key || a.op(i).value != c.op(i).value;
    EXPECT_LT(a.op(i).key, 1024u);  // default key space
  }
  EXPECT_TRUE(any_diff);
}

TEST(LogKvStateMachine, DigestPinsOpsAndOrder) {
  const Workload w(kSeed, 4);
  KvStateMachine in_order;
  for (std::size_t i = 0; i < 4; ++i) in_order.apply(i, w.op(i));

  KvStateMachine same;
  for (std::size_t i = 0; i < 4; ++i) same.apply(i, w.op(i));
  EXPECT_EQ(in_order.digest(), same.digest());
  EXPECT_EQ(in_order.applied(), 4u);

  // A different stream (same length) folds to a different digest.
  const Workload other(kSeed + 9, 4);
  KvStateMachine different;
  for (std::size_t i = 0; i < 4; ++i) different.apply(i, other.op(i));
  EXPECT_NE(in_order.digest(), different.digest());

  // Reads hit the table the ops built.
  EXPECT_EQ(in_order.get(w.op(3).key), w.op(3).value);
}

TEST(LogService, BatchedAndNaiveLinearizeIdentically) {
  const net::Graph graph = net::make_clique(8);
  const Workload workload(kSeed, 256);

  LogConfig batched;
  batched.batch_size = 8;
  batched.window = 4;
  batched.lease_slots = 8;
  KvStateMachine batched_kv;
  const auto bs = drive_service(graph, workload, batched, &batched_kv);
  EXPECT_TRUE(bs.complete);
  EXPECT_EQ(bs.oracle_failures, 0u);
  EXPECT_EQ(bs.ops_applied, 256u);
  EXPECT_EQ(bs.slots_total, 32u);
  EXPECT_EQ(bs.slots_full_paxos, 4u);   // slots 0, 8, 16, 24
  EXPECT_EQ(bs.slots_leased, 28u);
  EXPECT_EQ(bs.slots_recovered, 0u);

  LogConfig naive;
  naive.batch_size = 1;
  naive.window = 4;
  naive.lease_slots = 1;
  KvStateMachine naive_kv;
  const auto ns = drive_service(graph, workload, naive, &naive_kv);
  EXPECT_TRUE(ns.complete);
  EXPECT_EQ(ns.oracle_failures, 0u);
  EXPECT_EQ(ns.slots_total, 256u);
  EXPECT_EQ(ns.slots_leased, 0u);

  // THE service-level pin: identical client stream => identical state
  // machine, no matter how the log was slotted.
  EXPECT_EQ(batched_kv.digest(), naive_kv.digest());
  EXPECT_EQ(batched_kv.applied(), naive_kv.applied());

  // And the lease amortization is visible in virtual time too, not just
  // wall clock: fewer, cheaper slots must finish the same stream sooner.
  EXPECT_LT(bs.end_time, ns.end_time);
}

TEST(LogService, LeaseAmortizesBroadcastsPerOp) {
  const net::Graph graph = net::make_clique(8);
  const Workload workload(kSeed, 256);

  LogConfig leased;
  leased.batch_size = 1;  // isolate the lease: same slot count...
  leased.lease_slots = 64;
  const auto ls = drive_service(graph, workload, leased, nullptr);

  LogConfig unleased;
  unleased.batch_size = 1;  // ...vs full wPAXOS for every slot
  unleased.lease_slots = 1;
  const auto us = drive_service(graph, workload, unleased, nullptr);

  ASSERT_TRUE(ls.complete);
  ASSERT_TRUE(us.complete);
  // CommitFlood is one dissemination wave (n broadcasts per slot);
  // wPAXOS's proposer/acceptor exchange is a multiple of that.
  EXPECT_LT(ls.broadcasts, us.broadcasts / 2);
  EXPECT_LT(ls.payload_bytes, us.payload_bytes);
}

TEST(LogService, PipeliningKeepsWindowSlotsInFlight) {
  const net::Graph graph = net::make_clique(6);
  const Workload workload(kSeed, 64);

  LogConfig wide;
  wide.batch_size = 4;
  wide.window = 4;
  wide.lease_slots = 4;
  const auto ws = drive_service(graph, workload, wide, nullptr);

  LogConfig serial = wide;
  serial.window = 1;
  const auto ss = drive_service(graph, workload, serial, nullptr);

  ASSERT_TRUE(ws.complete);
  ASSERT_TRUE(ss.complete);
  EXPECT_LT(ws.end_time, ss.end_time);  // overlap must buy virtual time
}

TEST(LogService, RecoversWhenLeaseHolderCrashes) {
  const std::size_t n = 8;
  const net::Graph graph = net::make_clique(n);
  const Workload workload(kSeed, 64);

  LogConfig config;
  config.batch_size = 4;
  config.window = 2;
  config.lease_slots = 16;
  // Node n-1 holds the lease (max-id Omega winner under identity ids).
  // Crash it early: every leased slot launched after the crash has no
  // originator, stalls the queue, and must be recovered onto the full
  // wPAXOS slow path.
  config.crashes.push_back(mac::CrashPlan{static_cast<NodeId>(n - 1), 3});
  KvStateMachine crashed_kv;
  const auto cs = drive_service(graph, workload, config, &crashed_kv);

  EXPECT_TRUE(cs.complete);
  EXPECT_EQ(cs.oracle_failures, 0u);
  EXPECT_EQ(cs.ops_applied, 64u);
  EXPECT_GT(cs.slots_recovered, 0u);

  // The crash changes the path every slot takes, not the decided log: a
  // crash-free naive service over the same stream applies the same ops.
  LogConfig clean;
  clean.batch_size = 1;
  clean.lease_slots = 1;
  KvStateMachine clean_kv;
  const auto qs = drive_service(graph, workload, clean, &clean_kv);
  ASSERT_TRUE(qs.complete);
  EXPECT_EQ(crashed_kv.digest(), clean_kv.digest());
}

TEST(LogService, ReElectsLeaderAfterCrashAndResumesFastPath) {
  const std::size_t n = 8;
  const net::Graph graph = net::make_clique(n);
  const Workload workload(kSeed, 64);

  LogConfig config;
  config.batch_size = 2;  // 32 slots, renewals at 0, 8, 16, 24
  config.window = 2;
  config.lease_slots = 8;
  config.crashes.push_back(mac::CrashPlan{static_cast<NodeId>(n - 1), 3});
  KvStateMachine crashed_kv;
  const auto cs = drive_service(graph, workload, config, &crashed_kv);

  EXPECT_TRUE(cs.complete);
  EXPECT_EQ(cs.oracle_failures, 0u);
  EXPECT_GT(cs.slots_recovered, 0u);

  // The renewal slot after the crash elects a LIVE node (the max-id
  // survivor, n-2, under identity ids) and the lease heals.
  EXPECT_GE(cs.re_elections, 1u);
  EXPECT_NE(cs.leader, static_cast<NodeId>(n - 1));
  EXPECT_EQ(cs.leader, static_cast<NodeId>(n - 2));
  EXPECT_TRUE(cs.lease_ok);

  // The fast path RESUMES under the new lease: most of the ~28 non-renewal
  // slots ride CommitFlood again. A terminal lease break would cap
  // slots_leased at the couple of pre-crash window launches.
  EXPECT_GE(cs.slots_leased, 10u);

  // Same decided log as a crash-free run, slot paths notwithstanding.
  LogConfig clean;
  clean.batch_size = 1;
  clean.lease_slots = 1;
  KvStateMachine clean_kv;
  const auto qs = drive_service(graph, workload, clean, &clean_kv);
  ASSERT_TRUE(qs.complete);
  EXPECT_EQ(crashed_kv.digest(), clean_kv.digest());
}

TEST(LogService, RecoveredSlotLatencyIncludesTheStall) {
  const std::size_t n = 8;
  const net::Graph graph = net::make_clique(n);
  const Workload workload(kSeed, 64);

  LogConfig config;
  config.batch_size = 4;
  config.window = 2;
  config.lease_slots = 16;
  LogConfig crashed = config;
  crashed.crashes.push_back(mac::CrashPlan{static_cast<NodeId>(n - 1), 3});

  const auto cs = drive_service(graph, workload, crashed, nullptr);
  const auto ns = drive_service(graph, workload, config, nullptr);
  ASSERT_TRUE(cs.complete);
  ASSERT_TRUE(ns.complete);
  ASSERT_GT(cs.slots_recovered, 0u);

  // Recovered slots carry a relaunch diagnostic, and their decide latency
  // is measured from the FIRST launch — so the crash run's p99 must
  // exceed the clean run's (the old code reset launched_at at relaunch,
  // hiding the entire stall from the latency distribution).
  bool any_relaunched = false;
  for (std::size_t slot = 0; slot < cs.slots_total; ++slot) {
    if (cs.relaunched_at[slot] == 0) continue;
    any_relaunched = true;
    EXPECT_GT(cs.decide_latency[slot],
              ns.decide_latency[slot]);  // stall included, same slot clean
  }
  EXPECT_TRUE(any_relaunched);
  EXPECT_GT(percentile(cs.decide_latency, 0.99),
            percentile(ns.decide_latency, 0.99));
}

TEST(LogService, MultiRoundRecoveryCountsEachSlotOnce) {
  // Crash a MAJORITY so even relaunched wPAXOS slots stall: recovery then
  // revisits the same in-flight slots every round. Each slot must be
  // counted in slots_recovered exactly once, and an already-full-paxos
  // slot is only relaunched when provably stalled (no traffic since the
  // previous round's look) — so relaunches stays well under
  // rounds * inflight.
  const std::size_t n = 4;
  const net::Graph graph = net::make_clique(n);
  const Workload workload(kSeed, 8);

  LogConfig config;
  config.batch_size = 4;  // 2 slots, both in the initial window
  config.window = 2;
  config.lease_slots = 16;
  config.max_recovery_rounds = 4;
  config.crashes.push_back(mac::CrashPlan{static_cast<NodeId>(n - 1), 0});
  config.crashes.push_back(mac::CrashPlan{static_cast<NodeId>(n - 2), 0});
  const auto stats = drive_service(graph, workload, config, nullptr);

  EXPECT_FALSE(stats.complete);  // no live majority: nothing can decide
  EXPECT_EQ(stats.slots_recovered, 2u);  // once per slot, NOT once per round
  EXPECT_GT(stats.relaunches, stats.slots_recovered);  // later rounds retried
  EXPECT_LT(stats.relaunches,
            config.max_recovery_rounds * 2u + 2u);  // but skipped live ones
}

TEST(LogService, QuiescenceExactlyAtHorizonStillRecovers) {
  const std::size_t n = 8;
  const net::Graph graph = net::make_clique(n);
  const Workload workload(kSeed, 64);

  LogConfig config;
  config.batch_size = 4;
  config.window = 2;
  config.lease_slots = 16;
  config.crashes.push_back(mac::CrashPlan{static_cast<NodeId>(n - 1), 3});

  // Probe: with recovery disabled, the crashed-leader run drains its event
  // queue and stops at the stall's quiescence tick.
  LogConfig probe = config;
  probe.max_recovery_rounds = 0;
  const auto ps = drive_service(graph, workload, probe, nullptr);
  ASSERT_FALSE(ps.complete);
  ASSERT_EQ(ps.slots_recovered, 0u);
  const mac::Time stall_tick = ps.end_time;

  // Now set the horizon EXACTLY at that tick: the queue (not the budget)
  // is the binding constraint, so recovery must still fire — the old
  // `now >= horizon` check conflated the two and skipped it.
  const auto bs = drive_service(graph, workload, config, nullptr,
                                /*horizon=*/stall_tick);
  EXPECT_GT(bs.slots_recovered, 0u);
  // The relaunched instances' events then land beyond the budget, which
  // IS horizon exhaustion — reported as such, not as a silent give-up.
  EXPECT_FALSE(bs.complete);
  EXPECT_TRUE(bs.horizon_exhausted);

  // One tick of headroom short of the stall is genuine exhaustion: events
  // were still pending, and recovery must NOT fire.
  const auto es = drive_service(graph, workload, config, nullptr,
                                /*horizon=*/stall_tick - 1);
  EXPECT_EQ(es.slots_recovered, 0u);
  EXPECT_TRUE(es.horizon_exhausted);
}

TEST(LogService, LeaderReadsHonorTheReadIndexBound) {
  const net::Graph graph = net::make_clique(6);
  const Workload workload(kSeed, 64);

  LogConfig config;
  config.batch_size = 4;  // 16 slots
  config.window = 1;      // serial: decide order == slot order, so the
  config.lease_slots = 4;  // read stream below is exactly one per slot
  config.read_every = 1;
  mac::SynchronousScheduler sched(1);
  ReplicatedLog service(graph, sched, workload, config);
  const auto& stats = service.drive(mac::Time{1} << 32);

  ASSERT_TRUE(stats.complete);
  EXPECT_EQ(stats.reads_issued, 16u);
  EXPECT_EQ(stats.reads_served, 16u);
  EXPECT_EQ(stats.read_latency.size(), 16u);

  // Serial decides make the read stream deterministic: read i is issued at
  // slot i's decide, keyed by the slot's last written key, bound to slot
  // i — so its served value must equal the last write to that key within
  // the first (i+1) batches. Replay the prefix to check freshness exactly.
  const auto& reads = service.reads();
  ASSERT_EQ(reads.size(), 16u);
  KvStateMachine replay;
  std::size_t applied = 0;
  for (std::size_t i = 0; i < 16; ++i) {
    const auto [first, last] = service.batch_range(i);
    for (std::size_t j = first; j < last; ++j) replay.apply(j, workload.op(j));
    applied = last;
    const ReadRecord& r = reads[i];
    EXPECT_TRUE(r.served);
    EXPECT_EQ(r.bound, i + 1);
    EXPECT_EQ(r.key, workload.op(applied - 1).key);
    EXPECT_EQ(r.value, replay.get(r.key));
    EXPECT_GE(r.served_at, r.issued_at);
  }

  // Post-drive reads serve immediately from the final applied prefix.
  const std::size_t id = service.submit_read(workload.op(0).key);
  EXPECT_TRUE(service.reads()[id].served);
  EXPECT_EQ(service.reads()[id].value,
            service.state_machine().get(workload.op(0).key));
  EXPECT_EQ(service.reads()[id].bound, 16u);
}

TEST(LogService, HorizonExhaustionReportsIncomplete) {
  const net::Graph graph = net::make_clique(8);
  const Workload workload(kSeed, 512);
  LogConfig naive;
  naive.batch_size = 1;
  naive.lease_slots = 1;
  const auto stats =
      drive_service(graph, workload, naive, nullptr, /*horizon=*/20);
  EXPECT_FALSE(stats.complete);
  EXPECT_LT(stats.ops_applied, 512u);
  EXPECT_LE(stats.end_time, 21u);
}

TEST(LogService, BatchRangeCoversStreamWithRaggedTail) {
  const net::Graph graph = net::make_clique(4);
  const Workload workload(kSeed, 10);  // 10 ops, batch 4 => 4+4+2
  LogConfig config;
  config.batch_size = 4;
  mac::SynchronousScheduler sched(1);
  ReplicatedLog service(graph, sched, workload, config);
  EXPECT_EQ(service.batch_range(0), (std::pair<std::size_t, std::size_t>{0, 4}));
  EXPECT_EQ(service.batch_range(2), (std::pair<std::size_t, std::size_t>{8, 10}));
  const auto stats = service.drive(mac::Time{1} << 32);
  EXPECT_TRUE(stats.complete);
  EXPECT_EQ(stats.ops_applied, 10u);
  EXPECT_EQ(stats.slots_total, 3u);
}

}  // namespace
}  // namespace amac::log
