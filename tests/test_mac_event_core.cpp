// Event-core equivalence and allocation tests for the calendar-queue
// engine (PR: calendar-queue event core).
//
//   * CalendarQueue vs a (t, kind, seq) binary heap: identical pop order on
//     randomized workloads, including far-future overflow + migration.
//   * Network (calendar) vs ReferenceNetwork (frozen heap engine): same
//     trace digest, stats, decisions, and crash outcomes across schedulers,
//     topologies, crash plans, and the unreliable overlay.
//   * Determinism: same seed => bit-identical digests run-to-run.
//   * Payload pool reuse and lifetime.
//   * Zero heap allocations in the steady-state broadcast->deliver->ack
//     cycle (global operator new instrumented in this binary).
#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <new>
#include <queue>
#include <type_traits>

#include "helpers.hpp"
#include "mac/calendar_queue.hpp"
#include "mac/engine.hpp"
#include "mac/reference_engine.hpp"
#include "mac/schedulers.hpp"
#include "net/topologies.hpp"
#include "util/rng.hpp"

// --- allocation counting hook (linked into this test binary only) --------

namespace {
std::uint64_t g_alloc_count = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace amac::mac {
namespace {

using testutil::probe_factory;

// --- CalendarQueue vs reference heap, randomized ------------------------

TEST(CalendarQueue, MatchesReferenceHeapPopOrder) {
  util::Rng rng(0xC0FFEE);
  for (int trial = 0; trial < 25; ++trial) {
    CalendarQueue q(rng.uniform(1, 12));
    std::priority_queue<Event, std::vector<Event>, EventAfter> ref;
    std::uint64_t seq = 0;
    Time now = 0;
    const auto push_random = [&] {
      Event e;
      // 10% far-future pushes exercise the overflow heap and migration.
      e.t = now + (rng.chance(0.1) ? rng.uniform(3000, 9000)
                                   : rng.uniform(0, 15));
      e.kind = static_cast<EventKind>(rng.uniform(0, 2));
      e.seq = seq++;
      e.node = static_cast<NodeId>(rng.uniform(0, 7));
      q.push(e);
      ref.push(e);
    };
    for (int i = 0; i < 8; ++i) push_random();
    for (int step = 0; step < 3000; ++step) {
      if (!q.empty() && rng.chance(0.55)) {
        ASSERT_FALSE(ref.empty());
        const Time peek = q.next_time();
        const Event a = q.pop();
        const Event b = ref.top();
        ref.pop();
        ASSERT_EQ(a.t, peek);
        ASSERT_EQ(a.t, b.t);
        ASSERT_EQ(a.kind, b.kind);
        ASSERT_EQ(a.seq, b.seq);
        now = a.t;
      } else {
        push_random();
      }
    }
    while (!q.empty()) {
      const Event a = q.pop();
      const Event b = ref.top();
      ref.pop();
      ASSERT_EQ(a.t, b.t);
      ASSERT_EQ(a.kind, b.kind);
      ASSERT_EQ(a.seq, b.seq);
    }
    EXPECT_TRUE(ref.empty());
    EXPECT_EQ(q.size(), 0u);
  }
}

TEST(CalendarQueue, SentinelTimesNearForeverDoNotWrap) {
  // Regression: the window checks must not compute base_ + wheel_span()
  // (wraps for t near kForever, stranding events in the overflow heap).
  CalendarQueue q(8);
  Event never;
  never.t = kForever;
  never.kind = EventKind::kCrash;
  never.seq = 0;
  q.push(never);
  Event soon;
  soon.t = 3;
  soon.seq = 1;
  q.push(soon);
  EXPECT_EQ(q.next_time(), 3u);
  EXPECT_EQ(q.pop().seq, 1u);
  EXPECT_EQ(q.next_time(), kForever);
  EXPECT_EQ(q.pop().t, kForever);
  EXPECT_TRUE(q.empty());
}

// --- engine-level differential tests ------------------------------------

struct RunRecord {
  std::uint64_t trace = 0;
  EngineStats stats;
  std::vector<Decision> decisions;
  std::vector<bool> crashed;
  Time end_time = 0;
  bool condition_met = false;
};

void expect_equal(const RunRecord& a, const RunRecord& b) {
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.stats.broadcasts, b.stats.broadcasts);
  EXPECT_EQ(a.stats.dropped_busy, b.stats.dropped_busy);
  EXPECT_EQ(a.stats.deliveries, b.stats.deliveries);
  EXPECT_EQ(a.stats.acks, b.stats.acks);
  EXPECT_EQ(a.stats.payload_bytes, b.stats.payload_bytes);
  EXPECT_EQ(a.stats.max_payload_bytes, b.stats.max_payload_bytes);
  EXPECT_EQ(a.stats.peak_events, b.stats.peak_events);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.condition_met, b.condition_met);
  ASSERT_EQ(a.decisions.size(), b.decisions.size());
  for (std::size_t u = 0; u < a.decisions.size(); ++u) {
    EXPECT_EQ(a.decisions[u].decided, b.decisions[u].decided);
    EXPECT_EQ(a.decisions[u].value, b.decisions[u].value);
    EXPECT_EQ(a.decisions[u].time, b.decisions[u].time);
    EXPECT_EQ(a.crashed[u], b.crashed[u]);
  }
}

template <typename Net>
RunRecord run_traced(const net::Graph& g, const ProcessFactory& factory,
                     Scheduler& sched, const std::vector<CrashPlan>& crashes,
                     StopWhen until, Time horizon,
                     const net::Graph* overlay = nullptr,
                     const std::function<void()>& post_construct = {}) {
  Net net(g, factory, sched, overlay);
  net.enable_trace_digest();
  for (const auto& plan : crashes) net.schedule_crash(plan);
  // E.g. scheduler mutations that must not influence construction-time
  // decisions like calendar-wheel sizing (late holdback holds).
  if (post_construct) post_construct();
  const auto result = net.run(until, horizon);
  RunRecord rec;
  rec.trace = net.trace_digest();
  rec.stats = net.stats();
  rec.end_time = result.end_time;
  rec.condition_met = result.condition_met;
  for (NodeId u = 0; u < net.node_count(); ++u) {
    rec.decisions.push_back(net.decision(u));
    rec.crashed.push_back(net.crashed(u));
  }
  return rec;
}

/// Runs the same workload on both engines with independently constructed
/// (identically seeded) schedulers and requires identical observations.
template <typename MakeScheduler>
void expect_engines_agree(const net::Graph& g, const ProcessFactory& factory,
                          const MakeScheduler& make_scheduler,
                          const std::vector<CrashPlan>& crashes,
                          StopWhen until, Time horizon,
                          const net::Graph* overlay = nullptr) {
  auto sched_a = make_scheduler();
  auto sched_b = make_scheduler();
  const auto a = run_traced<Network>(g, factory, *sched_a, crashes, until,
                                     horizon, overlay);
  const auto b = run_traced<ReferenceNetwork>(g, factory, *sched_b, crashes,
                                              until, horizon, overlay);
  expect_equal(a, b);
  EXPECT_GT(a.stats.deliveries, 0u);  // the workload must exercise traffic
}

TEST(EngineDifferential, RandomSchedulerManySeeds) {
  const auto g = net::make_ring(12);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    expect_engines_agree(
        g, probe_factory(6),
        [&] { return std::make_unique<UniformRandomScheduler>(9, seed); },
        {}, StopWhen::kQuiescent, 100000);
  }
}

TEST(EngineDifferential, SkewedCliqueWithDecisions) {
  const auto g = net::make_clique(8);
  expect_engines_agree(
      g, probe_factory(4, /*decide_when_done=*/true),
      [] { return std::make_unique<SkewedScheduler>(7, 99); }, {},
      StopWhen::kAllDecided, 100000);
}

TEST(EngineDifferential, ContentionGrid) {
  const auto g = net::make_grid(4, 4);
  expect_engines_agree(
      g, probe_factory(5),
      [] { return std::make_unique<ContentionScheduler>(3, 64, 17); }, {},
      StopWhen::kQuiescent, 100000);
}

TEST(EngineDifferential, CrashesMidBroadcast) {
  const auto g = net::make_line(9);
  const std::vector<CrashPlan> crashes{{2, 3}, {5, 7}, {7, 2}};
  for (std::uint64_t seed = 11; seed <= 14; ++seed) {
    expect_engines_agree(
        g, probe_factory(8),
        [&] { return std::make_unique<UniformRandomScheduler>(6, seed); },
        crashes, StopWhen::kQuiescent, 100000);
  }
}

TEST(EngineDifferential, HoldbackFarFutureReleases) {
  // Releases far beyond the calendar wheel force the overflow heap and the
  // overflow->wheel migration path; a far crash rides along.
  const auto g = net::make_ring(8);
  const std::vector<CrashPlan> crashes{{3, 6500}};
  expect_engines_agree(
      g, probe_factory(3),
      [] {
        auto hold = std::make_unique<HoldbackScheduler>(
            std::make_unique<SynchronousScheduler>(1), /*release=*/6000);
        hold->hold_sender(0);
        hold->hold_edge(4, 5);
        return hold;
      },
      crashes, StopWhen::kQuiescent, 1000000);
}

TEST(EngineDifferential, LateHoldsOverflowTheWheel) {
  // Holds registered AFTER Network construction: the calendar wheel was
  // sized from the pre-hold fack() (release 4 + sync 1 => a 16-bucket
  // wheel), so the release-deferred deliveries at t~7000 exceed the wheel
  // window and must ride the overflow heap — while staying bit-identical
  // to the reference heap engine, which never saw a wheel at all.
  const auto g = net::make_ring(8);
  const std::vector<CrashPlan> crashes{{5, 7100}};
  const auto run_one = [&](auto net_tag) {
    using Net = typename decltype(net_tag)::type;
    auto hold = std::make_unique<HoldbackScheduler>(
        std::make_unique<SynchronousScheduler>(1), /*release=*/4);
    return run_traced<Net>(g, probe_factory(3), *hold, crashes,
                           StopWhen::kQuiescent, 1000000, nullptr, [&hold] {
                             hold->hold_sender_until(1, 7000);
                             // Uses the construction-time release (4).
                             hold->hold_edge(3, 4);
                           });
  };
  const auto a = run_one(std::type_identity<Network>{});
  const auto b = run_one(std::type_identity<ReferenceNetwork>{});
  expect_equal(a, b);
  EXPECT_GT(a.stats.deliveries, 0u);
  // The held deliveries really did land after the release tick (i.e. far
  // beyond the 16-bucket wheel sized at construction).
  EXPECT_GE(a.end_time, 7000u);
}

TEST(EngineDifferential, UnreliableOverlay) {
  const std::size_t n = 10;
  const auto g = net::make_ring(n);
  net::Graph overlay(n);
  for (NodeId u = 0; u + 2 < n; ++u) overlay.add_edge(u, u + 2);
  expect_engines_agree(
      g, probe_factory(5),
      [] {
        return std::make_unique<LossyScheduler>(
            std::make_unique<UniformRandomScheduler>(5, 21), 0.6, 77);
      },
      {}, StopWhen::kQuiescent, 100000, &overlay);
}

// --- determinism ---------------------------------------------------------

TEST(EngineDeterminism, SameSeedSameDigest) {
  const auto g = net::make_ring(10);
  const auto once = [&] {
    UniformRandomScheduler sched(8, 4242);
    return run_traced<Network>(g, probe_factory(7), sched, {{4, 9}},
                               StopWhen::kQuiescent, 100000);
  };
  const auto a = once();
  const auto b = once();
  expect_equal(a, b);
  EXPECT_NE(a.trace, 0u);
}

TEST(EngineDeterminism, DifferentSeedDifferentDigest) {
  const auto g = net::make_ring(10);
  const auto once = [&](std::uint64_t seed) {
    UniformRandomScheduler sched(8, seed);
    return run_traced<Network>(g, probe_factory(7), sched, {},
                               StopWhen::kQuiescent, 100000);
  };
  EXPECT_NE(once(1).trace, once(2).trace);
}

// --- payload pool reuse and lifetime ------------------------------------

TEST(PayloadPool, AcquireReleaseReuse) {
  PayloadPool pool;
  const util::Buffer a{1, 2, 3};
  const util::Buffer b{9};
  const auto s0 = pool.acquire(a);
  const auto s1 = pool.acquire(b);
  EXPECT_NE(s0, s1);
  EXPECT_EQ(pool.at(s0), a);
  EXPECT_EQ(pool.at(s1), b);
  EXPECT_EQ(pool.slot_count(), 2u);
  EXPECT_EQ(pool.live_count(), 2u);
  pool.release(s0);
  EXPECT_EQ(pool.live_count(), 1u);
  const auto s2 = pool.acquire(b);  // must recycle s0
  EXPECT_EQ(s2, s0);
  EXPECT_EQ(pool.at(s2), b);
  EXPECT_EQ(pool.slot_count(), 2u);
  EXPECT_EQ(pool.reuses(), 1u);
  EXPECT_EQ(pool.acquires(), 3u);
}

TEST(PayloadPool, EngineRecyclesSlotsAcrossBroadcasts) {
  // 3 nodes x 50 broadcasts each: at most one live flight per sender, so
  // the pool should plateau at <= 3 slots and recycle for the rest.
  const auto g = net::make_clique(3);
  SynchronousScheduler sched(1);
  Network net(g, probe_factory(50), sched);
  net.run(StopWhen::kQuiescent, 100000);
  EXPECT_EQ(net.stats().broadcasts, 150u);
  EXPECT_LE(net.payload_pool().slot_count(), 3u);
  EXPECT_EQ(net.payload_pool().acquires(), 150u);
  EXPECT_GE(net.payload_pool().reuses(), 147u);
  // Every flight drained: every slot returned.
  EXPECT_EQ(net.payload_pool().live_count(), 0u);
}

TEST(PayloadPool, SlotsHeldExactlyWhileInFlight) {
  const auto g = net::make_clique(3);
  MaxDelayScheduler sched(10);
  Network net(g, probe_factory(1), sched);
  net.run(StopWhen::kQuiescent, 5);  // mid-flight: deliveries due at t=10
  EXPECT_EQ(net.payload_pool().live_count(), 3u);
  EXPECT_EQ(net.in_flight_from(0), 2u);
  net.run(StopWhen::kQuiescent, 1000);
  EXPECT_EQ(net.payload_pool().live_count(), 0u);
  EXPECT_EQ(net.in_flight_from(0), 0u);
}

// --- zero-allocation steady state ---------------------------------------

/// Broadcasts forever from a reused buffer; never allocates in callbacks.
class SteadyPinger final : public Process {
 public:
  SteadyPinger() : payload_(8, 0xAB) {}

  void on_start(Context& ctx) override { ctx.broadcast(payload_); }
  void on_receive(const Packet&, Context&) override {}
  void on_ack(Context& ctx) override { ctx.broadcast(payload_); }
  std::unique_ptr<Process> clone() const override {
    return std::make_unique<SteadyPinger>(*this);
  }
  void digest(util::Hasher& h) const override { h.mix_u64(payload_.size()); }

 private:
  util::Buffer payload_;
};

/// SteadyPinger with a round cap: broadcasts on start and on each of the
/// first `rounds - 1` acks, then goes quiet. Keeps large-n differential
/// runs bounded (the reference engine pays heap-log cost per event).
class BoundedPinger final : public Process {
 public:
  explicit BoundedPinger(std::size_t rounds)
      : rounds_(rounds), payload_(8, 0xAB) {}

  void on_start(Context& ctx) override {
    if (sent_ < rounds_) {
      ++sent_;
      ctx.broadcast(payload_);
    }
  }
  void on_receive(const Packet&, Context&) override {}
  void on_ack(Context& ctx) override { on_start(ctx); }
  std::unique_ptr<Process> clone() const override {
    return std::make_unique<BoundedPinger>(*this);
  }
  void digest(util::Hasher& h) const override { h.mix_u64(sent_); }

 private:
  std::size_t rounds_;
  std::size_t sent_ = 0;
  util::Buffer payload_;
};

TEST(EngineDifferential, LargeCliquePeakEventsAgree) {
  // n = 1024 clique, two bounded broadcast rounds per node: ~2.1M
  // deliveries, with ~1M events simultaneously queued at the fan-out
  // peak. Both engines must report the identical high-water mark (and
  // digest, stats, end time — the full differential contract) at a scale
  // three orders of magnitude past the other differential tests. This is
  // the regime the O(n^2) retire bug lived in; the reference engine is
  // the ground truth the calendar engine's large-n fast paths are held
  // to.
  const auto g = net::make_clique(1024);
  expect_engines_agree(
      g, [](NodeId) { return std::make_unique<BoundedPinger>(2); },
      [] { return std::make_unique<SynchronousScheduler>(1); }, {},
      StopWhen::kQuiescent, 100000);
}

TEST(EngineAllocation, SteadyStateCycleAllocatesNothingSynchronous) {
  const auto g = net::make_ring(16);
  SynchronousScheduler sched(1);
  Network net(g, [](NodeId) { return std::make_unique<SteadyPinger>(); },
              sched);
  // Warm-up: grows pool slots, lane/pending/scratch capacities.
  net.run(StopWhen::kQuiescent, 50);
  const std::uint64_t before = g_alloc_count;
  net.run(StopWhen::kQuiescent, 2000);
  const std::uint64_t after = g_alloc_count;
  EXPECT_EQ(after - before, 0u)
      << "steady-state broadcast->deliver->ack cycle allocated";
  EXPECT_GT(net.stats().deliveries, 30000u);  // the cycle really ran
}

TEST(EngineAllocation, SteadyStateCycleAllocatesNothingRandomDelays) {
  const auto g = net::make_ring(8);
  UniformRandomScheduler sched(6, 31337);
  Network net(g, [](NodeId) { return std::make_unique<SteadyPinger>(); },
              sched);
  // Warm-up long enough for the rare dense ticks of the random delay
  // distribution to have grown the circulating lane pool to its high-water
  // mark (lane storage is shared ring-wide through the spare pool, so the
  // mark is the peak CONCURRENT demand, reached a little later than the
  // old per-bucket peaks were).
  net.run(StopWhen::kQuiescent, 6000);
  const std::uint64_t before = g_alloc_count;
  net.run(StopWhen::kQuiescent, 16000);
  const std::uint64_t after = g_alloc_count;
  EXPECT_EQ(after - before, 0u);
  EXPECT_GT(net.stats().deliveries, 10000u);
}

TEST(EngineAllocation, LargeTopologySteadyStateAllocatesNothing) {
  // Same zero-allocation contract at soak scale: a 32x32 torus (n = 1024,
  // degree 4) with every node re-broadcasting on ack. The warm-up run
  // grows the payload pool, per-node pending arrays, and the circulating
  // lane set to their n=1024 high-water marks; after that, millions of
  // broadcast->deliver->ack cycles must not allocate once. Guards the
  // large-n hot path specifically: a per-delivery or per-retire
  // allocation that is invisible at n=16 dominates the profile at 4096.
  const auto g = net::make_torus(32, 32);
  SynchronousScheduler sched(1);
  Network net(g, [](NodeId) { return std::make_unique<SteadyPinger>(); },
              sched);
  net.run(StopWhen::kQuiescent, 50);  // warm-up
  const std::uint64_t before = g_alloc_count;
  net.run(StopWhen::kQuiescent, 1000);
  const std::uint64_t after = g_alloc_count;
  EXPECT_EQ(after - before, 0u)
      << "large-topology steady state allocated";
  EXPECT_GT(net.stats().deliveries, 1000000u);  // the cycle ran at scale
}

TEST(EngineAllocation, SoAUniformFanoutBatchPathAllocatesNothing) {
  // Dense clique + MaxDelayScheduler: every broadcast takes the SoA dense
  // fast path (uniform schedule -> CalendarQueue::push_batch, bulk pending
  // copy). After warm-up the whole fan-out cycle must be allocation-free,
  // and every delivery must have been pushed through the wheel (batch
  // reservations count as wheel pushes; nothing spills to the heap).
  const auto g = net::make_clique(12);
  MaxDelayScheduler sched(4);
  Network net(g, [](NodeId) { return std::make_unique<SteadyPinger>(); },
              sched);
  net.run(StopWhen::kQuiescent, 100);
  const std::uint64_t before = g_alloc_count;
  net.run(StopWhen::kQuiescent, 4000);
  const std::uint64_t after = g_alloc_count;
  EXPECT_EQ(after - before, 0u)
      << "uniform (batch) fan-out path allocated in steady state";
  EXPECT_GT(net.stats().deliveries, 100000u);
  EXPECT_EQ(net.stats().overflow_pushes, 0u);
  EXPECT_GT(net.stats().wheel_pushes, 0u);
  EXPECT_EQ(net.stats().wheel_resizes, 0u);
}

TEST(EngineAllocation, WheelResizeMidRunThenSteadyStateIsAllocationFree) {
  // Late Holdback holds (registered after construction, so the wheel was
  // sized from the tiny pre-hold fack) push every held delivery onto the
  // overflow heap until the self-resize kicks in. The resize itself may
  // allocate — it rebuilds the bucket ring — but lane storage circulates
  // through the spare pool (the old ring's warmed lanes are donated, and
  // every drained bucket hands its lanes to the next occupied one), so
  // already the FIRST revolution of the resized ring must run
  // allocation-free once the first post-resize tick has warmed the
  // circulating set; it is not allowed to re-warm one allocation per
  // bucket of the larger ring.
  const auto g = net::make_clique(8);
  auto hold = std::make_unique<HoldbackScheduler>(
      std::make_unique<SynchronousScheduler>(1), /*release=*/4);
  Network net(g, [](NodeId) { return std::make_unique<SteadyPinger>(); },
              *hold);
  // Every sender held until t=300: the on_start broadcasts of 8 cliqued
  // nodes schedule 8 * (7 deliveries + 1 ack) = 64 far events against a
  // wheel sized for fack() = 5 — enough resizable overflow pressure to
  // cross the rebuild threshold mid-burst (the wheel grows to cover the
  // ~300-tick horizon: 1024 buckets).
  for (NodeId u = 0; u < 8; ++u) hold->hold_sender_until(u, 300);
  // The resize fires during the t=0 burst; nothing pops before the held
  // deliveries land at t=300. Ticks 300..301 warm the circulating lanes
  // (the one permitted post-resize warm-up: a handful of lane vectors,
  // not a revolution of them).
  net.run(StopWhen::kQuiescent, 302);
  EXPECT_GE(net.stats().wheel_resizes, 1u);
  EXPECT_GT(net.stats().overflow_pushes, 0u);
  EXPECT_GT(net.stats().wheel_span, 16u);  // grew past the pre-hold sizing
  const std::uint64_t during_first_revolution = g_alloc_count;
  // 302 + 1100 covers a full revolution of the 1024-bucket resized ring.
  net.run(StopWhen::kQuiescent, 1402);
  EXPECT_EQ(g_alloc_count - during_first_revolution, 0u)
      << "first post-resize revolution re-warmed lane allocations";
  const std::uint64_t before = g_alloc_count;
  net.run(StopWhen::kQuiescent, 8000);
  const std::uint64_t after = g_alloc_count;
  EXPECT_EQ(after - before, 0u)
      << "steady state after a wheel resize allocated";
  EXPECT_GT(net.stats().deliveries, 30000u);
}

TEST(EngineReuse, ResetZeroesStatsAndReplaysFaultedRunBitForBit) {
  // Network::reset() returns the engine to its pre-run state for another
  // experiment: fresh processes, zeroed EngineStats — including the
  // link-fault drop/duplicate counters — while the installed LinkFaultPlan
  // carries over. With a stateless scheduler the re-run must then be an
  // exact replay: same fault decisions (they hash broadcast ids, which
  // restart), same counters, same digest-relevant stats.
  const auto g = net::make_ring(10);
  SynchronousScheduler sched(2);
  const auto factory = [](NodeId) { return std::make_unique<SteadyPinger>(); };
  Network net(g, factory, sched);
  LinkFaultPlan plan;
  plan.seed = 0xFA017;
  plan.drop_rate_bp = 900;
  plan.dup_rate_bp = 400;
  plan.windows.push_back(DropWindow{0, 1, 5, 60});
  net.set_link_faults(plan);

  net.run(StopWhen::kQuiescent, 400);
  const EngineStats first = net.stats();
  EXPECT_GT(first.drops, 0u);
  EXPECT_GT(first.duplicates, 0u);
  EXPECT_GT(first.deliveries, 0u);

  net.reset(factory);
  EXPECT_EQ(net.stats().drops, 0u);
  EXPECT_EQ(net.stats().duplicates, 0u);
  EXPECT_EQ(net.stats().deliveries, 0u);
  EXPECT_EQ(net.stats().broadcasts, 0u);
  EXPECT_EQ(net.stats().acks, 0u);

  net.run(StopWhen::kQuiescent, 400);
  const EngineStats second = net.stats();
  EXPECT_EQ(second.drops, first.drops);
  EXPECT_EQ(second.duplicates, first.duplicates);
  EXPECT_EQ(second.deliveries, first.deliveries);
  EXPECT_EQ(second.broadcasts, first.broadcasts);
  EXPECT_EQ(second.acks, first.acks);
  EXPECT_EQ(second.wheel_pushes, first.wheel_pushes);
}

TEST(EngineAllocation, FaultedSteadyStateWithDuplicatesAllocatesNothing) {
  // The duplicate re-enqueue path rides the same bucket-lane spare pool as
  // ordinary deliveries: once warmed, a steady state that keeps dropping
  // AND duplicating frames must stay allocation-free (the extra copies are
  // plan-driven pushes into already-circulating lanes, not new storage).
  const auto g = net::make_ring(8);
  SynchronousScheduler sched(2);
  Network net(g, [](NodeId) { return std::make_unique<SteadyPinger>(); },
              sched);
  LinkFaultPlan plan;
  plan.seed = 0xD0B1E;
  plan.drop_rate_bp = 500;
  plan.dup_rate_bp = 1500;
  net.set_link_faults(plan);
  // Warm-up: duplicate arrivals spread over 1..kMaxDuplicateExtra extra
  // ticks, so the circulating lane set peaks later than the unfaulted
  // cycle's does.
  net.run(StopWhen::kQuiescent, 4000);
  const std::uint64_t before = g_alloc_count;
  net.run(StopWhen::kQuiescent, 12000);
  const std::uint64_t after = g_alloc_count;
  EXPECT_EQ(after - before, 0u)
      << "faulted (duplicate-heavy) steady state allocated";
  EXPECT_GT(net.stats().duplicates, 1000u);  // the dup path really ran
  EXPECT_GT(net.stats().drops, 100u);        // and the drop path too
}

}  // namespace
}  // namespace amac::mac
