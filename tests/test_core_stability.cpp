#include "core/stability.hpp"

#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "net/topologies.hpp"

namespace amac::core {
namespace {

TEST(Stability, CorrectOnLineUnderSynchronousScheduler) {
  for (const std::size_t n : {2u, 5u, 9u}) {
    const auto g = net::make_line(n);
    const auto d = g.diameter();
    for (const mac::Value v : {0, 1}) {
      const auto inputs = harness::inputs_all(n, v);
      mac::SynchronousScheduler sched(1);
      const auto outcome = harness::run_consensus(
          g, harness::stability_factory(inputs, d, harness::identity_ids(n)),
          sched, inputs, 100000);
      ASSERT_TRUE(outcome.verdict.ok()) << outcome.verdict.summary();
      EXPECT_EQ(*outcome.verdict.decision, v);
    }
  }
}

TEST(Stability, MixedInputsDecideMinIdValue) {
  const std::size_t n = 8;
  const auto g = net::make_line(n);
  auto inputs = harness::inputs_all(n, 0);
  inputs[0] = 1;  // min id holds 1
  mac::SynchronousScheduler sched(1);
  const auto outcome = harness::run_consensus(
      g,
      harness::stability_factory(inputs, g.diameter(),
                                 harness::identity_ids(n)),
      sched, inputs, 100000);
  ASSERT_TRUE(outcome.verdict.ok());
  EXPECT_EQ(*outcome.verdict.decision, 1);
}

TEST(Stability, RespectsIdAssignment) {
  // The min *id* decides, not the min node index.
  const std::size_t n = 4;
  const auto g = net::make_line(n);
  const std::vector<std::uint64_t> ids{30, 20, 10, 40};  // node 2 has min id
  std::vector<mac::Value> inputs{0, 0, 1, 0};
  mac::SynchronousScheduler sched(1);
  const auto outcome = harness::run_consensus(
      g, harness::stability_factory(inputs, g.diameter(), ids), sched, inputs,
      100000);
  ASSERT_TRUE(outcome.verdict.ok());
  EXPECT_EQ(*outcome.verdict.decision, 1);
}

TEST(Stability, QuietCounterResetsOnNews) {
  // On a long line, far nodes keep learning for ~D phases; the quiet
  // counter can only mature afterwards, so decisions come after ~2D rounds.
  const std::size_t n = 10;  // D = 9
  const auto g = net::make_line(n);
  const auto inputs = harness::inputs_all(n, 0);
  mac::SynchronousScheduler sched(1);
  const auto outcome = harness::run_consensus(
      g,
      harness::stability_factory(inputs, g.diameter(),
                                 harness::identity_ids(n)),
      sched, inputs, 100000);
  ASSERT_TRUE(outcome.verdict.ok());
  EXPECT_GE(outcome.verdict.last_decision, 2 * (n - 1));
}

TEST(Stability, WorksOnGridToo) {
  const auto g = net::make_grid(4, 4);
  const auto inputs = harness::inputs_all(16, 1);
  mac::SynchronousScheduler sched(1);
  const auto outcome = harness::run_consensus(
      g,
      harness::stability_factory(inputs, g.diameter(),
                                 harness::identity_ids(16)),
      sched, inputs, 100000);
  ASSERT_TRUE(outcome.verdict.ok());
  EXPECT_EQ(*outcome.verdict.decision, 1);
}

TEST(Stability, SingleNodeDecidesAfterQuietWindow) {
  const auto g = net::make_clique(1);
  const std::vector<mac::Value> inputs{0};
  mac::SynchronousScheduler sched(1);
  const auto outcome = harness::run_consensus(
      g, harness::stability_factory(inputs, 1, {7}), sched, inputs, 1000);
  ASSERT_TRUE(outcome.verdict.ok());
  EXPECT_EQ(*outcome.verdict.decision, 0);
}

}  // namespace
}  // namespace amac::core
