#include "net/graph.hpp"

#include <gtest/gtest.h>

namespace amac::net {
namespace {

TEST(Graph, EmptyAndIsolated) {
  Graph g(3);
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_FALSE(g.is_connected());
  EXPECT_TRUE(g.neighbors(0).empty());
}

TEST(Graph, SingleNodeIsConnected) {
  Graph g(1);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.diameter(), 0u);
}

TEST(Graph, AddEdgeSymmetric) {
  Graph g(3);
  g.add_edge(0, 2);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 0u);
}

TEST(Graph, NeighborsSorted) {
  Graph g(5);
  g.add_edge(2, 4);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  const auto& nb = g.neighbors(2);
  ASSERT_EQ(nb.size(), 3u);
  EXPECT_EQ(nb[0], 0u);
  EXPECT_EQ(nb[1], 3u);
  EXPECT_EQ(nb[2], 4u);
}

TEST(Graph, BfsDistancesOnPath) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const auto d = g.bfs_distances(0);
  EXPECT_EQ(d[0], 0u);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[2], 2u);
  EXPECT_EQ(d[3], 3u);
}

TEST(Graph, BfsUnreachable) {
  Graph g(3);
  g.add_edge(0, 1);
  const auto d = g.bfs_distances(0);
  EXPECT_EQ(d[2], Graph::kUnreachable);
}

TEST(Graph, DiameterOfCycle) {
  Graph g(6);
  for (NodeId u = 0; u < 6; ++u) g.add_edge(u, (u + 1) % 6);
  EXPECT_EQ(g.diameter(), 3u);
}

TEST(Graph, EccentricityEndpointsOfPath) {
  Graph g(5);
  for (NodeId u = 0; u + 1 < 5; ++u) g.add_edge(u, u + 1);
  EXPECT_EQ(g.eccentricity(0), 4u);
  EXPECT_EQ(g.eccentricity(2), 2u);
  EXPECT_EQ(g.diameter(), 4u);
}

TEST(Graph, EdgeCountAccumulates) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  EXPECT_EQ(g.edge_count(), 4u);
}

}  // namespace
}  // namespace amac::net
