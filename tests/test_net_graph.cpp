#include "net/graph.hpp"

#include <gtest/gtest.h>

#include <chrono>

#include "net/topologies.hpp"
#include "util/rng.hpp"

namespace amac::net {
namespace {

/// The definition, for cross-checking the pruned diameter(): max over all
/// eccentricities.
std::uint32_t brute_force_diameter(const Graph& g) {
  std::uint32_t diam = 0;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    diam = std::max(diam, g.eccentricity(u));
  }
  return diam;
}

TEST(Graph, EmptyAndIsolated) {
  Graph g(3);
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_FALSE(g.is_connected());
  EXPECT_TRUE(g.neighbors(0).empty());
}

TEST(Graph, SingleNodeIsConnected) {
  Graph g(1);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.diameter(), 0u);
}

TEST(Graph, AddEdgeSymmetric) {
  Graph g(3);
  g.add_edge(0, 2);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 0u);
}

TEST(Graph, NeighborsSorted) {
  Graph g(5);
  g.add_edge(2, 4);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  const auto& nb = g.neighbors(2);
  ASSERT_EQ(nb.size(), 3u);
  EXPECT_EQ(nb[0], 0u);
  EXPECT_EQ(nb[1], 3u);
  EXPECT_EQ(nb[2], 4u);
}

TEST(Graph, BfsDistancesOnPath) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  const auto d = g.bfs_distances(0);
  EXPECT_EQ(d[0], 0u);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[2], 2u);
  EXPECT_EQ(d[3], 3u);
}

TEST(Graph, BfsUnreachable) {
  Graph g(3);
  g.add_edge(0, 1);
  const auto d = g.bfs_distances(0);
  EXPECT_EQ(d[2], Graph::kUnreachable);
}

TEST(Graph, DiameterOfCycle) {
  Graph g(6);
  for (NodeId u = 0; u < 6; ++u) g.add_edge(u, (u + 1) % 6);
  EXPECT_EQ(g.diameter(), 3u);
}

TEST(Graph, EccentricityEndpointsOfPath) {
  Graph g(5);
  for (NodeId u = 0; u + 1 < 5; ++u) g.add_edge(u, u + 1);
  EXPECT_EQ(g.eccentricity(0), 4u);
  EXPECT_EQ(g.eccentricity(2), 2u);
  EXPECT_EQ(g.diameter(), 4u);
}

// The double-sweep + iFUB diameter must return the exact all-pairs value on
// every topology family the generators produce, including the shapes that
// stress its pruning (cliques prune not at all, barbells pull the sweep
// midpoint onto the bridge, random graphs exercise the level refinement).
TEST(Graph, DiameterMatchesBruteForceAcrossFamilies) {
  util::Rng rng(0xD1A7u);
  std::vector<Graph> graphs;
  graphs.push_back(make_clique(17));
  graphs.push_back(make_line(23));
  graphs.push_back(make_ring(24));
  graphs.push_back(make_ring(25));
  graphs.push_back(make_star(19));
  graphs.push_back(make_grid(7, 5));
  graphs.push_back(make_torus(6, 4));
  graphs.push_back(make_binary_tree(31));
  graphs.push_back(make_barbell(9, 5));
  for (int i = 0; i < 6; ++i) {
    graphs.push_back(make_random_connected(40, 0.08, rng));
    graphs.push_back(make_random_geometric(40, 0.2, rng));
  }
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    EXPECT_EQ(graphs[i].diameter(), brute_force_diameter(graphs[i]))
        << "graph #" << i;
  }
}

// Regression for the large-scenario hang: diameter() used to be all-pairs
// BFS (~10^10 ops on a 4096-clique, minutes on a 4096-grid). The pruned
// version must handle 4096-node graphs in interactive time — the bound is
// deliberately loose (CI machines vary) but orders of magnitude below the
// all-pairs cost, so a regression to O(n^2 (n+m)) trips it immediately.
TEST(Graph, DiameterAtLargeNIsWallClockBounded) {
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(make_clique(4096).diameter(), 1u);
  EXPECT_EQ(make_grid(64, 64).diameter(), 126u);
  EXPECT_EQ(make_torus(64, 64).diameter(), 64u);
  EXPECT_EQ(make_binary_tree(4095).diameter(), 22u);  // leaf-root-leaf, depth 11
  util::Rng rng(5);
  const Graph geo = make_random_geometric(4096, 0.04, rng);
  EXPECT_GT(geo.diameter(), 2u);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            5000);
}

TEST(Graph, EdgeCountAccumulates) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  EXPECT_EQ(g.edge_count(), 4u);
}

}  // namespace
}  // namespace amac::net
