#include "core/two_phase.hpp"

#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "net/topologies.hpp"

namespace amac::core {
namespace {

using TPM = TwoPhaseMessage;

TEST(TwoPhaseMessage, EncodeDecodePhase1) {
  const TPM m{TPM::Phase::kOne, 42, 1, {}};
  const auto back = TPM::decode(m.encode());
  EXPECT_EQ(back.phase, TPM::Phase::kOne);
  EXPECT_EQ(back.id, 42u);
  EXPECT_EQ(back.value, 1);
}

TEST(TwoPhaseMessage, EncodeDecodePhase2Statuses) {
  for (const auto status : {TPM::Status::kBivalent, TPM::Status::kDecided}) {
    const TPM m{TPM::Phase::kTwo, 7, 0, status};
    const auto back = TPM::decode(m.encode());
    EXPECT_EQ(back.phase, TPM::Phase::kTwo);
    EXPECT_EQ(back.id, 7u);
    EXPECT_EQ(back.status, status);
    if (status == TPM::Status::kDecided) {
      EXPECT_EQ(back.value, 0);
    }
  }
}

TEST(TwoPhaseMessage, BoundedSize) {
  // Message holds one id and O(1) bytes of control: the model's
  // constant-ids restriction.
  const TPM m{TPM::Phase::kTwo, (1ULL << 40), 1, TPM::Status::kDecided};
  EXPECT_LE(m.encode().size(), 10u);
}

// ---- end-to-end properties (Theorem 4.1) --------------------------------

struct CaseSpec {
  std::size_t n;
  mac::Time fack;
  std::uint64_t seed;
};

class TwoPhaseSweep : public ::testing::TestWithParam<CaseSpec> {};

TEST_P(TwoPhaseSweep, SolvesConsensusUnderRandomSchedulers) {
  const auto [n, fack, seed] = GetParam();
  const auto g = net::make_clique(n);
  util::Rng rng(seed);
  for (int trial = 0; trial < 10; ++trial) {
    const auto inputs = harness::inputs_random(n, rng);
    mac::UniformRandomScheduler sched(fack, rng());
    const auto outcome = harness::run_consensus(
        g, harness::two_phase_factory(inputs), sched, inputs, 100 * fack);
    ASSERT_TRUE(outcome.verdict.ok()) << outcome.verdict.summary();
    // Theorem 4.1 with its constant: every node's phase-1 ack lands by
    // F_ack and every phase-2 message (own or witnessed) by 2*F_ack.
    EXPECT_LE(outcome.verdict.last_decision, 2 * fack);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TwoPhaseSweep,
    ::testing::Values(CaseSpec{1, 4, 1}, CaseSpec{2, 1, 2}, CaseSpec{2, 8, 3},
                      CaseSpec{3, 5, 4}, CaseSpec{5, 3, 5}, CaseSpec{8, 16, 6},
                      CaseSpec{16, 2, 7}, CaseSpec{32, 7, 8},
                      CaseSpec{64, 4, 9}));

TEST(TwoPhase, AllSameInputDecidesThatValue) {
  for (const mac::Value v : {0, 1}) {
    const auto g = net::make_clique(6);
    const auto inputs = harness::inputs_all(6, v);
    mac::UniformRandomScheduler sched(5, 77);
    const auto outcome = harness::run_consensus(
        g, harness::two_phase_factory(inputs), sched, inputs, 1000);
    ASSERT_TRUE(outcome.verdict.ok());
    EXPECT_EQ(*outcome.verdict.decision, v);
  }
}

TEST(TwoPhase, SynchronousSchedulerAllDecidedStatus) {
  // Under lock-step rounds with uniform input, everyone sets decided status
  // and decides at the second ack (t = 2 rounds).
  const auto g = net::make_clique(4);
  const auto inputs = harness::inputs_all(4, 0);
  mac::SynchronousScheduler sched(3);
  const auto outcome = harness::run_consensus(
      g, harness::two_phase_factory(inputs), sched, inputs, 1000);
  ASSERT_TRUE(outcome.verdict.ok());
  EXPECT_EQ(outcome.verdict.last_decision, 6u);  // 2 rounds x 3 ticks
  EXPECT_EQ(*outcome.verdict.decision, 0);
}

TEST(TwoPhase, MixedInputsSynchronousDefaultsToOne) {
  // In lock-step, everyone sees the other value in phase 1 -> all bivalent
  // -> default decision 1.
  const auto g = net::make_clique(4);
  const auto inputs = harness::inputs_alternating(4);
  mac::SynchronousScheduler sched(1);
  const auto outcome = harness::run_consensus(
      g, harness::two_phase_factory(inputs), sched, inputs, 1000);
  ASSERT_TRUE(outcome.verdict.ok());
  EXPECT_EQ(*outcome.verdict.decision, 1);
}

TEST(TwoPhase, FastZeroNodeForcesZeroDecision) {
  // Node 0 (value 0) completes both phases before anyone else's phase-1
  // ack: it sets decided(0) and everyone else must follow to 0.
  const auto g = net::make_clique(3);
  const std::vector<mac::Value> inputs{0, 1, 1};
  mac::ScriptedScheduler sched;
  // Node 0: phase-1 acked at t=1 (everyone receives at 1), phase-2 at t=2.
  sched.script(0, 0, 1, {{1, 1}, {2, 1}});
  sched.script(0, 1, 1, {{1, 1}, {2, 1}});
  // Nodes 1,2: phase-1 delivered late (t=5), so node 0 never sees value 1
  // before its ack.
  sched.script(1, 0, 5, {{0, 5}, {2, 5}});
  sched.script(2, 0, 5, {{0, 5}, {1, 5}});
  const auto outcome = harness::run_consensus(
      g, harness::two_phase_factory(inputs), sched, inputs, 1000);
  ASSERT_TRUE(outcome.verdict.ok()) << outcome.verdict.summary();
  EXPECT_EQ(*outcome.verdict.decision, 0);
}

TEST(TwoPhase, WitnessRulePreventsPrematureDefault) {
  // The Theorem 4.1 proof's "first case": v hears u before v's phase-2
  // completes, so u joins v's witness set and v must wait for u's phase-2
  // decided(0) before deciding — even though v's own phase-2 finished.
  const auto g = net::make_clique(2);
  const std::vector<mac::Value> inputs{0, 1};
  mac::ScriptedScheduler sched;
  // u=0: p1 acked t=2; v receives u.p1 at t=1. u.p2 broadcast t=2, v
  // receives it at t=10, ack t=10.
  sched.script(0, 0, 2, {{1, 1}});
  sched.script(0, 1, 8, {{1, 8}});
  // v=1: p1 delivered to u at t=3 (after u's ack at 2 -> u stays
  // decided(0)); v's p1 ack t=3. v.p2 at t=3, delivered u t=4, ack t=4.
  sched.script(1, 0, 3, {{0, 3}});
  sched.script(1, 1, 1, {{0, 1}});
  const auto outcome = harness::run_consensus(
      g, harness::two_phase_factory(inputs), sched, inputs, 1000);
  ASSERT_TRUE(outcome.verdict.ok()) << outcome.verdict.summary();
  // v saw u's phase-1 value 0 -> bivalent; witness u forces the wait until
  // t=10, then v decides 0 to match u.
  EXPECT_EQ(*outcome.verdict.decision, 0);
  EXPECT_EQ(outcome.verdict.last_decision, 10u);
}

// The documented pseudocode imprecision: a decided(0) phase-2 message that
// arrives before the receiver's phase-1 ack lands only in R1; Algorithm 1's
// line 23 checks only R2 and decides 1 against u's 0. Our default checks
// R1 as well. This schedule exhibits the difference.
mac::ScriptedScheduler literal_r2_schedule() {
  mac::ScriptedScheduler sched;
  // u=0 fast: p1 ack t=1 (v receives at 1); p2 at t=1, v receives at t=2,
  // ack t=2.
  sched.script(0, 0, 1, {{1, 1}});
  sched.script(0, 1, 1, {{1, 1}});
  // v=1 slow: p1 ack at t=5 (u receives v.p1 at t=4, after u's t=1 ack).
  sched.script(1, 0, 5, {{0, 4}});
  sched.script(1, 1, 1, {{0, 1}});
  return sched;
}

TEST(TwoPhase, LiteralR2CheckViolatesAgreementOnCraftedSchedule) {
  const auto g = net::make_clique(2);
  const std::vector<mac::Value> inputs{0, 1};
  auto sched = literal_r2_schedule();
  const auto outcome = harness::run_consensus(
      g, harness::two_phase_factory(inputs, /*literal_r2_check=*/true), sched,
      inputs, 1000);
  EXPECT_TRUE(outcome.verdict.termination);
  EXPECT_FALSE(outcome.verdict.agreement)
      << "literal line-23 reading should disagree here: "
      << outcome.verdict.summary();
}

TEST(TwoPhase, FixedCheckAgreesOnCraftedSchedule) {
  const auto g = net::make_clique(2);
  const std::vector<mac::Value> inputs{0, 1};
  auto sched = literal_r2_schedule();
  const auto outcome = harness::run_consensus(
      g, harness::two_phase_factory(inputs, /*literal_r2_check=*/false),
      sched, inputs, 1000);
  ASSERT_TRUE(outcome.verdict.ok()) << outcome.verdict.summary();
  EXPECT_EQ(*outcome.verdict.decision, 0);
}

TEST(TwoPhase, DecisionTimeIndependentOfN) {
  // Theorem 4.1's point: O(F_ack), NOT O(n). Time must not grow with n.
  mac::Time t_small = 0;
  mac::Time t_large = 0;
  for (const std::size_t n : {4u, 64u}) {
    const auto g = net::make_clique(n);
    const auto inputs = harness::inputs_alternating(n);
    mac::MaxDelayScheduler sched(6);
    const auto outcome = harness::run_consensus(
        g, harness::two_phase_factory(inputs), sched, inputs, 10000);
    ASSERT_TRUE(outcome.verdict.ok());
    (n == 4 ? t_small : t_large) = outcome.verdict.last_decision;
  }
  EXPECT_EQ(t_small, t_large);
}

TEST(TwoPhase, StatusObservable) {
  const auto g = net::make_clique(2);
  const auto inputs = harness::inputs_all(2, 1);
  mac::SynchronousScheduler sched(1);
  mac::Network net(g, harness::two_phase_factory(inputs), sched);
  net.run(mac::StopWhen::kAllDecided, 100);
  for (NodeId u = 0; u < 2; ++u) {
    const auto* p = dynamic_cast<const TwoPhaseConsensus*>(&net.process(u));
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->status(), TPM::Status::kDecided);
  }
}

}  // namespace
}  // namespace amac::core
