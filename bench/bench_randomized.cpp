// E11 — the paper's future work #3: randomized algorithms can circumvent
// the Theorem 3.2 crash impossibility.
//
// Ben-Or adapted to the abstract MAC layer (single hop, f < n/2 crashes):
//   * head-to-head with Theorem 3.2: the valency explorer proves the
//     deterministic two-phase algorithm has reachable stuck states with
//     one crash; Ben-Or, on the same clique with crashes injected across a
//     grid of times and victims, decides every time;
//   * round/time distribution vs n and crash count, mixed inputs.
#include <cstdio>

#include "core/benor.hpp"
#include "harness/experiment.hpp"
#include "net/topologies.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "verify/flp.hpp"

int main() {
  using namespace amac;

  std::printf("E11: randomized consensus (Ben-Or) vs Theorem 3.2.\n\n");
  bool all_expected = true;

  // --- Head-to-head with the impossibility.
  {
    const auto g = net::make_clique(3);
    verify::FlpExplorer explorer(g, harness::two_phase_factory({0, 1, 1}),
                                 /*crash_budget=*/1);
    const auto report = explorer.explore();
    std::size_t benor_decided = 0;
    std::size_t benor_runs = 0;
    for (mac::Time crash_at = 0; crash_at < 15; ++crash_at) {
      for (NodeId victim = 0; victim < 3; ++victim) {
        const std::vector<mac::Value> inputs{0, 1, 1};
        mac::UniformRandomScheduler sched(3, 100 + crash_at * 3 + victim);
        mac::Network net(g, harness::benor_factory(inputs, 1, 7), sched);
        net.schedule_crash(mac::CrashPlan{victim, crash_at});
        const auto result = net.run(mac::StopWhen::kAllDecided, 1'000'000);
        ++benor_runs;
        if (result.condition_met &&
            verify::check_consensus(net, inputs).ok()) {
          ++benor_decided;
        }
      }
    }
    std::printf(
        "two-phase (deterministic), 1-crash valency analysis: violation "
        "reachable = %s\nBen-Or (randomized), same setting, %zu crash "
        "schedules: %zu/%zu decided correctly\n\n",
        report.violation_found() ? "YES (Theorem 3.2)" : "no",
        benor_runs, benor_decided, benor_runs);
    if (!report.violation_found()) all_expected = false;
    if (benor_decided != benor_runs) all_expected = false;
  }

  // --- Rounds/time distributions.
  util::Table table({"n", "f", "crashes", "runs", "mean rounds",
                     "max rounds", "mean time", "p95 time", "all correct"});
  util::Rng rng(424242);
  for (const auto& [n, f] : {std::pair<std::size_t, std::size_t>{3, 1},
                             {5, 2}, {9, 4}, {15, 7}, {25, 12}}) {
    for (const std::size_t crashes : {std::size_t{0}, f}) {
      util::Summary rounds;
      util::Summary times;
      bool correct = true;
      const int kRuns = 40;
      for (int run = 0; run < kRuns; ++run) {
        const auto g = net::make_clique(n);
        const auto inputs = harness::inputs_random(n, rng);
        mac::UniformRandomScheduler sched(3, rng());
        mac::Network net(g, harness::benor_factory(inputs, f, rng()), sched);
        std::set<NodeId> victims;
        while (victims.size() < crashes) {
          victims.insert(static_cast<NodeId>(rng.uniform(0, n - 1)));
        }
        for (const NodeId v : victims) {
          net.schedule_crash(mac::CrashPlan{v, rng.uniform(0, 20)});
        }
        const auto result = net.run(mac::StopWhen::kAllDecided, 10'000'000);
        const auto verdict = verify::check_consensus(net, inputs);
        correct = correct && result.condition_met && verdict.ok();
        times.add(static_cast<double>(verdict.last_decision));
        std::uint32_t max_round = 0;
        for (NodeId u = 0; u < n; ++u) {
          if (net.crashed(u)) continue;
          max_round = std::max(
              max_round,
              dynamic_cast<const core::BenOr*>(&net.process(u))->round());
        }
        rounds.add(max_round);
      }
      if (!correct) all_expected = false;
      table.row()
          .cell(n)
          .cell(f)
          .cell(crashes)
          .cell(static_cast<std::uint64_t>(rounds.count()))
          .cell(rounds.mean())
          .cell(rounds.max(), 0)
          .cell(times.mean(), 1)
          .cell(times.percentile(95), 1)
          .cell(correct);
    }
  }
  table.print();

  std::printf(
      "\nexpected shape: Ben-Or decides correctly in every run, crashes or\n"
      "not (probability-1 termination materializes in bounded rounds for\n"
      "every sampled coin/schedule); rounds stay small because a single\n"
      "lucky majority ends the protocol. shape holds: %s\n",
      all_expected ? "YES" : "NO");
  return all_expected ? 0 : 1;
}
