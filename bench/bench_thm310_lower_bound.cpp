// E4 — Theorem 3.10: every consensus algorithm needs >= floor(D/2) * F_ack
// time. We run both of our multihop algorithms on lines under the max-delay
// synchronous adversary and report measured decision time against the
// bound: the ratio must be >= 1 everywhere (and for wPAXOS stay within a
// constant, since wPAXOS is O(D * F_ack)-optimal).
#include <cstdio>

#include "harness/experiment.hpp"
#include "net/topologies.hpp"
#include "util/table.hpp"

int main() {
  using namespace amac;

  std::printf(
      "E4 / Theorem 3.10: decision time >= floor(D/2) * F_ack on lines\n"
      "under the max-delay synchronous adversary.\n\n");

  util::Table table({"D", "F_ack", "bound", "wPAXOS time", "wPAXOS/bound",
                     "flooding time", "flooding/bound"});

  bool all_expected = true;
  double max_wpaxos_ratio = 0;
  for (const std::size_t nodes : {5u, 9u, 17u, 33u}) {
    for (const mac::Time fack : {1u, 2u, 8u}) {
      const auto g = net::make_line(nodes);
      const auto d = g.diameter();
      const mac::Time bound = (d / 2) * fack;
      const auto inputs = harness::inputs_split(nodes);

      mac::SynchronousScheduler s1(fack);
      const auto wpaxos = harness::run_consensus(
          g, harness::wpaxos_factory(inputs, harness::identity_ids(nodes)),
          s1, inputs, 100'000'000);
      mac::SynchronousScheduler s2(fack);
      const auto flood = harness::run_consensus(
          g, harness::flooding_factory(inputs), s2, inputs, 100'000'000);

      if (!wpaxos.verdict.ok() || !flood.verdict.ok()) all_expected = false;
      const double wr = static_cast<double>(wpaxos.verdict.last_decision) /
                        static_cast<double>(bound);
      const double fr = static_cast<double>(flood.verdict.last_decision) /
                        static_cast<double>(bound);
      max_wpaxos_ratio = std::max(max_wpaxos_ratio, wr);
      if (wr < 1.0 || fr < 1.0) all_expected = false;

      table.row()
          .cell(d)
          .cell(static_cast<std::uint64_t>(fack))
          .cell(static_cast<std::uint64_t>(bound))
          .cell(static_cast<std::uint64_t>(wpaxos.verdict.last_decision))
          .cell(wr)
          .cell(static_cast<std::uint64_t>(flood.verdict.last_decision))
          .cell(fr);
    }
  }

  table.print();
  std::printf(
      "\nexpected shape: every ratio >= 1 (the bound binds all algorithms);\n"
      "wPAXOS ratios stay within a constant of the bound (O(D*F_ack)\n"
      "optimality; max observed %.2f). shape holds: %s\n",
      max_wpaxos_ratio, all_expected ? "YES" : "NO");
  return all_expected ? 0 : 1;
}
