// E1 — Theorem 3.2: deterministic consensus is impossible with one crash
// failure (the FLP generalization to the abstract MAC layer).
//
// Executable form: exhaustive valency analysis of the §4.1 two-phase
// algorithm over all valid-step schedules (§3.1 semantics) on small cliques.
//   * crash budget 0: the algorithm always terminates and never disagrees —
//     and mixed-input configurations are BIVALENT (the schedule picks the
//     outcome), the raw material of the FLP argument;
//   * crash budget 1: the adversary reaches a violation (stuck state or
//     disagreement) — the algorithm, which must decide, cannot tolerate a
//     single crash, exactly as Theorem 3.2 predicts for every algorithm.
#include <cstdio>
#include <string>

#include "harness/experiment.hpp"
#include "net/topologies.hpp"
#include "util/table.hpp"
#include "verify/flp.hpp"

int main() {
  using namespace amac;

  std::printf(
      "E1 / Theorem 3.2: valency analysis of two-phase consensus under\n"
      "valid-step schedules (crash budget 0 vs 1).\n\n");

  util::Table table({"n", "inputs", "crashes", "states", "transitions",
                     "bivalent", "stuck", "disagree", "violation",
                     "witness-len"});

  const std::vector<std::vector<mac::Value>> input_sets[] = {
      {{0, 0}, {0, 1}, {1, 1}},
      {{0, 0, 0}, {0, 0, 1}, {0, 1, 1}, {1, 1, 1}},
  };

  bool all_expected = true;
  for (const auto& inputs_for_n : input_sets) {
    for (const auto& inputs : inputs_for_n) {
      const std::size_t n = inputs.size();
      const auto g = net::make_clique(n);
      std::string label;
      for (const auto v : inputs) label += static_cast<char>('0' + v);
      const bool mixed =
          label.find('0') != std::string::npos &&
          label.find('1') != std::string::npos;

      for (const std::size_t crashes : {0u, 1u}) {
        verify::FlpExplorer explorer(
            g, harness::two_phase_factory(inputs), crashes,
            /*max_states=*/4'000'000);
        const auto report = explorer.explore();
        table.row()
            .cell(n)
            .cell(label)
            .cell(crashes)
            .cell(report.distinct_states)
            .cell(report.transitions)
            .cell(report.bivalent())
            .cell(report.stuck_reachable)
            .cell(report.disagreement_reachable)
            .cell(report.violation_found())
            .cell(report.witness.size());

        // Paper-shape checks. The FLP argument starts from a BIVALENT
        // initial configuration (mixed inputs here); the 1-crash adversary
        // defeats the algorithm exactly from those. Uniform-input
        // configurations are univalent and may survive a crash.
        if (crashes == 0 && report.violation_found()) all_expected = false;
        if (crashes == 0 && mixed && !report.bivalent()) all_expected = false;
        if (crashes == 1 && mixed && !report.violation_found()) {
          all_expected = false;
        }
      }
    }
  }

  table.print();
  std::printf(
      "\nexpected shape: crashes=0 -> no violation, mixed inputs bivalent;\n"
      "crashes=1 -> violation from every bivalent (mixed) configuration,\n"
      "which is the executable content of Theorem 3.2.\nshape holds: %s\n",
      all_expected ? "YES" : "NO");
  return all_expected ? 0 : 1;
}
