// E2 — Theorem 3.3 / Figure 1: anonymous algorithms cannot solve consensus,
// even knowing n and D.
//
// Reproduces the paper's construction executably:
//   1. Network B (the connected 3-lift): the anonymous min-flood algorithm
//      with uniform input b decides b by synchronous step t (Lemma 3.5).
//   2. Network A (two gadgets + bridge q + clique): under the alpha_A
//      scheduler (synchronous, q's messages withheld for t steps), gadget 0
//      decides 0 and gadget 1 decides 1 — agreement violated.
//   3. Lemma 3.6 is checked empirically: every gadget node u of A and each
//      of its three lift copies S_u in B march through IDENTICAL state
//      digests for all t steps.
#include <cstdio>

#include "harness/experiment.hpp"
#include "net/paper_networks.hpp"
#include "util/table.hpp"
#include "verify/trace.hpp"

int main() {
  using namespace amac;

  std::printf(
      "E2 / Theorem 3.3 (Figure 1): anonymity makes consensus impossible.\n"
      "Algorithm under test: AnonymousMinFlood (knows n and D, no ids).\n\n");

  util::Table table({"D", "k", "n'", "t(sync steps)", "B all-0", "B all-1",
                     "A agreement", "g0 decides", "g1 decides",
                     "lemma3.6 prefix", "lemma3.6 holds"});

  bool all_expected = true;
  for (const auto& [diameter, k] :
       {std::pair{6u, std::size_t{1}}, std::pair{8u, std::size_t{2}},
        std::pair{10u, std::size_t{4}}, std::pair{14u, std::size_t{6}}}) {
    const auto nets = net::make_figure1(diameter, k);
    const std::size_t sz = nets.layout.size();

    // --- Lemma 3.5: B decides b on uniform input b; record t.
    mac::Time t = 0;
    mac::Value b_decisions[2] = {-1, -1};
    for (const mac::Value b : {0, 1}) {
      const auto inputs = harness::inputs_all(nets.size, b);
      mac::SynchronousScheduler sched(1);
      const auto outcome = harness::run_consensus(
          nets.b, harness::anonymous_factory(inputs, diameter), sched, inputs,
          10'000);
      b_decisions[b] = outcome.verdict.ok() ? *outcome.verdict.decision : -1;
      t = std::max(t, outcome.verdict.last_decision);
    }

    // --- alpha_A: hold q's messages for t steps; run A with gadget inputs.
    std::vector<mac::Value> a_inputs(nets.size, 0);
    for (std::size_t local = 0; local < sz; ++local) {
      a_inputs[nets.a_node(1, local)] = 1;
    }
    mac::HoldbackScheduler a_sched(
        std::make_unique<mac::SynchronousScheduler>(1), t + 3);
    a_sched.hold_sender(nets.q);
    mac::Network a_net(nets.a, harness::anonymous_factory(a_inputs, diameter),
                       a_sched);
    a_net.run(mac::StopWhen::kAllDecided, 100'000);
    const auto a_verdict = verify::check_consensus(a_net, a_inputs);
    const auto g0 =
        a_net.decision(nets.a_node(0, nets.layout.a(nets.layout.d)));
    const auto g1 =
        a_net.decision(nets.a_node(1, nets.layout.a(nets.layout.d)));

    // --- Lemma 3.6: digests of u vs S_u for the first t steps (b = 0 side).
    std::vector<NodeId> a_watch;
    for (std::size_t local = 0; local < sz; ++local) {
      a_watch.push_back(nets.a_node(0, local));
    }
    mac::HoldbackScheduler trace_sched(
        std::make_unique<mac::SynchronousScheduler>(1), t + 3);
    trace_sched.hold_sender(nets.q);
    mac::Network a_trace_net(
        nets.a, harness::anonymous_factory(a_inputs, diameter), trace_sched);
    const auto a_trace = verify::DigestTrace::record(a_trace_net, a_watch, t);

    std::vector<NodeId> b_watch;
    for (NodeId u = 0; u < nets.size; ++u) b_watch.push_back(u);
    const auto b0_inputs = harness::inputs_all(nets.size, 0);
    mac::SynchronousScheduler b_sched(1);
    mac::Network b_net(nets.b, harness::anonymous_factory(b0_inputs, diameter),
                       b_sched);
    const auto b_trace = verify::DigestTrace::record(b_net, b_watch, t);

    std::size_t min_prefix = t;
    for (std::size_t local = 0; local < sz; ++local) {
      for (int copy = 0; copy < 3; ++copy) {
        min_prefix = std::min(
            min_prefix, a_trace.common_prefix(local, b_trace,
                                              nets.b_node(copy, local)));
      }
    }
    const bool lemma_holds = min_prefix == t;

    table.row()
        .cell(diameter)
        .cell(k)
        .cell(nets.size)
        .cell(static_cast<std::uint64_t>(t))
        .cell(std::string("decides ") + std::to_string(b_decisions[0]))
        .cell(std::string("decides ") + std::to_string(b_decisions[1]))
        .cell(a_verdict.agreement ? "holds (!)" : "VIOLATED")
        .cell(static_cast<std::int64_t>(g0.value))
        .cell(static_cast<std::int64_t>(g1.value))
        .cell(min_prefix)
        .cell(lemma_holds);

    if (b_decisions[0] != 0 || b_decisions[1] != 1) all_expected = false;
    if (a_verdict.agreement) all_expected = false;  // must be violated
    if (g0.value != 0 || g1.value != 1) all_expected = false;
    if (!lemma_holds) all_expected = false;
  }

  table.print();
  std::printf(
      "\nexpected shape: B correct under sync scheduler; A violates\n"
      "agreement (gadget 0 -> 0, gadget 1 -> 1); Lemma 3.6 digests match\n"
      "for all t steps. shape holds: %s\n",
      all_expected ? "YES" : "NO");
  return all_expected ? 0 : 1;
}
