// E7 — the paper's §1/§4.2 claim: consensus over a basic flooding service
// costs O(n * F_ack) — "bottlenecks are possible where Omega(n) value and
// id pairs must be sent by a single node only able to fit O(1) such pairs
// in each message" — while wPAXOS's aggregating trees bring it to
// O(D * F_ack).
//
// Three families:
//   * bottleneck graphs (star, barbell): one relay must forward Omega(n)
//     pairs, so flooding pays Theta(n) while D is constant — wPAXOS wins
//     outright, by a factor growing with n;
//   * expander-ish families (grid, random geometric) with n >> D: the
//     flooding/wPAXOS ratio grows with n/D (the crossover direction);
//   * lines (D = n-1): both are Theta(n * F_ack); the simple algorithm's
//     smaller constant wins — honest boundary of the claim.
#include <cstdio>

#include "harness/experiment.hpp"
#include "net/topologies.hpp"
#include "util/table.hpp"

int main() {
  using namespace amac;

  std::printf(
      "E7: wPAXOS (O(D*F_ack)) vs flooding gather-all (O(n*F_ack)).\n"
      "F_ack = 2, synchronous scheduler, split inputs, 2 pairs/message.\n\n");

  util::Table table({"family", "topology", "n", "D", "n/D", "flooding time",
                     "wPAXOS time", "flood/wPAXOS", "both ok"});

  struct Case {
    std::string family;
    std::string name;
    net::Graph graph;
  };
  util::Rng rng(7);
  std::vector<Case> cases;
  cases.push_back({"bottleneck", "star-65", net::make_star(65)});
  cases.push_back({"bottleneck", "star-257", net::make_star(257)});
  cases.push_back({"bottleneck", "barbell-32", net::make_barbell(32, 2)});
  cases.push_back({"bottleneck", "barbell-96", net::make_barbell(96, 2)});
  cases.push_back({"scaling", "grid-5x5", net::make_grid(5, 5)});
  cases.push_back({"scaling", "grid-8x8", net::make_grid(8, 8)});
  cases.push_back({"scaling", "grid-12x12", net::make_grid(12, 12)});
  cases.push_back(
      {"scaling", "geo-100", net::make_random_geometric(100, 0.2, rng)});
  cases.push_back(
      {"scaling", "geo-225", net::make_random_geometric(225, 0.15, rng)});
  cases.push_back({"boundary", "line-25", net::make_line(25)});
  cases.push_back({"boundary", "line-64", net::make_line(64)});

  const mac::Time fack = 2;
  bool all_ok = true;
  std::vector<double> scaling_ratios;
  double min_bottleneck_ratio = 1e9;
  for (auto& c : cases) {
    const std::size_t n = c.graph.node_count();
    const auto d = c.graph.diameter();
    const auto inputs = harness::inputs_split(n);
    const auto ids = harness::identity_ids(n);

    mac::SynchronousScheduler s1(fack);
    const auto flood = harness::run_consensus(
        c.graph, harness::flooding_factory(inputs), s1, inputs, 100'000'000);
    mac::SynchronousScheduler s2(fack);
    const auto wpaxos = harness::run_consensus(
        c.graph, harness::wpaxos_factory(inputs, ids), s2, inputs,
        100'000'000);

    const bool ok = flood.verdict.ok() && wpaxos.verdict.ok();
    all_ok = all_ok && ok;
    const double ratio = static_cast<double>(flood.verdict.last_decision) /
                         static_cast<double>(wpaxos.verdict.last_decision);
    if (c.family == "scaling" && c.name.rfind("grid", 0) == 0) {
      scaling_ratios.push_back(ratio);
    }
    if (c.family == "bottleneck" &&
        (c.name == "star-257" || c.name == "barbell-96")) {
      min_bottleneck_ratio = std::min(min_bottleneck_ratio, ratio);
    }

    table.row()
        .cell(c.family)
        .cell(c.name)
        .cell(n)
        .cell(d)
        .cell(static_cast<double>(n) / d)
        .cell(static_cast<std::uint64_t>(flood.verdict.last_decision))
        .cell(static_cast<std::uint64_t>(wpaxos.verdict.last_decision))
        .cell(ratio)
        .cell(ok);
  }

  table.print();
  const bool monotone = scaling_ratios.size() == 3 &&
                        scaling_ratios[0] < scaling_ratios[1] &&
                        scaling_ratios[1] < scaling_ratios[2];
  const bool shape = all_ok && monotone && min_bottleneck_ratio > 1.0;
  std::printf(
      "\nexpected shape: wPAXOS wins outright on the large bottleneck\n"
      "graphs (min ratio %.2f, must exceed 1); the ratio grows\n"
      "monotonically with n/D on grids (%s); lines favor the simple\n"
      "algorithm's constant, as the theory permits (both are Theta(n)\n"
      "there). shape holds: %s\n",
      min_bottleneck_ratio, monotone ? "yes" : "no", shape ? "YES" : "NO");
  return shape ? 0 : 1;
}
