// Fuzz soak entry point: the CI fuzz lane and the command-line replay tool.
//
//   ./bench_fuzz_soak --count 1000                 # soak seeds [1, 1000]
//   ./bench_fuzz_soak --count 40000 --jobs 4       # sharded parallel soak
//                         (merged digest bit-identical to --jobs 1 when
//                          mutation is off; see fuzzer.hpp "Sharded")
//   ./bench_fuzz_soak --seed-base 5000 --count 200 # a different corpus
//   ./bench_fuzz_soak --count 20000 --mutate 0.35  # coverage-steered soak
//   ./bench_fuzz_soak --count 2000 --fault-rate 0.05 --dup-rate 0.02
//                                                  # unreliable-link floor
//   ./bench_fuzz_soak --count 2000 --large-every 250 --large-n 4096
//                                                  # large-topology family
//   ./bench_fuzz_soak --count 2000 --log-every 40  # replicated-log family
//   ./bench_fuzz_soak --count 100000 --max-seconds 300 --no-shrink
//                                                  # wall-clock-budgeted
//   ./bench_fuzz_soak --replay <spec-or-seed>      # one scenario, verbose
//   ./bench_fuzz_soak --replay <spec> --expect-digest 0xABCD  # CI pinning
//   ./bench_fuzz_soak ... --corpus-out corpus.txt  # dump mutation corpus
//   ./bench_fuzz_soak ... --corpus-in corpus.txt   # pre-seed it
//
// Exit status: 0 when every scenario upholds its properties (and, for
// --replay --expect-digest, the digest matches); 1 otherwise; 2 on a bad
// command line. Every numeric flag is parsed strictly: "--count abc" is a
// usage error, never a silent zero-scenario soak. On any violation a
// minimal self-contained repro line is printed; paste it back via --replay
// to reproduce the identical run. See fuzz/fuzzer.hpp for the full fuzzing
// HOWTO.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "fuzz/corpus_io.hpp"
#include "fuzz/fuzzer.hpp"
#include "util/parse.hpp"

namespace {

using namespace amac;

struct CliOptions {
  fuzz::SoakOptions soak;
  std::string replay;
  std::string corpus_out;
  std::string corpus_in;
  std::uint64_t expect_digest = 0;
  bool has_expect_digest = false;
  bool corpus_strict = false;
  std::size_t progress_every = 0;
};

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--count N] [--seed-base S] [--jobs J]\n"
      "          [--differential-every K]\n"
      "          [--mutate RATIO] [--fault-rate RATIO] [--dup-rate RATIO]\n"
      "          [--large-every K] [--large-n N] [--log-every K]\n"
      "          [--differential-max-n N]\n"
      "          [--max-seconds S]\n"
      "          [--corpus-out FILE] [--corpus-in FILE] [--corpus-strict]\n"
      "          [--no-shrink] [--max-shrink-attempts A] [--progress-every P]\n"
      "          [--no-protocol-stats] [--replay SPEC] [--expect-digest HEX]\n"
      "          [--sig-version]\n",
      argv0);
  return 2;
}

void print_report(const fuzz::Scenario& s, const fuzz::RunReport& r) {
  std::printf("scenario  %s\n", fuzz::format_spec(s).c_str());
  std::printf("verdict   %s\n", r.verdict.summary().c_str());
  std::printf("result    failure=%s end_time=%llu broadcasts=%llu "
              "deliveries=%llu acks=%llu mid_flight_crashes=%zu "
              "drops=%llu duplicates=%llu\n",
              fuzz::failure_name(r.failure),
              static_cast<unsigned long long>(r.end_time),
              static_cast<unsigned long long>(r.stats.broadcasts),
              static_cast<unsigned long long>(r.stats.deliveries),
              static_cast<unsigned long long>(r.stats.acks),
              r.mid_flight_crashes,
              static_cast<unsigned long long>(r.stats.drops),
              static_cast<unsigned long long>(r.stats.duplicates));
  std::printf("calendar  wheel=%llu overflow=%llu resizes=%llu batch=%llu "
              "span=%zu\n",
              static_cast<unsigned long long>(r.stats.wheel_pushes),
              static_cast<unsigned long long>(r.stats.overflow_pushes),
              static_cast<unsigned long long>(r.stats.wheel_resizes),
              static_cast<unsigned long long>(r.stats.batch_pushes),
              r.stats.wheel_span);
  std::printf("protocol  rounds=%llu coins=%llu proposals=%llu changes=%llu "
              "learned=%llu\n",
              static_cast<unsigned long long>(r.protocol.max_round),
              static_cast<unsigned long long>(r.protocol.coin_flips),
              static_cast<unsigned long long>(r.protocol.proposals),
              static_cast<unsigned long long>(r.protocol.change_events),
              static_cast<unsigned long long>(r.protocol.max_learned));
  if (r.log_service) {
    std::printf("log       recovered=%zu re_elections=%zu lease_broken=%d "
                "kv=0x%016llx\n",
                r.log_slots_recovered, r.log_re_elections,
                r.log_lease_broken ? 1 : 0,
                static_cast<unsigned long long>(r.log_kv_digest));
  }
  const fuzz::CoverageSignature sig = fuzz::coverage_signature(s, r);
  std::printf("coverage  signature=0x%016llx (engine=0x%013llx "
              "protocol=0x%04llx, space v%u)\n",
              static_cast<unsigned long long>(sig.key()),
              static_cast<unsigned long long>(sig.engine_key()),
              static_cast<unsigned long long>(sig.protocol_key()),
              fuzz::kSignatureSpaceVersion);
  std::printf("digest    fingerprint=0x%016llx trace=0x%016llx\n",
              static_cast<unsigned long long>(r.fingerprint),
              static_cast<unsigned long long>(r.trace_digest));
  if (r.differential_ran) {
    std::printf("reference fingerprint=0x%016llx (%s)\n",
                static_cast<unsigned long long>(r.reference_fingerprint),
                r.failure == fuzz::FailureKind::kDifferential ? "MISMATCH"
                                                              : "match");
  }
  if (!r.detail.empty()) std::printf("detail    %s\n", r.detail.c_str());
}

int run_replay(const CliOptions& cli) {
  const auto scenario = fuzz::parse_spec(cli.replay);
  if (!scenario) {
    std::fprintf(stderr, "error: malformed --replay spec: %s\n",
                 cli.replay.c_str());
    return 2;
  }
  fuzz::RunOptions options;
  options.differential = true;  // replays are rare: always cross-check
  const auto report = fuzz::run_scenario(*scenario, options);
  print_report(*scenario, report);

  bool ok = report.failure == fuzz::FailureKind::kNone;
  if (cli.has_expect_digest && report.fingerprint != cli.expect_digest) {
    std::printf("EXPECTED  fingerprint=0x%016llx -- MISMATCH\n",
                static_cast<unsigned long long>(cli.expect_digest));
    ok = false;
  }
  if (!ok && report.failure != fuzz::FailureKind::kNone) {
    const auto shrunk = fuzz::shrink_scenario(*scenario, report.failure);
    std::printf("minimal   %s\n", fuzz::format_spec(shrunk.scenario).c_str());
  }
  return ok ? 0 : 1;
}

/// Loads a --corpus-in file (fuzz::load_corpus_file): tolerant by default —
/// malformed lines are skipped with a per-line warning and a summary, and
/// only an unreadable file or one whose EVERY spec line is malformed fails
/// the soak (a stale actions/cache frontier restored across a grammar
/// change must not kill the whole nightly). --corpus-strict restores the
/// old all-or-nothing contract.
bool load_corpus(const std::string& path, bool strict,
                 std::vector<fuzz::Scenario>& out) {
  fuzz::CorpusLoadResult res =
      fuzz::load_corpus_file(path, strict, &std::cerr);
  if (!res.ok) {
    std::fprintf(stderr, "error: --corpus-in: %s\n", res.error.c_str());
    return false;
  }
  if (res.skipped > 0) {
    std::fprintf(stderr,
                 "warning: --corpus-in %s: loaded %zu specs, skipped %zu "
                 "malformed line(s)\n",
                 path.c_str(), res.loaded, res.skipped);
  }
  for (auto& s : res.scenarios) out.push_back(std::move(s));
  return true;
}

/// Writes --corpus-out via temp-file + atomic rename (fuzz::
/// write_corpus_file): an interrupted run can never truncate a previously
/// persisted frontier.
bool write_corpus(const std::string& path,
                  const std::vector<fuzz::Scenario>& corpus) {
  std::string error;
  if (!fuzz::write_corpus_file(path, corpus, &error)) {
    std::fprintf(stderr, "error: --corpus-out: %s\n", error.c_str());
    return false;
  }
  return true;
}

void print_coverage_table(const fuzz::SoakResult& result) {
  const auto& cov = result.coverage;
  // The "distinct coverage signatures:", "distinct engine-only
  // signatures:" and "distinct protocol signatures:" lines are
  // machine-parsed by the CI coverage assertions; keep their shapes stable.
  std::printf("  distinct coverage signatures: %zu (novel in %zu of %zu "
              "runs, %zu mutated; signature space v%u)\n",
              cov.distinct, result.novel_runs, result.runs,
              result.mutated_runs, fuzz::kSignatureSpaceVersion);
  std::printf("  distinct engine-only signatures: %zu\n", cov.engine_distinct);
  std::printf("  distinct protocol signatures: %zu\n", cov.protocol_distinct);
  // Machine-parsed by the CI coverage set-difference assertion (the
  // mutating soak must reach protocol corners pure generation missed);
  // keys are sorted, so the line is deterministic.
  std::printf("  protocol signature keys:");
  for (const std::uint64_t key : result.protocol_keys) {
    std::printf(" %llx", static_cast<unsigned long long>(key));
  }
  std::printf("\n");
  std::printf("  coverage by scheduler:");
  for (std::size_t i = 0; i < fuzz::kSchedulerKindCount; ++i) {
    std::printf(" %s=%zu",
                fuzz::scheduler_name(static_cast<fuzz::SchedulerKind>(i)),
                cov.per_scheduler[i]);
  }
  std::printf("\n");
  std::printf("  coverage by path: overflow=%zu resize=%zu batch=%zu "
              "crashes=%zu holds=%zu protocol=%zu (of %zu signatures)\n",
              cov.overflow_sigs, cov.resize_sigs, cov.batch_sigs,
              cov.crash_sigs, cov.hold_sigs, cov.protocol_sigs,
              cov.distinct);
  // "distinct fault signatures:", "distinct large-topology signatures:"
  // and "distinct log-service signatures:" are machine-parsed by CI
  // coverage assertions; keep their shapes stable.
  std::printf("  distinct fault signatures: %zu\n", cov.fault_sigs);
  std::printf("  distinct large-topology signatures: %zu\n", cov.large_sigs);
  std::printf("  distinct log-service signatures: %zu\n", cov.log_sigs);
  // Machine-parsed by the CI log-family set-difference assertion (the
  // log-promoting soak must reach engine-space keys an instance-only soak
  // cannot); keys are sorted, so the line is deterministic.
  std::printf("  engine signature keys:");
  for (const std::uint64_t key : result.engine_keys) {
    std::printf(" %llx", static_cast<unsigned long long>(key));
  }
  std::printf("\n");
}

int run_soak_cli(const CliOptions& cli) {
  fuzz::SoakOptions options = cli.soak;
  if (!cli.corpus_in.empty() &&
      !load_corpus(cli.corpus_in, cli.corpus_strict,
                   options.initial_corpus)) {
    return 2;
  }
  if (cli.progress_every != 0) {
    options.on_scenario = [&](std::size_t index, const fuzz::Scenario& s,
                              const fuzz::RunReport& r) {
      if ((index + 1) % cli.progress_every == 0) {
        std::printf("  [%zu/%zu] last=%s failure=%s wheel=%llu overflow=%llu "
                    "resizes=%llu\n",
                    index + 1, cli.soak.count,
                    harness::algorithm_name(s.algorithm),
                    fuzz::failure_name(r.failure),
                    static_cast<unsigned long long>(r.stats.wheel_pushes),
                    static_cast<unsigned long long>(r.stats.overflow_pushes),
                    static_cast<unsigned long long>(r.stats.wheel_resizes));
        std::fflush(stdout);
      }
    };
  }
  const auto t0 = std::chrono::steady_clock::now();
  const auto result = fuzz::run_soak(options);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // options.count >= 1 is enforced at parse time (--count 0 is a usage
  // error), so the inclusive seed range below cannot underflow.
  std::printf("fuzz soak: %zu scenarios (seeds %llu..%llu), %zu differential "
              "replays, mutate ratio %.2f\n",
              result.runs,
              static_cast<unsigned long long>(options.seed_base),
              static_cast<unsigned long long>(options.seed_base +
                                              options.count - 1),
              result.differential_runs, options.mutate_ratio);
  // Machine-parsed by the CI speedup log ("wall-clock:"); keep the shape.
  std::printf("  wall-clock: %.3fs across %zu job(s)\n", elapsed,
              options.jobs);
  if (options.fault_rate > 0.0 || options.dup_rate > 0.0 ||
      result.faulted_scenarios > 0) {
    std::printf("  link-fault floor: drop %.4f dup %.4f -> %zu faulted "
                "scenarios, %llu dropped / %llu duplicated frames\n",
                options.fault_rate, options.dup_rate,
                result.faulted_scenarios,
                static_cast<unsigned long long>(result.dropped_frames),
                static_cast<unsigned long long>(result.duplicated_frames));
  }
  if (options.large_every != 0) {
    std::printf("  large topologies: %zu scenario(s) promoted to n=%zu "
                "(every %zu)\n",
                result.large_scenarios, options.large_n, options.large_every);
  }
  if (options.log_every != 0 || result.log_scenarios > 0) {
    // log_scenarios counts family MEMBERSHIP (promoted + mutated-in +
    // corpus pre-seeds), so it can be nonzero with --log-every 0.
    std::printf("  log-service scenarios: %zu (every %zu)\n",
                result.log_scenarios, options.log_every);
  }
  if (result.differential_skipped > 0) {
    std::printf("  differential replays skipped (n > %zu): %zu\n",
                options.differential_max_n, result.differential_skipped);
  }
  if (options.max_seconds > 0.0) {
    // Budgeted soaks are wall-clock-bounded, not digest-reproducible; the
    // skip count makes the truncation visible in the log.
    std::printf("  time budget: %.1fs -> %zu run(s) never started\n",
                options.max_seconds, result.budget_skipped);
  }
  for (std::size_t i = 0; i < harness::kAlgorithmCount; ++i) {
    std::printf("  %-10s %zu\n",
                harness::algorithm_name(static_cast<harness::Algorithm>(i)),
                result.per_algorithm[i]);
  }
  std::printf("  crash scenarios: %zu (mid-flight cancellations in %zu)\n",
              result.crash_scenarios, result.mid_flight_crash_scenarios);
  std::printf("  calendar events: %llu wheel / %llu overflow heap "
              "(overflow path in %zu scenarios, wheel resized in %zu)\n",
              static_cast<unsigned long long>(result.wheel_events),
              static_cast<unsigned long long>(result.overflow_events),
              result.overflow_scenarios, result.resized_scenarios);
  print_coverage_table(result);
  std::printf("  corpus digest: 0x%016llx\n",
              static_cast<unsigned long long>(result.corpus_digest));

  // Persist the corpus BEFORE the failure-exit path: violation soaks are
  // exactly the nights whose widened frontier is worth resuming from. A
  // write failure is reported but never masks the violations themselves.
  const bool corpus_written =
      cli.corpus_out.empty() || write_corpus(cli.corpus_out, result.corpus);

  if (!result.ok()) {
    for (const auto& f : result.failures) {
      std::printf("VIOLATION kind=%s\n  spec    %s\n  minimal %s\n  %s\n",
                  fuzz::failure_name(f.report.failure),
                  fuzz::format_spec(f.scenario).c_str(),
                  fuzz::format_spec(f.minimal).c_str(),
                  f.report.detail.c_str());
      std::printf("  replay: ./bench_fuzz_soak --replay '%s'\n",
                  fuzz::format_spec(f.minimal).c_str());
    }
    std::printf("FAIL: %zu violation(s)\n", result.failures.size());
    return 1;
  }
  if (!corpus_written) return 2;
  std::printf("OK: zero property violations\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  bool parse_error = false;
  const auto fail_flag = [&](const std::string& flag, const char* value) {
    std::fprintf(stderr, "error: invalid value for %s: '%s'\n", flag.c_str(),
                 value == nullptr ? "(missing)" : value);
    parse_error = true;
  };
  for (int i = 1; i < argc && !parse_error; ++i) {
    const auto arg = std::string(argv[i]);
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    // Strict numeric parsing: a flag whose value does not parse IN FULL
    // (or is missing) is a usage error — std::strtoull's silent
    // garbage-to-0 once let "--count abc" soak zero scenarios and exit
    // green.
    const auto take_u64 = [&](std::uint64_t& out) {
      const char* v = next();
      const auto parsed =
          v ? util::parse_u64(v) : std::optional<std::uint64_t>{};
      if (!parsed) {
        fail_flag(arg, v);
        return;
      }
      out = *parsed;
    };
    const auto take_size = [&](std::size_t& out) {
      std::uint64_t v = 0;
      take_u64(v);
      if (!parse_error) out = static_cast<std::size_t>(v);
    };
    if (arg == "--count") {
      take_size(cli.soak.count);
      // A zero-scenario soak is always a command-line mistake (and used to
      // underflow the "seeds S..S+count-1" summary line): exit 2, same as
      // the strict-parse contract for garbage values.
      if (!parse_error && cli.soak.count == 0) fail_flag(arg, "0");
    } else if (arg == "--seed-base") {
      take_u64(cli.soak.seed_base);
    } else if (arg == "--jobs") {
      // Worker threads for the sharded soak. 0 is rejected rather than
      // treated as "auto": an unparsed garbage value must never silently
      // change the parallelism (and with it the mutant streams).
      take_size(cli.soak.jobs);
      if (!parse_error && cli.soak.jobs == 0) fail_flag(arg, "0");
    } else if (arg == "--differential-every") {
      take_size(cli.soak.differential_every);
    } else if (arg == "--differential-max-n") {
      // Size cap for reference replays (0 = unlimited): scenarios larger
      // than this still run and are property-checked on the calendar
      // engine; only the O(n^2)-per-delivery reference A/B is skipped.
      take_size(cli.soak.differential_max_n);
    } else if (arg == "--large-every") {
      // 0 (the default) disables large-topology promotion entirely.
      take_size(cli.soak.large_every);
    } else if (arg == "--large-n") {
      take_size(cli.soak.large_n);
      if (!parse_error && cli.soak.large_n == 0) fail_flag(arg, "0");
    } else if (arg == "--log-every") {
      // 0 (the default) disables log-service promotion entirely; the
      // family can still enter via mutation or a pre-seeded corpus.
      take_size(cli.soak.log_every);
    } else if (arg == "--max-seconds") {
      // Wall-clock budget. Strict like every rate flag, and 0 is rejected:
      // a zero-second budget would skip the whole soak and exit green,
      // which is only ever a typo (omit the flag for an unbounded soak).
      const char* v = next();
      const auto parsed = v ? util::parse_double(v) : std::optional<double>{};
      if (!parsed || *parsed <= 0.0) {
        fail_flag(arg, v);
      } else {
        cli.soak.max_seconds = *parsed;
      }
    } else if (arg == "--no-shrink") {
      cli.soak.shrink_failures = false;
    } else if (arg == "--no-protocol-stats") {
      // A/B toggle: reproduces the engine-only signature space (and proves
      // collection never perturbs a run — the corpus digest is identical
      // either way).
      cli.soak.collect_protocol_stats = false;
    } else if (arg == "--sig-version") {
      // Machine-readable signature-space version: the nightly lane keys
      // its persisted-corpus cache on this, so a signature-space bump
      // starts a fresh frontier.
      std::printf("%u\n", fuzz::kSignatureSpaceVersion);
      return 0;
    } else if (arg == "--max-shrink-attempts") {
      take_size(cli.soak.max_shrink_attempts);
    } else if (arg == "--progress-every") {
      take_size(cli.progress_every);
    } else if (arg == "--mutate") {
      const char* v = next();
      const auto parsed = v ? util::parse_double(v) : std::optional<double>{};
      if (!parsed || *parsed < 0.0 || *parsed > 1.0) {
        fail_flag(arg, v);
      } else {
        cli.soak.mutate_ratio = *parsed;
      }
    } else if (arg == "--fault-rate" || arg == "--dup-rate") {
      // Link-fault floors share --mutate's strict contract: a ratio in
      // [0, 1], parsed in full, or exit 2 (a typo'd rate must never soak a
      // silently-reliable network and exit green).
      const char* v = next();
      const auto parsed = v ? util::parse_double(v) : std::optional<double>{};
      if (!parsed || *parsed < 0.0 || *parsed > 1.0) {
        fail_flag(arg, v);
      } else if (arg == "--fault-rate") {
        cli.soak.fault_rate = *parsed;
      } else {
        cli.soak.dup_rate = *parsed;
      }
    } else if (arg == "--corpus-out") {
      const char* v = next();
      if (!v) {
        fail_flag(arg, v);
      } else {
        cli.corpus_out = v;
      }
    } else if (arg == "--corpus-in") {
      const char* v = next();
      if (!v) {
        fail_flag(arg, v);
      } else {
        cli.corpus_in = v;
      }
    } else if (arg == "--corpus-strict") {
      // All-or-nothing --corpus-in parsing (the pre-tolerance behavior):
      // any malformed line fails the load. For hand-maintained corpora
      // where a bad line means the file itself is wrong.
      cli.corpus_strict = true;
    } else if (arg == "--replay") {
      const char* v = next();
      if (!v) {
        fail_flag(arg, v);
      } else {
        cli.replay = v;
      }
    } else if (arg == "--expect-digest") {
      const char* v = next();
      const auto parsed =
          v ? util::parse_u64_any(v) : std::optional<std::uint64_t>{};
      if (!parsed) {
        fail_flag(arg, v);
      } else {
        cli.expect_digest = *parsed;
        cli.has_expect_digest = true;
      }
    } else {
      std::fprintf(stderr, "error: unknown flag: %s\n", arg.c_str());
      parse_error = true;
    }
  }
  if (parse_error) return usage(argv[0]);
  if (!cli.replay.empty()) return run_replay(cli);
  return run_soak_cli(cli);
}
