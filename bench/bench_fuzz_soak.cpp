// Fuzz soak entry point: the CI fuzz lane and the command-line replay tool.
//
//   ./bench_fuzz_soak --count 1000                 # soak seeds [1, 1000]
//   ./bench_fuzz_soak --seed-base 5000 --count 200 # a different corpus
//   ./bench_fuzz_soak --replay <spec-or-seed>      # one scenario, verbose
//   ./bench_fuzz_soak --replay <spec> --expect-digest 0xABCD  # CI pinning
//
// Exit status: 0 when every scenario upholds its properties (and, for
// --replay --expect-digest, the digest matches); 1 otherwise. On any
// violation a minimal self-contained repro line is printed; paste it back
// via --replay to reproduce the identical run. See fuzz/fuzzer.hpp for the
// full fuzzing HOWTO.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "fuzz/fuzzer.hpp"

namespace {

using namespace amac;

struct CliOptions {
  fuzz::SoakOptions soak;
  std::string replay;
  std::uint64_t expect_digest = 0;
  bool has_expect_digest = false;
  std::size_t progress_every = 0;
};

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--count N] [--seed-base S] [--differential-every K]\n"
      "          [--no-shrink] [--max-shrink-attempts A] [--progress-every P]\n"
      "          [--replay SPEC] [--expect-digest HEX]\n",
      argv0);
  return 2;
}

void print_report(const fuzz::Scenario& s, const fuzz::RunReport& r) {
  std::printf("scenario  %s\n", fuzz::format_spec(s).c_str());
  std::printf("verdict   %s\n", r.verdict.summary().c_str());
  std::printf("result    failure=%s end_time=%llu broadcasts=%llu "
              "deliveries=%llu acks=%llu mid_flight_crashes=%zu\n",
              fuzz::failure_name(r.failure),
              static_cast<unsigned long long>(r.end_time),
              static_cast<unsigned long long>(r.stats.broadcasts),
              static_cast<unsigned long long>(r.stats.deliveries),
              static_cast<unsigned long long>(r.stats.acks),
              r.mid_flight_crashes);
  std::printf("calendar  wheel=%llu overflow=%llu resizes=%llu span=%zu\n",
              static_cast<unsigned long long>(r.stats.wheel_pushes),
              static_cast<unsigned long long>(r.stats.overflow_pushes),
              static_cast<unsigned long long>(r.stats.wheel_resizes),
              r.stats.wheel_span);
  std::printf("digest    fingerprint=0x%016llx trace=0x%016llx\n",
              static_cast<unsigned long long>(r.fingerprint),
              static_cast<unsigned long long>(r.trace_digest));
  if (r.differential_ran) {
    std::printf("reference fingerprint=0x%016llx (%s)\n",
                static_cast<unsigned long long>(r.reference_fingerprint),
                r.failure == fuzz::FailureKind::kDifferential ? "MISMATCH"
                                                              : "match");
  }
  if (!r.detail.empty()) std::printf("detail    %s\n", r.detail.c_str());
}

int run_replay(const CliOptions& cli) {
  const auto scenario = fuzz::parse_spec(cli.replay);
  if (!scenario) {
    std::fprintf(stderr, "error: malformed --replay spec: %s\n",
                 cli.replay.c_str());
    return 2;
  }
  fuzz::RunOptions options;
  options.differential = true;  // replays are rare: always cross-check
  const auto report = fuzz::run_scenario(*scenario, options);
  print_report(*scenario, report);

  bool ok = report.failure == fuzz::FailureKind::kNone;
  if (cli.has_expect_digest && report.fingerprint != cli.expect_digest) {
    std::printf("EXPECTED  fingerprint=0x%016llx -- MISMATCH\n",
                static_cast<unsigned long long>(cli.expect_digest));
    ok = false;
  }
  if (!ok && report.failure != fuzz::FailureKind::kNone) {
    const auto shrunk = fuzz::shrink_scenario(*scenario, report.failure);
    std::printf("minimal   %s\n", fuzz::format_spec(shrunk.scenario).c_str());
  }
  return ok ? 0 : 1;
}

int run_soak_cli(const CliOptions& cli) {
  fuzz::SoakOptions options = cli.soak;
  if (cli.progress_every != 0) {
    options.on_scenario = [&](std::size_t index, const fuzz::Scenario& s,
                              const fuzz::RunReport& r) {
      if ((index + 1) % cli.progress_every == 0) {
        std::printf("  [%zu/%zu] last=%s failure=%s wheel=%llu overflow=%llu "
                    "resizes=%llu\n",
                    index + 1, cli.soak.count,
                    harness::algorithm_name(s.algorithm),
                    fuzz::failure_name(r.failure),
                    static_cast<unsigned long long>(r.stats.wheel_pushes),
                    static_cast<unsigned long long>(r.stats.overflow_pushes),
                    static_cast<unsigned long long>(r.stats.wheel_resizes));
        std::fflush(stdout);
      }
    };
  }
  const auto result = fuzz::run_soak(options);

  std::printf("fuzz soak: %zu scenarios (seeds %llu..%llu), %zu differential "
              "replays\n",
              result.runs,
              static_cast<unsigned long long>(options.seed_base),
              static_cast<unsigned long long>(options.seed_base +
                                              options.count - 1),
              result.differential_runs);
  for (std::size_t i = 0; i < harness::kAlgorithmCount; ++i) {
    std::printf("  %-10s %zu\n",
                harness::algorithm_name(static_cast<harness::Algorithm>(i)),
                result.per_algorithm[i]);
  }
  std::printf("  crash scenarios: %zu (mid-flight cancellations in %zu)\n",
              result.crash_scenarios, result.mid_flight_crash_scenarios);
  std::printf("  calendar events: %llu wheel / %llu overflow heap "
              "(overflow path in %zu scenarios, wheel resized in %zu)\n",
              static_cast<unsigned long long>(result.wheel_events),
              static_cast<unsigned long long>(result.overflow_events),
              result.overflow_scenarios, result.resized_scenarios);
  std::printf("  corpus digest: 0x%016llx\n",
              static_cast<unsigned long long>(result.corpus_digest));

  if (!result.ok()) {
    for (const auto& f : result.failures) {
      std::printf("VIOLATION kind=%s\n  spec    %s\n  minimal %s\n  %s\n",
                  fuzz::failure_name(f.report.failure),
                  fuzz::format_spec(f.scenario).c_str(),
                  fuzz::format_spec(f.minimal).c_str(),
                  f.report.detail.c_str());
      std::printf("  replay: ./bench_fuzz_soak --replay '%s'\n",
                  fuzz::format_spec(f.minimal).c_str());
    }
    std::printf("FAIL: %zu violation(s)\n", result.failures.size());
    return 1;
  }
  std::printf("OK: zero property violations\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    const auto arg = std::string(argv[i]);
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--count") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cli.soak.count = std::strtoull(v, nullptr, 10);
    } else if (arg == "--seed-base") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cli.soak.seed_base = std::strtoull(v, nullptr, 10);
    } else if (arg == "--differential-every") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cli.soak.differential_every = std::strtoull(v, nullptr, 10);
    } else if (arg == "--no-shrink") {
      cli.soak.shrink_failures = false;
    } else if (arg == "--max-shrink-attempts") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cli.soak.max_shrink_attempts = std::strtoull(v, nullptr, 10);
    } else if (arg == "--progress-every") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cli.progress_every = std::strtoull(v, nullptr, 10);
    } else if (arg == "--replay") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cli.replay = v;
    } else if (arg == "--expect-digest") {
      const char* v = next();
      if (!v) return usage(argv[0]);
      cli.expect_digest = std::strtoull(v, nullptr, 0);
      cli.has_expect_digest = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (!cli.replay.empty()) return run_replay(cli);
  return run_soak_cli(cli);
}
