// E12 — contention and the missing F_prog parameter.
//
// The paper (§2) deliberately drops the full abstract MAC layer's second
// timing parameter F_prog (time to receive SOMETHING when neighbors are
// broadcasting) and notes that refining the upper bounds in the
// two-parameter model is future work. This experiment shows what F_prog
// would capture: under a receiver-contention scheduler (one decodable
// frame per receiver per tick), the effective ack bound grows with local
// density, so "O(F_ack)" hides a density factor.
//
//   * two-phase on cliques: decision time grows linearly with n under
//     contention — the 2*F_ack bound holds only against the density-scaled
//     F_ack (here F_ack ~ n);
//   * wPAXOS on grids (bounded degree): contention costs only a constant,
//     because neighborhoods never exceed degree 4.
#include <cstdio>

#include "harness/experiment.hpp"
#include "net/topologies.hpp"
#include "util/table.hpp"

int main() {
  using namespace amac;

  std::printf(
      "E12: receiver contention (the F_prog phenomenon the paper defers).\n"
      "Base per-frame delay 1 tick; one decodable frame per receiver per "
      "tick.\n\n");

  util::Table table({"algorithm", "topology", "n", "max degree",
                     "declared F_ack", "decided at", "time/F_ack", "ok"});

  bool all_expected = true;
  std::vector<double> clique_times;

  for (const std::size_t n : {8u, 16u, 32u, 64u}) {
    const auto g = net::make_clique(n);
    const auto inputs = harness::inputs_alternating(n);
    const mac::Time bound = n + 2;  // degree + slack
    mac::ContentionScheduler sched(1, bound, 7);
    const auto outcome = harness::run_consensus(
        g, harness::two_phase_factory(inputs), sched, inputs, 1'000'000);
    if (!outcome.verdict.ok()) all_expected = false;
    const double units = static_cast<double>(outcome.verdict.last_decision) /
                         static_cast<double>(bound);
    if (units > 2.0) all_expected = false;  // Theorem 4.1 vs declared bound
    clique_times.push_back(
        static_cast<double>(outcome.verdict.last_decision));
    table.row()
        .cell("two-phase")
        .cell("clique")
        .cell(n)
        .cell(n - 1)
        .cell(static_cast<std::uint64_t>(bound))
        .cell(static_cast<std::uint64_t>(outcome.verdict.last_decision))
        .cell(units)
        .cell(outcome.verdict.ok());
  }

  for (const std::size_t side : {4u, 6u, 8u}) {
    const auto g = net::make_grid(side, side);
    const std::size_t n = g.node_count();
    const auto inputs = harness::inputs_alternating(n);
    const auto ids = harness::identity_ids(n);
    const mac::Time bound = 8;  // degree <= 4 plus slack
    mac::ContentionScheduler sched(1, bound, 7);
    const auto outcome = harness::run_consensus(
        g, harness::wpaxos_factory(inputs, ids), sched, inputs, 10'000'000);
    if (!outcome.verdict.ok()) all_expected = false;
    table.row()
        .cell("wPAXOS")
        .cell("grid")
        .cell(n)
        .cell(4)
        .cell(static_cast<std::uint64_t>(bound))
        .cell(static_cast<std::uint64_t>(outcome.verdict.last_decision))
        .cell(static_cast<double>(outcome.verdict.last_decision) / bound)
        .cell(outcome.verdict.ok());
  }

  table.print();
  const bool linear_growth =
      clique_times.size() == 4 && clique_times[3] > 3.0 * clique_times[0];
  std::printf(
      "\nexpected shape: clique decision times grow with n (density is a\n"
      "hidden time cost the F_ack-only analysis folds into the bound:\n"
      "%s), while bounded-degree grids pay only a constant. Every run\n"
      "stays within 2x its declared F_ack (Theorem 4.1 is\n"
      "scheduler-independent). shape holds: %s\n",
      linear_growth ? "observed" : "NOT observed",
      (all_expected && linear_growth) ? "YES" : "NO");
  return (all_expected && linear_growth) ? 0 : 1;
}
