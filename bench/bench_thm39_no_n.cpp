// E3 — Theorem 3.9 / Figure 2: without knowledge of n, consensus is
// impossible in multihop networks, even with unique ids and knowledge of D.
//
// Reproduces the paper's K_D construction executably:
//   1. On a standalone line L_D, StabilityConsensus (ids + D, no n) decides
//      the common input by synchronous step t (Lemma 3.8).
//   2. In K_D (two L_D copies + the L_{D-1} bridge line, diameter still D)
//      under the semi-synchronous scheduler (endpoint w's messages held for
//      t steps), each copy runs the standalone execution verbatim and
//      decides its own value — agreement violated.
//   3. The §3.3 indistinguishability is checked digest-by-digest.
#include <cstdio>

#include "harness/experiment.hpp"
#include "net/paper_networks.hpp"
#include "util/table.hpp"
#include "verify/trace.hpp"

int main() {
  using namespace amac;

  std::printf(
      "E3 / Theorem 3.9 (Figure 2): consensus needs knowledge of n.\n"
      "Algorithm under test: StabilityConsensus (ids + D, no n).\n\n");

  util::Table table({"D", "|K_D|", "t(sync steps)", "L_D all-0", "L_D all-1",
                     "K_D agreement", "L1 decides", "L2 decides",
                     "indist prefix", "indist holds"});

  bool all_expected = true;
  for (const std::uint32_t diameter : {3u, 5u, 8u, 12u}) {
    const auto fig = net::make_figure2(diameter);
    const std::size_t ld_n = fig.ld.node_count();
    const std::size_t kd_n = fig.kd.node_count();

    // --- Lemma 3.8: standalone L_D decides b by step t.
    mac::Time t = 0;
    mac::Value ld_decisions[2] = {-1, -1};
    for (const mac::Value b : {0, 1}) {
      const auto inputs = harness::inputs_all(ld_n, b);
      mac::SynchronousScheduler sched(1);
      const auto outcome = harness::run_consensus(
          fig.ld,
          harness::stability_factory(inputs, diameter,
                                     harness::identity_ids(ld_n)),
          sched, inputs, 100'000);
      ld_decisions[b] = outcome.verdict.ok() ? *outcome.verdict.decision : -1;
      t = std::max(t, outcome.verdict.last_decision);
    }

    // --- K_D under the semi-synchronous scheduler.
    std::vector<mac::Value> inputs(kd_n, 0);
    for (const NodeId u : fig.l2) inputs[u] = 1;
    mac::HoldbackScheduler sched(
        std::make_unique<mac::SynchronousScheduler>(1), t + 3);
    sched.hold_sender(fig.bridge_line.front());
    mac::Network net(fig.kd,
                     harness::stability_factory(inputs, diameter,
                                                harness::identity_ids(kd_n)),
                     sched);
    net.run(mac::StopWhen::kAllDecided, 1'000'000);
    const auto verdict = verify::check_consensus(net, inputs);
    const auto l1_far = net.decision(fig.l1.back());
    const auto l2_far = net.decision(fig.l2.back());

    // --- Indistinguishability of the L1 copy vs standalone L_D.
    mac::SynchronousScheduler ld_sched(1);
    const auto ld_inputs = harness::inputs_all(ld_n, 0);
    mac::Network ld_net(
        fig.ld,
        harness::stability_factory(ld_inputs, diameter,
                                   harness::identity_ids(ld_n)),
        ld_sched);
    std::vector<NodeId> ld_watch;
    for (NodeId u = 0; u < ld_n; ++u) ld_watch.push_back(u);
    const auto ld_trace = verify::DigestTrace::record(ld_net, ld_watch, t);

    mac::HoldbackScheduler kd_sched(
        std::make_unique<mac::SynchronousScheduler>(1), t + 3);
    kd_sched.hold_sender(fig.bridge_line.front());
    mac::Network kd_net(fig.kd,
                        harness::stability_factory(
                            inputs, diameter, harness::identity_ids(kd_n)),
                        kd_sched);
    const auto kd_trace = verify::DigestTrace::record(kd_net, fig.l1, t);

    std::size_t min_prefix = t;
    for (std::size_t i = 0; i < ld_n; ++i) {
      min_prefix = std::min(min_prefix, kd_trace.common_prefix(i, ld_trace, i));
    }
    const bool indist = min_prefix == t;

    table.row()
        .cell(diameter)
        .cell(kd_n)
        .cell(static_cast<std::uint64_t>(t))
        .cell(std::string("decides ") + std::to_string(ld_decisions[0]))
        .cell(std::string("decides ") + std::to_string(ld_decisions[1]))
        .cell(verdict.agreement ? "holds (!)" : "VIOLATED")
        .cell(static_cast<std::int64_t>(l1_far.value))
        .cell(static_cast<std::int64_t>(l2_far.value))
        .cell(min_prefix)
        .cell(indist);

    if (ld_decisions[0] != 0 || ld_decisions[1] != 1) all_expected = false;
    if (verdict.agreement) all_expected = false;
    if (l1_far.value != 0 || l2_far.value != 1) all_expected = false;
    if (!indist) all_expected = false;
  }

  table.print();
  std::printf(
      "\nexpected shape: standalone L_D correct; K_D (same diameter D!)\n"
      "violates agreement (L1 -> 0, L2 -> 1); copies indistinguishable from\n"
      "standalone for all t steps. shape holds: %s\n",
      all_expected ? "YES" : "NO");
  return all_expected ? 0 : 1;
}
