// Log-service benchmark: the tentpole A/B for consensus-as-a-service.
//
// Two rows, SAME code path (log::ReplicatedLog), different LogConfig:
//   * LogServiceNaive   — batch_size = 1, lease_slots = 1: every client op
//     is its own slot and every slot runs full wPAXOS. This is the "PR 1-8
//     one-shot in a loop" cost model.
//   * LogServiceBatched — batch_size = 8, lease_slots = 64: one decided
//     value commits 8 ops, and 63 of every 64 slots ride the leader lease
//     on the CommitFlood fast path (one dissemination wave instead of a
//     proposer/acceptor exchange — the Lemma 4.2-style amortization).
//
// Both rows apply prefixes of the SAME seed-deterministic client stream,
// so the KvStateMachine digests are directly comparable in --smoke mode
// (equal op count => equal digest, regardless of slotting). Each row also
// runs the per-slot agreement/validity oracle on every decided slot; any
// oracle failure fails the binary.
//
// Output: a console table plus BENCH_log.json (schema amac-bench-v1) whose
// ns_per_op is wall nanoseconds per APPLIED CLIENT OP — the service-level
// unit both rows share — with ops_per_sec, decide-latency p50/p99 (virtual
// ticks), and bytes-per-decided-op as extra keys. CI gates
// LogServiceBatched relative to LogServiceNaive with --min-speedup: the
// lease+batch path must beat one-op-per-slot by a machine-independent
// margin.
//
// A third row, LogServiceLeaderReads, re-runs the batched config with a
// leader read every 2nd decided slot (read-index freshness: each read
// binds to the latest decided slot and serves once the applied prefix
// passes it). Its JSON row carries reads_per_sec and read p50/p99 ticks;
// CI gates it with the same machine-independent --min-speedup floor
// relative to the naive row (and skip-if-absent from the baseline, so the
// new row doesn't force a same-commit baseline refresh).
//
// --smoke runs the configs on a small op count and prints the pinned
// decided-log digest line ctest/CI grep:
//   decided log digest: 0x...
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "log/replicated_log.hpp"
#include "mac/schedulers.hpp"
#include "net/topologies.hpp"
#include "util/parse.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace amac;

struct RowResult {
  std::string name;
  std::size_t ops = 0;
  double ns_per_op = 0;
  double ops_per_sec = 0;
  mac::Time p50 = 0;
  mac::Time p99 = 0;
  double bytes_per_op = 0;
  std::uint64_t digest = 0;
  // Leader-read path (rows with LogConfig::read_every > 0 only).
  std::size_t reads = 0;
  double reads_per_sec = 0;
  mac::Time read_p50 = 0;
  mac::Time read_p99 = 0;
  log::LogServiceStats stats;  // latency vectors cleared after folding
};

/// Decide-latency percentile in virtual ticks (nearest-rank).
mac::Time percentile(std::vector<mac::Time> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto rank = static_cast<std::size_t>(p * static_cast<double>(v.size() - 1));
  return v[rank];
}

RowResult run_service(const std::string& name, std::size_t n,
                      std::size_t total_ops, const log::LogConfig& config) {
  const net::Graph graph = net::make_clique(n);
  mac::SynchronousScheduler scheduler(1);
  const log::Workload workload(/*seed=*/0xA11C0DE5, total_ops);
  log::ReplicatedLog service(graph, scheduler, workload, config);

  const auto t0 = std::chrono::steady_clock::now();
  const log::LogServiceStats& stats =
      service.drive(/*horizon=*/mac::Time{1} << 40);
  const auto t1 = std::chrono::steady_clock::now();
  const double wall_ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());

  RowResult row;
  row.name = name;
  row.ops = stats.ops_applied;
  row.stats = stats;
  if (stats.ops_applied > 0) {
    row.ns_per_op = wall_ns / static_cast<double>(stats.ops_applied);
    row.ops_per_sec = 1e9 * static_cast<double>(stats.ops_applied) / wall_ns;
  }
  row.p50 = percentile(stats.decide_latency, 0.50);
  row.p99 = percentile(stats.decide_latency, 0.99);
  if (stats.ops_applied > 0) {
    row.bytes_per_op = static_cast<double>(stats.payload_bytes) /
                       static_cast<double>(stats.ops_applied);
  }
  row.digest = service.state_machine().digest();
  row.reads = stats.reads_served;
  if (stats.reads_served > 0) {
    row.reads_per_sec = 1e9 * static_cast<double>(stats.reads_served) / wall_ns;
    row.read_p50 = percentile(stats.read_latency, 0.50);
    row.read_p99 = percentile(stats.read_latency, 0.99);
  }
  row.stats.decide_latency.clear();
  row.stats.read_latency.clear();
  return row;
}

void write_bench_json(const std::vector<RowResult>& rows, const char* path) {
  std::ofstream out(path);
  out << "{\n  \"schema\": \"amac-bench-v1\",\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const RowResult& r = rows[i];
    out << "    {\"name\": \"" << r.name << "\", \"ns_per_op\": "
        << r.ns_per_op << ", \"iterations\": " << r.ops
        << ", \"ops_per_sec\": " << r.ops_per_sec
        << ", \"decide_p50_ticks\": " << r.p50
        << ", \"decide_p99_ticks\": " << r.p99
        << ", \"bytes_per_decided_op\": " << r.bytes_per_op;
    if (r.reads > 0) {
      out << ", \"reads\": " << r.reads
          << ", \"reads_per_sec\": " << r.reads_per_sec
          << ", \"read_p50_ticks\": " << r.read_p50
          << ", \"read_p99_ticks\": " << r.read_p99;
    }
    out << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

/// Healthy-run invariants shared by bench and smoke rows. Returns false
/// (after printing why) instead of asserting so the binary exits 1 with a
/// readable line in CI logs.
bool check_row(const RowResult& row, std::size_t expect_ops) {
  if (!row.stats.complete || row.ops != expect_ops) {
    std::printf("FAIL %s: incomplete (applied %zu of %zu, %zu/%zu slots)\n",
                row.name.c_str(), row.ops, expect_ops,
                row.stats.slots_decided, row.stats.slots_total);
    return false;
  }
  if (row.stats.oracle_failures != 0) {
    std::printf("FAIL %s: %zu per-slot oracle failures\n", row.name.c_str(),
                row.stats.oracle_failures);
    return false;
  }
  return true;
}

log::LogConfig batched_config() {
  log::LogConfig config;
  config.batch_size = 8;
  config.window = 4;
  config.lease_slots = 64;
  return config;
}

log::LogConfig naive_config() {
  log::LogConfig config;
  config.batch_size = 1;
  config.window = 4;  // same pipelining depth: the delta is lease + batch
  config.lease_slots = 1;
  return config;
}

log::LogConfig reads_config() {
  // The batched service with a leader read every 2nd decided slot: each
  // read binds to the freshest decided slot (read-index) and serves once
  // the applied prefix passes it.
  log::LogConfig config = batched_config();
  config.read_every = 2;
  return config;
}

/// Read-path invariants for rows with read_every on: every issued read
/// must have been served (a complete run leaves no read behind its bound).
bool check_reads(const RowResult& row) {
  if (row.stats.reads_issued == 0 ||
      row.stats.reads_served != row.stats.reads_issued) {
    std::printf("FAIL %s: %zu of %zu leader reads served\n", row.name.c_str(),
                row.stats.reads_served, row.stats.reads_issued);
    return false;
  }
  return true;
}

int run_smoke(std::size_t n, std::size_t ops) {
  const RowResult batched =
      run_service("LogServiceBatched", n, ops, batched_config());
  const RowResult naive = run_service("LogServiceNaive", n, ops, naive_config());
  const RowResult reads =
      run_service("LogServiceLeaderReads", n, ops, reads_config());
  bool ok = check_row(batched, ops) && check_row(naive, ops) &&
            check_row(reads, ops) && check_reads(reads);
  // Reads are pure observers: the read-enabled service decides the same
  // log as the read-free one.
  if (ok && reads.digest != batched.digest) {
    std::printf("FAIL smoke: reads digest 0x%016llx != batched 0x%016llx\n",
                static_cast<unsigned long long>(reads.digest),
                static_cast<unsigned long long>(batched.digest));
    ok = false;
  }
  // Same client stream, same op count => the decided logs must linearize
  // identically no matter how they were slotted. This is THE service-level
  // correctness statement, so smoke pins it.
  if (ok && batched.digest != naive.digest) {
    std::printf("FAIL smoke: batched digest 0x%016llx != naive 0x%016llx\n",
                static_cast<unsigned long long>(batched.digest),
                static_cast<unsigned long long>(naive.digest));
    ok = false;
  }
  std::printf("log-service smoke: n=%zu ops=%zu slots=%zu+%zu ok=%d\n", n,
              ops, batched.stats.slots_total, naive.stats.slots_total,
              ok ? 1 : 0);
  std::printf("decided log digest: 0x%016llx\n",
              static_cast<unsigned long long>(batched.digest));
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace amac;

  std::size_t ops = 100000;
  std::size_t naive_ops = 8192;
  std::size_t n = 16;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto next = [&]() -> std::optional<std::uint64_t> {
      if (i + 1 >= argc) return std::nullopt;
      return util::parse_u64(argv[++i]);
    };
    std::optional<std::uint64_t> value;
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--ops" && (value = next())&& *value > 0) {
      ops = static_cast<std::size_t>(*value);
    } else if (arg == "--naive-ops" && (value = next()) && *value > 0) {
      naive_ops = static_cast<std::size_t>(*value);
    } else if (arg == "--nodes" && (value = next()) && *value >= 2) {
      n = static_cast<std::size_t>(*value);
    } else {
      std::fprintf(stderr,
                   "usage: bench_log_service [--smoke] [--ops N] "
                   "[--naive-ops N] [--nodes N>=2]\n");
      return 2;
    }
  }

  if (smoke) return run_smoke(n, /*ops=*/1024);

  std::printf(
      "Log service A/B: batched+leased (batch=8, lease=64) vs naive\n"
      "one-op-per-slot (batch=1, lease=1), n=%zu clique, synchronous\n"
      "scheduler, window=4, identical client stream.\n\n",
      n);

  // The naive row runs a full wPAXOS instance per client op; it gets a
  // smaller op count (ns_per_op normalizes the comparison). The batched
  // row must sustain the full stream.
  std::vector<RowResult> rows;
  rows.push_back(run_service("LogServiceBatched", n, ops, batched_config()));
  rows.push_back(run_service("LogServiceNaive", n, naive_ops, naive_config()));
  rows.push_back(
      run_service("LogServiceLeaderReads", n, ops, reads_config()));

  util::Table table({"service", "client ops", "slots", "full/leased",
                     "ticks", "ns/op", "ops/sec", "p50", "p99", "bytes/op",
                     "reads", "r/sec", "r_p99"});
  for (const RowResult& r : rows) {
    table.row()
        .cell(r.name)
        .cell(static_cast<std::uint64_t>(r.ops))
        .cell(static_cast<std::uint64_t>(r.stats.slots_total))
        .cell(std::to_string(r.stats.slots_full_paxos) + "/" +
              std::to_string(r.stats.slots_leased))
        .cell(static_cast<std::uint64_t>(r.stats.end_time))
        .cell(r.ns_per_op, 1)
        .cell(r.ops_per_sec, 0)
        .cell(static_cast<std::uint64_t>(r.p50))
        .cell(static_cast<std::uint64_t>(r.p99))
        .cell(r.bytes_per_op, 2)
        .cell(static_cast<std::uint64_t>(r.reads))
        .cell(r.reads_per_sec, 0)
        .cell(static_cast<std::uint64_t>(r.read_p99));
  }
  table.print();

  bool ok = check_row(rows[0], ops) && check_row(rows[1], naive_ops) &&
            check_row(rows[2], ops) && check_reads(rows[2]);
  if (ok && rows[0].ns_per_op >= rows[1].ns_per_op) {
    std::printf(
        "\nFAIL: batched service (%0.1f ns/op) did not beat naive "
        "(%0.1f ns/op)\n",
        rows[0].ns_per_op, rows[1].ns_per_op);
    ok = false;
  }

  write_bench_json(rows, "BENCH_log.json");
  std::printf("\n%s. speedup=%.2fx, wrote BENCH_log.json\n",
              ok ? "OK" : "FAILED",
              rows[0].ns_per_op > 0 ? rows[1].ns_per_op / rows[0].ns_per_op
                                    : 0.0);
  return ok ? 0 : 1;
}
