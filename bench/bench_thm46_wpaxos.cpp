// E6 — Theorem 4.6: wPAXOS solves consensus in O(D * F_ack) time on any
// connected multihop topology (unique ids + knowledge of n).
//
// Sweep of topology families x F_ack; reports decision time normalized by
// D * F_ack, plus the GST decomposition the liveness proof (Lemma 4.5) is
// built on: when the leader election stabilizes network-wide, when the
// leader's shortest-path tree completes, and when the last node decides.
// The paper's shape: normalized time bounded by a constant across families
// and sizes (each GST phase is itself O(D * F_ack)).
#include <cstdio>

#include "core/wpaxos/wpaxos.hpp"
#include "harness/experiment.hpp"
#include "net/topologies.hpp"
#include "util/table.hpp"

namespace {

using namespace amac;

struct GstProbe {
  const net::Graph* graph;
  std::vector<std::uint64_t> ids;
  std::uint64_t leader_id;
  NodeId leader_index;
  std::vector<std::uint32_t> bfs;

  mac::Time leader_stable = 0;
  mac::Time tree_stable = 0;
  bool leader_done = false;
  bool tree_done = false;

  void check(mac::Network& net) {
    if (!leader_done) {
      bool all = true;
      for (NodeId u = 0; u < net.node_count() && all; ++u) {
        const auto* p =
            dynamic_cast<const core::wpaxos::WPaxos*>(&net.process(u));
        all = p->omega() == leader_id;
      }
      if (all) {
        leader_done = true;
        leader_stable = net.now();
      }
    }
    if (!tree_done) {
      bool all = true;
      for (NodeId u = 0; u < net.node_count() && all; ++u) {
        const auto* p =
            dynamic_cast<const core::wpaxos::WPaxos*>(&net.process(u));
        const auto it = p->dist().find(leader_id);
        all = it != p->dist().end() && it->second == bfs[u];
      }
      if (all) {
        tree_done = true;
        tree_stable = net.now();
      }
    }
  }
};

}  // namespace

int main() {
  std::printf(
      "E6 / Theorem 4.6: wPAXOS on multihop topologies; time normalized by\n"
      "D * F_ack, with the GST decomposition of Lemma 4.5.\n\n");

  util::Table table({"topology", "n", "D", "F_ack", "leader-stable",
                     "tree-stable", "decided", "time/(D*F_ack)", "broadcasts",
                     "proposals", "max payload B", "ok"});

  struct Case {
    std::string name;
    net::Graph graph;
  };
  util::Rng rng(42);
  std::vector<Case> cases;
  cases.push_back({"line-16", net::make_line(16)});
  cases.push_back({"line-48", net::make_line(48)});
  cases.push_back({"ring-32", net::make_ring(32)});
  cases.push_back({"grid-6x6", net::make_grid(6, 6)});
  cases.push_back({"grid-10x10", net::make_grid(10, 10)});
  cases.push_back({"torus-6x6", net::make_torus(6, 6)});
  cases.push_back({"tree-63", net::make_binary_tree(63)});
  cases.push_back({"star-32", net::make_star(32)});
  cases.push_back({"barbell-12", net::make_barbell(12, 8)});
  cases.push_back({"geo-64", net::make_random_geometric(64, 0.2, rng)});
  cases.push_back({"gnp-48", net::make_random_connected(48, 0.08, rng)});

  bool all_ok = true;
  double max_norm = 0;
  for (auto& c : cases) {
    const std::size_t n = c.graph.node_count();
    const auto d = c.graph.diameter();
    for (const mac::Time fack : {1u, 4u}) {
      const auto inputs = harness::inputs_random(n, rng);
      const auto ids = harness::permuted_ids(n, rng);

      GstProbe probe;
      probe.graph = &c.graph;
      probe.ids = ids;
      probe.leader_id = n - 1;
      for (NodeId u = 0; u < n; ++u) {
        if (ids[u] == probe.leader_id) probe.leader_index = u;
      }
      probe.bfs = c.graph.bfs_distances(probe.leader_index);

      mac::UniformRandomScheduler sched(fack, rng());
      mac::Network net(c.graph, harness::wpaxos_factory(inputs, ids), sched);
      net.set_post_event_hook(
          [&probe](mac::Network& network) { probe.check(network); });
      net.run(mac::StopWhen::kAllDecided, 100'000'000);
      const auto verdict = verify::check_consensus(net, inputs);

      std::uint64_t proposals = 0;
      for (NodeId u = 0; u < n; ++u) {
        proposals += dynamic_cast<const core::wpaxos::WPaxos*>(
                         &net.process(u))
                         ->node_stats()
                         .proposals_started;
      }

      const double norm = static_cast<double>(verdict.last_decision) /
                          (static_cast<double>(d) * fack);
      max_norm = std::max(max_norm, norm);
      if (!verdict.ok()) all_ok = false;

      table.row()
          .cell(c.name)
          .cell(n)
          .cell(d)
          .cell(static_cast<std::uint64_t>(fack))
          .cell(static_cast<std::uint64_t>(probe.leader_stable))
          .cell(static_cast<std::uint64_t>(probe.tree_stable))
          .cell(static_cast<std::uint64_t>(verdict.last_decision))
          .cell(norm)
          .cell(net.stats().broadcasts)
          .cell(proposals)
          .cell(net.stats().max_payload_bytes)
          .cell(verdict.ok());
    }
  }

  table.print();
  std::printf(
      "\nexpected shape: every run correct; normalized time bounded by a\n"
      "constant across families and sizes (O(D*F_ack), Theorem 4.6); GST\n"
      "phases (leader-stable <= tree-stable <= decided) each O(D*F_ack).\n"
      "max normalized time observed: %.2f. shape holds: %s\n",
      max_norm, all_ok ? "YES" : "NO");
  return all_ok ? 0 : 1;
}
