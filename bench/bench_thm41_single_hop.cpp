// E5 — Theorem 4.1: two-phase consensus solves single-hop consensus in
// O(F_ack) time (constant 2), with unique ids and NO knowledge of n.
//
// Sweep n x F_ack x scheduler; report decision time in F_ack units. The
// paper's shape: time <= 2*F_ack always, independent of n — contrast with
// the asynchronous broadcast model where this setting is impossible
// (Abboud et al., discussed in §4.1).
#include <cstdio>

#include "harness/experiment.hpp"
#include "net/topologies.hpp"
#include "util/table.hpp"

int main() {
  using namespace amac;

  std::printf(
      "E5 / Theorem 4.1: two-phase consensus on cliques, decision time in\n"
      "F_ack units (bound: 2.00), across schedulers and sizes.\n\n");

  util::Table table({"n", "F_ack", "scheduler", "time", "time/F_ack",
                     "decision", "max payload B", "ok"});

  bool all_expected = true;
  util::Rng rng(20240609);
  for (const std::size_t n : {2u, 8u, 32u, 128u, 512u}) {
    for (const mac::Time fack : {1u, 8u, 32u}) {
      const auto g = net::make_clique(n);
      const auto inputs = harness::inputs_random(n, rng);

      struct Sched {
        const char* name;
        std::unique_ptr<mac::Scheduler> s;
      };
      std::vector<Sched> schedulers;
      schedulers.push_back(
          {"synchronous", std::make_unique<mac::SynchronousScheduler>(fack)});
      schedulers.push_back(
          {"max-delay", std::make_unique<mac::MaxDelayScheduler>(fack)});
      schedulers.push_back({"random", std::make_unique<
                                          mac::UniformRandomScheduler>(
                                          fack, rng())});

      for (auto& [name, sched] : schedulers) {
        const auto outcome = harness::run_consensus(
            g, harness::two_phase_factory(inputs), *sched, inputs,
            100 * fack);
        const double units =
            static_cast<double>(outcome.verdict.last_decision) /
            static_cast<double>(fack);
        if (!outcome.verdict.ok() || units > 2.0) all_expected = false;
        table.row()
            .cell(n)
            .cell(static_cast<std::uint64_t>(fack))
            .cell(name)
            .cell(static_cast<std::uint64_t>(outcome.verdict.last_decision))
            .cell(units)
            .cell(static_cast<std::int64_t>(*outcome.verdict.decision))
            .cell(outcome.stats.max_payload_bytes)
            .cell(outcome.verdict.ok());
      }
    }
  }

  table.print();
  std::printf(
      "\nexpected shape: every run decides within 2*F_ack regardless of n\n"
      "(O(F_ack), constant 2 — paper §4.1); payloads hold one id + O(1)\n"
      "bytes. shape holds: %s\n",
      all_expected ? "YES" : "NO");
  return all_expected ? 0 : 1;
}
