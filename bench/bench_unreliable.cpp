// E10 — the paper's open question (conclusion, future work #1): consensus
// in a dual-graph abstract MAC layer with unreliable links.
//
// Three measurements:
//   1. Safety sweep: wPAXOS with reliable-only trees under random lossy
//      overlays at several delivery probabilities — always correct.
//   2. The liveness trap: letting trees route over unreliable edges and
//      then silencing them strands a majority's responses; the leader
//      never decides (this is WHY the paper calls it an open question).
//   3. The mitigation: tree_reliable_only restores O(D * F_ack) liveness
//      while the overlay keeps accelerating everything else.
#include <cstdio>

#include "harness/experiment.hpp"
#include "net/topologies.hpp"
#include "util/table.hpp"

namespace {

using namespace amac;

net::Graph random_overlay(const net::Graph& g, std::size_t extra_edges,
                          util::Rng& rng) {
  net::Graph overlay(g.node_count());
  const auto n = static_cast<NodeId>(g.node_count());
  while (overlay.edge_count() < extra_edges) {
    const auto a = static_cast<NodeId>(rng.uniform(0, n - 1));
    const auto b = static_cast<NodeId>(rng.uniform(0, n - 1));
    if (a == b || g.has_edge(a, b) || overlay.has_edge(a, b)) continue;
    overlay.add_edge(a, b);
  }
  return overlay;
}

}  // namespace

int main() {
  std::printf(
      "E10: the dual-graph model (reliable graph + unreliable overlay).\n\n");

  bool all_expected = true;

  // --- 1. Safety sweep.
  {
    util::Table table({"topology", "overlay edges", "delivery p",
                       "decided at", "verdict"});
    util::Rng rng(5);
    for (const double p : {0.0, 0.3, 0.7, 1.0}) {
      const auto g = net::make_grid(5, 5);
      const auto overlay = random_overlay(g, 8, rng);
      const auto inputs = harness::inputs_random(25, rng);
      const auto ids = harness::permuted_ids(25, rng);
      core::wpaxos::WPaxosConfig cfg;
      cfg.tree_reliable_only = true;
      mac::LossyScheduler sched(
          std::make_unique<mac::UniformRandomScheduler>(3, rng()), p, rng());
      mac::Network net(g, harness::wpaxos_factory(inputs, ids, cfg), sched,
                       &overlay);
      net.run(mac::StopWhen::kAllDecided, 10'000'000);
      const auto verdict = verify::check_consensus(net, inputs);
      if (!verdict.ok()) all_expected = false;
      table.row()
          .cell("grid-5x5")
          .cell(overlay.edge_count())
          .cell(p)
          .cell(static_cast<std::uint64_t>(verdict.last_decision))
          .cell(verdict.summary());
    }
    std::printf("1. wPAXOS + reliable-only trees under lossy overlays:\n");
    table.print();
  }

  // --- 2 & 3. The silenced-chord adversary.
  {
    std::printf(
        "\n2/3. silenced-chord adversary (line-11, unreliable chord from\n"
        "the leader to the middle; chord generous until t=6, then silent):\n");
    util::Table table({"tree policy", "outcome", "decided nodes",
                       "agreement"});
    for (const bool reliable_only : {false, true}) {
      net::Graph line = net::make_line(11);
      net::Graph overlay(11);
      overlay.add_edge(0, 5);
      std::vector<std::uint64_t> ids;
      for (NodeId u = 0; u < 11; ++u) ids.push_back(10 - u);  // leader at 0
      const auto inputs = harness::inputs_alternating(11);

      core::wpaxos::WPaxosConfig cfg;
      cfg.tree_reliable_only = reliable_only;
      mac::LossyScheduler sched(
          std::make_unique<mac::SynchronousScheduler>(1), 1.0, 3);
      sched.set_cutoff(6);
      mac::Network net(line, harness::wpaxos_factory(inputs, ids, cfg),
                       sched, &overlay);
      const auto result = net.run(mac::StopWhen::kAllDecided, 50'000);
      const auto verdict = verify::check_consensus(net, inputs);
      std::size_t decided = 0;
      for (NodeId u = 0; u < 11; ++u) {
        if (net.decision(u).decided) ++decided;
      }
      table.row()
          .cell(reliable_only ? "reliable-only" : "any-edge (paper's gap)")
          .cell(result.condition_met
                    ? "decided"
                    : "STALLED (liveness lost, safety kept)")
          .cell(decided)
          .cell(verdict.agreement);
      if (reliable_only && !result.condition_met) all_expected = false;
      if (!reliable_only && result.condition_met) all_expected = false;
      if (!verdict.agreement) all_expected = false;
    }
    table.print();
  }

  std::printf(
      "\nexpected shape: safety in every configuration; any-edge trees\n"
      "stall under the silenced chord (the open question's sharp edge);\n"
      "reliable-only trees decide. shape holds: %s\n",
      all_expected ? "YES" : "NO");
  return all_expected ? 0 : 1;
}
