// E8 — ablations of the three wPAXOS design choices the paper motivates in
// §4.2.1. Each row compares the full algorithm against one switch off:
//
//   * tree_priority off: Algorithm 4's "move the leader's search message to
//     the front" is what completes the leader's tree soon after election
//     stabilizes; without it the tree (and decision) waits behind O(n)
//     other roots' searches.
//   * aggregate_responses off: every acceptor response travels to the
//     leader individually, recreating the Theta(n)-messages bottleneck the
//     paper's aggregation exists to avoid.
//   * change_gating off: the leader regenerates proposals on every observed
//     event instead of Theta(1) per change notification — a proposal storm.
//
// Safety must hold in every configuration (it does: the switches only
// affect liveness/performance); the measured columns show the cost.
#include <cstdio>

#include "core/wpaxos/wpaxos.hpp"
#include "harness/experiment.hpp"
#include "net/topologies.hpp"
#include "util/table.hpp"

namespace {

using namespace amac;

struct Measured {
  mac::Time time = 0;
  std::uint64_t broadcasts = 0;
  std::uint64_t proposals = 0;
  bool ok = false;
};

Measured run(const net::Graph& g, const core::wpaxos::WPaxosConfig& cfg,
             std::uint64_t seed) {
  const std::size_t n = g.node_count();
  util::Rng rng(seed);
  const auto inputs = harness::inputs_random(n, rng);
  const auto ids = harness::permuted_ids(n, rng);
  mac::UniformRandomScheduler sched(2, rng());
  mac::Network net(g, harness::wpaxos_factory(inputs, ids, cfg), sched);
  net.run(mac::StopWhen::kAllDecided, 100'000'000);
  const auto verdict = verify::check_consensus(net, inputs);
  Measured m;
  m.time = verdict.last_decision;
  m.broadcasts = net.stats().broadcasts;
  for (NodeId u = 0; u < n; ++u) {
    m.proposals += dynamic_cast<const core::wpaxos::WPaxos*>(&net.process(u))
                       ->node_stats()
                       .proposals_started;
  }
  m.ok = verdict.ok();
  return m;
}

}  // namespace

int main() {
  std::printf(
      "E8: wPAXOS design-choice ablations (random scheduler, F_ack=2,\n"
      "averaged over 3 seeds).\n\n");

  struct Case {
    std::string name;
    net::Graph graph;
  };
  util::Rng topo_rng(3);
  std::vector<Case> cases;
  cases.push_back({"line-32", net::make_line(32)});
  cases.push_back({"grid-8x8", net::make_grid(8, 8)});
  cases.push_back({"geo-64", net::make_random_geometric(64, 0.2, topo_rng)});

  struct Ablation {
    const char* name;
    core::wpaxos::WPaxosConfig cfg;
  };
  std::vector<Ablation> ablations;
  ablations.push_back({"full", {}});
  {
    core::wpaxos::WPaxosConfig c;
    c.tree_priority = false;
    ablations.push_back({"no-tree-priority", c});
  }
  {
    core::wpaxos::WPaxosConfig c;
    c.aggregate_responses = false;
    ablations.push_back({"no-aggregation", c});
  }
  {
    core::wpaxos::WPaxosConfig c;
    c.change_gating = false;
    ablations.push_back({"no-change-gating", c});
  }

  util::Table table({"topology", "variant", "time", "vs full", "broadcasts",
                     "proposals", "safe"});

  bool all_safe = true;
  bool storm_visible = true;
  for (auto& c : cases) {
    double full_time = 0;
    for (const auto& ab : ablations) {
      double time = 0;
      double broadcasts = 0;
      double proposals = 0;
      bool ok = true;
      const int kSeeds = 3;
      for (int s = 0; s < kSeeds; ++s) {
        const auto m = run(c.graph, ab.cfg, 1000 + s);
        time += static_cast<double>(m.time) / kSeeds;
        broadcasts += static_cast<double>(m.broadcasts) / kSeeds;
        proposals += static_cast<double>(m.proposals) / kSeeds;
        ok = ok && m.ok;
      }
      if (std::string(ab.name) == "full") full_time = time;
      all_safe = all_safe && ok;
      table.row()
          .cell(c.name)
          .cell(ab.name)
          .cell(time, 1)
          .cell(full_time > 0 ? time / full_time : 1.0)
          .cell(broadcasts, 0)
          .cell(proposals, 1)
          .cell(ok);
    }
  }

  table.print();
  std::printf(
      "\nexpected shape: every variant SAFE (switches are liveness-only);\n"
      "no-aggregation and no-tree-priority slow decisions; no-change-gating\n"
      "multiplies proposal counts. safety holds: %s\n",
      all_safe ? "YES" : "NO");
  (void)storm_visible;
  return all_safe ? 0 : 1;
}
