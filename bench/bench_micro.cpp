// E9: substrate micro-benchmarks (google-benchmark): engine event
// throughput, serde round-trips, graph algorithms, wPAXOS end-to-end.
#include <benchmark/benchmark.h>

#include "core/wpaxos/wpaxos.hpp"
#include "harness/experiment.hpp"
#include "net/topologies.hpp"
#include "util/rng.hpp"
#include "util/serde.hpp"

namespace {

using namespace amac;

/// Minimal traffic generator: broadcasts `rounds` one-byte messages.
class Pinger final : public mac::Process {
 public:
  explicit Pinger(std::size_t rounds) : rounds_(rounds) {}

  void on_start(mac::Context& ctx) override { send(ctx); }
  void on_receive(const mac::Packet&, mac::Context&) override {}
  void on_ack(mac::Context& ctx) override {
    if (sent_ < rounds_) send(ctx);
  }
  std::unique_ptr<mac::Process> clone() const override {
    return std::make_unique<Pinger>(*this);
  }
  void digest(util::Hasher& h) const override { h.mix_u64(sent_); }

 private:
  void send(mac::Context& ctx) {
    ++sent_;
    ctx.broadcast(util::Buffer{1});
  }
  std::size_t rounds_;
  std::size_t sent_ = 0;
};

void BM_EngineSyncRounds(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = net::make_ring(n);
  const mac::ProcessFactory factory = [](NodeId) {
    return std::make_unique<Pinger>(50);
  };
  std::uint64_t deliveries = 0;
  for (auto _ : state) {
    mac::SynchronousScheduler sched(1);
    mac::Network net(g, factory, sched);
    net.run(mac::StopWhen::kQuiescent, 1000);
    deliveries = net.stats().deliveries;
    benchmark::DoNotOptimize(deliveries);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(deliveries));
  state.SetLabel("deliveries/iter=" + std::to_string(deliveries));
}
BENCHMARK(BM_EngineSyncRounds)->Arg(16)->Arg(64)->Arg(256);

void BM_EngineRandomScheduler(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = net::make_ring(n);
  const mac::ProcessFactory factory = [](NodeId) {
    return std::make_unique<Pinger>(50);
  };
  for (auto _ : state) {
    mac::UniformRandomScheduler sched(8, 42);
    mac::Network net(g, factory, sched);
    net.run(mac::StopWhen::kQuiescent, 100000);
    benchmark::DoNotOptimize(net.stats().deliveries);
  }
}
BENCHMARK(BM_EngineRandomScheduler)->Arg(16)->Arg(64)->Arg(256);

void BM_SerdeVarintRoundTrip(benchmark::State& state) {
  util::Rng rng(1);
  std::vector<std::uint64_t> values(1024);
  for (auto& v : values) v = rng();
  for (auto _ : state) {
    util::Writer w;
    for (const auto v : values) w.put_uvarint(v);
    util::Reader r(w.buffer());
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < values.size(); ++i) sum += r.get_uvarint();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}
BENCHMARK(BM_SerdeVarintRoundTrip);

void BM_WPaxosEnvelopeRoundTrip(benchmark::State& state) {
  using namespace core::wpaxos;
  Envelope e;
  e.leader = LeaderMsg{123456};
  e.change = ChangeMsg{98765, 123};
  e.search = SearchMsg{777, 12};
  e.proposer = ProposerMsg{ProposerMsg::Kind::kPropose, {42, 999}, 1};
  AcceptorResponse r;
  r.pn = {42, 999};
  r.count = 500;
  r.prev = Proposal{{41, 998}, 0};
  r.dest = 55;
  e.response = r;
  for (auto _ : state) {
    const auto buf = e.encode();
    const auto back = Envelope::decode(buf);
    benchmark::DoNotOptimize(back.response->count);
  }
}
BENCHMARK(BM_WPaxosEnvelopeRoundTrip);

void BM_GraphDiameter(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(5);
  const auto g = net::make_random_geometric(n, 0.15, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.diameter());
  }
}
BENCHMARK(BM_GraphDiameter)->Arg(64)->Arg(256);

void BM_WPaxosGridEndToEnd(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  const auto g = net::make_grid(side, side);
  const std::size_t n = g.node_count();
  const auto inputs = harness::inputs_alternating(n);
  const auto ids = harness::identity_ids(n);
  for (auto _ : state) {
    mac::UniformRandomScheduler sched(4, 7);
    const auto outcome = harness::run_consensus(
        g, harness::wpaxos_factory(inputs, ids), sched, inputs, 1000000);
    AMAC_ASSERT(outcome.verdict.ok());
    benchmark::DoNotOptimize(outcome.verdict.last_decision);
  }
}
BENCHMARK(BM_WPaxosGridEndToEnd)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
