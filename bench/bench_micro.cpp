// E9: substrate micro-benchmarks (google-benchmark): engine event
// throughput (calendar-queue engine vs the frozen reference-heap engine,
// same binary, same workloads), serde round-trips, graph algorithms,
// wPAXOS end-to-end.
//
// Besides the console table, the binary writes BENCH_engine.json
// (machine-readable: ns/op, rate counters, peak queued events per
// benchmark) so successive PRs have a perf trajectory to regress against.
#include <benchmark/benchmark.h>

#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/wpaxos/wpaxos.hpp"
#include "harness/experiment.hpp"
#include "mac/reference_engine.hpp"
#include "net/topologies.hpp"
#include "util/rng.hpp"
#include "util/serde.hpp"

namespace {

using namespace amac;

/// Minimal traffic generator: broadcasts `rounds` one-byte messages from a
/// reused buffer (the engine's pool makes the steady-state cycle
/// allocation-free; the process should not spoil that).
class Pinger final : public mac::Process {
 public:
  explicit Pinger(std::size_t rounds) : rounds_(rounds) {}

  void on_start(mac::Context& ctx) override { send(ctx); }
  void on_receive(const mac::Packet&, mac::Context&) override {}
  void on_ack(mac::Context& ctx) override {
    if (sent_ < rounds_) send(ctx);
  }
  std::unique_ptr<mac::Process> clone() const override {
    return std::make_unique<Pinger>(*this);
  }
  void digest(util::Hasher& h) const override { h.mix_u64(sent_); }

 private:
  void send(mac::Context& ctx) {
    ++sent_;
    ctx.broadcast(payload_);
  }
  std::size_t rounds_;
  std::size_t sent_ = 0;
  util::Buffer payload_{1};
};

/// Shared engine workload driver: Net is mac::Network (calendar queue) or
/// mac::ReferenceNetwork (legacy heap baseline).
template <typename Net, typename MakeScheduler>
void run_engine_benchmark_on(benchmark::State& state, const net::Graph& g,
                             const MakeScheduler& make_scheduler,
                             mac::Time max_time, std::size_t rounds = 50) {
  const mac::ProcessFactory factory = [rounds](NodeId) {
    return std::make_unique<Pinger>(rounds);
  };
  std::uint64_t deliveries = 0;
  std::size_t peak_events = 0;
  for (auto _ : state) {
    auto sched = make_scheduler();
    Net net(g, factory, sched);
    net.run(mac::StopWhen::kQuiescent, max_time);
    deliveries = net.stats().deliveries;
    peak_events = net.stats().peak_events;
    benchmark::DoNotOptimize(deliveries);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(deliveries));
  state.counters["peak_events"] =
      benchmark::Counter(static_cast<double>(peak_events));
  state.SetLabel("deliveries/iter=" + std::to_string(deliveries));
}

template <typename Net, typename MakeScheduler>
void run_engine_benchmark(benchmark::State& state,
                          const MakeScheduler& make_scheduler,
                          mac::Time max_time) {
  const auto n = static_cast<std::size_t>(state.range(0));
  run_engine_benchmark_on<Net>(state, net::make_ring(n), make_scheduler,
                               max_time);
}

// Large-n args: the calendar engine runs 1024 AND 4096; the reference
// engine stops at 1024 — its per-delivery pending scan makes a 4096 run
// take minutes, and the /1024 pair already gives CI the machine-independent
// engine-vs-reference speedup gate (tools/check_bench_regression.py
// --min-speedup). 4096 is therefore calendar-only trajectory data.
void BM_EngineSyncRounds(benchmark::State& state) {
  run_engine_benchmark<mac::Network>(
      state, [] { return mac::SynchronousScheduler(1); }, 1000);
}
BENCHMARK(BM_EngineSyncRounds)
    ->Arg(16)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_RefEngineSyncRounds(benchmark::State& state) {
  run_engine_benchmark<mac::ReferenceNetwork>(
      state, [] { return mac::SynchronousScheduler(1); }, 1000);
}
BENCHMARK(BM_RefEngineSyncRounds)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_EngineRandomScheduler(benchmark::State& state) {
  run_engine_benchmark<mac::Network>(
      state, [] { return mac::UniformRandomScheduler(8, 42); }, 100000);
}
BENCHMARK(BM_EngineRandomScheduler)
    ->Arg(16)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_RefEngineRandomScheduler(benchmark::State& state) {
  run_engine_benchmark<mac::ReferenceNetwork>(
      state, [] { return mac::UniformRandomScheduler(8, 42); }, 100000);
}
BENCHMARK(BM_RefEngineRandomScheduler)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

/// Receiver-side contention on a dense clique: the scheduler's per-receiver
/// next-free-tick table is hit (max in-degree) times per broadcast, so this
/// isolates the ContentionScheduler state-lookup cost (std::map vs flat
/// vector, see ROADMAP perf trajectory).
void BM_EngineContention(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  run_engine_benchmark_on<mac::Network>(
      state, net::make_clique(n),
      [n] {
        return mac::ContentionScheduler(3, 4 * static_cast<mac::Time>(n) + 16,
                                        1234);
      },
      200000);
}
BENCHMARK(BM_EngineContention)->Arg(16)->Arg(64);

void BM_RefEngineContention(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  run_engine_benchmark_on<mac::ReferenceNetwork>(
      state, net::make_clique(n),
      [n] {
        return mac::ContentionScheduler(3, 4 * static_cast<mac::Time>(n) + 16,
                                        1234);
      },
      200000);
}
BENCHMARK(BM_RefEngineContention)->Arg(16)->Arg(64);

/// Broadcast fan-out on a dense clique under lock-step delays: every
/// broadcast takes the SoA dense fast path (uniform schedule -> bulk
/// receiver copy -> CalendarQueue::push_batch into one bucket), so this
/// isolates the struct-of-arrays delivery fan-out against the reference
/// engine's per-pair walk.
/// Rounds per node for the clique fan-out benches: one clique round is
/// Theta(n^2) deliveries (a 4096-clique sync round is ~16.7M events and
/// ~670MB of transient queue), so the large args trim the per-node round
/// count to keep one iteration in benchmark time. The per-delivery cost is
/// what is measured; items/sec normalizes across the args. The small args
/// keep the historical 50 so their baseline rows stay comparable.
std::size_t fanout_rounds(std::size_t n) {
  return n >= 2048 ? 2 : n >= 1024 ? 8 : 50;
}

void BM_EngineFanout(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  run_engine_benchmark_on<mac::Network>(
      state, net::make_clique(n), [] { return mac::SynchronousScheduler(1); },
      1000, fanout_rounds(n));
}
BENCHMARK(BM_EngineFanout)->Arg(16)->Arg(64)->Arg(1024)->Arg(4096);

void BM_RefEngineFanout(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  run_engine_benchmark_on<mac::ReferenceNetwork>(
      state, net::make_clique(n), [] { return mac::SynchronousScheduler(1); },
      1000, fanout_rounds(n));
}
BENCHMARK(BM_RefEngineFanout)->Arg(16)->Arg(64)->Arg(1024);

/// Late-hold workload (the wheel-resize regime): holds registered AFTER
/// Network construction — the wheel was sized from the tiny pre-hold
/// fack() — and re-armed as they release, so every broadcast of the run
/// lands ~1200 ticks out (the recurring staggered-wake-up adversary).
/// Arg(1) lets the self-resizing wheel rebuild once and absorb the far
/// deliveries as O(1) bucket appends; Arg(0) pins the overflow-heap
/// fallback (set_wheel_resize_enabled(false)), paying the heap plus
/// rebase migration for every event — the A/B that shows what the
/// resize buys. Both variants run the bit-identical event sequence.
void BM_EngineLateHolds(benchmark::State& state) {
  const bool resize_enabled = state.range(0) != 0;
  const std::size_t n = 32;
  const auto g = net::make_clique(n);
  const mac::ProcessFactory factory = [](NodeId) {
    return std::make_unique<Pinger>(40);
  };
  std::uint64_t deliveries = 0;
  std::uint64_t resizes = 0;
  std::uint64_t overflow = 0;
  for (auto _ : state) {
    mac::HoldbackScheduler hold(std::make_unique<mac::SynchronousScheduler>(1),
                                /*release=*/4);
    mac::Network net(g, factory, hold);
    net.set_wheel_resize_enabled(resize_enabled);
    // Rolling holds: whenever a sender's hold has released, re-arm it
    // another ~1200 ticks out (staggered per sender). The schedule depends
    // only on event times, never on queue internals, so both A/B variants
    // see the same adversary.
    std::vector<mac::Time> release(n, 0);
    for (NodeId u = 0; u < n; ++u) {
      release[u] = 1200 + 8 * static_cast<mac::Time>(u);
      hold.hold_sender_until(u, release[u]);
    }
    net.set_post_event_hook([&](mac::Network& running) {
      const mac::Time t = running.now();
      for (NodeId u = 0; u < n; ++u) {
        if (t >= release[u]) {
          release[u] = t + 1200 + 8 * static_cast<mac::Time>(u);
          hold.hold_sender_until(u, release[u]);
        }
      }
    });
    net.run(mac::StopWhen::kQuiescent, 200000);
    deliveries = net.stats().deliveries;
    resizes = net.stats().wheel_resizes;
    overflow = net.stats().overflow_pushes;
    benchmark::DoNotOptimize(deliveries);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(deliveries));
  state.counters["wheel_resizes"] =
      benchmark::Counter(static_cast<double>(resizes));
  state.counters["overflow_pushes"] =
      benchmark::Counter(static_cast<double>(overflow));
}
BENCHMARK(BM_EngineLateHolds)->Arg(0)->Arg(1);

/// Raw calendar-queue push/pop stream where a third of pushes land far
/// beyond the initial window (held deliveries). Arg(1): the wheel resizes
/// once and the far pushes become O(1) bucket appends; Arg(0): every far
/// push pays the overflow heap plus rebase migration, forever.
void BM_WheelLateHolds(benchmark::State& state) {
  const bool resize_enabled = state.range(0) != 0;
  std::uint64_t resizes = 0;
  for (auto _ : state) {
    mac::CalendarQueue q(4);
    q.set_resize_enabled(resize_enabled);
    util::Rng rng(1234);
    std::uint64_t seq = 0;
    mac::Time now = 0;
    std::uint64_t popped = 0;
    for (int i = 0; i < 100000; ++i) {
      mac::Event e;
      e.t = now + (rng.chance(1.0 / 3) ? 2000 + rng.uniform(0, 255)
                                       : rng.uniform(1, 8));
      e.kind = mac::EventKind::kDeliver;
      e.seq = seq++;
      q.push(e);
      if ((i & 1) != 0) {
        now = q.next_time();
        q.pop();
        ++popped;
      }
    }
    while (!q.empty()) {
      q.pop();
      ++popped;
    }
    resizes = q.resizes();
    benchmark::DoNotOptimize(popped);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          200000);
  state.counters["wheel_resizes"] =
      benchmark::Counter(static_cast<double>(resizes));
}
BENCHMARK(BM_WheelLateHolds)->Arg(0)->Arg(1);

/// Scheduler-only: one schedule() call per iteration against a dense
/// neighborhood, isolating the per-receiver next-free-tick lookups from
/// engine event traffic.
void BM_ContentionSchedule(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<NodeId> neighbors(n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    neighbors[i] = static_cast<NodeId>(i + 1);
  }
  mac::ContentionScheduler sched(3, 4 * static_cast<mac::Time>(n) + 16, 99);
  mac::BroadcastSchedule out;
  mac::Time now = 0;
  for (auto _ : state) {
    sched.schedule(0, now, neighbors, out);
    now += out.ack_delay;  // keep delays within the declared bound
    benchmark::DoNotOptimize(out.receivers.data());
    benchmark::DoNotOptimize(out.delays.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(neighbors.size()));
}
BENCHMARK(BM_ContentionSchedule)->Arg(64)->Arg(256);

void BM_SerdeVarintRoundTrip(benchmark::State& state) {
  util::Rng rng(1);
  std::vector<std::uint64_t> values(1024);
  for (auto& v : values) v = rng();
  for (auto _ : state) {
    util::Writer w;
    for (const auto v : values) w.put_uvarint(v);
    util::Reader r(w.buffer());
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < values.size(); ++i) sum += r.get_uvarint();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}
BENCHMARK(BM_SerdeVarintRoundTrip);

void BM_WPaxosEnvelopeRoundTrip(benchmark::State& state) {
  using namespace core::wpaxos;
  Envelope e;
  e.leader = LeaderMsg{123456};
  e.change = ChangeMsg{98765, 123};
  e.search = SearchMsg{777, 12};
  e.proposer = ProposerMsg{ProposerMsg::Kind::kPropose, {42, 999}, 1};
  AcceptorResponse r;
  r.pn = {42, 999};
  r.count = 500;
  r.prev = Proposal{{41, 998}, 0};
  r.dest = 55;
  e.response = r;
  for (auto _ : state) {
    const auto buf = e.encode();
    const auto back = Envelope::decode(buf);
    benchmark::DoNotOptimize(back.response->count);
  }
}
BENCHMARK(BM_WPaxosEnvelopeRoundTrip);

void BM_GraphDiameter(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(5);
  const auto g = net::make_random_geometric(n, 0.15, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.diameter());
  }
}
BENCHMARK(BM_GraphDiameter)->Arg(64)->Arg(256);

void BM_WPaxosGridEndToEnd(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  const auto g = net::make_grid(side, side);
  const std::size_t n = g.node_count();
  const auto inputs = harness::inputs_alternating(n);
  const auto ids = harness::identity_ids(n);
  for (auto _ : state) {
    mac::UniformRandomScheduler sched(4, 7);
    const auto outcome = harness::run_consensus(
        g, harness::wpaxos_factory(inputs, ids), sched, inputs, 1000000);
    AMAC_ASSERT(outcome.verdict.ok());
    benchmark::DoNotOptimize(outcome.verdict.last_decision);
  }
}
BENCHMARK(BM_WPaxosGridEndToEnd)->Arg(4)->Arg(8);

/// Console reporter that also collects every finished run so main() can
/// write the machine-readable BENCH_engine.json next to the console table.
class JsonTeeReporter final : public benchmark::ConsoleReporter {
 public:
  struct Row {
    std::string name;
    double ns_per_op = 0;
    std::int64_t iterations = 0;
    std::map<std::string, double> counters;
  };

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      Row row;
      row.name = run.benchmark_name();
      row.ns_per_op = run.GetAdjustedRealTime();  // default time unit: ns
      row.iterations = run.iterations;
      for (const auto& [name, counter] : run.counters) {
        row.counters[name] = counter.value;
      }
      rows.push_back(std::move(row));
    }
    ConsoleReporter::ReportRuns(reports);
  }

  std::vector<Row> rows;
};

void write_bench_json(const std::vector<JsonTeeReporter::Row>& rows,
                      const std::string& path) {
  std::ofstream out(path);
  if (!out) return;
  out << "{\n  \"schema\": \"amac-bench-v1\",\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    out << "    {\"name\": \"" << row.name << "\", \"ns_per_op\": "
        << row.ns_per_op << ", \"iterations\": " << row.iterations;
    for (const auto& [name, value] : row.counters) {
      out << ", \"" << name << "\": " << value;
    }
    out << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonTeeReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  write_bench_json(reporter.rows, "BENCH_engine.json");
  benchmark::Shutdown();
  return 0;
}
