#include "core/anonymous.hpp"

#include <algorithm>

namespace amac::core {

AnonymousMinFlood::AnonymousMinFlood(std::uint32_t diameter,
                                     mac::Value initial_value)
    : diameter_(diameter), min_(initial_value) {
  AMAC_EXPECTS(initial_value == 0 || initial_value == 1);
}

void AnonymousMinFlood::on_start(mac::Context& ctx) {
  util::Writer w;
  w.put_u8(static_cast<std::uint8_t>(min_));
  ctx.broadcast(std::move(w).take());
}

void AnonymousMinFlood::on_receive(const mac::Packet& packet,
                                   mac::Context& ctx) {
  (void)ctx;
  // Anonymity: packet.sender is deliberately ignored.
  util::Reader r(packet.payload);
  const mac::Value v = r.get_u8();
  AMAC_ENSURES(r.exhausted());
  min_ = std::min(min_, v);
}

void AnonymousMinFlood::on_ack(mac::Context& ctx) {
  if (decided_) return;
  ++phase_;
  if (phase_ >= diameter_ + 1) {
    decided_ = true;
    ctx.decide(min_);
    return;
  }
  util::Writer w;
  w.put_u8(static_cast<std::uint8_t>(min_));
  ctx.broadcast(std::move(w).take());
}

std::unique_ptr<mac::Process> AnonymousMinFlood::clone() const {
  return std::make_unique<AnonymousMinFlood>(*this);
}

void AnonymousMinFlood::digest(util::Hasher& h) const {
  h.mix_u64(diameter_);
  h.mix_i64(min_);
  h.mix_u64(phase_);
  h.mix_bool(decided_);
}

void AnonymousMinFlood::protocol_stats(mac::ProtocolStats& out) const {
  out.max_round = std::max<std::uint64_t>(out.max_round, phase_);
}

}  // namespace amac::core
