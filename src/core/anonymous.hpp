// AnonymousMinFlood — the natural anonymous consensus candidate that
// Theorem 3.3 kills.
//
// Anonymous (no id is ever read or sent), knows n and D — exactly the
// knowledge Theorem 3.3 allows. Under the synchronous scheduler it is a
// correct consensus algorithm on ANY connected graph of diameter <= D:
// phases are paced by broadcast acks; each phase floods the running
// minimum; after D+1 acked phases the minimum has crossed every shortest
// path, and the node decides it.
//
// The bench_thm33_anonymity experiment runs it on the Figure 1 pair: on
// Network B (synchronous scheduler) it terminates correctly, and on
// Network A (the alpha_A hold-back scheduler) the two gadgets decide their
// own values — an agreement violation, exactly the paper's argument. The
// per-step state digests of a gadget node u and its three copies S_u are
// also compared, verifying Lemma 3.6 empirically.
#pragma once

#include <cstdint>

#include "mac/process.hpp"

namespace amac::core {

class AnonymousMinFlood final : public mac::Process {
 public:
  /// Knowledge: diameter bound and initial value — NO id.
  AnonymousMinFlood(std::uint32_t diameter, mac::Value initial_value);

  void on_start(mac::Context& ctx) override;
  void on_receive(const mac::Packet& packet, mac::Context& ctx) override;
  void on_ack(mac::Context& ctx) override;
  [[nodiscard]] std::unique_ptr<mac::Process> clone() const override;
  void digest(util::Hasher& h) const override;
  void protocol_stats(mac::ProtocolStats& out) const override;

  [[nodiscard]] std::uint32_t phase() const { return phase_; }
  [[nodiscard]] mac::Value current_min() const { return min_; }

 private:
  std::uint32_t diameter_;
  mac::Value min_;
  std::uint32_t phase_ = 0;  ///< completed (acked) phases
  bool decided_ = false;
};

}  // namespace amac::core
