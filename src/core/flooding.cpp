#include "core/flooding.hpp"

#include <algorithm>

namespace amac::core {

namespace {

util::Buffer encode_pairs(
    const std::deque<std::pair<std::uint64_t, mac::Value>>& outbox,
    std::size_t limit) {
  util::Writer w;
  const std::size_t count = std::min(limit, outbox.size());
  w.put_uvarint(count);
  for (std::size_t i = 0; i < count; ++i) {
    w.put_uvarint(outbox[i].first);
    w.put_uvarint(static_cast<std::uint64_t>(outbox[i].second));
  }
  return std::move(w).take();
}

}  // namespace

FloodingConsensus::FloodingConsensus(std::uint64_t id, std::size_t n,
                                     mac::Value initial_value,
                                     std::size_t pairs_per_message)
    : id_(id), n_(n), value_(initial_value),
      pairs_per_message_(pairs_per_message) {
  AMAC_EXPECTS(n >= 1);
  AMAC_EXPECTS(pairs_per_message >= 1);
  AMAC_EXPECTS(initial_value >= 0);  // gather-all is value-agnostic
}

void FloodingConsensus::on_start(mac::Context& ctx) {
  known_[id_] = value_;
  outbox_.emplace_back(id_, value_);
  maybe_decide(ctx);
  maybe_send(ctx);
}

void FloodingConsensus::learn(std::uint64_t id, mac::Value v,
                              mac::Context& ctx) {
  if (known_.contains(id)) return;
  known_[id] = v;
  // Flood rule: rebroadcast every pair the first time it is seen.
  outbox_.emplace_back(id, v);
  maybe_decide(ctx);
}

void FloodingConsensus::on_receive(const mac::Packet& packet,
                                   mac::Context& ctx) {
  util::Reader r(packet.payload);
  const std::uint64_t count = r.get_uvarint();
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t id = r.get_uvarint();
    const auto v = static_cast<mac::Value>(r.get_uvarint());
    learn(id, v, ctx);
  }
  AMAC_ENSURES(r.exhausted());
  maybe_send(ctx);
}

void FloodingConsensus::on_ack(mac::Context& ctx) { maybe_send(ctx); }

void FloodingConsensus::maybe_send(mac::Context& ctx) {
  if (ctx.busy() || outbox_.empty()) return;
  util::Buffer payload = encode_pairs(outbox_, pairs_per_message_);
  const std::size_t sent = std::min(pairs_per_message_, outbox_.size());
  outbox_.erase(outbox_.begin(),
                outbox_.begin() + static_cast<std::ptrdiff_t>(sent));
  ctx.broadcast(std::move(payload));
}

void FloodingConsensus::maybe_decide(mac::Context& ctx) {
  if (decided_ || known_.size() < n_) return;
  decided_ = true;
  // Deterministic rule over the full input multiset: smallest id's value.
  ctx.decide(known_.begin()->second);
}

std::unique_ptr<mac::Process> FloodingConsensus::clone() const {
  return std::make_unique<FloodingConsensus>(*this);
}

void FloodingConsensus::protocol_stats(mac::ProtocolStats& out) const {
  out.max_learned = std::max<std::uint64_t>(out.max_learned, known_.size());
}

void FloodingConsensus::digest(util::Hasher& h) const {
  h.mix_u64(id_);
  h.mix_u64(n_);
  h.mix_i64(value_);
  h.mix_bool(decided_);
  h.mix_u64(known_.size());
  for (const auto& [id, v] : known_) {
    h.mix_u64(id);
    h.mix_i64(v);
  }
  h.mix_u64(outbox_.size());
  for (const auto& [id, v] : outbox_) {
    h.mix_u64(id);
    h.mix_i64(v);
  }
}

}  // namespace amac::core
