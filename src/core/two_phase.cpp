#include "core/two_phase.hpp"

#include <algorithm>

namespace amac::core {

util::Buffer TwoPhaseMessage::encode() const {
  util::Writer w;
  w.put_u8(static_cast<std::uint8_t>(phase));
  w.put_uvarint(id);
  if (phase == Phase::kOne) {
    w.put_u8(static_cast<std::uint8_t>(value));
  } else {
    w.put_u8(static_cast<std::uint8_t>(status));
    if (status == Status::kDecided) w.put_u8(static_cast<std::uint8_t>(value));
  }
  return std::move(w).take();
}

TwoPhaseMessage TwoPhaseMessage::decode(const util::Buffer& buf) {
  util::Reader r(buf);
  TwoPhaseMessage m;
  m.phase = static_cast<Phase>(r.get_u8());
  m.id = r.get_uvarint();
  if (m.phase == Phase::kOne) {
    m.value = r.get_u8();
  } else {
    m.status = static_cast<Status>(r.get_u8());
    if (m.status == Status::kDecided) m.value = r.get_u8();
  }
  AMAC_ENSURES(r.exhausted());
  return m;
}

TwoPhaseConsensus::TwoPhaseConsensus(std::uint64_t id,
                                     mac::Value initial_value,
                                     bool literal_r2_check)
    : id_(id), value_(initial_value), literal_r2_check_(literal_r2_check) {
  AMAC_EXPECTS(initial_value == 0 || initial_value == 1);
}

void TwoPhaseConsensus::on_start(mac::Context& ctx) {
  AMAC_EXPECTS(stage_ == Stage::kInit);
  stage_ = Stage::kPhase1;
  ids_seen_.insert(id_);
  ctx.broadcast(
      TwoPhaseMessage{TwoPhaseMessage::Phase::kOne, id_, value_, {}}.encode());
}

void TwoPhaseConsensus::handle(const TwoPhaseMessage& m, bool into_r2) {
  ids_seen_.insert(m.id);
  if (m.phase == TwoPhaseMessage::Phase::kOne) {
    if (m.value != value_) saw_opposite_p1_ = true;
    return;
  }
  phase2_seen_.insert(m.id);
  if (m.status == TwoPhaseMessage::Status::kBivalent) saw_bivalent_p2_ = true;
  if (m.status == TwoPhaseMessage::Status::kDecided && m.value == 0) {
    saw_decided0_any_ = true;
    if (into_r2) saw_decided0_r2_ = true;
  }
}

void TwoPhaseConsensus::on_receive(const mac::Packet& packet,
                                   mac::Context& ctx) {
  if (stage_ == Stage::kDone) return;
  const auto m = TwoPhaseMessage::decode(packet.payload);
  const bool into_r2 = stage_ == Stage::kPhase2 ||
                       stage_ == Stage::kAwaitWitnesses;
  handle(m, into_r2);
  if (stage_ == Stage::kAwaitWitnesses) try_finish_witness_wait(ctx);
}

void TwoPhaseConsensus::on_ack(mac::Context& ctx) {
  switch (stage_) {
    case Stage::kPhase1: {
      status_ = (saw_opposite_p1_ || saw_bivalent_p2_)
                    ? TwoPhaseMessage::Status::kBivalent
                    : TwoPhaseMessage::Status::kDecided;
      stage_ = Stage::kPhase2;
      TwoPhaseMessage m{TwoPhaseMessage::Phase::kTwo, id_, value_, status_};
      // The node's own phase-2 message is in R2 by construction (line 15).
      handle(m, /*into_r2=*/true);
      ctx.broadcast(m.encode());
      return;
    }
    case Stage::kPhase2: {
      if (status_ == TwoPhaseMessage::Status::kDecided) {
        stage_ = Stage::kDone;
        ctx.decide(value_);
        return;
      }
      // Line 19: W := every unique id heard from so far.
      witnesses_ = ids_seen_;
      stage_ = Stage::kAwaitWitnesses;
      try_finish_witness_wait(ctx);
      return;
    }
    case Stage::kInit:
    case Stage::kAwaitWitnesses:
    case Stage::kDone:
      return;  // spurious ack (e.g. a discarded duplicate); nothing to do
  }
}

bool TwoPhaseConsensus::witnesses_complete() const {
  for (const auto id : witnesses_) {
    if (!phase2_seen_.contains(id)) return false;
  }
  return true;
}

void TwoPhaseConsensus::try_finish_witness_wait(mac::Context& ctx) {
  AMAC_EXPECTS(stage_ == Stage::kAwaitWitnesses);
  if (!witnesses_complete()) return;
  stage_ = Stage::kDone;
  const bool saw0 = literal_r2_check_ ? saw_decided0_r2_ : saw_decided0_any_;
  ctx.decide(saw0 ? 0 : 1);
}

std::unique_ptr<mac::Process> TwoPhaseConsensus::clone() const {
  return std::make_unique<TwoPhaseConsensus>(*this);
}

void TwoPhaseConsensus::protocol_stats(mac::ProtocolStats& out) const {
  // stage_ advances kInit -> kPhase1 -> kPhase2 -> kAwaitWitnesses -> kDone:
  // the phase depth this node reached is its round analog.
  out.max_round = std::max<std::uint64_t>(
      out.max_round, static_cast<std::uint64_t>(stage_));
  out.max_learned =
      std::max<std::uint64_t>(out.max_learned, ids_seen_.size());
}

void TwoPhaseConsensus::digest(util::Hasher& h) const {
  h.mix_u64(id_);
  h.mix_i64(value_);
  h.mix_u8(static_cast<std::uint8_t>(stage_));
  h.mix_u8(static_cast<std::uint8_t>(status_));
  h.mix_u64(ids_seen_.size());
  for (const auto id : ids_seen_) h.mix_u64(id);
  h.mix_u64(phase2_seen_.size());
  for (const auto id : phase2_seen_) h.mix_u64(id);
  h.mix_bool(saw_opposite_p1_);
  h.mix_bool(saw_bivalent_p2_);
  h.mix_bool(saw_decided0_any_);
  h.mix_u64(witnesses_.size());
  for (const auto id : witnesses_) h.mix_u64(id);
}

}  // namespace amac::core
