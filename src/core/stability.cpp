#include "core/stability.hpp"

#include <algorithm>

namespace amac::core {

StabilityConsensus::StabilityConsensus(std::uint64_t id,
                                       std::uint32_t diameter,
                                       mac::Value initial_value,
                                       std::size_t pairs_per_message)
    : id_(id), diameter_(diameter), value_(initial_value),
      pairs_per_message_(pairs_per_message) {
  AMAC_EXPECTS(pairs_per_message >= 1);
  AMAC_EXPECTS(initial_value == 0 || initial_value == 1);
}

void StabilityConsensus::on_start(mac::Context& ctx) {
  known_[id_] = value_;
  outbox_.emplace_back(id_, value_);
  send_batch(ctx);
}

void StabilityConsensus::send_batch(mac::Context& ctx) {
  // Phases are paced by acks: a batch (possibly empty — a heartbeat that
  // keeps the quiet counter advancing) is broadcast each phase.
  util::Writer w;
  const std::size_t count = std::min(pairs_per_message_, outbox_.size());
  w.put_uvarint(count);
  for (std::size_t i = 0; i < count; ++i) {
    w.put_uvarint(outbox_[i].first);
    w.put_u8(static_cast<std::uint8_t>(outbox_[i].second));
  }
  outbox_.erase(outbox_.begin(), outbox_.begin() +
                                     static_cast<std::ptrdiff_t>(count));
  ctx.broadcast(std::move(w).take());
}

void StabilityConsensus::on_receive(const mac::Packet& packet,
                                    mac::Context& ctx) {
  (void)ctx;
  util::Reader r(packet.payload);
  const std::uint64_t count = r.get_uvarint();
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t id = r.get_uvarint();
    const mac::Value v = r.get_u8();
    if (!known_.contains(id)) {
      known_[id] = v;
      outbox_.emplace_back(id, v);
      learned_this_phase_ = true;
    }
  }
  AMAC_ENSURES(r.exhausted());
}

void StabilityConsensus::on_ack(mac::Context& ctx) {
  if (decided_) return;
  if (learned_this_phase_) {
    if (quiet_ > 0) ++quiet_resets_;
    quiet_ = 0;
  } else {
    ++quiet_;
  }
  learned_this_phase_ = false;
  if (quiet_ >= diameter_ + 1 && outbox_.empty()) {
    decided_ = true;
    ctx.decide(known_.begin()->second);
    return;
  }
  send_batch(ctx);
}

std::unique_ptr<mac::Process> StabilityConsensus::clone() const {
  return std::make_unique<StabilityConsensus>(*this);
}

void StabilityConsensus::protocol_stats(mac::ProtocolStats& out) const {
  out.max_round = std::max<std::uint64_t>(out.max_round, quiet_);
  out.max_learned = std::max<std::uint64_t>(out.max_learned, known_.size());
  out.quiet_resets += quiet_resets_;
}

void StabilityConsensus::digest(util::Hasher& h) const {
  h.mix_u64(id_);
  h.mix_u64(diameter_);
  h.mix_i64(value_);
  h.mix_bool(decided_);
  h.mix_u64(quiet_);
  h.mix_bool(learned_this_phase_);
  h.mix_u64(known_.size());
  for (const auto& [id, v] : known_) {
    h.mix_u64(id);
    h.mix_i64(v);
  }
  h.mix_u64(outbox_.size());
  for (const auto& [id, v] : outbox_) {
    h.mix_u64(id);
    h.mix_i64(v);
  }
}

}  // namespace amac::core
