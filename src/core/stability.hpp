// StabilityConsensus — the natural no-knowledge-of-n candidate that
// Theorem 3.9 kills.
//
// Has unique ids and knows D but NOT n (the knowledge Theorem 3.9 allows).
// Gather-and-stabilize: flood (id, value) pairs (constant pairs per
// message), and decide the smallest known id's value after D+1 consecutive
// acked phases in which nothing new was learned and nothing is left to
// forward. Under the synchronous scheduler on a standalone line L_D this
// is correct: quiet phases can only start after the far end's pair has
// crossed the line.
//
// bench_thm39_no_n runs it on Figure 2: standalone L_D (correct) vs the two
// L_D copies embedded in K_D under the semi-synchronous scheduler, where
// both copies run the exact standalone execution (the bridge endpoint w's
// messages are held back) and decide their own values — agreement violation
// inside a network whose diameter is still D, so knowing D does not help.
#pragma once

#include <cstdint>
#include <deque>
#include <map>

#include "mac/process.hpp"

namespace amac::core {

class StabilityConsensus final : public mac::Process {
 public:
  /// Knowledge: own unique id, diameter bound, initial value. No n.
  StabilityConsensus(std::uint64_t id, std::uint32_t diameter,
                     mac::Value initial_value,
                     std::size_t pairs_per_message = 2);

  void on_start(mac::Context& ctx) override;
  void on_receive(const mac::Packet& packet, mac::Context& ctx) override;
  void on_ack(mac::Context& ctx) override;
  [[nodiscard]] std::unique_ptr<mac::Process> clone() const override;
  void digest(util::Hasher& h) const override;
  void protocol_stats(mac::ProtocolStats& out) const override;

  [[nodiscard]] std::size_t known_count() const { return known_.size(); }
  [[nodiscard]] std::uint32_t quiet_phases() const { return quiet_; }
  [[nodiscard]] std::uint64_t quiet_resets() const { return quiet_resets_; }

 private:
  void send_batch(mac::Context& ctx);

  std::uint64_t id_;
  std::uint32_t diameter_;
  mac::Value value_;
  std::size_t pairs_per_message_;

  std::map<std::uint64_t, mac::Value> known_;
  std::deque<std::pair<std::uint64_t, mac::Value>> outbox_;
  std::uint32_t quiet_ = 0;
  bool learned_this_phase_ = false;
  bool decided_ = false;
  /// How often late learning reset a NONZERO quiet counter: a pure
  /// observability counter (coverage dimension v5), deliberately kept out
  /// of digest() — the digest contract is behavioral equivalence, and two
  /// behaviorally identical executions must hash identically whether or
  /// not stats were ever read.
  std::uint64_t quiet_resets_ = 0;
};

}  // namespace amac::core
