#include "core/benor.hpp"

#include <algorithm>

namespace amac::core {

util::Buffer BenOr::WireMsg::encode() const {
  util::Writer w;
  w.put_u8(static_cast<std::uint8_t>(type));
  w.put_uvarint(round);
  w.put_u8(static_cast<std::uint8_t>(value));
  return std::move(w).take();
}

BenOr::WireMsg BenOr::WireMsg::decode(const util::Buffer& buf) {
  util::Reader r(buf);
  WireMsg m;
  m.type = static_cast<Type>(r.get_u8());
  m.round = static_cast<std::uint32_t>(r.get_uvarint());
  m.value = r.get_u8();
  AMAC_ENSURES(r.exhausted());
  return m;
}

BenOr::BenOr(std::size_t n, std::size_t f, mac::Value initial_value,
             std::uint64_t coin_seed)
    : n_(n), f_(f), x_(initial_value), coin_(coin_seed) {
  AMAC_EXPECTS(n >= 1);
  AMAC_EXPECTS(2 * f < n);
  AMAC_EXPECTS(initial_value == 0 || initial_value == 1);
}

std::map<NodeId, mac::Value>& BenOr::bucket(std::uint32_t r, Step s) {
  return inbox_[{r, static_cast<std::uint8_t>(s)}];
}

void BenOr::on_start(mac::Context& ctx) {
  begin_step(Step::kReport, ctx);
}

void BenOr::begin_step(Step step, mac::Context& ctx) {
  step_ = step;
  step_broadcast_done_ = false;
  // The node's own message is part of its collection from the start; the
  // radio catches up when free. kNoNode keys "self" (real senders are
  // engine indices).
  bucket(round_, step_)[kNoNode] =
      step == Step::kReport ? x_ : proposal_;
  try_advance(ctx);
}

void BenOr::decide_and_flood(mac::Value v, mac::Context& ctx) {
  if (!decided_) {
    decided_ = true;
    decision_ = v;
    // Relay once even if we learned it from a (possibly crashed) decider:
    // this makes the decision flood self-propagating despite non-atomic
    // broadcasts.
    flood_pending_ = true;
    ctx.decide(v);
  }
  try_advance(ctx);
}

void BenOr::on_receive(const mac::Packet& packet, mac::Context& ctx) {
  const auto m = WireMsg::decode(packet.payload);
  switch (m.type) {
    case WireMsg::Type::kDecide:
      decide_and_flood(m.value, ctx);
      return;
    case WireMsg::Type::kReport:
      bucket(m.round, Step::kReport)[packet.sender] = m.value;
      break;
    case WireMsg::Type::kPropose:
      bucket(m.round, Step::kPropose)[packet.sender] = m.value;
      break;
  }
  try_advance(ctx);
}

void BenOr::on_ack(mac::Context& ctx) { try_advance(ctx); }

void BenOr::try_advance(mac::Context& ctx) {
  if (decided_) {
    if (flood_pending_ && !flood_sent_ && !ctx.busy()) {
      flood_pending_ = false;
      flood_sent_ = true;
      ctx.broadcast(
          WireMsg{WireMsg::Type::kDecide, round_, decision_}.encode());
    }
    return;
  }

  for (;;) {
    // Hand the current step's message to the radio as soon as it is free.
    if (!step_broadcast_done_ && !ctx.busy()) {
      const auto type = step_ == Step::kReport ? WireMsg::Type::kReport
                                               : WireMsg::Type::kPropose;
      const auto value = step_ == Step::kReport ? x_ : proposal_;
      ctx.broadcast(WireMsg{type, round_, value}.encode());
      step_broadcast_done_ = true;
    }
    if (!step_broadcast_done_) return;  // radio busy; resume on ack

    auto& collected = bucket(round_, step_);
    if (collected.size() < n_ - f_) return;  // keep collecting

    std::size_t count0 = 0;
    std::size_t count1 = 0;
    for (const auto& [sender, v] : collected) {
      if (v == 0) ++count0;
      if (v == 1) ++count1;
    }

    if (step_ == Step::kReport) {
      // Strict majority of n (not of the collected subset): at most one
      // value can qualify, which is the round's safety anchor.
      if (2 * count0 > n_) {
        proposal_ = 0;
      } else if (2 * count1 > n_) {
        proposal_ = 1;
      } else {
        proposal_ = kNoValue;
      }
      step_ = Step::kPropose;
      step_broadcast_done_ = false;
      bucket(round_, Step::kPropose)[kNoNode] = proposal_;
      continue;
    }

    // PROPOSE step complete.
    if (count0 >= f_ + 1) {
      decide_and_flood(0, ctx);
      return;
    }
    if (count1 >= f_ + 1) {
      decide_and_flood(1, ctx);
      return;
    }
    if (count0 >= 1) {
      x_ = 0;
    } else if (count1 >= 1) {
      x_ = 1;
    } else {
      x_ = static_cast<mac::Value>(coin_.uniform(0, 1));
      ++coin_flips_;
    }
    // Old rounds can no longer influence anything: drop their buffers.
    inbox_.erase({round_, static_cast<std::uint8_t>(Step::kReport)});
    inbox_.erase({round_, static_cast<std::uint8_t>(Step::kPropose)});
    ++round_;
    step_ = Step::kReport;
    step_broadcast_done_ = false;
    bucket(round_, Step::kReport)[kNoNode] = x_;
  }
}

std::unique_ptr<mac::Process> BenOr::clone() const {
  return std::make_unique<BenOr>(*this);
}

void BenOr::protocol_stats(mac::ProtocolStats& out) const {
  out.max_round = std::max<std::uint64_t>(out.max_round, round_);
  out.coin_flips += coin_flips_;
}

void BenOr::digest(util::Hasher& h) const {
  h.mix_u64(n_);
  h.mix_u64(f_);
  h.mix_i64(x_);
  h.mix_u64(round_);
  h.mix_u8(static_cast<std::uint8_t>(step_));
  h.mix_i64(proposal_);
  h.mix_bool(step_broadcast_done_);
  h.mix_bool(decided_);
  h.mix_i64(decision_);
  h.mix_u64(coin_flips_);
  for (const auto& [key, senders] : inbox_) {
    h.mix_u64(key.first);
    h.mix_u8(key.second);
    for (const auto& [sender, v] : senders) {
      h.mix_u64(sender);
      h.mix_i64(v);
    }
  }
}

}  // namespace amac::core
