// Randomized crash-tolerant consensus — the paper's future work #3.
//
// Theorem 3.2 kills every DETERMINISTIC 1-crash-tolerant consensus
// algorithm in this model; the paper's conclusion points at randomization
// as the classical way out. This is Ben-Or's algorithm (1983) adapted to
// the abstract MAC layer's acknowledged single-hop broadcast: it tolerates
// f < n/2 crash failures, is always safe, and terminates with probability 1
// (each node carries a seeded coin, so simulated runs are reproducible).
//
// Round r (two steps, paced by collecting n-f messages per step):
//   REPORT:  broadcast <R, r, x>; collect n-f round-r reports (self incl.);
//            if some value w holds a strict majority OF n, propose w,
//            else propose ? (at most one such w exists, which is what
//            makes two conflicting proposals in a round impossible).
//   PROPOSE: broadcast <P, r, proposal>; collect n-f round-r proposals;
//            - >= f+1 proposals for w != ?  ->  decide w;
//            - >= 1 proposal for w != ?     ->  x := w;
//            - otherwise                    ->  x := coin flip.
// A decider broadcasts <D, w> once; every receiver decides immediately
// (quorum intersection makes a conflicting decision impossible, and the
// decide flood unblocks nodes whose round-peers already halted).
//
// Knowledge: n and f. Ids are NOT needed (senders are distinguished by the
// MAC layer); this does not contradict Theorem 3.3, which concerns
// deterministic multihop algorithms.
#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "mac/process.hpp"
#include "util/rng.hpp"

namespace amac::core {

class BenOr final : public mac::Process {
 public:
  /// Requires f < n/2 (majority quorums must be available).
  BenOr(std::size_t n, std::size_t f, mac::Value initial_value,
        std::uint64_t coin_seed);

  void on_start(mac::Context& ctx) override;
  void on_receive(const mac::Packet& packet, mac::Context& ctx) override;
  void on_ack(mac::Context& ctx) override;
  [[nodiscard]] std::unique_ptr<mac::Process> clone() const override;
  void digest(util::Hasher& h) const override;
  void protocol_stats(mac::ProtocolStats& out) const override;

  [[nodiscard]] std::uint32_t round() const { return round_; }
  [[nodiscard]] bool has_decided() const { return decided_; }
  [[nodiscard]] std::uint64_t coin_flips() const { return coin_flips_; }

 private:
  enum class Step : std::uint8_t { kReport = 0, kPropose = 1 };
  /// The "?" proposal (no majority seen).
  static constexpr mac::Value kNoValue = 2;

  struct WireMsg {
    enum class Type : std::uint8_t { kReport = 0, kPropose = 1, kDecide = 2 };
    Type type = Type::kReport;
    std::uint32_t round = 0;
    mac::Value value = 0;

    [[nodiscard]] util::Buffer encode() const;
    [[nodiscard]] static WireMsg decode(const util::Buffer& buf);
  };

  void try_advance(mac::Context& ctx);
  void begin_step(Step step, mac::Context& ctx);
  void decide_and_flood(mac::Value v, mac::Context& ctx);

  /// Messages collected for (round, step): sender -> value. Self-messages
  /// are recorded directly at broadcast time.
  [[nodiscard]] std::map<NodeId, mac::Value>& bucket(std::uint32_t r,
                                                     Step s);

  std::size_t n_;
  std::size_t f_;
  mac::Value x_;  ///< current estimate
  util::Rng coin_;

  std::uint32_t round_ = 1;
  Step step_ = Step::kReport;
  mac::Value proposal_ = kNoValue;  ///< this round's PROPOSE value
  bool step_broadcast_done_ = false;
  bool decided_ = false;
  mac::Value decision_ = -1;
  bool flood_pending_ = false;
  bool flood_sent_ = false;
  std::uint64_t coin_flips_ = 0;

  std::map<std::pair<std::uint32_t, std::uint8_t>,
           std::map<NodeId, mac::Value>>
      inbox_;
};

}  // namespace amac::core
