// CommitFlood: the replicated log's leased-slot fast path (src/log/).
//
// Not a consensus algorithm — a commit broadcast. The slot's value was
// already fixed by the leader's lease (itself established by a full wPAXOS
// slot, paper §4.2); what remains is disseminating one decided value to
// every node. The leader decides immediately and floods the value; every
// other node decides on first receipt and re-floods exactly once, so the
// value crosses any connected graph in O(D * F_ack) with one broadcast per
// node — the Lemma 4.2-style point: coordination amortizes to one
// dissemination wave per slot once leadership is stable.
//
// Agreement/validity per slot are trivially inherited (only the leader's
// value ever enters the network); the per-slot oracle in
// verify/checker.hpp still checks them against the batch inputs.
#pragma once

#include "mac/process.hpp"

namespace amac::core {

class CommitFlood final : public mac::Process {
 public:
  /// `leader` nodes originate `value`; followers ignore their argument
  /// value and adopt the first received one.
  CommitFlood(bool leader, mac::Value value);

  void on_start(mac::Context& ctx) override;
  void on_receive(const mac::Packet& packet, mac::Context& ctx) override;
  void on_ack(mac::Context& ctx) override;
  [[nodiscard]] std::unique_ptr<mac::Process> clone() const override;
  void digest(util::Hasher& h) const override;
  void protocol_stats(mac::ProtocolStats& out) const override;

  [[nodiscard]] bool has_decided() const { return decided_; }

 private:
  void relay(mac::Context& ctx);

  bool leader_;
  mac::Value value_;
  bool decided_ = false;
  bool relay_pending_ = false;
  bool relayed_ = false;
};

}  // namespace amac::core
