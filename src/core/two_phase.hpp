// Two-Phase Consensus (paper §4.1, Algorithm 1).
//
// Solves binary consensus in SINGLE HOP networks in O(F_ack) time — two
// acknowledged broadcasts plus a bounded wait — assuming unique ids but NO
// knowledge of n or of the participants (the separation from the plain
// asynchronous broadcast model, where this is impossible [Abboud et al.]).
//
// Operation (node u, initial value v):
//   Phase 1: broadcast <phase1, id_u, v>; on ack, set
//     status := bivalent   if a <phase1, *, 1-v> or a bivalent <phase2> was
//                          seen, else
//     status := decided(v).
//   Phase 2: broadcast <phase2, id_u, status>; on ack,
//     - decided(v) status: decide v;
//     - bivalent status: form witness set W = every id heard from so far,
//       wait for a phase-2 message from every member of W, then decide 0 if
//       any decided(0) status was seen, else the default 1.
//
// Implementation note (documented deviation): Algorithm 1's line 23 checks
// only R2 (messages received after the phase-2 broadcast started) for
// decided(0) statuses, but a decided(0) phase-2 message can legally arrive
// before the receiver's phase-1 ack and land only in R1, in which case the
// literal rule decides 1 against u's decided 0. The correctness proof
// (Theorem 4.1, case 1) reasons about "seeing" u's phase-2 message with no
// R1/R2 restriction, so we check all received messages. Constructing
// `TwoPhaseConsensus` with `literal_r2_check = true` reproduces the literal
// pseudocode; the test suite exhibits the 2-node schedule on which the
// literal variant violates agreement and the fixed variant does not.
#pragma once

#include <cstdint>
#include <set>

#include "mac/process.hpp"

namespace amac::core {

/// Wire format of Algorithm 1's messages.
struct TwoPhaseMessage {
  enum class Phase : std::uint8_t { kOne = 1, kTwo = 2 };
  enum class Status : std::uint8_t { kNone = 0, kBivalent, kDecided };

  Phase phase = Phase::kOne;
  std::uint64_t id = 0;
  mac::Value value = 0;      ///< phase 1: initial value; phase 2 decided: v
  Status status = Status::kNone;  ///< phase 2 only

  [[nodiscard]] util::Buffer encode() const;
  [[nodiscard]] static TwoPhaseMessage decode(const util::Buffer& buf);
};

class TwoPhaseConsensus final : public mac::Process {
 public:
  /// Knowledge: own unique id and initial value. No n, no participants.
  TwoPhaseConsensus(std::uint64_t id, mac::Value initial_value,
                    bool literal_r2_check = false);

  void on_start(mac::Context& ctx) override;
  void on_receive(const mac::Packet& packet, mac::Context& ctx) override;
  void on_ack(mac::Context& ctx) override;
  [[nodiscard]] std::unique_ptr<mac::Process> clone() const override;
  void digest(util::Hasher& h) const override;
  void protocol_stats(mac::ProtocolStats& out) const override;

  /// Observable for tests: the status chosen after the phase-1 ack.
  [[nodiscard]] TwoPhaseMessage::Status status() const { return status_; }

 private:
  enum class Stage : std::uint8_t {
    kInit,
    kPhase1,           ///< phase-1 broadcast outstanding
    kPhase2,           ///< phase-2 broadcast outstanding
    kAwaitWitnesses,   ///< bivalent, waiting for W's phase-2 messages
    kDone,
  };

  void handle(const TwoPhaseMessage& m, bool into_r2);
  void try_finish_witness_wait(mac::Context& ctx);
  [[nodiscard]] bool witnesses_complete() const;

  std::uint64_t id_;
  mac::Value value_;
  bool literal_r2_check_;

  Stage stage_ = Stage::kInit;
  TwoPhaseMessage::Status status_ = TwoPhaseMessage::Status::kNone;

  std::set<std::uint64_t> ids_seen_;      ///< senders of all messages seen
  std::set<std::uint64_t> phase2_seen_;   ///< ids with a phase-2 seen (any R)
  bool saw_opposite_p1_ = false;          ///< <phase1, *, 1-v> seen
  bool saw_bivalent_p2_ = false;          ///< bivalent <phase2> seen
  bool saw_decided0_any_ = false;         ///< decided(0) seen anywhere
  bool saw_decided0_r2_ = false;          ///< decided(0) seen after phase 2
  std::set<std::uint64_t> witnesses_;     ///< W, fixed at the phase-2 ack
};

}  // namespace amac::core
