#include "core/commit_flood.hpp"

#include "util/serde.hpp"

namespace amac::core {

namespace {

util::Buffer encode_value(mac::Value v) {
  util::Writer w;
  w.put_uvarint(static_cast<std::uint64_t>(v));
  return std::move(w).take();
}

}  // namespace

CommitFlood::CommitFlood(bool leader, mac::Value value)
    : leader_(leader), value_(value) {
  AMAC_EXPECTS(value >= 0);
}

void CommitFlood::on_start(mac::Context& ctx) {
  if (!leader_) return;
  decided_ = true;
  ctx.decide(value_);
  relay_pending_ = true;
  relay(ctx);
}

void CommitFlood::on_receive(const mac::Packet& packet, mac::Context& ctx) {
  util::Reader r(packet.payload);
  const auto v = static_cast<mac::Value>(r.get_uvarint());
  AMAC_ENSURES(r.exhausted());
  if (!decided_) {
    decided_ = true;
    value_ = v;
    ctx.decide(v);
    relay_pending_ = true;  // re-flood once, so the wave crosses the graph
  }
  relay(ctx);
}

void CommitFlood::on_ack(mac::Context& ctx) { relay(ctx); }

void CommitFlood::relay(mac::Context& ctx) {
  if (!relay_pending_ || relayed_ || ctx.busy()) return;
  relayed_ = true;
  relay_pending_ = false;
  ctx.broadcast(encode_value(value_));
}

std::unique_ptr<mac::Process> CommitFlood::clone() const {
  return std::make_unique<CommitFlood>(*this);
}

void CommitFlood::digest(util::Hasher& h) const {
  h.mix_bool(leader_);
  h.mix_i64(value_);
  h.mix_bool(decided_);
  h.mix_bool(relay_pending_);
  h.mix_bool(relayed_);
}

void CommitFlood::protocol_stats(mac::ProtocolStats& out) const {
  if (relayed_) out.proposals += 1;  // one dissemination broadcast per node
}

}  // namespace amac::core
