// Flooding gather-all consensus — the paper's O(n * F_ack) baseline.
//
// §1/§4.2 argue that combining consensus logic with "a basic flooding
// algorithm" costs O(n * F_ack), because a bottleneck node may have to
// forward Omega(n) (id, value) pairs while each message carries only O(1)
// of them. This class is that baseline, built honestly: it knows n, floods
// every (id, value) pair it learns at most `pairs_per_message` (constant)
// per broadcast, and decides the value of the smallest id once all n pairs
// are known. bench_crossover measures it against wPAXOS.
#pragma once

#include <cstdint>
#include <deque>
#include <map>

#include "mac/process.hpp"

namespace amac::core {

class FloodingConsensus final : public mac::Process {
 public:
  /// Knowledge: own unique id, n, initial value. `pairs_per_message` is the
  /// model's constant-ids-per-message budget (paper §2); default 2.
  FloodingConsensus(std::uint64_t id, std::size_t n, mac::Value initial_value,
                    std::size_t pairs_per_message = 2);

  void on_start(mac::Context& ctx) override;
  void on_receive(const mac::Packet& packet, mac::Context& ctx) override;
  void on_ack(mac::Context& ctx) override;
  [[nodiscard]] std::unique_ptr<mac::Process> clone() const override;
  void digest(util::Hasher& h) const override;
  void protocol_stats(mac::ProtocolStats& out) const override;

  [[nodiscard]] std::size_t known_count() const { return known_.size(); }

 private:
  void learn(std::uint64_t id, mac::Value v, mac::Context& ctx);
  void maybe_send(mac::Context& ctx);
  void maybe_decide(mac::Context& ctx);

  std::uint64_t id_;
  std::size_t n_;
  mac::Value value_;
  std::size_t pairs_per_message_;

  std::map<std::uint64_t, mac::Value> known_;
  std::deque<std::pair<std::uint64_t, mac::Value>> outbox_;
  bool decided_ = false;
};

}  // namespace amac::core
