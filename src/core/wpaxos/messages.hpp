// Wire formats for wPAXOS (paper §4.2.1, Figure 3).
//
// Every broadcast of a wPAXOS node is one Envelope multiplexing at most one
// message of each service (Algorithm 5: "dequeue a message from each
// non-empty queue and combine into one message"). Each component holds a
// constant number of ids/integers, so envelopes respect the model's
// bounded-message-size rule (O(1) ids of O(log n) bits; asserted in tests).
#pragma once

#include <compare>
#include <cstdint>
#include <optional>

#include "mac/types.hpp"
#include "util/hash.hpp"
#include "util/serde.hpp"

namespace amac::core::wpaxos {

/// A PAXOS proposal number: (tag, proposer id), compared lexicographically
/// (paper: "a proposal number is a tag and the node's id; pairs are compared
/// lexicographically").
struct ProposalNumber {
  std::uint64_t tag = 0;
  std::uint64_t id = 0;

  auto operator<=>(const ProposalNumber&) const = default;

  [[nodiscard]] static ProposalNumber zero() { return {0, 0}; }

  void encode(util::Writer& w) const;
  [[nodiscard]] static ProposalNumber decode(util::Reader& r);
  void digest(util::Hasher& h) const;
};

/// A (proposal number, value) pair: an accepted proposal carried in
/// prepare-phase responses.
struct Proposal {
  ProposalNumber pn;
  mac::Value value = 0;

  auto operator<=>(const Proposal&) const = default;

  void encode(util::Writer& w) const;
  [[nodiscard]] static Proposal decode(util::Reader& r);
  void digest(util::Hasher& h) const;
};

/// Leader election service message (Algorithm 2): max-id flood.
struct LeaderMsg {
  std::uint64_t leader_id = 0;
};

/// Change service message (Algorithm 3): freshest-change flood. Timestamps
/// are (tick, origin id) pairs compared lexicographically so concurrent
/// changes at the same tick still have a unique maximum.
struct ChangeMsg {
  mac::Time timestamp = 0;
  std::uint64_t origin = 0;

  [[nodiscard]] auto key() const { return std::pair(timestamp, origin); }
};

/// Tree building service message (Algorithm 4): Bellman-Ford search.
struct SearchMsg {
  std::uint64_t root = 0;
  std::uint32_t hops = 0;
};

/// Proposer-side flooded messages: PAXOS prepare/propose plus the flooded
/// decision. Ordered by (pn, kind) for at-most-once processing.
struct ProposerMsg {
  enum class Kind : std::uint8_t { kPrepare = 0, kPropose = 1, kDecide = 2 };

  Kind kind = Kind::kPrepare;
  ProposalNumber pn;       ///< unused for kDecide
  mac::Value value = 0;    ///< kPropose: proposed value; kDecide: decision
};

/// Acceptor response, routed hop-by-hop toward the proposer along the
/// proposer's tree and aggregated en route (§4.2.1 "Acceptors").
struct AcceptorResponse {
  enum class Stage : std::uint8_t { kPrepare = 0, kPropose = 1 };

  Stage stage = Stage::kPrepare;
  ProposalNumber pn;          ///< the proposition responded to (pn.id = proposer)
  bool positive = true;
  std::uint64_t count = 1;    ///< aggregated response count
  /// Positive prepare responses: the max-pn prior accepted proposal among
  /// all aggregated responders (max-merged on aggregation).
  std::optional<Proposal> prev;
  /// Negative responses: the largest committed proposal number among the
  /// aggregated rejecters (the paper's standard rejection optimization).
  ProposalNumber max_committed;
  /// Next-hop destination (parent[pn.id] of the last relayer). Broadcast,
  /// but ignored by everyone except `dest` — the paper's unicast emulation.
  std::uint64_t dest = 0;

  /// True when `other` aggregates with this entry (same proposition, same
  /// stage, same polarity).
  [[nodiscard]] bool can_merge(const AcceptorResponse& other) const;
  /// Merges counts and max-merges prev / max_committed. Requires can_merge.
  void merge(const AcceptorResponse& other);
};

/// One wPAXOS broadcast: the multiplexed heads of the service queues.
struct Envelope {
  std::optional<LeaderMsg> leader;
  std::optional<ChangeMsg> change;
  std::optional<SearchMsg> search;
  std::optional<ProposerMsg> proposer;
  std::optional<AcceptorResponse> response;

  [[nodiscard]] bool empty() const {
    return !leader && !change && !search && !proposer && !response;
  }

  [[nodiscard]] util::Buffer encode() const;
  [[nodiscard]] static Envelope decode(const util::Buffer& buf);
};

}  // namespace amac::core::wpaxos
