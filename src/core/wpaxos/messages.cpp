#include "core/wpaxos/messages.hpp"

namespace amac::core::wpaxos {

void ProposalNumber::encode(util::Writer& w) const {
  w.put_uvarint(tag);
  w.put_uvarint(id);
}

ProposalNumber ProposalNumber::decode(util::Reader& r) {
  ProposalNumber pn;
  pn.tag = r.get_uvarint();
  pn.id = r.get_uvarint();
  return pn;
}

void ProposalNumber::digest(util::Hasher& h) const {
  h.mix_u64(tag);
  h.mix_u64(id);
}

void Proposal::encode(util::Writer& w) const {
  pn.encode(w);
  w.put_uvarint(static_cast<std::uint64_t>(value));
}

Proposal Proposal::decode(util::Reader& r) {
  Proposal p;
  p.pn = ProposalNumber::decode(r);
  p.value = static_cast<mac::Value>(r.get_uvarint());
  return p;
}

void Proposal::digest(util::Hasher& h) const {
  pn.digest(h);
  h.mix_i64(value);
}

bool AcceptorResponse::can_merge(const AcceptorResponse& other) const {
  return stage == other.stage && pn == other.pn && positive == other.positive;
}

void AcceptorResponse::merge(const AcceptorResponse& other) {
  AMAC_EXPECTS(can_merge(other));
  count += other.count;
  // Keep only the prior proposal with the largest proposal number among
  // those being aggregated (§4.2.1) — exactly what Lemma 4.3 needs.
  if (other.prev && (!prev || other.prev->pn > prev->pn)) prev = other.prev;
  max_committed = std::max(max_committed, other.max_committed);
}

namespace {

constexpr std::uint8_t kHasLeader = 1u << 0;
constexpr std::uint8_t kHasChange = 1u << 1;
constexpr std::uint8_t kHasSearch = 1u << 2;
constexpr std::uint8_t kHasProposer = 1u << 3;
constexpr std::uint8_t kHasResponse = 1u << 4;

}  // namespace

util::Buffer Envelope::encode() const {
  util::Writer w;
  std::uint8_t mask = 0;
  if (leader) mask |= kHasLeader;
  if (change) mask |= kHasChange;
  if (search) mask |= kHasSearch;
  if (proposer) mask |= kHasProposer;
  if (response) mask |= kHasResponse;
  w.put_u8(mask);

  if (leader) w.put_uvarint(leader->leader_id);
  if (change) {
    w.put_uvarint(change->timestamp);
    w.put_uvarint(change->origin);
  }
  if (search) {
    w.put_uvarint(search->root);
    w.put_uvarint(search->hops);
  }
  if (proposer) {
    w.put_u8(static_cast<std::uint8_t>(proposer->kind));
    proposer->pn.encode(w);
    w.put_uvarint(static_cast<std::uint64_t>(proposer->value));
  }
  if (response) {
    w.put_u8(static_cast<std::uint8_t>(response->stage));
    response->pn.encode(w);
    w.put_bool(response->positive);
    w.put_uvarint(response->count);
    w.put_bool(response->prev.has_value());
    if (response->prev) response->prev->encode(w);
    response->max_committed.encode(w);
    w.put_uvarint(response->dest);
  }
  return std::move(w).take();
}

Envelope Envelope::decode(const util::Buffer& buf) {
  util::Reader r(buf);
  Envelope e;
  const std::uint8_t mask = r.get_u8();
  if (mask & kHasLeader) e.leader = LeaderMsg{r.get_uvarint()};
  if (mask & kHasChange) {
    ChangeMsg c;
    c.timestamp = r.get_uvarint();
    c.origin = r.get_uvarint();
    e.change = c;
  }
  if (mask & kHasSearch) {
    SearchMsg s;
    s.root = r.get_uvarint();
    s.hops = static_cast<std::uint32_t>(r.get_uvarint());
    e.search = s;
  }
  if (mask & kHasProposer) {
    ProposerMsg p;
    p.kind = static_cast<ProposerMsg::Kind>(r.get_u8());
    p.pn = ProposalNumber::decode(r);
    p.value = static_cast<mac::Value>(r.get_uvarint());
    e.proposer = p;
  }
  if (mask & kHasResponse) {
    AcceptorResponse a;
    a.stage = static_cast<AcceptorResponse::Stage>(r.get_u8());
    a.pn = ProposalNumber::decode(r);
    a.positive = r.get_bool();
    a.count = r.get_uvarint();
    if (r.get_bool()) a.prev = Proposal::decode(r);
    a.max_committed = ProposalNumber::decode(r);
    a.dest = r.get_uvarint();
    e.response = a;
  }
  AMAC_ENSURES(r.exhausted());
  return e;
}

}  // namespace amac::core::wpaxos
