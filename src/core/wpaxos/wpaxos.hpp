// wPAXOS: wireless PAXOS for multihop abstract MAC layer networks
// (paper §4.2). Solves consensus in O(D * F_ack) time given unique ids and
// knowledge of n — exactly the knowledge the lower bounds of §3.2/§3.3 make
// necessary.
//
// Structure mirrors the paper's Figure 3: four support services plus the
// PAXOS proposer/acceptor logic, all multiplexed over one broadcast stream.
//
//   * Leader election (Algorithm 2): max-id flood into Omega.
//   * Change service (Algorithm 3): floods the freshest (timestamp, origin)
//     change event; a node that believes itself leader generates a new
//     proposal whenever its change queue is refreshed — and a proposer
//     attempts at most `proposals_per_change` proposal numbers per
//     notification, which is what bounds proposals after stabilization.
//   * Tree building (Algorithm 4): per-root Bellman-Ford (dist, parent)
//     with the current leader's search messages prioritized, so the
//     leader's tree completes soon after leader election stabilizes.
//   * Broadcast service (Algorithm 5): combines the heads of the service
//     queues into one bounded envelope per ack cycle.
//   * Proposer/acceptor: standard single-decree PAXOS, except acceptor
//     responses are addressed hop-by-hop to parent[proposer] and
//     aggregated en route: counts sum, carried previous proposals and
//     rejection commit-numbers max-merge (§4.2.1). Lemma 4.2 (response
//     count conservation) is monitored by verify/invariants.hpp.
//
// Deciding proposers flood decide(v); every node decides on first receipt.
#pragma once

#include <list>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "core/wpaxos/messages.hpp"
#include "mac/process.hpp"

namespace amac::core::wpaxos {

/// Feature switches. Defaults reproduce the paper's algorithm; turning a
/// switch off reproduces the strawman that motivates the corresponding
/// design choice (bench_ablations).
struct WPaxosConfig {
  /// Algorithm 4's optimization: the current leader's search messages jump
  /// the tree queue. Off = plain FIFO Bellman-Ford.
  bool tree_priority = true;
  /// Aggregate acceptor responses en route (§4.2.1). Off = every response
  /// travels individually: the Theta(n) bottleneck the paper warns about.
  bool aggregate_responses = true;
  /// Gate proposal (re)generation on the change service (Algorithm 3).
  /// Off = the leader re-proposes on every service event it observes
  /// (proposal storm).
  bool change_gating = true;
  /// The paper's "up to 2 proposal numbers per change notification".
  int proposals_per_change = 2;
  /// Record every positive acceptor response for the Lemma 4.2 monitor.
  bool track_responses = false;
  /// Dual-graph extension (the paper's open question): when true, the tree
  /// service only adopts parents from packets that arrived over RELIABLE
  /// edges, so acceptor responses are never routed into a link the
  /// adversary can silence. Safety holds either way; this restores
  /// liveness under unreliable overlays (see bench_unreliable).
  bool tree_reliable_only = false;
};

/// Per-node counters exposed to benches.
struct WPaxosNodeStats {
  std::uint64_t proposals_started = 0;
  std::uint64_t change_events = 0;       ///< local Omega/dist-to-leader updates
  std::uint64_t responses_merged = 0;    ///< aggregation events in the queue
  std::uint64_t responses_enqueued = 0;
};

class WPaxos final : public mac::Process {
 public:
  /// Knowledge: own unique id, n (required by Theorem 3.9), initial value.
  /// No topology or participant knowledge.
  WPaxos(std::uint64_t id, std::size_t n, mac::Value initial_value,
         WPaxosConfig config = {});

  void on_start(mac::Context& ctx) override;
  void on_receive(const mac::Packet& packet, mac::Context& ctx) override;
  void on_ack(mac::Context& ctx) override;
  [[nodiscard]] std::unique_ptr<mac::Process> clone() const override;
  void digest(util::Hasher& h) const override;
  void protocol_stats(mac::ProtocolStats& out) const override;

  // --- observables (tests, benches, invariant monitors) ---

  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] std::uint64_t omega() const { return omega_; }
  [[nodiscard]] const std::map<std::uint64_t, std::uint32_t>& dist() const {
    return dist_;
  }
  [[nodiscard]] const std::map<std::uint64_t, std::uint64_t>& parent() const {
    return parent_;
  }
  [[nodiscard]] bool has_decided() const { return decided_; }
  [[nodiscard]] const WPaxosNodeStats& node_stats() const { return stats_; }
  [[nodiscard]] const std::vector<AcceptorResponse>& response_queue() const {
    return response_q_;
  }
  [[nodiscard]] std::uint64_t current_max_tag() const { return max_tag_; }

  /// Proposer-side view for the Lemma 4.2 monitor.
  struct ProposerSnapshot {
    bool active = false;
    AcceptorResponse::Stage stage = AcceptorResponse::Stage::kPrepare;
    ProposalNumber pn;
    std::uint64_t yes = 0;
    std::uint64_t no = 0;
  };
  [[nodiscard]] ProposerSnapshot proposer_snapshot() const;

  /// With track_responses: has this node's acceptor emitted a positive
  /// response to (pn, stage)?
  [[nodiscard]] bool responded_positive(const ProposalNumber& pn,
                                        AcceptorResponse::Stage stage) const;

 private:
  enum class PropPhase : std::uint8_t { kIdle, kPrepare, kPropose };

  // -- service event handlers --
  void process_leader(std::uint64_t leader_id, mac::Context& ctx);
  void process_search(const SearchMsg& m, std::uint64_t from_id,
                      bool reliable_edge, mac::Context& ctx);
  void process_change(const ChangeMsg& m, mac::Context& ctx);
  void process_proposer(const ProposerMsg& m, mac::Context& ctx);
  void process_response(const AcceptorResponse& r, mac::Context& ctx);

  // -- change service --
  void on_local_change(mac::Context& ctx);

  // -- tree service --
  void tree_enqueue(const SearchMsg& s);
  void tree_prioritize_leader();

  // -- proposer --
  void generate_new_proposal(mac::Context& ctx);
  void start_proposal(mac::Context& ctx);
  void consume_response(const AcceptorResponse& r, mac::Context& ctx);
  void check_thresholds(mac::Context& ctx);

  // -- acceptor --
  [[nodiscard]] AcceptorResponse acceptor_respond(const ProposerMsg& m);
  void route_response(AcceptorResponse r, mac::Context& ctx);
  void response_enqueue(AcceptorResponse r);
  void prune_responses();

  // -- decision --
  void adopt_decision(mac::Value v, mac::Context& ctx);

  // -- broadcast service (Algorithm 5) --
  void maybe_send(mac::Context& ctx);

  [[nodiscard]] static std::uint8_t rank(ProposerMsg::Kind k) {
    return static_cast<std::uint8_t>(k);
  }

  // identity & knowledge
  std::uint64_t id_;
  std::size_t n_;
  mac::Value value_;
  WPaxosConfig cfg_;

  // leader election (Algorithm 2)
  std::uint64_t omega_ = 0;
  std::optional<LeaderMsg> leader_q_;

  // change service (Algorithm 3)
  std::pair<mac::Time, std::uint64_t> last_change_{0, 0};
  std::optional<ChangeMsg> change_q_;

  // tree service (Algorithm 4); keyed by root id
  std::map<std::uint64_t, std::uint32_t> dist_;
  std::map<std::uint64_t, std::uint64_t> parent_;
  std::list<SearchMsg> tree_q_;

  // proposer flood queue + at-most-once guard
  std::optional<ProposerMsg> proposer_q_;
  std::pair<ProposalNumber, std::uint8_t> last_processed_{
      ProposalNumber::zero(), 0};
  bool processed_any_ = false;

  // acceptor (standard PAXOS acceptor state)
  ProposalNumber promised_ = ProposalNumber::zero();
  std::optional<Proposal> accepted_;
  std::set<std::pair<ProposalNumber, std::uint8_t>> positive_log_;

  // acceptor response queue (§4.2.1 invariants maintained by
  // response_enqueue/prune_responses)
  std::vector<AcceptorResponse> response_q_;
  ProposalNumber max_pn_from_leader_ = ProposalNumber::zero();

  // proposer state machine
  PropPhase pphase_ = PropPhase::kIdle;
  ProposalNumber current_ = ProposalNumber::zero();
  mac::Value prop_value_ = 0;
  std::uint64_t yes_ = 0;
  std::uint64_t no_ = 0;
  std::optional<Proposal> best_prev_;
  ProposalNumber highest_rejection_ = ProposalNumber::zero();
  int attempts_left_ = 0;
  std::uint64_t max_tag_ = 0;

  // decision
  bool decided_ = false;
  mac::Value decision_value_ = -1;
  bool decide_relay_pending_ = false;

  WPaxosNodeStats stats_;
};

/// Envelope extension: every wPAXOS broadcast also carries the sender's
/// algorithm-level id so receivers can set tree parents under arbitrary
/// (not index-equal) id assignments.
struct WireEnvelope {
  std::uint64_t sender_id = 0;
  Envelope body;

  [[nodiscard]] util::Buffer encode() const;
  [[nodiscard]] static WireEnvelope decode(const util::Buffer& buf);
};

}  // namespace amac::core::wpaxos
