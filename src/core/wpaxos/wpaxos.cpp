#include "core/wpaxos/wpaxos.hpp"

#include <algorithm>

namespace amac::core::wpaxos {

util::Buffer WireEnvelope::encode() const {
  util::Writer w;
  w.put_uvarint(sender_id);
  const util::Buffer inner = body.encode();
  w.put_bytes(inner);
  return std::move(w).take();
}

WireEnvelope WireEnvelope::decode(const util::Buffer& buf) {
  util::Reader r(buf);
  WireEnvelope e;
  e.sender_id = r.get_uvarint();
  const util::Buffer inner = r.get_bytes();
  AMAC_ENSURES(r.exhausted());
  e.body = Envelope::decode(inner);
  return e;
}

WPaxos::WPaxos(std::uint64_t id, std::size_t n, mac::Value initial_value,
               WPaxosConfig config)
    : id_(id), n_(n), value_(initial_value), cfg_(config) {
  AMAC_EXPECTS(n >= 1);
  // PAXOS is value-agnostic, so wPAXOS supports arbitrary non-negative
  // values, not just binary consensus (the paper's §2 generalization; note
  // that b-bit values make messages O(b + log n) bits — doing better is
  // the open problem the paper states).
  AMAC_EXPECTS(initial_value >= 0);
  AMAC_EXPECTS(cfg_.proposals_per_change >= 1);
}

void WPaxos::on_start(mac::Context& ctx) {
  // Algorithm 2 init: Omega_u <- id_u, enqueue <leader, id_u>.
  omega_ = id_;
  leader_q_ = LeaderMsg{id_};
  // Algorithm 4 init: dist[id_u] <- 0, parent[id_u] <- id_u,
  // enqueue <search, id_u, 1>.
  dist_[id_] = 0;
  parent_[id_] = id_;
  tree_enqueue(SearchMsg{id_, 1});
  // Algorithm 3: bootstrap change event (every node starts as its own
  // leader, so this also generates the initial proposal).
  on_local_change(ctx);
  maybe_send(ctx);
}

void WPaxos::on_receive(const mac::Packet& packet, mac::Context& ctx) {
  const WireEnvelope env = WireEnvelope::decode(packet.payload);
  const Envelope& body = env.body;
  if (body.leader) process_leader(body.leader->leader_id, ctx);
  if (body.search) {
    process_search(*body.search, env.sender_id, packet.reliable, ctx);
  }
  if (body.change) process_change(*body.change, ctx);
  if (body.proposer) process_proposer(*body.proposer, ctx);
  if (body.response) process_response(*body.response, ctx);
  maybe_send(ctx);
}

void WPaxos::on_ack(mac::Context& ctx) { maybe_send(ctx); }

// ---------------------------------------------------------------- services

void WPaxos::process_leader(std::uint64_t leader_id, mac::Context& ctx) {
  if (decided_ || leader_id <= omega_) return;
  omega_ = leader_id;
  leader_q_ = LeaderMsg{leader_id};
  // Losing leadership abandons any in-flight proposal: its responses are
  // about to be pruned network-wide anyway (queue invariant (1)).
  if (omega_ != id_) pphase_ = PropPhase::kIdle;
  tree_prioritize_leader();
  max_pn_from_leader_ = ProposalNumber::zero();
  // The at-most-once cursor is scoped to the current leader's flood: the
  // new leader restarts from its own (possibly smaller) proposal numbers,
  // so the cursor restarts with it (see process_proposer).
  processed_any_ = false;
  last_processed_ = {ProposalNumber::zero(), 0};
  prune_responses();
  on_local_change(ctx);
}

void WPaxos::process_search(const SearchMsg& m, std::uint64_t from_id,
                            bool reliable_edge, mac::Context& ctx) {
  if (decided_) return;
  // Dual-graph mode: never route the response tree over a link the
  // adversary may silence.
  if (cfg_.tree_reliable_only && !reliable_edge) return;
  const auto it = dist_.find(m.root);
  const bool improves = it == dist_.end() || m.hops < it->second;
  if (!improves) return;
  dist_[m.root] = m.hops;
  parent_[m.root] = from_id;
  tree_enqueue(SearchMsg{m.root, m.hops + 1});
  // Algorithm 3's OnChange fires when Omega or the distance to the current
  // leader changes.
  if (m.root == omega_) on_local_change(ctx);
  // Ablation: without change gating, a self-proclaimed leader re-proposes
  // on every event it observes.
  if (!cfg_.change_gating && omega_ == id_) generate_new_proposal(ctx);
}

void WPaxos::process_change(const ChangeMsg& m, mac::Context& ctx) {
  if (decided_ || m.key() <= last_change_) return;
  last_change_ = m.key();
  change_q_ = m;
  // Algorithm 3 UpdateQ: a node that currently believes itself leader
  // generates a new PAXOS proposal.
  if (omega_ == id_) generate_new_proposal(ctx);
}

void WPaxos::on_local_change(mac::Context& ctx) {
  if (decided_) return;
  ++stats_.change_events;
  last_change_ = {ctx.now(), id_};
  change_q_ = ChangeMsg{ctx.now(), id_};
  if (omega_ == id_) generate_new_proposal(ctx);
}

void WPaxos::tree_enqueue(const SearchMsg& s) {
  // Algorithm 4 UpdateQ: replace any queued (necessarily worse) entry for
  // the same root, then prioritize the leader's entry.
  tree_q_.remove_if([&](const SearchMsg& q) { return q.root == s.root; });
  tree_q_.push_back(s);
  tree_prioritize_leader();
}

void WPaxos::tree_prioritize_leader() {
  if (!cfg_.tree_priority) return;
  const auto it = std::find_if(
      tree_q_.begin(), tree_q_.end(),
      [&](const SearchMsg& q) { return q.root == omega_; });
  if (it != tree_q_.end()) tree_q_.splice(tree_q_.begin(), tree_q_, it);
}

// ---------------------------------------------------------------- proposer

void WPaxos::generate_new_proposal(mac::Context& ctx) {
  if (decided_) return;
  attempts_left_ = cfg_.proposals_per_change;
  start_proposal(ctx);
}

void WPaxos::start_proposal(mac::Context& ctx) {
  if (decided_ || attempts_left_ <= 0) return;
  --attempts_left_;
  ++stats_.proposals_started;
  ++max_tag_;
  current_ = ProposalNumber{max_tag_, id_};
  pphase_ = PropPhase::kPrepare;
  yes_ = 0;
  no_ = 0;
  best_prev_.reset();
  highest_rejection_ = ProposalNumber::zero();

  const ProposerMsg msg{ProposerMsg::Kind::kPrepare, current_, 0};
  // Flood queue invariant: the newest own proposition supersedes anything
  // queued; the at-most-once guard skips our own echo.
  proposer_q_ = msg;
  last_processed_ = {msg.pn, rank(msg.kind)};
  processed_any_ = true;
  max_pn_from_leader_ = std::max(max_pn_from_leader_, msg.pn);
  // The proposer's own acceptor handles its messages directly (§4.2.1).
  route_response(acceptor_respond(msg), ctx);
}

void WPaxos::consume_response(const AcceptorResponse& r, mac::Context& ctx) {
  if (decided_ || pphase_ == PropPhase::kIdle || r.pn != current_) return;
  const auto expected = pphase_ == PropPhase::kPrepare
                            ? AcceptorResponse::Stage::kPrepare
                            : AcceptorResponse::Stage::kPropose;
  if (r.stage != expected) return;
  if (r.positive) {
    yes_ += r.count;
    if (r.prev && (!best_prev_ || r.prev->pn > best_prev_->pn)) {
      best_prev_ = r.prev;
    }
  } else {
    no_ += r.count;
    highest_rejection_ = std::max(highest_rejection_, r.max_committed);
    max_tag_ = std::max(max_tag_, r.max_committed.tag);
  }
  check_thresholds(ctx);
}

void WPaxos::check_thresholds(mac::Context& ctx) {
  if (2 * yes_ > n_) {
    if (pphase_ == PropPhase::kPrepare) {
      // Promised by a majority: move to the propose stage with the value of
      // the highest-numbered previously accepted proposal, if any.
      pphase_ = PropPhase::kPropose;
      prop_value_ = best_prev_ ? best_prev_->value : value_;
      yes_ = 0;
      no_ = 0;
      const ProposerMsg msg{ProposerMsg::Kind::kPropose, current_,
                            prop_value_};
      proposer_q_ = msg;
      last_processed_ = {msg.pn, rank(msg.kind)};
      route_response(acceptor_respond(msg), ctx);
    } else {
      // Accepted by a majority: decide and flood the decision.
      adopt_decision(prop_value_, ctx);
    }
    return;
  }
  if (2 * no_ > n_) {
    // Rejected by a majority. The rejections carried the largest committed
    // proposal number, so a retry (if the budget and leadership allow)
    // uses a larger tag.
    pphase_ = PropPhase::kIdle;
    if (omega_ == id_ && attempts_left_ > 0) start_proposal(ctx);
  }
}

// ---------------------------------------------------------------- acceptor

AcceptorResponse WPaxos::acceptor_respond(const ProposerMsg& m) {
  AcceptorResponse r;
  r.pn = m.pn;
  r.count = 1;
  if (m.kind == ProposerMsg::Kind::kPrepare) {
    r.stage = AcceptorResponse::Stage::kPrepare;
    if (m.pn > promised_) {
      promised_ = m.pn;
      r.positive = true;
      r.prev = accepted_;
    } else {
      r.positive = false;
      r.max_committed = promised_;
    }
  } else {
    AMAC_EXPECTS(m.kind == ProposerMsg::Kind::kPropose);
    r.stage = AcceptorResponse::Stage::kPropose;
    if (m.pn >= promised_) {
      promised_ = m.pn;
      accepted_ = Proposal{m.pn, m.value};
      r.positive = true;
    } else {
      r.positive = false;
      r.max_committed = promised_;
    }
  }
  if (cfg_.track_responses && r.positive) {
    positive_log_.insert({r.pn, static_cast<std::uint8_t>(r.stage)});
  }
  return r;
}

void WPaxos::process_proposer(const ProposerMsg& m, mac::Context& ctx) {
  if (m.kind == ProposerMsg::Kind::kDecide) {
    adopt_decision(m.value, ctx);
    return;
  }
  if (decided_) return;
  // A proposition from id X is evidence that X exists: feed the leader
  // election service before the leader gate below.
  if (m.pn.id > omega_) process_leader(m.pn.id, ctx);

  // Any observed proposition teaches us its tag, so a future proposal of
  // ours is numbered above everything already in flight.
  max_tag_ = std::max(max_tag_, m.pn.tag);

  // Queue invariants (§4.2.1): only the current leader's propositions are
  // relayed and answered. This gate must run BEFORE the at-most-once
  // cursor below advances: a deposed leader may have flooded a larger
  // proposal number than the new leader's first proposition (pn order is
  // (tag, id), and the loser can hold the larger tag), and a cursor parked
  // at that stale maximum would silently swallow the real leader's flood —
  // no relay, no response, not even a rejection — wedging the proposer
  // below the majority threshold with nothing left to trigger a retry.
  if (m.pn.id != omega_) return;

  // At-most-once processing per (pn, kind), monotonically increasing
  // within the current leader's propositions (the cursor resets on
  // leadership change; omega_ itself is monotone, so a deposed leader's
  // duplicates can never sneak back past the gate above).
  const std::pair<ProposalNumber, std::uint8_t> key{m.pn, rank(m.kind)};
  if (processed_any_ && key <= last_processed_) return;
  last_processed_ = key;
  processed_any_ = true;

  max_pn_from_leader_ = std::max(max_pn_from_leader_, m.pn);
  prune_responses();
  proposer_q_ = m;  // flood relay (supersedes anything older)
  route_response(acceptor_respond(m), ctx);

  if (!cfg_.change_gating && omega_ == id_) generate_new_proposal(ctx);
}

void WPaxos::route_response(AcceptorResponse r, mac::Context& ctx) {
  if (r.pn.id == id_) {
    consume_response(r, ctx);
  } else {
    response_enqueue(std::move(r));
  }
}

void WPaxos::process_response(const AcceptorResponse& r, mac::Context& ctx) {
  if (decided_) return;
  // Broadcast-as-unicast: only the addressed next hop handles a response.
  if (r.dest != id_) return;
  route_response(r, ctx);
}

void WPaxos::response_enqueue(AcceptorResponse r) {
  // Queue invariants (§4.2.1): responses only for the current leader's
  // largest proposition.
  if (r.pn.id != omega_ || r.pn < max_pn_from_leader_) return;
  max_pn_from_leader_ = std::max(max_pn_from_leader_, r.pn);
  prune_responses();
  ++stats_.responses_enqueued;
  if (cfg_.aggregate_responses) {
    for (auto& q : response_q_) {
      if (q.can_merge(r)) {
        q.merge(r);
        ++stats_.responses_merged;
        return;
      }
    }
  }
  response_q_.push_back(std::move(r));
}

void WPaxos::prune_responses() {
  std::erase_if(response_q_, [&](const AcceptorResponse& r) {
    return r.pn.id != omega_ || r.pn < max_pn_from_leader_;
  });
}

// ---------------------------------------------------------------- decision

void WPaxos::adopt_decision(mac::Value v, mac::Context& ctx) {
  if (decided_) return;
  decided_ = true;
  decision_value_ = v;
  decide_relay_pending_ = true;
  // Wind down: only the decide flood remains.
  leader_q_.reset();
  change_q_.reset();
  tree_q_.clear();
  proposer_q_.reset();
  response_q_.clear();
  pphase_ = PropPhase::kIdle;
  ctx.decide(v);
}

// ------------------------------------------------- broadcast service (A5)

void WPaxos::maybe_send(mac::Context& ctx) {
  if (ctx.busy()) return;

  WireEnvelope env;
  env.sender_id = id_;

  if (decided_) {
    if (!decide_relay_pending_) return;
    decide_relay_pending_ = false;
    env.body.proposer =
        ProposerMsg{ProposerMsg::Kind::kDecide, ProposalNumber::zero(),
                    decision_value_};
    ctx.broadcast(env.encode());
    return;
  }

  if (leader_q_) {
    env.body.leader = *leader_q_;
    leader_q_.reset();
  }
  if (change_q_) {
    env.body.change = *change_q_;
    change_q_.reset();
  }
  if (!tree_q_.empty()) {
    env.body.search = tree_q_.front();
    tree_q_.pop_front();
  }
  if (proposer_q_) {
    env.body.proposer = *proposer_q_;
    proposer_q_.reset();
  }
  // First sendable response: destination = the CURRENT parent toward the
  // proposer; entries whose parent is still unknown stay queued.
  for (auto it = response_q_.begin(); it != response_q_.end(); ++it) {
    const auto p = parent_.find(it->pn.id);
    if (p == parent_.end()) continue;
    AcceptorResponse r = *it;
    r.dest = p->second;
    response_q_.erase(it);
    env.body.response = std::move(r);
    break;
  }

  if (env.body.empty()) return;
  ctx.broadcast(env.encode());
}

// ------------------------------------------------------------- observables

WPaxos::ProposerSnapshot WPaxos::proposer_snapshot() const {
  ProposerSnapshot s;
  s.active = pphase_ != PropPhase::kIdle;
  s.stage = pphase_ == PropPhase::kPropose ? AcceptorResponse::Stage::kPropose
                                           : AcceptorResponse::Stage::kPrepare;
  s.pn = current_;
  s.yes = yes_;
  s.no = no_;
  return s;
}

bool WPaxos::responded_positive(const ProposalNumber& pn,
                                AcceptorResponse::Stage stage) const {
  return positive_log_.contains({pn, static_cast<std::uint8_t>(stage)});
}

std::unique_ptr<mac::Process> WPaxos::clone() const {
  return std::make_unique<WPaxos>(*this);
}

void WPaxos::protocol_stats(mac::ProtocolStats& out) const {
  // max_tag_ is the highest proposal-number tag this node has witnessed:
  // the wPAXOS analog of a round count (how deep the proposal/round
  // structure went before the run ended).
  out.max_round = std::max<std::uint64_t>(out.max_round, max_tag_);
  out.proposals += stats_.proposals_started;
  out.change_events += stats_.change_events;
}

void WPaxos::digest(util::Hasher& h) const {
  h.mix_u64(id_);
  h.mix_u64(n_);
  h.mix_i64(value_);
  h.mix_u64(omega_);
  h.mix_u64(last_change_.first);
  h.mix_u64(last_change_.second);
  for (const auto& [root, d] : dist_) {
    h.mix_u64(root);
    h.mix_u64(d);
  }
  for (const auto& [root, p] : parent_) {
    h.mix_u64(root);
    h.mix_u64(p);
  }
  for (const auto& s : tree_q_) {
    h.mix_u64(s.root);
    h.mix_u64(s.hops);
  }
  promised_.digest(h);
  h.mix_bool(accepted_.has_value());
  if (accepted_) accepted_->digest(h);
  h.mix_u8(static_cast<std::uint8_t>(pphase_));
  current_.digest(h);
  h.mix_i64(prop_value_);
  h.mix_u64(yes_);
  h.mix_u64(no_);
  h.mix_u64(max_tag_);
  h.mix_bool(decided_);
  h.mix_i64(decision_value_);
  h.mix_u64(response_q_.size());
  for (const auto& r : response_q_) {
    h.mix_u8(static_cast<std::uint8_t>(r.stage));
    r.pn.digest(h);
    h.mix_bool(r.positive);
    h.mix_u64(r.count);
  }
}

}  // namespace amac::core::wpaxos
