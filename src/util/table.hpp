// Fixed-width console tables for the experiment harness.
//
// Every bench binary prints its results as a table whose rows mirror the
// paper's claims (see EXPERIMENTS.md). This keeps benchmark output
// greppable and diff-able across runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace amac::util {

/// Builds and prints a left-aligned fixed-width text table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row; values are appended with the cell() overloads.
  Table& row();
  Table& cell(const std::string& v);
  Table& cell(const char* v);
  Table& cell(std::int64_t v);
  Table& cell(std::uint64_t v);
  Table& cell(int v) { return cell(static_cast<std::int64_t>(v)); }
  Table& cell(unsigned v) { return cell(static_cast<std::uint64_t>(v)); }
  /// Doubles are printed with the given precision (default 2).
  Table& cell(double v, int precision = 2);
  Table& cell(bool v) { return cell(std::string(v ? "yes" : "no")); }

  /// Renders the table (header, separator, rows) to a string.
  [[nodiscard]] std::string render() const;

  /// Renders and writes to stdout.
  void print() const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared with benches).
[[nodiscard]] std::string format_double(double v, int precision);

}  // namespace amac::util
