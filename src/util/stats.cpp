#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace amac::util {

void Summary::add(double x) {
  values_.push_back(x);
  sorted_ = false;
  sum_ += x;
}

void Summary::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Summary::min() const {
  AMAC_EXPECTS(!values_.empty());
  ensure_sorted();
  return values_.front();
}

double Summary::max() const {
  AMAC_EXPECTS(!values_.empty());
  ensure_sorted();
  return values_.back();
}

double Summary::mean() const {
  AMAC_EXPECTS(!values_.empty());
  return sum_ / static_cast<double>(values_.size());
}

double Summary::stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (const double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size()));
}

double Summary::percentile(double p) const {
  AMAC_EXPECTS(!values_.empty());
  AMAC_EXPECTS(p >= 0.0 && p <= 100.0);
  ensure_sorted();
  if (values_.size() == 1) return values_.front();
  const double rank = p / 100.0 * static_cast<double>(values_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= values_.size()) return values_.back();
  return values_[lo] * (1.0 - frac) + values_[lo + 1] * frac;
}

}  // namespace amac::util
