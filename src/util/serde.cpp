#include "util/serde.hpp"

namespace amac::util {

void Writer::put_uvarint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void Writer::put_svarint(std::int64_t v) {
  // Zigzag: small magnitudes (of either sign) get small encodings.
  const auto u = (static_cast<std::uint64_t>(v) << 1) ^
                 static_cast<std::uint64_t>(v >> 63);
  put_uvarint(u);
}

void Writer::put_u8(std::uint8_t v) { buf_.push_back(v); }

void Writer::put_bool(bool v) { buf_.push_back(v ? 1 : 0); }

void Writer::put_bytes(const Buffer& b) {
  put_uvarint(b.size());
  buf_.insert(buf_.end(), b.begin(), b.end());
}

void Writer::put_string(const std::string& s) {
  put_uvarint(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

std::uint64_t Reader::get_uvarint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    AMAC_ASSERT(pos_ < buf_->size());
    const std::uint8_t byte = (*buf_)[pos_++];
    AMAC_ASSERT(shift < 64);
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
}

std::int64_t Reader::get_svarint() {
  const std::uint64_t u = get_uvarint();
  return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

std::uint8_t Reader::get_u8() {
  AMAC_ASSERT(pos_ < buf_->size());
  return (*buf_)[pos_++];
}

bool Reader::get_bool() { return get_u8() != 0; }

Buffer Reader::get_bytes() {
  const std::size_t len = get_uvarint();
  AMAC_ASSERT(pos_ + len <= buf_->size());
  Buffer out(buf_->begin() + static_cast<std::ptrdiff_t>(pos_),
             buf_->begin() + static_cast<std::ptrdiff_t>(pos_ + len));
  pos_ += len;
  return out;
}

std::string Reader::get_string() {
  const std::size_t len = get_uvarint();
  AMAC_ASSERT(pos_ + len <= buf_->size());
  std::string out(buf_->begin() + static_cast<std::ptrdiff_t>(pos_),
                  buf_->begin() + static_cast<std::ptrdiff_t>(pos_ + len));
  pos_ += len;
  return out;
}

}  // namespace amac::util
