// Compact byte-oriented serialization.
//
// Every message that crosses the simulated abstract MAC layer is encoded to a
// byte Buffer. Working at the byte level (rather than passing typed structs
// through the simulator) buys three things the reproduction needs:
//   1. message-size accounting — the paper restricts messages to a constant
//      number of O(log n)-bit ids, and our tests assert the wire sizes;
//   2. state digesting — indistinguishability experiments (Lemma 3.6) hash
//      exactly what a node could observe;
//   3. honest wire formats — no accidental sharing of typed state between
//      simulated nodes.
//
// Integers use LEB128-style varint encoding so that small ids/counts cost one
// byte, which keeps the O(log n) accounting faithful.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace amac::util {

/// Wire representation of a message payload.
using Buffer = std::vector<std::uint8_t>;

/// Serializes values into a Buffer. Append-only.
class Writer {
 public:
  Writer() = default;

  /// Unsigned varint (LEB128). 1 byte for values < 128.
  void put_uvarint(std::uint64_t v);

  /// Signed varint via zigzag encoding.
  void put_svarint(std::int64_t v);

  /// Single raw byte.
  void put_u8(std::uint8_t v);

  /// Boolean as one byte (0/1).
  void put_bool(bool v);

  /// Length-prefixed byte string.
  void put_bytes(const Buffer& b);

  /// Length-prefixed UTF-8 string.
  void put_string(const std::string& s);

  [[nodiscard]] const Buffer& buffer() const { return buf_; }
  [[nodiscard]] Buffer take() && { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  Buffer buf_;
};

/// Deserializes values from a Buffer. Throws nothing; malformed input is a
/// programming error in this closed system, so it trips an assertion.
class Reader {
 public:
  explicit Reader(const Buffer& buf) : buf_(&buf) {}

  [[nodiscard]] std::uint64_t get_uvarint();
  [[nodiscard]] std::int64_t get_svarint();
  [[nodiscard]] std::uint8_t get_u8();
  [[nodiscard]] bool get_bool();
  [[nodiscard]] Buffer get_bytes();
  [[nodiscard]] std::string get_string();

  /// True when every byte has been consumed.
  [[nodiscard]] bool exhausted() const { return pos_ == buf_->size(); }
  [[nodiscard]] std::size_t remaining() const { return buf_->size() - pos_; }

 private:
  const Buffer* buf_;
  std::size_t pos_ = 0;
};

}  // namespace amac::util
