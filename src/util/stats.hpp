// Small descriptive-statistics helpers for the experiment harness.
#pragma once

#include <cstddef>
#include <vector>

namespace amac::util {

/// Accumulates samples and reports summary statistics. Values are stored so
/// exact percentiles are available; experiment sample counts are small.
class Summary {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  /// Population standard deviation; 0 for fewer than 2 samples.
  [[nodiscard]] double stddev() const;
  /// Exact percentile via nearest-rank on the sorted samples, p in [0,100].
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }
  [[nodiscard]] double total() const { return sum_; }

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = true;
  double sum_ = 0.0;

  void ensure_sorted() const;
};

}  // namespace amac::util
