// Deterministic, seedable pseudo-random number generation.
//
// Every randomized component in the library (random schedulers, random
// topologies, property-test sweeps) draws from this generator so that every
// experiment in the repository is exactly reproducible from its seed.
// xoshiro256** (Blackman & Vigna) seeded through SplitMix64, per the
// reference recommendation.
#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace amac::util {

/// SplitMix64 step; used for seeding and for cheap hash mixing.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5EEDBA5EULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    AMAC_EXPECTS(lo <= hi);
    const std::uint64_t span = hi - lo + 1;
    if (span == 0) return (*this)();  // full 64-bit range
    // Rejection sampling to remove modulo bias.
    const std::uint64_t limit = max() - max() % span;
    std::uint64_t v = (*this)();
    while (v >= limit) v = (*this)();
    return lo + v % span;
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool chance(double p) { return uniform01() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform(0, i - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Pick a uniformly random element. Requires non-empty.
  template <typename T>
  [[nodiscard]] const T& pick(const std::vector<T>& v) {
    AMAC_EXPECTS(!v.empty());
    return v[static_cast<std::size_t>(uniform(0, v.size() - 1))];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4] = {};
};

}  // namespace amac::util
