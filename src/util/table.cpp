#include "util/table.hpp"

#include <cstdio>
#include <sstream>

#include "util/assert.hpp"

namespace amac::util {

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  AMAC_EXPECTS(!headers_.empty());
}

Table& Table::row() {
  AMAC_EXPECTS(rows_.empty() || rows_.back().size() == headers_.size());
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& v) {
  AMAC_EXPECTS(!rows_.empty() && rows_.back().size() < headers_.size());
  rows_.back().push_back(v);
  return *this;
}

Table& Table::cell(const char* v) { return cell(std::string(v)); }

Table& Table::cell(std::int64_t v) { return cell(std::to_string(v)); }

Table& Table::cell(std::uint64_t v) { return cell(std::to_string(v)); }

Table& Table::cell(double v, int precision) {
  return cell(format_double(v, precision));
}

std::string Table::render() const {
  AMAC_EXPECTS(rows_.empty() || rows_.back().size() == headers_.size());
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }

  std::ostringstream os;
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << cells[c];
      os << std::string(widths[c] - cells[c].size(), ' ');
    }
    os << " |\n";
  };

  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  os << "-|\n";
  for (const auto& r : rows_) emit_row(r);
  return os.str();
}

void Table::print() const {
  const std::string s = render();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

}  // namespace amac::util
