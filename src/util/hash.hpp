// Incremental 64-bit hashing for state digests.
//
// The indistinguishability experiments (Lemma 3.6, §3.2) and the FLP valency
// explorer (§3.1) both need a cheap, deterministic digest of "everything a
// node has observed" / "the whole system state". FNV-1a over a canonical
// byte stream is sufficient: we need stable equality witnesses, not
// cryptographic strength.
#pragma once

#include <cstdint>
#include <string>

#include "util/serde.hpp"

namespace amac::util {

/// Incremental FNV-1a (64-bit) hasher.
class Hasher {
 public:
  void mix_u8(std::uint8_t b) {
    h_ ^= b;
    h_ *= kPrime;
  }

  void mix_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) mix_u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void mix_i64(std::int64_t v) { mix_u64(static_cast<std::uint64_t>(v)); }

  void mix_bool(bool b) { mix_u8(b ? 1 : 0); }

  void mix_bytes(const Buffer& b) {
    mix_u64(b.size());
    for (const auto byte : b) mix_u8(byte);
  }

  void mix_string(const std::string& s) {
    mix_u64(s.size());
    for (const char c : s) mix_u8(static_cast<std::uint8_t>(c));
  }

  [[nodiscard]] std::uint64_t digest() const { return h_; }

 private:
  static constexpr std::uint64_t kOffset = 0xCBF29CE484222325ULL;
  static constexpr std::uint64_t kPrime = 0x100000001B3ULL;
  std::uint64_t h_ = kOffset;
};

/// One-shot hash of a byte buffer.
[[nodiscard]] inline std::uint64_t hash_bytes(const Buffer& b) {
  Hasher h;
  h.mix_bytes(b);
  return h.digest();
}

/// Order-sensitive combination of two digests.
[[nodiscard]] inline std::uint64_t hash_combine(std::uint64_t a,
                                                std::uint64_t b) {
  Hasher h;
  h.mix_u64(a);
  h.mix_u64(b);
  return h.digest();
}

}  // namespace amac::util
