// Contract-checking macros used across the library.
//
// Following the C++ Core Guidelines (I.6/I.8), preconditions and invariants
// are expressed with Expects/Ensures-style macros. Violations indicate a bug
// in the caller or in the library itself, never an expected runtime
// condition, so they abort with a diagnostic rather than throw.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace amac::util {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "[amac] %s failed: %s at %s:%d\n", kind, expr, file,
               line);
  std::abort();
}

}  // namespace amac::util

// Precondition: the caller must ensure `cond` before entering the function.
#define AMAC_EXPECTS(cond)                                                 \
  ((cond) ? static_cast<void>(0)                                           \
          : ::amac::util::contract_failure("precondition", #cond, __FILE__, \
                                           __LINE__))

// Postcondition / invariant internal to the library.
#define AMAC_ENSURES(cond)                                                  \
  ((cond) ? static_cast<void>(0)                                            \
          : ::amac::util::contract_failure("postcondition", #cond, __FILE__, \
                                           __LINE__))

// General internal assertion.
#define AMAC_ASSERT(cond)                                                  \
  ((cond) ? static_cast<void>(0)                                           \
          : ::amac::util::contract_failure("assertion", #cond, __FILE__,   \
                                           __LINE__))
