// Contract-checking macros used across the library.
//
// Following the C++ Core Guidelines (I.6/I.8), preconditions and invariants
// are expressed with Expects/Ensures-style macros. Violations indicate a bug
// in the caller or in the library itself, never an expected runtime
// condition, so they abort with a diagnostic rather than throw.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace amac::util {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "[amac] %s failed: %s at %s:%d\n", kind, expr, file,
               line);
  std::abort();
}

}  // namespace amac::util

// Precondition: the caller must ensure `cond` before entering the function.
#define AMAC_EXPECTS(cond)                                                 \
  ((cond) ? static_cast<void>(0)                                           \
          : ::amac::util::contract_failure("precondition", #cond, __FILE__, \
                                           __LINE__))

// Postcondition / invariant internal to the library.
#define AMAC_ENSURES(cond)                                                  \
  ((cond) ? static_cast<void>(0)                                            \
          : ::amac::util::contract_failure("postcondition", #cond, __FILE__, \
                                           __LINE__))

// General internal assertion.
#define AMAC_ASSERT(cond)                                                  \
  ((cond) ? static_cast<void>(0)                                           \
          : ::amac::util::contract_failure("assertion", #cond, __FILE__,   \
                                           __LINE__))

// Expensive contract checks (non-constant cost on a hot path, e.g. the
// O(degree) Graph::has_edge scan per scheduled delivery in
// Network::start_broadcast). These are compiled out of optimized builds so
// release fuzz soaks and benchmarks don't pay for them; debug builds (and
// any build configured with -DAMAC_CHECK=1, see the AMAC_EXPENSIVE_CHECKS
// CMake option) keep them. The condition is NOT evaluated when disabled.
#ifndef AMAC_CHECK
#ifdef NDEBUG
#define AMAC_CHECK 0
#else
#define AMAC_CHECK 1
#endif
#endif

#if AMAC_CHECK
#define AMAC_CHECK_ENSURES(cond) AMAC_ENSURES(cond)
#else
#define AMAC_CHECK_ENSURES(cond) static_cast<void>(0)
#endif
