// Strict, whole-string numeric parsing for CLI flags and spec tokens.
//
// std::strtoull-style parsing silently turns garbage into 0 ("--count abc"
// runs a zero-scenario soak that exits green); these helpers accept a value
// only when the ENTIRE string is a well-formed number in range, and return
// nullopt otherwise so callers can fail loudly.
#pragma once

#include <charconv>
#include <cmath>
#include <cstdint>
#include <optional>
#include <string_view>

namespace amac::util {

/// Parses a non-negative decimal integer. The whole string must be digits
/// (no sign, no whitespace, no trailing junk) and fit in 64 bits.
[[nodiscard]] inline std::optional<std::uint64_t> parse_u64(
    std::string_view v) {
  std::uint64_t out = 0;
  const char* end = v.data() + v.size();
  const auto res = std::from_chars(v.data(), end, out);
  if (res.ec != std::errc{} || res.ptr != end) return std::nullopt;
  return out;
}

/// Like parse_u64, but also accepts a 0x/0X-prefixed hexadecimal form
/// (--expect-digest takes the fingerprint exactly as the soak prints it).
[[nodiscard]] inline std::optional<std::uint64_t> parse_u64_any(
    std::string_view v) {
  if (v.size() > 2 && v[0] == '0' && (v[1] == 'x' || v[1] == 'X')) {
    std::uint64_t out = 0;
    const char* end = v.data() + v.size();
    const auto res = std::from_chars(v.data() + 2, end, out, 16);
    if (res.ec != std::errc{} || res.ptr != end) return std::nullopt;
    return out;
  }
  return parse_u64(v);
}

/// Parses a finite decimal floating-point value (fixed or scientific
/// form). The whole string must parse, and inf/nan are rejected — a NaN
/// ratio would slide through min/max range checks (every comparison is
/// false) and silently disable whatever the flag controls.
[[nodiscard]] inline std::optional<double> parse_double(std::string_view v) {
  double out = 0.0;
  const char* end = v.data() + v.size();
  const auto res =
      std::from_chars(v.data(), end, out, std::chars_format::general);
  if (res.ec != std::errc{} || res.ptr != end || !std::isfinite(out)) {
    return std::nullopt;
  }
  return out;
}

}  // namespace amac::util
