// The original binary-heap MAC engine, frozen as the A/B baseline.
//
// This is the event core the calendar-queue engine (engine.hpp) replaced:
// a std::priority_queue of Events that each carry a
// shared_ptr<const Buffer> (refcount traffic on every sift), std::map
// flight tables, and per-broadcast schedule allocations. It is kept
// in-tree, bit-for-bit equivalent in observable behavior, for two jobs:
//   1. the differential tests prove the calendar engine pops the exact
//      same (t, kind, seq) event sequence and reaches identical decisions,
//      stats, and trace digests;
//   2. bench_micro benchmarks both engines in the same binary, so the
//      speedup claim is always measurable on the current tree.
// Do not optimize this file; its slowness is the point.
//
// Instance multiplexing parity: the reference engine mirrors Network's
// add_instance / decision(u, i) / process(u, i) surface with the identical
// seq-allocation and on_start order, so multi-instance runs stay
// differential-testable (tests/test_multi_instance.cpp). Per-instance
// InstanceStats cover the engine-independent traffic fields; the pool
// footprint fields stay 0 here (this engine has no payload pool).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <vector>

#include "mac/engine.hpp"  // CrashPlan, Decision, EngineStats, StopWhen
#include "mac/process.hpp"
#include "mac/scheduler.hpp"
#include "net/graph.hpp"
#include "util/hash.hpp"

namespace amac::mac {

/// One simulated network driven by the legacy heap event core. Public
/// surface mirrors Network so tests and benches can drive either.
class ReferenceNetwork {
 public:
  ReferenceNetwork(const net::Graph& graph, const ProcessFactory& factory,
                   Scheduler& scheduler,
                   const net::Graph* unreliable_overlay = nullptr);

  ReferenceNetwork(const ReferenceNetwork&) = delete;
  ReferenceNetwork& operator=(const ReferenceNetwork&) = delete;

  void schedule_crash(const CrashPlan& plan);

  /// Identical contract to Network::set_link_faults: the same plan on both
  /// engines must yield bit-identical traces (the decisions are pure
  /// hashes, and both engines emit faulted copies in the same canonical
  /// order: kept, deferred, duplicates).
  void set_link_faults(const LinkFaultPlan& plan);

  /// Identical contract to Network::add_instance (instance-major start
  /// order, same seq allocation); pre-run only on this engine — the
  /// replicated-log driver that launches mid-run targets Network.
  InstanceId add_instance(const ProcessFactory& factory);

  [[nodiscard]] std::size_t instance_count() const {
    return instances_.size();
  }

  void set_post_event_hook(std::function<void(ReferenceNetwork&)> hook) {
    post_event_hook_ = std::move(hook);
  }

  RunResult run(StopWhen until, Time max_time);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] const Decision& decision(NodeId u) const {
    return decision(u, 0);
  }
  [[nodiscard]] const Decision& decision(NodeId u, InstanceId instance) const;
  [[nodiscard]] bool crashed(NodeId u) const;
  [[nodiscard]] const EngineStats& stats() const { return stats_; }
  [[nodiscard]] const InstanceStats& instance_stats(InstanceId instance) const;
  [[nodiscard]] const net::Graph& graph() const { return *graph_; }

  [[nodiscard]] Process& process(NodeId u) { return process(u, 0); }
  [[nodiscard]] const Process& process(NodeId u) const {
    return process(u, 0);
  }
  [[nodiscard]] Process& process(NodeId u, InstanceId instance);
  [[nodiscard]] const Process& process(NodeId u, InstanceId instance) const;

  [[nodiscard]] std::size_t in_flight_from(NodeId sender) const;

  void for_each_in_flight(
      const std::function<void(NodeId, NodeId, const util::Buffer&)>& fn)
      const;

  [[nodiscard]] bool all_alive_decided() const;
  [[nodiscard]] bool instance_all_decided(InstanceId instance) const;

  void enable_trace_digest() { trace_enabled_ = true; }
  [[nodiscard]] std::uint64_t trace_digest() const {
    return trace_hasher_.digest();
  }

 private:
  enum class RefEventKind : std::uint8_t { kDeliver = 0, kAck = 1,
                                           kCrash = 2 };

  struct RefEvent {
    Time t = 0;
    RefEventKind kind = RefEventKind::kDeliver;
    std::uint64_t seq = 0;  ///< FIFO tie-break within a tick
    NodeId node = kNoNode;  ///< receiver (deliver), sender (ack), crashee
    NodeId sender = kNoNode;               ///< deliver only
    std::uint64_t broadcast_id = 0;        ///< deliver/ack: which broadcast
    std::shared_ptr<const util::Buffer> payload;  ///< deliver only
    InstanceId instance = 0;               ///< deliver/ack: issuing instance
    bool reliable = true;                  ///< deliver: edge class

    [[nodiscard]] bool operator>(const RefEvent& o) const {
      if (t != o.t) return t > o.t;
      if (kind != o.kind) return kind > o.kind;
      return seq > o.seq;
    }
  };

  /// Node-level state: crash status only (mirrors Network).
  struct NodeState {
    bool crashed = false;
    Time crash_time = kForever;
  };

  struct InstanceNode {
    std::unique_ptr<Process> process;
    bool busy = false;
    std::uint64_t current_broadcast = 0;
    Decision decision;
  };

  struct Instance {
    std::vector<InstanceNode> nodes;
    InstanceStats stats;
    std::size_t undecided_alive = 0;
  };

  /// Bookkeeping for one broadcast's undelivered copies.
  struct Flight {
    NodeId sender = kNoNode;
    std::shared_ptr<const util::Buffer> payload;
    InstanceId instance = 0;
    std::vector<NodeId> pending;
    std::size_t undrained_events = 0;
  };

  class NodeContext;

  void start_broadcast(NodeId u, InstanceId instance,
                       const util::Buffer& payload);
  void process_event(const RefEvent& e);
  void trace_event(const RefEvent& e);
  void push_event(RefEvent e);

  const net::Graph* graph_;
  const net::Graph* overlay_ = nullptr;
  Scheduler* scheduler_;
  std::vector<NodeState> nodes_;
  std::vector<Instance> instances_;
  LinkFaultPlan faults_;
  std::map<std::uint64_t, Flight> flights_;
  std::priority_queue<RefEvent, std::vector<RefEvent>, std::greater<>>
      events_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_broadcast_id_ = 1;
  Time now_ = 0;
  std::size_t undecided_alive_ = 0;
  EngineStats stats_;
  std::function<void(ReferenceNetwork&)> post_event_hook_;
  bool started_ = false;
  bool trace_enabled_ = false;
  util::Hasher trace_hasher_;
};

}  // namespace amac::mac
