// Core value types of the abstract MAC layer model (paper §2).
#pragma once

#include <cstdint>
#include <limits>

#include "net/graph.hpp"
#include "util/serde.hpp"

namespace amac::mac {

/// Virtual time in ticks. Local computation is instantaneous (paper §2);
/// only message receive/ack scheduling advances time.
using Time = std::uint64_t;

inline constexpr Time kForever = std::numeric_limits<Time>::max();

/// A message as observed by a receiver: the sender plus the payload bytes.
/// The model gives receivers the sender's link-layer identity (messages come
/// from a neighbor); algorithms that must be anonymous simply never put ids
/// in their payloads and never read `sender` (enforced by code review +
/// the Figure 1 indistinguishability test, which would fail if they did).
struct Packet {
  NodeId sender = kNoNode;
  util::Buffer payload;
  /// False when the packet arrived over a best-effort edge of the
  /// unreliable overlay (the dual-graph abstract MAC layer model of [29],
  /// the paper's first future-work direction). Reliable-graph deliveries
  /// are always true.
  bool reliable = true;
};

/// Binary consensus value (paper §2 studies binary consensus).
using Value = int;

}  // namespace amac::mac
