// Core value types of the abstract MAC layer model (paper §2).
#pragma once

#include <cstdint>
#include <limits>

#include "net/graph.hpp"
#include "util/serde.hpp"

namespace amac::mac {

/// Virtual time in ticks. Local computation is instantaneous (paper §2);
/// only message receive/ack scheduling advances time.
using Time = std::uint64_t;

inline constexpr Time kForever = std::numeric_limits<Time>::max();

/// A message as observed by a receiver: the sender plus the payload bytes.
/// The model gives receivers the sender's link-layer identity (messages come
/// from a neighbor); algorithms that must be anonymous simply never put ids
/// in their payloads and never read `sender` (enforced by code review +
/// the Figure 1 indistinguishability test, which would fail if they did).
///
/// `payload` is a reference into the engine's payload pool (or the caller's
/// buffer, for hand-driven contexts): a delivery hands the receiver a view,
/// not a copy, so the hot delivery path performs no allocation. The
/// reference is valid only for the duration of on_receive; a process that
/// wants to keep the bytes copies them explicitly.
struct Packet {
  NodeId sender = kNoNode;
  const util::Buffer& payload;
  /// False when the packet arrived over a best-effort edge of the
  /// unreliable overlay (the dual-graph abstract MAC layer model of [29],
  /// the paper's first future-work direction). Reliable-graph deliveries
  /// are always true.
  bool reliable = true;
};

/// Binary consensus value (paper §2 studies binary consensus).
using Value = int;

/// Identifies one protocol instance multiplexed over a Network (see the
/// "Instance multiplexing" section of engine.hpp). Instance 0 is the
/// implicit default everywhere, so single-instance code never mentions it.
using InstanceId = std::uint32_t;

}  // namespace amac::mac
