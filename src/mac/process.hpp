// The process model: algorithms as deterministic event-driven state machines.
//
// A Process interacts with the world only through its Context:
//   * broadcast(payload) — the abstract MAC layer's acknowledged local
//     broadcast. If a broadcast is already outstanding the new one is
//     DISCARDED, exactly as the model specifies (paper §2).
//   * decide(v) — the single irrevocable consensus decision.
//   * now() — an opaque timestamp (used only by wPAXOS's change service,
//     mirroring Algorithm 3's time_stamp(); algorithms never learn F_ack).
//
// Determinism + value-style cloning + digest() make whole-system state
// snapshots possible, which the FLP valency explorer (§3.1) and the
// indistinguishability experiments (Lemma 3.6) rely on.
#pragma once

#include <functional>
#include <memory>

#include "mac/types.hpp"
#include "util/hash.hpp"

namespace amac::mac {

/// The services the environment offers a process. Implemented by both the
/// timed engine and the valid-step engine.
class Context {
 public:
  virtual ~Context() = default;

  /// Acknowledged local broadcast. Discarded (with accounting) if a
  /// broadcast is already outstanding. The engine copies the bytes into its
  /// payload pool, so callers may reuse (or let die) their buffer freely —
  /// a process that keeps a scratch buffer broadcasts without allocating.
  virtual void broadcast(const util::Buffer& payload) = 0;

  /// Irrevocable decision. A process may decide at most once.
  virtual void decide(Value v) = 0;

  /// True while a broadcast is outstanding (no ack yet).
  [[nodiscard]] virtual bool busy() const = 0;

  /// Opaque current timestamp. Monotone; carries no F_ack information.
  [[nodiscard]] virtual Time now() const = 0;
};

/// Algorithm-level ("protocol") run-shape counters, aggregated across every
/// node of a finished run. Where EngineStats describes which QUEUE paths a
/// run drove, ProtocolStats describes which ALGORITHM corners it reached —
/// wPAXOS proposal/round structure, Ben-Or coin-flip depth, gather/
/// stabilization progress — so the fuzzer's coverage signature can chase
/// consensus corners, not just calendar-queue corners. Collection is a
/// post-run const read of existing observables: it must never perturb a
/// run (pinned by the determinism regression in tests/test_fuzz_smoke.cpp).
struct ProtocolStats {
  std::uint64_t max_round = 0;     ///< deepest round / phase / proposal tag
                                   ///< any node reached
  std::uint64_t coin_flips = 0;    ///< total randomness consumed (Ben-Or)
  std::uint64_t proposals = 0;     ///< total proposals started (wPAXOS)
  std::uint64_t change_events = 0; ///< total change-service events (wPAXOS)
  std::uint64_t max_learned = 0;   ///< widest gather set any node accumulated
                                   ///< (flooding / stability / two-phase ids)
  std::uint64_t quiet_resets = 0;  ///< stability: quiet-phase counters that
                                   ///< late learning pulled back to zero
};

/// A deterministic algorithm instance running at one node.
class Process {
 public:
  virtual ~Process() = default;

  /// Called once at time 0 before any message events.
  virtual void on_start(Context& ctx) = 0;

  /// A neighbor's broadcast reached this node.
  virtual void on_receive(const Packet& packet, Context& ctx) = 0;

  /// The MAC layer acknowledged this node's outstanding broadcast: every
  /// (non-crashed) neighbor has received it.
  virtual void on_ack(Context& ctx) = 0;

  /// Deep copy (for the valid-step engine's state snapshots).
  [[nodiscard]] virtual std::unique_ptr<Process> clone() const = 0;

  /// Mixes the full local state into `h`. Two processes with equal digests
  /// must behave identically on equal future event sequences.
  virtual void digest(util::Hasher& h) const = 0;

  /// Folds this node's algorithm-level counters into `out`: depth fields
  /// max-merge, totals sum. Default: the algorithm exposes no protocol
  /// dimension. Must be a pure const read — collecting (or not collecting)
  /// these stats may never change a run's behavior.
  virtual void protocol_stats(ProtocolStats& out) const {
    static_cast<void>(out);
  }
};

/// Builds the process for a given node index. Knowledge discipline: the
/// factory closure decides what each algorithm learns (its id, n, D, initial
/// value); nothing else is ambient.
using ProcessFactory = std::function<std::unique_ptr<Process>(NodeId)>;

}  // namespace amac::mac
