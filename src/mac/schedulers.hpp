// The scheduler suite: every adversary the paper's proofs use, plus
// randomized schedulers for upper-bound coverage.
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "mac/scheduler.hpp"
#include "util/rng.hpp"

namespace amac::mac {

/// The paper's "synchronous scheduler" (§3.2): lock-step rounds. Every copy
/// of a broadcast is delivered `round` ticks after the broadcast, and the
/// ack arrives at the same tick (the engine orders receives first), so all
/// nodes advance in rounds of length `round`. With round = F this is also
/// the Theorem 3.10 adversary (maximum delay between synchronous steps).
class SynchronousScheduler final : public Scheduler {
 public:
  explicit SynchronousScheduler(Time round = 1) : round_(round) {
    AMAC_EXPECTS(round >= 1);
  }

  void schedule(NodeId sender, Time now, const std::vector<NodeId>& neighbors,
                BroadcastSchedule& out) override;
  [[nodiscard]] Time fack() const override { return round_; }

 private:
  Time round_;
};

/// Everything takes exactly F_ack: the straightforward worst-case scheduler.
class MaxDelayScheduler final : public Scheduler {
 public:
  explicit MaxDelayScheduler(Time fack) : fack_(fack) {
    AMAC_EXPECTS(fack >= 1);
  }

  void schedule(NodeId sender, Time now, const std::vector<NodeId>& neighbors,
                BroadcastSchedule& out) override;
  [[nodiscard]] Time fack() const override { return fack_; }

 private:
  Time fack_;
};

/// Fully random: each broadcast gets an ack delay uniform in [1, F_ack] and
/// per-neighbor receive delays uniform in [1, ack delay]. Deterministic
/// given the seed.
class UniformRandomScheduler final : public Scheduler {
 public:
  UniformRandomScheduler(Time fack, std::uint64_t seed)
      : fack_(fack), rng_(seed) {
    AMAC_EXPECTS(fack >= 1);
  }

  void schedule(NodeId sender, Time now, const std::vector<NodeId>& neighbors,
                BroadcastSchedule& out) override;
  [[nodiscard]] Time fack() const override { return fack_; }

 private:
  Time fack_;
  util::Rng rng_;
};

/// Per-directed-edge fixed delays in [1, F_ack], derived from a seed: some
/// links are persistently fast, some persistently slow. Stresses wPAXOS's
/// tree stabilization with asymmetric topologies of effective latency.
class SkewedScheduler final : public Scheduler {
 public:
  SkewedScheduler(Time fack, std::uint64_t seed) : fack_(fack), seed_(seed) {
    AMAC_EXPECTS(fack >= 1);
  }

  void schedule(NodeId sender, Time now, const std::vector<NodeId>& neighbors,
                BroadcastSchedule& out) override;
  [[nodiscard]] Time fack() const override { return fack_; }

 private:
  [[nodiscard]] Time edge_delay(NodeId from, NodeId to) const;

  Time fack_;
  std::uint64_t seed_;
};

/// Wraps a base scheduler and withholds deliveries on selected directed
/// edges until a release tick. This is the shape of both partition
/// adversaries in the paper: the §3.2 alpha_A scheduler (hold everything the
/// bridge q sends) and the §3.3 semi-synchronous scheduler (hold everything
/// the L_{D-1} endpoint w sends). Held deliveries also push the sender's ack
/// past the release tick, which is legal: F_ack is finite but unknown to the
/// nodes, so no node can detect the hold.
class HoldbackScheduler final : public Scheduler {
 public:
  HoldbackScheduler(std::unique_ptr<Scheduler> base, Time release)
      : base_(std::move(base)), release_(release) {
    AMAC_EXPECTS(base_ != nullptr);
  }

  /// Withholds every delivery from `sender` (to any neighbor) until the
  /// scheduler's release tick.
  void hold_sender(NodeId sender) {
    held_senders_[sender] = release_;
    fack_dirty_ = true;
  }

  /// Same, with a per-sender release (staggered wake-ups).
  void hold_sender_until(NodeId sender, Time release) {
    held_senders_[sender] = release;
    fack_dirty_ = true;
  }

  /// Withholds deliveries from `sender` to `receiver` until release.
  void hold_edge(NodeId sender, NodeId receiver) {
    held_edges_[{sender, receiver}] = release_;
    fack_dirty_ = true;
  }

  void schedule(NodeId sender, Time now, const std::vector<NodeId>& neighbors,
                BroadcastSchedule& out) override;

  /// The effective bound: base F_ack plus the largest hold window. Cached —
  /// the engine and experiment loops call fack() per broadcast, and
  /// re-walking both hold maps there made a query of a static quantity
  /// O(holds) per event.
  [[nodiscard]] Time fack() const override {
    if (fack_dirty_) {
      Time latest = release_;
      for (const auto& [sender, release] : held_senders_) {
        latest = std::max(latest, release);
      }
      for (const auto& [edge, release] : held_edges_) {
        latest = std::max(latest, release);
      }
      cached_fack_ = latest + base_->fack();
      fack_dirty_ = false;
    }
    return cached_fack_;
  }

 private:
  std::unique_ptr<Scheduler> base_;
  Time release_;
  std::map<NodeId, Time> held_senders_;
  std::map<std::pair<NodeId, NodeId>, Time> held_edges_;
  mutable Time cached_fack_ = 0;
  mutable bool fack_dirty_ = true;
};

/// Receiver-side contention: a radio decodes one frame at a time, so each
/// receiver absorbs at most one delivery per tick; concurrent broadcasts
/// into the same neighborhood queue up. This models the congestion
/// behavior behind the F_prog parameter of the full abstract MAC layer
/// ([29]) which the paper omits: delays grow with local contention but
/// stay below the declared bound. Construct with
/// fack_bound >= base * (max in-degree + 1); violations trip a contract
/// check rather than silently breaking the model.
class ContentionScheduler final : public Scheduler {
 public:
  ContentionScheduler(Time base, Time fack_bound, std::uint64_t seed)
      : base_(base), fack_bound_(fack_bound), rng_(seed) {
    AMAC_EXPECTS(base >= 1);
    AMAC_EXPECTS(fack_bound >= base);
  }

  void schedule(NodeId sender, Time now, const std::vector<NodeId>& neighbors,
                BroadcastSchedule& out) override;
  [[nodiscard]] Time fack() const override { return fack_bound_; }

 private:
  Time base_;
  Time fack_bound_;
  util::Rng rng_;
  /// receiver -> next decodable tick, indexed by NodeId and grown on
  /// demand (nodes are dense 0..n-1, so a flat vector replaces the former
  /// std::map and its per-lookup log factor; absent entries mean 0).
  std::vector<Time> next_free_;
};

/// Dual-graph adversary: wraps a base scheduler (which keeps deciding the
/// reliable deliveries) and delivers each unreliable-overlay copy with
/// probability `delivery_probability` — but never after the optional
/// `cutoff` tick. The cutoff builds the adversary that breaks wPAXOS's
/// liveness when its trees are allowed to route over unreliable edges: be
/// generous while routes form, then go silent (see bench_unreliable).
class LossyScheduler final : public Scheduler {
 public:
  LossyScheduler(std::unique_ptr<Scheduler> base, double delivery_probability,
                 std::uint64_t seed)
      : base_(std::move(base)), probability_(delivery_probability),
        rng_(seed) {
    AMAC_EXPECTS(base_ != nullptr);
    AMAC_EXPECTS(delivery_probability >= 0.0 && delivery_probability <= 1.0);
  }

  /// Unreliable edges deliver nothing at or after this tick.
  void set_cutoff(Time cutoff) { cutoff_ = cutoff; }

  void schedule(NodeId sender, Time now, const std::vector<NodeId>& neighbors,
                BroadcastSchedule& out) override {
    base_->schedule(sender, now, neighbors, out);
  }

  void schedule_unreliable(NodeId sender, Time now,
                           const std::vector<NodeId>& overlay_neighbors,
                           Time ack_delay,
                           std::vector<std::pair<NodeId, Time>>& out) override;

  [[nodiscard]] Time fack() const override { return base_->fack(); }

 private:
  std::unique_ptr<Scheduler> base_;
  double probability_;
  util::Rng rng_;
  Time cutoff_ = kForever;
};

/// Fully scripted delays for exact adversarial timelines in tests,
/// counterexample reproductions, and the fuzzer's timeline mutation: the
/// i-th broadcast of a sender uses its scripted (ack delay, per-receiver
/// delays); unscripted broadcasts fall back to synchronous rounds of
/// length 1.
class ScriptedScheduler final : public Scheduler {
 public:
  ScriptedScheduler() = default;

  /// One scripted slot, as seen through the introspection API. The fuzzer's
  /// timeline mutator reads these back to retime/swap/duplicate slots.
  struct SlotView {
    NodeId sender = kNoNode;
    std::size_t index = 0;      ///< which broadcast of the sender
    Time ack_delay = 1;
    Time uniform_delay = 0;     ///< nonzero: every receiver gets this delay
    std::size_t listed_receivers = 0;  ///< per-receiver entries (0 if uniform)
  };

  /// Scripts the `index`-th broadcast (0-based) of `sender`. Receivers not
  /// listed get delay 1. Requires ack_delay >= every listed delay.
  void script(NodeId sender, std::size_t index, Time ack_delay,
              std::vector<std::pair<NodeId, Time>> delays);

  /// Scripts the `index`-th broadcast of `sender` with ONE shared delay for
  /// every receiver — the dense uniform form (the engine batch-reserves the
  /// calendar bucket for it, so scripted timelines exercise the push_batch
  /// path). Requires 1 <= receive_delay <= ack_delay.
  void script_uniform(NodeId sender, std::size_t index, Time ack_delay,
                      Time receive_delay);

  // --- introspection (tests, the fuzzer's timeline mutator) ---

  [[nodiscard]] std::size_t slot_count() const { return script_.size(); }
  /// Every scripted slot in deterministic (sender, index) order.
  [[nodiscard]] std::vector<SlotView> slots() const;
  /// How many broadcasts `sender` has issued so far (scripted or fallback).
  [[nodiscard]] std::size_t broadcasts_issued(NodeId sender) const;
  [[nodiscard]] Time max_scripted_ack() const { return max_ack_; }

  void schedule(NodeId sender, Time now, const std::vector<NodeId>& neighbors,
                BroadcastSchedule& out) override;
  [[nodiscard]] Time fack() const override { return max_ack_; }

 private:
  struct Entry {
    Time ack_delay = 1;
    Time uniform_delay = 0;  ///< nonzero: uniform slot, delays ignored
    std::vector<std::pair<NodeId, Time>> delays;
  };
  std::map<std::pair<NodeId, std::size_t>, Entry> script_;
  std::map<NodeId, std::size_t> broadcast_counts_;
  Time max_ack_ = 1;
};

}  // namespace amac::mac
