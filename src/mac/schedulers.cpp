#include "mac/schedulers.hpp"

#include "util/hash.hpp"

namespace amac::mac {

void SynchronousScheduler::schedule(NodeId /*sender*/, Time /*now*/,
                                    const std::vector<NodeId>& neighbors,
                                    BroadcastSchedule& out) {
  out.reset();
  out.ack_delay = round_;
  for (const NodeId v : neighbors) out.receive_delays.emplace_back(v, round_);
}

void MaxDelayScheduler::schedule(NodeId /*sender*/, Time /*now*/,
                                 const std::vector<NodeId>& neighbors,
                                 BroadcastSchedule& out) {
  out.reset();
  out.ack_delay = fack_;
  for (const NodeId v : neighbors) out.receive_delays.emplace_back(v, fack_);
}

void UniformRandomScheduler::schedule(NodeId /*sender*/, Time /*now*/,
                                      const std::vector<NodeId>& neighbors,
                                      BroadcastSchedule& out) {
  out.reset();
  out.ack_delay = rng_.uniform(1, fack_);
  for (const NodeId v : neighbors) {
    out.receive_delays.emplace_back(v, rng_.uniform(1, out.ack_delay));
  }
}

Time SkewedScheduler::edge_delay(NodeId from, NodeId to) const {
  util::Hasher h;
  h.mix_u64(seed_);
  h.mix_u64(from);
  h.mix_u64(to);
  return 1 + h.digest() % fack_;
}

void SkewedScheduler::schedule(NodeId sender, Time /*now*/,
                               const std::vector<NodeId>& neighbors,
                               BroadcastSchedule& out) {
  out.reset();
  out.ack_delay = 1;
  for (const NodeId v : neighbors) {
    const Time d = edge_delay(sender, v);
    out.receive_delays.emplace_back(v, d);
    out.ack_delay = std::max(out.ack_delay, d);
  }
}

void HoldbackScheduler::schedule(NodeId sender, Time now,
                                 const std::vector<NodeId>& neighbors,
                                 BroadcastSchedule& out) {
  base_->schedule(sender, now, neighbors, out);
  const auto sender_hold = held_senders_.find(sender);
  for (auto& [receiver, delay] : out.receive_delays) {
    Time release = 0;
    if (sender_hold != held_senders_.end()) release = sender_hold->second;
    if (const auto edge_hold = held_edges_.find({sender, receiver});
        edge_hold != held_edges_.end()) {
      release = std::max(release, edge_hold->second);
    }
    if (now + delay < release) delay = release - now;
    out.ack_delay = std::max(out.ack_delay, delay);
  }
}

void ContentionScheduler::schedule(NodeId /*sender*/, Time now,
                                   const std::vector<NodeId>& neighbors,
                                   BroadcastSchedule& out) {
  out.reset();
  out.ack_delay = 1;
  for (const NodeId v : neighbors) {
    Time at = now + rng_.uniform(1, base_);
    if (v >= next_free_.size()) next_free_.resize(v + 1, 0);
    auto& free_at = next_free_[v];
    at = std::max(at, free_at);
    free_at = at + 1;
    const Time delay = at - now;
    AMAC_ENSURES(delay <= fack_bound_);  // raise fack_bound for this density
    out.receive_delays.emplace_back(v, delay);
    out.ack_delay = std::max(out.ack_delay, delay);
  }
}

void LossyScheduler::schedule_unreliable(
    NodeId /*sender*/, Time now, const std::vector<NodeId>& overlay_neighbors,
    Time ack_delay, std::vector<std::pair<NodeId, Time>>& out) {
  out.clear();
  if (now >= cutoff_) return;
  for (const NodeId v : overlay_neighbors) {
    if (!rng_.chance(probability_)) continue;
    const Time delay = rng_.uniform(1, ack_delay);
    // Never deliver at or past the cutoff.
    if (now + delay >= cutoff_) continue;
    out.emplace_back(v, delay);
  }
}

void ScriptedScheduler::script(NodeId sender, std::size_t index,
                               Time ack_delay,
                               std::vector<std::pair<NodeId, Time>> delays) {
  AMAC_EXPECTS(ack_delay >= 1);
  for (const auto& [receiver, delay] : delays) {
    AMAC_EXPECTS(delay >= 1 && delay <= ack_delay);
  }
  max_ack_ = std::max(max_ack_, ack_delay);
  script_[{sender, index}] = Entry{ack_delay, std::move(delays)};
}

void ScriptedScheduler::schedule(NodeId sender, Time /*now*/,
                                 const std::vector<NodeId>& neighbors,
                                 BroadcastSchedule& out) {
  out.reset();
  const std::size_t index = broadcast_counts_[sender]++;
  const auto it = script_.find({sender, index});
  if (it == script_.end()) {
    out.ack_delay = 1;
    for (const NodeId v : neighbors) out.receive_delays.emplace_back(v, 1);
    return;
  }
  const Entry& entry = it->second;
  out.ack_delay = entry.ack_delay;
  for (const NodeId v : neighbors) {
    Time delay = 1;
    for (const auto& [receiver, d] : entry.delays) {
      if (receiver == v) delay = d;
    }
    out.receive_delays.emplace_back(v, delay);
  }
}

}  // namespace amac::mac
