#include "mac/schedulers.hpp"

#include "util/hash.hpp"

namespace amac::mac {

namespace {

/// The holdback release boundary, pinned in one place: a hold can move a
/// delivery iff its release is strictly past now + 1. Delays are >= 1, so
/// no delivery lands before now + 1 and a release at or before that tick
/// is already satisfied — in particular release == now + 1 must NOT
/// stretch any delay, and an expired hold must leave the base schedule's
/// dense uniform form untouched so the engine's batch fan-out re-engages.
/// Exact-boundary tests: Schedulers.HoldbackReleaseBoundary* in
/// tests/test_mac_schedulers.cpp.
[[nodiscard]] constexpr bool hold_is_live(Time release, Time now) {
  return release > now + 1;
}

}  // namespace

void SynchronousScheduler::schedule(NodeId /*sender*/, Time /*now*/,
                                    const std::vector<NodeId>& neighbors,
                                    BroadcastSchedule& out) {
  out.reset();
  out.ack_delay = round_;
  out.assign_uniform(neighbors, round_);
}

void MaxDelayScheduler::schedule(NodeId /*sender*/, Time /*now*/,
                                 const std::vector<NodeId>& neighbors,
                                 BroadcastSchedule& out) {
  out.reset();
  out.ack_delay = fack_;
  out.assign_uniform(neighbors, fack_);
}

void UniformRandomScheduler::schedule(NodeId /*sender*/, Time /*now*/,
                                      const std::vector<NodeId>& neighbors,
                                      BroadcastSchedule& out) {
  out.reset();
  out.ack_delay = rng_.uniform(1, fack_);
  for (const NodeId v : neighbors) out.push(v, rng_.uniform(1, out.ack_delay));
}

Time SkewedScheduler::edge_delay(NodeId from, NodeId to) const {
  util::Hasher h;
  h.mix_u64(seed_);
  h.mix_u64(from);
  h.mix_u64(to);
  return 1 + h.digest() % fack_;
}

void SkewedScheduler::schedule(NodeId sender, Time /*now*/,
                               const std::vector<NodeId>& neighbors,
                               BroadcastSchedule& out) {
  out.reset();
  out.ack_delay = 1;
  for (const NodeId v : neighbors) {
    const Time d = edge_delay(sender, v);
    out.push(v, d);
    out.ack_delay = std::max(out.ack_delay, d);
  }
}

void HoldbackScheduler::schedule(NodeId sender, Time now,
                                 const std::vector<NodeId>& neighbors,
                                 BroadcastSchedule& out) {
  base_->schedule(sender, now, neighbors, out);
  // Fast path: no live hold can adjust this broadcast — a hold moves a
  // delivery iff its release is beyond now + 1 (delays are >= 1) — so the
  // base schedule (and its dense/uniform form, if any) passes through
  // untouched. Expired holds therefore re-enable the engine's batch
  // fan-out instead of densifying forever.
  const auto sender_hold = held_senders_.find(sender);
  const bool sender_live = sender_hold != held_senders_.end() &&
                           hold_is_live(sender_hold->second, now);
  bool edge_live = false;
  for (auto it = held_edges_.lower_bound({sender, 0});
       it != held_edges_.end() && it->first.first == sender; ++it) {
    if (hold_is_live(it->second, now)) {
      edge_live = true;
      break;
    }
  }
  if (!sender_live && !edge_live) return;
  out.densify();  // holds adjust individual entries
  for (std::size_t i = 0; i < out.receivers.size(); ++i) {
    Time release = 0;
    if (sender_hold != held_senders_.end()) release = sender_hold->second;
    if (const auto edge_hold = held_edges_.find({sender, out.receivers[i]});
        edge_hold != held_edges_.end()) {
      release = std::max(release, edge_hold->second);
    }
    Time& delay = out.delays[i];
    if (now + delay < release) delay = release - now;
    out.ack_delay = std::max(out.ack_delay, delay);
  }
}

void ContentionScheduler::schedule(NodeId /*sender*/, Time now,
                                   const std::vector<NodeId>& neighbors,
                                   BroadcastSchedule& out) {
  out.reset();
  out.ack_delay = 1;
  for (const NodeId v : neighbors) {
    Time at = now + rng_.uniform(1, base_);
    if (v >= next_free_.size()) next_free_.resize(v + 1, 0);
    auto& free_at = next_free_[v];
    at = std::max(at, free_at);
    free_at = at + 1;
    const Time delay = at - now;
    AMAC_ENSURES(delay <= fack_bound_);  // raise fack_bound for this density
    out.push(v, delay);
    out.ack_delay = std::max(out.ack_delay, delay);
  }
}

void LossyScheduler::schedule_unreliable(
    NodeId /*sender*/, Time now, const std::vector<NodeId>& overlay_neighbors,
    Time ack_delay, std::vector<std::pair<NodeId, Time>>& out) {
  out.clear();
  if (now >= cutoff_) return;
  for (const NodeId v : overlay_neighbors) {
    if (!rng_.chance(probability_)) continue;
    const Time delay = rng_.uniform(1, ack_delay);
    // Never deliver at or past the cutoff.
    if (now + delay >= cutoff_) continue;
    out.emplace_back(v, delay);
  }
}

void ScriptedScheduler::script(NodeId sender, std::size_t index,
                               Time ack_delay,
                               std::vector<std::pair<NodeId, Time>> delays) {
  AMAC_EXPECTS(ack_delay >= 1);
  for (const auto& [receiver, delay] : delays) {
    AMAC_EXPECTS(delay >= 1 && delay <= ack_delay);
  }
  max_ack_ = std::max(max_ack_, ack_delay);
  script_[{sender, index}] = Entry{ack_delay, 0, std::move(delays)};
}

void ScriptedScheduler::script_uniform(NodeId sender, std::size_t index,
                                       Time ack_delay, Time receive_delay) {
  AMAC_EXPECTS(ack_delay >= 1);
  AMAC_EXPECTS(receive_delay >= 1 && receive_delay <= ack_delay);
  max_ack_ = std::max(max_ack_, ack_delay);
  script_[{sender, index}] = Entry{ack_delay, receive_delay, {}};
}

std::vector<ScriptedScheduler::SlotView> ScriptedScheduler::slots() const {
  std::vector<SlotView> out;
  out.reserve(script_.size());
  for (const auto& [key, entry] : script_) {
    SlotView v;
    v.sender = key.first;
    v.index = key.second;
    v.ack_delay = entry.ack_delay;
    v.uniform_delay = entry.uniform_delay;
    v.listed_receivers = entry.delays.size();
    out.push_back(v);
  }
  return out;
}

std::size_t ScriptedScheduler::broadcasts_issued(NodeId sender) const {
  const auto it = broadcast_counts_.find(sender);
  return it == broadcast_counts_.end() ? 0 : it->second;
}

void ScriptedScheduler::schedule(NodeId sender, Time /*now*/,
                                 const std::vector<NodeId>& neighbors,
                                 BroadcastSchedule& out) {
  out.reset();
  const std::size_t index = broadcast_counts_[sender]++;
  const auto it = script_.find({sender, index});
  if (it == script_.end()) {
    out.ack_delay = 1;
    out.assign_uniform(neighbors, 1);
    return;
  }
  const Entry& entry = it->second;
  out.ack_delay = entry.ack_delay;
  if (entry.uniform_delay > 0) {
    // Dense uniform slot: one shared delay, batch fan-out downstream.
    out.assign_uniform(neighbors, entry.uniform_delay);
    return;
  }
  for (const NodeId v : neighbors) {
    Time delay = 1;
    for (const auto& [receiver, d] : entry.delays) {
      if (receiver == v) delay = d;
    }
    out.push(v, delay);
  }
}

}  // namespace amac::mac
