#include "mac/schedulers.hpp"

#include "util/hash.hpp"

namespace amac::mac {

BroadcastSchedule SynchronousScheduler::schedule(
    NodeId /*sender*/, Time /*now*/, const std::vector<NodeId>& neighbors) {
  BroadcastSchedule s;
  s.ack_delay = round_;
  s.receive_delays.reserve(neighbors.size());
  for (const NodeId v : neighbors) s.receive_delays.emplace_back(v, round_);
  return s;
}

BroadcastSchedule MaxDelayScheduler::schedule(
    NodeId /*sender*/, Time /*now*/, const std::vector<NodeId>& neighbors) {
  BroadcastSchedule s;
  s.ack_delay = fack_;
  s.receive_delays.reserve(neighbors.size());
  for (const NodeId v : neighbors) s.receive_delays.emplace_back(v, fack_);
  return s;
}

BroadcastSchedule UniformRandomScheduler::schedule(
    NodeId /*sender*/, Time /*now*/, const std::vector<NodeId>& neighbors) {
  BroadcastSchedule s;
  s.ack_delay = rng_.uniform(1, fack_);
  s.receive_delays.reserve(neighbors.size());
  for (const NodeId v : neighbors) {
    s.receive_delays.emplace_back(v, rng_.uniform(1, s.ack_delay));
  }
  return s;
}

Time SkewedScheduler::edge_delay(NodeId from, NodeId to) const {
  util::Hasher h;
  h.mix_u64(seed_);
  h.mix_u64(from);
  h.mix_u64(to);
  return 1 + h.digest() % fack_;
}

BroadcastSchedule SkewedScheduler::schedule(
    NodeId sender, Time /*now*/, const std::vector<NodeId>& neighbors) {
  BroadcastSchedule s;
  s.ack_delay = 1;
  s.receive_delays.reserve(neighbors.size());
  for (const NodeId v : neighbors) {
    const Time d = edge_delay(sender, v);
    s.receive_delays.emplace_back(v, d);
    s.ack_delay = std::max(s.ack_delay, d);
  }
  return s;
}

BroadcastSchedule HoldbackScheduler::schedule(
    NodeId sender, Time now, const std::vector<NodeId>& neighbors) {
  BroadcastSchedule s = base_->schedule(sender, now, neighbors);
  const auto sender_hold = held_senders_.find(sender);
  for (auto& [receiver, delay] : s.receive_delays) {
    Time release = 0;
    if (sender_hold != held_senders_.end()) release = sender_hold->second;
    if (const auto edge_hold = held_edges_.find({sender, receiver});
        edge_hold != held_edges_.end()) {
      release = std::max(release, edge_hold->second);
    }
    if (now + delay < release) delay = release - now;
    s.ack_delay = std::max(s.ack_delay, delay);
  }
  return s;
}

BroadcastSchedule ContentionScheduler::schedule(
    NodeId /*sender*/, Time now, const std::vector<NodeId>& neighbors) {
  BroadcastSchedule s;
  s.ack_delay = 1;
  s.receive_delays.reserve(neighbors.size());
  for (const NodeId v : neighbors) {
    Time at = now + rng_.uniform(1, base_);
    auto& free_at = next_free_[v];
    at = std::max(at, free_at);
    free_at = at + 1;
    const Time delay = at - now;
    AMAC_ENSURES(delay <= fack_bound_);  // raise fack_bound for this density
    s.receive_delays.emplace_back(v, delay);
    s.ack_delay = std::max(s.ack_delay, delay);
  }
  return s;
}

std::vector<std::pair<NodeId, Time>> LossyScheduler::schedule_unreliable(
    NodeId /*sender*/, Time now, const std::vector<NodeId>& overlay_neighbors,
    Time ack_delay) {
  std::vector<std::pair<NodeId, Time>> out;
  if (now >= cutoff_) return out;
  for (const NodeId v : overlay_neighbors) {
    if (!rng_.chance(probability_)) continue;
    const Time delay = rng_.uniform(1, ack_delay);
    // Never deliver at or past the cutoff.
    if (now + delay >= cutoff_) continue;
    out.emplace_back(v, delay);
  }
  return out;
}

void ScriptedScheduler::script(NodeId sender, std::size_t index,
                               Time ack_delay,
                               std::vector<std::pair<NodeId, Time>> delays) {
  AMAC_EXPECTS(ack_delay >= 1);
  for (const auto& [receiver, delay] : delays) {
    AMAC_EXPECTS(delay >= 1 && delay <= ack_delay);
  }
  max_ack_ = std::max(max_ack_, ack_delay);
  script_[{sender, index}] = Entry{ack_delay, std::move(delays)};
}

BroadcastSchedule ScriptedScheduler::schedule(
    NodeId sender, Time /*now*/, const std::vector<NodeId>& neighbors) {
  const std::size_t index = broadcast_counts_[sender]++;
  BroadcastSchedule s;
  const auto it = script_.find({sender, index});
  if (it == script_.end()) {
    s.ack_delay = 1;
    for (const NodeId v : neighbors) s.receive_delays.emplace_back(v, 1);
    return s;
  }
  const Entry& entry = it->second;
  s.ack_delay = entry.ack_delay;
  for (const NodeId v : neighbors) {
    Time delay = 1;
    for (const auto& [receiver, d] : entry.delays) {
      if (receiver == v) delay = d;
    }
    s.receive_delays.emplace_back(v, delay);
  }
  return s;
}

}  // namespace amac::mac
