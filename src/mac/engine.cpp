#include "mac/engine.hpp"

#include <algorithm>

namespace amac::mac {

/// Context implementation handed to a process during a callback.
class Network::NodeContext final : public Context {
 public:
  NodeContext(Network& net, NodeId node, InstanceId instance)
      : net_(&net), node_(node), instance_(instance) {}

  void broadcast(const util::Buffer& payload) override {
    net_->start_broadcast(node_, instance_, payload);
  }

  void decide(Value v) override {
    Instance& inst = net_->instances_[instance_];
    auto& st = inst.nodes[node_];
    AMAC_EXPECTS(!st.decision.decided);
    st.decision = Decision{true, v, net_->now_};
    AMAC_ENSURES(inst.undecided_alive > 0);
    --inst.undecided_alive;
    AMAC_ENSURES(net_->undecided_alive_ > 0);
    --net_->undecided_alive_;
  }

  [[nodiscard]] bool busy() const override {
    return net_->instances_[instance_].nodes[node_].busy;
  }

  [[nodiscard]] Time now() const override { return net_->now_; }

 private:
  Network* net_;
  NodeId node_;
  InstanceId instance_;
};

Network::Network(const net::Graph& graph, const ProcessFactory& factory,
                 Scheduler& scheduler, const net::Graph* unreliable_overlay)
    : graph_(&graph), overlay_(unreliable_overlay), scheduler_(&scheduler),
      events_(scheduler.fack()) {
  const std::size_t n = graph.node_count();
  if (overlay_ != nullptr) {
    AMAC_EXPECTS(overlay_->node_count() == n);
    // The two edge sets must be disjoint: an edge is either guaranteed or
    // best-effort, never both.
    for (NodeId u = 0; u < n; ++u) {
      for (const NodeId v : overlay_->neighbors(u)) {
        AMAC_EXPECTS(!graph.has_edge(u, v));
      }
    }
  }
  nodes_.resize(n);
  (void)add_instance(factory);
}

InstanceId Network::add_instance(const ProcessFactory& factory) {
  const auto id = static_cast<InstanceId>(instances_.size());
  Instance inst;
  inst.nodes.resize(nodes_.size());
  for (NodeId u = 0; u < nodes_.size(); ++u) {
    if (nodes_[u].crashed) continue;  // mid-run launch: the dead stay dead
    inst.nodes[u].process = factory(u);
    AMAC_ENSURES(inst.nodes[u].process != nullptr);
    ++inst.undecided_alive;
  }
  undecided_alive_ += inst.undecided_alive;
  instances_.push_back(std::move(inst));
  if (started_) {
    // Launched mid-run (e.g. a pipelined log slot): start callbacks fire
    // now, at the current tick — local computation takes zero time.
    for (NodeId u = 0; u < nodes_.size(); ++u) {
      if (instances_[id].nodes[u].process == nullptr) continue;
      NodeContext ctx(*this, u, id);
      instances_[id].nodes[u].process->on_start(ctx);
    }
  }
  return id;
}

void Network::retire_instance(InstanceId instance) {
  AMAC_EXPECTS(instance < instances_.size());
  Instance& inst = instances_[instance];
  if (inst.retired) return;
  inst.retired = true;
  for (auto& node : inst.nodes) node.process.reset();
  AMAC_ENSURES(undecided_alive_ >= inst.undecided_alive);
  undecided_alive_ -= inst.undecided_alive;
  inst.undecided_alive = 0;
}

void Network::schedule_crash(const CrashPlan& plan) {
  AMAC_EXPECTS(plan.node < nodes_.size());
  AMAC_EXPECTS(!started_);
  Event e;
  e.t = plan.when;
  e.kind = EventKind::kCrash;
  e.seq = next_seq_++;
  e.node = plan.node;
  events_.push(e);
}

void Network::set_link_faults(const LinkFaultPlan& plan) {
  AMAC_EXPECTS(!started_);
  faults_ = plan;
}

void Network::reset(const ProcessFactory& factory) {
  for (Instance& inst : instances_) {
    for (NodeId u = 0; u < nodes_.size(); ++u) {
      auto& st = inst.nodes[u];
      if (st.flight_slot != kNoFlight) {
        // Abandon the in-flight broadcast: release its payload slot and
        // keep the flight record (capacity included) on the free list.
        Flight& flight = flights_[st.flight_slot];
        pool_.release(flight.payload_slot);
        flight.pending.clear();
        flight.undrained_events = 0;
        st.flight_slot = kNoFlight;
      }
    }
  }
  for (auto& st : nodes_) {
    st.crashed = false;
    st.crash_time = kForever;
  }
  instances_.clear();
  undecided_alive_ = 0;
  free_flights_.clear();
  for (std::uint32_t slot = 0; slot < flights_.size(); ++slot) {
    free_flights_.push_back(slot);
  }
  events_.clear();
  next_seq_ = 0;
  next_broadcast_id_ = 1;
  now_ = 0;
  stats_ = EngineStats{};
  started_ = false;
  trace_hasher_ = util::Hasher{};
  (void)add_instance(factory);
}

const Decision& Network::decision(NodeId u, InstanceId instance) const {
  AMAC_EXPECTS(u < nodes_.size());
  AMAC_EXPECTS(instance < instances_.size());
  return instances_[instance].nodes[u].decision;
}

bool Network::crashed(NodeId u) const {
  AMAC_EXPECTS(u < nodes_.size());
  return nodes_[u].crashed;
}

const InstanceStats& Network::instance_stats(InstanceId instance) const {
  AMAC_EXPECTS(instance < instances_.size());
  return instances_[instance].stats;
}

Process& Network::process(NodeId u, InstanceId instance) {
  AMAC_EXPECTS(u < nodes_.size());
  AMAC_EXPECTS(instance < instances_.size());
  AMAC_EXPECTS(instances_[instance].nodes[u].process != nullptr);
  return *instances_[instance].nodes[u].process;
}

const Process& Network::process(NodeId u, InstanceId instance) const {
  AMAC_EXPECTS(u < nodes_.size());
  AMAC_EXPECTS(instance < instances_.size());
  AMAC_EXPECTS(instances_[instance].nodes[u].process != nullptr);
  return *instances_[instance].nodes[u].process;
}

bool Network::all_alive_decided() const { return undecided_alive_ == 0; }

bool Network::instance_all_decided(InstanceId instance) const {
  AMAC_EXPECTS(instance < instances_.size());
  return instances_[instance].undecided_alive == 0;
}

std::size_t Network::in_flight_from(NodeId sender,
                                    InstanceId instance) const {
  AMAC_EXPECTS(sender < nodes_.size());
  AMAC_EXPECTS(instance < instances_.size());
  const std::uint32_t slot = instances_[instance].nodes[sender].flight_slot;
  if (slot == kNoFlight) return 0;
  // Live (non-tombstoned) pending entries; tracks pending occupancy exactly
  // because each entry is retired by exactly one popped deliver event.
  return flights_[slot].undrained_events;
}

void Network::for_each_in_flight(
    const std::function<void(NodeId, NodeId, const util::Buffer&)>& fn) const {
  for (NodeId u = 0; u < nodes_.size(); ++u) {
    // A crashed sender's undelivered copies will never arrive; they are no
    // longer "in flight" for accounting purposes.
    if (nodes_[u].crashed) continue;
    for (const Instance& inst : instances_) {
      const std::uint32_t slot = inst.nodes[u].flight_slot;
      if (slot == kNoFlight) continue;
      const Flight& flight = flights_[slot];
      const util::Buffer& payload = pool_.at(flight.payload_slot);
      for (const NodeId receiver : flight.pending) {
        if (receiver == kNoNode) continue;  // tombstone: already delivered
        fn(u, receiver, payload);
      }
    }
  }
}

void Network::release_flight(std::uint32_t slot) {
  Flight& flight = flights_[slot];
  AMAC_ENSURES(flight.undrained_events == 0);
  flight.pending.clear();  // all tombstones by now; capacity is recycled
  Instance& inst = instances_[flight.instance];
  AMAC_ENSURES(inst.stats.live_pool_slots > 0);
  --inst.stats.live_pool_slots;
  inst.stats.live_pool_bytes -= pool_.at(flight.payload_slot).size();
  pool_.release(flight.payload_slot);
  AMAC_ENSURES(inst.nodes[flight.sender].flight_slot == slot);
  inst.nodes[flight.sender].flight_slot = kNoFlight;
  free_flights_.push_back(slot);
}

void Network::start_broadcast(NodeId u, InstanceId instance,
                              const util::Buffer& payload) {
  if (nodes_[u].crashed) return;
  Instance& inst = instances_[instance];
  auto& st = inst.nodes[u];
  if (st.busy) {
    // Model rule: extra broadcasts while one is outstanding are discarded.
    // Busy is per (node, instance): each instance has its own logical MAC
    // channel, so instance A's outstanding broadcast never discards B's.
    ++stats_.dropped_busy;
    ++inst.stats.dropped_busy;
    return;
  }
  st.busy = true;
  const std::uint64_t id = next_broadcast_id_++;
  st.current_broadcast = id;
  ++stats_.broadcasts;
  ++inst.stats.broadcasts;
  stats_.payload_bytes += payload.size();
  stats_.max_payload_bytes = std::max(stats_.max_payload_bytes,
                                      payload.size());
  inst.stats.payload_bytes += payload.size();
  inst.stats.max_payload_bytes = std::max(inst.stats.max_payload_bytes,
                                          payload.size());

  const auto& neighbors = graph_->neighbors(u);
  BroadcastSchedule& sched = schedule_scratch_;
  scheduler_->schedule(u, now_, neighbors, sched);
  AMAC_ENSURES(sched.ack_delay >= 1);
  AMAC_ENSURES(sched.size() == neighbors.size());

  auto& best_effort = unreliable_scratch_;
  best_effort.clear();
  if (overlay_ != nullptr && !overlay_->neighbors(u).empty()) {
    scheduler_->schedule_unreliable(u, now_, overlay_->neighbors(u),
                                    sched.ack_delay, best_effort);
  }

  const std::size_t fanout = sched.size();
  Time ack_at = now_ + sched.ack_delay;

  // Link-fault partition (design doc: "Unreliable links"). Every reliable
  // copy gets a pure hash verdict; dropped copies consume no seq, deferred
  // copies and duplicates stretch the ack so receives still precede it.
  // The plan never touches the best-effort overlay — those edges carry no
  // delivery guarantee to break.
  const bool faulted = !faults_.empty() && fanout > 0;
  std::size_t emitted = fanout;  // reliable copies that will be scheduled
  if (faulted) {
    fault_scratch_.clear();
    emitted = 0;
    Time latest = 0;
    for (std::size_t i = 0; i < fanout; ++i) {
      const Time arrival = now_ + sched.delay(i);
      const LinkFaultDecision d =
          faults_.decide(id, u, sched.receivers[i], arrival);
      fault_scratch_.push_back(d);
      if (!d.deliver) {
        ++stats_.drops;
        ++inst.stats.drops;
        continue;
      }
      ++emitted;
      if (d.deliver_at != arrival) {
        ++stats_.drops;  // lost, retransmitted
        ++inst.stats.drops;
      }
      latest = std::max(latest, d.deliver_at);
      if (d.duplicate) {
        ++emitted;
        ++stats_.duplicates;
        ++inst.stats.duplicates;
        latest = std::max(latest, d.duplicate_at);
      }
    }
    ack_at = std::max(ack_at, latest);
  }

  if (emitted + best_effort.size() > 0) {
    // Acquire a flight slot + pooled payload only when someone will hear
    // the broadcast; pending/lane capacity is recycled across broadcasts.
    // (An all-dropped fan-out must not acquire one: with no deliver events
    // left to drain it, the flight would leak.)
    std::uint32_t slot;
    if (!free_flights_.empty()) {
      slot = free_flights_.back();
      free_flights_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(flights_.size());
      flights_.emplace_back();
    }
    Flight& flight = flights_[slot];
    flight.sender = u;
    flight.payload_slot = pool_.acquire(payload);
    flight.id = id;
    flight.instance = instance;
    // Deliver events take consecutive seqs from here in pending-append
    // order (drops take none; the ack's seq comes after every copy's), so
    // the event popped later finds its slot at e.seq - first_seq.
    flight.first_seq = next_seq_;
    AMAC_ENSURES(flight.pending.empty() && flight.undrained_events == 0);
    st.flight_slot = slot;
    ++inst.stats.live_pool_slots;
    inst.stats.peak_pool_slots = std::max(inst.stats.peak_pool_slots,
                                          inst.stats.live_pool_slots);
    inst.stats.live_pool_bytes += payload.size();
    inst.stats.peak_pool_bytes = std::max(inst.stats.peak_pool_bytes,
                                          inst.stats.live_pool_bytes);

    Event e;
    e.kind = EventKind::kDeliver;
    e.broadcast_id = id;
    e.flight_slot = slot;
    e.sender = u;
    e.instance = instance;
    e.reliable = true;
#if AMAC_CHECK
    for (std::size_t i = 0; i < fanout; ++i) {
      AMAC_CHECK_ENSURES(graph_->has_edge(u, sched.receivers[i]));
    }
#endif
    if (!faulted) {
      if (sched.uniform && fanout > 0) {
        // Dense fast path: one tick for the whole fan-out, so the pending
        // list is a bulk copy and the wheel bucket is reserved once.
        AMAC_ENSURES(sched.uniform_delay >= 1 &&
                     sched.uniform_delay <= sched.ack_delay);
        e.t = now_ + sched.uniform_delay;
        flight.pending.assign(sched.receivers.begin(), sched.receivers.end());
        flight.undrained_events += fanout;
        if (Event* span = events_.push_batch(e.t, e.kind, fanout)) {
          for (std::size_t i = 0; i < fanout; ++i) {
            e.seq = next_seq_++;
            e.node = sched.receivers[i];
            span[i] = e;
          }
        } else {
          for (std::size_t i = 0; i < fanout; ++i) {  // beyond wheel
            e.seq = next_seq_++;
            e.node = sched.receivers[i];
            events_.push(e);
          }
        }
      } else {
        for (std::size_t i = 0; i < fanout; ++i) {
          const Time delay = sched.delays[i];
          AMAC_ENSURES(delay >= 1 && delay <= sched.ack_delay);
          e.t = now_ + delay;
          e.seq = next_seq_++;
          e.node = sched.receivers[i];
          events_.push(e);
          flight.pending.push_back(sched.receivers[i]);
          ++flight.undrained_events;
        }
      }
    } else {
      // Canonical faulted emission order (shared with ReferenceNetwork):
      // kept copies at their original ticks, then deferred copies, then
      // duplicates — schedule index order within each group.
      const auto emit = [&](NodeId v, Time t) {
        e.t = t;
        e.seq = next_seq_++;
        e.node = v;
        events_.push(e);
        flight.pending.push_back(v);
        ++flight.undrained_events;
      };
      if (sched.uniform) {
        // The batch reservation shrinks to the kept subset: only affected
        // receivers fall off the dense path.
        const Time uniform_t = now_ + sched.uniform_delay;
        std::size_t kept = 0;
        for (const LinkFaultDecision& d : fault_scratch_) {
          if (d.deliver && d.deliver_at == uniform_t) ++kept;
        }
        if (kept > 0) {
          e.t = uniform_t;
          Event* span = events_.push_batch(e.t, e.kind, kept);
          std::size_t filled = 0;
          for (std::size_t i = 0; i < fanout; ++i) {
            const LinkFaultDecision& d = fault_scratch_[i];
            if (!d.deliver || d.deliver_at != uniform_t) continue;
            if (span != nullptr) {
              e.seq = next_seq_++;
              e.node = sched.receivers[i];
              span[filled++] = e;
              flight.pending.push_back(e.node);
              ++flight.undrained_events;
            } else {
              emit(sched.receivers[i], uniform_t);
            }
          }
        }
      } else {
        for (std::size_t i = 0; i < fanout; ++i) {
          const LinkFaultDecision& d = fault_scratch_[i];
          if (!d.deliver || d.deliver_at != now_ + sched.delays[i]) continue;
          emit(sched.receivers[i], d.deliver_at);
        }
      }
      for (std::size_t i = 0; i < fanout; ++i) {  // deferred copies
        const LinkFaultDecision& d = fault_scratch_[i];
        if (!d.deliver || d.deliver_at == now_ + sched.delay(i)) continue;
        emit(sched.receivers[i], d.deliver_at);
      }
      for (std::size_t i = 0; i < fanout; ++i) {  // duplicates
        const LinkFaultDecision& d = fault_scratch_[i];
        if (!d.deliver || !d.duplicate) continue;
        emit(sched.receivers[i], d.duplicate_at);
      }
    }
    e.reliable = false;
    for (const auto& [v, delay] : best_effort) {
      AMAC_ENSURES(delay >= 1 && delay <= sched.ack_delay);
      AMAC_CHECK_ENSURES(overlay_->has_edge(u, v));
      e.t = now_ + delay;
      e.seq = next_seq_++;
      e.node = v;
      events_.push(e);
      flight.pending.push_back(v);
      ++flight.undrained_events;
    }
  }

  Event ack;
  ack.t = ack_at;
  ack.kind = EventKind::kAck;
  ack.seq = next_seq_++;
  ack.node = u;
  ack.broadcast_id = id;
  ack.instance = instance;
  events_.push(ack);
}

void Network::trace_event(const Event& e) {
  // Event::instance is deliberately NOT mixed (see enable_trace_digest):
  // single-instance digests must match the pre-instance engine bit for bit.
  trace_hasher_.mix_u64(e.t);
  trace_hasher_.mix_u8(static_cast<std::uint8_t>(e.kind));
  trace_hasher_.mix_u64(e.seq);
  trace_hasher_.mix_u64(e.node);
  trace_hasher_.mix_u64(e.sender);
  trace_hasher_.mix_u64(e.broadcast_id);
  if (e.kind == EventKind::kDeliver) {
    trace_hasher_.mix_bytes(pool_.at(flights_[e.flight_slot].payload_slot));
    trace_hasher_.mix_bool(e.reliable);
  }
}

void Network::process_event(const Event& e) {
  switch (e.kind) {
    case EventKind::kCrash: {
      auto& st = nodes_[e.node];
      if (st.crashed) return;
      st.crashed = true;
      st.crash_time = now_;
      // A crash is node-level: the node leaves every live instance's
      // undecided set at once (retired instances already left the count).
      for (Instance& inst : instances_) {
        if (inst.retired || inst.nodes[e.node].decision.decided) continue;
        AMAC_ENSURES(inst.undecided_alive > 0);
        --inst.undecided_alive;
        AMAC_ENSURES(undecided_alive_ > 0);
        --undecided_alive_;
      }
      return;
    }
    case EventKind::kDeliver: {
      const std::uint32_t slot = e.flight_slot;
      // The flight strictly outlives its deliver events, so the slot is
      // live here; but the callback below may broadcast and grow flights_,
      // so no Flight reference is held across it.
      std::uint32_t payload_slot;
      bool drained;
      {
        Flight& flight = flights_[slot];
        AMAC_ENSURES(flight.id == e.broadcast_id);
        AMAC_ENSURES(flight.instance == e.instance);
        // O(1) retire: the seq-derived slot (see Flight) is tombstoned in
        // place — erase-by-find here made clique rounds O(n^3) overall.
        const auto idx = static_cast<std::size_t>(e.seq - flight.first_seq);
        AMAC_ENSURES(idx < flight.pending.size() &&
                     flight.pending[idx] == e.node);
        flight.pending[idx] = kNoNode;
        drained = --flight.undrained_events == 0;
        payload_slot = flight.payload_slot;
      }

      const auto& sender_st = nodes_[e.sender];
      // Cancelled if the sender crashed strictly before this delivery: the
      // non-atomic broadcast reached only the earlier-scheduled neighbors.
      const bool cancelled =
          sender_st.crashed && sender_st.crash_time < e.t;
      Instance& inst = instances_[e.instance];
      // A retired instance's events are pure bookkeeping: the flight still
      // drains (releasing its pool slot) but no callback or counter runs.
      Process* const process = inst.nodes[e.node].process.get();
      if (!cancelled && !nodes_[e.node].crashed && process != nullptr) {
        ++stats_.deliveries;
        ++inst.stats.deliveries;
        NodeContext ctx(*this, e.node, e.instance);
        const Packet packet{e.sender, pool_.at(payload_slot), e.reliable};
        process->on_receive(packet, ctx);
      }
      if (drained) release_flight(slot);
      return;
    }
    case EventKind::kAck: {
      if (nodes_[e.node].crashed) return;
      Instance& inst = instances_[e.instance];
      auto& st = inst.nodes[e.node];
      AMAC_ENSURES(st.busy && st.current_broadcast == e.broadcast_id);
      st.busy = false;
      if (st.process == nullptr) return;  // retired mid-flight
      ++stats_.acks;
      ++inst.stats.acks;
      NodeContext ctx(*this, e.node, e.instance);
      st.process->on_ack(ctx);
      return;
    }
  }
}

RunResult Network::run(StopWhen until, Time max_time) {
  if (!started_) {
    started_ = true;
    // Instance-major start order (matched by ReferenceNetwork): every
    // pre-run instance starts its nodes 0..n-1 before the next instance.
    for (InstanceId i = 0; i < instances_.size(); ++i) {
      for (NodeId u = 0; u < nodes_.size(); ++u) {
        if (instances_[i].nodes[u].process == nullptr) continue;
        NodeContext ctx(*this, u, i);
        instances_[i].nodes[u].process->on_start(ctx);
      }
    }
  }

  const auto condition_met = [&] {
    return until == StopWhen::kAllDecided && all_alive_decided();
  };
  const auto finish = [&](bool met) {
    stats_.peak_events = events_.peak_size();
    stats_.wheel_pushes = events_.wheel_pushes();
    stats_.overflow_pushes = events_.overflow_pushes();
    stats_.wheel_resizes = events_.resizes();
    stats_.batch_pushes = events_.batch_reservations();
    stats_.wheel_span = static_cast<std::size_t>(events_.span());
    return RunResult{met, now_};
  };

  while (!events_.empty()) {
    if (condition_met()) return finish(true);
    if (events_.next_time() > max_time) return finish(condition_met());
    const Event e = events_.pop();
    AMAC_ENSURES(e.t >= now_);
    now_ = e.t;
    if (trace_enabled_) trace_event(e);
    process_event(e);
    if (post_event_hook_) post_event_hook_(*this);
  }
  // Queue drained: quiescent.
  const bool met = until == StopWhen::kQuiescent || all_alive_decided();
  return finish(met);
}

}  // namespace amac::mac
