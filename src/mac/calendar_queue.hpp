// Calendar-queue (time-wheel) event queue for the MAC engine hot path.
//
// The abstract MAC layer bounds every receive and ack delay by the
// scheduler's F_ack, so at any instant the live event horizon is short and
// dense: almost every event lands within [now, now + F_ack]. A wheel of
// per-tick buckets turns push and pop into O(1) array traffic for that
// regime, while a spill-over binary heap absorbs the rare far-future events
// (pre-planned crashes, holdback releases beyond the wheel window).
//
// Structure
//   * `buckets_` is a power-of-two ring covering absolute ticks
//     [base_, base_ + W). Bucket index is `t & (W-1)`; each bucket holds
//     events of exactly one tick at a time (`tick_` tags which).
//   * Within a bucket, events are segregated into one lane per EventKind.
//     Global push order has monotonically increasing `seq`, so plain
//     appends keep each lane seq-sorted; popping lane 0 (deliveries), then
//     lane 1 (acks), then lane 2 (crashes) realizes the (t, kind, seq)
//     ordering contract exactly. Lanes are reusable vectors (cleared, not
//     freed), so steady-state operation allocates nothing.
//   * `occupancy_` is a bitmap over buckets; finding the next non-empty
//     tick is a word-wise circular scan from the cursor.
//   * Events with t >= base_ + W go to `overflow_`, a (t, kind, seq)
//     min-heap. When the overflow's minimum becomes the global minimum the
//     queue rebases: the cursor jumps to that tick and every overflow event
//     inside the new window migrates into the wheel. Migrated events may
//     interleave with already-bucketed ones, so migration inserts by `seq`
//     (the only non-append path, and only on the rare rebase).
//
// The pop order is bit-identical to a binary heap ordered by
// (t, kind, seq) — proved by the calendar-vs-reference differential test.
#pragma once

#include <array>
#include <cstdint>
#include <queue>
#include <vector>

#include "mac/event.hpp"
#include "util/assert.hpp"

namespace amac::mac {

class CalendarQueue {
 public:
  /// `horizon_hint` is the scheduler's F_ack: the wheel is sized to cover a
  /// couple of ack windows. Oversized hints (e.g. a HoldbackScheduler's
  /// release-inflated bound) are clamped; far events just use the overflow.
  explicit CalendarQueue(Time horizon_hint) {
    std::size_t want = 16;
    const Time target = horizon_hint >= kMaxWheel / 2
                            ? static_cast<Time>(kMaxWheel)
                            : 2 * horizon_hint + 4;
    while (want < target && want < kMaxWheel) want <<= 1;
    buckets_.resize(want);
    mask_ = want - 1;
    occupancy_.assign((want + 63) / 64, 0);
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t peak_size() const { return peak_; }

  void push(const Event& e) {
    AMAC_EXPECTS(e.t >= base_);
    ++size_;
    if (size_ > peak_) peak_ = size_;
    // Wrap-free window test (e.t >= base_ holds): base_ + wheel_span()
    // could overflow for sentinel times near kForever.
    if (e.t - base_ < wheel_span()) {
      wheel_insert(e);
    } else {
      overflow_.push(e);
    }
  }

  /// Time of the next event to pop. Requires !empty(). Advances the cursor
  /// (and migrates due overflow events) but pops nothing.
  [[nodiscard]] Time next_time() {
    AMAC_EXPECTS(size_ > 0);
    position_cursor();
    return base_;
  }

  /// Pops the (t, kind, seq)-minimal event. Requires !empty().
  Event pop() {
    AMAC_EXPECTS(size_ > 0);
    position_cursor();
    Bucket& b = buckets_[base_ & mask_];
    AMAC_ENSURES(b.count > 0 && b.tick == base_);
    Event e;
    for (std::size_t k = 0; k < kLanes; ++k) {
      auto& lane = b.lane[k];
      if (b.head[k] < lane.size()) {
        e = lane[b.head[k]++];
        break;
      }
    }
    --b.count;
    --wheel_count_;
    --size_;
    if (b.count == 0) {
      for (std::size_t k = 0; k < kLanes; ++k) {
        b.lane[k].clear();  // keeps capacity: steady state never allocates
        b.head[k] = 0;
      }
      clear_occupied(base_ & mask_);
    }
    return e;
  }

 private:
  static constexpr std::size_t kLanes = 3;
  static constexpr std::size_t kMaxWheel = 4096;

  struct Bucket {
    std::array<std::vector<Event>, kLanes> lane;
    std::array<std::size_t, kLanes> head = {0, 0, 0};
    Time tick = 0;
    std::size_t count = 0;
  };

  [[nodiscard]] Time wheel_span() const {
    return static_cast<Time>(buckets_.size());
  }

  void set_occupied(std::size_t idx) {
    occupancy_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
  }
  void clear_occupied(std::size_t idx) {
    occupancy_[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
  }

  void wheel_insert(const Event& e) {
    Bucket& b = buckets_[e.t & mask_];
    if (b.count == 0) {
      b.tick = e.t;
      set_occupied(e.t & mask_);
    } else {
      // One tick per bucket: the window [base_, base_+W) maps injectively
      // onto bucket indices.
      AMAC_ENSURES(b.tick == e.t);
    }
    auto& lane = b.lane[static_cast<std::size_t>(e.kind)];
    if (lane.empty() || lane.back().seq < e.seq) {
      lane.push_back(e);  // the hot path: pushes arrive in seq order
    } else {
      // Overflow migration may slot an older-seq event behind newer ones.
      auto it = lane.begin() + static_cast<std::ptrdiff_t>(
                                   b.head[static_cast<std::size_t>(e.kind)]);
      while (it != lane.end() && it->seq < e.seq) ++it;
      lane.insert(it, e);
    }
    ++b.count;
    ++wheel_count_;
  }

  /// Sets base_ to the tick of the queue minimum, migrating overflow events
  /// into the wheel when the minimum lives there.
  void position_cursor() {
    // Fast path: the cursor bucket still holds events, so base_ is already
    // the minimum — every queued event has t >= base_ (push contract), and
    // once the cursor is positioned the overflow only holds t >= base_ + W.
    // This makes peek+pop pairs and multi-event ticks O(1), no bitmap scan.
    {
      const Bucket& b = buckets_[base_ & mask_];
      if (b.count > 0 && b.tick == base_) return;
    }
    if (wheel_count_ > 0) {
      const Time wheel_min = scan_next_tick();
      if (overflow_.empty() || overflow_.top().t > wheel_min) {
        base_ = wheel_min;
        return;
      }
    }
    // The minimum is in the overflow: rebase the window onto it and pull in
    // everything now within reach.
    AMAC_ENSURES(!overflow_.empty());
    base_ = overflow_.top().t;
    while (!overflow_.empty() && overflow_.top().t - base_ < wheel_span()) {
      wheel_insert(overflow_.top());
      overflow_.pop();
    }
  }

  /// First occupied tick at or after base_ (circular bitmap scan). Requires
  /// wheel_count_ > 0.
  [[nodiscard]] Time scan_next_tick() const {
    const std::size_t start = base_ & mask_;
    const std::size_t words = occupancy_.size();
    std::size_t word = start >> 6;
    std::uint64_t bits = occupancy_[word] & (~std::uint64_t{0} << (start & 63));
    for (std::size_t step = 0;; ++step) {
      AMAC_ENSURES(step <= words);
      if (bits != 0) {
        const std::size_t idx =
            (word << 6) + static_cast<std::size_t>(__builtin_ctzll(bits));
        return buckets_[idx].tick;
      }
      word = word + 1 == words ? 0 : word + 1;
      bits = occupancy_[word];
    }
  }

  std::vector<Bucket> buckets_;
  std::vector<std::uint64_t> occupancy_;
  std::uint64_t mask_ = 0;
  Time base_ = 0;              ///< cursor: minimum possible next tick
  std::size_t wheel_count_ = 0;
  std::size_t size_ = 0;
  std::size_t peak_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventAfter> overflow_;
};

}  // namespace amac::mac
