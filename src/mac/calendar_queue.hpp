// Calendar-queue (time-wheel) event queue for the MAC engine hot path.
//
// The abstract MAC layer bounds every receive and ack delay by the
// scheduler's F_ack, so at any instant the live event horizon is short and
// dense: almost every event lands within [now, now + F_ack]. A wheel of
// per-tick buckets turns push and pop into O(1) array traffic for that
// regime, while a spill-over binary heap absorbs the rare far-future events
// (pre-planned crashes, holdback releases beyond the wheel window).
//
// Structure
//   * `buckets_` is a power-of-two ring covering absolute ticks
//     [base_, base_ + W). Bucket index is `t & (W-1)`; each bucket holds
//     events of exactly one tick at a time (`tick_` tags which).
//   * Within a bucket, events are segregated into one lane per EventKind.
//     Global push order has monotonically increasing `seq`, so plain
//     appends keep each lane seq-sorted; popping lane 0 (deliveries), then
//     lane 1 (acks), then lane 2 (crashes) realizes the (t, kind, seq)
//     ordering contract exactly. Lane vectors are reused, never freed: when
//     a bucket drains, its warmed lanes move to a spare pool and the next
//     bucket to become occupied adopts them, so steady-state operation
//     allocates nothing and a ring only ever warms as many lanes as it has
//     simultaneously occupied buckets.
//   * `push_batch` is the fan-out fast path: when a broadcast schedule is
//     uniform, all of its deliver events share one tick, so the engine
//     reserves a contiguous span in that bucket's lane once and fills the
//     events in place — one bounds check and one bucket lookup for the
//     whole fan-out instead of per event.
//   * `occupancy_` is a bitmap over buckets; finding the next non-empty
//     tick is a word-wise circular scan from the cursor.
//   * Events with t >= base_ + W go to `overflow_`, a (t, kind, seq)
//     min-heap. When the overflow's minimum becomes the global minimum the
//     queue rebases: the cursor jumps to that tick and every overflow event
//     inside the new window migrates into the wheel. Migrated events may
//     interleave with already-bucketed ones, so migration inserts by `seq`
//     (the only non-append path, and only on the rare rebase).
//
// Self-resizing. The wheel is first sized from the constructor's horizon
// hint (the scheduler's F_ack at engine construction). Some schedulers'
// effective bound grows later — HoldbackScheduler holds registered after
// construction push deliveries far past the original window — and without
// intervention every such event pays the overflow heap's log factor
// forever. The queue therefore tracks, for each overflow push, the
// observed horizon (e.t - base_); once kResizeOverflowTrigger overflow
// pushes with a resizable horizon (< kMaxResizedWheel / 2, which excludes
// kForever-style sentinels) have accumulated, it rebuilds the wheel at the
// power-of-two span covering twice the observed horizon (capped at
// kMaxResizedWheel buckets) in O(pending events): occupied buckets carry
// over tick by tick (appends stay seq-sorted because each old bucket holds
// one tick), then overflow events now inside the window migrate in via
// wheel_insert, whose insert-by-seq fallback handles the tick shared with
// a carried-over bucket (possible: the cursor may have advanced past an
// overflow event's tick without migrating it, while newer same-tick pushes
// went to the wheel). The rebuild allocates the new ring, but the old
// ring's warmed lane storage is recycled through the spare pool, so the
// first revolution of the resized wheel reuses it instead of re-warming
// one allocation per bucket; steady state after the rebuild is clean
// again. `set_resize_enabled(false)` pins the original span for A/B
// benchmarks of the overflow-heap fallback.
//
// The pop order is bit-identical to a binary heap ordered by
// (t, kind, seq) — proved by the calendar-vs-reference differential test
// and the property suite in tests/test_calendar_queue.cpp; resizing only
// relocates storage, never reorders.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <queue>
#include <vector>

#include "mac/event.hpp"
#include "util/assert.hpp"

namespace amac::mac {

class CalendarQueue {
 public:
  /// `horizon_hint` is the scheduler's F_ack: the wheel is sized to cover a
  /// couple of ack windows. Oversized hints (e.g. a HoldbackScheduler's
  /// release-inflated bound) are clamped; far events use the overflow until
  /// sustained pressure triggers a resize.
  explicit CalendarQueue(Time horizon_hint) {
    std::size_t want = 16;
    const Time target = horizon_hint >= kMaxWheel / 2
                            ? static_cast<Time>(kMaxWheel)
                            : 2 * horizon_hint + 4;
    while (want < target && want < kMaxWheel) want <<= 1;
    buckets_.resize(want);
    mask_ = want - 1;
    occupancy_.assign((want + 63) / 64, 0);
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t peak_size() const { return peak_; }

  /// Accounting for engine stats, benches, and the fuzzer's coverage
  /// summary: which path (wheel vs overflow heap) events took, whether the
  /// self-resize ran, and how often the batch fan-out reservation engaged.
  [[nodiscard]] std::uint64_t wheel_pushes() const { return wheel_pushes_; }
  [[nodiscard]] std::uint64_t overflow_pushes() const {
    return overflow_pushes_;
  }
  [[nodiscard]] std::uint64_t resizes() const { return resizes_; }
  [[nodiscard]] std::uint64_t batch_reservations() const {
    return batch_reservations_;
  }
  [[nodiscard]] Time span() const { return wheel_span(); }
  /// Warmed lane vectors currently parked in the recycling pool (tests).
  [[nodiscard]] std::size_t spare_lane_count() const {
    return spare_lanes_.size();
  }

  /// Disables the self-resize (A/B benching of the overflow-heap fallback).
  void set_resize_enabled(bool enabled) { resize_enabled_ = enabled; }

  /// Empties the queue and rewinds the cursor to tick 0 for another run on
  /// the same engine (Network::reset). Deliberately NOT a rebuild: the ring
  /// keeps its (possibly resized) span and every warmed lane parks in the
  /// spare pool, so the next run re-adopts the existing capacity instead of
  /// re-warming allocations. Accounting counters restart with the run.
  void clear() {
    for (std::size_t idx = 0; idx < buckets_.size(); ++idx) {
      Bucket& b = buckets_[idx];
      for (std::size_t k = 0; k < kLanes; ++k) {
        auto& lane = b.lane[k];
        if (lane.capacity() != 0) {
          lane.clear();
          park_spare(std::move(lane));
          lane = std::vector<Event>();
        }
        b.head[k] = 0;
      }
      b.tick = 0;
      b.count = 0;
    }
    occupancy_.assign(occupancy_.size(), 0);
    while (!overflow_.empty()) overflow_.pop();
    base_ = 0;
    wheel_count_ = 0;
    size_ = 0;
    peak_ = 0;
    wheel_pushes_ = 0;
    overflow_pushes_ = 0;
    resizes_ = 0;
    batch_reservations_ = 0;
    observed_horizon_ = 0;
    resizable_overflow_ = 0;
  }

  void push(const Event& e) {
    AMAC_EXPECTS(e.t >= base_);
    ++size_;
    if (size_ > peak_) peak_ = size_;
    // Wrap-free window test (e.t >= base_ holds): base_ + wheel_span()
    // could overflow for sentinel times near kForever.
    if (e.t - base_ < wheel_span()) {
      wheel_insert(e);
      ++wheel_pushes_;
    } else {
      overflow_push(e);
    }
  }

  /// Fan-out fast path: reserves `count` contiguous event slots in the
  /// bucket lane for tick `t` of `kind` and returns the span for the caller
  /// to fill — with strictly ascending seq values that are globally newer
  /// than every previously pushed event (the engine's push counter
  /// guarantees this), keeping the lane seq-sorted. Returns nullptr when
  /// `t` is outside the wheel window; the caller then falls back to
  /// per-event push (overflow path). The span is valid until the next queue
  /// operation.
  [[nodiscard]] Event* push_batch(Time t, EventKind kind, std::size_t count) {
    AMAC_EXPECTS(t >= base_ && count > 0);
    if (t - base_ >= wheel_span()) return nullptr;
    Bucket& b = buckets_[t & mask_];
    if (b.count == 0) {
      b.tick = t;
      set_occupied(t & mask_);
    } else {
      AMAC_ENSURES(b.tick == t);
    }
    auto& lane = b.lane[static_cast<std::size_t>(kind)];
    if (lane.capacity() == 0) warm_lane(lane);
    const std::size_t offset = lane.size();
    if (lane.capacity() < offset + count) {
      // Geometric growth: an exact-size reserve would defeat the vector's
      // doubling and turn repeated same-tick batch reservations quadratic.
      lane.reserve(
          std::max({2 * lane.capacity(), offset + count, kMinLaneCapacity}));
    }
    lane.resize(offset + count);
    b.count += count;
    wheel_count_ += count;
    size_ += count;
    if (size_ > peak_) peak_ = size_;
    wheel_pushes_ += count;
    ++batch_reservations_;
    return lane.data() + offset;
  }

  /// Time of the next event to pop. Requires !empty(). Advances the cursor
  /// (and migrates due overflow events) but pops nothing.
  [[nodiscard]] Time next_time() {
    AMAC_EXPECTS(size_ > 0);
    position_cursor();
    return base_;
  }

  /// Pops the (t, kind, seq)-minimal event. Requires !empty().
  Event pop() {
    AMAC_EXPECTS(size_ > 0);
    position_cursor();
    Bucket& b = buckets_[base_ & mask_];
    AMAC_ENSURES(b.count > 0 && b.tick == base_);
    Event e;
    for (std::size_t k = 0; k < kLanes; ++k) {
      auto& lane = b.lane[k];
      if (b.head[k] < lane.size()) {
        e = lane[b.head[k]++];
        break;
      }
    }
    --b.count;
    --wheel_count_;
    --size_;
    if (b.count == 0) {
      // Warmed lane storage circulates through the spare pool instead of
      // staying pinned to this bucket: the next bucket to become occupied
      // (often a different ring slot entirely, e.g. right after a resize)
      // adopts it, so a revolution of the ring needs only as many warmed
      // lanes as there are simultaneously occupied buckets.
      for (std::size_t k = 0; k < kLanes; ++k) {
        auto& lane = b.lane[k];
        if (lane.capacity() != 0) {
          lane.clear();
          park_spare(std::move(lane));
          lane = std::vector<Event>();
        }
        b.head[k] = 0;
      }
      clear_occupied(base_ & mask_);
    }
    return e;
  }

 private:
  static constexpr std::size_t kLanes = 3;
  static constexpr std::size_t kMaxWheel = 4096;  ///< construction-time cap
  /// Resize cap: the self-resize may grow the wheel past the construction
  /// clamp, but never beyond this (a 64k-bucket ring is ~memory-noise;
  /// horizons past half of it — crash sentinels at kForever — stay on the
  /// heap, which handles them fine).
  static constexpr std::size_t kMaxResizedWheel = std::size_t{1} << 16;
  /// Overflow pushes with a resizable horizon tolerated before rebuilding.
  static constexpr std::size_t kResizeOverflowTrigger = 32;
  /// Smallest capacity a lane vector is ever born with (see warm_lane).
  static constexpr std::size_t kMinLaneCapacity = 16;

  struct Bucket {
    std::array<std::vector<Event>, kLanes> lane;
    std::array<std::size_t, kLanes> head = {0, 0, 0};
    Time tick = 0;
    std::size_t count = 0;
  };

  [[nodiscard]] Time wheel_span() const {
    return static_cast<Time>(buckets_.size());
  }

  static bool lane_capacity_less(const std::vector<Event>& a,
                                 const std::vector<Event>& b) {
    return a.capacity() < b.capacity();
  }

  /// Gives a capacity-less lane storage: the largest parked spare when the
  /// pool has one (adoption takes the biggest so a dense tick finds the
  /// high-water vector instead of growing a small one), otherwise a fresh
  /// reservation at the capacity floor so no tiny vector is ever born into
  /// the circulating pool — either way lane capacities converge to the
  /// demand profile after a handful of ticks instead of oscillating
  /// through incremental doublings.
  void warm_lane(std::vector<Event>& lane) {
    if (!spare_lanes_.empty()) {
      std::pop_heap(spare_lanes_.begin(), spare_lanes_.end(),
                    lane_capacity_less);
      lane = std::move(spare_lanes_.back());
      spare_lanes_.pop_back();
    } else {
      lane.reserve(kMinLaneCapacity);
    }
  }

  /// Parks a cleared lane vector. The pool is a max-heap on capacity, so
  /// parking and largest-first adoption are O(log pool) — a bulk drain of
  /// many occupied buckets (or the resize carry-over) stays linearithmic
  /// instead of shifting a sorted vector per lane.
  void park_spare(std::vector<Event>&& lane) {
    spare_lanes_.push_back(std::move(lane));
    std::push_heap(spare_lanes_.begin(), spare_lanes_.end(),
                   lane_capacity_less);
  }

  void set_occupied(std::size_t idx) {
    occupancy_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
  }
  void clear_occupied(std::size_t idx) {
    occupancy_[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
  }

  void wheel_insert(const Event& e) {
    Bucket& b = buckets_[e.t & mask_];
    if (b.count == 0) {
      b.tick = e.t;
      set_occupied(e.t & mask_);
    } else {
      // One tick per bucket: the window [base_, base_+W) maps injectively
      // onto bucket indices.
      AMAC_ENSURES(b.tick == e.t);
    }
    auto& lane = b.lane[static_cast<std::size_t>(e.kind)];
    if (lane.capacity() == 0) warm_lane(lane);
    if (lane.empty() || lane.back().seq < e.seq) {
      lane.push_back(e);  // the hot path: pushes arrive in seq order
    } else {
      // Overflow migration may slot an older-seq event behind newer ones.
      auto it = lane.begin() + static_cast<std::ptrdiff_t>(
                                   b.head[static_cast<std::size_t>(e.kind)]);
      while (it != lane.end() && it->seq < e.seq) ++it;
      lane.insert(it, e);
    }
    ++b.count;
    ++wheel_count_;
  }

  void overflow_push(const Event& e) {
    overflow_.push(e);
    ++overflow_pushes_;
    const Time horizon = e.t - base_;
    // Sentinel-ish horizons (crash plans at kForever, anything past half
    // the resize cap) can never be absorbed by a bigger wheel: they don't
    // count toward the resize pressure.
    if (horizon >= kMaxResizedWheel / 2) return;
    if (horizon > observed_horizon_) observed_horizon_ = horizon;
    if (!resize_enabled_) return;
    if (++resizable_overflow_ >= kResizeOverflowTrigger) {
      resizable_overflow_ = 0;
      resize_to_cover(observed_horizon_);
    }
  }

  /// Rebuilds the wheel at the power-of-two span covering `horizon` (twice
  /// over, for headroom), carrying every pending event across and pulling
  /// newly-in-window overflow events in. O(pending events); allocates (the
  /// one permitted allocation — steady state after it is clean again).
  void resize_to_cover(Time horizon) {
    std::size_t want = buckets_.size();
    const Time target = 2 * horizon + 4;
    while (want < target && want < kMaxResizedWheel) want <<= 1;
    if (want == buckets_.size()) return;  // already at the cap

    ++resizes_;
    std::vector<Bucket> old = std::move(buckets_);
    buckets_ = std::vector<Bucket>(want);
    mask_ = want - 1;
    occupancy_.assign((want + 63) / 64, 0);
    wheel_count_ = 0;
    // Carry the old wheel over. Each old bucket holds one tick and lanes
    // are seq-sorted past head, so re-inserting in lane order appends.
    // Each bucket's warmed lane storage is recycled through the spare pool
    // right after its events are carried across: the larger ring's buckets
    // adopt it on first use instead of re-warming a revolution of fresh
    // allocations.
    for (Bucket& b : old) {
      for (std::size_t k = 0; k < kLanes; ++k) {
        auto& lane = b.lane[k];
        if (b.count > 0) {
          for (std::size_t i = b.head[k]; i < lane.size(); ++i) {
            wheel_insert(lane[i]);
          }
        }
        if (lane.capacity() != 0) {
          lane.clear();
          park_spare(std::move(lane));
        }
      }
    }
    // Pull in overflow events now inside the window. Usually their ticks
    // are past every carried-over bucket, but not always: the cursor can
    // advance past an overflow event's tick without migrating it (the
    // rebase only fires when the heap holds the global minimum), and newer
    // pushes at that tick then land in the wheel — so a migrated event may
    // carry an older seq into an occupied bucket. wheel_insert's
    // insert-by-seq branch keeps the lane ordered either way.
    while (!overflow_.empty() && overflow_.top().t - base_ < wheel_span()) {
      wheel_insert(overflow_.top());
      overflow_.pop();
    }
  }

  /// Sets base_ to the tick of the queue minimum, migrating overflow events
  /// into the wheel when the minimum lives there.
  void position_cursor() {
    // Fast path: the cursor bucket still holds events, so base_ is already
    // the minimum — every queued event has t >= base_ (push contract), and
    // once the cursor is positioned the overflow only holds t >= base_ + W.
    // This makes peek+pop pairs and multi-event ticks O(1), no bitmap scan.
    {
      const Bucket& b = buckets_[base_ & mask_];
      if (b.count > 0 && b.tick == base_) return;
    }
    if (wheel_count_ > 0) {
      const Time wheel_min = scan_next_tick();
      if (overflow_.empty() || overflow_.top().t > wheel_min) {
        base_ = wheel_min;
        return;
      }
    }
    // The minimum is in the overflow: rebase the window onto it and pull in
    // everything now within reach.
    AMAC_ENSURES(!overflow_.empty());
    base_ = overflow_.top().t;
    while (!overflow_.empty() && overflow_.top().t - base_ < wheel_span()) {
      wheel_insert(overflow_.top());
      overflow_.pop();
    }
  }

  /// First occupied tick at or after base_ (circular bitmap scan). Requires
  /// wheel_count_ > 0.
  [[nodiscard]] Time scan_next_tick() const {
    const std::size_t start = base_ & mask_;
    const std::size_t words = occupancy_.size();
    std::size_t word = start >> 6;
    std::uint64_t bits = occupancy_[word] & (~std::uint64_t{0} << (start & 63));
    for (std::size_t step = 0;; ++step) {
      AMAC_ENSURES(step <= words);
      if (bits != 0) {
        const std::size_t idx =
            (word << 6) + static_cast<std::size_t>(__builtin_ctzll(bits));
        return buckets_[idx].tick;
      }
      word = word + 1 == words ? 0 : word + 1;
      bits = occupancy_[word];
    }
  }

  std::vector<Bucket> buckets_;
  std::vector<std::uint64_t> occupancy_;
  std::uint64_t mask_ = 0;
  Time base_ = 0;              ///< cursor: minimum possible next tick
  std::size_t wheel_count_ = 0;
  std::size_t size_ = 0;
  std::size_t peak_ = 0;
  std::uint64_t wheel_pushes_ = 0;
  std::uint64_t overflow_pushes_ = 0;
  std::uint64_t resizes_ = 0;
  std::uint64_t batch_reservations_ = 0;
  /// Cleared lane vectors whose capacity is waiting to be adopted by the
  /// next bucket that becomes occupied. Lane storage is conserved, not
  /// duplicated: vectors move bucket -> pool on bucket drain and pool ->
  /// bucket on first insert, so the pool is bounded by the lane count of
  /// the largest ring ever built.
  std::vector<std::vector<Event>> spare_lanes_;
  Time observed_horizon_ = 0;          ///< max resizable overflow horizon
  std::size_t resizable_overflow_ = 0; ///< overflow pushes since last resize
  bool resize_enabled_ = true;
  std::priority_queue<Event, std::vector<Event>, EventAfter> overflow_;
};

}  // namespace amac::mac
