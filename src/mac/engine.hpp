// The timed abstract-MAC-layer engine: a deterministic discrete-event
// simulator implementing the model of paper §2.
//
// Semantics implemented here, mapped to the paper's guarantees:
//   * broadcast(m) by u at time t: the scheduler picks receive delays for
//     every neighbor and an ack delay, receives within [t+1, t+ack] and the
//     ack at t+ack (same-tick receives are processed before acks), so every
//     non-faulty neighbor receives m in the interval between the broadcast
//     and the ack — the defining abstract MAC layer guarantee;
//   * additional broadcasts while one is outstanding are discarded;
//   * broadcast is not atomic: a node crashing mid-broadcast (CrashPlan)
//     cancels the deliveries scheduled after the crash tick while earlier
//     ones still happen — some neighbors receive, some never do;
//   * local computation takes zero time: callbacks run at the event's tick.
//
// ---------------------------------------------------------------------------
// Event-core design (the allocation-free hot path)
//
// Ordering contract. Events pop in ascending (t, kind, seq): deliveries
// before acks before crashes at the same tick, FIFO within a kind. Every
// queue implementation honors this bit-identically; the differential test
// in tests/test_mac_event_core.cpp proves it against the frozen
// ReferenceNetwork (reference_engine.hpp), the original shared_ptr +
// std::map + binary-heap engine kept in-tree as the A/B baseline.
//
// Calendar queue. Because F_ack bounds every delay, nearly all live events
// sit within [now, now + F_ack]: CalendarQueue (calendar_queue.hpp) keeps a
// power-of-two wheel of per-tick buckets sized from Scheduler::fack() —
// push and pop are O(1) array traffic — with a (t, kind, seq) min-heap
// spill-over for far-future events (crash plans, holdback releases). Bucket
// lane vectors are cleared, never freed, so steady state allocates nothing.
//
// Self-resizing wheel. The initial wheel span comes from fack() at
// construction; schedulers whose effective bound grows later (Holdback
// holds registered post-construction) would otherwise pay the overflow
// heap's log factor for every far event forever. The queue counts overflow
// pushes whose horizon a bigger wheel could absorb, and after a threshold
// rebuilds itself at the span covering the observed horizon in O(pending
// events) — one allocation, then allocation-free steady state again. Pop
// order is unaffected, so trace digests are bit-identical with the resize
// on, off (set_wheel_resize_enabled), or against ReferenceNetwork. The
// wheel_* fields of EngineStats report which path events took and whether
// a resize ran (benches and the fuzzer's soak summary read them).
//
// SoA broadcast fan-out. BroadcastSchedule is struct-of-arrays: parallel
// receivers[] / delays[] written by every scheduler into the engine's
// scratch, plus a dense uniform form (receivers[] + one shared delay) for
// lock-step schedulers. start_broadcast fans out with a tight two-array
// loop; in the uniform case all deliver events share one tick, so the
// engine batch-reserves the calendar bucket lane once (CalendarQueue::
// push_batch) and fills the events in place — no per-event bucket lookup.
//
// Payload pool. A broadcast copies its payload into a reusable PayloadPool
// slot (payload_pool.hpp); deliver events carry the owning flight's slot
// index instead of a shared_ptr, and receivers get the bytes by reference.
// Pool lifetime rule: the slot is owned by exactly one Flight and released
// when the flight's last deliver event drains, so it outlives every event
// that names it.
//
// Flat flights. Flight records live in a slot vector with a free list; the
// broadcast id is only carried for assertions. Each (node, instance) pair
// has at most one live flight (a node's instance is busy until its ack, and
// the ack pops after the flight's last delivery), so the per-instance node
// state holds the sender's flight slot directly: in_flight_from is O(1) and
// for_each_in_flight is O(active flights), not O(all flights ever).
//
// Zero-allocation steady state. After warm-up (pool slots, lane and scratch
// capacities grown), the broadcast -> deliver -> ack cycle performs zero
// heap allocations: the scheduler writes into the engine's scratch
// BroadcastSchedule, payload bytes reuse pool-slot capacity, events are
// plain values in reused lanes, and Packet hands out references. Verified
// by the allocation-counting test in tests/test_mac_event_core.cpp.
//
// Unreliable links. An installed LinkFaultPlan (set_link_faults,
// link_faults.hpp) partitions every reliable fan-out at broadcast time by
// calling the plan's pure hash decision per (broadcast_id, sender,
// receiver): copies are kept, deferred past a transient outage window,
// permanently dropped, or duplicated at a bounded extra delay. Emission
// order is canonical and engine-independent — kept copies at their original
// ticks first (the dense-uniform batch reservation shrinks to exactly this
// subset), then deferred copies, then duplicates, each group in schedule
// index order — and the ack is stretched to the latest emitted arrival so
// the layer's "receive before the sender's ack" guarantee survives
// deferral and duplication (permanent losses are the one guarantee the
// plan is allowed to break). Dropped copies consume no event seq and no
// flight bookkeeping; a fan-out whose copies are all lost acquires no
// flight at all. The drops/duplicates counters are identical across
// engines (they are decided, not raced), so differential fingerprints may
// include them; with an empty plan every byte of engine state and trace is
// identical to a fault-free build, which the pinned fuzz-corpus digest
// pins down.
//
// Instance multiplexing (consensus as a service). One Network can host
// multiple concurrent PROTOCOL INSTANCES — numbered slots of a replicated
// log (src/log/), each an independent run of a consensus algorithm — over
// the same nodes, topology, scheduler, fault plan, and event queue:
//   * Identity. Every broadcast, flight, deliver, and ack carries the
//     InstanceId of the instance that issued it (Event::instance,
//     Flight::instance). Crash events are node-level: a crash at u halts
//     u's process in EVERY instance, exactly once.
//   * Per-instance state. A node's process, busy flag, outstanding
//     broadcast, live flight slot, and decision are per (instance, node);
//     crash state is per node. Each instance therefore has its own logical
//     MAC channel per node: instance A being busy never discards instance
//     B's broadcast, which is what makes interleaved instances behave
//     exactly like solo runs (pinned by tests/test_multi_instance.cpp
//     under stateless schedulers and empty fault plans).
//   * Shared substrate. The event queue, seq counter, broadcast-id counter,
//     payload pool, and flight slots are shared — instances multiplex over
//     one MAC layer rather than simulating parallel networks, so the
//     service layer's costs (queue pressure, pool occupancy) are the real
//     multiplexed costs. Per-instance InstanceStats track each instance's
//     traffic and payload-pool footprint (live/peak slots and bytes).
//   * Lifecycle. add_instance() may be called before or DURING a run (a
//     replicated log launches pipelined slots as earlier slots decide);
//     mid-run instances get their on_start callbacks at the current tick.
//     retire_instance() destroys a finished instance's processes and
//     returns its pool claims as its flights drain; events addressed to a
//     retired instance are consumed as pure bookkeeping (no callbacks, no
//     delivery/ack counters).
//   * Digest neutrality. A single-instance Network is bit-identical to the
//     pre-instance engine: instance 0 is the implicit default everywhere,
//     the trace digest never mixes instance ids, and no counter moves —
//     the pinned 504-corpus fuzz digest is the regression oracle for this.
//     Multi-instance runs stay engine-differential: ReferenceNetwork
//     mirrors add_instance with the same seq allocation order.
//
// Large-n sizing and cache behavior (n = 4096-10k). A clique round is
// O(n^2) deliveries by definition — the engine's job is to keep the
// constant per delivery flat as n grows:
//   * Per-delivery bookkeeping is O(1). Flight::pending is append-only
//     with seq-derived tombstoning (see Flight below); the old
//     erase-by-find made each delivery O(fan-out), i.e. a whole clique
//     round O(n^3) in total — at n=4096 that term alone dwarfed the
//     simulation.
//   * Queue traffic is already flat: a uniform fan-out is one push_batch
//     bucket reservation filled in place (sequential writes into one lane
//     vector — the cache-friendly regime), and pops walk the same lane
//     sequentially. Peak queue memory is the real n=4096 cost: a clique
//     sync round holds ~n^2 deliver events (~670 MB transient at
//     n=4096), so big-clique benches are calendar-only and sized to few
//     rounds.
//   * Capacity warms once. Flight slots, pending vectors, pool slots, and
//     lane storage all recycle; after the first large fan-out the steady
//     state allocates nothing at any n (allocation-counting test covers a
//     large-n warm-up explicitly).
//   * Degree-proportional work (the AMAC_CHECK has_edge scan per fan-out,
//     Graph::neighbors iteration) stays per-copy O(log deg)/O(1) and is
//     debug-gated where it isn't.
// ---------------------------------------------------------------------------
#pragma once

#include <functional>
#include <vector>

#include "mac/calendar_queue.hpp"
#include "mac/event.hpp"
#include "mac/link_faults.hpp"
#include "mac/payload_pool.hpp"
#include "mac/process.hpp"
#include "mac/scheduler.hpp"
#include "net/graph.hpp"
#include "util/hash.hpp"

namespace amac::mac {

/// A scheduled crash: `node` halts at tick `when` (before any event at a
/// strictly later tick; deliveries at `when` itself still occur).
struct CrashPlan {
  NodeId node = kNoNode;
  Time when = 0;
};

/// A node's decision record.
struct Decision {
  bool decided = false;
  Value value = -1;
  Time time = 0;
};

/// Aggregate accounting across a run.
///
/// The wheel_* and batch_pushes fields describe the calendar queue only
/// (always 0 on ReferenceNetwork, which has no wheel); differential
/// fingerprints and cross-engine equality checks must not include them.
/// They are, however, exactly the run-shape features the fuzzer's
/// CoverageSignature consumes (fuzz/fuzzer.hpp): which queue path a
/// scenario drove is the coverage signal that steers mutation.
struct EngineStats {
  std::uint64_t broadcasts = 0;
  std::uint64_t dropped_busy = 0;  ///< broadcasts discarded while busy
  std::uint64_t deliveries = 0;
  std::uint64_t acks = 0;
  std::uint64_t payload_bytes = 0;
  std::size_t max_payload_bytes = 0;
  std::size_t peak_events = 0;  ///< high-water mark of queued events
  std::uint64_t wheel_pushes = 0;     ///< events placed directly in the wheel
  std::uint64_t overflow_pushes = 0;  ///< events spilled to the overflow heap
  std::uint64_t wheel_resizes = 0;    ///< self-resize rebuilds that ran
  std::uint64_t batch_pushes = 0;     ///< uniform fan-outs that took the
                                      ///< push_batch bucket reservation
  std::size_t wheel_span = 0;         ///< final wheel size in buckets
  /// Link-fault accounting (link_faults.hpp). Unlike the wheel_* fields
  /// these are decided by the plan's pure hash, not by queue internals, so
  /// they are identical across engines and safe to fingerprint.
  std::uint64_t drops = 0;       ///< copies lost or deferred by the plan
  std::uint64_t duplicates = 0;  ///< extra copies the plan scheduled
};

/// Per-instance slice of the engine's accounting: the traffic one protocol
/// instance generated plus its payload-pool footprint. Engine-independent
/// (both engines count these identically), so multi-instance differential
/// fingerprints may include them. The global EngineStats is NOT the sum of
/// these views — queue-path fields (wheel_*, peak_events) are substrate-
/// level and have no per-instance meaning.
struct InstanceStats {
  std::uint64_t broadcasts = 0;
  std::uint64_t dropped_busy = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t acks = 0;
  std::uint64_t payload_bytes = 0;
  std::size_t max_payload_bytes = 0;
  std::uint64_t drops = 0;
  std::uint64_t duplicates = 0;
  /// Payload-pool accounting: slots/bytes currently held by this
  /// instance's live flights, and their high-water marks.
  std::size_t live_pool_slots = 0;
  std::size_t peak_pool_slots = 0;
  std::size_t live_pool_bytes = 0;
  std::size_t peak_pool_bytes = 0;
};

/// When `run` should stop (besides the time horizon).
enum class StopWhen {
  kAllDecided,  ///< every non-crashed node has decided (in every instance)
  kQuiescent,   ///< no events left
};

struct RunResult {
  bool condition_met = false;  ///< stop condition reached within the horizon
  Time end_time = 0;           ///< virtual time when the run stopped
};

/// One simulated network: topology + processes + scheduler.
class Network {
 public:
  /// Builds instance 0's process per node via `factory`. The scheduler is
  /// borrowed and must outlive the network. `unreliable_overlay`, if given,
  /// is a second edge set (disjoint from `graph`'s) on which deliveries are
  /// best-effort, decided per broadcast by Scheduler::schedule_unreliable —
  /// the dual-graph abstract MAC layer model the paper leaves as future
  /// work. Acks never wait for overlay deliveries beyond the reliable ack
  /// delay; overlay receives still land within the broadcast window.
  Network(const net::Graph& graph, const ProcessFactory& factory,
          Scheduler& scheduler,
          const net::Graph* unreliable_overlay = nullptr);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers a crash before running. Multiple crashes are allowed (the
  /// paper's impossibility needs one; the engine does not restrict). A
  /// crash is node-level: it halts the node's process in every instance.
  void schedule_crash(const CrashPlan& plan);

  /// Installs the link-fault plan (link_faults.hpp). Must be called before
  /// the first run(), like schedule_crash; pass the identical plan to both
  /// engines for differential replay.
  void set_link_faults(const LinkFaultPlan& plan);

  /// Returns the network to its pre-run state for another experiment on the
  /// same topology/scheduler/plan: back to a SINGLE instance 0 with fresh
  /// processes from `factory`, empty event queue (capacity kept), zeroed
  /// stats — including the link-fault counters — and released
  /// flights/payload slots. Scheduler-internal state (e.g. Holdback holds,
  /// RNG positions) is the caller's to reset; the installed fault plan and
  /// crash-free slate carry over.
  void reset(const ProcessFactory& factory);

  /// Adds a concurrent protocol instance (design doc: "Instance
  /// multiplexing") and returns its id. Callable before the first run or
  /// mid-run from a post-event hook: once the run has started, the new
  /// instance's on_start callbacks fire immediately at the current tick
  /// (crashed nodes get no process and no callbacks).
  InstanceId add_instance(const ProcessFactory& factory);

  /// Destroys a finished instance's processes. Subsequent events addressed
  /// to it are consumed as pure bookkeeping (flights still drain, pool
  /// slots still release, busy flags still clear) with no callbacks and no
  /// delivery/ack counters. Decisions and InstanceStats remain readable.
  void retire_instance(InstanceId instance);

  [[nodiscard]] std::size_t instance_count() const {
    return instances_.size();
  }

  /// Disables the calendar wheel's self-resize, pinning the overflow-heap
  /// fallback for far events. A/B benchmark support (BM_EngineLateHolds*);
  /// pop order — and therefore every digest — is identical either way.
  void set_wheel_resize_enabled(bool enabled) {
    events_.set_resize_enabled(enabled);
  }

  /// Invoked after every processed event; used by invariant monitors
  /// (e.g. the Lemma 4.2 response-count conservation check) and by the
  /// replicated-log driver to launch pipelined slot instances mid-run.
  void set_post_event_hook(std::function<void(Network&)> hook) {
    post_event_hook_ = std::move(hook);
  }

  /// Runs until the stop condition, the event queue drains, or virtual time
  /// would exceed `max_time`.
  RunResult run(StopWhen until, Time max_time);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] const Decision& decision(NodeId u) const {
    return decision(u, 0);
  }
  [[nodiscard]] const Decision& decision(NodeId u, InstanceId instance) const;
  [[nodiscard]] bool crashed(NodeId u) const;
  [[nodiscard]] const EngineStats& stats() const { return stats_; }
  [[nodiscard]] const InstanceStats& instance_stats(InstanceId instance) const;
  [[nodiscard]] const net::Graph& graph() const { return *graph_; }

  /// The process at u (for tests and invariant monitors). The two-argument
  /// form addresses a specific instance; retired instances have none.
  [[nodiscard]] Process& process(NodeId u) { return process(u, 0); }
  [[nodiscard]] const Process& process(NodeId u) const {
    return process(u, 0);
  }
  [[nodiscard]] Process& process(NodeId u, InstanceId instance);
  [[nodiscard]] const Process& process(NodeId u, InstanceId instance) const;

  /// Count of in-flight (scheduled, not yet delivered/cancelled) payload
  /// copies from `sender`'s current instance-0 broadcast (monitor support).
  /// O(1) via the per-sender flight index.
  [[nodiscard]] std::size_t in_flight_from(NodeId sender) const {
    return in_flight_from(sender, 0);
  }
  [[nodiscard]] std::size_t in_flight_from(NodeId sender,
                                           InstanceId instance) const;

  /// Visits every in-flight copy as (sender, receiver-not-yet-delivered,
  /// payload), across all instances (instance 0 first per sender). Used by
  /// the Lemma 4.2 response-count conservation monitor, whose invariant
  /// Q(p, s) sums over exactly these messages. Cost is O(active flights),
  /// not O(every flight in the simulation).
  void for_each_in_flight(
      const std::function<void(NodeId, NodeId, const util::Buffer&)>& fn)
      const;

  /// True once every non-crashed node decided in every live instance.
  [[nodiscard]] bool all_alive_decided() const;

  /// True once every non-crashed node decided in `instance` (vacuously true
  /// for a retired instance).
  [[nodiscard]] bool instance_all_decided(InstanceId instance) const;

  /// Starts folding every processed event (t, kind, node, sender,
  /// broadcast id, seq, payload bytes) into a digest. Used by the A/B
  /// differential tests to prove event-order equivalence across engines.
  /// Deliberately does NOT mix Event::instance: a single-instance run's
  /// digest is bit-identical to the pre-instance engine's, and instance
  /// identity is already pinned by per-instance decisions/stats.
  void enable_trace_digest() { trace_enabled_ = true; }
  [[nodiscard]] std::uint64_t trace_digest() const {
    return trace_hasher_.digest();
  }

  /// Payload pool introspection (pool reuse/lifetime tests).
  [[nodiscard]] const PayloadPool& payload_pool() const { return pool_; }

 private:
  /// Node-level state: crash status only — everything protocol-facing is
  /// per (instance, node).
  struct NodeState {
    bool crashed = false;
    Time crash_time = kForever;
  };

  /// One node's state within one instance.
  struct InstanceNode {
    std::unique_ptr<Process> process;
    bool busy = false;
    std::uint64_t current_broadcast = 0;  ///< id of outstanding broadcast
    std::uint32_t flight_slot = kNoFlight;  ///< live flight, if any
    Decision decision;
  };

  struct Instance {
    std::vector<InstanceNode> nodes;
    InstanceStats stats;
    std::size_t undecided_alive = 0;
    bool retired = false;
  };

  /// Bookkeeping for one broadcast's undelivered copies, in slot storage.
  ///
  /// `pending` is append-only while the flight is live: a delivered copy is
  /// tombstoned to kNoNode at its slot instead of erased, so the kDeliver
  /// hot path is O(1) instead of the O(fan-out) erase-by-find that made a
  /// clique broadcast O(n^2) per round. The slot for an event is derived,
  /// not stored: within one start_broadcast every deliver event takes a
  /// consecutive seq in exactly pending-append order (drops consume no seq,
  /// the ack's seq comes after), so event e owns pending[e.seq - first_seq].
  /// `undrained_events` counts live (non-tombstoned) entries — the two
  /// counters move in lockstep because every pending entry is retired by
  /// exactly one popped deliver event.
  struct Flight {
    NodeId sender = kNoNode;
    std::uint32_t payload_slot = 0;
    std::uint64_t id = 0;                 ///< broadcast id (assertions)
    std::uint64_t first_seq = 0;          ///< seq of the first deliver event
    InstanceId instance = 0;              ///< owning protocol instance
    std::vector<NodeId> pending;          ///< receivers; kNoNode = delivered
    std::size_t undrained_events = 0;     ///< deliver events not yet popped
  };

  class NodeContext;  // Context implementation bound to one (node, instance)

  void start_broadcast(NodeId u, InstanceId instance,
                       const util::Buffer& payload);
  void process_event(const Event& e);
  void release_flight(std::uint32_t slot);
  void trace_event(const Event& e);

  const net::Graph* graph_;
  const net::Graph* overlay_ = nullptr;  ///< unreliable edges (optional)
  Scheduler* scheduler_;
  std::vector<NodeState> nodes_;
  std::vector<Instance> instances_;
  std::vector<Flight> flights_;           ///< slot storage + free list
  std::vector<std::uint32_t> free_flights_;
  PayloadPool pool_;
  CalendarQueue events_;
  BroadcastSchedule schedule_scratch_;
  std::vector<std::pair<NodeId, Time>> unreliable_scratch_;
  LinkFaultPlan faults_;
  std::vector<LinkFaultDecision> fault_scratch_;  ///< reused per fan-out
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_broadcast_id_ = 1;
  Time now_ = 0;
  std::size_t undecided_alive_ = 0;  ///< sum across live instances
  EngineStats stats_;
  std::function<void(Network&)> post_event_hook_;
  bool started_ = false;
  bool trace_enabled_ = false;
  util::Hasher trace_hasher_;
};

}  // namespace amac::mac
