// The timed abstract-MAC-layer engine: a deterministic discrete-event
// simulator implementing the model of paper §2.
//
// Semantics implemented here, mapped to the paper's guarantees:
//   * broadcast(m) by u at time t: the scheduler picks receive delays for
//     every neighbor and an ack delay, receives within [t+1, t+ack] and the
//     ack at t+ack (same-tick receives are processed before acks), so every
//     non-faulty neighbor receives m in the interval between the broadcast
//     and the ack — the defining abstract MAC layer guarantee;
//   * additional broadcasts while one is outstanding are discarded;
//   * broadcast is not atomic: a node crashing mid-broadcast (CrashPlan)
//     cancels the deliveries scheduled after the crash tick while earlier
//     ones still happen — some neighbors receive, some never do;
//   * local computation takes zero time: callbacks run at the event's tick.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <queue>
#include <vector>

#include "mac/process.hpp"
#include "mac/scheduler.hpp"
#include "net/graph.hpp"

namespace amac::mac {

/// A scheduled crash: `node` halts at tick `when` (before any event at a
/// strictly later tick; deliveries at `when` itself still occur).
struct CrashPlan {
  NodeId node = kNoNode;
  Time when = 0;
};

/// A node's decision record.
struct Decision {
  bool decided = false;
  Value value = -1;
  Time time = 0;
};

/// Aggregate accounting across a run.
struct EngineStats {
  std::uint64_t broadcasts = 0;
  std::uint64_t dropped_busy = 0;  ///< broadcasts discarded while busy
  std::uint64_t deliveries = 0;
  std::uint64_t acks = 0;
  std::uint64_t payload_bytes = 0;
  std::size_t max_payload_bytes = 0;
};

/// When `run` should stop (besides the time horizon).
enum class StopWhen {
  kAllDecided,  ///< every non-crashed node has decided
  kQuiescent,   ///< no events left
};

struct RunResult {
  bool condition_met = false;  ///< stop condition reached within the horizon
  Time end_time = 0;           ///< virtual time when the run stopped
};

/// One simulated network: topology + processes + scheduler.
class Network {
 public:
  /// Builds a process per node via `factory`. The scheduler is borrowed and
  /// must outlive the network. `unreliable_overlay`, if given, is a second
  /// edge set (disjoint from `graph`'s) on which deliveries are
  /// best-effort, decided per broadcast by Scheduler::schedule_unreliable —
  /// the dual-graph abstract MAC layer model the paper leaves as future
  /// work. Acks never wait for overlay deliveries beyond the reliable ack
  /// delay; overlay receives still land within the broadcast window.
  Network(const net::Graph& graph, const ProcessFactory& factory,
          Scheduler& scheduler,
          const net::Graph* unreliable_overlay = nullptr);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers a crash before running. Multiple crashes are allowed (the
  /// paper's impossibility needs one; the engine does not restrict).
  void schedule_crash(const CrashPlan& plan);

  /// Invoked after every processed event; used by invariant monitors
  /// (e.g. the Lemma 4.2 response-count conservation check).
  void set_post_event_hook(std::function<void(Network&)> hook) {
    post_event_hook_ = std::move(hook);
  }

  /// Runs until the stop condition, the event queue drains, or virtual time
  /// would exceed `max_time`.
  RunResult run(StopWhen until, Time max_time);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] const Decision& decision(NodeId u) const;
  [[nodiscard]] bool crashed(NodeId u) const;
  [[nodiscard]] const EngineStats& stats() const { return stats_; }
  [[nodiscard]] const net::Graph& graph() const { return *graph_; }

  /// The process at u (for tests and invariant monitors).
  [[nodiscard]] Process& process(NodeId u);
  [[nodiscard]] const Process& process(NodeId u) const;

  /// Count of in-flight (scheduled, not yet delivered/cancelled) payload
  /// copies from `sender`'s current broadcast (monitor support).
  [[nodiscard]] std::size_t in_flight_from(NodeId sender) const;

  /// Visits every in-flight copy as (sender, receiver-not-yet-delivered,
  /// payload). Used by the Lemma 4.2 response-count conservation monitor,
  /// whose invariant Q(p, s) sums over exactly these messages.
  void for_each_in_flight(
      const std::function<void(NodeId, NodeId, const util::Buffer&)>& fn)
      const;

  /// True once every non-crashed node decided.
  [[nodiscard]] bool all_alive_decided() const;

 private:
  enum class EventKind : std::uint8_t { kDeliver = 0, kAck = 1, kCrash = 2 };

  struct Event {
    Time t = 0;
    EventKind kind = EventKind::kDeliver;
    std::uint64_t seq = 0;  ///< FIFO tie-break within a tick
    NodeId node = kNoNode;  ///< receiver (deliver), sender (ack), crashee
    NodeId sender = kNoNode;               ///< deliver only
    std::uint64_t broadcast_id = 0;        ///< deliver/ack: which broadcast
    std::shared_ptr<const util::Buffer> payload;  ///< deliver only
    bool reliable = true;                  ///< deliver: edge class

    [[nodiscard]] bool operator>(const Event& o) const {
      if (t != o.t) return t > o.t;
      if (kind != o.kind) return kind > o.kind;
      return seq > o.seq;
    }
  };

  struct NodeState {
    std::unique_ptr<Process> process;
    bool busy = false;
    bool crashed = false;
    Time crash_time = kForever;
    std::uint64_t current_broadcast = 0;  ///< id of outstanding broadcast
    Decision decision;
  };

  /// Bookkeeping for one broadcast's undelivered copies.
  struct Flight {
    NodeId sender = kNoNode;
    std::shared_ptr<const util::Buffer> payload;
    std::vector<NodeId> pending;          ///< receivers not yet delivered
    std::size_t undrained_events = 0;     ///< deliver events not yet popped
  };

  class NodeContext;  // Context implementation bound to one node

  void start_broadcast(NodeId u, util::Buffer payload);
  void process_event(const Event& e);

  const net::Graph* graph_;
  const net::Graph* overlay_ = nullptr;  ///< unreliable edges (optional)
  Scheduler* scheduler_;
  std::vector<NodeState> nodes_;
  std::map<std::uint64_t, Flight> flights_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_broadcast_id_ = 1;
  Time now_ = 0;
  std::size_t undecided_alive_ = 0;
  EngineStats stats_;
  std::function<void(Network&)> post_event_hook_;
  bool started_ = false;
};

}  // namespace amac::mac
