// Deterministic per-link fault injection for the abstract MAC layer.
//
// The paper's MAC layer is reliable by definition; real radios drop and
// duplicate frames. A LinkFaultPlan makes both injectable without giving up
// determinism or engine equivalence: every per-delivery decision is a pure
// seed-salted hash of (broadcast_id, sender, receiver) — no RNG state in
// the hot path, no dependence on call order — so the calendar engine and
// the frozen reference engine reach bit-identical verdicts by calling the
// same function on the same inputs.
//
// Fault semantics (shared by both engines; see the "Unreliable links"
// section of the engine.hpp design doc for how emission order and the ack
// interact):
//   * rate drops — a frame lost on air with no retransmission. Decided by
//     hash % 10000 < drop_rate_bp (rates are integer basis points, exact in
//     the scenario spec round-trip). The hash deliberately excludes the
//     arrival tick: whether a (broadcast, link) pair is lossy is a property
//     of the pair, not of when the scheduler happened to place the copy.
//   * drop windows — a transient outage of the directed link `from -> to`
//     covering arrival ticks in [from_tick, until_tick). A copy arriving
//     inside a finite window is DEFERRED to the window's end (the MAC
//     retransmits once the channel clears), which preserves the layer's
//     delivery guarantee: the sender's ack is stretched past the deferred
//     arrival. until_tick == kForever makes the outage permanent: the copy
//     is lost like a rate drop.
//   * duplicates — a delivered copy arrives again 1..kMaxDuplicateExtra
//     ticks later (ack-stretched over, like deferrals). Only delivered
//     copies duplicate; duplicates are never re-dropped or re-duplicated.
#pragma once

#include <cstdint>
#include <vector>

#include "mac/types.hpp"
#include "util/hash.hpp"

namespace amac::mac {

/// A directed-link outage: copies from `from` to `to` arriving in
/// [from_tick, until_tick) are deferred to until_tick, or lost outright
/// when until_tick == kForever. Degenerate windows (until <= from) are
/// inert.
struct DropWindow {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  Time from_tick = 0;
  Time until_tick = kForever;
};

/// The plan's verdict for one scheduled copy.
struct LinkFaultDecision {
  bool deliver = true;      ///< false: the copy is permanently lost
  Time deliver_at = 0;      ///< arrival tick (> original iff deferred)
  bool duplicate = false;   ///< a second copy arrives at duplicate_at
  Time duplicate_at = 0;
};

/// Seed-deterministic drop/duplicate plan. An empty plan (both rates zero,
/// no windows) must leave every engine byte stream bit-identical to a run
/// with no plan at all — the pinned-corpus digest guard in
/// tests/test_fuzz_smoke.cpp enforces this.
struct LinkFaultPlan {
  /// Rates are in basis points: parts per kRateScale (10000).
  static constexpr std::uint32_t kRateScale = 10000;
  /// Duplicate copies arrive 1..kMaxDuplicateExtra ticks after the original.
  static constexpr Time kMaxDuplicateExtra = 8;

  std::uint64_t seed = 0;
  std::uint32_t drop_rate_bp = 0;
  std::uint32_t dup_rate_bp = 0;
  std::vector<DropWindow> windows;

  [[nodiscard]] bool empty() const {
    return drop_rate_bp == 0 && dup_rate_bp == 0 && windows.empty();
  }

  /// The pure per-copy decision. `arrival` is the scheduler's tick for this
  /// copy; only the window checks read it (rate hashes must not, so that a
  /// scenario's loss pattern survives scheduler perturbation).
  [[nodiscard]] LinkFaultDecision decide(std::uint64_t broadcast_id,
                                         NodeId sender, NodeId receiver,
                                         Time arrival) const {
    LinkFaultDecision d;
    d.deliver_at = arrival;
    if (drop_rate_bp > 0 &&
        roll(kDropSalt, broadcast_id, sender, receiver) < drop_rate_bp) {
      d.deliver = false;
      return d;
    }
    // Window deferral to fixpoint: a deferred copy can land inside another
    // window. Each finite window moves the arrival strictly forward at most
    // once, so the scan is bounded by the window count.
    bool moved = true;
    while (moved) {
      moved = false;
      for (const DropWindow& w : windows) {
        if (w.from != sender || w.to != receiver) continue;
        if (d.deliver_at < w.from_tick || d.deliver_at >= w.until_tick) {
          continue;
        }
        if (w.until_tick == kForever) {
          d.deliver = false;
          return d;
        }
        d.deliver_at = w.until_tick;
        moved = true;
      }
    }
    if (dup_rate_bp > 0 &&
        roll(kDupSalt, broadcast_id, sender, receiver) < dup_rate_bp) {
      d.duplicate = true;
      d.duplicate_at =
          d.deliver_at + 1 +
          roll(kDupDelaySalt, broadcast_id, sender, receiver) %
              kMaxDuplicateExtra;
    }
    return d;
  }

 private:
  static constexpr std::uint64_t kDropSalt = 0xD201;
  static constexpr std::uint64_t kDupSalt = 0xD0B1E;
  static constexpr std::uint64_t kDupDelaySalt = 0xDE1A1;

  [[nodiscard]] std::uint32_t roll(std::uint64_t salt,
                                   std::uint64_t broadcast_id, NodeId sender,
                                   NodeId receiver) const {
    util::Hasher h;
    h.mix_u64(seed);
    h.mix_u64(salt);
    h.mix_u64(broadcast_id);
    h.mix_u64(sender);
    h.mix_u64(receiver);
    return static_cast<std::uint32_t>(h.digest() % kRateScale);
  }
};

}  // namespace amac::mac
