// The message scheduler interface — the model's source of non-determinism.
//
// Paper §2: the scheduler may deliver a broadcast's copies to neighbors in
// any order and at any times, and must deliver the ack after all copies, at
// most F_ack after the broadcast. All of the paper's lower-bound proofs are
// statements about specific adversarial schedulers; this interface lets each
// proof's adversary be instantiated as an object (see schedulers.hpp).
//
// Scratch-buffer calling convention: `schedule` writes into a caller-owned
// BroadcastSchedule. The engine keeps one scratch schedule for its whole
// run, so the per-broadcast delay vector is allocated once and reused for
// millions of broadcasts (the old by-value API allocated per broadcast).
// Implementations must treat `out` as garbage on entry: call `out.reset()`
// (or overwrite every field) before filling it.
#pragma once

#include <utility>
#include <vector>

#include "mac/types.hpp"

namespace amac::mac {

/// The scheduler's answer for one broadcast: when each neighbor receives the
/// message and when the sender is acked, as delays from the broadcast time.
/// Contract: ack_delay >= 1, and 1 <= delay <= ack_delay for every receive
/// (receives happen within the [broadcast, ack] interval; the engine orders
/// same-tick receives before acks).
struct BroadcastSchedule {
  Time ack_delay = 1;
  std::vector<std::pair<NodeId, Time>> receive_delays;

  /// Reusable-scratch reset: clears the delays but keeps their capacity.
  void reset() {
    ack_delay = 1;
    receive_delays.clear();
  }
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Schedules the broadcast `sender` starts at `now` toward `neighbors`,
  /// writing into the caller-owned scratch `out` (reset it first!). Must
  /// produce one receive entry per neighbor.
  virtual void schedule(NodeId sender, Time now,
                        const std::vector<NodeId>& neighbors,
                        BroadcastSchedule& out) = 0;

  /// Best-effort deliveries over the unreliable overlay (dual-graph model):
  /// writes into `out` the subset of `overlay_neighbors` that actually
  /// receive this broadcast, with delays in [1, ack_delay]. The scheduler
  /// may deliver all, some, or none — that is the model's entire guarantee.
  /// Default: nothing is delivered. `out` is caller-owned scratch.
  virtual void schedule_unreliable(NodeId sender, Time now,
                                   const std::vector<NodeId>& overlay_neighbors,
                                   Time ack_delay,
                                   std::vector<std::pair<NodeId, Time>>& out) {
    (void)sender;
    (void)now;
    (void)overlay_neighbors;
    (void)ack_delay;
    out.clear();
  }

  /// The F_ack bound this scheduler guarantees: no ack is delayed by more
  /// than this. Unknown to processes; used by experiments to normalize time
  /// and by the engine to size its calendar-queue wheel.
  [[nodiscard]] virtual Time fack() const = 0;

  /// Convenience wrapper returning a fresh schedule by value (tests and
  /// one-shot callers; the engine hot path uses the scratch overload).
  [[nodiscard]] BroadcastSchedule make_schedule(
      NodeId sender, Time now, const std::vector<NodeId>& neighbors) {
    BroadcastSchedule s;
    schedule(sender, now, neighbors, s);
    return s;
  }
};

}  // namespace amac::mac
