// The message scheduler interface — the model's source of non-determinism.
//
// Paper §2: the scheduler may deliver a broadcast's copies to neighbors in
// any order and at any times, and must deliver the ack after all copies, at
// most F_ack after the broadcast. All of the paper's lower-bound proofs are
// statements about specific adversarial schedulers; this interface lets each
// proof's adversary be instantiated as an object (see schedulers.hpp).
//
// Scratch-buffer calling convention: `schedule` writes into a caller-owned
// BroadcastSchedule. The engine keeps one scratch schedule for its whole
// run, so the per-broadcast delay vector is allocated once and reused for
// millions of broadcasts (the old by-value API allocated per broadcast).
// Implementations must treat `out` as garbage on entry: call `out.reset()`
// (or overwrite every field) before filling it.
#pragma once

#include <utility>
#include <vector>

#include "mac/types.hpp"
#include "util/assert.hpp"

namespace amac::mac {

/// The scheduler's answer for one broadcast: when each neighbor receives the
/// message and when the sender is acked, as delays from the broadcast time.
/// Contract: ack_delay >= 1, and 1 <= delay <= ack_delay for every receive
/// (receives happen within the [broadcast, ack] interval; the engine orders
/// same-tick receives before acks).
///
/// Struct-of-arrays layout: `receivers[i]` gets the message `delay(i)` ticks
/// after the broadcast. Two forms share the type:
///   * dense/uniform — every receiver shares one delay (`uniform` set,
///     `delays` empty, `uniform_delay` holds the value). Schedulers that
///     emit lock-step delays (synchronous rounds, max-delay) fill this form
///     with a single bulk receiver copy, and the engine fans the broadcast
///     out through a batch push into one calendar-wheel bucket;
///   * per-receiver — `delays[i]` parallels `receivers[i]` (`uniform`
///     clear). The engine's fan-out loop then reads two flat arrays instead
///     of chasing (node, delay) pairs.
/// Either way, entry order is the scheduler's emission order — the engine
/// assigns event seq numbers in this order, so it is part of the
/// deterministic trace contract.
struct BroadcastSchedule {
  Time ack_delay = 1;
  std::vector<NodeId> receivers;
  std::vector<Time> delays;  ///< empty iff `uniform`
  Time uniform_delay = 0;    ///< every receiver's delay, iff `uniform`
  bool uniform = false;

  /// Reusable-scratch reset: clears the arrays but keeps their capacity.
  void reset() {
    ack_delay = 1;
    receivers.clear();
    delays.clear();
    uniform_delay = 0;
    uniform = false;
  }

  [[nodiscard]] std::size_t size() const { return receivers.size(); }
  [[nodiscard]] bool empty() const { return receivers.empty(); }

  [[nodiscard]] Time delay(std::size_t i) const {
    return uniform ? uniform_delay : delays[i];
  }

  /// Dense fast path: all of `neighbors` receive after the same delay. One
  /// bulk copy of the receiver ids; no per-receiver delay storage.
  void assign_uniform(const std::vector<NodeId>& neighbors, Time d) {
    receivers.assign(neighbors.begin(), neighbors.end());
    delays.clear();
    uniform_delay = d;
    uniform = true;
  }

  /// Appends one per-receiver entry (requires the per-receiver form).
  void push(NodeId v, Time d) {
    AMAC_EXPECTS(!uniform);
    receivers.push_back(v);
    delays.push_back(d);
  }

  /// Converts the dense form into explicit per-receiver delays so a caller
  /// (e.g. HoldbackScheduler) can adjust individual entries. No-op when
  /// already per-receiver.
  void densify() {
    if (!uniform) return;
    delays.assign(receivers.size(), uniform_delay);
    uniform = false;
  }
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Schedules the broadcast `sender` starts at `now` toward `neighbors`,
  /// writing into the caller-owned scratch `out` (reset it first!). Must
  /// produce one receive entry per neighbor.
  virtual void schedule(NodeId sender, Time now,
                        const std::vector<NodeId>& neighbors,
                        BroadcastSchedule& out) = 0;

  /// Best-effort deliveries over the unreliable overlay (dual-graph model):
  /// writes into `out` the subset of `overlay_neighbors` that actually
  /// receive this broadcast, with delays in [1, ack_delay]. The scheduler
  /// may deliver all, some, or none — that is the model's entire guarantee.
  /// Default: nothing is delivered. `out` is caller-owned scratch.
  virtual void schedule_unreliable(NodeId sender, Time now,
                                   const std::vector<NodeId>& overlay_neighbors,
                                   Time ack_delay,
                                   std::vector<std::pair<NodeId, Time>>& out) {
    (void)sender;
    (void)now;
    (void)overlay_neighbors;
    (void)ack_delay;
    out.clear();
  }

  /// The F_ack bound this scheduler guarantees: no ack is delayed by more
  /// than this. Unknown to processes; used by experiments to normalize time
  /// and by the engine to size its calendar-queue wheel.
  [[nodiscard]] virtual Time fack() const = 0;

  /// Convenience wrapper returning a fresh schedule by value (tests and
  /// one-shot callers; the engine hot path uses the scratch overload).
  [[nodiscard]] BroadcastSchedule make_schedule(
      NodeId sender, Time now, const std::vector<NodeId>& neighbors) {
    BroadcastSchedule s;
    schedule(sender, now, neighbors, s);
    return s;
  }
};

}  // namespace amac::mac
