// The message scheduler interface — the model's source of non-determinism.
//
// Paper §2: the scheduler may deliver a broadcast's copies to neighbors in
// any order and at any times, and must deliver the ack after all copies, at
// most F_ack after the broadcast. All of the paper's lower-bound proofs are
// statements about specific adversarial schedulers; this interface lets each
// proof's adversary be instantiated as an object (see schedulers.hpp).
#pragma once

#include <utility>
#include <vector>

#include "mac/types.hpp"

namespace amac::mac {

/// The scheduler's answer for one broadcast: when each neighbor receives the
/// message and when the sender is acked, as delays from the broadcast time.
/// Contract: ack_delay >= 1, and 1 <= delay <= ack_delay for every receive
/// (receives happen within the [broadcast, ack] interval; the engine orders
/// same-tick receives before acks).
struct BroadcastSchedule {
  Time ack_delay = 1;
  std::vector<std::pair<NodeId, Time>> receive_delays;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Schedules the broadcast `sender` starts at `now` toward `neighbors`.
  /// Must return one receive entry per neighbor.
  [[nodiscard]] virtual BroadcastSchedule schedule(
      NodeId sender, Time now, const std::vector<NodeId>& neighbors) = 0;

  /// Best-effort deliveries over the unreliable overlay (dual-graph model):
  /// returns the subset of `overlay_neighbors` that actually receive this
  /// broadcast, with delays in [1, ack_delay]. The scheduler may deliver
  /// all, some, or none — that is the model's entire guarantee. Default:
  /// nothing is delivered.
  [[nodiscard]] virtual std::vector<std::pair<NodeId, Time>>
  schedule_unreliable(NodeId sender, Time now,
                      const std::vector<NodeId>& overlay_neighbors,
                      Time ack_delay) {
    (void)sender;
    (void)now;
    (void)overlay_neighbors;
    (void)ack_delay;
    return {};
  }

  /// The F_ack bound this scheduler guarantees: no ack is delayed by more
  /// than this. Unknown to processes; used by experiments to normalize time.
  [[nodiscard]] virtual Time fack() const = 0;
};

}  // namespace amac::mac
