#include "mac/reference_engine.hpp"

#include <algorithm>

namespace amac::mac {

/// Context implementation handed to a process during a callback.
class ReferenceNetwork::NodeContext final : public Context {
 public:
  NodeContext(ReferenceNetwork& net, NodeId node, InstanceId instance)
      : net_(&net), node_(node), instance_(instance) {}

  void broadcast(const util::Buffer& payload) override {
    net_->start_broadcast(node_, instance_, payload);
  }

  void decide(Value v) override {
    Instance& inst = net_->instances_[instance_];
    auto& st = inst.nodes[node_];
    AMAC_EXPECTS(!st.decision.decided);
    st.decision = Decision{true, v, net_->now_};
    AMAC_ENSURES(inst.undecided_alive > 0);
    --inst.undecided_alive;
    AMAC_ENSURES(net_->undecided_alive_ > 0);
    --net_->undecided_alive_;
  }

  [[nodiscard]] bool busy() const override {
    return net_->instances_[instance_].nodes[node_].busy;
  }

  [[nodiscard]] Time now() const override { return net_->now_; }

 private:
  ReferenceNetwork* net_;
  NodeId node_;
  InstanceId instance_;
};

ReferenceNetwork::ReferenceNetwork(const net::Graph& graph,
                                   const ProcessFactory& factory,
                                   Scheduler& scheduler,
                                   const net::Graph* unreliable_overlay)
    : graph_(&graph), overlay_(unreliable_overlay), scheduler_(&scheduler) {
  const std::size_t n = graph.node_count();
  if (overlay_ != nullptr) {
    AMAC_EXPECTS(overlay_->node_count() == n);
    for (NodeId u = 0; u < n; ++u) {
      for (const NodeId v : overlay_->neighbors(u)) {
        AMAC_EXPECTS(!graph.has_edge(u, v));
      }
    }
  }
  nodes_.resize(n);
  (void)add_instance(factory);
}

InstanceId ReferenceNetwork::add_instance(const ProcessFactory& factory) {
  AMAC_EXPECTS(!started_);
  const auto id = static_cast<InstanceId>(instances_.size());
  Instance inst;
  inst.nodes.resize(nodes_.size());
  for (NodeId u = 0; u < nodes_.size(); ++u) {
    inst.nodes[u].process = factory(u);
    AMAC_ENSURES(inst.nodes[u].process != nullptr);
    ++inst.undecided_alive;
  }
  undecided_alive_ += inst.undecided_alive;
  instances_.push_back(std::move(inst));
  return id;
}

void ReferenceNetwork::push_event(RefEvent e) {
  events_.push(std::move(e));
  if (events_.size() > stats_.peak_events) {
    stats_.peak_events = events_.size();
  }
}

void ReferenceNetwork::schedule_crash(const CrashPlan& plan) {
  AMAC_EXPECTS(plan.node < nodes_.size());
  AMAC_EXPECTS(!started_);
  push_event(RefEvent{plan.when, RefEventKind::kCrash, next_seq_++, plan.node,
                      kNoNode, 0, nullptr});
}

void ReferenceNetwork::set_link_faults(const LinkFaultPlan& plan) {
  AMAC_EXPECTS(!started_);
  faults_ = plan;
}

const Decision& ReferenceNetwork::decision(NodeId u,
                                           InstanceId instance) const {
  AMAC_EXPECTS(u < nodes_.size());
  AMAC_EXPECTS(instance < instances_.size());
  return instances_[instance].nodes[u].decision;
}

bool ReferenceNetwork::crashed(NodeId u) const {
  AMAC_EXPECTS(u < nodes_.size());
  return nodes_[u].crashed;
}

const InstanceStats& ReferenceNetwork::instance_stats(
    InstanceId instance) const {
  AMAC_EXPECTS(instance < instances_.size());
  return instances_[instance].stats;
}

Process& ReferenceNetwork::process(NodeId u, InstanceId instance) {
  AMAC_EXPECTS(u < nodes_.size());
  AMAC_EXPECTS(instance < instances_.size());
  return *instances_[instance].nodes[u].process;
}

const Process& ReferenceNetwork::process(NodeId u,
                                         InstanceId instance) const {
  AMAC_EXPECTS(u < nodes_.size());
  AMAC_EXPECTS(instance < instances_.size());
  return *instances_[instance].nodes[u].process;
}

bool ReferenceNetwork::all_alive_decided() const {
  return undecided_alive_ == 0;
}

bool ReferenceNetwork::instance_all_decided(InstanceId instance) const {
  AMAC_EXPECTS(instance < instances_.size());
  return instances_[instance].undecided_alive == 0;
}

std::size_t ReferenceNetwork::in_flight_from(NodeId sender) const {
  AMAC_EXPECTS(sender < nodes_.size());
  std::size_t count = 0;
  for (const auto& [id, flight] : flights_) {
    if (flight.sender == sender && flight.instance == 0) {
      count += flight.pending.size();
    }
  }
  return count;
}

void ReferenceNetwork::for_each_in_flight(
    const std::function<void(NodeId, NodeId, const util::Buffer&)>& fn) const {
  for (const auto& [id, flight] : flights_) {
    if (nodes_[flight.sender].crashed) continue;
    for (const NodeId receiver : flight.pending) {
      fn(flight.sender, receiver, *flight.payload);
    }
  }
}

void ReferenceNetwork::start_broadcast(NodeId u, InstanceId instance,
                                       const util::Buffer& payload) {
  if (nodes_[u].crashed) return;
  Instance& inst = instances_[instance];
  auto& st = inst.nodes[u];
  if (st.busy) {
    ++stats_.dropped_busy;
    ++inst.stats.dropped_busy;
    return;
  }
  st.busy = true;
  const std::uint64_t id = next_broadcast_id_++;
  st.current_broadcast = id;
  ++stats_.broadcasts;
  ++inst.stats.broadcasts;
  stats_.payload_bytes += payload.size();
  stats_.max_payload_bytes = std::max(stats_.max_payload_bytes,
                                      payload.size());
  inst.stats.payload_bytes += payload.size();
  inst.stats.max_payload_bytes = std::max(inst.stats.max_payload_bytes,
                                          payload.size());

  const auto& neighbors = graph_->neighbors(u);
  // Faithful to the original engine: one schedule allocation per broadcast.
  // (The schedule is SoA now, but this engine still walks it entry by entry
  // in emission order — identical event sequence, no fast paths.)
  BroadcastSchedule sched;
  scheduler_->schedule(u, now_, neighbors, sched);
  AMAC_ENSURES(sched.ack_delay >= 1);
  AMAC_ENSURES(sched.size() == neighbors.size());

  auto shared = std::make_shared<const util::Buffer>(payload);
  Flight flight;
  flight.sender = u;
  flight.payload = shared;
  flight.instance = instance;
  Time ack_at = now_ + sched.ack_delay;
  if (faults_.empty()) {
    for (std::size_t i = 0; i < sched.size(); ++i) {
      const NodeId v = sched.receivers[i];
      const Time delay = sched.delay(i);
      AMAC_ENSURES(delay >= 1 && delay <= sched.ack_delay);
      AMAC_ENSURES(graph_->has_edge(u, v));
      push_event(RefEvent{now_ + delay, RefEventKind::kDeliver, next_seq_++, v,
                          u, id, shared, instance, /*reliable=*/true});
      flight.pending.push_back(v);
      ++flight.undrained_events;
    }
  } else {
    // Identical fault partition and canonical emission order to the
    // calendar engine (kept at original ticks, then deferred, then
    // duplicates, index order within each group): the decisions are pure
    // hashes of the same inputs, so the two engines stay bit-identical.
    std::vector<LinkFaultDecision> decisions;
    decisions.reserve(sched.size());
    Time latest = 0;
    for (std::size_t i = 0; i < sched.size(); ++i) {
      const Time arrival = now_ + sched.delay(i);
      const LinkFaultDecision d =
          faults_.decide(id, u, sched.receivers[i], arrival);
      decisions.push_back(d);
      if (!d.deliver) {
        ++stats_.drops;
        ++inst.stats.drops;
        continue;
      }
      if (d.deliver_at != arrival) {
        ++stats_.drops;  // lost, retransmitted
        ++inst.stats.drops;
      }
      latest = std::max(latest, d.deliver_at);
      if (d.duplicate) {
        ++stats_.duplicates;
        ++inst.stats.duplicates;
        latest = std::max(latest, d.duplicate_at);
      }
    }
    ack_at = std::max(ack_at, latest);
    const auto emit = [&](NodeId v, Time t) {
      AMAC_ENSURES(graph_->has_edge(u, v));
      push_event(RefEvent{t, RefEventKind::kDeliver, next_seq_++, v, u, id,
                          shared, instance, /*reliable=*/true});
      flight.pending.push_back(v);
      ++flight.undrained_events;
    };
    for (std::size_t i = 0; i < sched.size(); ++i) {  // kept copies
      const LinkFaultDecision& d = decisions[i];
      if (!d.deliver || d.deliver_at != now_ + sched.delay(i)) continue;
      emit(sched.receivers[i], d.deliver_at);
    }
    for (std::size_t i = 0; i < sched.size(); ++i) {  // deferred copies
      const LinkFaultDecision& d = decisions[i];
      if (!d.deliver || d.deliver_at == now_ + sched.delay(i)) continue;
      emit(sched.receivers[i], d.deliver_at);
    }
    for (std::size_t i = 0; i < sched.size(); ++i) {  // duplicates
      const LinkFaultDecision& d = decisions[i];
      if (!d.deliver || !d.duplicate) continue;
      emit(sched.receivers[i], d.duplicate_at);
    }
  }
  if (overlay_ != nullptr && !overlay_->neighbors(u).empty()) {
    std::vector<std::pair<NodeId, Time>> best_effort;
    scheduler_->schedule_unreliable(u, now_, overlay_->neighbors(u),
                                    sched.ack_delay, best_effort);
    for (const auto& [v, delay] : best_effort) {
      AMAC_ENSURES(delay >= 1 && delay <= sched.ack_delay);
      AMAC_ENSURES(overlay_->has_edge(u, v));
      push_event(RefEvent{now_ + delay, RefEventKind::kDeliver, next_seq_++,
                          v, u, id, shared, instance, /*reliable=*/false});
      flight.pending.push_back(v);
      ++flight.undrained_events;
    }
  }
  // An all-dropped fan-out leaves no deliver event to drain the flight;
  // skip the table entry (the calendar engine acquires no flight slot
  // either).
  if (faults_.empty() || flight.undrained_events > 0) {
    flights_.emplace(id, std::move(flight));
  }
  push_event(RefEvent{ack_at, RefEventKind::kAck, next_seq_++,
                      u, kNoNode, id, nullptr, instance});
}

void ReferenceNetwork::trace_event(const RefEvent& e) {
  trace_hasher_.mix_u64(e.t);
  trace_hasher_.mix_u8(static_cast<std::uint8_t>(e.kind));
  trace_hasher_.mix_u64(e.seq);
  trace_hasher_.mix_u64(e.node);
  trace_hasher_.mix_u64(e.sender);
  trace_hasher_.mix_u64(e.broadcast_id);
  if (e.kind == RefEventKind::kDeliver) {
    trace_hasher_.mix_bytes(*e.payload);
    trace_hasher_.mix_bool(e.reliable);
  }
}

void ReferenceNetwork::process_event(const RefEvent& e) {
  switch (e.kind) {
    case RefEventKind::kCrash: {
      auto& st = nodes_[e.node];
      if (st.crashed) return;
      st.crashed = true;
      st.crash_time = now_;
      for (Instance& inst : instances_) {
        if (inst.nodes[e.node].decision.decided) continue;
        AMAC_ENSURES(inst.undecided_alive > 0);
        --inst.undecided_alive;
        AMAC_ENSURES(undecided_alive_ > 0);
        --undecided_alive_;
      }
      return;
    }
    case RefEventKind::kDeliver: {
      auto flight_it = flights_.find(e.broadcast_id);
      AMAC_ENSURES(flight_it != flights_.end());
      Flight& flight = flight_it->second;
      AMAC_ENSURES(flight.instance == e.instance);
      auto& pending = flight.pending;
      pending.erase(std::find(pending.begin(), pending.end(), e.node));
      const bool drained = --flight.undrained_events == 0;

      const auto& sender_st = nodes_[e.sender];
      const bool cancelled =
          sender_st.crashed && sender_st.crash_time < e.t;
      Instance& inst = instances_[e.instance];
      if (!cancelled && !nodes_[e.node].crashed) {
        ++stats_.deliveries;
        ++inst.stats.deliveries;
        NodeContext ctx(*this, e.node, e.instance);
        const Packet packet{e.sender, *e.payload, e.reliable};
        inst.nodes[e.node].process->on_receive(packet, ctx);
      }
      if (drained) flights_.erase(flight_it);
      return;
    }
    case RefEventKind::kAck: {
      if (nodes_[e.node].crashed) return;
      Instance& inst = instances_[e.instance];
      auto& st = inst.nodes[e.node];
      AMAC_ENSURES(st.busy && st.current_broadcast == e.broadcast_id);
      st.busy = false;
      ++stats_.acks;
      ++inst.stats.acks;
      NodeContext ctx(*this, e.node, e.instance);
      st.process->on_ack(ctx);
      return;
    }
  }
}

RunResult ReferenceNetwork::run(StopWhen until, Time max_time) {
  if (!started_) {
    started_ = true;
    // Instance-major start order, matching Network::run.
    for (InstanceId i = 0; i < instances_.size(); ++i) {
      for (NodeId u = 0; u < nodes_.size(); ++u) {
        NodeContext ctx(*this, u, i);
        instances_[i].nodes[u].process->on_start(ctx);
      }
    }
  }

  const auto condition_met = [&] {
    return until == StopWhen::kAllDecided && all_alive_decided();
  };

  while (!events_.empty()) {
    if (condition_met()) return RunResult{true, now_};
    const RefEvent e = events_.top();
    if (e.t > max_time) return RunResult{condition_met(), now_};
    events_.pop();
    AMAC_ENSURES(e.t >= now_);
    now_ = e.t;
    if (trace_enabled_) trace_event(e);
    process_event(e);
    if (post_event_hook_) post_event_hook_(*this);
  }
  // Queue drained: quiescent.
  const bool met = until == StopWhen::kQuiescent || all_alive_decided();
  return RunResult{met, now_};
}

}  // namespace amac::mac
