// The engine's event record and its total ordering contract.
//
// Every simulator event is a plain trivially-copyable value: no owning
// pointers, no refcounts. Deliver events reference their payload through a
// flight slot index (see engine.hpp) whose lifetime strictly covers the
// event's, so copying an Event during queue maintenance costs a handful of
// register moves instead of shared_ptr traffic.
//
// Ordering contract (identical for every queue implementation): events pop
// in ascending (t, kind, seq) order. `kind` breaks same-tick ties so that
// all deliveries precede acks (the abstract MAC layer guarantee that every
// neighbor receives a message no later than the sender's ack) and crashes
// come last at their tick (deliveries at the crash tick still occur). `seq`
// is a global push counter giving FIFO order within (t, kind).
#pragma once

#include <cstdint>

#include "mac/types.hpp"

namespace amac::mac {

/// Sentinel for "no flight slot" (ack and crash events carry no payload).
inline constexpr std::uint32_t kNoFlight = static_cast<std::uint32_t>(-1);

enum class EventKind : std::uint8_t { kDeliver = 0, kAck = 1, kCrash = 2 };

struct Event {
  Time t = 0;
  std::uint64_t seq = 0;           ///< FIFO tie-break within (t, kind)
  std::uint64_t broadcast_id = 0;  ///< deliver/ack: which broadcast
  std::uint32_t flight_slot = kNoFlight;  ///< deliver only: payload home
  NodeId node = kNoNode;  ///< receiver (deliver), sender (ack), crashee
  NodeId sender = kNoNode;                ///< deliver only
  /// Deliver/ack: the protocol instance that issued the broadcast (stored,
  /// not derived — an ack must find its instance's busy flag without an
  /// O(instances) scan). Crash events are node-level and leave it 0.
  InstanceId instance = 0;
  EventKind kind = EventKind::kDeliver;
  bool reliable = true;                   ///< deliver: edge class
};

/// True when `a` must pop strictly after `b` (min-heap comparator).
[[nodiscard]] constexpr bool event_after(const Event& a, const Event& b) {
  if (a.t != b.t) return a.t > b.t;
  if (a.kind != b.kind) return a.kind > b.kind;
  return a.seq > b.seq;
}

struct EventAfter {
  [[nodiscard]] constexpr bool operator()(const Event& a,
                                          const Event& b) const {
    return event_after(a, b);
  }
};

}  // namespace amac::mac
