// Slab pool of payload buffers reused across broadcasts.
//
// Every broadcast used to heap-allocate a shared_ptr<const Buffer> whose
// refcount was touched on each queue sift and delivery. The pool replaces
// that with slot indices: a broadcast copies its payload bytes into a
// reusable slot (vector::assign reuses capacity, so steady-state traffic
// allocates nothing), deliveries read the slot by reference, and the slot
// returns to the free list when its flight drains.
//
// Lifetime rules:
//   * a slot is acquired in start_broadcast and owned by exactly one
//     Flight; it is released when the flight's last deliver event drains
//     (or immediately for a broadcast with no receivers);
//   * the engine guarantees the slot outlives every deliver event of its
//     flight, so Events store the slot index with no refcount;
//   * slots live in a deque: references handed to Process::on_receive stay
//     valid even when a callback's own broadcast grows the pool.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "util/assert.hpp"
#include "util/serde.hpp"

namespace amac::mac {

class PayloadPool {
 public:
  /// Copies `bytes` into a free (or fresh) slot and returns its index.
  [[nodiscard]] std::uint32_t acquire(const util::Buffer& bytes) {
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
      ++reuses_;
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    ++acquires_;
    slots_[slot].assign(bytes.begin(), bytes.end());
    return slot;
  }

  [[nodiscard]] const util::Buffer& at(std::uint32_t slot) const {
    AMAC_EXPECTS(slot < slots_.size());
    return slots_[slot];
  }

  void release(std::uint32_t slot) {
    AMAC_EXPECTS(slot < slots_.size());
    free_.push_back(slot);
  }

  /// Slots ever created (high-water mark of concurrent payloads).
  [[nodiscard]] std::size_t slot_count() const { return slots_.size(); }
  /// Slots currently owned by live flights.
  [[nodiscard]] std::size_t live_count() const {
    return slots_.size() - free_.size();
  }
  [[nodiscard]] std::uint64_t acquires() const { return acquires_; }
  /// Acquires served by recycling an existing slot.
  [[nodiscard]] std::uint64_t reuses() const { return reuses_; }

 private:
  std::deque<util::Buffer> slots_;  ///< deque: stable element addresses
  std::vector<std::uint32_t> free_;
  std::uint64_t acquires_ = 0;
  std::uint64_t reuses_ = 0;
};

}  // namespace amac::mac
