#include "harness/experiment.hpp"

#include <numeric>

namespace amac::harness {

std::vector<mac::Value> inputs_all(std::size_t n, mac::Value v) {
  return std::vector<mac::Value>(n, v);
}

std::vector<mac::Value> inputs_alternating(std::size_t n) {
  std::vector<mac::Value> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<mac::Value>(i % 2);
  return v;
}

std::vector<mac::Value> inputs_split(std::size_t n) {
  std::vector<mac::Value> v(n, 0);
  for (std::size_t i = n / 2; i < n; ++i) v[i] = 1;
  return v;
}

std::vector<mac::Value> inputs_random(std::size_t n, util::Rng& rng) {
  std::vector<mac::Value> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<mac::Value>(rng.uniform(0, 1));
  }
  return v;
}

std::vector<mac::Value> inputs_multivalued(std::size_t n, mac::Value limit,
                                           util::Rng& rng) {
  AMAC_EXPECTS(limit >= 1);
  std::vector<mac::Value> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<mac::Value>(
        rng.uniform(0, static_cast<std::uint64_t>(limit) - 1));
  }
  return v;
}

std::vector<std::uint64_t> identity_ids(std::size_t n) {
  std::vector<std::uint64_t> ids(n);
  std::iota(ids.begin(), ids.end(), 0);
  return ids;
}

std::vector<std::uint64_t> permuted_ids(std::size_t n, util::Rng& rng) {
  auto ids = identity_ids(n);
  rng.shuffle(ids);
  return ids;
}

mac::ProcessFactory two_phase_factory(std::vector<mac::Value> inputs,
                                      bool literal_r2_check) {
  return [inputs = std::move(inputs), literal_r2_check](NodeId u) {
    AMAC_EXPECTS(u < inputs.size());
    return std::make_unique<core::TwoPhaseConsensus>(u, inputs[u],
                                                     literal_r2_check);
  };
}

mac::ProcessFactory flooding_factory(std::vector<mac::Value> inputs,
                                     std::size_t pairs_per_message) {
  const std::size_t n = inputs.size();
  return [inputs = std::move(inputs), n, pairs_per_message](NodeId u) {
    AMAC_EXPECTS(u < inputs.size());
    return std::make_unique<core::FloodingConsensus>(u, n, inputs[u],
                                                     pairs_per_message);
  };
}

mac::ProcessFactory wpaxos_factory(std::vector<mac::Value> inputs,
                                   std::vector<std::uint64_t> ids,
                                   core::wpaxos::WPaxosConfig config) {
  AMAC_EXPECTS(inputs.size() == ids.size());
  const std::size_t n = inputs.size();
  return [inputs = std::move(inputs), ids = std::move(ids), n,
          config](NodeId u) {
    AMAC_EXPECTS(u < inputs.size());
    return std::make_unique<core::wpaxos::WPaxos>(ids[u], n, inputs[u],
                                                  config);
  };
}

mac::ProcessFactory anonymous_factory(std::vector<mac::Value> inputs,
                                      std::uint32_t diameter) {
  return [inputs = std::move(inputs), diameter](NodeId u) {
    AMAC_EXPECTS(u < inputs.size());
    return std::make_unique<core::AnonymousMinFlood>(diameter, inputs[u]);
  };
}

mac::ProcessFactory stability_factory(std::vector<mac::Value> inputs,
                                      std::uint32_t diameter,
                                      std::vector<std::uint64_t> ids,
                                      std::size_t pairs_per_message) {
  AMAC_EXPECTS(inputs.size() == ids.size());
  return [inputs = std::move(inputs), ids = std::move(ids), diameter,
          pairs_per_message](NodeId u) {
    AMAC_EXPECTS(u < inputs.size());
    return std::make_unique<core::StabilityConsensus>(
        ids[u], diameter, inputs[u], pairs_per_message);
  };
}

mac::ProcessFactory benor_factory(std::vector<mac::Value> inputs,
                                  std::size_t f, std::uint64_t seed) {
  const std::size_t n = inputs.size();
  return [inputs = std::move(inputs), n, f, seed](NodeId u) {
    AMAC_EXPECTS(u < inputs.size());
    util::Hasher h;
    h.mix_u64(seed);
    h.mix_u64(u);
    return std::make_unique<core::BenOr>(n, f, inputs[u], h.digest());
  };
}

const char* algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::kTwoPhase: return "two_phase";
    case Algorithm::kFlooding: return "flooding";
    case Algorithm::kWPaxos: return "wpaxos";
    case Algorithm::kAnonymous: return "anonymous";
    case Algorithm::kStability: return "stability";
    case Algorithm::kBenOr: return "benor";
  }
  AMAC_ASSERT(false);
  return "?";
}

std::optional<Algorithm> algorithm_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kAlgorithmCount; ++i) {
    const auto a = static_cast<Algorithm>(i);
    if (name == algorithm_name(a)) return a;
  }
  return std::nullopt;
}

mac::ProcessFactory algorithm_factory(Algorithm algorithm,
                                      AlgorithmParams params) {
  AMAC_EXPECTS(params.ids.size() == params.inputs.size());
  switch (algorithm) {
    case Algorithm::kTwoPhase:
      return two_phase_factory(std::move(params.inputs));
    case Algorithm::kFlooding:
      return flooding_factory(std::move(params.inputs));
    case Algorithm::kWPaxos:
      return wpaxos_factory(std::move(params.inputs), std::move(params.ids),
                            params.wpaxos);
    case Algorithm::kAnonymous:
      return anonymous_factory(std::move(params.inputs), params.diameter);
    case Algorithm::kStability:
      return stability_factory(std::move(params.inputs), params.diameter,
                               std::move(params.ids));
    case Algorithm::kBenOr:
      return benor_factory(std::move(params.inputs), params.benor_f,
                           params.seed);
  }
  AMAC_ASSERT(false);
  return {};
}

mac::ProtocolStats collect_protocol_stats(const mac::Network& net) {
  mac::ProtocolStats stats;
  for (NodeId u = 0; u < net.node_count(); ++u) {
    net.process(u).protocol_stats(stats);
  }
  return stats;
}

mac::ProtocolStats collect_protocol_stats(const mac::Network& net,
                                          mac::InstanceId instance) {
  mac::ProtocolStats stats;
  for (NodeId u = 0; u < net.node_count(); ++u) {
    if (net.crashed(u)) continue;  // mid-run instances skip crashed nodes
    net.process(u, instance).protocol_stats(stats);
  }
  return stats;
}

Outcome run_consensus(const net::Graph& graph,
                      const mac::ProcessFactory& factory,
                      mac::Scheduler& scheduler,
                      const std::vector<mac::Value>& inputs,
                      mac::Time max_time) {
  mac::Network net(graph, factory, scheduler);
  const auto result = net.run(mac::StopWhen::kAllDecided, max_time);
  Outcome out;
  out.verdict = verify::check_consensus(net, inputs);
  out.stats = net.stats();
  out.end_time = result.end_time;
  return out;
}

}  // namespace amac::harness
