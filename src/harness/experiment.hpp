// Shared experiment plumbing for the bench binaries and integration tests:
// input patterns, id assignments, process factories for every algorithm in
// the library, and a one-call consensus runner.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "core/anonymous.hpp"
#include "core/benor.hpp"
#include "core/flooding.hpp"
#include "core/stability.hpp"
#include "core/two_phase.hpp"
#include "core/wpaxos/wpaxos.hpp"
#include "mac/engine.hpp"
#include "mac/schedulers.hpp"
#include "util/rng.hpp"
#include "verify/checker.hpp"

namespace amac::harness {

// ---- initial value patterns -------------------------------------------

[[nodiscard]] std::vector<mac::Value> inputs_all(std::size_t n, mac::Value v);
/// 0,1,0,1,... (worst case for agreement pressure).
[[nodiscard]] std::vector<mac::Value> inputs_alternating(std::size_t n);
/// First half 0, second half 1 (worst case for partition arguments).
[[nodiscard]] std::vector<mac::Value> inputs_split(std::size_t n);
[[nodiscard]] std::vector<mac::Value> inputs_random(std::size_t n,
                                                    util::Rng& rng);
/// Arbitrary-domain inputs in [0, limit) — for the general-value consensus
/// supported by wPAXOS and the flooding baseline (binary is the paper's
/// scope; PAXOS generalizes for free at an O(b)-bits message cost).
[[nodiscard]] std::vector<mac::Value> inputs_multivalued(std::size_t n,
                                                         mac::Value limit,
                                                         util::Rng& rng);

// ---- id assignments ----------------------------------------------------

/// ids[index] == index.
[[nodiscard]] std::vector<std::uint64_t> identity_ids(std::size_t n);
/// A random permutation of 0..n-1: moves the eventual wPAXOS leader (the
/// max id) to a random position in the topology.
[[nodiscard]] std::vector<std::uint64_t> permuted_ids(std::size_t n,
                                                      util::Rng& rng);

// ---- process factories -------------------------------------------------

[[nodiscard]] mac::ProcessFactory two_phase_factory(
    std::vector<mac::Value> inputs, bool literal_r2_check = false);

[[nodiscard]] mac::ProcessFactory flooding_factory(
    std::vector<mac::Value> inputs, std::size_t pairs_per_message = 2);

[[nodiscard]] mac::ProcessFactory wpaxos_factory(
    std::vector<mac::Value> inputs, std::vector<std::uint64_t> ids,
    core::wpaxos::WPaxosConfig config = {});

[[nodiscard]] mac::ProcessFactory anonymous_factory(
    std::vector<mac::Value> inputs, std::uint32_t diameter);

[[nodiscard]] mac::ProcessFactory stability_factory(
    std::vector<mac::Value> inputs, std::uint32_t diameter,
    std::vector<std::uint64_t> ids, std::size_t pairs_per_message = 2);

/// Ben-Or randomized consensus (crash-tolerant, f < n/2); per-node coin
/// seeds are derived from `seed`.
[[nodiscard]] mac::ProcessFactory benor_factory(std::vector<mac::Value> inputs,
                                                std::size_t f,
                                                std::uint64_t seed);

// ---- algorithm dispatch ------------------------------------------------
//
// Uniform handle on every consensus algorithm in the library, so sweeps
// (the fuzz generator, benches, tests) can quantify over "all algorithms"
// instead of hand-listing factories. Each enumerator's model assumptions
// (topology class, scheduler class, crash tolerance) are documented in the
// algorithm's own header; fuzz::generate_scenario is the one place that
// encodes which combinations the guarantees cover.

enum class Algorithm : std::uint8_t {
  kTwoPhase = 0,   ///< single hop (clique), no crashes, any scheduler
  kFlooding = 1,   ///< any connected graph, knows n, no crashes
  kWPaxos = 2,     ///< any connected graph; safe always, live without crashes
  kAnonymous = 3,  ///< synchronous scheduler only (Theorem 3.3 otherwise)
  kStability = 4,  ///< synchronous scheduler only (Theorem 3.9 otherwise)
  kBenOr = 5,      ///< clique; tolerates f < n/2 crashes (randomized)
};

inline constexpr std::size_t kAlgorithmCount = 6;

[[nodiscard]] const char* algorithm_name(Algorithm a);
[[nodiscard]] std::optional<Algorithm> algorithm_from_name(
    std::string_view name);

/// Everything any algorithm's factory might need; unused fields are ignored
/// per algorithm (e.g. `diameter` only matters to the D-knowledge ones).
struct AlgorithmParams {
  std::vector<mac::Value> inputs;
  std::vector<std::uint64_t> ids;  ///< same size as inputs
  std::uint32_t diameter = 0;      ///< anonymous/stability: the D bound
  std::size_t benor_f = 0;         ///< BenOr: crash-tolerance parameter
  std::uint64_t seed = 0;          ///< BenOr: coin-seed derivation base
  core::wpaxos::WPaxosConfig wpaxos;
};

/// One factory constructor for the whole suite.
[[nodiscard]] mac::ProcessFactory algorithm_factory(Algorithm algorithm,
                                                    AlgorithmParams params);

/// Aggregates mac::ProtocolStats over every node of a (typically finished)
/// network: depth fields max-merge, totals sum — see Process::protocol_stats.
/// A pure const read, so collecting it can never perturb a run (the fuzz
/// determinism regression pins this).
[[nodiscard]] mac::ProtocolStats collect_protocol_stats(
    const mac::Network& net);

/// Per-instance variant for multiplexed runs (mac/engine.hpp, "Instance
/// multiplexing"): aggregates over ONE instance's live processes. Crashed
/// nodes are skipped — instances added mid-run never construct processes
/// for already-crashed nodes. The instance must not be retired.
[[nodiscard]] mac::ProtocolStats collect_protocol_stats(
    const mac::Network& net, mac::InstanceId instance);

// ---- runner -------------------------------------------------------------

struct Outcome {
  verify::ConsensusVerdict verdict;
  mac::EngineStats stats;
  mac::Time end_time = 0;
};

/// Builds a network, runs it to all-decided (or max_time), and checks the
/// consensus properties against `inputs`.
[[nodiscard]] Outcome run_consensus(const net::Graph& graph,
                                    const mac::ProcessFactory& factory,
                                    mac::Scheduler& scheduler,
                                    const std::vector<mac::Value>& inputs,
                                    mac::Time max_time);

}  // namespace amac::harness
