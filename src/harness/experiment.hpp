// Shared experiment plumbing for the bench binaries and integration tests:
// input patterns, id assignments, process factories for every algorithm in
// the library, and a one-call consensus runner.
#pragma once

#include <cstdint>
#include <vector>

#include "core/anonymous.hpp"
#include "core/benor.hpp"
#include "core/flooding.hpp"
#include "core/stability.hpp"
#include "core/two_phase.hpp"
#include "core/wpaxos/wpaxos.hpp"
#include "mac/engine.hpp"
#include "mac/schedulers.hpp"
#include "util/rng.hpp"
#include "verify/checker.hpp"

namespace amac::harness {

// ---- initial value patterns -------------------------------------------

[[nodiscard]] std::vector<mac::Value> inputs_all(std::size_t n, mac::Value v);
/// 0,1,0,1,... (worst case for agreement pressure).
[[nodiscard]] std::vector<mac::Value> inputs_alternating(std::size_t n);
/// First half 0, second half 1 (worst case for partition arguments).
[[nodiscard]] std::vector<mac::Value> inputs_split(std::size_t n);
[[nodiscard]] std::vector<mac::Value> inputs_random(std::size_t n,
                                                    util::Rng& rng);
/// Arbitrary-domain inputs in [0, limit) — for the general-value consensus
/// supported by wPAXOS and the flooding baseline (binary is the paper's
/// scope; PAXOS generalizes for free at an O(b)-bits message cost).
[[nodiscard]] std::vector<mac::Value> inputs_multivalued(std::size_t n,
                                                         mac::Value limit,
                                                         util::Rng& rng);

// ---- id assignments ----------------------------------------------------

/// ids[index] == index.
[[nodiscard]] std::vector<std::uint64_t> identity_ids(std::size_t n);
/// A random permutation of 0..n-1: moves the eventual wPAXOS leader (the
/// max id) to a random position in the topology.
[[nodiscard]] std::vector<std::uint64_t> permuted_ids(std::size_t n,
                                                      util::Rng& rng);

// ---- process factories -------------------------------------------------

[[nodiscard]] mac::ProcessFactory two_phase_factory(
    std::vector<mac::Value> inputs, bool literal_r2_check = false);

[[nodiscard]] mac::ProcessFactory flooding_factory(
    std::vector<mac::Value> inputs, std::size_t pairs_per_message = 2);

[[nodiscard]] mac::ProcessFactory wpaxos_factory(
    std::vector<mac::Value> inputs, std::vector<std::uint64_t> ids,
    core::wpaxos::WPaxosConfig config = {});

[[nodiscard]] mac::ProcessFactory anonymous_factory(
    std::vector<mac::Value> inputs, std::uint32_t diameter);

[[nodiscard]] mac::ProcessFactory stability_factory(
    std::vector<mac::Value> inputs, std::uint32_t diameter,
    std::vector<std::uint64_t> ids, std::size_t pairs_per_message = 2);

/// Ben-Or randomized consensus (crash-tolerant, f < n/2); per-node coin
/// seeds are derived from `seed`.
[[nodiscard]] mac::ProcessFactory benor_factory(std::vector<mac::Value> inputs,
                                                std::size_t f,
                                                std::uint64_t seed);

// ---- runner -------------------------------------------------------------

struct Outcome {
  verify::ConsensusVerdict verdict;
  mac::EngineStats stats;
  mac::Time end_time = 0;
};

/// Builds a network, runs it to all-decided (or max_time), and checks the
/// consensus properties against `inputs`.
[[nodiscard]] Outcome run_consensus(const net::Graph& graph,
                                    const mac::ProcessFactory& factory,
                                    mac::Scheduler& scheduler,
                                    const std::vector<mac::Value>& inputs,
                                    mac::Time max_time);

}  // namespace amac::harness
