// Undirected network topology graph.
//
// The abstract MAC layer model (paper §2) fixes a connected undirected graph
// G = (V, E): vertices are wireless devices, edges are reliable-communication
// pairs. This class is the single topology representation used by the
// simulator, the algorithms' analysis hooks, and the lower-bound network
// constructions.
#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace amac {

/// Index of a node in a topology; nodes are always 0..n-1.
using NodeId = std::uint32_t;

/// Sentinel for "no node" (e.g. unset tree parents).
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

namespace net {

/// Simple undirected graph with adjacency lists. Immutable after
/// construction by convention: generators build it, everything else reads it.
class Graph {
 public:
  /// Creates a graph with n isolated nodes.
  explicit Graph(std::size_t n) : adj_(n) {}

  /// Adds the undirected edge {u, v}. Requires u != v, both in range, and
  /// the edge not already present.
  void add_edge(NodeId u, NodeId v);

  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const;

  [[nodiscard]] std::size_t node_count() const { return adj_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edge_count_; }

  /// Neighbors of u in ascending id order.
  [[nodiscard]] const std::vector<NodeId>& neighbors(NodeId u) const {
    AMAC_EXPECTS(u < adj_.size());
    return adj_[u];
  }

  [[nodiscard]] std::size_t degree(NodeId u) const {
    return neighbors(u).size();
  }

  /// BFS hop distances from src; unreachable nodes get kUnreachable.
  static constexpr std::uint32_t kUnreachable = static_cast<std::uint32_t>(-1);
  [[nodiscard]] std::vector<std::uint32_t> bfs_distances(NodeId src) const;

  /// Largest finite BFS distance from src. Requires connected graph.
  [[nodiscard]] std::uint32_t eccentricity(NodeId src) const;

  [[nodiscard]] bool is_connected() const;

  /// Exact diameter. Requires a connected, non-empty graph.
  ///
  /// Not all-pairs BFS: a double sweep establishes a lower bound, then an
  /// iFUB-style refinement (BFS from nodes in descending distance from a
  /// sweep-path midpoint, pruned by the bounds diam <= 2*level and
  /// diam <= 2*min-eccentricity-seen) closes the gap. The value returned is
  /// always the exact diameter — only the work is bounded differently: the
  /// topology families here (grids, tori, rings, trees, stars, geometric)
  /// converge in a handful of BFS passes, and complete graphs short-circuit
  /// without any, where the previous all-pairs loop was O(n^2 (n + m))
  /// (~10^10 ops on a 4096-clique, which made large scenario builds hang).
  [[nodiscard]] std::uint32_t diameter() const;

 private:
  std::vector<std::vector<NodeId>> adj_;
  std::size_t edge_count_ = 0;
};

}  // namespace net
}  // namespace amac
