#include "net/topologies.hpp"

#include <cmath>
#include <vector>

namespace amac::net {

Graph make_clique(std::size_t n) {
  AMAC_EXPECTS(n >= 1);
  Graph g(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) g.add_edge(u, v);
  }
  return g;
}

Graph make_line(std::size_t n) {
  AMAC_EXPECTS(n >= 1);
  Graph g(n);
  for (NodeId u = 0; u + 1 < n; ++u) g.add_edge(u, u + 1);
  return g;
}

Graph make_ring(std::size_t n) {
  AMAC_EXPECTS(n >= 3);
  Graph g(n);
  for (NodeId u = 0; u + 1 < n; ++u) g.add_edge(u, u + 1);
  g.add_edge(static_cast<NodeId>(n - 1), 0);
  return g;
}

Graph make_star(std::size_t n) {
  AMAC_EXPECTS(n >= 2);
  Graph g(n);
  for (NodeId u = 1; u < n; ++u) g.add_edge(0, u);
  return g;
}

Graph make_grid(std::size_t width, std::size_t height) {
  AMAC_EXPECTS(width >= 1 && height >= 1);
  Graph g(width * height);
  const auto id = [width](std::size_t x, std::size_t y) {
    return static_cast<NodeId>(y * width + x);
  };
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      if (x + 1 < width) g.add_edge(id(x, y), id(x + 1, y));
      if (y + 1 < height) g.add_edge(id(x, y), id(x, y + 1));
    }
  }
  return g;
}

Graph make_torus(std::size_t width, std::size_t height) {
  AMAC_EXPECTS(width >= 3 && height >= 3);
  Graph g(width * height);
  const auto id = [width](std::size_t x, std::size_t y) {
    return static_cast<NodeId>(y * width + x);
  };
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      g.add_edge(id(x, y), id((x + 1) % width, y));
      g.add_edge(id(x, y), id(x, (y + 1) % height));
    }
  }
  return g;
}

Graph make_binary_tree(std::size_t n) {
  AMAC_EXPECTS(n >= 1);
  Graph g(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t left = 2 * i + 1;
    const std::size_t right = 2 * i + 2;
    if (left < n) g.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(left));
    if (right < n) {
      g.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(right));
    }
  }
  return g;
}

Graph make_barbell(std::size_t k, std::size_t path_len) {
  AMAC_EXPECTS(k >= 1 && path_len >= 1);
  // Layout: [0, k) left clique, [k, k+path_len-1) path interior,
  // [k+path_len-1, 2k+path_len-1) right clique.
  const std::size_t n = 2 * k + path_len - 1;
  Graph g(n);
  for (NodeId u = 0; u < k; ++u) {
    for (NodeId v = u + 1; v < k; ++v) g.add_edge(u, v);
  }
  const NodeId right_start = static_cast<NodeId>(k + path_len - 1);
  for (NodeId u = right_start; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) g.add_edge(u, v);
  }
  // Path from left clique's node 0 through the interior to the right clique's
  // first node.
  NodeId prev = 0;
  for (std::size_t i = 0; i < path_len; ++i) {
    const NodeId next = static_cast<NodeId>(k + i);
    g.add_edge(prev, next);
    prev = next;
  }
  AMAC_ENSURES(g.is_connected());
  return g;
}

Graph make_random_connected(std::size_t n, double p, util::Rng& rng) {
  AMAC_EXPECTS(n >= 1);
  AMAC_EXPECTS(p >= 0.0 && p <= 1.0);
  Graph g(n);
  // Random spanning tree: attach each node to a uniformly random earlier one.
  for (NodeId u = 1; u < n; ++u) {
    const NodeId parent = static_cast<NodeId>(rng.uniform(0, u - 1));
    g.add_edge(parent, u);
  }
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (!g.has_edge(u, v) && rng.chance(p)) g.add_edge(u, v);
    }
  }
  AMAC_ENSURES(g.is_connected());
  return g;
}

Graph make_random_geometric(std::size_t n, double radius, util::Rng& rng) {
  AMAC_EXPECTS(n >= 1);
  AMAC_EXPECTS(radius > 0.0);
  std::vector<double> xs(n);
  std::vector<double> ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = rng.uniform01();
    ys[i] = rng.uniform01();
  }
  for (double r = radius;; r *= 1.1) {
    Graph g(n);
    const double r2 = r * r;
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = u + 1; v < n; ++v) {
        const double dx = xs[u] - xs[v];
        const double dy = ys[u] - ys[v];
        if (dx * dx + dy * dy <= r2) g.add_edge(u, v);
      }
    }
    if (g.is_connected()) return g;
  }
}

}  // namespace amac::net
