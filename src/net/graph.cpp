#include "net/graph.hpp"

#include <algorithm>
#include <queue>

namespace amac::net {

void Graph::add_edge(NodeId u, NodeId v) {
  AMAC_EXPECTS(u < adj_.size() && v < adj_.size());
  AMAC_EXPECTS(u != v);
  AMAC_EXPECTS(!has_edge(u, v));
  // Keep adjacency sorted so iteration order (and therefore every simulated
  // execution) is deterministic.
  const auto insert_sorted = [](std::vector<NodeId>& vec, NodeId x) {
    vec.insert(std::lower_bound(vec.begin(), vec.end(), x), x);
  };
  insert_sorted(adj_[u], v);
  insert_sorted(adj_[v], u);
  ++edge_count_;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  AMAC_EXPECTS(u < adj_.size() && v < adj_.size());
  const auto& nu = adj_[u];
  return std::binary_search(nu.begin(), nu.end(), v);
}

std::vector<std::uint32_t> Graph::bfs_distances(NodeId src) const {
  AMAC_EXPECTS(src < adj_.size());
  std::vector<std::uint32_t> dist(adj_.size(), kUnreachable);
  std::queue<NodeId> frontier;
  dist[src] = 0;
  frontier.push(src);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const NodeId v : adj_[u]) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

std::uint32_t Graph::eccentricity(NodeId src) const {
  const auto dist = bfs_distances(src);
  std::uint32_t ecc = 0;
  for (const auto d : dist) {
    AMAC_EXPECTS(d != kUnreachable);
    ecc = std::max(ecc, d);
  }
  return ecc;
}

bool Graph::is_connected() const {
  if (adj_.empty()) return true;
  const auto dist = bfs_distances(0);
  return std::none_of(dist.begin(), dist.end(), [](std::uint32_t d) {
    return d == kUnreachable;
  });
}

std::uint32_t Graph::diameter() const {
  AMAC_EXPECTS(!adj_.empty());
  std::uint32_t diam = 0;
  for (NodeId u = 0; u < adj_.size(); ++u) {
    diam = std::max(diam, eccentricity(u));
  }
  return diam;
}

}  // namespace amac::net
