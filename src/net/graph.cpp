#include "net/graph.hpp"

#include <algorithm>
#include <queue>

namespace amac::net {

void Graph::add_edge(NodeId u, NodeId v) {
  AMAC_EXPECTS(u < adj_.size() && v < adj_.size());
  AMAC_EXPECTS(u != v);
  AMAC_EXPECTS(!has_edge(u, v));
  // Keep adjacency sorted so iteration order (and therefore every simulated
  // execution) is deterministic.
  const auto insert_sorted = [](std::vector<NodeId>& vec, NodeId x) {
    vec.insert(std::lower_bound(vec.begin(), vec.end(), x), x);
  };
  insert_sorted(adj_[u], v);
  insert_sorted(adj_[v], u);
  ++edge_count_;
}

bool Graph::has_edge(NodeId u, NodeId v) const {
  AMAC_EXPECTS(u < adj_.size() && v < adj_.size());
  const auto& nu = adj_[u];
  return std::binary_search(nu.begin(), nu.end(), v);
}

std::vector<std::uint32_t> Graph::bfs_distances(NodeId src) const {
  AMAC_EXPECTS(src < adj_.size());
  std::vector<std::uint32_t> dist(adj_.size(), kUnreachable);
  std::queue<NodeId> frontier;
  dist[src] = 0;
  frontier.push(src);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const NodeId v : adj_[u]) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

std::uint32_t Graph::eccentricity(NodeId src) const {
  const auto dist = bfs_distances(src);
  std::uint32_t ecc = 0;
  for (const auto d : dist) {
    AMAC_EXPECTS(d != kUnreachable);
    ecc = std::max(ecc, d);
  }
  return ecc;
}

bool Graph::is_connected() const {
  if (adj_.empty()) return true;
  const auto dist = bfs_distances(0);
  return std::none_of(dist.begin(), dist.end(), [](std::uint32_t d) {
    return d == kUnreachable;
  });
}

std::uint32_t Graph::diameter() const {
  AMAC_EXPECTS(!adj_.empty());
  const std::size_t n = adj_.size();
  if (n == 1) return 0;
  // Complete graph: diameter 1 with no BFS at all. The level rule below
  // cannot prune a clique (every vertex sits at level 1) and each clique
  // BFS costs O(n^2), so this is the one shape that needs a shortcut.
  if (edge_count_ == n * (n - 1) / 2) return 1;

  const auto farthest = [](const std::vector<std::uint32_t>& dist) {
    NodeId best = 0;
    for (NodeId v = 0; v < dist.size(); ++v) {
      AMAC_EXPECTS(dist[v] != kUnreachable);
      if (dist[v] > dist[best]) best = v;
    }
    return best;
  };

  // Double sweep from a max-degree vertex: d(a, b) is the classic strong
  // diameter lower bound; every BFS also yields the upper bound
  // diam <= 2*ecc(x) (any a'-b' path detours through x).
  NodeId u0 = 0;
  for (NodeId u = 1; u < n; ++u) {
    if (adj_[u].size() > adj_[u0].size()) u0 = u;
  }
  const auto dist_u0 = bfs_distances(u0);
  const NodeId a = farthest(dist_u0);
  const auto dist_a = bfs_distances(a);
  const NodeId b = farthest(dist_a);
  const std::uint32_t d_ab = dist_a[b];
  std::uint32_t lb = d_ab;
  std::uint32_t ub = 2 * std::min(dist_u0[a], d_ab);
  if (lb >= ub) return lb;

  const auto dist_b = bfs_distances(b);
  const std::uint32_t ecc_b = dist_b[farthest(dist_b)];
  lb = std::max(lb, ecc_b);
  ub = std::min(ub, 2 * ecc_b);
  if (lb >= ub) return lb;

  // iFUB refinement from the sweep-path midpoint r (on a shortest a-b path,
  // as close to d_ab/2 from a as possible; lowest id on ties so the scan is
  // deterministic). Vertices are processed in descending BFS level from r:
  // once every vertex above level i has its exact eccentricity folded into
  // lb, any remaining pair meets through r in <= 2i hops, so lb >= 2i
  // proves lb is the diameter.
  NodeId r = a;
  std::uint32_t best_off = kUnreachable;
  const std::uint32_t half = d_ab / 2;
  for (NodeId x = 0; x < n; ++x) {
    if (dist_a[x] + dist_b[x] != d_ab) continue;  // not on a shortest path
    const std::uint32_t off =
        dist_a[x] > half ? dist_a[x] - half : half - dist_a[x];
    if (off < best_off) {
      best_off = off;
      r = x;
    }
  }
  const auto dist_r = bfs_distances(r);
  const std::uint32_t ecc_r = dist_r[farthest(dist_r)];
  lb = std::max(lb, ecc_r);
  ub = std::min(ub, 2 * ecc_r);
  if (lb >= ub) return lb;

  std::vector<std::vector<NodeId>> levels(ecc_r + 1);
  for (NodeId x = 0; x < n; ++x) levels[dist_r[x]].push_back(x);
  for (std::uint32_t i = ecc_r; i > 0; --i) {
    if (lb >= 2 * i) return lb;
    for (const NodeId x : levels[i]) {
      const auto dx = bfs_distances(x);
      const std::uint32_t ecc_x = dx[farthest(dx)];
      lb = std::max(lb, ecc_x);
      ub = std::min(ub, 2 * ecc_x);
      if (lb >= ub) return lb;
    }
  }
  return lb;
}

}  // namespace amac::net
