#include "net/paper_networks.hpp"

namespace amac::net {

std::vector<GadgetLayout::Edge> GadgetLayout::edges() const {
  AMAC_EXPECTS(d >= 2);
  AMAC_EXPECTS(k >= 1);
  std::vector<Edge> es;
  // c — p_j and p_j — a1; the p_j—a1 orbit carries the lift shift j.
  for (std::size_t j = 0; j < 3; ++j) {
    es.push_back({c(), p(j), 0});
    es.push_back({p(j), a(1), static_cast<int>(j)});
  }
  // Spine a_1 — a_2 — ... — a_d.
  for (std::size_t i = 1; i < d; ++i) es.push_back({a(i), a(i + 1), 0});
  // s-fan in parallel with the a_{d-1} — a_d spine edge.
  for (std::size_t j = 1; j <= k; ++j) {
    es.push_back({a(d - 1), s(j), 0});
    es.push_back({s(j), a(d), 0});
  }
  return es;
}

NodeId Figure1Networks::a_node(int g, std::size_t local) const {
  AMAC_EXPECTS(g == 0 || g == 1);
  AMAC_EXPECTS(local < layout.size());
  return static_cast<NodeId>(static_cast<std::size_t>(g) * layout.size() +
                             local);
}

NodeId Figure1Networks::b_node(int copy, std::size_t local) const {
  AMAC_EXPECTS(copy >= 0 && copy < 3);
  AMAC_EXPECTS(local < layout.size());
  return static_cast<NodeId>(static_cast<std::size_t>(copy) * layout.size() +
                             local);
}

int Figure1Networks::b_copy(NodeId v) const {
  AMAC_EXPECTS(v < b.node_count());
  return static_cast<int>(v / layout.size());
}

std::size_t Figure1Networks::b_local(NodeId v) const {
  AMAC_EXPECTS(v < b.node_count());
  return v % layout.size();
}

Figure1Networks make_figure1(std::uint32_t diameter, std::size_t k) {
  AMAC_EXPECTS(diameter >= 6 && diameter % 2 == 0);
  AMAC_EXPECTS(k >= 1);

  Figure1Networks out;
  out.layout.d = (diameter - 2) / 2;
  out.layout.k = k;
  const GadgetLayout& lay = out.layout;
  const std::size_t sz = lay.size();
  const auto edges = lay.edges();

  // n' = 3 * gadget size = 3((D-2)/2 + k) + 12, the paper's Claim 3.4 value.
  out.size = 3 * sz;

  // --- Network A: gadgets occupy [0, sz) and [sz, 2sz); q = 2sz; the
  // padding clique C occupies (2sz, 3sz).
  Graph a(out.size);
  for (int g = 0; g < 2; ++g) {
    for (const auto& e : edges) {
      a.add_edge(out.a_node(g, e.u), out.a_node(g, e.v));
    }
  }
  out.q = static_cast<NodeId>(2 * sz);
  // q attaches to the three p-fan nodes of each gadget...
  for (int g = 0; g < 2; ++g) {
    for (std::size_t j = 0; j < 3; ++j) {
      a.add_edge(out.q, out.a_node(g, lay.p(j)));
    }
  }
  // ...and to every node of the clique C (|C| = sz - 1).
  for (NodeId u = out.q + 1; u < out.size; ++u) {
    out.clique.push_back(u);
    a.add_edge(out.q, u);
    for (NodeId v = u + 1; v < out.size; ++v) a.add_edge(u, v);
  }

  // --- Network B: the 3-lift. Copy i occupies [i*sz, (i+1)*sz).
  Graph b(out.size);
  for (int copy = 0; copy < 3; ++copy) {
    for (const auto& e : edges) {
      const int target = (copy + e.shift) % 3;
      b.add_edge(out.b_node(copy, e.u), out.b_node(target, e.v));
    }
  }

  AMAC_ENSURES(a.is_connected());
  AMAC_ENSURES(b.is_connected());
  const std::uint32_t da = a.diameter();
  const std::uint32_t db = b.diameter();
  AMAC_ENSURES(da == diameter);
  AMAC_ENSURES(db == diameter);

  out.diameter = diameter;
  out.a = std::move(a);
  out.b = std::move(b);
  return out;
}

Figure1Networks make_figure1_for_size(std::size_t n, std::uint32_t diameter) {
  AMAC_EXPECTS(diameter >= 6 && diameter % 2 == 0);
  const std::size_t d = (diameter - 2) / 2;
  std::size_t k = 1;
  while (3 * (d + k) + 12 < n) ++k;
  return make_figure1(diameter, k);
}

Figure2Network make_figure2(std::uint32_t diameter) {
  AMAC_EXPECTS(diameter >= 2);
  const std::uint32_t d = diameter;

  Figure2Network out;
  out.diameter = d;
  out.ld = Graph(d + 1);
  for (NodeId u = 0; u + 1 < d + 1; ++u) out.ld.add_edge(u, u + 1);

  // K_D layout: L1 occupies [0, d+1), L2 occupies [d+1, 2d+2), the bridge
  // line L_{D-1} occupies [2d+2, 3d+2) with its w endpoint first.
  const std::size_t n = 2 * (d + 1) + d;
  Graph kd(n);
  for (std::uint32_t i = 0; i <= d; ++i) {
    out.l1.push_back(static_cast<NodeId>(i));
    out.l2.push_back(static_cast<NodeId>(d + 1 + i));
  }
  for (std::uint32_t i = 0; i < d; ++i) {
    out.bridge_line.push_back(static_cast<NodeId>(2 * d + 2 + i));
  }
  for (std::uint32_t i = 0; i < d; ++i) {
    kd.add_edge(out.l1[i], out.l1[i + 1]);
    kd.add_edge(out.l2[i], out.l2[i + 1]);
  }
  for (std::uint32_t i = 0; i + 1 < d; ++i) {
    kd.add_edge(out.bridge_line[i], out.bridge_line[i + 1]);
  }
  const NodeId w = out.bridge_line.front();
  for (const NodeId u : out.l1) kd.add_edge(u, w);
  for (const NodeId u : out.l2) kd.add_edge(u, w);

  AMAC_ENSURES(kd.is_connected());
  AMAC_ENSURES(kd.diameter() == d);
  AMAC_ENSURES(out.ld.diameter() == d);
  out.kd = std::move(kd);
  return out;
}

}  // namespace amac::net
