// The lower-bound network constructions of the paper.
//
// Figure 1 (Theorem 3.3, anonymity): a "gadget" graph, Network A (two
// disjoint gadget copies joined through a bridge node q plus a padding
// clique C), and Network B (a connected 3-lift / covering graph of the
// gadget). The proof needs exactly three properties, all machine-checked by
// tests and asserted here:
//   * property (*): B is a covering graph of the gadget — for every gadget
//     node u and copy u_i, and every gadget edge {u, v}, u_i has exactly one
//     B-neighbor in {v_1, v_2, v_3} and no other edges;
//   * Claim 3.4: |A| = |B| = n' = 3((D-2)/2 + k) + 12 and
//     diam(A) = diam(B) = D;
//   * symmetry: the two gadgets of A are disjoint and only reachable from
//     each other through q.
//
// Reconstruction note: the arXiv source's figure is partially garbled, so
// the exact wiring is reconstructed from the size/diameter accounting in the
// text. Gadget: c — {p0,p1,p2} — a1 — a2 — ... — a_d, with a k-node parallel
// fan {s_1..s_k} between a_{d-1} and a_d for size padding (d = (D-2)/2). In
// A, the bridge q attaches to the six p-fan nodes (three per gadget) and to
// every node of the clique C (|C| = d+k+3). In B, every gadget edge lifts to
// the identity matching except the p_j—a1 orbit, which is lifted with cyclic
// shift j; this interconnects the three copies at exactly the cost that q
// imposes in A, which is what makes the diameters agree. With this wiring
// both n' and D match the paper's formulas exactly.
//
// Figure 2 (Theorem 3.9, knowledge of n): the K_D network — two copies of
// the line L_D (D+1 nodes each) plus a line L_{D-1} (D nodes), with an edge
// from every node of both L_D copies to one fixed endpoint of L_{D-1}.
#pragma once

#include <cstdint>

#include "net/graph.hpp"

namespace amac::net {

/// Gadget node roles for Figure 1 (local indices within one gadget copy).
struct GadgetLayout {
  std::size_t d = 0;  ///< spine length (a1..a_d); d = (D-2)/2
  std::size_t k = 0;  ///< size of the s padding fan

  [[nodiscard]] std::size_t size() const { return d + k + 4; }

  [[nodiscard]] std::size_t c() const { return 0; }
  /// p-fan node j, j in {0,1,2} (the paper's a+ nodes).
  [[nodiscard]] std::size_t p(std::size_t j) const {
    AMAC_EXPECTS(j < 3);
    return 1 + j;
  }
  /// Spine node a_i, i in [1, d].
  [[nodiscard]] std::size_t a(std::size_t i) const {
    AMAC_EXPECTS(i >= 1 && i <= d);
    return 3 + i;
  }
  /// s-fan node j, j in [1, k] (the paper's a* nodes).
  [[nodiscard]] std::size_t s(std::size_t j) const {
    AMAC_EXPECTS(j >= 1 && j <= k);
    return 3 + d + j;
  }

  /// One gadget edge together with the copy shift its lift uses in B.
  struct Edge {
    std::size_t u;
    std::size_t v;
    int shift;  ///< B connects u in copy i to v in copy (i + shift) mod 3
  };
  [[nodiscard]] std::vector<Edge> edges() const;
};

/// The Figure 1 pair (Network A, Network B) plus role bookkeeping.
struct Figure1Networks {
  GadgetLayout layout;
  std::uint32_t diameter = 0;  ///< D, shared by A and B (checked)
  std::size_t size = 0;        ///< n', shared by A and B

  Graph a{0};
  Graph b{0};

  NodeId q = kNoNode;           ///< bridge node in A
  std::vector<NodeId> clique;   ///< the padding clique C in A

  /// A-node of gadget copy g (g in {0,1}) at gadget-local index `local`.
  [[nodiscard]] NodeId a_node(int g, std::size_t local) const;
  /// B-node of lift copy i (i in {0,1,2}) at gadget-local index `local`.
  [[nodiscard]] NodeId b_node(int copy, std::size_t local) const;
  /// Inverse of b_node: the copy holding B-node `v`.
  [[nodiscard]] int b_copy(NodeId v) const;
  /// Inverse of b_node: the gadget-local index of B-node `v`.
  [[nodiscard]] std::size_t b_local(NodeId v) const;
};

/// Builds the Figure 1 pair for an even diameter D >= 6 and fan size k >= 1.
/// Postconditions: equal sizes, equal diameters, covering property.
[[nodiscard]] Figure1Networks make_figure1(std::uint32_t diameter,
                                           std::size_t k);

/// The paper's Theorem 3.3 recipe: given a target size n and even diameter
/// D, picks the smallest k >= 1 with n' = 3((D-2)/2 + k) + 12 >= n.
[[nodiscard]] Figure1Networks make_figure1_for_size(std::size_t n,
                                                    std::uint32_t diameter);

/// The Figure 2 network K_D plus the standalone L_D line it is compared to.
struct Figure2Network {
  std::uint32_t diameter = 0;  ///< D (checked for kd; ld has the same D)

  Graph kd{0};  ///< the composite network K_D
  Graph ld{0};  ///< a standalone line L_D (D+1 nodes), diameter D

  std::vector<NodeId> l1;           ///< K_D ids of the first L_D copy
  std::vector<NodeId> l2;           ///< K_D ids of the second L_D copy
  std::vector<NodeId> bridge_line;  ///< K_D ids of L_{D-1}; [0] is the
                                    ///< endpoint w adjacent to both copies
};

/// Builds K_D for D >= 2.
[[nodiscard]] Figure2Network make_figure2(std::uint32_t diameter);

}  // namespace amac::net
