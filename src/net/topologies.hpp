// Standard topology generators used by the experiments.
//
// Every generator returns a connected graph (asserted) with deterministic
// structure; the randomized ones are deterministic functions of their Rng.
#pragma once

#include "net/graph.hpp"
#include "util/rng.hpp"

namespace amac::net {

/// Complete graph K_n (the paper's "single hop" topology). Requires n >= 1.
[[nodiscard]] Graph make_clique(std::size_t n);

/// Path 0-1-...-(n-1); diameter n-1. Requires n >= 1.
[[nodiscard]] Graph make_line(std::size_t n);

/// Cycle of n nodes; diameter floor(n/2). Requires n >= 3.
[[nodiscard]] Graph make_ring(std::size_t n);

/// Star: node 0 is the hub. Requires n >= 2.
[[nodiscard]] Graph make_star(std::size_t n);

/// width x height grid; node (x, y) = y*width + x. Requires width,height >= 1.
[[nodiscard]] Graph make_grid(std::size_t width, std::size_t height);

/// width x height torus (grid with wraparound). Requires width,height >= 3.
[[nodiscard]] Graph make_torus(std::size_t width, std::size_t height);

/// Complete binary tree with n nodes (heap layout: children 2i+1, 2i+2).
[[nodiscard]] Graph make_binary_tree(std::size_t n);

/// Two cliques of k nodes joined by a path of path_len edges; models a dense
/// deployment with a thin backhaul. Requires k >= 1, path_len >= 1.
[[nodiscard]] Graph make_barbell(std::size_t k, std::size_t path_len);

/// Erdos-Renyi G(n, p) conditioned on connectivity: a random spanning tree is
/// laid down first, then each remaining pair is added with probability p.
[[nodiscard]] Graph make_random_connected(std::size_t n, double p,
                                          util::Rng& rng);

/// Random geometric graph on the unit square: nodes connect within `radius`.
/// The radius is grown (by 10% steps) until connected, mirroring how ad hoc
/// wireless deployments are densified until they form one network.
[[nodiscard]] Graph make_random_geometric(std::size_t n, double radius,
                                          util::Rng& rng);

}  // namespace amac::net
