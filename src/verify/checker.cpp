#include "verify/checker.hpp"

#include <algorithm>
#include <sstream>

namespace amac::verify {

std::string ConsensusVerdict::summary() const {
  std::ostringstream os;
  os << (termination ? "terminated" : "NOT-terminated") << ", "
     << (agreement ? "agreement" : "AGREEMENT-VIOLATED") << ", "
     << (validity ? "valid" : "VALIDITY-VIOLATED");
  if (decision) os << ", decided " << *decision << " by t=" << last_decision;
  return os.str();
}

ConsensusVerdict check_consensus(const mac::Network& net,
                                 const std::vector<mac::Value>& inputs) {
  AMAC_EXPECTS(inputs.size() == net.node_count());
  ConsensusVerdict v;
  v.termination = true;
  v.agreement = true;
  v.validity = true;

  bool any_decision = false;
  mac::Value common = -1;
  for (NodeId u = 0; u < net.node_count(); ++u) {
    const auto& d = net.decision(u);
    if (net.crashed(u)) continue;
    if (!d.decided) {
      v.termination = false;
      continue;
    }
    if (std::none_of(inputs.begin(), inputs.end(),
                     [&](mac::Value in) { return in == d.value; })) {
      v.validity = false;
    }
    if (!any_decision) {
      any_decision = true;
      common = d.value;
      v.first_decision = d.time;
      v.last_decision = d.time;
    } else {
      if (d.value != common) v.agreement = false;
      v.first_decision = std::min(v.first_decision, d.time);
      v.last_decision = std::max(v.last_decision, d.time);
    }
  }
  // Crashed nodes may have decided before crashing; agreement covers them.
  for (NodeId u = 0; u < net.node_count(); ++u) {
    const auto& d = net.decision(u);
    if (net.crashed(u) && d.decided) {
      if (any_decision && d.value != common) v.agreement = false;
      if (!any_decision) {
        any_decision = true;
        common = d.value;
      }
    }
  }
  if (any_decision && v.agreement) v.decision = common;
  return v;
}

}  // namespace amac::verify
