#include "verify/checker.hpp"

#include <algorithm>
#include <sstream>

#include "mac/reference_engine.hpp"

namespace amac::verify {

std::string ConsensusVerdict::summary() const {
  std::ostringstream os;
  os << (termination ? "terminated" : "NOT-terminated") << ", "
     << (agreement ? "agreement" : "AGREEMENT-VIOLATED") << ", "
     << (validity ? "valid" : "VALIDITY-VIOLATED");
  if (decision) os << ", decided " << *decision << " by t=" << last_decision;
  return os.str();
}

void ConsensusVerdict::digest(util::Hasher& h) const {
  h.mix_bool(termination);
  h.mix_bool(agreement);
  h.mix_bool(validity);
  h.mix_bool(decision.has_value());
  h.mix_i64(decision.value_or(-1));
  h.mix_u64(first_decision);
  h.mix_u64(last_decision);
}

namespace {

/// Shared implementation over any engine exposing node_count / crashed
/// (mac::Network and mac::ReferenceNetwork); `decision_of` maps a node to
/// the mac::Decision under judgment, which is how the same logic serves
/// both the instance-0 legacy oracle and the per-instance one.
template <typename Net, typename DecisionOf>
ConsensusVerdict check_consensus_impl(const Net& net,
                                      const std::vector<mac::Value>& inputs,
                                      const DecisionOf& decision_of) {
  AMAC_EXPECTS(inputs.size() == net.node_count());
  ConsensusVerdict v;
  v.termination = true;
  v.agreement = true;
  v.validity = true;

  bool any_decision = false;
  mac::Value common = -1;
  for (NodeId u = 0; u < net.node_count(); ++u) {
    const auto& d = decision_of(u);
    if (net.crashed(u)) continue;
    if (!d.decided) {
      v.termination = false;
      continue;
    }
    if (std::none_of(inputs.begin(), inputs.end(),
                     [&](mac::Value in) { return in == d.value; })) {
      v.validity = false;
    }
    if (!any_decision) {
      any_decision = true;
      common = d.value;
      v.first_decision = d.time;
      v.last_decision = d.time;
    } else {
      if (d.value != common) v.agreement = false;
      v.first_decision = std::min(v.first_decision, d.time);
      v.last_decision = std::max(v.last_decision, d.time);
    }
  }
  // Crashed nodes may have decided before crashing; agreement and validity
  // cover those decisions too (a decision is irrevocable the moment it is
  // made — a later crash cannot retract it).
  for (NodeId u = 0; u < net.node_count(); ++u) {
    const auto& d = decision_of(u);
    if (net.crashed(u) && d.decided) {
      if (std::none_of(inputs.begin(), inputs.end(),
                       [&](mac::Value in) { return in == d.value; })) {
        v.validity = false;
      }
      if (any_decision && d.value != common) v.agreement = false;
      if (!any_decision) {
        any_decision = true;
        common = d.value;
      }
    }
  }
  if (any_decision && v.agreement) v.decision = common;
  return v;
}

}  // namespace

ConsensusVerdict check_consensus(const mac::Network& net,
                                 const std::vector<mac::Value>& inputs) {
  return check_consensus_impl(
      net, inputs, [&](NodeId u) -> const mac::Decision& {
        return net.decision(u);
      });
}

ConsensusVerdict check_consensus(const mac::ReferenceNetwork& net,
                                 const std::vector<mac::Value>& inputs) {
  return check_consensus_impl(
      net, inputs, [&](NodeId u) -> const mac::Decision& {
        return net.decision(u);
      });
}

ConsensusVerdict check_consensus(const mac::Network& net,
                                 mac::InstanceId instance,
                                 const std::vector<mac::Value>& inputs) {
  return check_consensus_impl(
      net, inputs, [&](NodeId u) -> const mac::Decision& {
        return net.decision(u, instance);
      });
}

ConsensusVerdict check_consensus(const mac::ReferenceNetwork& net,
                                 mac::InstanceId instance,
                                 const std::vector<mac::Value>& inputs) {
  return check_consensus_impl(
      net, inputs, [&](NodeId u) -> const mac::Decision& {
        return net.decision(u, instance);
      });
}

LogPrefixVerdict check_log_prefix(const mac::Network& net,
                                  const std::vector<mac::InstanceId>& slots) {
  LogPrefixVerdict v;
  const std::size_t count = net.node_count();

  // Longest contiguous decided prefix common to every live replica. A hole
  // ends a replica's prefix even when later slots decided — order is the
  // property under judgment, so nothing past a gap may count.
  std::size_t common = slots.size();
  bool any_live = false;
  for (NodeId u = 0; u < count; ++u) {
    if (net.crashed(u)) continue;
    any_live = true;
    std::size_t p = 0;
    while (p < slots.size() && net.decision(u, slots[p]).decided) ++p;
    common = std::min(common, p);
  }
  if (!any_live) {
    // Everyone crashed: no replica left to diverge. The per-slot oracle
    // still judges pre-crash decisions; this check is vacuously clean.
    v.consistent = true;
    return v;
  }
  v.common_prefix = common;

  bool first = true;
  NodeId first_node = 0;
  std::uint64_t want = 0;
  for (NodeId u = 0; u < count; ++u) {
    if (net.crashed(u)) continue;
    util::Hasher h;
    for (std::size_t slot = 0; slot < common; ++slot) {
      const mac::Decision& d = net.decision(u, slots[slot]);
      h.mix_u64(slot);
      h.mix_i64(d.value);
    }
    const std::uint64_t dig = h.digest();
    if (first) {
      first = false;
      first_node = u;
      want = dig;
    } else if (dig != want) {
      std::ostringstream os;
      os << "applied-prefix divergence over " << common
         << " common slots: node " << first_node << " digest " << std::hex
         << want << " vs node " << std::dec << u << " digest " << std::hex
         << dig;
      v.detail = os.str();
      return v;  // consistent stays false
    }
  }
  v.consistent = true;
  v.digest = want;
  return v;
}

}  // namespace amac::verify
