#include "verify/flp.hpp"

#include <deque>
#include <unordered_map>

namespace amac::verify {

namespace {

struct StateInfo {
  bool terminal = false;
  bool disagree = false;
  bool decides0 = false;  ///< terminal with common value 0
  bool decides1 = false;
  std::vector<std::size_t> successors;
  // Predecessor edge for witness reconstruction (BFS tree).
  std::size_t pred = SIZE_MAX;
  StepSystem::Step pred_step;
};

}  // namespace

FlpExplorer::FlpExplorer(const net::Graph& graph, mac::ProcessFactory factory,
                         std::size_t crash_budget, std::size_t max_states)
    : graph_(&graph), factory_(std::move(factory)),
      crash_budget_(crash_budget), max_states_(max_states) {}

ValencyReport FlpExplorer::explore() {
  std::vector<StateInfo> states;
  std::unordered_map<std::uint64_t, std::size_t> index_of;
  std::deque<std::pair<StepSystem, std::size_t>> frontier;

  const auto classify = [](const StepSystem& sys, StateInfo& info) {
    info.disagree = sys.has_disagreement();
    info.terminal = sys.all_alive_decided();
    if (info.terminal && !info.disagree) {
      for (NodeId u = 0; u < sys.node_count(); ++u) {
        if (sys.decision(u).decided) {
          info.decides0 = sys.decision(u).value == 0;
          info.decides1 = sys.decision(u).value == 1;
          break;
        }
      }
    }
  };

  // --- Pass 1: forward enumeration.
  StepSystem initial(*graph_, factory_);
  {
    StateInfo info;
    classify(initial, info);
    index_of[initial.digest()] = 0;
    states.push_back(info);
    frontier.emplace_back(StepSystem(initial), 0);
  }

  ValencyReport report;
  while (!frontier.empty()) {
    auto [sys, index] = std::move(frontier.front());
    frontier.pop_front();
    // Terminal and disagreement states are absorbing for the analysis.
    if (states[index].terminal || states[index].disagree) continue;

    for (const auto& step : sys.valid_steps(crash_budget_)) {
      StepSystem child(sys);
      child.apply(step);
      const std::uint64_t key = child.digest();
      const auto [it, inserted] = index_of.try_emplace(key, states.size());
      if (inserted) {
        AMAC_ENSURES(states.size() < max_states_);  // raise max_states
        StateInfo info;
        classify(child, info);
        info.pred = index;
        info.pred_step = step;
        states.push_back(info);
        frontier.emplace_back(std::move(child), it->second);
      }
      states[index].successors.push_back(it->second);
      ++report.transitions;
    }
  }
  report.distinct_states = states.size();

  // --- Pass 2: backward fixpoints over the finite graph.
  const std::size_t n = states.size();
  std::vector<char> can_term(n, 0);
  std::vector<char> can0(n, 0);
  std::vector<char> can1(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (states[i].terminal) {
      can_term[i] = 1;
      can0[i] = states[i].decides0;
      can1[i] = states[i].decides1;
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      for (const std::size_t s : states[i].successors) {
        if (can_term[s] && !can_term[i]) {
          can_term[i] = 1;
          changed = true;
        }
        if (can0[s] && !can0[i]) {
          can0[i] = 1;
          changed = true;
        }
        if (can1[s] && !can1[i]) {
          can1[i] = 1;
          changed = true;
        }
      }
    }
  }

  report.reaches_decision_0 = can0[0] != 0;
  report.reaches_decision_1 = can1[0] != 0;

  const auto witness_for = [&](std::size_t i) {
    std::vector<StepSystem::Step> steps;
    while (states[i].pred != SIZE_MAX) {
      steps.push_back(states[i].pred_step);
      i = states[i].pred;
    }
    return std::vector<StepSystem::Step>(steps.rbegin(), steps.rend());
  };

  for (std::size_t i = 0; i < n; ++i) {
    if (states[i].disagree && !report.disagreement_reachable) {
      report.disagreement_reachable = true;
      if (report.witness.empty()) report.witness = witness_for(i);
    }
    if (!can_term[i] && !report.stuck_reachable) {
      report.stuck_reachable = true;
      if (report.witness.empty()) report.witness = witness_for(i);
    }
  }
  return report;
}

}  // namespace amac::verify
