// The §3.1 valid-step executor.
//
// The paper's FLP generalization restricts attention to a class of
// well-behaved schedulers expressed as "valid steps":
//   * nodes always send: on receiving an ack a node immediately starts its
//     next broadcast (if its algorithm has nothing to say, the engine
//     substitutes a heartbeat the algorithm never sees);
//   * a step is either (a) node v receives u's current message — valid iff
//     v has not yet received it and every non-crashed node smaller than v
//     (among u's neighbors) already has — or (b) u receives its ack — valid
//     iff every non-crashed neighbor of u received its current message;
//   * the adversary may also crash a node at any point, mid-broadcast
//     included (neighbors that have not yet taken their receive step will
//     never receive the current message).
//
// StepSystem is a value: deep-copyable and digestible, so the FLP explorer
// can search the tree of valid schedules with memoization.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "mac/engine.hpp"  // mac::Decision
#include "mac/process.hpp"
#include "net/graph.hpp"

namespace amac::verify {

class StepSystem {
 public:
  struct Step {
    enum class Kind : std::uint8_t { kReceive, kAck, kCrash };
    Kind kind = Kind::kReceive;
    NodeId u = kNoNode;  ///< sender (receive/ack) or the node to crash
    NodeId v = kNoNode;  ///< receiver, for kReceive only

    [[nodiscard]] std::string describe() const;
  };

  /// Builds the system and runs every node's on_start (capturing its first
  /// broadcast as its current message).
  StepSystem(const net::Graph& graph, const mac::ProcessFactory& factory);

  StepSystem(const StepSystem& other);
  StepSystem& operator=(const StepSystem&) = delete;

  /// All steps valid in the current state. Crash steps (one per alive node)
  /// are included only while `crash_budget` exceeds crashes so far.
  [[nodiscard]] std::vector<Step> valid_steps(std::size_t crash_budget) const;

  /// Applies a step; it must currently be valid.
  void apply(const Step& step);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] bool crashed(NodeId u) const;
  [[nodiscard]] std::size_t crash_count() const { return crash_count_; }
  [[nodiscard]] const mac::Decision& decision(NodeId u) const;
  /// Every non-crashed node has decided.
  [[nodiscard]] bool all_alive_decided() const;
  /// Two nodes (crashed or not) decided differently.
  [[nodiscard]] bool has_disagreement() const;
  /// Full-system state digest (memoization key for the explorer).
  [[nodiscard]] std::uint64_t digest() const;

 private:
  struct Node {
    std::unique_ptr<mac::Process> process;
    util::Buffer current;          ///< payload of the current broadcast
    bool heartbeat = false;        ///< current is engine padding
    std::vector<bool> received;    ///< received[w]: node w got `current`
    bool crashed = false;
    mac::Decision decision;
  };

  class StepContext;

  /// Valid next receiver of u's current message, if any (validity makes it
  /// unique: the smallest alive neighbor that has not received yet).
  [[nodiscard]] std::optional<NodeId> next_receiver(NodeId u) const;
  [[nodiscard]] bool ack_valid(NodeId u) const;
  void arm_next_message(NodeId u, std::optional<util::Buffer> payload);

  const net::Graph* graph_;
  std::vector<Node> nodes_;
  std::size_t crash_count_ = 0;
  std::uint64_t steps_applied_ = 0;
};

}  // namespace amac::verify
