// Per-node state-digest traces for indistinguishability experiments.
//
// Lemma 3.6 (paper §3.2) claims: under the synchronous / alpha_A schedulers,
// a gadget node u in Network A and its three lift copies S_u in Network B
// pass through IDENTICAL states for the first t synchronous steps. We verify
// this empirically: advance each network tick by tick and record every
// watched node's Process::digest() after each tick; the traces must match
// entry for entry.
#pragma once

#include <vector>

#include "mac/engine.hpp"

namespace amac::verify {

/// Digest-per-tick traces of a set of watched nodes.
class DigestTrace {
 public:
  /// Advances `net` one tick at a time up to `until` (inclusive), recording
  /// the digests of `watched` after every tick (index 0 = state after
  /// tick 1, etc.). The network must not have been run yet.
  static DigestTrace record(mac::Network& net,
                            const std::vector<NodeId>& watched,
                            mac::Time until);

  /// Digest of watched-node `w` after tick index `step` (0-based).
  [[nodiscard]] std::uint64_t at(std::size_t w, std::size_t step) const;

  [[nodiscard]] std::size_t steps() const { return rows_.size(); }
  [[nodiscard]] std::size_t watched_count() const { return watched_; }

  /// Number of leading steps on which watched node `a` of this trace agrees
  /// with watched node `b` of `other`.
  [[nodiscard]] std::size_t common_prefix(std::size_t a,
                                          const DigestTrace& other,
                                          std::size_t b) const;

 private:
  std::size_t watched_ = 0;
  std::vector<std::vector<std::uint64_t>> rows_;  ///< rows_[step][watched]
};

}  // namespace amac::verify
