// Valency exploration over valid-step schedules (the executable content of
// Theorem 3.2 / the FLP generalization).
//
// Two passes over the (finite) state graph reachable from the initial
// configuration under valid steps with a crash budget:
//   1. Forward enumeration (BFS with digest deduplication): every distinct
//      system state becomes a node; terminal states (all alive decided) are
//      absorbing; disagreement states are flagged.
//   2. Backward fixpoint: which states can still reach a terminal state,
//      and with which decision values. A reachable state from which NO
//      terminal state is reachable is "stuck" — a termination violation —
//      and the initial configuration is bivalent iff terminals deciding 0
//      and terminals deciding 1 are both reachable.
//
// This is how the paper's Theorem 3.2 manifests executably: with
// crash_budget = 1 the adversary defeats the (crash-intolerant) §4.1
// algorithm; with crash_budget = 0 the same algorithm always terminates.
#pragma once

#include <cstdint>
#include <vector>

#include "verify/step_engine.hpp"

namespace amac::verify {

struct ValencyReport {
  bool reaches_decision_0 = false;  ///< some schedule ends deciding 0
  bool reaches_decision_1 = false;  ///< some schedule ends deciding 1
  bool disagreement_reachable = false;
  bool stuck_reachable = false;  ///< termination violation reachable
  std::size_t distinct_states = 0;
  std::size_t transitions = 0;
  /// Step sequence from the initial configuration to the first violating
  /// state found (empty if no violation).
  std::vector<StepSystem::Step> witness;

  [[nodiscard]] bool bivalent() const {
    return reaches_decision_0 && reaches_decision_1;
  }
  [[nodiscard]] bool violation_found() const {
    return disagreement_reachable || stuck_reachable;
  }
};

class FlpExplorer {
 public:
  /// Explores schedules of the system with at most `crash_budget` crashes.
  /// `max_states` bounds the enumeration; exceeding it is a contract
  /// violation (raise the bound), so reports are always complete. The
  /// factory is copied (temporaries are safe); the graph must outlive the
  /// explorer.
  FlpExplorer(const net::Graph& graph, mac::ProcessFactory factory,
              std::size_t crash_budget, std::size_t max_states = 500'000);

  [[nodiscard]] ValencyReport explore();

 private:
  const net::Graph* graph_;
  mac::ProcessFactory factory_;
  std::size_t crash_budget_;
  std::size_t max_states_;
};

}  // namespace amac::verify
