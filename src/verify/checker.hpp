// Consensus property oracle: agreement / validity / termination verdicts
// for a finished (or timed-out) run.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "mac/engine.hpp"

namespace amac::mac {
class ReferenceNetwork;  // reference_engine.hpp
}  // namespace amac::mac

namespace amac::verify {

struct ConsensusVerdict {
  bool termination = false;  ///< every non-crashed node decided
  bool agreement = false;    ///< no two decided nodes decided differently
  bool validity = false;     ///< every decided value was someone's input
  std::optional<mac::Value> decision;  ///< the common value, if agreement
  mac::Time first_decision = 0;
  mac::Time last_decision = 0;  ///< decision time of the slowest decider

  [[nodiscard]] bool ok() const {
    return termination && agreement && validity;
  }
  [[nodiscard]] std::string summary() const;

  /// Folds the verdict into `h` (property bits, decided value, decision
  /// times). Differential harnesses combine this with the engine trace
  /// digest into one run fingerprint, so "same verdict" is part of the
  /// bit-identical replay check rather than a separate field-by-field diff.
  void digest(util::Hasher& h) const;
};

/// Inspects a network after `run` and checks the three consensus properties
/// against the given initial values (indexed by node).
[[nodiscard]] ConsensusVerdict check_consensus(
    const mac::Network& net, const std::vector<mac::Value>& inputs);

/// Same oracle over the frozen reference engine, so differential replays
/// (fuzz/) can assert verdict equality across engines, not just trace
/// digests.
[[nodiscard]] ConsensusVerdict check_consensus(
    const mac::ReferenceNetwork& net, const std::vector<mac::Value>& inputs);

/// Per-instance oracle for multiplexed runs (design doc: "Instance
/// multiplexing" in mac/engine.hpp): the same three properties judged
/// against ONE instance's decisions and ITS input set. The replicated log
/// (src/log/) checks every decided slot with this — per-slot agreement and
/// validity are what make a log of consensus instances a correct log.
[[nodiscard]] ConsensusVerdict check_consensus(
    const mac::Network& net, mac::InstanceId instance,
    const std::vector<mac::Value>& inputs);
[[nodiscard]] ConsensusVerdict check_consensus(
    const mac::ReferenceNetwork& net, mac::InstanceId instance,
    const std::vector<mac::Value>& inputs);

/// Replica-consistency verdict for a replicated-log run: the per-slot
/// oracle above proves each SLOT agreed, this one proves the LOG did — the
/// replicated-state-machine property that every live replica applied the
/// same command prefix in the same order.
struct LogPrefixVerdict {
  bool consistent = false;  ///< all live replicas' prefix digests equal
  std::size_t common_prefix = 0;  ///< slots every live replica has decided
  std::uint64_t digest = 0;  ///< the shared prefix digest (when consistent)
  std::string detail;        ///< mismatch description (when inconsistent)
};

/// Folds each live (non-crashed) replica's contiguous decided slot prefix —
/// (slot index, decided value) pairs in slot order — into a digest and
/// compares them over the longest prefix EVERY live replica has decided.
/// `slots[i]` is the instance that decided slot i; retired instances keep
/// their decisions readable (see "Instance multiplexing" in mac/engine.hpp),
/// so this is a pure post-run check needing no decide-time hooks. Crashed
/// replicas are exempt: their prefixes froze mid-run, and the per-slot
/// oracle already judges any decision they made before crashing.
[[nodiscard]] LogPrefixVerdict check_log_prefix(
    const mac::Network& net, const std::vector<mac::InstanceId>& slots);

}  // namespace amac::verify
