#include "verify/invariants.hpp"

#include <sstream>

namespace amac::verify {

using core::wpaxos::AcceptorResponse;
using core::wpaxos::WireEnvelope;
using core::wpaxos::WPaxos;

ResponseConservationMonitor::ResponseConservationMonitor(
    std::vector<std::uint64_t> index_to_id)
    : index_to_id_(std::move(index_to_id)) {}

void ResponseConservationMonitor::check(mac::Network& net) {
  if (violated_) return;
  ++checks_;
  const std::size_t n = net.node_count();
  AMAC_EXPECTS(index_to_id_.size() == n);

  // For every node with an active proposition, verify conservation.
  for (NodeId pu = 0; pu < n; ++pu) {
    const auto* proposer = dynamic_cast<const WPaxos*>(&net.process(pu));
    AMAC_EXPECTS(proposer != nullptr);
    const auto snap = proposer->proposer_snapshot();
    if (!snap.active) continue;

    const auto matches = [&](const AcceptorResponse& r) {
      return r.positive && r.pn == snap.pn && r.stage == snap.stage;
    };

    std::uint64_t queued = 0;
    std::uint64_t responded = 0;
    for (NodeId u = 0; u < n; ++u) {
      const auto* node = dynamic_cast<const WPaxos*>(&net.process(u));
      for (const auto& r : node->response_queue()) {
        if (matches(r)) queued += r.count;
      }
      if (node->responded_positive(snap.pn, snap.stage)) ++responded;
    }

    std::uint64_t in_flight = 0;
    net.for_each_in_flight([&](NodeId /*sender*/, NodeId receiver,
                               const util::Buffer& payload) {
      const WireEnvelope env = WireEnvelope::decode(payload);
      if (!env.body.response) return;
      const AcceptorResponse& r = *env.body.response;
      // Only the addressed next hop will consume the response; copies to
      // other neighbors are ignored on receipt.
      if (matches(r) && index_to_id_[receiver] == r.dest) {
        in_flight += r.count;
      }
    });

    if (snap.yes + queued + in_flight > responded) {
      violated_ = true;
      std::ostringstream os;
      os << "Lemma 4.2 violation at t=" << net.now() << ": proposer id "
         << index_to_id_[pu] << " pn=(" << snap.pn.tag << "," << snap.pn.id
         << ") stage=" << static_cast<int>(snap.stage)
         << ": c=" << snap.yes << " + queued=" << queued
         << " + in_flight=" << in_flight << " > responded=" << responded;
      report_ = os.str();
      return;
    }
  }
}

std::uint64_t max_proposal_tag(const mac::Network& net) {
  std::uint64_t max_tag = 0;
  for (NodeId u = 0; u < net.node_count(); ++u) {
    const auto* node = dynamic_cast<const WPaxos*>(&net.process(u));
    AMAC_EXPECTS(node != nullptr);
    max_tag = std::max(max_tag, node->current_max_tag());
  }
  return max_tag;
}

std::uint64_t total_change_events(const mac::Network& net) {
  std::uint64_t total = 0;
  for (NodeId u = 0; u < net.node_count(); ++u) {
    const auto* node = dynamic_cast<const WPaxos*>(&net.process(u));
    AMAC_EXPECTS(node != nullptr);
    total += node->node_stats().change_events;
  }
  return total;
}

}  // namespace amac::verify
