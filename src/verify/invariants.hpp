// Runtime invariant monitors for wPAXOS.
//
// Lemma 4.2 (response-count conservation): for any proposition p, the count
// of affirmative responses the proposer has consumed, c(p), can never exceed
// a(p), the number of acceptors that affirmed p. We monitor the sharper
// step-wise form from the paper's proof: at every step,
//     c(p) + queued(p) + in_flight(p) <= responded(p),
// where queued sums matching counts in acceptor response queues, in_flight
// sums matching counts in messages currently addressed to their next hop,
// and responded counts acceptors whose log shows an affirmative response to
// p. (responded(p) <= a(p), so this implies the lemma's invariant.)
//
// Lemma 4.4 (bounded tags): proposal-number tags stay polynomial in n; the
// monitor tracks the largest tag and the per-node change-event counts that
// bound it.
//
// Reliable-delivery caveat: Lemma 4.2's accounting assumes the abstract
// MAC layer's delivery guarantee. Under a non-empty LinkFaultPlan a
// dropped frame can carry a queued response count out of existence (the
// lemma's "in flight" term silently shrinks), and a duplicated proposition
// can legitimately raise responded(p) between two checks — either way the
// step-wise inequality is no longer a theorem of the paper's model. The
// fuzz harness therefore stands the monitor down whenever a fault plan is
// installed (see run_on_engine in fuzz/fuzzer.cpp); the agreement/validity
// oracles still run unconditionally.
#pragma once

#include <string>
#include <vector>

#include "core/wpaxos/wpaxos.hpp"
#include "mac/engine.hpp"

namespace amac::verify {

class ResponseConservationMonitor {
 public:
  /// `index_to_id` maps engine node index -> wPAXOS algorithm id. Every
  /// process in the network must be a WPaxos built with
  /// config.track_responses = true.
  explicit ResponseConservationMonitor(std::vector<std::uint64_t> index_to_id);

  /// Checks the invariant for every currently active proposition. Call from
  /// Network::set_post_event_hook.
  void check(mac::Network& net);

  [[nodiscard]] bool violated() const { return violated_; }
  [[nodiscard]] const std::string& report() const { return report_; }
  [[nodiscard]] std::uint64_t checks_performed() const { return checks_; }

 private:
  std::vector<std::uint64_t> index_to_id_;
  bool violated_ = false;
  std::string report_;
  std::uint64_t checks_ = 0;
};

/// Lemma 4.4: the largest proposal tag any node has used or seen.
[[nodiscard]] std::uint64_t max_proposal_tag(const mac::Network& net);

/// Total change events observed across all nodes (the quantity that bounds
/// tags: each change event spawns at most proposals_per_change proposals).
[[nodiscard]] std::uint64_t total_change_events(const mac::Network& net);

}  // namespace amac::verify
