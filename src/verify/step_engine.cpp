#include "verify/step_engine.hpp"

#include <sstream>

namespace amac::verify {

namespace {

// Step-engine framing: real algorithm payloads are prefixed with 1,
// heartbeats are the single byte 0 (never delivered to the algorithm).
util::Buffer frame_real(const util::Buffer& payload) {
  util::Buffer framed;
  framed.reserve(payload.size() + 1);
  framed.push_back(1);
  framed.insert(framed.end(), payload.begin(), payload.end());
  return framed;
}

const util::Buffer kHeartbeat = {0};

util::Buffer unframe(const util::Buffer& framed) {
  AMAC_EXPECTS(!framed.empty() && framed[0] == 1);
  return util::Buffer(framed.begin() + 1, framed.end());
}

}  // namespace

std::string StepSystem::Step::describe() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::kReceive:
      os << "recv(" << u << "->" << v << ")";
      break;
    case Kind::kAck:
      os << "ack(" << u << ")";
      break;
    case Kind::kCrash:
      os << "crash(" << u << ")";
      break;
  }
  return os.str();
}

/// Context used during step callbacks: captures at most one broadcast.
class StepSystem::StepContext final : public mac::Context {
 public:
  StepContext(StepSystem& sys, NodeId node, bool may_broadcast)
      : sys_(&sys), node_(node), may_broadcast_(may_broadcast) {}

  void broadcast(const util::Buffer& payload) override {
    // Outside of on_start/on_ack the node is mid-broadcast ("nodes always
    // send"), so additional broadcasts are discarded per the model.
    if (!may_broadcast_ || captured_) return;
    captured_ = frame_real(payload);
  }

  void decide(mac::Value v) override {
    auto& d = sys_->nodes_[node_].decision;
    AMAC_EXPECTS(!d.decided);
    d = mac::Decision{true, v, sys_->steps_applied_};
  }

  [[nodiscard]] bool busy() const override { return !may_broadcast_; }
  [[nodiscard]] mac::Time now() const override {
    return sys_->steps_applied_;
  }

  [[nodiscard]] std::optional<util::Buffer> take_captured() {
    return std::move(captured_);
  }

 private:
  StepSystem* sys_;
  NodeId node_;
  bool may_broadcast_;
  std::optional<util::Buffer> captured_;
};

StepSystem::StepSystem(const net::Graph& graph,
                       const mac::ProcessFactory& factory)
    : graph_(&graph) {
  const std::size_t n = graph.node_count();
  nodes_.reserve(n);
  for (NodeId u = 0; u < n; ++u) {
    Node node;
    node.process = factory(u);
    node.received.assign(n, false);
    nodes_.push_back(std::move(node));
  }
  for (NodeId u = 0; u < n; ++u) {
    StepContext ctx(*this, u, /*may_broadcast=*/true);
    nodes_[u].process->on_start(ctx);
    arm_next_message(u, ctx.take_captured());
  }
}

StepSystem::StepSystem(const StepSystem& other)
    : graph_(other.graph_), crash_count_(other.crash_count_),
      steps_applied_(other.steps_applied_) {
  nodes_.reserve(other.nodes_.size());
  for (const Node& n : other.nodes_) {
    Node copy;
    copy.process = n.process->clone();
    copy.current = n.current;
    copy.heartbeat = n.heartbeat;
    copy.received = n.received;
    copy.crashed = n.crashed;
    copy.decision = n.decision;
    nodes_.push_back(std::move(copy));
  }
}

void StepSystem::arm_next_message(NodeId u,
                                  std::optional<util::Buffer> payload) {
  Node& node = nodes_[u];
  if (payload) {
    node.current = std::move(*payload);
    node.heartbeat = false;
  } else {
    // "Nodes always send": pad with a heartbeat the algorithm never sees.
    node.current = kHeartbeat;
    node.heartbeat = true;
  }
  node.received.assign(nodes_.size(), false);
}

std::optional<NodeId> StepSystem::next_receiver(NodeId u) const {
  const Node& node = nodes_[u];
  if (node.crashed) return std::nullopt;
  // Validity: the receiver must be the smallest alive neighbor that has not
  // yet received u's current message.
  for (const NodeId v : graph_->neighbors(u)) {
    if (nodes_[v].crashed) continue;
    if (!node.received[v]) return v;
  }
  return std::nullopt;
}

bool StepSystem::ack_valid(NodeId u) const {
  const Node& node = nodes_[u];
  if (node.crashed) return false;
  for (const NodeId v : graph_->neighbors(u)) {
    if (!nodes_[v].crashed && !node.received[v]) return false;
  }
  return true;
}

std::vector<StepSystem::Step> StepSystem::valid_steps(
    std::size_t crash_budget) const {
  std::vector<Step> steps;
  for (NodeId u = 0; u < nodes_.size(); ++u) {
    if (nodes_[u].crashed) continue;
    if (const auto v = next_receiver(u)) {
      steps.push_back(Step{Step::Kind::kReceive, u, *v});
    } else if (ack_valid(u)) {
      steps.push_back(Step{Step::Kind::kAck, u, kNoNode});
    }
    if (crash_count_ < crash_budget) {
      steps.push_back(Step{Step::Kind::kCrash, u, kNoNode});
    }
  }
  return steps;
}

void StepSystem::apply(const Step& step) {
  ++steps_applied_;
  switch (step.kind) {
    case Step::Kind::kCrash: {
      Node& node = nodes_[step.u];
      AMAC_EXPECTS(!node.crashed);
      node.crashed = true;
      ++crash_count_;
      return;
    }
    case Step::Kind::kReceive: {
      Node& sender = nodes_[step.u];
      AMAC_EXPECTS(next_receiver(step.u) == step.v);
      sender.received[step.v] = true;
      Node& receiver = nodes_[step.v];
      if (!sender.heartbeat) {
        StepContext ctx(*this, step.v, /*may_broadcast=*/false);
        const util::Buffer body = unframe(sender.current);
        const mac::Packet packet{step.u, body};
        receiver.process->on_receive(packet, ctx);
      }
      return;
    }
    case Step::Kind::kAck: {
      AMAC_EXPECTS(ack_valid(step.u));
      StepContext ctx(*this, step.u, /*may_broadcast=*/true);
      nodes_[step.u].process->on_ack(ctx);
      arm_next_message(step.u, ctx.take_captured());
      return;
    }
  }
}

bool StepSystem::crashed(NodeId u) const {
  AMAC_EXPECTS(u < nodes_.size());
  return nodes_[u].crashed;
}

const mac::Decision& StepSystem::decision(NodeId u) const {
  AMAC_EXPECTS(u < nodes_.size());
  return nodes_[u].decision;
}

bool StepSystem::all_alive_decided() const {
  for (const Node& n : nodes_) {
    if (!n.crashed && !n.decision.decided) return false;
  }
  return true;
}

bool StepSystem::has_disagreement() const {
  mac::Value seen = -1;
  for (const Node& n : nodes_) {
    if (!n.decision.decided) continue;
    if (seen == -1) {
      seen = n.decision.value;
    } else if (n.decision.value != seen) {
      return true;
    }
  }
  return false;
}

std::uint64_t StepSystem::digest() const {
  util::Hasher h;
  for (const Node& n : nodes_) {
    n.process->digest(h);
    h.mix_bytes(n.current);
    h.mix_bool(n.heartbeat);
    for (const bool b : n.received) h.mix_bool(b);
    h.mix_bool(n.crashed);
    h.mix_bool(n.decision.decided);
    h.mix_i64(n.decision.value);
  }
  return h.digest();
}

}  // namespace amac::verify
