#include "verify/trace.hpp"

namespace amac::verify {

DigestTrace DigestTrace::record(mac::Network& net,
                                const std::vector<NodeId>& watched,
                                mac::Time until) {
  DigestTrace trace;
  trace.watched_ = watched.size();
  for (mac::Time t = 1; t <= until; ++t) {
    net.run(mac::StopWhen::kQuiescent, t);
    std::vector<std::uint64_t> row;
    row.reserve(watched.size());
    for (const NodeId u : watched) {
      util::Hasher h;
      net.process(u).digest(h);
      row.push_back(h.digest());
    }
    trace.rows_.push_back(std::move(row));
  }
  return trace;
}

std::uint64_t DigestTrace::at(std::size_t w, std::size_t step) const {
  AMAC_EXPECTS(step < rows_.size());
  AMAC_EXPECTS(w < watched_);
  return rows_[step][w];
}

std::size_t DigestTrace::common_prefix(std::size_t a, const DigestTrace& other,
                                       std::size_t b) const {
  const std::size_t limit = std::min(steps(), other.steps());
  for (std::size_t s = 0; s < limit; ++s) {
    if (at(a, s) != other.at(b, s)) return s;
  }
  return limit;
}

}  // namespace amac::verify
