// The adversarial scenario fuzzer: property-based testing for the whole
// stack. generate -> run on the calendar engine -> check the paper's
// properties -> (sampled) differential replay on the frozen reference
// engine -> on violation, shrink to a minimal one-line repro.
//
// Oracles checked per scenario:
//   * agreement + validity (verify::check_consensus) — demanded for EVERY
//     generated scenario: the paper's safety properties are quantified over
//     all schedules and crash patterns inside each algorithm's envelope;
//   * termination — demanded exactly when termination_expected(s): the
//     scenario is inside the algorithm's liveness envelope (crash-free for
//     the deterministic algorithms, <= f crashes for Ben-Or);
//   * Lemma 4.2 response conservation (verify::ResponseConservationMonitor)
//     on every wPAXOS scenario, checked after every engine event;
//   * engine equivalence — a sampled subset of scenarios is replayed on
//     mac::ReferenceNetwork (the frozen PR-1 baseline) and the run
//     fingerprints (event-trace digest + verdict digest + stats + decisions)
//     must match bit for bit.
//
// ---------------------------------------------------------------------------
// Fuzzing HOWTO
//
// Run a soak (release build; 500+ scenarios is a couple of seconds):
//
//   ./bench_fuzz_soak --count 1000 --seed-base 1 --differential-every 7
//
// Every scenario is derived from one seed; a violation prints a line like
//
//   VIOLATION kind=agreement spec=amacfuzz1:seed=42:alg=...:crashes=3@7
//   minimal  spec=amacfuzz1:seed=42:alg=...:n=3:...
//
// Reproduce either one (bit-identical run, same digest) with
//
//   ./bench_fuzz_soak --replay 'amacfuzz1:seed=42:alg=...'
//   ./bench_fuzz_soak --replay 42          # bare seed = generated scenario
//
// How the corpus is pinned: the CI smoke lane and tests/test_fuzz_smoke.cpp
// run the FIXED seed range [1, N] (seed-base 1), so the corpus only changes
// when the generator itself changes — a generator edit shows up as a
// reviewable corpus-digest change in the smoke test, never as silent drift.
// Scenarios that once exposed bugs are pinned FOREVER as full spec lines
// (not bare seeds) in tests/test_fuzz_regressions.cpp, immune to generator
// evolution.
//
// Extending coverage: a new algorithm joins by extending
// harness::Algorithm + algorithm_factory and teaching generate_scenario its
// envelope (topology/scheduler/crash constraints); a new scheduler joins
// via SchedulerKind + build_scenario. Everything downstream — oracle,
// differential replay, shrinking, soak lane, repro specs — is inherited.
// ---------------------------------------------------------------------------
#pragma once

#include <array>
#include <functional>
#include <string>
#include <vector>

#include "fuzz/scenario.hpp"
#include "verify/checker.hpp"

namespace amac::fuzz {

enum class FailureKind : std::uint8_t {
  kNone = 0,
  kAgreement = 1,     ///< two nodes decided differently
  kValidity = 2,      ///< a decided value was nobody's input
  kTermination = 3,   ///< liveness expected but some node never decided
  kInvariant = 4,     ///< Lemma 4.2 response-conservation monitor tripped
  kDifferential = 5,  ///< calendar vs reference engine fingerprint mismatch
};

[[nodiscard]] const char* failure_name(FailureKind k);

struct RunOptions {
  bool differential = false;  ///< also replay on the reference engine
  bool with_monitor = true;   ///< wPAXOS Lemma 4.2 monitor (wpaxos only)
};

/// Everything observed from one scenario execution.
struct RunReport {
  verify::ConsensusVerdict verdict;
  mac::EngineStats stats;
  mac::Time end_time = 0;
  bool condition_met = false;
  std::uint64_t trace_digest = 0;  ///< engine event-trace digest
  std::uint64_t fingerprint = 0;   ///< trace + verdict + stats + decisions
  std::uint64_t monitor_checks = 0;
  std::size_t mid_flight_crashes = 0;  ///< crashes that cancelled in-flight
                                       ///< deliveries (the non-atomic
                                       ///< broadcast edge case)
  bool differential_ran = false;
  std::uint64_t reference_fingerprint = 0;  ///< when differential_ran
  FailureKind failure = FailureKind::kNone;
  std::string detail;  ///< human-readable failure description
};

/// Builds, runs, and judges one scenario (deterministic: same scenario,
/// same report bit for bit).
[[nodiscard]] RunReport run_scenario(const Scenario& s,
                                     const RunOptions& options = {});

// ---- shrinking ----------------------------------------------------------

struct ShrinkOptions {
  std::size_t max_attempts = 150;  ///< total candidate re-runs
};

struct ShrinkResult {
  Scenario scenario;           ///< the minimal still-failing scenario
  RunReport report;            ///< its failing report
  std::size_t attempts = 0;    ///< candidate runs spent
  std::size_t reductions = 0;  ///< accepted shrink steps
};

/// Greedy scenario minimization: repeatedly tries dropping crashes and
/// holds, halving/decrementing n, and lowering the delay bound, keeping any
/// transform after which the run still fails with the SAME FailureKind.
/// Requires run_scenario(s, options).failure == kind.
[[nodiscard]] ShrinkResult shrink_scenario(const Scenario& s,
                                           FailureKind kind,
                                           const RunOptions& options = {},
                                           const ShrinkOptions& shrink = {});

// ---- soak loop ----------------------------------------------------------

struct SoakOptions {
  std::uint64_t seed_base = 1;
  std::size_t count = 500;
  /// Every k-th scenario is replayed differentially on the reference
  /// engine (0 disables differential sampling).
  std::size_t differential_every = 7;
  bool shrink_failures = true;
  std::size_t max_shrink_attempts = 150;
  /// Progress callback after every scenario (may be empty).
  std::function<void(std::size_t index, const Scenario&, const RunReport&)>
      on_scenario;
};

struct SoakFailure {
  Scenario scenario;
  Scenario minimal;  ///< == scenario when shrinking is off
  RunReport report;  ///< report of `minimal`
};

struct SoakResult {
  std::size_t runs = 0;
  std::size_t differential_runs = 0;
  std::array<std::size_t, harness::kAlgorithmCount> per_algorithm{};
  std::size_t crash_scenarios = 0;
  std::size_t mid_flight_crash_scenarios = 0;
  /// Calendar-path coverage: how the corpus's events split between the
  /// wheel and the overflow heap, and how many scenarios exercised the
  /// overflow and self-resize paths (late holds, far crash plans). Surfaced
  /// in the soak summary so CI logs show the resize path really ran.
  std::uint64_t wheel_events = 0;
  std::uint64_t overflow_events = 0;
  std::size_t overflow_scenarios = 0;  ///< scenarios with >= 1 heap event
  std::size_t resized_scenarios = 0;   ///< scenarios where the wheel resized
  std::uint64_t corpus_digest = 0;  ///< fold of every run fingerprint: the
                                    ///< one number that pins the corpus
  std::vector<SoakFailure> failures;

  [[nodiscard]] bool ok() const { return failures.empty(); }
};

/// Runs scenarios for seeds [seed_base, seed_base + count), collecting
/// failures (each shrunk to a minimal repro when enabled).
[[nodiscard]] SoakResult run_soak(const SoakOptions& options);

}  // namespace amac::fuzz
