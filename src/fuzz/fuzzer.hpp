// The adversarial scenario fuzzer: property-based testing for the whole
// stack. generate -> run on the calendar engine -> check the paper's
// properties -> (sampled) differential replay on the frozen reference
// engine -> on violation, shrink to a minimal one-line repro.
//
// Oracles checked per scenario:
//   * agreement + validity (verify::check_consensus) — demanded for EVERY
//     generated scenario: the paper's safety properties are quantified over
//     all schedules and crash patterns inside each algorithm's envelope;
//   * termination — demanded exactly when termination_expected(s): the
//     scenario is inside the algorithm's liveness envelope (crash-free for
//     the deterministic algorithms, <= f crashes for Ben-Or);
//   * Lemma 4.2 response conservation (verify::ResponseConservationMonitor)
//     on every wPAXOS scenario, checked after every engine event;
//   * engine equivalence — a sampled subset of scenarios is replayed on
//     mac::ReferenceNetwork (the frozen PR-1 baseline) and the run
//     fingerprints (event-trace digest + verdict digest + stats + decisions)
//     must match bit for bit.
//
// ---------------------------------------------------------------------------
// Fuzzing HOWTO
//
// Run a soak (release build; 500+ scenarios is a couple of seconds):
//
//   ./bench_fuzz_soak --count 1000 --seed-base 1 --differential-every 7
//
// Every scenario is derived from one seed; a violation prints a line like
//
//   VIOLATION kind=agreement spec=amacfuzz1:seed=42:alg=...:crashes=3@7
//   minimal  spec=amacfuzz1:seed=42:alg=...:n=3:...
//
// Reproduce either one (bit-identical run, same digest) with
//
//   ./bench_fuzz_soak --replay 'amacfuzz1:seed=42:alg=...'
//   ./bench_fuzz_soak --replay 42          # bare seed = generated scenario
//
// Coverage-steered mutation: every run folds its EngineStats, its
// mac::ProtocolStats, and its run shape into a CoverageSignature (which
// queue paths ran, how far the run went, crash/hold interaction bits — and
// the PROTOCOL dimensions: round/phase depth, Ben-Or coin-flip depth,
// wPAXOS proposal/change traffic, gather progress, all in the same
// quarter-log buckets). Scenarios that produce a signature never seen
// before enter a bounded in-memory corpus, and with
//
//   ./bench_fuzz_soak --count 20000 --mutate 0.35
//
// that fraction of runs is spent mutating corpus entries instead of blind
// generation. Mutation bases are RARITY-WEIGHTED (CoverageCorpus::
// select_base): an entry is drawn with probability inverse to how often
// its signature has been hit across the soak, so the budget concentrates
// on the thinly-explored frontier. The op set perturbs one fack/release/
// crash tick, adds/drops/retimes a hold, splices the topology+scheduler
// of two entries — and, since signature-space v2, perturbs SCRIPTED
// TIMELINES: kScriptTimeline converts a base into a ScriptedScheduler
// scenario with drawn per-broadcast slots, and retime/swap/duplicate/drop
// ops then rearrange those slots, so the paper's hand-built
// counterexample orderings (Theorem 3.3-style) are inside the search
// space. Mutants are clamped back into each algorithm's guarantee
// envelope (clamp_to_envelope; inside_envelope() checks the fixpoint), so
// a mutant violation is always a real bug. The soak summary prints the
// coverage table ("distinct coverage signatures: N" plus engine-only /
// protocol-dimension splits); CI asserts the mutating soak strictly
// widens full-signature AND protocol-dimension coverage over pure
// generation at the same budget, and that the full signature count
// strictly exceeds its engine-only projection.
//
// Unreliable links (signature-space v3): a scenario may carry a
// mac::LinkFaultPlan — global drop/duplicate rates in basis points and
// per-link drop windows. Spec grammar: `:drop=150` / `:dup=50` (parts per
// 10000, omitted when zero) and `:faults=from@to@start@until,...` where
// `until` is a tick (transient outage: deliveries in [start, until) are
// DEFERRED to until, the ack stretching past them) or `inf` (permanent
// cut: copies are lost outright). Every drop/duplicate decision is a pure
// seed-salted hash of (broadcast, sender, receiver), so faulted runs
// replay bit-identically on BOTH engines and differential sampling keeps
// working under faults. The generator never draws faults — they enter
// through the fault mutation ops (add/remove/widen/narrow a drop window,
// perturb rates), the soak-wide --fault-rate/--dup-rate floors, and
// hand-written specs — so the pinned seed-only corpus digest is untouched
// by their existence.
//
// Bounded-loss envelope rules (clamp_to_envelope): synchronous-only
// algorithms get no faults at all; two-phase keeps only deferral faults
// (zero drop rate, finite windows — permanent loss genuinely breaks its
// agreement); wPAXOS never sees duplicate rates (acceptor responses carry
// tallied counts with no dedup); flooding and Ben-Or take arbitrary loss
// and duplication. Termination is demanded only of fault-free or
// deferral-only scenarios (rates zero, every window finite);
// agreement/validity stay demanded ALWAYS. The Lemma 4.2 monitor assumes
// reliable delivery, so it is gated off whenever the plan is non-empty.
// The drop/duplicate magnitudes join the coverage signature as two
// saturated log4 buckets, and the shrinker reduces fault plans toward the
// empty plan (drop windows removed, rates binary-searched toward 0) before
// value-minimizing what survives.
//
// Large topologies (signature-space v4): `--large-every K --large-n N`
// promotes every K-th generated scenario to an N-node counterpart
// (fuzz::promote_to_large — bounded-degree sparse shapes, clique-locked
// algorithms remapped to flooding, a shortened safety horizon), so scale
// bugs (lane sizing, wheel resizes at depth, batch reservation) get the
// same one-line `--replay` repro as everything else. The scenario's size
// joins the signature as a saturated log4 bucket. Reference replays scan
// all n^2 pending slots per delivery, so differential sampling skips
// scenarios above `--differential-max-n` (counted in the summary); and
// `--max-seconds S` bounds the whole soak by wall clock — each shard stops
// starting new runs once the deadline passes (budgeted soaks trade digest
// reproducibility for a predictable CI footprint).
//
// The log-service family (signature-space v6): a scenario with `log=ops@
// batch@window@lease` fields runs log::ReplicatedLog — a slot sequence with
// elected leases, CommitFlood fast-path slots, stalled-slot recovery, and
// post-crash re-election — instead of a one-shot instance. `--log-every K`
// promotes every K-th generated scenario into the family
// (fuzz::promote_to_log_service, knobs drawn from the scenario's seed), and
// the kLogService/kPerturbLogKnobs mutation ops enter and explore it from
// the corpus; the generator itself never draws it, so the pinned seed-only
// corpus digest is untouched. Service runs are judged by the service's own
// per-slot oracle PLUS a log-level one: verify::check_log_prefix folds each
// live replica's contiguous decided prefix into a digest and demands
// equality across replicas (replicated-state-machine consistency, not just
// per-slot agreement). How many slots fell to recovery and how many lease
// re-elections ran join the signature as two saturated log4 buckets, with
// flag bits for "ran the service" and "lease broken at exit" — so a soak
// that promotes into the family reaches engine-signature corners an
// instance-only soak cannot, which CI asserts as a set difference over the
// printed engine-key lists. Differential replay is skipped for the family
// (the frozen ReferenceNetwork has no instance multiplexing), counted with
// the other skips in the summary.
//
//   --corpus-out FILE   write the final corpus as spec lines (one per line)
//   --corpus-in FILE    pre-seed the mutation corpus from such a file
//                       (# and blank lines are skipped)
//   --no-protocol-stats A/B switch: skip ProtocolStats collection (the
//                       engine-only signature space; digests identical)
//   --sig-version       print kSignatureSpaceVersion and exit
//
// The nightly lane (.github/workflows/nightly.yml) runs a long-horizon
// mutating soak with a date-derived --seed-base and a PERSISTENT corpus:
// the previous night's corpus is restored from actions/cache (keyed on
// kSignatureSpaceVersion, date-fallback prefix match), pre-seeded via
// --corpus-in, and the widened corpus is cached back — each night resumes
// from the frontier instead of rediscovering it. Bump
// kSignatureSpaceVersion whenever a signature dimension is added/removed/
// re-bucketed so stale frontiers are dropped.
//
// Shrinking is two-phase: greedy structural reduction (drop crashes/holds,
// shrink n, halve fack) followed by schedule-space value minimization —
// each surviving hold release and crash time is binary-searched toward 0
// (and fack toward 1), so the printed minimal spec carries threshold
// VALUES, not just the fewest entries: a hold at release=37 in a minimal
// repro means 36 provably does not reproduce (for monotone failures).
//
// Sharded parallel soak: --jobs N partitions the seed range into N
// contiguous per-shard seed streams and runs each shard on its own thread
// with a PRIVATE Fuzzer state — its own CoverageCorpus, stats block, and
// mutation RNG (salted by the shard's first seed, so shard 0 of a 1-job
// soak reproduces the historical single-thread mutation stream exactly).
// No mutable state is shared on the hot path; when every shard finishes,
// the per-shard results are merged in CANONICAL SEED ORDER (shard index,
// then run order within the shard — never completion order):
//
//   * the corpus digest folds every run fingerprint in seed order, so the
//     merged digest is BIT-IDENTICAL to a single-threaded soak of the same
//     range — `--jobs 4` on the pinned 504 corpus reports the same
//     0x4bc22ec0b0a6e511 as `--jobs 1` (tests/test_fuzz_shard.cpp pins
//     this, and the CI lanes assert it on every push);
//   * distinct-signature coverage merges as a union of per-shard
//     signature maps — set union is partition- and order-independent, so
//     every distinct/engine/protocol count matches the sequential soak;
//   * per-algorithm/per-scheduler tallies and fault counters are sums;
//     failures and repro lists concatenate in canonical order;
//   * the merged mutation corpus concatenates shard corpora in canonical
//     order (deduplicated by spec), keeping the newest corpus_max entries.
//
// Runs themselves are seed-deterministic and state-isolated, so with
// mutation OFF the sharded run executes the exact same scenario set as the
// sequential one (differential sampling keys off the GLOBAL run index).
// With mutation ON, mutant interleaving is shard-local: a mutating soak is
// exactly reproducible for a fixed (seed-base, count, jobs) triple, but
// different job counts explore different mutant streams — only the
// seed-only digest is invariant across job counts, which is precisely
// what the pinned-corpus lanes run.
//
// How the corpus is pinned: the CI smoke lane and tests/test_fuzz_smoke.cpp
// run the FIXED seed range [1, N] (seed-base 1) with mutation OFF, so the
// pinned corpus only changes when the generator itself changes — a
// generator edit shows up as a reviewable corpus-digest change in the
// smoke test, never as silent drift (mutation never alters seed-only
// generation; the digest with --mutate 0 is bit-identical to PR 2/3).
// Scenarios that once exposed bugs are pinned FOREVER as full spec lines
// (not bare seeds) in tests/test_fuzz_regressions.cpp, immune to generator
// AND mutator evolution.
//
// Extending coverage: a new algorithm joins by extending
// harness::Algorithm + algorithm_factory and teaching generate_scenario its
// envelope (topology/scheduler/crash constraints) plus clamp_to_envelope
// the same constraints; a new scheduler joins via SchedulerKind +
// build_scenario. Everything downstream — oracle, differential replay,
// coverage signatures, mutation, shrinking, soak lane, repro specs — is
// inherited. A new engine-path counter becomes a coverage dimension by
// extending CoverageSignature and coverage_signature(); a new ALGORITHM
// observable becomes one by overriding mac::Process::protocol_stats and
// bucketing the field here. Either way, bump kSignatureSpaceVersion.
// ---------------------------------------------------------------------------
#pragma once

#include <array>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "fuzz/scenario.hpp"
#include "verify/checker.hpp"

namespace amac::fuzz {

enum class FailureKind : std::uint8_t {
  kNone = 0,
  kAgreement = 1,     ///< two nodes decided differently
  kValidity = 2,      ///< a decided value was nobody's input
  kTermination = 3,   ///< liveness expected but some node never decided
  kInvariant = 4,     ///< Lemma 4.2 response-conservation monitor tripped
  kDifferential = 5,  ///< calendar vs reference engine fingerprint mismatch
};

[[nodiscard]] const char* failure_name(FailureKind k);

struct RunOptions {
  bool differential = false;  ///< also replay on the reference engine
  bool with_monitor = true;   ///< wPAXOS Lemma 4.2 monitor (wpaxos only)
  /// Collect mac::ProtocolStats after the run (a post-run const read of
  /// process observables — provably perturbation-free; the determinism
  /// regression in tests/test_fuzz_smoke.cpp asserts digests are
  /// bit-identical with this on and off).
  bool collect_protocol_stats = true;
};

/// Everything observed from one scenario execution.
struct RunReport {
  verify::ConsensusVerdict verdict;
  mac::EngineStats stats;
  mac::ProtocolStats protocol;  ///< algorithm-level counters (when collected)
  mac::Time end_time = 0;
  bool condition_met = false;
  std::uint64_t trace_digest = 0;  ///< engine event-trace digest
  std::uint64_t fingerprint = 0;   ///< trace + verdict + stats + decisions
  std::uint64_t monitor_checks = 0;
  std::size_t mid_flight_crashes = 0;  ///< crashes that cancelled in-flight
                                       ///< deliveries (the non-atomic
                                       ///< broadcast edge case)
  bool differential_ran = false;
  std::uint64_t reference_fingerprint = 0;  ///< when differential_ran
  FailureKind failure = FailureKind::kNone;
  std::string detail;  ///< human-readable failure description
  // Log-service observables (zero/false for the instance family). The
  // verdict above is synthesized for service runs: agreement/validity fold
  // the service's per-slot oracle plus the applied-prefix digest equality,
  // termination is service completion.
  bool log_service = false;  ///< the run drove a log::ReplicatedLog
  std::size_t log_slots_recovered = 0;  ///< slots that fell to the slow path
  std::size_t log_re_elections = 0;     ///< renewals that changed the leader
  bool log_lease_broken = false;  ///< lease still broken when drive returned
  std::uint64_t log_kv_digest = 0;  ///< applied state-machine digest
};

/// Builds, runs, and judges one scenario (deterministic: same scenario,
/// same report bit for bit).
[[nodiscard]] RunReport run_scenario(const Scenario& s,
                                     const RunOptions& options = {});

// ---- coverage -----------------------------------------------------------

/// Version of the signature space: the set of CoverageSignature dimensions
/// and their bucketing. Bump it whenever a signature field is added,
/// removed, or re-bucketed — persisted corpora (the nightly actions/cache
/// frontier) are keyed on it, so a signature-space change starts a fresh
/// frontier instead of resuming against stale novelty bookkeeping.
/// History: 1 = PR-4 engine-only dimensions; 2 = + protocol dimensions
/// (round/coin/proposal/learned buckets) and the scripted scheduler kind;
/// 3 = + link-fault dimensions (drop/duplicate magnitude buckets) — the
/// engine projection outgrew 64 bits alongside the protocol buckets, so
/// key() became a hash combine of the two projections; 4 = + the scenario
/// size bucket (saturated log4 of n), so large-topology runs are novel by
/// construction and scale-dependent engine paths get corpus slots;
/// 5 = + the stability quiet-reset bucket (how often late learning reset a
/// node's quiet-phase counter), so runs that stress the stability
/// algorithm's convergence detection are distinguishable from
/// straight-line floods;
/// 6 = + the log-service dimensions (recovered-slot and re-election
/// buckets, plus the kLogService/kLeaseBroken flag bits) — the scenario
/// family that runs the replicated log instead of a one-shot instance.
inline constexpr std::uint32_t kSignatureSpaceVersion = 6;

/// Quarter-log (log4) magnitude bucket: 0 -> 0, otherwise
/// 1 + floor(log4(v)) — boundaries at exact powers of four. Exact counts
/// would make every run's signature unique and novelty meaningless; coarse
/// magnitude buckets keep the signature space small enough that blind
/// generation saturates it and novelty measures paths, not identity.
[[nodiscard]] std::uint8_t magnitude_bucket(std::uint64_t v);

/// magnitude_bucket saturated at 15, so the bucket packs in 4 bits (the
/// protocol dimensions use this; 4^14 is far beyond any realistic count).
[[nodiscard]] std::uint8_t saturated_bucket(std::uint64_t v);

/// What a run exercised, folded into a small discrete signature: run-shape
/// features read off EngineStats (wheel vs overflow vs batch traffic
/// bucketed by magnitude, resize count, how many ack windows the run
/// took), the scheduler kind, the crash/hold interaction bits — and, since
/// signature-space v2, the PROTOCOL dimensions read off mac::ProtocolStats
/// (round/phase depth, Ben-Or coin-flip depth, wPAXOS proposal traffic,
/// gather progress, bucketed the same quarter-log way). Two runs with equal
/// keys drove the same engine paths AND reached the same protocol corners
/// at the same order of magnitude; a never-seen key is the novelty signal
/// that admits a scenario into the mutation corpus.
///
/// Deliberately NOT part of the signature: the algorithm and topology.
/// Those dimensions are swept exhaustively by the generator anyway, and
/// folding them in makes nearly every fresh seed "novel" — the signature
/// must saturate under blind generation so that novelty measures engine
/// paths, not scenario identity. Buckets are quarter-log (log4) for the
/// same reason.
struct CoverageSignature {
  // Flag bits (flags field).
  static constexpr std::uint8_t kHasCrashes = 1u << 0;
  static constexpr std::uint8_t kMidFlightCrash = 1u << 1;
  static constexpr std::uint8_t kHasHolds = 1u << 2;
  static constexpr std::uint8_t kLateHolds = 1u << 3;
  static constexpr std::uint8_t kTerminationExpected = 1u << 4;
  static constexpr std::uint8_t kConditionMet = 1u << 5;
  // Log-service bits (signature-space v6); both zero for the instance
  // family, so pre-v6 signatures survive unchanged there.
  static constexpr std::uint8_t kLogService = 1u << 6;  ///< ran ReplicatedLog
  static constexpr std::uint8_t kLeaseBroken = 1u << 7; ///< lease broken at exit

  std::uint8_t scheduler = 0;        ///< SchedulerKind
  /// Saturated log4 bucket of the scenario's n (signature-space v4). Size
  /// IS a signature dimension, unlike algorithm/topology: engine behavior
  /// genuinely bifurcates with scale (lane growth, wheel resizes, batch
  /// reservation sizes), and the generator does NOT sweep it — large
  /// scenarios only enter via promotion/specs, so the dimension cannot
  /// make every fresh seed novel. Bucket >= 6 <=> n >= 1024.
  std::uint8_t size_bucket = 0;
  std::uint8_t wheel_bucket = 0;     ///< log4 bucket of wheel pushes
  std::uint8_t overflow_bucket = 0;  ///< log4 bucket of overflow pushes
  std::uint8_t batch_bucket = 0;     ///< log4 bucket of batch fan-outs
  std::uint8_t resize_bucket = 0;    ///< wheel resizes, saturated at 3
  std::uint8_t decide_bucket = 0;    ///< log4 of end_time / fack (ack windows)
  std::uint8_t flags = 0;            ///< kHasCrashes | ... interaction bits
  std::uint8_t failure = 0;          ///< FailureKind
  // Link-fault dimensions (signature-space v3): how much loss and
  // duplication the run's fault plan actually inflicted, saturated log4
  // buckets of EngineStats::drops / ::duplicates. Fault-free runs bucket
  // to 0, so the v2 signatures survive unchanged under an empty plan.
  std::uint8_t drop_bucket = 0;  ///< dropped + deferred copies
  std::uint8_t dup_bucket = 0;   ///< duplicated copies
  // Protocol dimensions (signature-space v2), saturated log4 buckets of the
  // run's aggregated mac::ProtocolStats.
  std::uint8_t round_bucket = 0;     ///< max round / phase / proposal tag
  std::uint8_t coin_bucket = 0;      ///< Ben-Or coin flips
  std::uint8_t proposal_bucket = 0;  ///< wPAXOS proposals + change events
  std::uint8_t learned_bucket = 0;   ///< widest gather set (flooding et al.)
  /// Stability quiet-phase resets (signature-space v5): how often late
  /// learning pulled a node's quiet counter back to zero. Zero for every
  /// other algorithm, so pre-v5 signatures survive unchanged there.
  std::uint8_t quiet_bucket = 0;
  // Log-service dimensions (signature-space v6), saturated log4 buckets of
  // LogServiceStats: how much of the service's recovery and re-election
  // machinery the run exercised. Zero for the instance family. Engine
  // dimensions, not protocol ones — they describe which service code paths
  // (relaunch, lease restore) the multiplexed engine drove.
  std::uint8_t recover_bucket = 0;  ///< slots recovered to the slow path
  std::uint8_t reelect_bucket = 0;  ///< lease re-elections

  /// The identity: equal keys <=> equal signatures (up to hash collision —
  /// since v3 the engine projection plus the protocol buckets no longer
  /// fit 64 packed bits, so the key is a hash combine of the two
  /// projections).
  [[nodiscard]] std::uint64_t key() const;

  /// The engine-only projection (protocol dimensions zeroed): the PR-4
  /// space plus, since v3, the two fault buckets. The soak counts distinct
  /// engine keys separately so CI can assert the protocol dimension
  /// strictly refines it.
  [[nodiscard]] std::uint64_t engine_key() const;

  /// The protocol-only projection (the protocol buckets alone): how many
  /// distinct ALGORITHM corners a soak reached, independent of which
  /// queue paths carried them.
  [[nodiscard]] std::uint64_t protocol_key() const;
};

/// Derives the signature of one executed scenario.
[[nodiscard]] CoverageSignature coverage_signature(const Scenario& s,
                                                   const RunReport& r);

/// Bounded corpus of signature-novel scenarios: the mutation engine's seed
/// pool. `observe` records a signature (counting every hit, novel or not)
/// and reports novelty; `admit` stores a scenario as a mutation base
/// (ring-replacing the oldest when full, so the pool tracks the novelty
/// frontier). Signature bookkeeping and scenario storage are split because
/// only clean (non-violating) runs may become mutation bases — mutating a
/// known violation would just re-find it.
///
/// Mutation-base selection is RARITY-WEIGHTED: `select_base` samples
/// entries with probability inversely proportional to how often their
/// signature has been hit across the whole soak, so the mutator spends its
/// budget on the thinly-explored frontier instead of re-mutating the
/// signatures blind generation reaches anyway (entries whose signature was
/// never observed — --corpus-in pre-seeds — count as hit once, i.e.
/// maximally rare). The statistical pin lives in tests/
/// test_fuzz_coverage.cpp: over a skewed corpus, rare signatures are drawn
/// at >= 2x their uniform share.
class CoverageCorpus {
 public:
  explicit CoverageCorpus(std::size_t max_entries = 256)
      : max_entries_(max_entries == 0 ? 1 : max_entries) {}

  /// Records `sig` (incrementing its hit count); true iff its key was
  /// never seen before.
  bool observe(const CoverageSignature& sig);

  /// Adds a mutation base (ring-replaces the oldest entry when full),
  /// remembering its signature key for rarity weighting.
  void admit(const Scenario& s, std::uint64_t sig_key = 0);

  /// Rarity-weighted draw of a mutation base (see class comment).
  /// Deterministic given the rng state. Requires size() > 0.
  [[nodiscard]] const Scenario& select_base(util::Rng& rng) const;

  /// Rarity-weighted draw of a SPLICE PARTNER: same inverse-frequency
  /// weighting as select_base, so cross-scenario splices pull structure
  /// from the thinly-explored frontier instead of re-importing whatever
  /// signature dominates the pool. Kept separate from select_base so the
  /// base and partner draws each consume exactly one uniform variate (the
  /// mutant stream stays reproducible spec-for-spec). Requires size() > 0.
  [[nodiscard]] const Scenario& select_partner(util::Rng& rng) const;

  /// How often a signature key has been observed (0 if never).
  [[nodiscard]] std::uint64_t hits(std::uint64_t sig_key) const;

  /// The full key -> observation-count map (shard merging sums these).
  [[nodiscard]] const std::map<std::uint64_t, std::uint64_t>& hit_counts()
      const {
    return hits_;
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const Scenario& entry(std::size_t i) const {
    return entries_[i].scenario;
  }
  [[nodiscard]] std::vector<Scenario> entries() const;
  [[nodiscard]] std::size_t distinct_signatures() const {
    return hits_.size();
  }

 private:
  struct Entry {
    Scenario scenario;
    std::uint64_t sig_key = 0;
  };

  std::size_t max_entries_;
  std::size_t next_replace_ = 0;
  std::vector<Entry> entries_;
  std::map<std::uint64_t, std::uint64_t> hits_;  ///< sig key -> observations
};

// ---- shrinking ----------------------------------------------------------

struct ShrinkOptions {
  std::size_t max_attempts = 150;  ///< total candidate re-runs
  /// Phase 2 (schedule-space value minimization): binary-search each
  /// surviving hold release and crash time toward 0 and fack toward 1.
  /// On by default; off reproduces the PR-2 structural-only shrinker.
  bool minimize_values = true;
};

struct ShrinkResult {
  Scenario scenario;           ///< the minimal still-failing scenario
  RunReport report;            ///< its failing report
  std::size_t attempts = 0;    ///< candidate runs spent
  std::size_t reductions = 0;  ///< accepted shrink steps
};

/// Two-phase scenario minimization. Phase 1 (structural, greedy):
/// repeatedly tries dropping crashes and holds, halving/decrementing n,
/// and lowering the delay bound, keeping any transform after which the run
/// still fails with the SAME FailureKind. Phase 2 (schedule-space, when
/// ShrinkOptions::minimize_values): binary-searches each surviving hold
/// release and crash time toward 0 and fack toward 1, so the minimal spec
/// carries threshold values — for monotone failures, decrementing any
/// minimized value makes the violation disappear. The phases alternate
/// until a fixpoint or the attempt budget runs out.
/// Requires run_scenario(s, options).failure == kind.
[[nodiscard]] ShrinkResult shrink_scenario(const Scenario& s,
                                           FailureKind kind,
                                           const RunOptions& options = {},
                                           const ShrinkOptions& shrink = {});

// ---- soak loop ----------------------------------------------------------

struct SoakOptions {
  std::uint64_t seed_base = 1;
  std::size_t count = 500;
  /// Worker threads (--jobs): the seed range is partitioned into this many
  /// contiguous shards, each run on its own thread with private fuzzer
  /// state, then merged in canonical seed order (see the sharding section
  /// of the header comment). 1 (the default) runs the historical
  /// sequential loop on the calling thread; any value reports the same
  /// corpus digest for a mutation-free soak of the same seed range.
  /// Clamped to [1, count].
  std::size_t jobs = 1;
  /// Every k-th scenario is replayed differentially on the reference
  /// engine (0 disables differential sampling).
  std::size_t differential_every = 7;
  bool shrink_failures = true;
  std::size_t max_shrink_attempts = 150;
  /// Fraction of runs spent mutating coverage-corpus entries instead of
  /// generating from the seed stream. 0 (the default) disables mutation
  /// entirely and reproduces the PR-2/3 soak bit for bit — the pinned
  /// corpus digest depends on this. The mutation RNG is derived from
  /// seed_base, so a mutating soak is as reproducible as a pure one.
  double mutate_ratio = 0.0;
  /// Bound on the mutation corpus (signature-novel scenarios kept).
  std::size_t corpus_max = 256;
  /// Collect ProtocolStats per run (see RunOptions::collect_protocol_stats;
  /// off reproduces the engine-only signature space for A/B assertions —
  /// digests are bit-identical either way).
  bool collect_protocol_stats = true;
  /// Soak-wide link-fault floors (--fault-rate / --dup-rate, fractions in
  /// [0, 1]): every scenario's drop/duplicate rate is raised to at least
  /// this much, then clamped back into its algorithm's bounded-loss
  /// envelope (synchronous-only algorithms stay fault-free, two-phase
  /// drops its drop rate, wpaxos its duplicate rate). 0 (the default)
  /// leaves scenarios untouched, so the pinned corpus digest is preserved.
  double fault_rate = 0.0;
  double dup_rate = 0.0;
  /// Every k-th GENERATED (never mutated) scenario is promoted to a
  /// large-topology counterpart of `large_n` nodes via promote_to_large
  /// (--large-every / --large-n). 0 (the default) disables promotion and
  /// leaves the seed stream untouched — the pinned corpus digest depends
  /// on this. Promotion happens after the fault floors, so large scenarios
  /// carry the soak's fault envelope too; keyed off the GLOBAL run index,
  /// so the promoted set is identical across job counts.
  std::size_t large_every = 0;
  std::size_t large_n = 4096;
  /// Every k-th GENERATED (never mutated) scenario is rewritten into the
  /// log-service family via promote_to_log_service (--log-every). 0 (the
  /// default) disables promotion — the pinned corpus digest depends on
  /// this. Applied after the fault floors (the family clamp re-scrubs
  /// faults anyway) and WINNING over large promotion when both trigger on
  /// one index (a large-n service soak would dominate the shard); keyed off
  /// the GLOBAL run index, so the promoted set is identical across job
  /// counts.
  std::size_t log_every = 0;
  /// Wall-clock budget in seconds (--max-seconds; 0 = unlimited). Each
  /// shard checks the deadline before every run and stops early once it
  /// passes, recording the skipped remainder in budget_skipped. A budgeted
  /// soak is NOT digest-reproducible (how far it gets depends on the
  /// machine) — the pinned-corpus lanes never set this; the nightly's
  /// bounded step asserts only violations, not digests.
  double max_seconds = 0.0;
  /// Differential replays are skipped for scenarios with n above this cap
  /// (--differential-max-n; 0 = unlimited): the frozen ReferenceNetwork
  /// scans all n^2 pending slots per delivery, so one 4096-node replay
  /// would cost more than the rest of the soak combined. Skips are counted
  /// in SoakResult::differential_skipped and surfaced in the summary.
  std::size_t differential_max_n = 1024;
  /// Pre-seeded mutation bases (--corpus-in), run before anything else.
  std::vector<Scenario> initial_corpus;
  /// Progress callback after every scenario (may be empty).
  std::function<void(std::size_t index, const Scenario&, const RunReport&)>
      on_scenario;
};

struct SoakFailure {
  Scenario scenario;
  Scenario minimal;  ///< == scenario when shrinking is off
  RunReport report;  ///< report of `minimal`
};

/// Aggregated view of the signature space a soak explored, printed as the
/// coverage table in the soak summary. All counts are over DISTINCT
/// signatures, not runs.
struct CoverageSummary {
  std::size_t distinct = 0;
  /// Distinct ENGINE-ONLY projections (CoverageSignature::engine_key): the
  /// PR-4 signature space. CI asserts distinct > engine_distinct — the
  /// protocol dimension must strictly refine the engine one.
  std::size_t engine_distinct = 0;
  /// Distinct PROTOCOL-ONLY projections (protocol_key): how many distinct
  /// algorithm corners (round/coin/proposal/learned bucket tuples) ran.
  std::size_t protocol_distinct = 0;
  std::array<std::size_t, kSchedulerKindCount> per_scheduler{};
  std::size_t overflow_sigs = 0;  ///< signatures with overflow traffic
  std::size_t resize_sigs = 0;    ///< signatures where the wheel resized
  std::size_t batch_sigs = 0;     ///< signatures with batch fan-outs
  std::size_t crash_sigs = 0;     ///< signatures with crashes
  std::size_t hold_sigs = 0;      ///< signatures with holdback holds
  std::size_t protocol_sigs = 0;  ///< signatures with protocol traffic
                                  ///< (any nonzero protocol bucket)
  std::size_t fault_sigs = 0;     ///< signatures with link-fault traffic
                                  ///< (nonzero drop or duplicate bucket)
  std::size_t large_sigs = 0;     ///< signatures from large scenarios
                                  ///< (size_bucket >= 6, i.e. n >= 1024)
  std::size_t log_sigs = 0;       ///< signatures from log-service runs
                                  ///< (kLogService flag set)
};

struct SoakResult {
  std::size_t runs = 0;
  std::size_t differential_runs = 0;
  std::array<std::size_t, harness::kAlgorithmCount> per_algorithm{};
  std::size_t crash_scenarios = 0;
  std::size_t mid_flight_crash_scenarios = 0;
  /// Calendar-path coverage: how the corpus's events split between the
  /// wheel and the overflow heap, and how many scenarios exercised the
  /// overflow and self-resize paths (late holds, far crash plans). Surfaced
  /// in the soak summary so CI logs show the resize path really ran.
  std::uint64_t wheel_events = 0;
  std::uint64_t overflow_events = 0;
  std::size_t overflow_scenarios = 0;  ///< scenarios with >= 1 heap event
  std::size_t resized_scenarios = 0;   ///< scenarios where the wheel resized
  /// Link-fault traffic across the soak: copies the fault plans dropped or
  /// deferred, copies they duplicated, and how many scenarios ran with a
  /// non-empty plan at all. Surfaced in the soak summary so CI logs show
  /// the fault paths really ran.
  std::uint64_t dropped_frames = 0;
  std::uint64_t duplicated_frames = 0;
  std::size_t faulted_scenarios = 0;
  std::size_t mutated_runs = 0;     ///< runs drawn from the mutation engine
  std::size_t novel_runs = 0;       ///< runs with a never-seen signature
  std::size_t large_scenarios = 0;  ///< runs promoted to the large family
  std::size_t log_scenarios = 0;    ///< runs in the log-service family
                                    ///< (promoted, mutated, or pre-seeded)
  /// Differential replays skipped because the scenario's n exceeded
  /// SoakOptions::differential_max_n (they still ran and were checked on
  /// the calendar engine — only the reference A/B was skipped).
  std::size_t differential_skipped = 0;
  /// Runs never started because the --max-seconds budget expired first.
  std::size_t budget_skipped = 0;
  CoverageSummary coverage;         ///< distinct-signature breakdown
  /// Every distinct protocol projection (CoverageSignature::protocol_key)
  /// the soak reached, as a set — printed by the soak summary so the CI
  /// acceptance assertion can be a SET DIFFERENCE: the mutating soak must
  /// reach protocol corners pure generation missed. (A count comparison is
  /// the wrong pin: replacing half the generated stream with mutants can
  /// lose a pure corner for every mutant corner gained, so strict
  /// count-widening flips on noise while the difference stays non-empty.)
  std::set<std::uint64_t> protocol_keys;
  /// Every distinct engine projection (engine_key) the soak reached, as a
  /// set — printed by the soak summary so the log-family CI assertion can
  /// also be a set difference: a --log-every soak must reach engine
  /// corners (recovered/re-election buckets, the service flag bits) an
  /// instance-only soak cannot.
  std::set<std::uint64_t> engine_keys;
  std::vector<Scenario> corpus;     ///< final mutation corpus (--corpus-out)
  std::uint64_t corpus_digest = 0;  ///< fold of every run fingerprint: the
                                    ///< one number that pins the corpus
  std::vector<SoakFailure> failures;

  [[nodiscard]] bool ok() const { return failures.empty(); }
};

/// Runs scenarios for seeds [seed_base, seed_base + count), collecting
/// failures (each shrunk to a minimal repro when enabled). With
/// SoakOptions::jobs > 1 the range is sharded across threads and the
/// per-shard results merged in canonical seed order — the merged corpus
/// digest of a mutation-free soak is bit-identical to jobs == 1.
[[nodiscard]] SoakResult run_soak(const SoakOptions& options);

// ---- sharding (the parallel soak's building blocks) ---------------------
//
// run_soak == partition_soak -> run_soak_shard (one thread each) ->
// merge_soak_shards. The pieces are public so the merge-determinism tests
// can run shards individually and merge them in arbitrary completion
// orders (tests/test_fuzz_shard.cpp).

/// One contiguous slice of a soak's run-index range.
struct SoakShard {
  std::size_t shard_index = 0;  ///< canonical merge position
  std::size_t first_index = 0;  ///< global run index of the first scenario
  std::size_t count = 0;        ///< runs in this shard
};

/// Splits `count` runs into at most `jobs` contiguous shards in ascending
/// seed order, sizes differing by at most one (earlier shards take the
/// remainder). jobs is clamped to [1, count]; count == 0 yields no shards.
[[nodiscard]] std::vector<SoakShard> partition_soak(std::size_t count,
                                                    std::size_t jobs);

/// Everything one shard observed, carrying both its local SoakResult and
/// the raw material the canonical merge needs (per-run fingerprints in
/// seed order, per-key signature structs and hit counts, projection key
/// sets). Self-contained: two shards share no state, so shards may run on
/// concurrent threads and merge in any completion order.
struct ShardSoakResult {
  std::size_t shard_index = 0;
  std::size_t first_index = 0;
  /// Fingerprint of every run, in seed order; the merged corpus digest is
  /// the canonical-order fold of these across shards.
  std::vector<std::uint64_t> fingerprints;
  /// First-seen signature struct per distinct key (key equality implies
  /// struct equality, so first-seen is canonical).
  std::map<std::uint64_t, CoverageSignature> signatures;
  std::map<std::uint64_t, std::uint64_t> sig_hits;  ///< key -> observations
  std::set<std::uint64_t> engine_keys;    ///< distinct engine projections
  std::set<std::uint64_t> protocol_keys;  ///< distinct protocol projections
  /// Shard-local counters, failures, and mutation corpus (its coverage
  /// table describes this shard alone; the merge recomputes the union).
  SoakResult local;
};

/// Runs one shard sequentially on the calling thread: scenarios for global
/// run indices [shard.first_index, shard.first_index + shard.count), with
/// a private CoverageCorpus and a mutation RNG salted by the shard's first
/// seed. Shard 0 of a single-shard partition reproduces the historical
/// sequential soak exactly.
[[nodiscard]] ShardSoakResult run_soak_shard(const SoakOptions& options,
                                             const SoakShard& shard);

/// Merges per-shard results in canonical seed order (sorted by
/// shard_index — completion/vector order is irrelevant, which the
/// shuffle-merge test pins): digests fold per-run fingerprints in seed
/// order, signature bookkeeping merges as map/set unions, tallies sum,
/// failures concatenate, and the merged corpus keeps the newest
/// corpus_max spec-deduplicated entries.
[[nodiscard]] SoakResult merge_soak_shards(const SoakOptions& options,
                                           std::vector<ShardSoakResult> shards);

}  // namespace amac::fuzz
