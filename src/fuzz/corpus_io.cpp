#include "fuzz/corpus_io.hpp"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

namespace amac::fuzz {

CorpusLoadResult load_corpus_stream(std::istream& in, const std::string& name,
                                    bool strict, std::ostream* warnings) {
  CorpusLoadResult res;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    const auto scenario = parse_spec(line);
    if (!scenario) {
      if (strict) {
        std::ostringstream os;
        os << name << ":" << lineno << ": malformed corpus spec: " << line;
        res.error = os.str();
        return res;  // ok == false
      }
      ++res.skipped;
      if (warnings != nullptr) {
        *warnings << "warning: " << name << ":" << lineno
                  << ": skipping malformed corpus spec: " << line << "\n";
      }
      continue;
    }
    res.scenarios.push_back(*scenario);
  }
  res.loaded = res.scenarios.size();
  // A file that parses to NOTHING despite having spec lines is a failed
  // load even in tolerant mode: resuming "from" it would silently restart
  // the frontier, which is the failure mode strictness exists to catch.
  if (res.loaded == 0 && res.skipped > 0) {
    std::ostringstream os;
    os << name << ": every corpus spec line is malformed (" << res.skipped
       << " skipped)";
    res.error = os.str();
    return res;  // ok == false
  }
  res.ok = true;
  return res;
}

CorpusLoadResult load_corpus_file(const std::string& path, bool strict,
                                  std::ostream* warnings) {
  std::ifstream in(path);
  if (!in) {
    CorpusLoadResult res;
    res.error = "cannot read corpus file: " + path;
    return res;  // ok == false
  }
  return load_corpus_stream(in, path, strict, warnings);
}

bool write_corpus_file(const std::string& path,
                       const std::vector<Scenario>& corpus,
                       std::string* error) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      if (error != nullptr) *error = "cannot write corpus file: " + tmp;
      return false;
    }
    out << "# bench_fuzz_soak coverage corpus: one replayable spec per line\n";
    for (const auto& s : corpus) out << format_spec(s) << "\n";
    out.flush();
    if (!out) {
      if (error != nullptr) *error = "write failed: " + tmp;
      std::remove(tmp.c_str());
      return false;
    }
  }
  // POSIX rename is atomic: the destination is either the old corpus or
  // the complete new one, never a truncated mix.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error != nullptr) *error = "cannot rename " + tmp + " to " + path;
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace amac::fuzz
