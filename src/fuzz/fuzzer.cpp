#include "fuzz/fuzzer.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>
#include <thread>
#include <type_traits>

#include "log/replicated_log.hpp"
#include "log/workload.hpp"
#include "mac/reference_engine.hpp"
#include "verify/invariants.hpp"

namespace amac::fuzz {

namespace {

/// Raw observations from one engine execution; fingerprint covers every
/// field plus per-node decisions, so two observations are behaviorally
/// identical iff their fingerprints match (up to hash collision).
struct Observation {
  verify::ConsensusVerdict verdict;
  mac::EngineStats stats;
  mac::ProtocolStats protocol;
  mac::Time end_time = 0;
  bool condition_met = false;
  std::uint64_t trace_digest = 0;
  std::uint64_t fingerprint = 0;
  std::uint64_t monitor_checks = 0;
  bool monitor_violated = false;
  std::string monitor_report;
  std::size_t mid_flight_crashes = 0;
};

template <typename Net>
Observation run_on_engine(const Scenario& s, bool with_monitor,
                          bool collect_protocol = false) {
  BuiltScenario b = build_scenario(s);
  const std::size_t count = b.graph.node_count();
  Net net(b.graph, b.factory, *b.scheduler);
  net.enable_trace_digest();
  // Both engines take the same pure-hash fault plan, so faulted
  // differential replays stay bit-identical.
  if (!b.faults.empty()) net.set_link_faults(b.faults);
  for (const auto& plan : b.crashes) net.schedule_crash(plan);
  // Late holds: the calendar wheel was sized from the pre-hold fack() at
  // construction, so the held deliveries must take the overflow-heap path.
  if (s.late_holds) apply_holds(s, b);

  Observation obs;
  // The Lemma 4.2 monitor reads calendar-engine internals; differential
  // replays on the reference engine skip it (it observes, never steers, so
  // its absence cannot change the reference run).
  std::optional<verify::ResponseConservationMonitor> monitor;
  if constexpr (std::is_same_v<Net, mac::Network>) {
    // The Lemma 4.2 ledger assumes reliable delivery (every response copy
    // eventually arrives exactly once); a non-empty fault plan deliberately
    // breaks that, so the monitor stands down rather than reporting
    // injected loss as a conservation bug.
    if (with_monitor && s.algorithm == harness::Algorithm::kWPaxos &&
        b.faults.empty()) {
      monitor.emplace(b.ids);
    }
  }
  std::vector<bool> seen_crashed(count, false);
  const bool watch_crashes = !b.crashes.empty();
  if (monitor.has_value() || watch_crashes) {
    net.set_post_event_hook([&](Net& n) {
      if (watch_crashes) {
        for (NodeId u = 0; u < count; ++u) {
          if (!seen_crashed[u] && n.crashed(u)) {
            seen_crashed[u] = true;
            // A crash with copies still pending exercises the non-atomic
            // broadcast cancellation path (some neighbors receive, some
            // never do).
            if (n.in_flight_from(u) > 0) ++obs.mid_flight_crashes;
          }
        }
      }
      if constexpr (std::is_same_v<Net, mac::Network>) {
        if (monitor.has_value()) monitor->check(n);
      }
    });
  }

  const auto result = net.run(mac::StopWhen::kAllDecided, s.horizon);
  obs.verdict = verify::check_consensus(net, b.inputs);
  obs.stats = net.stats();
  // Protocol stats are a post-run const read of process observables, so
  // collecting them cannot perturb the run (the determinism regression
  // pins digests equal with collection on and off). Reference-engine
  // replays skip it: the protocol dimension never enters fingerprints.
  if constexpr (std::is_same_v<Net, mac::Network>) {
    if (collect_protocol) obs.protocol = harness::collect_protocol_stats(net);
  }
  obs.end_time = result.end_time;
  obs.condition_met = result.condition_met;
  obs.trace_digest = net.trace_digest();
  if (monitor.has_value()) {
    obs.monitor_checks = monitor->checks_performed();
    obs.monitor_violated = monitor->violated();
    obs.monitor_report = monitor->report();
  }

  util::Hasher h;
  h.mix_u64(obs.trace_digest);
  obs.verdict.digest(h);
  h.mix_u64(obs.stats.broadcasts);
  h.mix_u64(obs.stats.dropped_busy);
  h.mix_u64(obs.stats.deliveries);
  h.mix_u64(obs.stats.acks);
  h.mix_u64(obs.stats.payload_bytes);
  h.mix_u64(obs.stats.max_payload_bytes);
  h.mix_u64(obs.stats.peak_events);
  // Fault counters join the fingerprint only when the plan inflicted any:
  // fault-free runs keep the exact pre-fault fingerprint (the pinned
  // 504-corpus digest depends on this), while faulted differential pairs
  // must agree on the injected loss too.
  if (obs.stats.drops != 0 || obs.stats.duplicates != 0) {
    h.mix_u64(obs.stats.drops);
    h.mix_u64(obs.stats.duplicates);
  }
  h.mix_u64(obs.end_time);
  h.mix_bool(obs.condition_met);
  for (NodeId u = 0; u < count; ++u) {
    const auto& d = net.decision(u);
    h.mix_bool(d.decided);
    h.mix_i64(d.value);
    h.mix_u64(d.time);
    h.mix_bool(net.crashed(u));
  }
  obs.fingerprint = h.digest();
  return obs;
}

/// Runs a log-service scenario (s.log_ops > 0): a log::ReplicatedLog over
/// the scenario's transport instead of a one-shot instance. The service
/// runs its own per-slot oracle as slots decide; on top of it the
/// log-level oracle (verify::check_log_prefix) demands applied-prefix
/// digest equality across live replicas. The verdict is synthesized from
/// those, and the fingerprint folds the service observables (kv digest,
/// prefix digest, stats, per-node crash flags) — no event-trace digest,
/// which is fine because differential replay is skipped for the family
/// anyway (the frozen ReferenceNetwork has no instance multiplexing).
RunReport run_log_scenario(const Scenario& s) {
  BuiltScenario b = build_scenario(s);
  log::LogConfig cfg;
  cfg.batch_size = s.log_batch;
  cfg.window = s.log_window;
  cfg.lease_slots = s.log_lease;
  cfg.crashes = b.crashes;
  const log::Workload workload(s.seed, s.log_ops);
  log::ReplicatedLog service(b.graph, *b.scheduler, workload, cfg);
  // Late holds keep their engine-level meaning: the service's Network sized
  // its wheel from the pre-hold bound, so held deliveries take the
  // overflow-heap path mid-service.
  if (s.late_holds) apply_holds(s, b);
  const log::LogServiceStats& st = service.drive(s.horizon);

  std::vector<mac::InstanceId> slot_instances;
  slot_instances.reserve(st.slots_total);
  for (std::size_t slot = 0; slot < st.slots_total; ++slot) {
    slot_instances.push_back(service.slot_instance(slot));
  }
  const verify::LogPrefixVerdict prefix =
      verify::check_log_prefix(service.network(), slot_instances);

  RunReport r;
  r.log_service = true;
  r.stats = service.network().stats();
  r.end_time = st.end_time;
  r.condition_met = st.complete;
  r.log_slots_recovered = st.slots_recovered;
  r.log_re_elections = st.re_elections;
  r.log_lease_broken = !st.lease_ok;
  r.log_kv_digest = service.state_machine().digest();
  r.verdict.agreement = st.oracle_failures == 0 && prefix.consistent;
  r.verdict.validity = st.oracle_failures == 0;
  r.verdict.termination = st.complete;

  util::Hasher h;
  h.mix_u64(0x1065E21CE);  // family tag: log fingerprints never alias
  h.mix_u64(r.log_kv_digest);
  h.mix_u64(prefix.digest);
  h.mix_u64(prefix.common_prefix);
  h.mix_u64(st.slots_decided);
  h.mix_u64(st.slots_full_paxos);
  h.mix_u64(st.slots_leased);
  h.mix_u64(st.slots_recovered);
  h.mix_u64(st.relaunches);
  h.mix_u64(st.re_elections);
  h.mix_u64(st.ops_applied);
  h.mix_u64(st.oracle_failures);
  h.mix_u64(r.stats.broadcasts);
  h.mix_u64(r.stats.deliveries);
  h.mix_u64(r.stats.payload_bytes);
  h.mix_u64(st.end_time);
  h.mix_bool(st.complete);
  h.mix_bool(st.lease_ok);
  h.mix_u64(st.leader);
  for (NodeId u = 0; u < b.graph.node_count(); ++u) {
    h.mix_bool(service.network().crashed(u));
  }
  r.fingerprint = h.digest();

  if (st.oracle_failures > 0) {
    r.failure = FailureKind::kAgreement;
    std::ostringstream os;
    os << "log per-slot oracle failures: " << st.oracle_failures << " (of "
       << st.slots_decided << " decided slots)";
    r.detail = os.str();
  } else if (!prefix.consistent) {
    r.failure = FailureKind::kAgreement;
    r.detail = "log " + prefix.detail;
  } else if (termination_expected(s) && !st.complete) {
    r.failure = FailureKind::kTermination;
    std::ostringstream os;
    os << "log service incomplete: " << st.slots_decided << "/"
       << st.slots_total << " slots decided, " << st.ops_applied << "/"
       << s.log_ops << " ops applied by t=" << st.end_time << " (horizon "
       << s.horizon
       << (st.horizon_exhausted ? ", horizon exhausted" : ", recovery gave up")
       << ")";
    r.detail = os.str();
  }
  return r;
}

}  // namespace

const char* failure_name(FailureKind k) {
  switch (k) {
    case FailureKind::kNone: return "none";
    case FailureKind::kAgreement: return "agreement";
    case FailureKind::kValidity: return "validity";
    case FailureKind::kTermination: return "termination";
    case FailureKind::kInvariant: return "invariant";
    case FailureKind::kDifferential: return "differential";
  }
  AMAC_ASSERT(false);
  return "?";
}

RunReport run_scenario(const Scenario& s, const RunOptions& options) {
  // The log-service family runs a whole replicated log, not a one-shot
  // instance; its report is synthesized from the service's own oracle plus
  // the log-prefix check, and differential replay never applies (callers
  // must not request it — run_soak_shard skips and counts those).
  if (s.log_ops > 0) return run_log_scenario(s);

  const Observation obs = run_on_engine<mac::Network>(
      s, options.with_monitor, options.collect_protocol_stats);

  RunReport r;
  r.verdict = obs.verdict;
  r.stats = obs.stats;
  r.protocol = obs.protocol;
  r.end_time = obs.end_time;
  r.condition_met = obs.condition_met;
  r.trace_digest = obs.trace_digest;
  r.fingerprint = obs.fingerprint;
  r.monitor_checks = obs.monitor_checks;
  r.mid_flight_crashes = obs.mid_flight_crashes;

  if (!obs.verdict.agreement) {
    r.failure = FailureKind::kAgreement;
    r.detail = "agreement violated: " + obs.verdict.summary();
  } else if (!obs.verdict.validity) {
    r.failure = FailureKind::kValidity;
    r.detail = "validity violated: " + obs.verdict.summary();
  } else if (obs.monitor_violated) {
    r.failure = FailureKind::kInvariant;
    r.detail = obs.monitor_report;
  } else if (termination_expected(s) && !obs.condition_met) {
    r.failure = FailureKind::kTermination;
    std::ostringstream os;
    os << "termination expected but run stopped at t=" << obs.end_time
       << " (horizon " << s.horizon << "): " << obs.verdict.summary();
    r.detail = os.str();
  }

  if (options.differential && r.failure == FailureKind::kNone) {
    const Observation ref =
        run_on_engine<mac::ReferenceNetwork>(s, /*with_monitor=*/false);
    r.differential_ran = true;
    r.reference_fingerprint = ref.fingerprint;
    if (ref.fingerprint != obs.fingerprint) {
      r.failure = FailureKind::kDifferential;
      std::ostringstream os;
      os << "engine divergence: calendar fingerprint " << std::hex
         << obs.fingerprint << " (trace " << obs.trace_digest
         << ") vs reference " << ref.fingerprint << " (trace "
         << ref.trace_digest << ")";
      r.detail = os.str();
    }
  }
  return r;
}

// ---- coverage -----------------------------------------------------------

std::uint8_t magnitude_bucket(std::uint64_t v) {
  return static_cast<std::uint8_t>((std::bit_width(v) + 1) / 2);
}

std::uint8_t saturated_bucket(std::uint64_t v) {
  return std::min<std::uint8_t>(magnitude_bucket(v), 15);
}

std::uint64_t CoverageSignature::key() const {
  // Since v3 the engine projection (52 bits) plus the four 4-bit protocol
  // buckets no longer pack into 64 bits, so the full key hash-combines the
  // two projections. Equal signatures still give equal keys; distinct ones
  // collide only with Hasher probability.
  util::Hasher h;
  h.mix_u64(engine_key());
  h.mix_u64(protocol_key());
  return h.digest();
}

std::uint64_t CoverageSignature::engine_key() const {
  // 64 bits packed (4+4+6+6+6+4+6+8+4+4+4+4+4): exactly one word — any
  // further dimension must move the key to hash-combining like key() does.
  std::uint64_t k = 0;
  const auto pack = [&k](std::uint64_t v, unsigned bits) {
    AMAC_ASSERT(v < (std::uint64_t{1} << bits));
    k = (k << bits) | v;
  };
  pack(scheduler, 4);
  pack(size_bucket, 4);
  pack(wheel_bucket, 6);
  pack(overflow_bucket, 6);
  pack(batch_bucket, 6);
  pack(resize_bucket, 4);
  pack(decide_bucket, 6);
  pack(flags, 8);
  pack(failure, 4);
  pack(drop_bucket, 4);
  pack(dup_bucket, 4);
  pack(recover_bucket, 4);
  pack(reelect_bucket, 4);
  return k;
}

std::uint64_t CoverageSignature::protocol_key() const {
  return (std::uint64_t{quiet_bucket} << 16) |
         (std::uint64_t{round_bucket} << 12) |
         (std::uint64_t{coin_bucket} << 8) |
         (std::uint64_t{proposal_bucket} << 4) | learned_bucket;
}

CoverageSignature coverage_signature(const Scenario& s, const RunReport& r) {
  CoverageSignature sig;
  sig.scheduler = static_cast<std::uint8_t>(s.scheduler);
  sig.size_bucket = saturated_bucket(s.n);
  sig.wheel_bucket = magnitude_bucket(r.stats.wheel_pushes);
  sig.overflow_bucket = magnitude_bucket(r.stats.overflow_pushes);
  sig.batch_bucket = magnitude_bucket(r.stats.batch_pushes);
  sig.resize_bucket = static_cast<std::uint8_t>(
      std::min<std::uint64_t>(r.stats.wheel_resizes, 3));
  sig.decide_bucket =
      magnitude_bucket(r.end_time / std::max<mac::Time>(s.fack, 1));
  sig.drop_bucket = saturated_bucket(r.stats.drops);
  sig.dup_bucket = saturated_bucket(r.stats.duplicates);
  sig.round_bucket = saturated_bucket(r.protocol.max_round);
  sig.coin_bucket = saturated_bucket(r.protocol.coin_flips);
  sig.proposal_bucket =
      saturated_bucket(r.protocol.proposals + r.protocol.change_events);
  sig.learned_bucket = saturated_bucket(r.protocol.max_learned);
  sig.quiet_bucket = saturated_bucket(r.protocol.quiet_resets);
  if (!s.crashes.empty()) sig.flags |= CoverageSignature::kHasCrashes;
  if (r.mid_flight_crashes > 0) sig.flags |= CoverageSignature::kMidFlightCrash;
  if (!s.holds.empty()) sig.flags |= CoverageSignature::kHasHolds;
  if (s.late_holds) sig.flags |= CoverageSignature::kLateHolds;
  if (termination_expected(s)) {
    sig.flags |= CoverageSignature::kTerminationExpected;
  }
  if (r.condition_met) sig.flags |= CoverageSignature::kConditionMet;
  if (r.log_service) {
    sig.flags |= CoverageSignature::kLogService;
    if (r.log_lease_broken) sig.flags |= CoverageSignature::kLeaseBroken;
  }
  sig.recover_bucket = saturated_bucket(r.log_slots_recovered);
  sig.reelect_bucket = saturated_bucket(r.log_re_elections);
  sig.failure = static_cast<std::uint8_t>(r.failure);
  return sig;
}

bool CoverageCorpus::observe(const CoverageSignature& sig) {
  return ++hits_[sig.key()] == 1;
}

void CoverageCorpus::admit(const Scenario& s, std::uint64_t sig_key) {
  if (entries_.size() < max_entries_) {
    entries_.push_back(Entry{s, sig_key});
    return;
  }
  entries_[next_replace_] = Entry{s, sig_key};
  next_replace_ = (next_replace_ + 1) % max_entries_;
}

std::uint64_t CoverageCorpus::hits(std::uint64_t sig_key) const {
  const auto it = hits_.find(sig_key);
  return it == hits_.end() ? 0 : it->second;
}

const Scenario& CoverageCorpus::select_base(util::Rng& rng) const {
  AMAC_EXPECTS(!entries_.empty());
  // Inverse-frequency weights: an entry whose signature has been hit h
  // times weighs 1/h, so a once-seen frontier signature is h times more
  // likely to be mutated than one the soak keeps rediscovering. Entries
  // with no recorded signature (--corpus-in pre-seeds, before their first
  // run) count as hit once — maximally rare, which front-loads resuming
  // the persisted frontier. One rng draw either way, so a mutating soak
  // stays exactly reproducible from its seed base.
  double total = 0.0;
  for (const auto& e : entries_) {
    total += 1.0 / static_cast<double>(std::max<std::uint64_t>(
                       hits(e.sig_key), 1));
  }
  double draw = rng.uniform01() * total;
  for (const auto& e : entries_) {
    draw -= 1.0 / static_cast<double>(std::max<std::uint64_t>(
                      hits(e.sig_key), 1));
    if (draw < 0.0) return e.scenario;
  }
  return entries_.back().scenario;  // floating-point edge: last entry
}

const Scenario& CoverageCorpus::select_partner(util::Rng& rng) const {
  // Identical inverse-frequency weighting as select_base, as its own
  // entry point: the partner draw must consume exactly one uniform
  // variate regardless of how select_base evolves, so splice streams
  // replay bit-for-bit from a soak's seed base.
  return select_base(rng);
}

std::vector<Scenario> CoverageCorpus::entries() const {
  std::vector<Scenario> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.scenario);
  return out;
}

// ---- shrinking ----------------------------------------------------------

namespace {

[[nodiscard]] std::vector<Scenario> shrink_candidates(const Scenario& s) {
  std::vector<Scenario> out;
  const auto add = [&](Scenario cand) {
    normalize_scenario(cand);
    if (format_spec(cand) != format_spec(s)) out.push_back(std::move(cand));
  };
  // Biggest reductions first: the greedy loop restarts after every
  // acceptance, so early wins compound.
  if (s.n >= 4) {
    Scenario cand = s;
    cand.n = s.n / 2;
    add(std::move(cand));
  }
  if (s.n >= 3) {
    Scenario cand = s;
    cand.n = s.n - 1;
    add(std::move(cand));
  }
  for (std::size_t i = 0; i < s.crashes.size(); ++i) {
    Scenario cand = s;
    cand.crashes.erase(cand.crashes.begin() +
                       static_cast<std::ptrdiff_t>(i));
    add(std::move(cand));
  }
  for (std::size_t i = 0; i < s.holds.size(); ++i) {
    Scenario cand = s;
    cand.holds.erase(cand.holds.begin() + static_cast<std::ptrdiff_t>(i));
    add(std::move(cand));
  }
  for (std::size_t i = 0; i < s.script.size(); ++i) {
    Scenario cand = s;
    cand.script.erase(cand.script.begin() + static_cast<std::ptrdiff_t>(i));
    add(std::move(cand));
  }
  // Fault-plan reduction toward the empty plan: drop each window, zero
  // each rate, and collapse per-receiver script slots back to uniform.
  for (std::size_t i = 0; i < s.faults.size(); ++i) {
    Scenario cand = s;
    cand.faults.erase(cand.faults.begin() + static_cast<std::ptrdiff_t>(i));
    add(std::move(cand));
  }
  if (s.drop_rate_bp != 0) {
    Scenario cand = s;
    cand.drop_rate_bp = 0;
    add(std::move(cand));
  }
  if (s.dup_rate_bp != 0) {
    Scenario cand = s;
    cand.dup_rate_bp = 0;
    add(std::move(cand));
  }
  for (std::size_t i = 0; i < s.script.size(); ++i) {
    if (s.script[i].delays.empty()) continue;
    Scenario cand = s;
    cand.script[i].delays.clear();  // back to the uniform `recv` slot
    add(std::move(cand));
    for (std::size_t j = 0; j < s.script[i].delays.size(); ++j) {
      cand = s;
      cand.script[i].delays.erase(cand.script[i].delays.begin() +
                                  static_cast<std::ptrdiff_t>(j));
      add(std::move(cand));
    }
  }
  if (s.fack > 1) {
    Scenario cand = s;
    cand.fack = s.fack / 2;
    add(std::move(cand));
    cand = s;
    cand.fack = s.fack - 1;
    add(std::move(cand));
  }
  // Log-service knobs. Leaving the family entirely (log_ops = 0) is the
  // biggest reduction when the failure isn't service-specific; the halving
  // probes use normalize's [1, ...] floors, deliberately below the mutation
  // envelope's — a minimal repro may be smaller than anything the soak
  // would generate.
  if (s.log_ops > 0) {
    Scenario cand = s;
    cand.log_ops = 0;
    add(std::move(cand));
    if (s.log_ops > 1) {
      cand = s;
      cand.log_ops = s.log_ops / 2;
      add(std::move(cand));
    }
    if (s.log_batch > 1) {
      cand = s;
      cand.log_batch = s.log_batch / 2;
      add(std::move(cand));
    }
    if (s.log_window > 1) {
      cand = s;
      cand.log_window = s.log_window / 2;
      add(std::move(cand));
    }
    if (s.log_lease > 1) {
      cand = s;
      cand.log_lease = s.log_lease / 2;
      add(std::move(cand));
    }
  }
  return out;
}

}  // namespace

ShrinkResult shrink_scenario(const Scenario& s, FailureKind kind,
                             const RunOptions& options,
                             const ShrinkOptions& shrink) {
  AMAC_EXPECTS(kind != FailureKind::kNone);
  // Differential divergences need the differential replay to reproduce;
  // every other kind shrinks faster without it.
  RunOptions run_options = options;
  run_options.differential = kind == FailureKind::kDifferential;

  ShrinkResult res;
  res.scenario = s;
  res.report = run_scenario(s, run_options);
  ++res.attempts;
  AMAC_EXPECTS(res.report.failure == kind);

  /// Runs one candidate against the budget; non-null iff it still fails
  /// with the same kind.
  const auto try_candidate =
      [&](const Scenario& cand) -> std::optional<RunReport> {
    if (res.attempts >= shrink.max_attempts) return std::nullopt;
    ++res.attempts;
    RunReport rep = run_scenario(cand, run_options);
    if (rep.failure != kind) return std::nullopt;
    return rep;
  };

  /// Phase 2 worker: binary search for the smallest value in [floor,
  /// current) that still reproduces the failure, committing every
  /// successful probe. For monotone failures the committed value is the
  /// exact threshold: one less provably does not reproduce.
  const auto minimize_value =
      [&](mac::Time floor, mac::Time current,
          const std::function<void(Scenario&, mac::Time)>& set) -> bool {
    bool reduced = false;
    mac::Time lo = floor;
    mac::Time hi = current;
    while (lo < hi && res.attempts < shrink.max_attempts) {
      const mac::Time mid = lo + (hi - lo) / 2;
      Scenario cand = res.scenario;
      set(cand, mid);
      normalize_scenario(cand);
      if (auto rep = try_candidate(cand)) {
        res.scenario = std::move(cand);
        res.report = std::move(*rep);
        ++res.reductions;
        reduced = true;
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return reduced;
  };

  bool progress = true;
  while (progress && res.attempts < shrink.max_attempts) {
    progress = false;

    // Phase 1: greedy structural reduction (drop entries, shrink n/fack).
    bool improved = true;
    while (improved && res.attempts < shrink.max_attempts) {
      improved = false;
      for (const Scenario& cand : shrink_candidates(res.scenario)) {
        if (auto rep = try_candidate(cand)) {
          res.scenario = cand;
          res.report = std::move(*rep);
          ++res.reductions;
          improved = true;
          progress = true;
          break;  // restart the candidate scan from the smaller scenario
        }
        if (res.attempts >= shrink.max_attempts) break;
      }
    }
    if (!shrink.minimize_values) break;

    // Phase 2: schedule-space value minimization over what survived.
    // Value edits never change entry counts, so indexing by position is
    // stable across the pass; a successful pass loops back to phase 1
    // (a smaller release can unlock further structural drops).
    for (std::size_t i = 0; i < res.scenario.holds.size(); ++i) {
      progress |= minimize_value(
          0, res.scenario.holds[i].release,
          [i](Scenario& c, mac::Time v) { c.holds[i].release = v; });
    }
    for (std::size_t i = 0; i < res.scenario.crashes.size(); ++i) {
      progress |= minimize_value(
          0, res.scenario.crashes[i].when,
          [i](Scenario& c, mac::Time v) { c.crashes[i].when = v; });
    }
    // Scripted slots: receive delay toward 1, then ack toward the (possibly
    // just-shrunk) receive delay — normalize keeps recv <= ack throughout.
    for (std::size_t i = 0; i < res.scenario.script.size(); ++i) {
      progress |= minimize_value(
          1, res.scenario.script[i].recv,
          [i](Scenario& c, mac::Time v) { c.script[i].recv = v; });
      progress |= minimize_value(
          res.scenario.script[i].recv, res.scenario.script[i].ack,
          [i](Scenario& c, mac::Time v) { c.script[i].ack = v; });
      // Per-receiver listed delays toward 1 (position-stable: normalize
      // keeps them receiver-sorted and receivers are unique).
      for (std::size_t j = 0; j < res.scenario.script[i].delays.size();
           ++j) {
        progress |= minimize_value(
            1, res.scenario.script[i].delays[j].second,
            [i, j](Scenario& c, mac::Time v) {
              c.script[i].delays[j].second = v;
            });
      }
    }
    // Fault plans: rates binary-search toward 0 (the fault-free envelope),
    // finite drop windows narrow toward a single tick. kForever windows
    // carry no searchable value; phase 1's removal candidates cover them.
    progress |= minimize_value(0, res.scenario.drop_rate_bp,
                               [](Scenario& c, mac::Time v) {
                                 c.drop_rate_bp =
                                     static_cast<std::uint32_t>(v);
                               });
    progress |= minimize_value(0, res.scenario.dup_rate_bp,
                               [](Scenario& c, mac::Time v) {
                                 c.dup_rate_bp =
                                     static_cast<std::uint32_t>(v);
                               });
    for (std::size_t i = 0; i < res.scenario.faults.size(); ++i) {
      const mac::Time from = res.scenario.faults[i].from_tick;
      const mac::Time until = res.scenario.faults[i].until_tick;
      if (until == mac::kForever) continue;
      progress |= minimize_value(
          from + 1, until,
          [i](Scenario& c, mac::Time v) { c.faults[i].until_tick = v; });
    }
    // Scripted scenarios derive fack from their slots (normalize), so a
    // direct fack probe would re-run an identical spec; the slot passes
    // above already minimized it.
    if (res.scenario.scheduler != SchedulerKind::kScripted) {
      progress |= minimize_value(
          1, res.scenario.fack,
          [](Scenario& c, mac::Time v) { c.fack = v; });
    }
  }
  return res;
}

// ---- soak loop ----------------------------------------------------------

namespace {

/// Folds a novel signature into the distinct-signature breakdown table.
void note_signature(CoverageSummary& cov, const CoverageSignature& sig) {
  ++cov.distinct;
  if (sig.scheduler < kSchedulerKindCount) ++cov.per_scheduler[sig.scheduler];
  if (sig.overflow_bucket > 0) ++cov.overflow_sigs;
  if (sig.resize_bucket > 0) ++cov.resize_sigs;
  if (sig.batch_bucket > 0) ++cov.batch_sigs;
  if (sig.flags & CoverageSignature::kHasCrashes) ++cov.crash_sigs;
  if (sig.flags & CoverageSignature::kHasHolds) ++cov.hold_sigs;
  if (sig.protocol_key() != 0) ++cov.protocol_sigs;
  if (sig.drop_bucket > 0 || sig.dup_bucket > 0) ++cov.fault_sigs;
  if (sig.size_bucket >= 6) ++cov.large_sigs;  // log4 bucket 6 <=> n >= 1024
  if (sig.flags & CoverageSignature::kLogService) ++cov.log_sigs;
}

}  // namespace

std::vector<SoakShard> partition_soak(std::size_t count, std::size_t jobs) {
  std::vector<SoakShard> shards;
  if (count == 0) return shards;
  jobs = std::clamp<std::size_t>(jobs, 1, count);
  // Contiguous blocks in ascending seed order, sizes differing by at most
  // one: canonical merge order == shard order == seed order.
  const std::size_t chunk = count / jobs;
  const std::size_t rem = count % jobs;
  std::size_t next = 0;
  for (std::size_t k = 0; k < jobs; ++k) {
    SoakShard shard;
    shard.shard_index = k;
    shard.first_index = next;
    shard.count = chunk + (k < rem ? 1 : 0);
    next += shard.count;
    shards.push_back(shard);
  }
  return shards;
}

ShardSoakResult run_soak_shard(const SoakOptions& options,
                               const SoakShard& shard) {
  ShardSoakResult out;
  out.shard_index = shard.shard_index;
  out.first_index = shard.first_index;
  out.fingerprints.reserve(shard.count);
  SoakResult& result = out.local;
  util::Hasher corpus_hash;
  CoverageCorpus corpus(options.corpus_max);
  // Pre-seeded bases carry no observed signature yet (sig_key 0, hits 0):
  // rarity weighting treats them as maximally rare, so a resumed nightly
  // frontier is mutated first (every shard resumes from the full frontier).
  for (const Scenario& s : options.initial_corpus) corpus.admit(s);
  // Distinct projections of every observed signature: the engine-only
  // (PR-4) space and the protocol-only space, reported separately so CI
  // can assert the protocol dimension strictly refines engine coverage.
  std::set<std::uint64_t>& engine_seen = out.engine_keys;
  std::set<std::uint64_t>& protocol_seen = out.protocol_keys;
  // The mutation stream is salted off the shard's FIRST SEED, so mutant
  // interleaving is shard-local and a mutating soak is exactly
  // reproducible for a fixed (seed-base, count, jobs) triple. A
  // single-shard soak salts with seed_base + 0 — the historical stream
  // bit for bit. With mutate_ratio == 0 the rng is never drawn and the
  // run is bit-identical to the pre-mutation soak loop (the pinned
  // 504-corpus digest depends on this).
  util::Hasher mutate_seed;
  mutate_seed.mix_u64(options.seed_base + shard.first_index);
  mutate_seed.mix_u64(0x4D757461746F72ULL);  // "Mutator"
  util::Rng mutate_rng(mutate_seed.digest());
  // Wall-clock budget (--max-seconds): each shard measures from its OWN
  // start, so every shard gets the full budget and a budgeted sharded soak
  // ends within one scenario of the deadline. Runs never started are
  // tallied, not silently dropped.
  const bool budgeted = options.max_seconds > 0.0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(budgeted ? options.max_seconds : 0.0));

  for (std::size_t i = shard.first_index;
       i < shard.first_index + shard.count; ++i) {
    if (budgeted && std::chrono::steady_clock::now() >= deadline) {
      result.budget_skipped += shard.first_index + shard.count - i;
      break;
    }
    Scenario s;
    bool mutated = false;
    if (options.mutate_ratio > 0.0 && corpus.size() > 0 &&
        mutate_rng.chance(options.mutate_ratio)) {
      // Rarity-weighted base selection: mutate the frontier, not the
      // signatures blind generation reaches anyway.
      const Scenario& base = corpus.select_base(mutate_rng);
      const Scenario* splice = nullptr;
      if (corpus.size() > 1 && mutate_rng.chance(0.35)) {
        // Partner selection is rarity-weighted too (same inverse-frequency
        // draw as the base), so splices import structure from the
        // frontier rather than from whichever signature floods the pool.
        splice = &corpus.select_partner(mutate_rng);
      }
      s = mutate_scenario(base, splice, mutate_rng);
      mutated = true;
    } else {
      s = generate_scenario(options.seed_base + i);
    }
    if (options.fault_rate > 0.0 || options.dup_rate > 0.0) {
      // Soak-wide fault floors: raise the scenario's rates to at least the
      // CLI floor, then clamp back into its algorithm's bounded-loss
      // envelope (which re-zeroes them where safety cannot take the
      // faults). With both floors at 0 this branch never runs, so the
      // pinned digest is untouched.
      const auto floor_bp = [](double rate) {
        return static_cast<std::uint32_t>(
            rate * static_cast<double>(mac::LinkFaultPlan::kRateScale) +
            0.5);
      };
      s.drop_rate_bp = std::max(s.drop_rate_bp, floor_bp(options.fault_rate));
      s.dup_rate_bp = std::max(s.dup_rate_bp, floor_bp(options.dup_rate));
      clamp_to_envelope(s);
    }
    if (!mutated && options.log_every != 0 && i % options.log_every == 0) {
      // Log-service family: promote every k-th GENERATED scenario to run
      // the whole replicated log. Wins over the large promotion on a
      // shared index (a 4096-node log run would dominate the shard), and
      // like it is keyed off the GLOBAL run index so the promoted set is
      // identical across job counts. Promotion clamps to the log envelope
      // itself, scrubbing any fault floors applied above.
      promote_to_log_service(s);
    } else if (!mutated && options.large_every != 0 &&
               i % options.large_every == 0) {
      // Large-topology family: promote every k-th GENERATED scenario (the
      // mutation envelope caps mutants at 24 nodes regardless, and fresh
      // generation keeps the family's other dimensions varied). Applied
      // AFTER the fault floors — clamp_to_envelope would shrink n right
      // back — and keyed off the GLOBAL run index, so the promoted set is
      // identical across job counts.
      promote_to_large(s, static_cast<std::uint32_t>(options.large_n));
      ++result.large_scenarios;
    }

    RunOptions run_options;
    const bool diff_due = options.differential_every != 0 &&
                          i % options.differential_every == 0;
    // Size-aware sampling: the frozen reference engine scans all n^2
    // pending slots per delivery, so replaying a 4096-node scenario there
    // would dominate the soak. Skips are counted, never silent.
    const bool diff_too_large =
        options.differential_max_n != 0 && s.n > options.differential_max_n;
    // The frozen reference engine predates instance multiplexing, so the
    // log-service family cannot replay there at all; count those skips
    // with the size-based ones.
    const bool diff_log = s.log_ops > 0;
    run_options.differential = diff_due && !diff_too_large && !diff_log;
    if (diff_due && (diff_too_large || diff_log)) {
      ++result.differential_skipped;
    }
    run_options.collect_protocol_stats = options.collect_protocol_stats;
    const RunReport report = run_scenario(s, run_options);

    ++result.runs;
    if (mutated) ++result.mutated_runs;
    if (run_options.differential) ++result.differential_runs;
    ++result.per_algorithm[static_cast<std::size_t>(s.algorithm)];
    if (!s.crashes.empty()) ++result.crash_scenarios;
    if (report.mid_flight_crashes > 0) ++result.mid_flight_crash_scenarios;
    result.wheel_events += report.stats.wheel_pushes;
    result.overflow_events += report.stats.overflow_pushes;
    if (report.stats.overflow_pushes > 0) ++result.overflow_scenarios;
    if (report.stats.wheel_resizes > 0) ++result.resized_scenarios;
    result.dropped_frames += report.stats.drops;
    result.duplicated_frames += report.stats.duplicates;
    if (s.drop_rate_bp != 0 || s.dup_rate_bp != 0 || !s.faults.empty()) {
      ++result.faulted_scenarios;
    }
    // Family membership, not promotion: mutants that entered via the
    // kLogService op and pre-seeded log corpus entries count too.
    if (s.log_ops > 0) ++result.log_scenarios;
    corpus_hash.mix_u64(report.fingerprint);
    out.fingerprints.push_back(report.fingerprint);

    const CoverageSignature sig = coverage_signature(s, report);
    if (engine_seen.insert(sig.engine_key()).second) {
      ++result.coverage.engine_distinct;
    }
    if (protocol_seen.insert(sig.protocol_key()).second) {
      ++result.coverage.protocol_distinct;
    }
    if (corpus.observe(sig)) {
      ++result.novel_runs;
      note_signature(result.coverage, sig);
      out.signatures.emplace(sig.key(), sig);
      // Only clean runs become mutation bases: mutating a known violation
      // would just keep re-finding it.
      if (report.failure == FailureKind::kNone) corpus.admit(s, sig.key());
    }

    if (report.failure != FailureKind::kNone) {
      SoakFailure failure;
      failure.scenario = s;
      failure.minimal = s;
      failure.report = report;
      if (options.shrink_failures) {
        ShrinkOptions shrink;
        shrink.max_attempts = options.max_shrink_attempts;
        auto shrunk =
            shrink_scenario(s, report.failure, run_options, shrink);
        failure.minimal = std::move(shrunk.scenario);
        failure.report = std::move(shrunk.report);
      }
      result.failures.push_back(std::move(failure));
    }
    if (options.on_scenario) options.on_scenario(i, s, report);
  }
  result.corpus = corpus.entries();
  result.corpus_digest = corpus_hash.digest();
  out.sig_hits = corpus.hit_counts();
  return out;
}

SoakResult merge_soak_shards(const SoakOptions& options,
                             std::vector<ShardSoakResult> shards) {
  // Canonical order is SHARD INDEX (== ascending seed ranges), never the
  // order shards happened to finish or arrive in — the shuffle-merge test
  // hands these in arbitrary orders and demands identical output.
  std::sort(shards.begin(), shards.end(),
            [](const ShardSoakResult& a, const ShardSoakResult& b) {
              return a.shard_index < b.shard_index;
            });

  SoakResult out;
  util::Hasher digest_fold;
  std::map<std::uint64_t, CoverageSignature> signatures;
  std::map<std::uint64_t, std::uint64_t> hits;
  std::set<std::uint64_t> engine_keys;
  std::set<std::uint64_t> protocol_keys;
  std::set<std::string> corpus_specs;  // dedupe (shards share pre-seeds)
  for (ShardSoakResult& sh : shards) {
    SoakResult& loc = sh.local;
    out.runs += loc.runs;
    out.differential_runs += loc.differential_runs;
    for (std::size_t i = 0; i < out.per_algorithm.size(); ++i) {
      out.per_algorithm[i] += loc.per_algorithm[i];
    }
    out.crash_scenarios += loc.crash_scenarios;
    out.mid_flight_crash_scenarios += loc.mid_flight_crash_scenarios;
    out.wheel_events += loc.wheel_events;
    out.overflow_events += loc.overflow_events;
    out.overflow_scenarios += loc.overflow_scenarios;
    out.resized_scenarios += loc.resized_scenarios;
    out.dropped_frames += loc.dropped_frames;
    out.duplicated_frames += loc.duplicated_frames;
    out.faulted_scenarios += loc.faulted_scenarios;
    out.mutated_runs += loc.mutated_runs;
    out.large_scenarios += loc.large_scenarios;
    out.log_scenarios += loc.log_scenarios;
    out.differential_skipped += loc.differential_skipped;
    out.budget_skipped += loc.budget_skipped;
    // The merged digest folds EVERY run fingerprint in seed order — the
    // same fold a sequential soak of the whole range performs, so the
    // merged digest of a mutation-free soak is bit-identical to jobs == 1.
    for (const std::uint64_t fp : sh.fingerprints) digest_fold.mix_u64(fp);
    // Signature bookkeeping merges as unions: distinct-signature counts
    // are partition-independent (a set union doesn't care which shard, or
    // how many, saw a key first).
    for (const auto& [key, sig] : sh.signatures) signatures.emplace(key, sig);
    for (const auto& [key, n] : sh.sig_hits) hits[key] += n;
    engine_keys.insert(sh.engine_keys.begin(), sh.engine_keys.end());
    protocol_keys.insert(sh.protocol_keys.begin(), sh.protocol_keys.end());
    for (SoakFailure& f : loc.failures) out.failures.push_back(std::move(f));
    for (Scenario& s : loc.corpus) {
      if (corpus_specs.insert(format_spec(s)).second) {
        out.corpus.push_back(std::move(s));
      }
    }
  }
  // novel_runs counts first-time signature keys; chronology doesn't matter
  // — any partition observes each distinct key as novel exactly once.
  out.novel_runs = signatures.size();
  out.coverage.engine_distinct = engine_keys.size();
  out.coverage.protocol_distinct = protocol_keys.size();
  out.engine_keys = std::move(engine_keys);
  out.protocol_keys = std::move(protocol_keys);
  for (const auto& [key, sig] : signatures) {
    note_signature(out.coverage, sig);
  }
  // Bound the merged corpus like the per-shard rings: keep the NEWEST
  // corpus_max entries (the frontier), dropping from the front.
  const std::size_t cap = options.corpus_max == 0 ? 1 : options.corpus_max;
  if (out.corpus.size() > cap) {
    out.corpus.erase(out.corpus.begin(),
                     out.corpus.begin() +
                         static_cast<std::ptrdiff_t>(out.corpus.size() - cap));
  }
  out.corpus_digest = digest_fold.digest();
  return out;
}

SoakResult run_soak(const SoakOptions& options) {
  const std::vector<SoakShard> shards =
      partition_soak(options.count, options.jobs);
  std::vector<ShardSoakResult> results(shards.size());
  if (shards.size() <= 1) {
    // The historical sequential soak, on the calling thread.
    if (!shards.empty()) results[0] = run_soak_shard(options, shards[0]);
  } else {
    // One thread per shard; shards share no mutable state on the hot path.
    // Only the caller's progress callback is shared, so it is serialized.
    SoakOptions threaded = options;
    std::mutex progress_mutex;
    if (options.on_scenario) {
      const auto inner = options.on_scenario;
      threaded.on_scenario = [&progress_mutex, inner](std::size_t index,
                                                      const Scenario& s,
                                                      const RunReport& r) {
        const std::lock_guard<std::mutex> lock(progress_mutex);
        inner(index, s, r);
      };
    }
    std::vector<std::thread> workers;
    workers.reserve(shards.size());
    for (std::size_t k = 0; k < shards.size(); ++k) {
      workers.emplace_back([&threaded, &results, &shards, k] {
        results[k] = run_soak_shard(threaded, shards[k]);
      });
    }
    for (std::thread& w : workers) w.join();
  }
  return merge_soak_shards(options, std::move(results));
}

}  // namespace amac::fuzz
