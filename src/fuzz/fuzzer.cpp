#include "fuzz/fuzzer.hpp"

#include <optional>
#include <sstream>
#include <type_traits>

#include "mac/reference_engine.hpp"
#include "verify/invariants.hpp"

namespace amac::fuzz {

namespace {

/// Raw observations from one engine execution; fingerprint covers every
/// field plus per-node decisions, so two observations are behaviorally
/// identical iff their fingerprints match (up to hash collision).
struct Observation {
  verify::ConsensusVerdict verdict;
  mac::EngineStats stats;
  mac::Time end_time = 0;
  bool condition_met = false;
  std::uint64_t trace_digest = 0;
  std::uint64_t fingerprint = 0;
  std::uint64_t monitor_checks = 0;
  bool monitor_violated = false;
  std::string monitor_report;
  std::size_t mid_flight_crashes = 0;
};

template <typename Net>
Observation run_on_engine(const Scenario& s, bool with_monitor) {
  BuiltScenario b = build_scenario(s);
  const std::size_t count = b.graph.node_count();
  Net net(b.graph, b.factory, *b.scheduler);
  net.enable_trace_digest();
  for (const auto& plan : b.crashes) net.schedule_crash(plan);
  // Late holds: the calendar wheel was sized from the pre-hold fack() at
  // construction, so the held deliveries must take the overflow-heap path.
  if (s.late_holds) apply_holds(s, b);

  Observation obs;
  // The Lemma 4.2 monitor reads calendar-engine internals; differential
  // replays on the reference engine skip it (it observes, never steers, so
  // its absence cannot change the reference run).
  std::optional<verify::ResponseConservationMonitor> monitor;
  if constexpr (std::is_same_v<Net, mac::Network>) {
    if (with_monitor && s.algorithm == harness::Algorithm::kWPaxos) {
      monitor.emplace(b.ids);
    }
  }
  std::vector<bool> seen_crashed(count, false);
  const bool watch_crashes = !b.crashes.empty();
  if (monitor.has_value() || watch_crashes) {
    net.set_post_event_hook([&](Net& n) {
      if (watch_crashes) {
        for (NodeId u = 0; u < count; ++u) {
          if (!seen_crashed[u] && n.crashed(u)) {
            seen_crashed[u] = true;
            // A crash with copies still pending exercises the non-atomic
            // broadcast cancellation path (some neighbors receive, some
            // never do).
            if (n.in_flight_from(u) > 0) ++obs.mid_flight_crashes;
          }
        }
      }
      if constexpr (std::is_same_v<Net, mac::Network>) {
        if (monitor.has_value()) monitor->check(n);
      }
    });
  }

  const auto result = net.run(mac::StopWhen::kAllDecided, s.horizon);
  obs.verdict = verify::check_consensus(net, b.inputs);
  obs.stats = net.stats();
  obs.end_time = result.end_time;
  obs.condition_met = result.condition_met;
  obs.trace_digest = net.trace_digest();
  if (monitor.has_value()) {
    obs.monitor_checks = monitor->checks_performed();
    obs.monitor_violated = monitor->violated();
    obs.monitor_report = monitor->report();
  }

  util::Hasher h;
  h.mix_u64(obs.trace_digest);
  obs.verdict.digest(h);
  h.mix_u64(obs.stats.broadcasts);
  h.mix_u64(obs.stats.dropped_busy);
  h.mix_u64(obs.stats.deliveries);
  h.mix_u64(obs.stats.acks);
  h.mix_u64(obs.stats.payload_bytes);
  h.mix_u64(obs.stats.max_payload_bytes);
  h.mix_u64(obs.stats.peak_events);
  h.mix_u64(obs.end_time);
  h.mix_bool(obs.condition_met);
  for (NodeId u = 0; u < count; ++u) {
    const auto& d = net.decision(u);
    h.mix_bool(d.decided);
    h.mix_i64(d.value);
    h.mix_u64(d.time);
    h.mix_bool(net.crashed(u));
  }
  obs.fingerprint = h.digest();
  return obs;
}

}  // namespace

const char* failure_name(FailureKind k) {
  switch (k) {
    case FailureKind::kNone: return "none";
    case FailureKind::kAgreement: return "agreement";
    case FailureKind::kValidity: return "validity";
    case FailureKind::kTermination: return "termination";
    case FailureKind::kInvariant: return "invariant";
    case FailureKind::kDifferential: return "differential";
  }
  AMAC_ASSERT(false);
  return "?";
}

RunReport run_scenario(const Scenario& s, const RunOptions& options) {
  const Observation obs = run_on_engine<mac::Network>(s, options.with_monitor);

  RunReport r;
  r.verdict = obs.verdict;
  r.stats = obs.stats;
  r.end_time = obs.end_time;
  r.condition_met = obs.condition_met;
  r.trace_digest = obs.trace_digest;
  r.fingerprint = obs.fingerprint;
  r.monitor_checks = obs.monitor_checks;
  r.mid_flight_crashes = obs.mid_flight_crashes;

  if (!obs.verdict.agreement) {
    r.failure = FailureKind::kAgreement;
    r.detail = "agreement violated: " + obs.verdict.summary();
  } else if (!obs.verdict.validity) {
    r.failure = FailureKind::kValidity;
    r.detail = "validity violated: " + obs.verdict.summary();
  } else if (obs.monitor_violated) {
    r.failure = FailureKind::kInvariant;
    r.detail = obs.monitor_report;
  } else if (termination_expected(s) && !obs.condition_met) {
    r.failure = FailureKind::kTermination;
    std::ostringstream os;
    os << "termination expected but run stopped at t=" << obs.end_time
       << " (horizon " << s.horizon << "): " << obs.verdict.summary();
    r.detail = os.str();
  }

  if (options.differential && r.failure == FailureKind::kNone) {
    const Observation ref =
        run_on_engine<mac::ReferenceNetwork>(s, /*with_monitor=*/false);
    r.differential_ran = true;
    r.reference_fingerprint = ref.fingerprint;
    if (ref.fingerprint != obs.fingerprint) {
      r.failure = FailureKind::kDifferential;
      std::ostringstream os;
      os << "engine divergence: calendar fingerprint " << std::hex
         << obs.fingerprint << " (trace " << obs.trace_digest
         << ") vs reference " << ref.fingerprint << " (trace "
         << ref.trace_digest << ")";
      r.detail = os.str();
    }
  }
  return r;
}

// ---- shrinking ----------------------------------------------------------

namespace {

[[nodiscard]] std::vector<Scenario> shrink_candidates(const Scenario& s) {
  std::vector<Scenario> out;
  const auto add = [&](Scenario cand) {
    normalize_scenario(cand);
    if (format_spec(cand) != format_spec(s)) out.push_back(std::move(cand));
  };
  // Biggest reductions first: the greedy loop restarts after every
  // acceptance, so early wins compound.
  if (s.n >= 4) {
    Scenario cand = s;
    cand.n = s.n / 2;
    add(std::move(cand));
  }
  if (s.n >= 3) {
    Scenario cand = s;
    cand.n = s.n - 1;
    add(std::move(cand));
  }
  for (std::size_t i = 0; i < s.crashes.size(); ++i) {
    Scenario cand = s;
    cand.crashes.erase(cand.crashes.begin() +
                       static_cast<std::ptrdiff_t>(i));
    add(std::move(cand));
  }
  for (std::size_t i = 0; i < s.holds.size(); ++i) {
    Scenario cand = s;
    cand.holds.erase(cand.holds.begin() + static_cast<std::ptrdiff_t>(i));
    add(std::move(cand));
  }
  if (s.fack > 1) {
    Scenario cand = s;
    cand.fack = s.fack / 2;
    add(std::move(cand));
    cand = s;
    cand.fack = s.fack - 1;
    add(std::move(cand));
  }
  return out;
}

}  // namespace

ShrinkResult shrink_scenario(const Scenario& s, FailureKind kind,
                             const RunOptions& options,
                             const ShrinkOptions& shrink) {
  AMAC_EXPECTS(kind != FailureKind::kNone);
  // Differential divergences need the differential replay to reproduce;
  // every other kind shrinks faster without it.
  RunOptions run_options = options;
  run_options.differential = kind == FailureKind::kDifferential;

  ShrinkResult res;
  res.scenario = s;
  res.report = run_scenario(s, run_options);
  ++res.attempts;
  AMAC_EXPECTS(res.report.failure == kind);

  bool improved = true;
  while (improved && res.attempts < shrink.max_attempts) {
    improved = false;
    for (const Scenario& cand : shrink_candidates(res.scenario)) {
      if (res.attempts >= shrink.max_attempts) break;
      ++res.attempts;
      RunReport rep = run_scenario(cand, run_options);
      if (rep.failure == kind) {
        res.scenario = cand;
        res.report = std::move(rep);
        ++res.reductions;
        improved = true;
        break;  // restart the candidate scan from the smaller scenario
      }
    }
  }
  return res;
}

// ---- soak loop ----------------------------------------------------------

SoakResult run_soak(const SoakOptions& options) {
  SoakResult result;
  util::Hasher corpus;
  for (std::size_t i = 0; i < options.count; ++i) {
    const std::uint64_t seed = options.seed_base + i;
    const Scenario s = generate_scenario(seed);

    RunOptions run_options;
    run_options.differential = options.differential_every != 0 &&
                               i % options.differential_every == 0;
    const RunReport report = run_scenario(s, run_options);

    ++result.runs;
    if (run_options.differential) ++result.differential_runs;
    ++result.per_algorithm[static_cast<std::size_t>(s.algorithm)];
    if (!s.crashes.empty()) ++result.crash_scenarios;
    if (report.mid_flight_crashes > 0) ++result.mid_flight_crash_scenarios;
    result.wheel_events += report.stats.wheel_pushes;
    result.overflow_events += report.stats.overflow_pushes;
    if (report.stats.overflow_pushes > 0) ++result.overflow_scenarios;
    if (report.stats.wheel_resizes > 0) ++result.resized_scenarios;
    corpus.mix_u64(report.fingerprint);

    if (report.failure != FailureKind::kNone) {
      SoakFailure failure;
      failure.scenario = s;
      failure.minimal = s;
      failure.report = report;
      if (options.shrink_failures) {
        ShrinkOptions shrink;
        shrink.max_attempts = options.max_shrink_attempts;
        auto shrunk =
            shrink_scenario(s, report.failure, run_options, shrink);
        failure.minimal = std::move(shrunk.scenario);
        failure.report = std::move(shrunk.report);
      }
      result.failures.push_back(std::move(failure));
    }
    if (options.on_scenario) options.on_scenario(i, s, report);
  }
  result.corpus_digest = corpus.digest();
  return result;
}

}  // namespace amac::fuzz
