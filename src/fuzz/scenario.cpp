#include "fuzz/scenario.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <sstream>

#include "net/topologies.hpp"
#include "util/hash.hpp"
#include "util/parse.hpp"

namespace amac::fuzz {

namespace {

using harness::Algorithm;

// Salts separating the derived random streams. Every stream is
// Rng(hash(seed, salt)), so the dimensions can't alias each other and a
// shrink step that changes one dimension leaves the others' draws intact.
constexpr std::uint64_t kGenSalt = 0xF022ED11;
constexpr std::uint64_t kTopoSalt = 0x70601061;
constexpr std::uint64_t kInputSalt = 0x1A9B75C1;
constexpr std::uint64_t kIdSalt = 0x1DA551;
constexpr std::uint64_t kSchedSalt = 0x5C4EDD1E;
constexpr std::uint64_t kFaultSalt = 0xFA0175;
constexpr std::uint64_t kLargeSalt = 0x1A26E701;
constexpr std::uint64_t kLogSalt = 0x10654A17;

[[nodiscard]] std::uint64_t sub_seed(std::uint64_t seed, std::uint64_t salt) {
  util::Hasher h;
  h.mix_u64(seed);
  h.mix_u64(salt);
  return h.digest();
}

[[nodiscard]] std::uint32_t min_nodes(TopologyKind k) {
  switch (k) {
    case TopologyKind::kRing: return 3;
    case TopologyKind::kTorus: return 9;  // 3x3
    default: return 2;
  }
}

[[nodiscard]] net::Graph build_graph(const Scenario& s) {
  util::Rng rng(sub_seed(s.seed, kTopoSalt));
  const std::size_t n = std::max(s.n, min_nodes(s.topology));
  switch (s.topology) {
    case TopologyKind::kClique: return net::make_clique(n);
    case TopologyKind::kLine: return net::make_line(n);
    case TopologyKind::kRing: return net::make_ring(n);
    case TopologyKind::kStar: return net::make_star(n);
    case TopologyKind::kGrid: {
      const std::size_t w =
          std::clamp<std::size_t>(s.aux, 1, std::max<std::size_t>(1, n));
      const std::size_t h = std::max<std::size_t>(1, n / w);
      if (w * h < 2) return net::make_grid(2, 1);
      return net::make_grid(w, h);
    }
    case TopologyKind::kTorus: {
      const std::size_t w = std::clamp<std::size_t>(s.aux, 3, n / 3);
      const std::size_t h = std::max<std::size_t>(3, n / w);
      return net::make_torus(w, h);
    }
    case TopologyKind::kBinaryTree: return net::make_binary_tree(n);
    case TopologyKind::kBarbell: {
      const std::size_t path = std::max<std::uint32_t>(1, s.aux);
      const std::size_t k =
          n > path ? std::max<std::size_t>(1, (n - (path - 1)) / 2) : 1;
      return net::make_barbell(k, path);
    }
    case TopologyKind::kRandomConnected: {
      const double p = 0.05 + 0.30 * rng.uniform01();
      return net::make_random_connected(n, p, rng);
    }
    case TopologyKind::kRandomGeometric: {
      const double r = 0.20 + 0.30 * rng.uniform01();
      return net::make_random_geometric(n, r, rng);
    }
  }
  AMAC_ASSERT(false);
  return net::Graph(1);
}

[[nodiscard]] bool needs_diameter(Algorithm a) {
  return a == Algorithm::kAnonymous || a == Algorithm::kStability;
}

[[nodiscard]] bool synchronous_only(Algorithm a) {
  // Theorems 3.3 / 3.9: outside the synchronous scheduler these algorithms
  // genuinely violate agreement, so the generator never pairs them with an
  // adversarial scheduler (hand-written specs still can, to reproduce the
  // paper's counterexamples).
  return a == Algorithm::kAnonymous || a == Algorithm::kStability;
}

[[nodiscard]] bool single_hop_only(Algorithm a) {
  return a == Algorithm::kTwoPhase || a == Algorithm::kBenOr;
}

}  // namespace

const char* topology_name(TopologyKind k) {
  switch (k) {
    case TopologyKind::kClique: return "clique";
    case TopologyKind::kLine: return "line";
    case TopologyKind::kRing: return "ring";
    case TopologyKind::kStar: return "star";
    case TopologyKind::kGrid: return "grid";
    case TopologyKind::kTorus: return "torus";
    case TopologyKind::kBinaryTree: return "tree";
    case TopologyKind::kBarbell: return "barbell";
    case TopologyKind::kRandomConnected: return "randconn";
    case TopologyKind::kRandomGeometric: return "geo";
  }
  AMAC_ASSERT(false);
  return "?";
}

const char* scheduler_name(SchedulerKind k) {
  switch (k) {
    case SchedulerKind::kSynchronous: return "sync";
    case SchedulerKind::kMaxDelay: return "maxdelay";
    case SchedulerKind::kUniformRandom: return "uniform";
    case SchedulerKind::kSkewed: return "skewed";
    case SchedulerKind::kContention: return "contention";
    case SchedulerKind::kHoldback: return "holdback";
    case SchedulerKind::kScripted: return "scripted";
  }
  AMAC_ASSERT(false);
  return "?";
}

const char* input_pattern_name(InputPattern p) {
  switch (p) {
    case InputPattern::kAllZero: return "all0";
    case InputPattern::kAllOne: return "all1";
    case InputPattern::kAlternating: return "alt";
    case InputPattern::kSplit: return "split";
    case InputPattern::kRandom: return "random";
    case InputPattern::kMultivalued: return "multi";
  }
  AMAC_ASSERT(false);
  return "?";
}

const char* id_assignment_name(IdAssignment a) {
  return a == IdAssignment::kIdentity ? "identity" : "perm";
}

bool termination_expected(const Scenario& s) {
  // Bounded-loss envelope: rate faults drop copies permanently and a
  // kForever window severs a link for good, so no algorithm owes
  // termination under either (agreement/validity stay unconditional).
  // Finite windows merely defer deliveries — the engine stretches the ack
  // past every deferred arrival — so they never cost liveness by
  // themselves. Duplicate rates are conservatively excluded too: the
  // oracle only promises termination on fault-free (or deferral-only)
  // runs.
  if (s.drop_rate_bp != 0 || s.dup_rate_bp != 0) return false;
  for (const auto& w : s.faults) {
    if (w.until_tick == mac::kForever) return false;
  }
  switch (s.algorithm) {
    case Algorithm::kTwoPhase:
    case Algorithm::kFlooding:
    case Algorithm::kWPaxos:
    case Algorithm::kAnonymous:
    case Algorithm::kStability:
      // Deterministic algorithms: Theorem 3.2 says one crash may already
      // cost liveness, so the oracle demands termination only crash-free.
      return s.crashes.empty();
    case Algorithm::kBenOr:
      // Randomized: lives up to its declared f (normalize keeps f < n/2).
      return s.crashes.size() <= s.benor_f;
  }
  AMAC_ASSERT(false);
  return false;
}

void normalize_scenario(Scenario& s) {
  s.n = std::max(s.n, min_nodes(s.topology));
  if (s.fack < 1) s.fack = 1;
  // Log-service knobs: inert (reset to defaults, so format_spec stays
  // canonical) outside the family, floored to well-formed values inside it.
  // Service runs cap n well under the engine's 4096-instance-id/kLeaderBits
  // ceilings — derived topology counts can overshoot s.n a little.
  if (s.log_ops == 0) {
    s.log_batch = 8;
    s.log_window = 4;
    s.log_lease = 64;
  } else {
    s.log_ops = std::min<std::uint32_t>(s.log_ops, 65536);
    s.log_batch = std::clamp<std::uint32_t>(s.log_batch, 1, 4096);
    s.log_window = std::clamp<std::uint32_t>(s.log_window, 1, 256);
    s.log_lease = std::clamp<std::uint32_t>(s.log_lease, 1, 65536);
    s.n = std::min<std::uint32_t>(s.n, 2048);
  }
  if (s.scheduler != SchedulerKind::kHoldback) {
    s.holds.clear();
    s.late_holds = false;
  }
  if (s.scheduler != SchedulerKind::kScripted) s.script.clear();
  const std::size_t count = build_graph(s).node_count();
  std::erase_if(s.crashes, [&](const CrashSpec& c) { return c.node >= count; });
  std::erase_if(s.holds, [&](const HoldSpec& h) { return h.sender >= count; });
  std::erase_if(s.script,
                [&](const ScriptSlot& t) { return t.sender >= count; });
  // Fault windows on out-of-range or self links are inert; so are finite
  // windows that close at or before they open. Dropping them keeps the
  // shrinker's "remove a window" steps canonical.
  std::erase_if(s.faults, [&](const FaultSpec& w) {
    return w.from >= count || w.to >= count || w.from == w.to ||
           (w.until_tick != mac::kForever && w.until_tick <= w.from_tick);
  });
  if (s.scheduler == SchedulerKind::kScripted) {
    // Slot well-formedness mirrors ScriptedScheduler's contracts; the
    // scenario's fack mirrors the scheduler's effective bound (max scripted
    // ack, with the synchronous length-1 fallback), so decide-round
    // bucketing and spec lines stay meaningful. Per-receiver slots are
    // canonicalized: out-of-range receivers dropped, later-wins dedupe,
    // receiver-sorted, delays clamped into [1, ack], and `recv` mirrors the
    // largest listed delay (ScriptedScheduler gives unlisted receivers
    // delay 1).
    mac::Time max_ack = 1;
    for (auto& t : s.script) {
      if (t.ack < 1) t.ack = 1;
      if (!t.delays.empty()) {
        std::vector<std::pair<NodeId, mac::Time>> kept;
        for (const auto& [receiver, delay] : t.delays) {
          if (receiver >= count) continue;
          const mac::Time d = std::clamp<mac::Time>(delay, 1, t.ack);
          bool replaced = false;
          for (auto& k : kept) {
            if (k.first == receiver) {
              k.second = d;  // later-wins, like ScriptedScheduler's scan
              replaced = true;
            }
          }
          if (!replaced) kept.emplace_back(receiver, d);
        }
        std::sort(kept.begin(), kept.end());
        t.delays = std::move(kept);
      }
      if (t.delays.empty()) {
        if (t.recv < 1) t.recv = 1;
        if (t.recv > t.ack) t.recv = t.ack;
      } else {
        t.recv = 1;
        for (const auto& [receiver, delay] : t.delays) {
          t.recv = std::max(t.recv, delay);
        }
      }
      max_ack = std::max(max_ack, t.ack);
    }
    s.fack = max_ack;
  }
  if (s.algorithm == Algorithm::kBenOr) {
    const std::size_t max_f = (count - 1) / 2;
    s.benor_f = std::min(s.benor_f, max_f);
    if (s.crashes.size() > s.benor_f) s.crashes.resize(s.benor_f);
  }
}

// ---- mutation -----------------------------------------------------------

const char* mutation_name(MutationOp op) {
  switch (op) {
    case MutationOp::kPerturbFack: return "perturb-fack";
    case MutationOp::kPerturbHoldRelease: return "perturb-hold";
    case MutationOp::kPerturbCrashTime: return "perturb-crash";
    case MutationOp::kRetimeHold: return "retime-hold";
    case MutationOp::kAddHold: return "add-hold";
    case MutationOp::kRemoveHold: return "remove-hold";
    case MutationOp::kAddCrash: return "add-crash";
    case MutationOp::kRemoveCrash: return "remove-crash";
    case MutationOp::kToggleLateHolds: return "toggle-late";
    case MutationOp::kReseed: return "reseed";
    case MutationOp::kSpliceTransport: return "splice";
    case MutationOp::kScriptTimeline: return "script-timeline";
    case MutationOp::kRetimeScriptSlot: return "retime-slot";
    case MutationOp::kSwapScriptSlots: return "swap-slots";
    case MutationOp::kDuplicateScriptSlot: return "dup-slot";
    case MutationOp::kDropScriptSlot: return "drop-slot";
    case MutationOp::kAddDropWindow: return "add-window";
    case MutationOp::kRemoveDropWindow: return "remove-window";
    case MutationOp::kWidenDropWindow: return "widen-window";
    case MutationOp::kNarrowDropWindow: return "narrow-window";
    case MutationOp::kPerturbFaultRates: return "perturb-rates";
    case MutationOp::kScriptReceiverDelay: return "receiver-delay";
    case MutationOp::kSpliceFaultWindows: return "splice-windows";
    case MutationOp::kLogService: return "log-service";
    case MutationOp::kPerturbLogKnobs: return "perturb-log";
  }
  AMAC_ASSERT(false);
  return "?";
}

namespace {

// Mutation value bounds. Wider than the generator's draw ranges on purpose
// (that is where the new coverage lives) but small enough that a mutant
// still runs in fuzz-soak time: releases stay inside the wheel's resizable
// horizon and crash times inside every horizon the clamp can pick.
constexpr mac::Time kMaxMutatedFack = 64;
constexpr mac::Time kMaxMutatedRelease = 4000;
constexpr mac::Time kMaxMutatedCrashTime = 5000;
constexpr std::size_t kMaxMutatedHolds = 6;
constexpr std::size_t kMaxMutatedCrashes = 4;
constexpr std::uint32_t kMaxMutatedNodes = 24;
// Scripted-timeline bounds: slots stay few (unscripted broadcasts fall back
// to lock-step, so a handful of slots already builds the paper's
// counterexample shapes), indices reachable in soak time, acks inside the
// wheel's initial span so scripted runs stress the batch path, not the heap.
constexpr std::size_t kMaxScriptSlots = 6;
constexpr std::uint32_t kMaxScriptIndex = 12;
constexpr mac::Time kMaxScriptAck = 32;
// Link-fault bounds: a handful of windows inside the wheel's resizable
// horizon already builds partition-and-heal shapes, and rates cap at 20%
// so faulted soak runs still make protocol progress worth covering.
constexpr std::size_t kMaxFaultWindows = 4;
constexpr mac::Time kMaxFaultTick = 4000;
constexpr std::uint32_t kMaxFaultRateBp = 2000;
// Log-service bounds: every slot is a full consensus instance, so ops stay
// soak-sized; batch/window stay small enough that pipelining and stalls
// interleave, and leases stay short so renewals — and re-elections after a
// leader crash — happen several times per run.
constexpr std::uint32_t kMinMutatedLogOps = 8;
constexpr std::uint32_t kMaxMutatedLogOps = 256;
constexpr std::uint32_t kMaxMutatedLogBatch = 16;
constexpr std::uint32_t kMaxMutatedLogWindow = 8;
constexpr std::uint32_t kMaxMutatedLogLease = 32;

[[nodiscard]] mac::Time clamp_time(mac::Time t, mac::Time lo, mac::Time hi) {
  return t < lo ? lo : (t > hi ? hi : t);
}

/// Halve, double, or nudge a tick value (the perturb-* ops).
[[nodiscard]] mac::Time perturb_time(mac::Time t, util::Rng& rng) {
  switch (rng.uniform(0, 3)) {
    case 0: return t / 2;
    case 1: return t * 2;
    case 2: return t + rng.uniform(1, 8);
    default: return t > 1 ? t - rng.uniform(1, std::min<mac::Time>(t - 1, 8))
                          : t + 1;
  }
}

[[nodiscard]] bool crashes_allowed(const Scenario& s) {
  switch (s.algorithm) {
    case Algorithm::kFlooding:
    case Algorithm::kWPaxos:
      return s.crashes.size() < kMaxMutatedCrashes;
    case Algorithm::kBenOr:
      return s.crashes.size() < s.benor_f;
    default:
      return false;  // crash-intolerant: mutants stay crash-free
  }
}

// Link-fault envelope per algorithm. Faults only go where SAFETY survives
// them (termination_expected separately withdraws the liveness demand on
// lossy plans), so a faulted mutant violation is a real bug:
//   * synchronous-only algorithms (Theorems 3.3/3.9) get no faults at all —
//     under them any asynchrony is an expected counterexample;
//   * two-phase loses agreement under permanent loss (a decided node's
//     phase-1 and phase-2 messages can both vanish toward one witness, which
//     then completes its witness wait on the other value), so it keeps only
//     deferral faults: zero drop rate, finite windows;
//   * wpaxos acceptor responses carry tallied counts with no dedup, so
//     duplicate faults are withheld; loss is safe (monotone acceptor state
//     plus quorum intersection);
//   * flooding and Ben-Or tolerate arbitrary loss and duplication.
[[nodiscard]] bool faults_allowed(const Scenario& s) {
  // The log service owns its Network and exposes no LinkFaultPlan seam, so
  // the log family carries no faults (clamp scrubs them; the gate here just
  // keeps fault ops from producing no-op mutants).
  return !synchronous_only(s.algorithm) && s.log_ops == 0;
}

[[nodiscard]] bool permanent_loss_allowed(const Scenario& s) {
  return faults_allowed(s) && s.algorithm != Algorithm::kTwoPhase;
}

[[nodiscard]] bool duplicates_allowed(const Scenario& s) {
  return faults_allowed(s) && s.algorithm != Algorithm::kWPaxos;
}

/// Applies `op` to `s` in place. Returns false when the op does not apply
/// to this scenario's shape (no holds to drop, wrong scheduler, ...).
bool apply_mutation(Scenario& s, MutationOp op, const Scenario* splice,
                    util::Rng& rng) {
  switch (op) {
    case MutationOp::kPerturbFack:
      // Scripted scenarios derive fack from their slots (normalize); perturb
      // the slots instead.
      if (s.scheduler == SchedulerKind::kScripted) return false;
      s.fack = clamp_time(perturb_time(s.fack, rng), 1, kMaxMutatedFack);
      return true;
    case MutationOp::kPerturbHoldRelease: {
      if (s.holds.empty()) return false;
      auto& h = s.holds[rng.uniform(0, s.holds.size() - 1)];
      h.release =
          clamp_time(perturb_time(h.release, rng), 2, kMaxMutatedRelease);
      return true;
    }
    case MutationOp::kPerturbCrashTime: {
      if (s.crashes.empty()) return false;
      auto& c = s.crashes[rng.uniform(0, s.crashes.size() - 1)];
      c.when = clamp_time(perturb_time(c.when, rng), 1, kMaxMutatedCrashTime);
      return true;
    }
    case MutationOp::kRetimeHold: {
      if (s.holds.empty()) return false;
      auto& h = s.holds[rng.uniform(0, s.holds.size() - 1)];
      h.release = clamp_time(rng.uniform(2, 40 * s.fack + 200), 2,
                             kMaxMutatedRelease);
      return true;
    }
    case MutationOp::kAddHold: {
      if (s.scheduler != SchedulerKind::kHoldback ||
          s.holds.size() >= kMaxMutatedHolds) {
        return false;
      }
      HoldSpec h;
      h.sender = static_cast<NodeId>(rng.uniform(0, s.n - 1));
      h.release = clamp_time(rng.uniform(s.fack + 1, 20 * s.fack + 40), 2,
                             kMaxMutatedRelease);
      s.holds.push_back(h);
      return true;
    }
    case MutationOp::kRemoveHold:
      if (s.holds.empty()) return false;
      s.holds.erase(s.holds.begin() + static_cast<std::ptrdiff_t>(
                                          rng.uniform(0, s.holds.size() - 1)));
      return true;
    case MutationOp::kAddCrash: {
      if (!crashes_allowed(s)) return false;
      CrashSpec c;
      c.node = static_cast<NodeId>(rng.uniform(0, s.n - 1));
      c.when = clamp_time(rng.uniform(1, 6 * s.fack + 2 * s.n), 1,
                          kMaxMutatedCrashTime);
      s.crashes.push_back(c);
      return true;
    }
    case MutationOp::kRemoveCrash:
      if (s.crashes.empty()) return false;
      s.crashes.erase(s.crashes.begin() +
                      static_cast<std::ptrdiff_t>(
                          rng.uniform(0, s.crashes.size() - 1)));
      return true;
    case MutationOp::kToggleLateHolds:
      if (s.scheduler != SchedulerKind::kHoldback || s.holds.empty()) {
        return false;
      }
      s.late_holds = !s.late_holds;
      return true;
    case MutationOp::kReseed:
      s.seed = rng.uniform(1, 999'999'999);
      return true;
    case MutationOp::kSpliceTransport:
      if (splice == nullptr) return false;
      s.topology = splice->topology;
      s.n = splice->n;
      s.aux = splice->aux;
      s.scheduler = splice->scheduler;
      s.fack = splice->fack;
      s.late_holds = splice->late_holds;
      s.holds = splice->holds;
      s.script = splice->script;
      s.drop_rate_bp = splice->drop_rate_bp;
      s.dup_rate_bp = splice->dup_rate_bp;
      s.faults = splice->faults;
      return true;
    case MutationOp::kScriptTimeline: {
      // Theorem 3.3/3.9 algorithms are only guaranteed under the
      // synchronous scheduler; a scripted timeline would be an expected
      // counterexample, not a bug, so they never get one. Log scenarios
      // never get one either: scripts index a one-shot instance's
      // broadcasts, which means nothing to a slot sequence (clamp would
      // scrub it into a no-op mutant).
      if (synchronous_only(s.algorithm) || s.log_ops > 0) return false;
      s.scheduler = SchedulerKind::kScripted;
      s.holds.clear();
      s.late_holds = false;
      s.script.clear();
      const std::size_t slots = rng.uniform(1, 4);
      for (std::size_t i = 0; i < slots; ++i) {
        ScriptSlot t;
        t.sender = static_cast<NodeId>(rng.uniform(0, s.n - 1));
        t.index = static_cast<std::uint32_t>(rng.uniform(0, 5));
        t.ack = rng.uniform(1, kMaxScriptAck);
        t.recv = rng.uniform(1, t.ack);
        s.script.push_back(t);
      }
      return true;
    }
    case MutationOp::kRetimeScriptSlot: {
      if (s.script.empty()) return false;
      auto& t = s.script[rng.uniform(0, s.script.size() - 1)];
      t.ack = rng.uniform(1, kMaxScriptAck);
      t.recv = rng.uniform(1, t.ack);
      return true;
    }
    case MutationOp::kSwapScriptSlots: {
      // Exchange the delays of two slots while their (sender, index)
      // anchors stay put: a pure timeline reordering, the shape of the
      // paper's adversarial schedules.
      if (s.script.size() < 2) return false;
      const std::size_t i = rng.uniform(0, s.script.size() - 1);
      std::size_t j = rng.uniform(0, s.script.size() - 2);
      if (j >= i) ++j;
      std::swap(s.script[i].ack, s.script[j].ack);
      std::swap(s.script[i].recv, s.script[j].recv);
      return true;
    }
    case MutationOp::kDuplicateScriptSlot: {
      if (s.script.empty() || s.script.size() >= kMaxScriptSlots) {
        return false;
      }
      ScriptSlot t = s.script[rng.uniform(0, s.script.size() - 1)];
      t.index += 1;  // replay the same delays one broadcast later
      s.script.push_back(t);
      return true;
    }
    case MutationOp::kDropScriptSlot:
      // Keep at least one slot: a slotless scripted scenario is just the
      // synchronous scheduler in disguise (normalize can still empty the
      // script when a shrunk topology drops every scripted sender).
      if (s.script.size() <= 1) return false;
      s.script.erase(s.script.begin() +
                     static_cast<std::ptrdiff_t>(
                         rng.uniform(0, s.script.size() - 1)));
      return true;
    case MutationOp::kAddDropWindow: {
      if (!faults_allowed(s) || s.faults.size() >= kMaxFaultWindows ||
          s.n < 2) {
        return false;
      }
      FaultSpec w;
      w.from = static_cast<NodeId>(rng.uniform(0, s.n - 1));
      w.to = static_cast<NodeId>(rng.uniform(0, s.n - 2));
      if (w.to >= w.from) ++w.to;  // distinct endpoints
      w.from_tick = rng.uniform(0, kMaxFaultTick - 1);
      if (permanent_loss_allowed(s) && rng.chance(0.2)) {
        w.until_tick = mac::kForever;  // sever the link for good
      } else {
        w.until_tick = w.from_tick + rng.uniform(1, 64);
      }
      s.faults.push_back(w);
      return true;
    }
    case MutationOp::kRemoveDropWindow:
      if (s.faults.empty()) return false;
      s.faults.erase(s.faults.begin() +
                     static_cast<std::ptrdiff_t>(
                         rng.uniform(0, s.faults.size() - 1)));
      return true;
    case MutationOp::kWidenDropWindow: {
      if (s.faults.empty()) return false;
      auto& w = s.faults[rng.uniform(0, s.faults.size() - 1)];
      const bool can_earlier = w.from_tick > 0;
      const bool can_later = w.until_tick != mac::kForever;
      if (!can_earlier && !can_later) return false;
      if (can_earlier && (!can_later || rng.chance(0.5))) {
        w.from_tick -= rng.uniform(1, std::min<mac::Time>(w.from_tick, 32));
      } else {
        w.until_tick += rng.uniform(1, 64);
      }
      return true;
    }
    case MutationOp::kNarrowDropWindow: {
      if (s.faults.empty()) return false;
      auto& w = s.faults[rng.uniform(0, s.faults.size() - 1)];
      if (w.until_tick == mac::kForever) {
        // Heal the link: the infinite outage becomes a bounded one.
        w.until_tick = w.from_tick + rng.uniform(1, 64);
        return true;
      }
      const mac::Time span = w.until_tick - w.from_tick;
      if (span <= 1) return false;
      const mac::Time cut = rng.uniform(1, span - 1);
      if (rng.chance(0.5)) {
        w.from_tick += cut;
      } else {
        w.until_tick -= cut;
      }
      return true;
    }
    case MutationOp::kPerturbFaultRates: {
      const bool drop_ok = permanent_loss_allowed(s);
      const bool dup_ok = duplicates_allowed(s);
      if (!drop_ok && !dup_ok) return false;
      const bool pick_drop = drop_ok && (!dup_ok || rng.chance(0.5));
      std::uint32_t& rate = pick_drop ? s.drop_rate_bp : s.dup_rate_bp;
      switch (rng.uniform(0, 2)) {
        case 0:  // fresh light rate (turns faults on)
          rate = static_cast<std::uint32_t>(rng.uniform(1, 500));
          break;
        case 1:  // intensify
          rate = std::min<std::uint32_t>(
              kMaxFaultRateBp,
              rate + static_cast<std::uint32_t>(rng.uniform(1, 250)));
          break;
        default:  // back toward the fault-free envelope
          rate /= 2;
          break;
      }
      return true;
    }
    case MutationOp::kScriptReceiverDelay: {
      // Retime ONE receiver of a scripted slot: the uniform slot becomes a
      // per-receiver one (unlisted receivers drop to ScriptedScheduler's
      // delay-1 default), which is the paper's "one node hears late" shape.
      if (s.script.empty()) return false;
      auto& t = s.script[rng.uniform(0, s.script.size() - 1)];
      const NodeId receiver = static_cast<NodeId>(rng.uniform(0, s.n - 1));
      const mac::Time delay = rng.uniform(1, std::max<mac::Time>(1, t.ack));
      bool replaced = false;
      for (auto& [r, d] : t.delays) {
        if (r == receiver) {
          d = delay;
          replaced = true;
        }
      }
      if (!replaced) t.delays.emplace_back(receiver, delay);
      return true;
    }
    case MutationOp::kSpliceFaultWindows: {
      // Window-granular crossover (contrast kSpliceTransport, which copies
      // the partner's whole plan along with its transport): slot i of the
      // child takes parent A's or parent B's window i by a fair coin,
      // falling back to whichever parent still has a window there. The
      // global rates recombine the same way, and clamp_to_envelope +
      // normalize keep the child inside the algorithm's bounded-loss
      // envelope (out-of-range links are dropped, not remapped).
      if (splice == nullptr || !faults_allowed(s)) return false;
      if (s.faults.empty() && splice->faults.empty()) return false;
      const std::size_t slots = std::min<std::size_t>(
          std::max(s.faults.size(), splice->faults.size()), kMaxFaultWindows);
      std::vector<FaultSpec> child;
      child.reserve(slots);
      for (std::size_t i = 0; i < slots; ++i) {
        const bool from_base = rng.chance(0.5);
        const auto& first = from_base ? s.faults : splice->faults;
        const auto& second = from_base ? splice->faults : s.faults;
        if (i < first.size()) {
          child.push_back(first[i]);
        } else if (i < second.size()) {
          child.push_back(second[i]);
        }
      }
      s.faults = std::move(child);
      if (rng.chance(0.5)) s.drop_rate_bp = splice->drop_rate_bp;
      if (rng.chance(0.5)) s.dup_rate_bp = splice->dup_rate_bp;
      return true;
    }
    case MutationOp::kLogService: {
      // Enter the replicated-log family: the mutant runs a slot sequence
      // with elected leases instead of a one-shot instance. Crashes (and
      // the transport) carry over; clamp applies the family envelope.
      if (s.log_ops > 0) return false;
      s.log_ops = static_cast<std::uint32_t>(
          rng.uniform(kMinMutatedLogOps, kMaxMutatedLogOps / 2));
      s.log_batch = static_cast<std::uint32_t>(rng.uniform(1, 8));
      s.log_window = static_cast<std::uint32_t>(rng.uniform(1, 4));
      s.log_lease = static_cast<std::uint32_t>(rng.uniform(1, 16));
      return true;
    }
    case MutationOp::kPerturbLogKnobs: {
      if (s.log_ops == 0) return false;
      const auto nudge = [&](std::uint32_t v, std::uint32_t lo,
                             std::uint32_t hi) {
        return static_cast<std::uint32_t>(
            clamp_time(perturb_time(v, rng), lo, hi));
      };
      switch (rng.uniform(0, 3)) {
        case 0:
          s.log_ops = nudge(s.log_ops, kMinMutatedLogOps, kMaxMutatedLogOps);
          break;
        case 1:
          s.log_batch = nudge(s.log_batch, 1, kMaxMutatedLogBatch);
          break;
        case 2:
          s.log_window = nudge(s.log_window, 1, kMaxMutatedLogWindow);
          break;
        default:
          s.log_lease = nudge(s.log_lease, 1, kMaxMutatedLogLease);
          break;
      }
      return true;
    }
  }
  AMAC_ASSERT(false);
  return false;
}

}  // namespace

void clamp_to_envelope(Scenario& s) {
  // Log-service family envelope (log_ops > 0): the service IS the wPAXOS
  // renewal + leased CommitFlood stack, so the algorithm is pinned; it owns
  // its Network, so per-broadcast scripts and LinkFaultPlans have no seam
  // to thread through and are scrubbed. Crashes stay — a crash that takes
  // the lease holder is exactly the re-election/recovery coverage this
  // family exists for (the wPAXOS cap below still applies).
  if (s.log_ops > 0) {
    s.algorithm = Algorithm::kWPaxos;
    if (s.scheduler == SchedulerKind::kScripted) {
      s.scheduler = SchedulerKind::kUniformRandom;
      s.script.clear();
    }
    // The contention scheduler's declared fack bound covers ONE instance's
    // broadcast density; a pipelined slot sequence sustains arrivals above
    // the 1-frame-per-tick decode rate, so the receiver backlog — and with
    // it the worst delay — grows with the slot count and would trip the
    // scheduler's bound contract by design. No static bound fits a
    // service-length run; the family runs without that scheduler.
    if (s.scheduler == SchedulerKind::kContention) {
      s.scheduler = SchedulerKind::kUniformRandom;
    }
    s.drop_rate_bp = 0;
    s.dup_rate_bp = 0;
    s.faults.clear();
    s.log_ops = std::clamp<std::uint32_t>(s.log_ops, kMinMutatedLogOps,
                                          kMaxMutatedLogOps);
    s.log_batch = std::clamp<std::uint32_t>(s.log_batch, 1, kMaxMutatedLogBatch);
    s.log_window =
        std::clamp<std::uint32_t>(s.log_window, 1, kMaxMutatedLogWindow);
    s.log_lease = std::clamp<std::uint32_t>(s.log_lease, 1, kMaxMutatedLogLease);
  }
  // Mirror generate_scenario's envelope: Theorem 3.3/3.9 algorithms are
  // synchronous-only and crash-free; single-hop algorithms live on the
  // clique; crashes only go where safety (or Ben-Or's f) covers them.
  if (synchronous_only(s.algorithm)) {
    s.scheduler = SchedulerKind::kSynchronous;
    s.crashes.clear();
  }
  if (single_hop_only(s.algorithm)) {
    s.topology = TopologyKind::kClique;
    s.aux = 0;
  }
  switch (s.algorithm) {
    case Algorithm::kFlooding:
    case Algorithm::kWPaxos:
      if (s.crashes.size() > kMaxMutatedCrashes) {
        s.crashes.resize(kMaxMutatedCrashes);
      }
      break;
    case Algorithm::kBenOr:
      break;  // normalize_scenario enforces crashes <= f < n/2
    default:
      s.crashes.clear();  // crash-intolerant deterministic algorithms
  }
  const bool multi_ok = s.algorithm == Algorithm::kFlooding ||
                        s.algorithm == Algorithm::kWPaxos;
  if (!multi_ok && s.inputs == InputPattern::kMultivalued) {
    s.inputs = InputPattern::kSplit;
  }
  s.fack = clamp_time(s.fack, 1, kMaxMutatedFack);
  if (s.n > kMaxMutatedNodes) s.n = kMaxMutatedNodes;
  for (auto& h : s.holds) h.release = clamp_time(h.release, 1, kMaxMutatedRelease);
  for (auto& c : s.crashes) c.when = clamp_time(c.when, 1, kMaxMutatedCrashTime);
  if (s.script.size() > kMaxScriptSlots) s.script.resize(kMaxScriptSlots);
  for (auto& t : s.script) {
    if (t.index > kMaxScriptIndex) t.index = kMaxScriptIndex;
    t.ack = clamp_time(t.ack, 1, kMaxScriptAck);
    t.recv = clamp_time(t.recv, 1, t.ack);
    for (auto& [receiver, delay] : t.delays) {
      delay = clamp_time(delay, 1, t.ack);
    }
  }
  // Link faults stay inside each algorithm's bounded-loss envelope (see
  // faults_allowed and friends above): synchronous-only algorithms get
  // none, two-phase keeps only deferral faults (no permanent loss), wpaxos
  // never sees duplicates, and rates/windows stay inside mutation bounds.
  if (!faults_allowed(s)) {
    s.drop_rate_bp = 0;
    s.dup_rate_bp = 0;
    s.faults.clear();
  }
  if (!permanent_loss_allowed(s)) {
    s.drop_rate_bp = 0;
    for (auto& w : s.faults) {
      if (w.until_tick == mac::kForever) {
        w.until_tick = std::min<mac::Time>(w.from_tick + 64, kMaxFaultTick);
      }
    }
  }
  if (!duplicates_allowed(s)) s.dup_rate_bp = 0;
  s.drop_rate_bp = std::min(s.drop_rate_bp, kMaxFaultRateBp);
  s.dup_rate_bp = std::min(s.dup_rate_bp, kMaxFaultRateBp);
  if (s.faults.size() > kMaxFaultWindows) s.faults.resize(kMaxFaultWindows);
  for (auto& w : s.faults) {
    if (w.from_tick > kMaxFaultTick - 1) w.from_tick = kMaxFaultTick - 1;
    if (w.until_tick != mac::kForever) {
      w.until_tick =
          std::clamp<mac::Time>(w.until_tick, w.from_tick + 1, kMaxFaultTick);
    }
  }
  normalize_scenario(s);
  // Same horizon policy as the generator: liveness runs get room, safety-
  // only runs stop once the interesting prefix has played out.
  s.horizon = termination_expected(s) ? 1'000'000 : 30'000;
}

bool inside_envelope(const Scenario& s) {
  Scenario clamped = s;
  clamp_to_envelope(clamped);
  return format_spec(clamped) == format_spec(s);
}

Scenario mutate_scenario(const Scenario& base, const Scenario* splice,
                         util::Rng& rng) {
  Scenario s = base;
  bool applied = false;
  for (int attempt = 0; attempt < 8 && !applied; ++attempt) {
    const auto op =
        static_cast<MutationOp>(rng.uniform(0, kMutationOpCount - 1));
    applied = apply_mutation(s, op, splice, rng);
  }
  // Every scenario admits a reseed, so a mutant never degenerates into a
  // verbatim copy of its parent.
  if (!applied) apply_mutation(s, MutationOp::kReseed, splice, rng);
  clamp_to_envelope(s);
  return s;
}

Scenario generate_scenario(std::uint64_t seed) {
  util::Rng rng(sub_seed(seed, kGenSalt));
  Scenario s;
  s.seed = seed;
  s.algorithm = static_cast<Algorithm>(rng.uniform(0, 5));

  // Topology: single-hop algorithms get the clique; the rest roam the
  // whole family.
  if (single_hop_only(s.algorithm)) {
    s.topology = TopologyKind::kClique;
  } else {
    s.topology =
        static_cast<TopologyKind>(rng.uniform(0, kTopologyKindCount - 1));
  }
  switch (s.topology) {
    case TopologyKind::kGrid: {
      s.aux = static_cast<std::uint32_t>(rng.uniform(2, 4));
      s.n = s.aux * static_cast<std::uint32_t>(rng.uniform(2, 4));
      break;
    }
    case TopologyKind::kTorus: {
      s.aux = static_cast<std::uint32_t>(rng.uniform(3, 4));
      s.n = s.aux * static_cast<std::uint32_t>(rng.uniform(3, 4));
      break;
    }
    case TopologyKind::kBarbell: {
      s.aux = static_cast<std::uint32_t>(rng.uniform(1, 3));
      s.n = static_cast<std::uint32_t>(rng.uniform(4, 12));
      break;
    }
    default: {
      const std::uint32_t lo = min_nodes(s.topology);
      const std::uint32_t hi = s.algorithm == Algorithm::kBenOr ? 9 : 14;
      s.n = static_cast<std::uint32_t>(rng.uniform(lo, std::max(lo, hi)));
      break;
    }
  }

  // Scheduler: Theorem 3.3/3.9 algorithms are synchronous-only. The draw
  // range is pinned to the GENERATED kinds (kScripted is mutation-only), so
  // adding scripted timelines did not move a single generated scenario —
  // the 504-corpus digest is bit-identical across that change.
  if (synchronous_only(s.algorithm)) {
    s.scheduler = SchedulerKind::kSynchronous;
  } else {
    s.scheduler = static_cast<SchedulerKind>(
        rng.uniform(0, kGeneratedSchedulerKindCount - 1));
  }
  s.fack = s.scheduler == SchedulerKind::kSynchronous
               ? rng.uniform(1, 4)
               : s.scheduler == SchedulerKind::kContention
                     ? rng.uniform(1, 3)  // contention: base delay
                     : rng.uniform(2, 6);

  if (s.scheduler == SchedulerKind::kHoldback) {
    const std::size_t hold_count = rng.uniform(1, 3);
    for (std::size_t i = 0; i < hold_count; ++i) {
      HoldSpec h;
      h.sender = static_cast<NodeId>(rng.uniform(0, s.n - 1));
      h.release = rng.uniform(s.fack + 1, 20 * s.fack + 40);
      s.holds.push_back(h);
    }
    s.late_holds = rng.chance(0.5);
  }

  // Inputs: binary patterns everywhere; multivalued only where the
  // algorithm supports general values.
  const bool multi_ok = s.algorithm == Algorithm::kFlooding ||
                        s.algorithm == Algorithm::kWPaxos;
  s.inputs = static_cast<InputPattern>(
      rng.uniform(0, multi_ok ? kInputPatternCount - 1
                              : kInputPatternCount - 2));
  s.ids = rng.chance(0.5) ? IdAssignment::kPermuted : IdAssignment::kIdentity;

  // Crash schedule, inside each algorithm's envelope. Crash times target
  // the first few ack windows, where broadcasts are mid-flight.
  const std::size_t count = build_graph(s).node_count();
  const auto draw_crashes = [&](std::size_t how_many) {
    for (std::size_t i = 0; i < how_many; ++i) {
      CrashSpec c;
      c.node = static_cast<NodeId>(rng.uniform(0, count - 1));
      c.when = rng.uniform(1, 6 * s.fack + 2 * count);
      s.crashes.push_back(c);
    }
  };
  switch (s.algorithm) {
    case Algorithm::kFlooding:
    case Algorithm::kWPaxos:
      // Safety-only territory: a third of the runs get crashes.
      if (rng.chance(0.33)) draw_crashes(rng.uniform(1, 2));
      break;
    case Algorithm::kBenOr: {
      s.benor_f = rng.uniform(0, (count - 1) / 2);
      if (s.benor_f > 0) draw_crashes(rng.uniform(0, s.benor_f));
      break;
    }
    default:
      break;  // crash-intolerant: generator keeps them crash-free
  }

  normalize_scenario(s);
  // Liveness runs get a generous horizon; safety-only runs are cut short
  // once the interesting (crash-interleaved) prefix has played out.
  s.horizon = termination_expected(s) ? 1'000'000 : 30'000;
  return s;
}

void promote_to_large(Scenario& s, std::uint32_t n) {
  s.n = std::max<std::uint32_t>(n, 16);
  // Clique-locked algorithms cannot scale: single-hop topologies are
  // Theta(n^2) edges, and Ben-Or's coin convergence needs tiny n anyway.
  // Flooding accepts every topology, scheduler, crash set, and fault plan,
  // so it inherits the rest of the scenario unchanged.
  if (single_hop_only(s.algorithm)) s.algorithm = Algorithm::kFlooding;
  // Liveness-checked wPAXOS cannot scale either: n concurrent proposers
  // duel, and convergence time at n >= 1024 has no bound a soak can wait
  // out (a promoted crash-free run would be held against its 1M-tick
  // horizon). Safety-only wPAXOS runs — crashed or faulted, on the short
  // horizon below — are bounded and keep the Lemma 4.2 monitor running at
  // scale, so only the termination-expected ones are remapped.
  if (s.algorithm == Algorithm::kWPaxos && termination_expected(s)) {
    s.algorithm = Algorithm::kFlooding;
  }
  // Only bounded-degree, low-diameter shapes are affordable at n >= 1024:
  // cliques/barbells/randconn materialize ~n^2 edges, geo at the small-n
  // radii is nearly as dense, and a ring/line's n/2 diameter turns
  // D-knowledge runs quadratic. Other draws remap deterministically so
  // promotion stays a pure function of the scenario.
  const bool sparse = s.topology == TopologyKind::kGrid ||
                      s.topology == TopologyKind::kTorus ||
                      s.topology == TopologyKind::kBinaryTree ||
                      s.topology == TopologyKind::kStar;
  if (!sparse) {
    static constexpr TopologyKind kSparseFamily[] = {
        TopologyKind::kGrid, TopologyKind::kTorus, TopologyKind::kBinaryTree,
        TopologyKind::kStar};
    s.topology = kSparseFamily[sub_seed(s.seed, kLargeSalt) % 4];
  }
  if (s.topology == TopologyKind::kGrid ||
      s.topology == TopologyKind::kTorus) {
    // Near-square: width*height lands close to n and diameter ~2*sqrt(n).
    std::uint32_t w = 3;
    while ((w + 1) * (w + 1) <= s.n) ++w;
    s.aux = w;
  } else {
    s.aux = 0;
  }
  normalize_scenario(s);
  // Liveness runs keep the generator's horizon (they stop at decide, in
  // O(diameter) rounds); safety-only runs get a shorter prefix than the
  // small-n policy — the interesting schedule prefix is no longer at 4096
  // nodes than at 14, but each tick costs ~300x more deliveries.
  s.horizon = termination_expected(s) ? 1'000'000 : 4'000;
}

void promote_to_log_service(Scenario& s) {
  util::Rng rng(sub_seed(s.seed, kLogSalt));
  // Ops counts stay soak-sized (every slot is a full consensus instance)
  // and lease draws lean short, so renewals — and re-elections when the
  // base scenario's crashes take the lease holder — happen several times
  // per run. Everything else (seed, transport, crashes, holds) is
  // inherited; clamp_to_envelope applies the family envelope.
  s.log_ops = static_cast<std::uint32_t>(rng.uniform(16, 128));
  s.log_batch = static_cast<std::uint32_t>(rng.uniform(1, 8));
  s.log_window = static_cast<std::uint32_t>(rng.uniform(1, 4));
  s.log_lease = static_cast<std::uint32_t>(rng.uniform(2, 16));
  clamp_to_envelope(s);
}

// ---- spec round-trip ----------------------------------------------------

std::string format_spec(const Scenario& s) {
  std::ostringstream os;
  os << "amacfuzz1:seed=" << s.seed
     << ":alg=" << harness::algorithm_name(s.algorithm)
     << ":topo=" << topology_name(s.topology) << ":n=" << s.n
     << ":aux=" << s.aux << ":sched=" << scheduler_name(s.scheduler)
     << ":fack=" << s.fack << ":late=" << (s.late_holds ? 1 : 0)
     << ":in=" << input_pattern_name(s.inputs)
     << ":ids=" << id_assignment_name(s.ids) << ":f=" << s.benor_f
     << ":hz=" << s.horizon;
  if (s.log_ops != 0) {
    os << ":log=" << s.log_ops << "@" << s.log_batch << "@" << s.log_window
       << "@" << s.log_lease;
  }
  if (!s.crashes.empty()) {
    os << ":crashes=";
    for (std::size_t i = 0; i < s.crashes.size(); ++i) {
      if (i) os << ",";
      os << s.crashes[i].node << "@" << s.crashes[i].when;
    }
  }
  if (!s.holds.empty()) {
    os << ":holds=";
    for (std::size_t i = 0; i < s.holds.size(); ++i) {
      if (i) os << ",";
      os << s.holds[i].sender << "@" << s.holds[i].release;
    }
  }
  if (!s.script.empty()) {
    os << ":script=";
    for (std::size_t i = 0; i < s.script.size(); ++i) {
      if (i) os << ",";
      const ScriptSlot& t = s.script[i];
      os << t.sender << "@" << t.index << "@" << t.ack << "@";
      if (t.delays.empty()) {
        os << t.recv;  // uniform slot: bare shared delay
      } else {
        // Per-receiver slot: `r-d+r-d+...` (unlisted receivers delay 1).
        for (std::size_t j = 0; j < t.delays.size(); ++j) {
          if (j) os << "+";
          os << t.delays[j].first << "-" << t.delays[j].second;
        }
      }
    }
  }
  if (s.drop_rate_bp != 0) os << ":drop=" << s.drop_rate_bp;
  if (s.dup_rate_bp != 0) os << ":dup=" << s.dup_rate_bp;
  if (!s.faults.empty()) {
    os << ":faults=";
    for (std::size_t i = 0; i < s.faults.size(); ++i) {
      if (i) os << ",";
      const FaultSpec& w = s.faults[i];
      os << w.from << "@" << w.to << "@" << w.from_tick << "@";
      if (w.until_tick == mac::kForever) {
        os << "inf";
      } else {
        os << w.until_tick;
      }
    }
  }
  return os.str();
}

namespace {

[[nodiscard]] bool parse_u64(std::string_view v, std::uint64_t& out) {
  const auto parsed = util::parse_u64(v);
  if (!parsed.has_value()) return false;
  out = *parsed;
  return true;
}

/// Parses "a@b,c@d" pair lists (crashes, holds).
template <typename Pair>
[[nodiscard]] bool parse_at_pairs(std::string_view v,
                                  std::vector<Pair>& out) {
  while (!v.empty()) {
    const std::size_t comma = v.find(',');
    const std::string_view item = v.substr(0, comma);
    const std::size_t at = item.find('@');
    if (at == std::string_view::npos) return false;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    if (!parse_u64(item.substr(0, at), a) ||
        !parse_u64(item.substr(at + 1), b)) {
      return false;
    }
    if (a > std::numeric_limits<NodeId>::max()) return false;
    out.push_back(Pair{static_cast<NodeId>(a), b});
    if (comma == std::string_view::npos) break;
    v.remove_prefix(comma + 1);
  }
  return true;
}

/// Parses "s@i@ack@recv,..." scripted-slot lists. The 4th field is either a
/// bare shared delay (uniform slot) or a `r-d+r-d` per-receiver list, in
/// which case `recv` mirrors the largest listed delay (as normalize keeps
/// it).
[[nodiscard]] bool parse_script_slots(std::string_view v,
                                      std::vector<ScriptSlot>& out) {
  while (!v.empty()) {
    const std::size_t comma = v.find(',');
    std::string_view item = v.substr(0, comma);
    std::array<std::uint64_t, 3> fields{};
    for (std::size_t f = 0; f < 3; ++f) {
      const std::size_t at = item.find('@');
      if (at == std::string_view::npos) return false;
      if (!parse_u64(item.substr(0, at), fields[f])) return false;
      item.remove_prefix(at + 1);
    }
    if (item.empty() || item.find('@') != std::string_view::npos) {
      return false;
    }
    if (fields[0] > std::numeric_limits<NodeId>::max()) return false;
    if (fields[1] > std::numeric_limits<std::uint32_t>::max()) return false;
    ScriptSlot slot;
    slot.sender = static_cast<NodeId>(fields[0]);
    slot.index = static_cast<std::uint32_t>(fields[1]);
    slot.ack = fields[2];
    if (item.find('-') == std::string_view::npos) {
      if (!parse_u64(item, slot.recv)) return false;
    } else {
      mac::Time max_delay = 1;
      while (!item.empty()) {
        const std::size_t plus = item.find('+');
        const std::string_view pair = item.substr(0, plus);
        const std::size_t dash = pair.find('-');
        if (dash == std::string_view::npos) return false;
        std::uint64_t r = 0;
        std::uint64_t d = 0;
        if (!parse_u64(pair.substr(0, dash), r) ||
            !parse_u64(pair.substr(dash + 1), d)) {
          return false;
        }
        if (r > std::numeric_limits<NodeId>::max()) return false;
        slot.delays.emplace_back(static_cast<NodeId>(r), d);
        max_delay = std::max(max_delay, d);
        if (plus == std::string_view::npos) break;
        item.remove_prefix(plus + 1);
      }
      slot.recv = max_delay;
    }
    out.push_back(std::move(slot));
    if (comma == std::string_view::npos) break;
    v.remove_prefix(comma + 1);
  }
  return true;
}

/// Parses "from@to@start@until,..." drop-window lists; `until` may be
/// `inf` for a permanent (kForever) outage.
[[nodiscard]] bool parse_fault_windows(std::string_view v,
                                       std::vector<FaultSpec>& out) {
  while (!v.empty()) {
    const std::size_t comma = v.find(',');
    std::string_view item = v.substr(0, comma);
    std::array<std::uint64_t, 3> fields{};
    for (std::size_t f = 0; f < 3; ++f) {
      const std::size_t at = item.find('@');
      if (at == std::string_view::npos) return false;
      if (!parse_u64(item.substr(0, at), fields[f])) return false;
      item.remove_prefix(at + 1);
    }
    if (item.find('@') != std::string_view::npos) return false;
    mac::Time until = mac::kForever;
    if (item != "inf" && !parse_u64(item, until)) return false;
    if (fields[0] > std::numeric_limits<NodeId>::max() ||
        fields[1] > std::numeric_limits<NodeId>::max()) {
      return false;
    }
    out.push_back(FaultSpec{static_cast<NodeId>(fields[0]),
                            static_cast<NodeId>(fields[1]), fields[2],
                            until});
    if (comma == std::string_view::npos) break;
    v.remove_prefix(comma + 1);
  }
  return true;
}

/// Parses the `log=ops@batch@window@lease` service token: exactly four
/// `@`-separated fields, all nonzero (a zero-op service is spelled by
/// omitting the token entirely, which keeps the round-trip canonical).
[[nodiscard]] bool parse_log_fields(std::string_view v, Scenario& s) {
  std::array<std::uint64_t, 4> fields{};
  for (std::size_t f = 0; f < 4; ++f) {
    const std::size_t at = v.find('@');
    if (f < 3) {
      if (at == std::string_view::npos) return false;
      if (!parse_u64(v.substr(0, at), fields[f])) return false;
      v.remove_prefix(at + 1);
    } else {
      if (at != std::string_view::npos) return false;
      if (!parse_u64(v, fields[f])) return false;
    }
    if (fields[f] == 0 || fields[f] > 1'000'000) return false;
  }
  s.log_ops = static_cast<std::uint32_t>(fields[0]);
  s.log_batch = static_cast<std::uint32_t>(fields[1]);
  s.log_window = static_cast<std::uint32_t>(fields[2]);
  s.log_lease = static_cast<std::uint32_t>(fields[3]);
  return true;
}

template <typename Enum>
[[nodiscard]] bool parse_enum(std::string_view v, std::size_t count,
                              const char* (*name)(Enum), Enum& out) {
  for (std::size_t i = 0; i < count; ++i) {
    const auto e = static_cast<Enum>(i);
    if (v == name(e)) {
      out = e;
      return true;
    }
  }
  return false;
}

}  // namespace

std::optional<Scenario> parse_spec(std::string_view spec) {
  // Convenience: a bare integer replays generate_scenario(seed).
  if (!spec.empty() &&
      spec.find_first_not_of("0123456789") == std::string_view::npos) {
    std::uint64_t seed = 0;
    if (!parse_u64(spec, seed)) return std::nullopt;
    return generate_scenario(seed);
  }

  Scenario s;
  s.crashes.clear();
  s.holds.clear();
  bool first = true;
  // Required scalar fields; crashes/holds stay optional.
  std::uint32_t seen = 0;
  constexpr std::uint32_t kAllScalar = (1u << 12) - 1;

  while (!spec.empty()) {
    const std::size_t colon = spec.find(':');
    const std::string_view token = spec.substr(0, colon);
    spec = colon == std::string_view::npos ? std::string_view{}
                                           : spec.substr(colon + 1);
    if (first) {
      if (token != "amacfuzz1") return std::nullopt;
      first = false;
      continue;
    }
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos) return std::nullopt;
    const std::string_view key = token.substr(0, eq);
    const std::string_view val = token.substr(eq + 1);
    std::uint64_t u = 0;
    if (key == "seed") {
      if (!parse_u64(val, u)) return std::nullopt;
      s.seed = u;
      seen |= 1u << 0;
    } else if (key == "alg") {
      const auto a = harness::algorithm_from_name(val);
      if (!a) return std::nullopt;
      s.algorithm = *a;
      seen |= 1u << 1;
    } else if (key == "topo") {
      if (!parse_enum(val, kTopologyKindCount, topology_name, s.topology)) {
        return std::nullopt;
      }
      seen |= 1u << 2;
    } else if (key == "n") {
      if (!parse_u64(val, u) || u == 0 || u > 16384) return std::nullopt;
      s.n = static_cast<std::uint32_t>(u);
      seen |= 1u << 3;
    } else if (key == "aux") {
      if (!parse_u64(val, u) || u > 16384) return std::nullopt;
      s.aux = static_cast<std::uint32_t>(u);
      seen |= 1u << 4;
    } else if (key == "sched") {
      if (!parse_enum(val, kSchedulerKindCount, scheduler_name,
                      s.scheduler)) {
        return std::nullopt;
      }
      seen |= 1u << 5;
    } else if (key == "fack") {
      if (!parse_u64(val, u) || u == 0) return std::nullopt;
      s.fack = u;
      seen |= 1u << 6;
    } else if (key == "late") {
      if (!parse_u64(val, u) || u > 1) return std::nullopt;
      s.late_holds = u == 1;
      seen |= 1u << 7;
    } else if (key == "in") {
      if (!parse_enum(val, kInputPatternCount, input_pattern_name,
                      s.inputs)) {
        return std::nullopt;
      }
      seen |= 1u << 8;
    } else if (key == "ids") {
      if (val == "identity") {
        s.ids = IdAssignment::kIdentity;
      } else if (val == "perm") {
        s.ids = IdAssignment::kPermuted;
      } else {
        return std::nullopt;
      }
      seen |= 1u << 9;
    } else if (key == "f") {
      if (!parse_u64(val, u)) return std::nullopt;
      s.benor_f = u;
      seen |= 1u << 10;
    } else if (key == "hz") {
      if (!parse_u64(val, u) || u == 0) return std::nullopt;
      s.horizon = u;
      seen |= 1u << 11;
    } else if (key == "crashes") {
      if (!parse_at_pairs(val, s.crashes)) return std::nullopt;
    } else if (key == "holds") {
      if (!parse_at_pairs(val, s.holds)) return std::nullopt;
    } else if (key == "script") {
      if (!parse_script_slots(val, s.script)) return std::nullopt;
    } else if (key == "drop") {
      if (!parse_u64(val, u) || u == 0 || u > mac::LinkFaultPlan::kRateScale) {
        return std::nullopt;
      }
      s.drop_rate_bp = static_cast<std::uint32_t>(u);
    } else if (key == "dup") {
      if (!parse_u64(val, u) || u == 0 || u > mac::LinkFaultPlan::kRateScale) {
        return std::nullopt;
      }
      s.dup_rate_bp = static_cast<std::uint32_t>(u);
    } else if (key == "log") {
      if (!parse_log_fields(val, s)) return std::nullopt;
    } else if (key == "faults") {
      if (!parse_fault_windows(val, s.faults)) return std::nullopt;
    } else {
      return std::nullopt;
    }
  }
  if (first || seen != kAllScalar) return std::nullopt;
  return s;
}

// ---- materialization ----------------------------------------------------

BuiltScenario build_scenario(const Scenario& s) {
  BuiltScenario b;
  b.graph = build_graph(s);
  const std::size_t count = b.graph.node_count();

  {
    util::Rng in_rng(sub_seed(s.seed, kInputSalt));
    switch (s.inputs) {
      case InputPattern::kAllZero:
        b.inputs = harness::inputs_all(count, 0);
        break;
      case InputPattern::kAllOne:
        b.inputs = harness::inputs_all(count, 1);
        break;
      case InputPattern::kAlternating:
        b.inputs = harness::inputs_alternating(count);
        break;
      case InputPattern::kSplit:
        b.inputs = harness::inputs_split(count);
        break;
      case InputPattern::kRandom:
        b.inputs = harness::inputs_random(count, in_rng);
        break;
      case InputPattern::kMultivalued:
        b.inputs = harness::inputs_multivalued(count, 6, in_rng);
        break;
    }
  }
  {
    util::Rng id_rng(sub_seed(s.seed, kIdSalt));
    b.ids = s.ids == IdAssignment::kPermuted
                ? harness::permuted_ids(count, id_rng)
                : harness::identity_ids(count);
  }

  const std::uint64_t sched_seed = sub_seed(s.seed, kSchedSalt);
  switch (s.scheduler) {
    case SchedulerKind::kSynchronous:
      b.scheduler = std::make_unique<mac::SynchronousScheduler>(s.fack);
      break;
    case SchedulerKind::kMaxDelay:
      b.scheduler = std::make_unique<mac::MaxDelayScheduler>(s.fack);
      break;
    case SchedulerKind::kUniformRandom:
      b.scheduler =
          std::make_unique<mac::UniformRandomScheduler>(s.fack, sched_seed);
      break;
    case SchedulerKind::kSkewed:
      b.scheduler = std::make_unique<mac::SkewedScheduler>(s.fack, sched_seed);
      break;
    case SchedulerKind::kContention: {
      // `fack` is the base delay; the declared bound covers the worst
      // queue a receiver's in-degree can build up, with generous slack
      // (the contract check aborts on a real overrun).
      std::size_t max_deg = 0;
      for (NodeId u = 0; u < count; ++u) {
        max_deg = std::max(max_deg, b.graph.degree(u));
      }
      const mac::Time bound =
          s.fack * static_cast<mac::Time>(max_deg + 2) + 32;
      b.scheduler =
          std::make_unique<mac::ContentionScheduler>(s.fack, bound, sched_seed);
      break;
    }
    case SchedulerKind::kHoldback: {
      auto base =
          std::make_unique<mac::UniformRandomScheduler>(s.fack, sched_seed);
      // Late-hold scenarios must construct the scheduler with a small
      // default release: the engine sizes its calendar wheel from fack()
      // at Network construction, so only a pre-hold bound that does NOT
      // already cover the releases forces the held deliveries onto the
      // overflow-heap path this mode exists to exercise.
      mac::Time release = 1;
      if (!s.late_holds) {
        for (const auto& h : s.holds) release = std::max(release, h.release);
      }
      auto hold =
          std::make_unique<mac::HoldbackScheduler>(std::move(base), release);
      b.holdback = hold.get();
      b.scheduler = std::move(hold);
      if (!s.late_holds) apply_holds(s, b);
      break;
    }
    case SchedulerKind::kScripted: {
      auto sched = std::make_unique<mac::ScriptedScheduler>();
      for (const auto& t : s.script) {
        // Out-of-range or malformed slots (hand-edited specs) are dropped
        // or clamped, mirroring normalize_scenario; duplicate
        // (sender, index) slots resolve later-wins, deterministically.
        if (t.sender >= count) continue;
        const mac::Time ack = std::max<mac::Time>(1, t.ack);
        if (t.delays.empty()) {
          const mac::Time recv = std::clamp<mac::Time>(t.recv, 1, ack);
          sched->script_uniform(t.sender, t.index, ack, recv);
        } else {
          std::vector<std::pair<NodeId, mac::Time>> delays;
          delays.reserve(t.delays.size());
          for (const auto& [receiver, delay] : t.delays) {
            if (receiver >= count) continue;
            delays.emplace_back(receiver,
                                std::clamp<mac::Time>(delay, 1, ack));
          }
          sched->script(t.sender, t.index, ack, std::move(delays));
        }
      }
      b.scheduler = std::move(sched);
      break;
    }
  }

  harness::AlgorithmParams params;
  params.inputs = b.inputs;
  params.ids = b.ids;
  params.benor_f = s.benor_f;
  params.seed = s.seed;
  if (s.algorithm == harness::Algorithm::kAnonymous ||
      s.algorithm == harness::Algorithm::kStability) {
    // Only the D-knowledge algorithms pay for this, and Graph::diameter is
    // double-sweep + iFUB (not all-pairs BFS), so a 4096-node build stays
    // sub-second — pinned by the wall-clock regression in test_net_graph.
    params.diameter = b.graph.diameter();
  }
  // The Lemma 4.2 monitor needs response tracking; it does not change the
  // algorithm's messages, so both engines of a differential pair see
  // identical traffic either way.
  params.wpaxos.track_responses = s.algorithm == harness::Algorithm::kWPaxos;
  b.factory = harness::algorithm_factory(s.algorithm, std::move(params));

  for (const auto& c : s.crashes) {
    if (c.node < count) b.crashes.push_back(mac::CrashPlan{c.node, c.when});
  }
  if (s.drop_rate_bp != 0 || s.dup_rate_bp != 0 || !s.faults.empty()) {
    // The plan's hash seed derives from the master seed (own salt), so a
    // reseed redraws the fault pattern with the rest of the run while the
    // spec line stays rate/window-only.
    b.faults.seed = sub_seed(s.seed, kFaultSalt);
    b.faults.drop_rate_bp = s.drop_rate_bp;
    b.faults.dup_rate_bp = s.dup_rate_bp;
    for (const auto& w : s.faults) {
      if (w.from < count && w.to < count) {
        b.faults.windows.push_back(
            mac::DropWindow{w.from, w.to, w.from_tick, w.until_tick});
      }
    }
  }
  return b;
}

void apply_holds(const Scenario& s, BuiltScenario& b) {
  if (b.holdback == nullptr) return;
  const std::size_t count = b.graph.node_count();
  for (const auto& h : s.holds) {
    if (h.sender < count) b.holdback->hold_sender_until(h.sender, h.release);
  }
}

}  // namespace amac::fuzz
