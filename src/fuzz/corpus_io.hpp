// Corpus file IO for the fuzz soak: loading `--corpus-in` spec files and
// persisting `--corpus-out` frontiers.
//
// Loading is TOLERANT by default: a malformed line is skipped with a
// per-line warning and counted, and only a file whose every spec line is
// malformed fails the load. The nightly lane restores its corpus from an
// actions/cache entry that may predate a spec-grammar change (the
// date-fallback prefix match deliberately picks up old frontiers), and one
// stale line must not kill a 100k-scenario soak — the valid remainder of
// the frontier is exactly what is worth resuming from. `strict` restores
// the old all-or-nothing contract for hand-maintained corpora where a
// malformed line means the file itself is wrong.
//
// Writing is ATOMIC: the corpus is written to `<path>.tmp` and renamed
// over the destination, so an interrupted or failed write can never
// truncate a previously persisted frontier (the nightly cache would
// otherwise lose its resume point to a mid-write crash).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "fuzz/scenario.hpp"

namespace amac::fuzz {

/// Outcome of loading a corpus file or stream.
struct CorpusLoadResult {
  std::vector<Scenario> scenarios;  ///< the successfully parsed specs
  std::size_t loaded = 0;           ///< == scenarios.size()
  std::size_t skipped = 0;          ///< malformed lines skipped (tolerant)
  bool ok = false;   ///< false: unreadable file, strict-mode malformed
                     ///< line, or every spec line malformed
  std::string error;  ///< first fatal diagnostic when !ok
};

/// Parses corpus spec lines from `in` (one spec or bare seed per line;
/// blank lines and #-comments are skipped). `name` labels diagnostics
/// (the file path, or a pseudo-name for streams). Per-line warnings for
/// skipped lines go to `warnings` when non-null (the CLI passes stderr).
/// Tolerant unless `strict` (see file comment).
[[nodiscard]] CorpusLoadResult load_corpus_stream(std::istream& in,
                                                  const std::string& name,
                                                  bool strict,
                                                  std::ostream* warnings);

/// Opens `path` and delegates to load_corpus_stream. An unreadable file is
/// a failed load in both modes.
[[nodiscard]] CorpusLoadResult load_corpus_file(const std::string& path,
                                                bool strict,
                                                std::ostream* warnings);

/// Writes `corpus` as spec lines to `path` via a temp file + atomic rename
/// (see file comment). On failure returns false, sets `error` when
/// non-null, and leaves any pre-existing `path` contents untouched.
[[nodiscard]] bool write_corpus_file(const std::string& path,
                                     const std::vector<Scenario>& corpus,
                                     std::string* error);

}  // namespace amac::fuzz
