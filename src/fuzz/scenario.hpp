// Scenario model for the adversarial fuzzer: one plain-data record that
// fully determines a simulated consensus run — algorithm, topology family,
// scheduler family and parameters, crash schedule, holdback schedule, input
// pattern, id assignment — plus the master seed every derived random stream
// (topology wiring, inputs, ids, scheduler delays, Ben-Or coins) is drawn
// from. Same Scenario => bit-identical run, on either engine.
//
// Scenarios exist in two representations:
//   * the struct below (what the runner and shrinker manipulate), and
//   * a one-line textual spec (`format_spec` / `parse_spec`, round-trip
//     exact) used for `--replay` command lines and the pinned regression
//     corpus. A violation report therefore fits in one copy-pastable line.
//
// `generate_scenario(seed)` draws every dimension from a single util::Rng
// stream and only emits combinations inside the algorithms' guarantee
// envelopes (e.g. the Theorem 3.3/3.9 algorithms only ever get the
// synchronous scheduler, crash schedules only go to crash-tolerant or
// safety-only-checked algorithms). Hand-written specs may step outside the
// envelope — that is how the paper's own counterexample schedules are
// reproduced with the same tooling (see tests/test_fuzz_regressions.cpp).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "harness/experiment.hpp"
#include "mac/engine.hpp"
#include "mac/schedulers.hpp"
#include "net/graph.hpp"
#include "util/rng.hpp"

namespace amac::fuzz {

enum class TopologyKind : std::uint8_t {
  kClique = 0,
  kLine = 1,
  kRing = 2,
  kStar = 3,
  kGrid = 4,
  kTorus = 5,
  kBinaryTree = 6,
  kBarbell = 7,
  kRandomConnected = 8,
  kRandomGeometric = 9,
};
inline constexpr std::size_t kTopologyKindCount = 10;

enum class SchedulerKind : std::uint8_t {
  kSynchronous = 0,
  kMaxDelay = 1,
  kUniformRandom = 2,
  kSkewed = 3,
  kContention = 4,
  kHoldback = 5,  ///< UniformRandom base + per-sender release holds
  kScripted = 6,  ///< exact per-broadcast timeline (Scenario::script slots)
};
inline constexpr std::size_t kSchedulerKindCount = 7;
/// How many scheduler kinds generate_scenario draws from. kScripted is
/// deliberately NOT generated — scripted timelines enter the search space
/// only through mutation (timeline ops over corpus entries) and hand-written
/// specs, so the pinned seed-only corpus digest is unchanged by its
/// existence.
inline constexpr std::size_t kGeneratedSchedulerKindCount = 6;

enum class InputPattern : std::uint8_t {
  kAllZero = 0,
  kAllOne = 1,
  kAlternating = 2,
  kSplit = 3,
  kRandom = 4,
  kMultivalued = 5,  ///< values in [0, 6); general-value algorithms only
};
inline constexpr std::size_t kInputPatternCount = 6;

enum class IdAssignment : std::uint8_t { kIdentity = 0, kPermuted = 1 };

struct CrashSpec {
  NodeId node = kNoNode;
  mac::Time when = 0;
};

struct HoldSpec {
  NodeId sender = kNoNode;
  mac::Time release = 0;
};

/// One scripted broadcast slot (kScripted only): the `index`-th broadcast
/// of `sender` takes `ack` ticks to ack and delivers to every receiver
/// after `recv` ticks (the dense uniform form of ScriptedScheduler).
/// Unscripted broadcasts fall back to synchronous rounds of length 1, so a
/// few slots suffice to build the paper's hand-crafted adversarial
/// orderings (Theorem 3.3-style) while the rest of the run stays lock-step.
///
/// When `delays` is non-empty the slot is per-receiver instead of uniform:
/// each listed receiver gets its own delay, unlisted receivers get delay 1,
/// and `recv` mirrors the largest listed delay (normalize keeps them in
/// sync). In the spec line the 4th slot field then reads `r-d+r-d+...`
/// instead of a bare integer.
struct ScriptSlot {
  NodeId sender = kNoNode;
  std::uint32_t index = 0;  ///< which broadcast of the sender (0-based)
  mac::Time ack = 1;        ///< ack delay; >= recv and every listed delay
  mac::Time recv = 1;       ///< shared receive delay, in [1, ack]
  /// Per-receiver (receiver, delay) overrides; empty means uniform `recv`.
  std::vector<std::pair<NodeId, mac::Time>> delays;
};

/// One directed-link drop window for the fault plan (see
/// mac/link_faults.hpp): deliveries on `from -> to` whose arrival tick
/// lands in [from_tick, until_tick) are deferred to until_tick, or lost
/// outright when until_tick is mac::kForever. Spec token:
/// `from@to@from_tick@until_tick` with `inf` for kForever.
struct FaultSpec {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  mac::Time from_tick = 0;
  mac::Time until_tick = mac::kForever;
};

struct Scenario {
  std::uint64_t seed = 0;  ///< master seed for every derived random stream
  harness::Algorithm algorithm = harness::Algorithm::kFlooding;
  TopologyKind topology = TopologyKind::kRing;
  std::uint32_t n = 4;    ///< requested size (actual count may derive, e.g.
                          ///< grid width x height); see build_scenario
  std::uint32_t aux = 0;  ///< grid/torus width, barbell path length
  SchedulerKind scheduler = SchedulerKind::kSynchronous;
  mac::Time fack = 1;     ///< scheduler delay bound (sync: round length)
  bool late_holds = false;  ///< apply holds AFTER Network construction, so
                            ///< the calendar wheel is sized from the
                            ///< pre-hold bound and held deliveries take the
                            ///< overflow-heap path
  InputPattern inputs = InputPattern::kAlternating;
  IdAssignment ids = IdAssignment::kIdentity;
  std::size_t benor_f = 0;  ///< Ben-Or crash-tolerance parameter
  mac::Time horizon = 100000;
  std::vector<CrashSpec> crashes;
  std::vector<HoldSpec> holds;     ///< kHoldback only
  std::vector<ScriptSlot> script;  ///< kScripted only
  // Link-fault plan (mac::LinkFaultPlan), in basis points of kRateScale.
  // The generator never draws faults (mirroring kScripted); they enter via
  // mutation, soak CLI floors, and hand-written specs, so the pinned
  // seed-only corpus digest is unchanged by their existence. The plan's
  // hash seed is derived from `seed` (kFaultSalt), never stored in specs.
  std::uint32_t drop_rate_bp = 0;  ///< global drop rate, parts per 10000
  std::uint32_t dup_rate_bp = 0;   ///< global duplicate rate, parts per 10000
  std::vector<FaultSpec> faults;   ///< per-link drop windows
  // Log-service family (log::ReplicatedLog): log_ops > 0 switches the run
  // from a one-shot consensus instance to the replicated log — a slot
  // sequence multiplexed over one Network, with elected leases, CommitFlood
  // fast-path slots, stalled-slot recovery, and re-election after a leader
  // crash. Like kScripted and faults, the generator never draws the family
  // (pinned seed-only corpus digest unchanged); it enters via
  // promote_to_log_service (SoakOptions::log_every), the kLogService
  // mutation, and hand-written specs. Spec token: `log=ops@batch@window@
  // lease`, emitted only when log_ops > 0. When log_ops == 0 the knobs
  // below are inert and normalize resets them to these defaults.
  std::uint32_t log_ops = 0;    ///< client ops; 0 = instance family
  std::uint32_t log_batch = 8;  ///< ops per decided slot (LogConfig)
  std::uint32_t log_window = 4; ///< pipelined slots in flight
  std::uint32_t log_lease = 64; ///< slots per lease renewal
};

// ---- enum names (spec tokens) ------------------------------------------

[[nodiscard]] const char* topology_name(TopologyKind k);
[[nodiscard]] const char* scheduler_name(SchedulerKind k);
[[nodiscard]] const char* input_pattern_name(InputPattern p);
[[nodiscard]] const char* id_assignment_name(IdAssignment a);

// ---- generation ---------------------------------------------------------

/// Deterministically expands `seed` into a scenario inside the guarantee
/// envelope (see header comment). Every draw comes from one Rng stream
/// seeded with `seed`, so the generated corpus is pinned by seed alone.
[[nodiscard]] Scenario generate_scenario(std::uint64_t seed);

/// True when the scenario's combination of algorithm, scheduler, crash
/// schedule, and fault plan is one the algorithm guarantees termination for
/// (the oracle demands termination exactly then; safety is demanded
/// always). The bounded-loss envelope: termination is only asserted when
/// both fault rates are zero and every drop window is finite — finite
/// windows merely defer deliveries (the ack stretches past them), while
/// rate drops and kForever windows lose copies outright.
[[nodiscard]] bool termination_expected(const Scenario& s);

/// Clamps a (possibly transformed) scenario back into well-formedness:
/// minimum sizes per topology, crash/hold node ids in range, Ben-Or's
/// f < n/2. Shrinking applies this after every transform; build_scenario
/// expects an already-normalized scenario.
void normalize_scenario(Scenario& s);

/// Rewrites a generated scenario into its large-topology counterpart at
/// `n` nodes (n >= 16): the topology is forced into a bounded-degree,
/// low-diameter family (grid/torus/tree/star — a 4096-clique is ~8.4M
/// edges and a 4096-ring gives D-knowledge algorithms a quadratic run),
/// clique-locked algorithms (two-phase, Ben-Or) become flooding, and the
/// safety-only horizon shrinks so non-terminating runs stay soak-sized.
/// Deterministic in (s, n); every other dimension — seed, scheduler,
/// inputs, ids, crashes, holds, faults — is kept, so the large family
/// inherits the generator's variety. NOT called by generate_scenario: the
/// pinned seed-only corpus digest never sees it. Large scenarios enter via
/// SoakOptions::large_every, hand-written specs, and --replay.
void promote_to_large(Scenario& s, std::uint32_t n);

/// Rewrites a generated scenario into its log-service counterpart: the
/// service knobs (ops/batch/window/lease) are drawn deterministically from
/// the scenario's seed (own salt), then clamp_to_envelope applies the
/// family's envelope — the algorithm becomes wPAXOS (the service IS wPAXOS
/// renewals plus leased CommitFlood slots), scripted timelines and link
/// faults are scrubbed (the service owns its Network; per-broadcast scripts
/// index a one-shot instance's traffic, not a slot sequence), and crashes
/// are kept — a crash that takes the lease holder is exactly the
/// re-election/recovery coverage this family exists for. Deterministic in
/// `s`; NOT called by generate_scenario (the pinned seed-only corpus digest
/// never sees it). Log scenarios enter via SoakOptions::log_every, the
/// kLogService mutation, hand-written specs, and --replay.
void promote_to_log_service(Scenario& s);

// ---- mutation -----------------------------------------------------------

/// One mutation step applied to a corpus scenario by the coverage-steered
/// fuzzer (see fuzz/fuzzer.hpp). Every op goes through clamp_to_envelope
/// afterwards, so mutants are always well-formed AND inside the mutated
/// algorithm's guarantee envelope — a mutant "violation" is a real bug,
/// never an expected counterexample.
enum class MutationOp : std::uint8_t {
  kPerturbFack = 0,      ///< nudge/halve/double the delay bound
  kPerturbHoldRelease = 1,  ///< nudge/halve/double one hold's release tick
  kPerturbCrashTime = 2,    ///< nudge/halve/double one crash tick
  kRetimeHold = 3,       ///< redraw one hold's release from a wide range
  kAddHold = 4,          ///< add one hold (holdback scenarios only)
  kRemoveHold = 5,       ///< drop one hold
  kAddCrash = 6,         ///< add one crash (crash-tolerant envelopes only)
  kRemoveCrash = 7,      ///< drop one crash
  kToggleLateHolds = 8,  ///< flip early/late hold registration
  kReseed = 9,           ///< redraw the master seed (new wiring/inputs)
  kSpliceTransport = 10,  ///< take topology+scheduler from a second parent
  // Timeline ops: ScriptedScheduler scenarios (the paper's hand-built
  // counterexample shapes). kScriptTimeline converts any non-synchronous-
  // only scenario into a scripted one; the others perturb existing slots.
  kScriptTimeline = 11,      ///< switch to kScripted with a drawn timeline
  kRetimeScriptSlot = 12,    ///< redraw one slot's (ack, recv) delays
  kSwapScriptSlots = 13,     ///< exchange the delays of two slots
  kDuplicateScriptSlot = 14, ///< replay a slot at the sender's next index
  kDropScriptSlot = 15,      ///< remove one slot
  // Link-fault ops: perturb the scenario's LinkFaultPlan (drop windows,
  // rates). Clamp keeps every mutant inside the bounded-loss termination
  // envelope per algorithm (see clamp_to_envelope), so a faulted mutant
  // violation is still a real bug.
  kAddDropWindow = 16,     ///< add one per-link drop window
  kRemoveDropWindow = 17,  ///< drop one window
  kWidenDropWindow = 18,   ///< stretch one window (later until / earlier from)
  kNarrowDropWindow = 19,  ///< shrink one window
  kPerturbFaultRates = 20, ///< nudge the global drop/duplicate rates
  kScriptReceiverDelay = 21,  ///< retime ONE receiver inside a scripted slot
  /// Per-window fault-plan recombination with a second parent: each window
  /// slot takes the base's or the partner's window by a fair coin, and the
  /// global drop/duplicate rates recombine the same way. Complements
  /// kSpliceTransport, which copies the partner's whole plan along with
  /// its transport — this op explores fault timelines NEITHER parent ran.
  kSpliceFaultWindows = 22,
  // Log-service ops: enter and explore the replicated-log family (the
  // mutation-only entry mirrors kScriptTimeline — generated scenarios never
  // carry log= fields, so the pinned corpus digest is unchanged).
  kLogService = 23,      ///< convert into a log-service scenario
  kPerturbLogKnobs = 24, ///< nudge ops/batch/window/lease (log family only)
};
inline constexpr std::size_t kMutationOpCount = 25;

[[nodiscard]] const char* mutation_name(MutationOp op);

/// Clamps a mutated scenario back inside its algorithm's guarantee
/// envelope, mirroring generate_scenario's constraints (synchronous-only
/// algorithms lose adversarial schedulers and crashes, single-hop
/// algorithms return to the clique, value ranges are bounded), then
/// normalizes and recomputes the horizon. Mutation applies this after
/// every op; hand-written specs remain free to step outside the envelope.
void clamp_to_envelope(Scenario& s);

/// True iff the scenario is a fixpoint of clamp_to_envelope — i.e. already
/// inside its algorithm's guarantee envelope, spec for spec. Every mutant
/// emitted by mutate_scenario satisfies this (the property test over
/// scripted timelines pins it), which is exactly what makes a mutant
/// violation a real bug; a deliberately unclamped scenario is rejected.
[[nodiscard]] bool inside_envelope(const Scenario& s);

/// Applies one randomly chosen applicable mutation to a copy of `base`
/// (`splice`, when non-null, is the second parent for kSpliceTransport)
/// and returns the clamped, normalized mutant. Deterministic given the
/// rng state. The mutant keeps `base`'s seed unless kReseed fires, so its
/// derived streams (wiring, inputs, scheduler delays) stay pinned and the
/// spec line replays it exactly.
[[nodiscard]] Scenario mutate_scenario(const Scenario& base,
                                       const Scenario* splice,
                                       util::Rng& rng);

// ---- spec round-trip ----------------------------------------------------

/// One-line textual form, `amacfuzz1:seed=...:alg=...:...`. Round-trip
/// exact: parse_spec(format_spec(s)) reproduces `s` field for field.
[[nodiscard]] std::string format_spec(const Scenario& s);

/// Parses a spec line (or, as a convenience, a bare decimal integer, which
/// means generate_scenario(seed)). Returns nullopt on malformed input.
[[nodiscard]] std::optional<Scenario> parse_spec(std::string_view spec);

// ---- materialization ----------------------------------------------------

/// A scenario turned into live objects, ready to construct a Network (or
/// ReferenceNetwork). Build is deterministic: building twice yields
/// behaviorally identical object graphs, which is what makes differential
/// replay and shrinking sound.
struct BuiltScenario {
  net::Graph graph;
  std::vector<mac::Value> inputs;
  std::vector<std::uint64_t> ids;  ///< engine index -> algorithm id
  std::unique_ptr<mac::Scheduler> scheduler;
  mac::HoldbackScheduler* holdback = nullptr;  ///< non-null iff kHoldback
  mac::ProcessFactory factory;
  std::vector<mac::CrashPlan> crashes;  ///< in-range subset of s.crashes
  /// Link-fault plan for both engines (empty() when the scenario has no
  /// faults); runners install it via Network::set_link_faults.
  mac::LinkFaultPlan faults;

  BuiltScenario() : graph(1) {}
};

/// Materializes the scenario. Out-of-range crash/hold node ids (possible in
/// hand-edited specs) are dropped, mirroring normalize_scenario. When
/// `s.late_holds` is false the holds are applied here; when true the caller
/// applies them after engine construction via `apply_holds`.
[[nodiscard]] BuiltScenario build_scenario(const Scenario& s);

/// Applies the scenario's holds to the built holdback scheduler (no-op for
/// other scheduler kinds). Used for the late-hold path.
void apply_holds(const Scenario& s, BuiltScenario& b);

}  // namespace amac::fuzz
